// Machine-level observability (ds::obs): config wiring, auto-instrumented
// spans from the runtime layers, resilience instants on the trace, and the
// metrics lifecycle flush from streams plus the machine collectors.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/machine_helpers.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/datatype.hpp"
#include "mpi/rank.hpp"
#include "resilience/fault.hpp"

namespace ds {
namespace {

using mpi::Rank;
using mpi::SendBuf;

TEST(MachineObs, OffByDefault) {
  mpi::Machine machine(testing::tiny_machine(2));
  EXPECT_EQ(machine.engine().trace(), nullptr);
  EXPECT_EQ(machine.metrics(), nullptr);
  EXPECT_FALSE(machine.metrics_enabled());
}

TEST(MachineObs, LegacyEngineSwitchImpliesObsTrace) {
  auto config = testing::tiny_machine(2);
  config.engine.record_trace = true;
  mpi::Machine machine(config);
  EXPECT_NE(machine.engine().trace(), nullptr);
  EXPECT_TRUE(machine.config().observability.trace);
  EXPECT_EQ(machine.metrics(), nullptr);  // trace alone does not buy metrics
}

TEST(MachineObs, AutoSpansCoverComputeBlockingAndCollectives) {
  auto config = testing::tiny_machine(2);
  config.observability.trace = true;
  mpi::Machine machine(config);
  machine.run([](Rank& self) {
    std::uint64_t v = 1, sum = 0;
    if (self.world_rank() == 0) {
      self.compute(util::microseconds(50));
      self.send(self.world(), 1, 7, SendBuf::synthetic(1 << 20));
    } else {
      // Posted before the (large, rendezvous) send completes: the wait
      // blocks, producing a RecvBlocked span.
      self.recv(self.world(), 0, 7, mpi::RecvBuf::discard(1 << 20));
    }
    self.allreduce(self.world(), SendBuf::of(&v, 1), &sum,
                   mpi::reduce_sum<std::uint64_t>());
  });
  auto* trace = machine.engine().trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->total(0, obs::SpanKind::Compute), 0);
  EXPECT_GT(trace->total(1, obs::SpanKind::RecvBlocked), 0);
  EXPECT_GT(trace->total(0, obs::SpanKind::Collective), 0);
  EXPECT_GT(trace->total(1, obs::SpanKind::Collective), 0);
  EXPECT_GT(trace->total(0, std::string("allreduce")), 0);
  // Every fiber closed its spans on the way out.
  EXPECT_EQ(trace->open_depth(0), 0u);
  EXPECT_EQ(trace->open_depth(1), 0u);
  const std::string json = trace->to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"allreduce\""), std::string::npos);
}

TEST(MachineObs, CrashAndRejoinLeaveInstantsOnTheWorldRankTrack) {
  auto config = testing::tiny_machine(3);
  config.observability.trace = true;
  config.faults.crash(1, util::microseconds(30))
      .restart(1, util::microseconds(60));
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    // Plain compute keeps the program restart-transparent: the respawned
    // incarnation just runs it again.
    for (int i = 0; i < 10; ++i) self.compute(util::microseconds(10));
  });
  auto* trace = machine.engine().trace();
  ASSERT_NE(trace, nullptr);
  bool crash_seen = false, rejoin_seen = false;
  for (const auto& i : trace->instants()) {
    if (i.name == "crash" && i.rank == 1) crash_seen = true;
    if (i.name == "rejoin" && i.rank == 1) rejoin_seen = true;
  }
  EXPECT_TRUE(crash_seen);
  EXPECT_TRUE(rejoin_seen);
  // The crash closed whatever rank 1 had open...
  EXPECT_EQ(trace->open_depth(1), 0u);
  // ...and the restarted incarnation (a fresh engine pid) kept recording on
  // world-rank track 1: no span escapes the world's track range.
  bool post_restart_span = false;
  for (const auto& s : trace->intervals()) {
    EXPECT_LT(s.rank, 3);
    if (s.rank == 1 && s.begin >= util::microseconds(60))
      post_restart_span = true;
  }
  EXPECT_TRUE(post_restart_span);
  if (auto* m = machine.metrics(); m != nullptr) FAIL();  // metrics stayed off
}

TEST(MachineObs, StreamLifecycleFlushAndCollectors) {
  constexpr int kElements = 200;
  auto config = testing::tiny_machine(2);
  config.observability.metrics = true;
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    stream::ChannelConfig cfg;
    const bool producer = self.world_rank() == 0;
    const stream::Channel ch =
        stream::Channel::create(self, self.world(), producer, !producer, cfg);
    stream::Stream s =
        stream::Stream::attach(ch, mpi::Datatype::bytes(32), {});
    if (producer) {
      for (int i = 0; i < kElements; ++i) s.isend_synthetic(self);
      s.terminate(self);
    } else {
      s.operate(self);
    }
  });
  auto* m = machine.metrics();
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(machine.engine().trace(), nullptr);  // metrics alone, no trace
  // Producer flushed at terminate, consumer at exhaustion.
  ASSERT_NE(m->find_counter("stream.elements_sent", 0), nullptr);
  EXPECT_EQ(m->find_counter("stream.elements_sent", 0)->value(),
            static_cast<std::uint64_t>(kElements));
  ASSERT_NE(m->find_counter("stream.elements_consumed", 1), nullptr);
  EXPECT_EQ(m->find_counter("stream.elements_consumed", 1)->value(),
            static_cast<std::uint64_t>(kElements));
  EXPECT_GT(m->counter_total("stream.term_messages"), 0u);
  // Machine collectors snapshot engine/fabric/pool state on collect().
  m->collect();
  ASSERT_NE(m->find_gauge("fabric.total_messages"), nullptr);
  EXPECT_GT(m->find_gauge("fabric.total_messages")->value(), 0.0);
  ASSERT_NE(m->find_gauge("engine.events_executed"), nullptr);
  EXPECT_GT(m->find_gauge("engine.events_executed")->value(), 0.0);
  ASSERT_NE(m->find_gauge("pool.send.created"), nullptr);
  const std::string json = m->to_json();
  EXPECT_NE(json.find("\"schema\":\"ds.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("stream.elements_sent"), std::string::npos);
}

TEST(MachineObs, ResilientChurnEmitsFailoverInstantsAndCounters) {
  // Two producers block-map onto two consumers; consumer 1 (world rank 3)
  // crashes mid-stream, so its producer fails over the flow to the survivor
  // and replays. Both the trace instants and the flushed resilience counters
  // must record it.
  constexpr int kElements = 40;
  auto config = testing::tiny_machine(4);
  config.observability = obs::ObsConfig::all();
  config.faults.crash(3, util::microseconds(40));
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    stream::ChannelConfig cfg;
    cfg.checkpoint_interval = 4;  // resilient channel
    const bool producer = self.world_rank() < 2;
    const stream::Channel ch =
        stream::Channel::create(self, self.world(), producer, !producer, cfg);
    stream::Stream s =
        stream::Stream::attach(ch, mpi::Datatype::bytes(32), {});
    try {
      if (producer) {
        for (int i = 0; i < kElements; ++i) {
          self.compute(util::microseconds(2));  // paced: crash lands mid-run
          s.isend_synthetic(self);
        }
        s.terminate(self);
      } else {
        s.operate(self);
      }
    } catch (const mpi::RankFailure&) {
      // the crashed consumer unwinds here
    }
  });
  auto* trace = machine.engine().trace();
  ASSERT_NE(trace, nullptr);
  bool failover_seen = false;
  for (const auto& i : trace->instants()) {
    if (i.name == "failover") failover_seen = true;
  }
  EXPECT_TRUE(failover_seen);
  auto* m = machine.metrics();
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->counter_total("stream.failovers"), 1u);
  EXPECT_EQ(m->counter_total("resilience.crashes"), 1u);
}

}  // namespace
}  // namespace ds
