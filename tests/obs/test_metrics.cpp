#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ds::obs {
namespace {

TEST(Metrics, CountersAccumulatePerRank) {
  Metrics m;
  m.counter("msgs", 0).add();
  m.counter("msgs", 0).add(4);
  m.counter("msgs", 1).add(2);
  m.counter("msgs").add(10);  // machine-wide series
  EXPECT_EQ(m.counter("msgs", 0).value(), 5u);
  EXPECT_EQ(m.counter("msgs", 1).value(), 2u);
  EXPECT_EQ(m.counter_total("msgs"), 17u);
  EXPECT_EQ(m.counter_total("nothing"), 0u);
}

TEST(Metrics, HandlesAreStableAcrossInsertions) {
  Metrics m;
  Counter& c = m.counter("a", 0);
  for (int r = 0; r < 100; ++r) m.counter("b", r);
  c.add(7);
  EXPECT_EQ(m.counter("a", 0).value(), 7u);
}

TEST(Metrics, FindDoesNotCreate) {
  Metrics m;
  EXPECT_EQ(m.find_counter("x"), nullptr);
  EXPECT_EQ(m.find_gauge("x"), nullptr);
  EXPECT_EQ(m.find_histogram("x"), nullptr);
  EXPECT_EQ(m.series_count(), 0u);
  m.counter("x").add();
  ASSERT_NE(m.find_counter("x"), nullptr);
  EXPECT_EQ(m.find_counter("x")->value(), 1u);
  EXPECT_EQ(m.series_count(), 1u);
}

TEST(Metrics, GaugeHoldsLatestValue) {
  Metrics m;
  m.gauge("occ", 3).set(1.5);
  m.gauge("occ", 3).set(2.5);
  EXPECT_DOUBLE_EQ(m.gauge("occ", 3).value(), 2.5);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, TracksMomentsAndBounds) {
  Histogram h;
  for (const double v : {1.0, 2.0, 4.0, 8.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
}

TEST(Histogram, PercentileWithinOnePowerOfTwo) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(100.0);
  const double p50 = h.percentile(0.5);
  // 100 lives in [64, 128): the estimate is that bucket's upper edge,
  // clamped to the observed max.
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 128.0);
  // Out-of-range p clamps.
  EXPECT_LE(h.percentile(2.0), h.max());
  EXPECT_GE(h.percentile(-1.0), 0.0);
}

TEST(Histogram, ResetDropsSamples) {
  Histogram h;
  h.add(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Metrics, CollectorsRunOnCollect) {
  Metrics m;
  int calls = 0;
  m.add_collector([&](Metrics& reg) {
    ++calls;
    reg.gauge("snapshot").set(static_cast<double>(calls));
  });
  m.collect();
  m.collect();
  EXPECT_EQ(calls, 2);
  EXPECT_DOUBLE_EQ(m.gauge("snapshot").value(), 2.0);
}

TEST(Metrics, JsonSchemaShape) {
  Metrics m;
  m.counter("stream.elements", 0).add(42);
  m.gauge("fabric.bytes").set(1024.0);
  m.histogram("lat", 1).add(3.0);
  bool collected = false;
  m.add_collector([&](Metrics&) { collected = true; });
  const std::string json = m.to_json();
  EXPECT_TRUE(collected);  // to_json() collects first
  EXPECT_NE(json.find("\"schema\":\"ds.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"stream.elements\",\"rank\":0,\"value\":42}"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, JsonIsDeterministicallySorted) {
  Metrics m1, m2;
  m1.counter("b", 1).add(1);
  m1.counter("a", 2).add(2);
  m2.counter("a", 2).add(2);
  m2.counter("b", 1).add(1);
  EXPECT_EQ(m1.to_json(), m2.to_json());
  // (name, rank) order: "a" before "b".
  const std::string json = m1.to_json();
  EXPECT_LT(json.find("\"name\":\"a\""), json.find("\"name\":\"b\""));
}

}  // namespace
}  // namespace ds::obs
