#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ds::obs {
namespace {

TEST(Recorder, RecordsCompletedSpans) {
  Recorder r;
  r.begin(0, 10, "comp", SpanKind::Compute);
  r.end(0, 30);
  ASSERT_EQ(r.intervals().size(), 1u);
  const Span& s = r.intervals()[0];
  EXPECT_EQ(s.rank, 0);
  EXPECT_EQ(s.begin, 10);
  EXPECT_EQ(s.end, 30);
  EXPECT_EQ(s.label, "comp");
  EXPECT_EQ(s.kind, SpanKind::Compute);
  EXPECT_EQ(s.depth, 0);
}

TEST(Recorder, NestingPreservedWithDepths) {
  Recorder r;
  r.begin(2, 0, "outer", SpanKind::Collective);
  r.begin(2, 5, "inner", SpanKind::RecvBlocked);
  EXPECT_EQ(r.open_depth(2), 2u);
  r.end(2, 8);   // closes inner
  r.end(2, 20);  // closes outer
  EXPECT_EQ(r.open_depth(2), 0u);
  ASSERT_EQ(r.intervals().size(), 2u);
  // Completed in end order: inner first.
  EXPECT_EQ(r.intervals()[0].label, "inner");
  EXPECT_EQ(r.intervals()[0].depth, 1);
  EXPECT_EQ(r.intervals()[1].label, "outer");
  EXPECT_EQ(r.intervals()[1].depth, 0);
}

TEST(Recorder, MismatchedEndIsIgnoredAndCounted) {
  Recorder r;
  r.end(0, 5);  // nothing open
  EXPECT_EQ(r.dropped_ends(), 1u);
  EXPECT_TRUE(r.intervals().empty());
  r.begin(0, 10, "a");
  r.end(0, 12);
  r.end(0, 13);  // mismatched again
  EXPECT_EQ(r.dropped_ends(), 2u);
  EXPECT_EQ(r.intervals().size(), 1u);
}

TEST(Recorder, RanksTrackIndependentStacks) {
  Recorder r;
  r.begin(0, 0, "a");
  r.begin(1, 0, "b");
  r.end(1, 4);
  EXPECT_EQ(r.open_depth(0), 1u);
  EXPECT_EQ(r.open_depth(1), 0u);
  ASSERT_EQ(r.intervals().size(), 1u);
  EXPECT_EQ(r.intervals()[0].rank, 1);
}

TEST(Recorder, CloseAllUnwindsCrashedRank) {
  Recorder r;
  r.begin(3, 0, "outer");
  r.begin(3, 2, "inner");
  r.close_all(3, 7);
  EXPECT_EQ(r.open_depth(3), 0u);
  ASSERT_EQ(r.intervals().size(), 2u);
  for (const Span& s : r.intervals()) EXPECT_EQ(s.end, 7);
  // A later end on the same rank is a mismatch, not a crash artifact.
  r.end(3, 9);
  EXPECT_EQ(r.dropped_ends(), 1u);
}

TEST(Recorder, TotalsByLabelAndKind) {
  Recorder r;
  r.begin(0, 0, "comp", SpanKind::Compute);
  r.end(0, 10);
  r.begin(0, 10, "comp", SpanKind::Compute);
  r.end(0, 15);
  r.begin(0, 15, "recv-wait", SpanKind::RecvBlocked);
  r.end(0, 18);
  EXPECT_EQ(r.total(0, "comp"), 15);
  EXPECT_EQ(r.total(0, std::string("recv-wait")), 3);
  EXPECT_EQ(r.total(0, SpanKind::Compute), 15);
  EXPECT_EQ(r.total(0, SpanKind::RecvBlocked), 3);
  EXPECT_EQ(r.total(1, SpanKind::Compute), 0);
}

TEST(Recorder, AsciiDistinctGlyphsForSharedFirstLetter) {
  Recorder r;
  // Three labels sharing the first letter: the old renderer painted all of
  // them as 'c'; now each gets a unique glyph and the legend says which.
  r.begin(0, 0, "comp");
  r.end(0, 40);
  r.begin(0, 40, "collective");
  r.end(0, 80);
  r.begin(0, 80, "credit-wait");
  r.end(0, 100);
  const std::string ascii = r.to_ascii(50);
  // Legend line present and maps three distinct glyphs.
  const auto legend_at = ascii.find("legend:");
  ASSERT_NE(legend_at, std::string::npos);
  const std::string legend = ascii.substr(legend_at);
  EXPECT_NE(legend.find("=comp"), std::string::npos);
  EXPECT_NE(legend.find("=collective"), std::string::npos);
  EXPECT_NE(legend.find("=credit-wait"), std::string::npos);
  // The three glyphs differ: extract them from "X=label" entries.
  const auto glyph_of = [&](const std::string& label) {
    const auto at = legend.find("=" + label);
    EXPECT_NE(at, std::string::npos);
    return legend[at - 1];
  };
  const char g1 = glyph_of("comp");
  const char g2 = glyph_of("collective");
  const char g3 = glyph_of("credit-wait");
  EXPECT_NE(g1, g2);
  EXPECT_NE(g1, g3);
  EXPECT_NE(g2, g3);
  // First label keeps its natural first letter.
  EXPECT_EQ(g1, 'c');
}

TEST(Recorder, AsciiInstantsRenderAsBang) {
  Recorder r;
  r.begin(0, 0, "comp");
  r.end(0, 100);
  r.instant(0, 50, "crash");
  const std::string ascii = r.to_ascii(20);
  EXPECT_NE(ascii.find('!'), std::string::npos);
  EXPECT_NE(ascii.find("!=instant"), std::string::npos);
}

TEST(Recorder, ChromeJsonShape) {
  Recorder r;
  r.begin(0, 1000, "comp", SpanKind::Compute);
  r.end(0, 3000);
  r.instant(1, 2000, "crash");
  const std::string json = r.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Track metadata names each rank.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("rank 0"), std::string::npos);
  EXPECT_NE(json.find("rank 1"), std::string::npos);
  // B/E pair for the span, i for the instant, ns -> us timestamps.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"comp\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"crash\""), std::string::npos);
  EXPECT_NE(json.find("1.000"), std::string::npos);  // 1000 ns = 1 us
}

TEST(Recorder, ChromeJsonClosesOpenSpansAtLastTime) {
  Recorder r;
  r.begin(0, 0, "outer");
  r.begin(0, 5, "inner");
  r.end(0, 9);
  // "outer" left open on purpose; the exporter must still balance B/E.
  const std::string json = r.to_chrome_json();
  std::size_t b = 0, e = 0;
  for (std::size_t at = json.find("\"ph\":\"B\""); at != std::string::npos;
       at = json.find("\"ph\":\"B\"", at + 1))
    ++b;
  for (std::size_t at = json.find("\"ph\":\"E\""); at != std::string::npos;
       at = json.find("\"ph\":\"E\"", at + 1))
    ++e;
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(b, e);
}

TEST(Recorder, CsvHasHeaderAndRows) {
  Recorder r;
  r.begin(0, 10, "comp", SpanKind::Compute);
  r.end(0, 30);
  const std::string csv = r.to_csv();
  EXPECT_EQ(csv.rfind("rank,begin_ns,end_ns,label,kind,depth", 0), 0u);
  EXPECT_NE(csv.find("0,10,30,comp,compute,0"), std::string::npos);
}

TEST(Recorder, ClearResetsEverything) {
  Recorder r;
  r.begin(0, 0, "a");
  r.instant(0, 1, "x");
  r.end(0, 2);
  r.end(0, 3);
  r.clear();
  EXPECT_TRUE(r.intervals().empty());
  EXPECT_TRUE(r.instants().empty());
  EXPECT_EQ(r.dropped_ends(), 0u);
  EXPECT_EQ(r.open_depth(0), 0u);
}

TEST(SpanKindNames, AllDistinct) {
  EXPECT_STREQ(span_kind_name(SpanKind::Compute), "compute");
  const SpanKind kinds[] = {SpanKind::Compute,      SpanKind::SendBlocked,
                            SpanKind::RecvBlocked,  SpanKind::Collective,
                            SpanKind::Agreement,    SpanKind::StreamOperate,
                            SpanKind::StreamReplay, SpanKind::Other};
  for (const SpanKind a : kinds)
    for (const SpanKind b : kinds)
      if (a != b) {
        EXPECT_STRNE(span_kind_name(a), span_kind_name(b));
      }
}

}  // namespace
}  // namespace ds::obs
