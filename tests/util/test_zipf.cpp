#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ds::util {
namespace {

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler z(100, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < z.vocabulary(); ++k) sum += z.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, ProbabilitiesDecrease) {
  ZipfSampler z(50, 1.2);
  for (std::size_t k = 1; k < z.vocabulary(); ++k)
    EXPECT_GT(z.probability(k - 1), z.probability(k));
}

TEST(Zipf, SamplesInRange) {
  ZipfSampler z(32, 1.0);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(rng), 32u);
}

TEST(Zipf, EmpiricalFrequencyTracksTheory) {
  ZipfSampler z(16, 1.0);
  Rng rng(5);
  std::vector<int> hist(16, 0);
  constexpr int kN = 300000;
  for (int i = 0; i < kN; ++i) ++hist[z.sample(rng)];
  for (std::size_t k = 0; k < 4; ++k) {
    const double observed = static_cast<double>(hist[k]) / kN;
    EXPECT_NEAR(observed, z.probability(k), 0.01) << "k=" << k;
  }
}

TEST(Zipf, HeadDominatesWithHighExponent) {
  ZipfSampler z(1000, 2.0);
  EXPECT_GT(z.probability(0), 0.5);
}

TEST(Zipf, OutOfRangeProbabilityIsZero) {
  ZipfSampler z(10, 1.0);
  EXPECT_EQ(z.probability(10), 0.0);
  EXPECT_EQ(z.probability(1000), 0.0);
}

TEST(Zipf, SingletonVocabulary) {
  ZipfSampler z(1, 1.0);
  Rng rng(6);
  EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_NEAR(z.probability(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace ds::util
