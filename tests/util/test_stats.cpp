#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ds::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, SingleSampleIsThatSampleAtAnyP) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 7.0);
}

TEST(Percentile, OutOfRangePClampsToExtremes) {
  const std::vector<double> v{4.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.5), 8.0);
}

TEST(Percentile, UnsortedInputWithTies) {
  // The function must sort a copy; duplicated values interpolate flat.
  const std::vector<double> v{5.0, 1.0, 5.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 1.0);    // lands exactly on sorted[1]
  EXPECT_DOUBLE_EQ(percentile(v, 0.375), 3.0);   // halfway between 1 and 5
  // Input order must not matter.
  EXPECT_DOUBLE_EQ(percentile(v, 0.9), percentile({1.0, 1.0, 5.0, 5.0, 5.0}, 0.9));
  // And the input vector is left untouched.
  EXPECT_DOUBLE_EQ(v.front(), 5.0);
}

TEST(CoefficientOfVariation, ZeroMeanSafe) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_EQ(coefficient_of_variation(s), 0.0);
}

TEST(CoefficientOfVariation, Basic) {
  RunningStats s;
  s.add(9.0);
  s.add(11.0);
  EXPECT_NEAR(coefficient_of_variation(s), std::sqrt(2.0) / 10.0, 1e-12);
}

}  // namespace
}  // namespace ds::util
