#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ds::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamsAreIndependentAndDeterministic) {
  Rng a = Rng::for_stream(42, 0);
  Rng b = Rng::for_stream(42, 1);
  Rng a2 = Rng::for_stream(42, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3 = Rng::for_stream(42, 0);
  EXPECT_EQ(a2.next_u64(), a3.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng r(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(12);
  double sum = 0, sq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = r.normal(2.0, 0.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.01);
  EXPECT_NEAR(var, 0.25, 0.01);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng r(14);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(15);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Splitmix, IsDeterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace ds::util
