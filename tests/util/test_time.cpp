#include "util/time.hpp"

#include <gtest/gtest.h>

namespace ds::util {
namespace {

TEST(SimTimeHelpers, UnitConversions) {
  EXPECT_EQ(nanoseconds(5), 5);
  EXPECT_EQ(microseconds(3), 3000);
  EXPECT_EQ(milliseconds(2), 2'000'000);
  EXPECT_EQ(seconds_i(1), 1'000'000'000);
}

TEST(SimTimeHelpers, FromSecondsRounds) {
  EXPECT_EQ(from_seconds(1.0), 1'000'000'000);
  EXPECT_EQ(from_seconds(1.5e-9), 2);  // rounds to nearest
  EXPECT_EQ(from_seconds(0.49e-9), 0);
}

TEST(SimTimeHelpers, ToSecondsInverse) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds_i(2)), 2.0);
  EXPECT_DOUBLE_EQ(to_seconds(microseconds(1)), 1e-6);
}

TEST(SimTimeHelpers, InfinityIsLargest) {
  EXPECT_GT(kTimeInfinity, seconds_i(1'000'000'000));
}

}  // namespace
}  // namespace ds::util
