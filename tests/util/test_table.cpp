#include "util/table.hpp"

#include <gtest/gtest.h>

namespace ds::util {
namespace {

TEST(Table, TextContainsHeadersAndCells) {
  Table t({"procs", "time"});
  t.add_row({"32", "1.50"});
  t.add_row({"64", "2.25"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("procs"), std::string::npos);
  EXPECT_NE(text.find("2.25"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.to_csv(), "a,b,c\n1,,\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
}

TEST(Table, FmtMeanStd) {
  EXPECT_EQ(Table::fmt_mean_std(2.0, 0.5, 1), "2.0 ± 0.5");
}

TEST(Table, AlignmentPadsColumns) {
  Table t({"x"});
  t.add_row({"longvalue"});
  const std::string text = t.to_text();
  // All rendered lines have equal width (header padded to widest cell).
  std::vector<std::size_t> line_lengths;
  std::size_t start = 0;
  while (start < text.size()) {
    const auto end = text.find('\n', start);
    line_lengths.push_back(end - start);
    start = end + 1;
  }
  ASSERT_EQ(line_lengths.size(), 3u);
  EXPECT_EQ(line_lengths[0], line_lengths[1]);
  EXPECT_EQ(line_lengths[0], line_lengths[2]);
}

}  // namespace
}  // namespace ds::util
