// Shared helpers for tests that spin up a simulated machine.
#pragma once

#include <functional>

#include "mpi/machine.hpp"
#include "mpi/rank.hpp"

namespace ds::testing {

/// Small machine with Aries-like costs (deterministic, no noise).
[[nodiscard]] inline mpi::MachineConfig tiny_machine(int world_size) {
  mpi::MachineConfig config;
  config.world_size = world_size;
  config.engine.stack_bytes = 64 * 1024;
  return config;
}

/// Run `program` on all ranks; returns the virtual makespan.
inline util::SimTime run_program(const mpi::MachineConfig& config,
                                 const std::function<void(mpi::Rank&)>& program) {
  mpi::Machine machine(config);
  return machine.run(program);
}

}  // namespace ds::testing
