#include "sim/noise.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace ds::sim {
namespace {

TEST(Noise, DisabledIsIdentity) {
  NoiseModel m;
  util::Rng rng(1);
  EXPECT_EQ(m.perturb(12345, rng), 12345);
}

TEST(Noise, ZeroDurationStaysZero) {
  NoiseModel m(NoiseConfig{0.5, 100.0, util::microseconds(10)});
  util::Rng rng(2);
  EXPECT_EQ(m.perturb(0, rng), 0);
}

TEST(Noise, JitterPreservesMeanApproximately) {
  NoiseModel m(NoiseConfig{0.10, 0.0, 0});
  util::Rng rng(3);
  util::RunningStats s;
  for (int i = 0; i < 50000; ++i)
    s.add(static_cast<double>(m.perturb(util::milliseconds(1), rng)));
  EXPECT_NEAR(s.mean() / static_cast<double>(util::milliseconds(1)), 1.0, 0.01);
}

TEST(Noise, JitterMatchesConfiguredCv) {
  NoiseModel m(NoiseConfig{0.10, 0.0, 0});
  util::Rng rng(4);
  util::RunningStats s;
  for (int i = 0; i < 50000; ++i)
    s.add(static_cast<double>(m.perturb(util::milliseconds(1), rng)));
  EXPECT_NEAR(util::coefficient_of_variation(s), 0.10, 0.01);
}

TEST(Noise, DetoursOnlyLengthen) {
  NoiseModel m(NoiseConfig{0.0, 1000.0, util::microseconds(100)});
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const util::SimTime base = util::milliseconds(1);
    EXPECT_GE(m.perturb(base, rng), base);
  }
}

TEST(Noise, DetourRateScalesAddedTime) {
  // Expected added time = rate * duration * detour_mean.
  NoiseModel m(NoiseConfig{0.0, 100.0, util::microseconds(200)});
  util::Rng rng(6);
  util::RunningStats s;
  const util::SimTime base = util::milliseconds(10);
  for (int i = 0; i < 5000; ++i)
    s.add(static_cast<double>(m.perturb(base, rng) - base));
  // 100/s over 10ms = 1 expected detour of 200us.
  EXPECT_NEAR(s.mean(), static_cast<double>(util::microseconds(200)), 2e4);
}

TEST(Noise, ProductionNodePresetIsEnabled) {
  EXPECT_TRUE(NoiseConfig::production_node().enabled());
  EXPECT_FALSE(NoiseConfig{}.enabled());
}

TEST(Noise, DeterministicGivenRngState) {
  NoiseModel m(NoiseConfig{0.3, 50.0, util::microseconds(300)});
  util::Rng r1(9), r2(9);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(m.perturb(util::milliseconds(2), r1),
              m.perturb(util::milliseconds(2), r2));
}

}  // namespace
}  // namespace ds::sim
