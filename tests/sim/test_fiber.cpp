#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ds::sim {
namespace {

TEST(Fiber, RunsToCompletion) {
  int value = 0;
  Fiber f([&] { value = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(value, 42);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
  });
  f.resume();
  order.push_back(2);
  f.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, MultipleYields) {
  int steps = 0;
  Fiber f([&] {
    for (int i = 0; i < 5; ++i) {
      ++steps;
      Fiber::yield();
    }
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(f.finished());
    f.resume();
  }
  EXPECT_EQ(steps, 5);
  f.resume();  // run past the loop to the end
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ExceptionPropagatesToResumer) {
  Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ResumeAfterFinishThrows) {
  Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, YieldOutsideFiberThrows) { EXPECT_THROW(Fiber::yield(), std::logic_error); }

TEST(Fiber, InFiberFlag) {
  bool inside = false;
  EXPECT_FALSE(Fiber::in_fiber());
  Fiber f([&] { inside = Fiber::in_fiber(); });
  f.resume();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(Fiber::in_fiber());
}

TEST(Fiber, NestedFibers) {
  std::vector<int> order;
  Fiber inner([&] {
    order.push_back(2);
    Fiber::yield();
    order.push_back(4);
  });
  Fiber outer([&] {
    order.push_back(1);
    inner.resume();
    order.push_back(3);
    inner.resume();
    order.push_back(5);
  });
  outer.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, ManyFibersSmallStacks) {
  constexpr int kCount = 200;
  std::vector<std::unique_ptr<Fiber>> fibers;
  int sum = 0;
  for (int i = 0; i < kCount; ++i)
    fibers.push_back(std::make_unique<Fiber>([&sum, i] { sum += i; }, 32 * 1024));
  for (auto& f : fibers) f->resume();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace ds::sim
