#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace ds::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) q.push(5, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeTracksMinimum) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), util::kTimeInfinity);
  q.push(42, [] {});
  q.push(7, [] {});
  EXPECT_EQ(q.next_time(), 7);
  (void)q.pop();
  EXPECT_EQ(q.next_time(), 42);
}

TEST(EventQueue, SizeAndEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(1); });
  q.push(5, [&] { order.push_back(0); });
  Event e = q.pop();
  e.action();
  q.push(7, [&] { order.push_back(2); });  // earlier than remaining event
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(EventQueue, SingleEventPopKeepsActionIntact) {
  // Regression: pop() on a one-event heap used to move the back element
  // onto itself (front() aliases back()), leaving the popped action at the
  // mercy of self-move behavior. The action must survive and fire.
  EventQueue q;
  int fired = 0;
  q.push(11, [&] { ++fired; });
  Event only = q.pop();
  EXPECT_TRUE(q.empty());
  ASSERT_TRUE(static_cast<bool>(only.action));
  only.action();
  EXPECT_EQ(fired, 1);
  // And the queue remains fully usable through repeated 1-element cycles.
  for (int i = 0; i < 5; ++i) {
    q.push(i, [&] { ++fired; });
    q.pop().action();
  }
  EXPECT_EQ(fired, 6);
}

TEST(EventQueue, StressRandomOrderIsSorted) {
  EventQueue q;
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i) q.push(rng.uniform_int(0, 1000), [] {});
  util::SimTime last = -1;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

}  // namespace
}  // namespace ds::sim
