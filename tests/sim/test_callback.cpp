// sim::Callback — the small-buffer event callable.
#include "sim/callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>

namespace ds::sim {
namespace {

TEST(Callback, EmptyByDefaultAndAfterReset) {
  Callback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  cb = [] {};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb.reset();
  EXPECT_FALSE(static_cast<bool>(cb));
  cb = nullptr;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(Callback, InvokesSmallCapture) {
  int hits = 0;
  Callback cb = [&hits] { ++hits; };
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(Callback, MoveTransfersTheCallable) {
  int hits = 0;
  Callback a = [&hits] { ++hits; };
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  Callback c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(Callback, OversizedCaptureFallsBackToHeapAndStillWorks) {
  std::array<std::uint64_t, 32> big{};  // 256 bytes: past the inline budget
  big[0] = 1;
  big[31] = 41;
  std::uint64_t sum = 0;
  Callback cb = [big, &sum] { sum = big[0] + big[31]; };
  Callback moved = std::move(cb);
  moved();
  EXPECT_EQ(sum, 42u);
}

TEST(Callback, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  {
    Callback cb = [token] { (void)*token; };
    token.reset();
    EXPECT_FALSE(watch.expired());  // the callback keeps it alive
    Callback moved = std::move(cb);
    moved();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());  // released with the callback, exactly once
}

TEST(Callback, AdoptsAStdFunction) {
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  Callback cb = fn;  // copies the shell in
  cb();
  EXPECT_EQ(hits, 1);
  fn();  // the original is untouched
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace ds::sim
