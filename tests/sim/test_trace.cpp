#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ds::sim {
namespace {

TEST(Trace, RecordsInterval) {
  TraceRecorder t;
  t.begin(0, 100, "comp");
  t.end(0, 250);
  ASSERT_EQ(t.intervals().size(), 1u);
  EXPECT_EQ(t.intervals()[0].begin, 100);
  EXPECT_EQ(t.intervals()[0].end, 250);
  EXPECT_EQ(t.intervals()[0].label, "comp");
}

TEST(Trace, NestedIntervalsCloseInnermostFirst) {
  TraceRecorder t;
  t.begin(1, 0, "outer");
  t.begin(1, 10, "inner");
  t.end(1, 20);
  t.end(1, 30);
  ASSERT_EQ(t.intervals().size(), 2u);
  EXPECT_EQ(t.intervals()[0].label, "inner");
  EXPECT_EQ(t.intervals()[1].label, "outer");
}

TEST(Trace, TotalSumsMatchingLabels) {
  TraceRecorder t;
  t.begin(0, 0, "comm");
  t.end(0, 5);
  t.begin(0, 10, "comm");
  t.end(0, 25);
  t.begin(0, 30, "comp");
  t.end(0, 40);
  EXPECT_EQ(t.total(0, "comm"), 20);
  EXPECT_EQ(t.total(0, "comp"), 10);
  EXPECT_EQ(t.total(1, "comm"), 0);
}

TEST(Trace, CsvHasHeaderAndRows) {
  TraceRecorder t;
  t.begin(2, 1, "x");
  t.end(2, 3);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("rank,begin_ns,end_ns,label"), std::string::npos);
  EXPECT_NE(csv.find("2,1,3,x"), std::string::npos);
}

TEST(Trace, AsciiHasOneRowPerRank) {
  TraceRecorder t;
  t.begin(0, 0, "comp");
  t.end(0, 100);
  t.begin(2, 50, "mess");
  t.end(2, 100);
  const std::string art = t.to_ascii(20);
  // Ranks 0..2 -> three rows.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('c'), std::string::npos);
  EXPECT_NE(art.find('m'), std::string::npos);
}

TEST(Trace, AsciiMarksProportionalSpans) {
  TraceRecorder t;
  t.begin(0, 0, "aa");
  t.end(0, 50);
  t.begin(0, 50, "bb");
  t.end(0, 100);
  const std::string art = t.to_ascii(10);
  const auto a_count = std::count(art.begin(), art.end(), 'a');
  const auto b_count = std::count(art.begin(), art.end(), 'b');
  EXPECT_NEAR(static_cast<double>(a_count), static_cast<double>(b_count), 1.0);
}

TEST(Trace, UnmatchedEndIsIgnored) {
  TraceRecorder t;
  t.end(0, 10);  // no begin: no-op
  EXPECT_TRUE(t.intervals().empty());
}

TEST(Trace, ClearResets) {
  TraceRecorder t;
  t.begin(0, 0, "x");
  t.end(0, 1);
  t.clear();
  EXPECT_TRUE(t.intervals().empty());
  EXPECT_TRUE(t.to_ascii().empty());
}

}  // namespace
}  // namespace ds::sim
