#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ds::sim {
namespace {

TEST(Engine, SingleProcessAdvancesClock) {
  Engine eng;
  eng.spawn([](Process& p) {
    p.advance(util::microseconds(5));
    p.advance(util::microseconds(3));
  });
  eng.run();
  EXPECT_EQ(eng.now(), util::microseconds(8));
  EXPECT_EQ(eng.live_count(), 0u);
}

TEST(Engine, ProcessesRunConcurrentlyInVirtualTime) {
  Engine eng;
  for (int i = 0; i < 10; ++i)
    eng.spawn([](Process& p) { p.advance(util::milliseconds(2)); });
  eng.run();
  // Concurrent, not additive: makespan equals one process's time.
  EXPECT_EQ(eng.now(), util::milliseconds(2));
}

TEST(Engine, ScheduledActionsFireAtTheirTime) {
  Engine eng;
  std::vector<util::SimTime> fired;
  eng.schedule(util::microseconds(10), [&] { fired.push_back(10); });
  eng.schedule(util::microseconds(4), [&] { fired.push_back(4); });
  eng.run();
  EXPECT_EQ(fired, (std::vector<util::SimTime>{4, 10}));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.spawn([](Process& p) {
    p.advance(100);
    EXPECT_THROW(p.engine().schedule(10, [] {}), std::logic_error);
  });
  eng.run();
}

TEST(Engine, WakeBeforeSuspendIsNotLost) {
  Engine eng;
  bool resumed = false;
  int pid = eng.spawn([&](Process& p) {
    p.advance(util::microseconds(2));  // let the early wake land first
    p.suspend();                       // token pending -> returns immediately
    resumed = true;
  });
  eng.schedule(util::microseconds(1), [&eng, pid] { eng.wake(pid); });
  eng.run();
  EXPECT_TRUE(resumed);
}

TEST(Engine, SuspendBlocksUntilWake) {
  Engine eng;
  util::SimTime resumed_at = -1;
  const int pid = eng.spawn([&](Process& p) {
    p.suspend();
    resumed_at = p.now();
  });
  eng.schedule(util::microseconds(7), [&eng, pid] { eng.wake(pid); });
  eng.run();
  EXPECT_EQ(resumed_at, util::microseconds(7));
}

TEST(Engine, DeadlockIsReported) {
  Engine eng;
  eng.spawn([](Process& p) {
    p.set_state_note("waiting forever");
    p.suspend();
  });
  try {
    eng.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("waiting forever"), std::string::npos);
  }
}

TEST(Engine, ProcessExceptionPropagates) {
  Engine eng;
  eng.spawn([](Process&) { throw std::runtime_error("app failure"); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, ComputeAppliesNoiseDeterministically) {
  EngineConfig cfg;
  cfg.noise = NoiseConfig{0.2, 0.0, 0};
  cfg.seed = 77;
  util::SimTime t1 = 0, t2 = 0;
  for (util::SimTime* out : {&t1, &t2}) {
    Engine eng(cfg);
    eng.spawn([&](Process& p) { p.compute(util::milliseconds(1)); });
    eng.run();
    *out = eng.now();
  }
  EXPECT_EQ(t1, t2);            // determinism
  EXPECT_NE(t1, util::milliseconds(1));  // noise moved it
}

TEST(Engine, RanksHaveIndependentRngStreams) {
  Engine eng;
  std::vector<std::uint64_t> draws;
  for (int i = 0; i < 3; ++i)
    eng.spawn([&](Process& p) { draws.push_back(p.rng().next_u64()); });
  eng.run();
  EXPECT_NE(draws[0], draws[1]);
  EXPECT_NE(draws[1], draws[2]);
}

TEST(Engine, TraceRecordsComputeIntervals) {
  EngineConfig cfg;
  cfg.record_trace = true;
  Engine eng(cfg);
  eng.spawn([](Process& p) { p.compute(util::microseconds(10), "work"); });
  eng.run();
  ASSERT_NE(eng.trace(), nullptr);
  ASSERT_EQ(eng.trace()->intervals().size(), 1u);
  const auto& iv = eng.trace()->intervals().front();
  EXPECT_EQ(iv.label, "work");
  EXPECT_EQ(iv.end - iv.begin, util::microseconds(10));
}

TEST(Engine, EventsExecutedCounts) {
  Engine eng;
  eng.schedule(1, [] {});
  eng.schedule(2, [] {});
  eng.run();
  EXPECT_EQ(eng.events_executed(), 2u);
}

TEST(Engine, SpawnFromInsideProcess) {
  Engine eng;
  bool child_ran = false;
  eng.spawn([&](Process& p) {
    p.advance(5);
    p.engine().spawn([&](Process& c) {
      c.advance(5);
      child_ran = true;
    });
  });
  eng.run();
  EXPECT_TRUE(child_ran);
  EXPECT_EQ(eng.now(), 10);
}

TEST(Engine, DeterministicEventOrderAcrossRuns) {
  auto run_once = [] {
    Engine eng(EngineConfig{.stack_bytes = 32 * 1024, .seed = 5, .noise = {}, .record_trace = false});
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      eng.spawn([&order, i](Process& p) {
        p.advance(100 * (i % 3));
        order.push_back(i);
      });
    }
    eng.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ds::sim
