// Whole-stack determinism: a simulation is a pure function of (program,
// seed). These tests run full applications twice and demand identical
// virtual results — the property every other experiment leans on.
#include <gtest/gtest.h>

#include "apps/pic/pic_app.hpp"
#include "apps/wordcount/wordcount.hpp"
#include "common/machine_helpers.hpp"

namespace ds {
namespace {

TEST(Determinism, WordcountModeledRepeatsExactly) {
  apps::wordcount::WordcountConfig cfg;
  cfg.stride = 4;
  mpi::MachineConfig machine = testing::tiny_machine(16);
  machine.engine.noise = sim::NoiseConfig::production_node();
  const auto a = apps::wordcount::run_decoupled(cfg, machine);
  const auto b = apps::wordcount::run_decoupled(cfg, machine);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.elements_streamed, b.elements_streamed);
}

TEST(Determinism, SeedChangesOutcomeUnderNoise) {
  apps::wordcount::WordcountConfig cfg;
  cfg.stride = 4;
  mpi::MachineConfig machine = testing::tiny_machine(16);
  machine.engine.noise = sim::NoiseConfig::production_node();
  const auto a = apps::wordcount::run_reference(cfg, machine);
  machine.engine.seed = 4242;
  const auto b = apps::wordcount::run_reference(cfg, machine);
  EXPECT_NE(a.seconds, b.seconds);
}

TEST(Determinism, PicModeledRepeatsExactly) {
  apps::pic::PicConfig cfg;
  cfg.particles_per_rank = 2000;
  cfg.steps = 4;
  cfg.stride = 4;
  mpi::MachineConfig machine = testing::tiny_machine(16);
  machine.engine.noise = sim::NoiseConfig::production_node();
  const auto a = apps::pic::run_pic(apps::pic::ExchangeVariant::Decoupled, cfg, machine);
  const auto b = apps::pic::run_pic(apps::pic::ExchangeVariant::Decoupled, cfg, machine);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.total_particles_end, b.total_particles_end);
}

TEST(Determinism, NoiselessRunsIgnoreSeed) {
  apps::pic::PicConfig cfg;
  cfg.particles_per_rank = 1000;
  cfg.steps = 3;
  cfg.stride = 4;
  // The exit jitter uses cfg.seed, which we hold constant; the machine seed
  // only feeds the (disabled) noise model, so times must match exactly.
  mpi::MachineConfig m1 = testing::tiny_machine(16);
  mpi::MachineConfig m2 = testing::tiny_machine(16);
  m2.engine.seed = 999;
  const auto a = apps::pic::run_pic(apps::pic::ExchangeVariant::Reference, cfg, m1);
  const auto b = apps::pic::run_pic(apps::pic::ExchangeVariant::Reference, cfg, m2);
  EXPECT_EQ(a.seconds, b.seconds);
}

}  // namespace
}  // namespace ds
