// Weak-scaling *shape* assertions at test-sized sweeps: the monotonicity
// and flatness properties the figure benches rely on, checked routinely so
// a regression in the cost models is caught by ctest, not by eyeballing
// bench output.
#include <gtest/gtest.h>

#include "apps/cg/cg_app.hpp"
#include "apps/pic/pic_app.hpp"
#include "apps/wordcount/wordcount.hpp"
#include "common/machine_helpers.hpp"

namespace ds {
namespace {

mpi::MachineConfig bench_like(int p, std::uint64_t seed = 42) {
  mpi::MachineConfig machine = testing::tiny_machine(p);
  machine.engine.noise = sim::NoiseConfig::production_node();
  machine.engine.seed = seed;
  return machine;
}

TEST(ScalingShapes, WordcountReferenceGrowsWithScale) {
  apps::wordcount::WordcountConfig cfg;
  cfg.stride = 16;
  const auto small = apps::wordcount::run_reference(cfg, bench_like(32));
  const auto large = apps::wordcount::run_reference(cfg, bench_like(256));
  EXPECT_GT(large.seconds, small.seconds * 0.98);  // monotone (within noise)
}

TEST(ScalingShapes, WordcountDecoupledStaysFlat) {
  apps::wordcount::WordcountConfig cfg;
  cfg.stride = 16;
  const auto small = apps::wordcount::run_decoupled(cfg, bench_like(32));
  const auto large = apps::wordcount::run_decoupled(cfg, bench_like(256));
  // Near-perfect weak scaling: within 30% across an 8x scale-up.
  EXPECT_LT(large.seconds, small.seconds * 1.3);
}

TEST(ScalingShapes, WordcountDecoupledBeatsReferenceAtEveryScale) {
  apps::wordcount::WordcountConfig cfg;
  cfg.stride = 16;
  for (const int p : {32, 64, 128}) {
    const auto ref = apps::wordcount::run_reference(cfg, bench_like(p));
    const auto dec = apps::wordcount::run_decoupled(cfg, bench_like(p));
    EXPECT_LT(dec.seconds, ref.seconds) << "procs " << p;
  }
}

TEST(ScalingShapes, CgBlockingDegradesRelativeToNonblocking) {
  apps::cg::CgConfig cfg;
  cfg.n = 48;
  cfg.iterations = 6;
  cfg.stride = 16;
  // The blocking penalty is the unoverlapped dense-alltoall walk, which
  // grows with P; compare the blocking/nonblocking gap at two scales.
  const auto b_small =
      apps::cg::run_cg(apps::cg::HaloVariant::Blocking, cfg, bench_like(32));
  const auto n_small =
      apps::cg::run_cg(apps::cg::HaloVariant::Nonblocking, cfg, bench_like(32));
  const auto b_large =
      apps::cg::run_cg(apps::cg::HaloVariant::Blocking, cfg, bench_like(512));
  const auto n_large =
      apps::cg::run_cg(apps::cg::HaloVariant::Nonblocking, cfg, bench_like(512));
  const double gap_small = b_small.seconds - n_small.seconds;
  const double gap_large = b_large.seconds - n_large.seconds;
  EXPECT_GT(gap_large, gap_small);
}

TEST(ScalingShapes, CgDecoupledTracksNonblocking) {
  apps::cg::CgConfig cfg;
  cfg.n = 48;
  cfg.iterations = 6;
  cfg.stride = 16;
  const auto nonblocking =
      apps::cg::run_cg(apps::cg::HaloVariant::Nonblocking, cfg, bench_like(256));
  const auto decoupled =
      apps::cg::run_cg(apps::cg::HaloVariant::Decoupled, cfg, bench_like(256));
  // Paper: "the decoupling model can achieve the same efficiency as the MPI
  // non-blocking operations" — same ballpark, bounded by the 1/(1-alpha)
  // worker inflation plus protocol overhead.
  EXPECT_LT(decoupled.seconds, nonblocking.seconds * 1.15);
}

TEST(ScalingShapes, PicReferenceCommGrowsDecoupledFlat) {
  apps::pic::PicConfig cfg;
  cfg.particles_per_rank = 50'000;
  cfg.steps = 4;
  cfg.stride = 16;
  const auto ref_small =
      apps::pic::run_pic(apps::pic::ExchangeVariant::Reference, cfg, bench_like(64));
  const auto ref_large =
      apps::pic::run_pic(apps::pic::ExchangeVariant::Reference, cfg, bench_like(512));
  const auto dec_small =
      apps::pic::run_pic(apps::pic::ExchangeVariant::Decoupled, cfg, bench_like(64));
  const auto dec_large =
      apps::pic::run_pic(apps::pic::ExchangeVariant::Decoupled, cfg, bench_like(512));
  EXPECT_GT(ref_large.comm_seconds, ref_small.comm_seconds);
  // Decoupled exchange is near-constant across the same scale-up.
  EXPECT_LT(dec_large.comm_seconds, dec_small.comm_seconds * 1.35);
}

TEST(ScalingShapes, TraceShowsOverlapForDecoupledPic) {
  // Fig. 2's setup: 7 ranks, skewed particles, noisy node. The decoupled
  // run overlaps the exchange with compute and finishes sooner.
  apps::pic::PicConfig cfg;
  cfg.particles_per_rank = 400'000;
  cfg.steps = 5;
  cfg.stride = 7;
  cfg.exit_fraction = 0.15;
  const auto ref = apps::pic::run_pic_traced(
      apps::pic::ExchangeVariant::Reference, cfg, bench_like(7));
  const auto dec = apps::pic::run_pic_traced(
      apps::pic::ExchangeVariant::Decoupled, cfg, bench_like(7));
  EXPECT_FALSE(ref.ascii_trace.empty());
  EXPECT_FALSE(dec.ascii_trace.empty());
  EXPECT_LT(dec.result.seconds, ref.result.seconds);
}

}  // namespace
}  // namespace ds
