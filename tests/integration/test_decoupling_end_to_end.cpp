// End-to-end qualitative claims of the paper, at reduced scale: the
// decoupled implementations must beat their references under imbalance, and
// the I/O orderings of Fig. 8 must hold.
#include <gtest/gtest.h>

#include "apps/pic/pic_app.hpp"
#include "apps/pic/pic_io.hpp"
#include "apps/wordcount/wordcount.hpp"
#include "common/machine_helpers.hpp"

namespace ds {
namespace {

mpi::MachineConfig noisy_machine(int p) {
  mpi::MachineConfig machine = testing::tiny_machine(p);
  machine.engine.noise = sim::NoiseConfig::production_node();
  return machine;
}

TEST(DecouplingEndToEnd, WordcountDecoupledBeatsReference) {
  apps::wordcount::WordcountConfig cfg;
  cfg.stride = 16;
  const auto machine = noisy_machine(64);
  const auto ref = apps::wordcount::run_reference(cfg, machine);
  const auto dec = apps::wordcount::run_decoupled(cfg, machine);
  EXPECT_LT(dec.seconds, ref.seconds);
}

TEST(DecouplingEndToEnd, PicDecoupledCommNearParityAtSmallScale) {
  // Paper Fig. 7 shows the two variants at parity for small process counts;
  // the decoupled advantage appears at scale. At 64 ranks we only require
  // the decoupled exchange to stay in the same ballpark.
  apps::pic::PicConfig cfg;
  cfg.particles_per_rank = 20'000;
  cfg.steps = 5;
  cfg.stride = 16;
  const auto machine = noisy_machine(64);
  const auto ref = apps::pic::run_pic(apps::pic::ExchangeVariant::Reference, cfg, machine);
  const auto dec = apps::pic::run_pic(apps::pic::ExchangeVariant::Decoupled, cfg, machine);
  EXPECT_LT(dec.comm_seconds, ref.comm_seconds * 1.6);
}

TEST(DecouplingEndToEnd, PicDecoupledCommBeatsReferenceAtScale) {
  apps::pic::PicConfig cfg;
  cfg.particles_per_rank = 20'000;
  cfg.steps = 4;
  cfg.stride = 16;
  const auto machine = noisy_machine(512);
  const auto ref = apps::pic::run_pic(apps::pic::ExchangeVariant::Reference, cfg, machine);
  const auto dec = apps::pic::run_pic(apps::pic::ExchangeVariant::Decoupled, cfg, machine);
  EXPECT_LT(dec.comm_seconds, ref.comm_seconds);
}

TEST(DecouplingEndToEnd, ParticleIoOrderingMatchesFig8) {
  apps::pic::PicIoConfig cfg;
  cfg.particles_per_rank = 20'000;
  cfg.steps = 3;
  cfg.stride = 16;
  const auto machine = noisy_machine(64);
  const auto coll = apps::pic::run_pic_io(apps::pic::IoVariant::Collective, cfg, machine);
  const auto shared = apps::pic::run_pic_io(apps::pic::IoVariant::Shared, cfg, machine);
  const auto dec = apps::pic::run_pic_io(apps::pic::IoVariant::Decoupled, cfg, machine);
  // Fig. 8 ordering: shared worst, collective middle, decoupled best.
  EXPECT_LT(dec.seconds, coll.seconds);
  EXPECT_LT(coll.seconds, shared.seconds);
}

TEST(DecouplingEndToEnd, StreamGranularityTradeoffExists) {
  // Eq. 4: very fine granularity pays (D/S)*o overhead. A tiny element size
  // must be slower on the producer side than a sensible one.
  apps::wordcount::WordcountConfig coarse;
  coarse.stride = 8;
  coarse.block_bytes = 32ull << 20;
  apps::wordcount::WordcountConfig fine = coarse;
  fine.block_bytes = 1ull << 20;  // 32x more stream elements
  const auto machine = testing::tiny_machine(32);
  const auto coarse_run = apps::wordcount::run_decoupled(coarse, machine);
  const auto fine_run = apps::wordcount::run_decoupled(fine, machine);
  EXPECT_GT(fine_run.elements_streamed, coarse_run.elements_streamed);
}

}  // namespace
}  // namespace ds
