// Analytic-model consistency: the simulator and Eqs. 1-4 must agree on the
// synthetic two-operation application within tolerance — the check that the
// performance model in src/model actually describes the machine in src/sim.
#include <gtest/gtest.h>

#include "common/machine_helpers.hpp"
#include "core/decouple.hpp"
#include "model/perf_model.hpp"

namespace ds {
namespace {

using mpi::Rank;

constexpr int kRanks = 8;
constexpr int kRounds = 10;
constexpr util::SimTime kOp0 = util::milliseconds(5);
constexpr util::SimTime kOp1 = util::milliseconds(2);
constexpr std::size_t kElementBytes = 32 * 1024;

double simulated_conventional() {
  mpi::Machine machine(testing::tiny_machine(kRanks));
  return util::to_seconds(machine.run([&](Rank& self) {
    for (int r = 0; r < kRounds; ++r) {
      self.compute(kOp0);
      self.reduce(self.world(), 0, mpi::SendBuf::synthetic(kElementBytes),
                  nullptr, {});
      self.compute(kOp1);
      self.barrier(self.world());
    }
  }));
}

/// The synthetic decoupled two-op app, on the facade: the last rank runs the
/// second operation, charging `helper_per_element` per received element.
double simulated_decoupled_with(util::SimTime helper_per_element) {
  mpi::Machine machine(testing::tiny_machine(kRanks));
  return util::to_seconds(machine.run([&](Rank& self) {
    auto pipeline = decouple::Pipeline::over(self, self.world())
                        .with_helper_ranks({kRanks - 1});
    auto op1 = pipeline.raw_stream(kElementBytes);
    pipeline.run(
        [&](decouple::Context& ctx) {
          auto& s = ctx[op1];
          for (int r = 0; r < kRounds; ++r) {
            self.compute(kOp0 * kRanks / (kRanks - 1));
            s.send_synthetic(kElementBytes);
          }
        },
        [&](decouple::Context& ctx) {
          auto& s = ctx[op1];
          s.on_receive([&](const decouple::RawElement&) {
            self.compute(helper_per_element);
          });
          (void)s.operate();
        });
  }));
}

double simulated_decoupled() {
  return simulated_decoupled_with(kOp1 / (kRanks - 1));
}

model::TwoOpWorkload matching_workload() {
  model::TwoOpWorkload w;
  w.t_w0 = util::to_seconds(kOp0) * kRounds;
  w.t_w1 = util::to_seconds(kOp1) * kRounds;
  w.t_sigma = 0.0;  // noiseless machine in this test
  w.alpha = 1.0 / kRanks;
  w.beta = 0.02;    // near-perfect pipeline: producers never wait
  w.t_w1_decoupled = util::to_seconds(kOp1) * kRounds / kRanks;
  w.total_data = static_cast<double>(kElementBytes) * kRounds * (kRanks - 1);
  w.granularity = static_cast<double>(kElementBytes);
  w.overhead_per_element = 1.1e-6;  // inject + o_s on this machine profile
  return w;
}

TEST(ModelConsistency, ConventionalTimeWithinTolerance) {
  const double simulated = simulated_conventional();
  const double predicted = model::conventional_time(matching_workload());
  // Eq. 1 omits the collective wire time; allow 15%.
  EXPECT_NEAR(simulated, predicted, predicted * 0.15);
}

TEST(ModelConsistency, DecoupledTimeWithinToleranceWorkerBound) {
  // In this workload the worker group is the tail (T_W0/(1-a) > T'_W1/a):
  // Eq. 2's max() is the governing equation (the paper's Eq. 3/4 assume the
  // decoupled operation finishes last).
  const double simulated = simulated_decoupled();
  const double predicted = model::decoupled_time_ideal(matching_workload());
  EXPECT_NEAR(simulated, predicted, predicted * 0.15);
}

TEST(ModelConsistency, DecoupledTimeWithinToleranceHelperBound) {
  // Helper-bound variant: per-element helper work large enough that the
  // decoupled operation is the tail — now Eq. 4 governs.
  const util::SimTime helper_per_element = util::microseconds(1200);
  const double simulated = simulated_decoupled_with(helper_per_element);
  model::TwoOpWorkload w = matching_workload();
  // T'_W1 per the model is the decoupled op's total time divided over the
  // helper group: alpha * (elements * per-element time).
  w.t_w1_decoupled = w.alpha * util::to_seconds(helper_per_element) *
                     kRounds * (kRanks - 1);
  const double predicted = model::decoupled_time_full(w);
  EXPECT_NEAR(simulated, predicted, predicted * 0.15);
}

TEST(ModelConsistency, SpeedupDirectionAgrees) {
  const double sim_speedup = simulated_conventional() / simulated_decoupled();
  const double model_speedup =
      model::conventional_time(matching_workload()) /
      model::decoupled_time_ideal(matching_workload());
  EXPECT_GT(sim_speedup, 1.0);
  EXPECT_GT(model_speedup, 1.0);
  EXPECT_NEAR(sim_speedup, model_speedup, model_speedup * 0.25);
}

TEST(ModelConsistency, AlphaScalingMatchesEq2WorkerTerm) {
  // Doubling alpha's denominator (more workers) must reduce the worker-side
  // inflation exactly as 1/(1-alpha) predicts; verified via virtual time of
  // a pure-compute worker group.
  auto worker_time = [](int ranks) {
    mpi::Machine machine(testing::tiny_machine(ranks));
    return util::to_seconds(machine.run([&](Rank& self) {
      const bool helper = self.world_rank() == ranks - 1;
      if (!helper) self.compute(kOp0 * ranks / (ranks - 1));
    }));
  };
  const double t8 = worker_time(8);
  const double t16 = worker_time(16);
  // Integer-nanosecond clock: allow rounding at the last ns.
  EXPECT_NEAR(t8 / util::to_seconds(kOp0), 8.0 / 7.0, 1e-6);
  EXPECT_NEAR(t16 / util::to_seconds(kOp0), 16.0 / 15.0, 1e-6);
}

}  // namespace
}  // namespace ds
