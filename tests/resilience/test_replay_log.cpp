// ReplayLog / DedupFilter unit semantics (ds::resilience layer 2).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "resilience/failover.hpp"

namespace ds::resilience {
namespace {

[[nodiscard]] std::vector<std::byte> frame_bytes(std::uint8_t fill,
                                                 std::size_t n) {
  std::vector<std::byte> buf(n);
  std::memset(buf.data(), fill, n);
  return buf;
}

TEST(ReplayLog, RetainsUntilDurableTruncation) {
  ReplayLog log;
  const auto f0 = frame_bytes(0xA0, 32);
  const auto f1 = frame_bytes(0xA1, 40);
  const auto f2 = frame_bytes(0xA2, 24);
  log.retain(0, 8, 100, f0.data(), f0.size());
  log.retain(8, 8, 110, f1.data(), f1.size());
  log.retain(16, 4, 60, f2.data(), f2.size());
  EXPECT_EQ(log.frame_count(), 3u);
  EXPECT_EQ(log.retained_elements(), 20u);

  // An ack mid-frame keeps the straddling frame retained.
  log.truncate(10);
  EXPECT_EQ(log.durable_seq(), 10u);
  EXPECT_EQ(log.frame_count(), 2u);
  EXPECT_EQ(log.retained_elements(), 12u);
  EXPECT_EQ(log.frames().front().seq0, 8u);
  // Retained bytes are the frame as posted.
  EXPECT_EQ(log.frames().front().buf, f1);

  // Out-of-order (stale) acks are ignored.
  log.truncate(4);
  EXPECT_EQ(log.durable_seq(), 10u);
  EXPECT_EQ(log.frame_count(), 2u);

  log.truncate(20);
  EXPECT_EQ(log.frame_count(), 0u);
  EXPECT_EQ(log.retained_elements(), 0u);
}

TEST(ReplayLog, RecyclesBuffersThroughTheSpareList) {
  // Steady state: every retained frame reuses a truncated frame's capacity.
  ReplayLog log;
  const auto frame = frame_bytes(0x55, 512);
  log.retain(0, 4, 600, frame.data(), frame.size());
  log.truncate(4);
  // The recycled buffer serves the next retention without growing.
  log.retain(4, 4, 600, frame.data(), frame.size());
  EXPECT_EQ(log.frame_count(), 1u);
  EXPECT_GE(log.frames().front().buf.capacity(), 512u);
}

TEST(DedupFilter, AdmitsEachSequenceOnce) {
  DedupFilter filter;
  EXPECT_TRUE(filter.admit(1, 0, 0));
  EXPECT_TRUE(filter.admit(1, 0, 1));
  // Replay overlap: the same sequences come again.
  EXPECT_FALSE(filter.admit(1, 0, 0));
  EXPECT_FALSE(filter.admit(1, 0, 1));
  EXPECT_TRUE(filter.admit(1, 0, 2));
  EXPECT_EQ(filter.duplicates_dropped(), 2u);
  // Flows are independent per (producer, flow).
  EXPECT_TRUE(filter.admit(2, 0, 0));
  EXPECT_TRUE(filter.admit(1, 3, 0));
  EXPECT_EQ(filter.next_seq(1, 0), 3u);
  EXPECT_EQ(filter.next_seq(9, 9), 0u);
}

TEST(DedupFilter, AdvanceToSkipsDurablePrefixWithoutCountingDuplicates) {
  // The flow-handoff path: the adopter learns the durable point before the
  // replayed frames arrive, so the durable prefix is filtered silently.
  DedupFilter filter;
  filter.advance_to(0, 2, 10);
  EXPECT_FALSE(filter.admit(0, 2, 8));
  EXPECT_FALSE(filter.admit(0, 2, 9));
  EXPECT_TRUE(filter.admit(0, 2, 10));
  EXPECT_EQ(filter.duplicates_dropped(), 2u);
  // advance_to never regresses a cursor.
  filter.advance_to(0, 2, 5);
  EXPECT_TRUE(filter.admit(0, 2, 11));
}

TEST(DedupFilter, ForEachVisitsEveryTrackedFlow) {
  DedupFilter filter;
  ASSERT_TRUE(filter.admit(3, 1, 0));
  ASSERT_TRUE(filter.admit(4, 0, 0));
  ASSERT_TRUE(filter.admit(4, 0, 1));
  int seen = 0;
  std::uint64_t total = 0;
  filter.for_each([&](int producer, int flow, std::uint64_t next) {
    ++seen;
    total += next;
    EXPECT_TRUE((producer == 3 && flow == 1) || (producer == 4 && flow == 0));
  });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace ds::resilience
