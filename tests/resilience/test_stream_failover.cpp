// Stream epochs + consumer failover, end to end at the stream layer
// (ds::resilience layer 2/3): exactly-once delivery across an injected
// consumer crash, bounded replay, termination repair under Block and
// Directed (tree) mappings, and recovery from a credit-blocked producer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/machine_helpers.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/datatype.hpp"
#include "mpi/rank.hpp"
#include "resilience/failover.hpp"

namespace ds {
namespace {

using mpi::Rank;
using mpi::SendBuf;
using stream::Channel;
using stream::ChannelConfig;
using stream::Stream;
using stream::StreamElement;

[[nodiscard]] std::uint64_t element_id(int producer, int i) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(producer))
          << 32) |
         static_cast<std::uint32_t>(i);
}

/// True when `ids` contains no repeated element.
[[nodiscard]] bool all_unique(std::vector<std::uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
}

TEST(StreamFailover, BlockMappingSurvivorDeliversExactlyOnce) {
  // 2 producers block-map onto 2 consumers; consumer 1 (world rank 3) is
  // crashed mid-stream. Its producer rebinds to consumer 0, replays the
  // undurable tail, and the union of deliveries covers every element while
  // the survivor never sees one twice.
  constexpr int kProducers = 2, kConsumers = 2, kEach = 40;
  constexpr std::uint32_t kInterval = 4;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(/*world rank of consumer 1=*/3, util::microseconds(40));
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  std::uint64_t survivor_dupes_filtered = 0;
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.checkpoint_interval = kInterval;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));  // paced: the crash lands mid-run
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, SendBuf::of(&id, 1));
      }
      s.terminate(self);
    } else {
      s.operate(self);
      if (me == 0) survivor_dupes_filtered = s.duplicates_dropped();
    }
  });

  // Survivor exactly-once: no id reaches consumer 0's operator twice.
  EXPECT_TRUE(all_unique(delivered[0]));
  // Coverage: everything producer 0 sent lands at consumer 0; everything
  // producer 1 sent lands at consumer 1 (before the crash) or consumer 0
  // (replayed / rerouted after it).
  std::set<std::uint64_t> seen(delivered[0].begin(), delivered[0].end());
  seen.insert(delivered[1].begin(), delivered[1].end());
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kEach; ++i)
      EXPECT_TRUE(seen.count(element_id(p, i))) << "lost element " << p << ":" << i;
  // Bounded replay overlap: only the dead consumer's undurable tail can be
  // seen by both consumers — at most two epochs' worth (one open epoch plus
  // one whose ack could still be in flight at the rebind).
  std::vector<std::uint64_t> overlap;
  std::set<std::uint64_t> dead(delivered[1].begin(), delivered[1].end());
  for (const std::uint64_t id : delivered[0])
    if (dead.count(id)) overlap.push_back(id);
  EXPECT_LE(overlap.size(), 2u * kInterval);
  // The dedup filter absorbed any replayed-but-durable prefix silently.
  (void)survivor_dupes_filtered;  // informational; app-level view is above
}

TEST(StreamFailover, DirectedTreeRepairsAnnouncedCountsAndExhausts) {
  // Directed spray over 3 consumers with tree termination; consumer 2 (a
  // tree leaf) dies mid-stream. Producers move the undurable announced
  // counts to the adopter (consumer 0), the collective term routes around
  // the dead leaf, and both survivors exhaust exactly.
  constexpr int kProducers = 2, kConsumers = 3, kEach = 45;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(/*world rank of consumer 2=*/4, util::microseconds(40));
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.checkpoint_interval = 8;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend_to(self, i % kConsumers, SendBuf::of(&id, 1));
      }
      s.terminate(self);
    } else {
      s.operate(self);  // must exhaust — a count mismatch would deadlock
      EXPECT_TRUE(s.exhausted());
    }
  });
  EXPECT_TRUE(all_unique(delivered[0]));
  EXPECT_TRUE(all_unique(delivered[1]));
  std::set<std::uint64_t> seen;
  for (const auto& d : delivered) seen.insert(d.begin(), d.end());
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers) * static_cast<std::size_t>(kEach));
}

TEST(StreamFailover, CreditBlockedProducerRecoversAndReplays) {
  // Every element is directed at consumer 1 under a tight credit window.
  // When consumer 1 dies, the producer is asleep waiting for a credit that
  // can never come; the crash notification wakes it, it rebinds to consumer
  // 0, replays, and the stream completes with every element delivered.
  constexpr int kEach = 60;
  auto config = testing::tiny_machine(3);  // 1 producer + 2 consumers
  config.faults.crash(/*world rank of consumer 1=*/2, util::microseconds(30));
  std::vector<std::uint64_t> survivor;
  std::vector<std::uint64_t> dead;
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.checkpoint_interval = 8;
    cfg.max_inflight = 4;
    cfg.flow_autotune = false;  // keep the window tight: the point is stalling
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                self.compute(util::microseconds(2));  // slow
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                (me == 0 ? survivor : dead).push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        const std::uint64_t id = element_id(0, i);
        s.isend_to(self, 1, SendBuf::of(&id, 1));
      }
      s.terminate(self);
      EXPECT_GE(s.failovers(), 1u);
      EXPECT_GT(s.replayed_elements(), 0u);
    } else {
      s.operate(self);
    }
  });
  EXPECT_TRUE(all_unique(survivor));
  std::set<std::uint64_t> seen(survivor.begin(), survivor.end());
  seen.insert(dead.begin(), dead.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kEach));
}

TEST(StreamFailover, FaultFreeRetentionStaysBounded) {
  // The replay log is the resilience cost in the fault-free run: with
  // automatic epoch acks and a credit window, retention can never exceed
  // the open epoch plus the window plus ack/batching slack.
  constexpr int kEach = 400;
  constexpr std::uint32_t kInterval = 16, kWindow = 8;
  std::uint64_t max_retained = 0;
  std::uint64_t acks = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.checkpoint_interval = kInterval;
    cfg.max_inflight = kWindow;
    cfg.coalesce_max_elements = 4;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(), {});
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        const std::uint64_t id = element_id(0, i);
        s.isend(self, SendBuf::of(&id, 1));
        max_retained = std::max(max_retained, s.retained_elements());
      }
      s.terminate(self);
    } else {
      s.operate(self);
      acks = s.durable_acks_sent();
    }
  });
  // Open epoch + credit window + a frame and an ack batch of slack.
  EXPECT_LE(max_retained, kInterval + 2 * kWindow + 8);
  EXPECT_GE(acks, static_cast<std::uint64_t>(kEach / kInterval / 2));
}

TEST(StreamFailover, ManualDurabilityReplaysEverythingUnacked) {
  // Under manual durability a consumer that never acknowledges is treated
  // as having no durable effects: after its crash the adopter receives the
  // dead consumer's entire flow from the start.
  constexpr int kProducers = 2, kConsumers = 2, kEach = 24;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(3, util::microseconds(40));
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.checkpoint_interval = 8;
    cfg.manual_durability = true;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, SendBuf::of(&id, 1));
      }
      s.terminate(self);
    } else {
      s.operate(self);
    }
  });
  EXPECT_TRUE(all_unique(delivered[0]));
  // The survivor holds its own full flow AND the dead consumer's full flow.
  std::set<std::uint64_t> survivor(delivered[0].begin(), delivered[0].end());
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kEach; ++i)
      EXPECT_TRUE(survivor.count(element_id(p, i)))
          << "missing " << p << ":" << i;
}

TEST(StreamFailover, ZeroSendProducerTermRoutesToFailoverTarget) {
  // A producer that never sent an element still has to repair its term
  // routing: after its peer consumer crashes, the term must reach the
  // adopting consumer (which raised its expected term count), or the
  // adopter would wait forever on a term sitting in a dead mailbox.
  constexpr int kProducers = 2, kConsumers = 2;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(/*world rank of consumer 1=*/3, util::microseconds(5));
  std::uint64_t survivor_elements = 0;
  bool survivor_exhausted = false;
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.checkpoint_interval = 4;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(), {});
    if (producer) {
      self.compute(util::microseconds(20));  // terminate well after the crash
      if (self.world_rank() == 0) {
        const std::uint64_t id = element_id(0, 0);
        s.isend(self, SendBuf::of(&id, 1));
      }
      // Producer 1 (block-routed at the dead consumer) sends nothing at all.
      s.terminate(self);
    } else {
      survivor_elements = s.operate(self);  // deadlocks if the term is lost
      survivor_exhausted = s.exhausted();
    }
  });
  EXPECT_TRUE(survivor_exhausted);
  EXPECT_EQ(survivor_elements, 1u);
}

TEST(StreamFailover, AdaptiveWindowGrowsUnderCreditStallsOnly) {
  // Satellite: flow_autotune retunes max_inflight from the controller's
  // credit-stall signal — growth under stalls, pinned without autotune, and
  // never below the configured value.
  auto run = [&](bool autotune) {
    std::uint32_t window_after = 0;
    testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
      const bool producer = self.world_rank() == 0;
      ChannelConfig cfg;
      cfg.max_inflight = 4;  // tight: a fast producer stalls constantly
      cfg.flow_autotune = autotune;
      const Channel ch =
          Channel::create(self, self.world(), producer, !producer, cfg);
      Stream s = Stream::attach(ch, mpi::Datatype::int64(), {});
      if (producer) {
        for (int i = 0; i < 600; ++i) {
          const std::uint64_t id = element_id(0, i);
          s.isend(self, SendBuf::of(&id, 1));
        }
        s.terminate(self);
        window_after = s.max_inflight_now();
      } else {
        s.operate(self);
      }
    });
    return window_after;
  };
  const std::uint32_t pinned = run(false);
  const std::uint32_t tuned = run(true);
  EXPECT_EQ(pinned, 4u);
  EXPECT_GE(tuned, 4u);
  EXPECT_LE(tuned, 4u * stream::ChannelConfig::kWindowGrowthCap);
  EXPECT_GT(tuned, pinned);  // stall-heavy run must actually grow
}

TEST(StreamFailover, FailoverTargetPrefersSameNodeConsumer) {
  // 12 ranks, 4 per node; consumers are world ranks 3-11, so consumer 4
  // (world rank 7) lives on node 1 together with consumer 1 (world rank 4).
  // When it dies, the plain cyclic rule would adopt consumer 5 (node 2) —
  // the topology-aware rule keeps the flows on node 1 instead.
  auto config = testing::tiny_machine(12);
  config.network.ranks_per_node = 4;
  config.faults.crash(7, util::microseconds(200));
  int target = -2;
  testing::run_program(config, [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    const Channel ch = Channel::create(self, self.world(), me < 3, me >= 3, cfg);
    self.compute(util::milliseconds(1));  // let the crash land
    if (me == 0) target = resilience::failover_target(ch, 4, self.machine());
  });
  EXPECT_EQ(target, 1);
}

TEST(StreamFailover, FailoverTargetWithoutLocalityIsCyclicNext) {
  // Same shape, no node structure: the historical rule, unchanged.
  auto config = testing::tiny_machine(12);
  config.network.ranks_per_node = 0;
  config.faults.crash(7, util::microseconds(200));
  int target = -2;
  testing::run_program(config, [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    const Channel ch = Channel::create(self, self.world(), me < 3, me >= 3, cfg);
    self.compute(util::milliseconds(1));
    if (me == 0) target = resilience::failover_target(ch, 4, self.machine());
  });
  EXPECT_EQ(target, 5);
}

}  // namespace
}  // namespace ds
