// The remaining cells of the failure matrix (ds::resilience): producer
// crash (count repair + term exclusion), aggregator crash mid-protocol
// (re-election + release barrier), restarted-rank rejoin (voluntary flow
// handback), and elastic membership (retire / admit under active streams).
// Every scenario requires termination (a protocol hole deadlocks the test),
// exactly-once delivery across the membership change, and full coverage of
// everything the surviving producers sent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "common/machine_helpers.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/datatype.hpp"
#include "mpi/rank.hpp"
#include "resilience/fault.hpp"

namespace ds {
namespace {

using mpi::Rank;
using mpi::SendBuf;
using stream::Channel;
using stream::ChannelConfig;
using stream::Stream;
using stream::StreamElement;

[[nodiscard]] std::uint64_t element_id(int producer, int i) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(producer))
          << 32) |
         static_cast<std::uint32_t>(i);
}

[[nodiscard]] bool all_unique(std::vector<std::uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
}

[[nodiscard]] std::set<std::uint64_t> union_of(
    const std::vector<std::vector<std::uint64_t>>& views) {
  std::set<std::uint64_t> seen;
  for (const auto& v : views) seen.insert(v.begin(), v.end());
  return seen;
}

TEST(FaultPlanValidation, InstallTimeChecksRejectBrokenSchedules) {
  // Satellite: a schedule that would be a silent no-op or undefined mid-run
  // behavior must fail at install time with a descriptive error.
  {
    sim::FaultPlan plan;  // crash of an out-of-world rank
    plan.crash(7, util::microseconds(10));
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    sim::FaultPlan plan;  // duplicate crash of the same rank
    plan.crash(1, util::microseconds(10)).crash(1, util::microseconds(20));
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    sim::FaultPlan plan;  // restart of a rank that never crashed
    plan.restart(2, util::microseconds(10));
    EXPECT_THROW(plan.validate(4), std::invalid_argument);
  }
  {
    sim::FaultPlan plan;  // crash -> restart -> crash again is legal
    plan.crash(1, util::microseconds(10))
        .restart(1, util::microseconds(20))
        .crash(1, util::microseconds(30));
    EXPECT_NO_THROW(plan.validate(4));
  }
  {
    sim::FaultPlan plan;  // a machine run performs the same validation
    plan.restart(0, util::microseconds(5));
    auto config = testing::tiny_machine(2);
    config.faults = plan;
    EXPECT_THROW(testing::run_program(config, [](Rank&) {}),
                 std::invalid_argument);
  }
}

TEST(FailureMatrix, ProducerCrashTreeTerminationStillCompletes) {
  // Directed spray with the counted-term protocol; producer 1 dies
  // mid-stream and never reports its counts. The aggregator waives the dead
  // producer's matrix row, announces, and the release barrier still
  // completes — a count hole here deadlocks every consumer.
  constexpr int kProducers = 2, kConsumers = 3, kEach = 60;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(/*producer 1=*/1, util::microseconds(40));
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  std::array<bool, kConsumers> done{};
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.checkpoint_interval = 8;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));  // crash lands mid-loop
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend_to(self, i % kConsumers, SendBuf::of(&id, 1));
      }
      s.terminate(self);
    } else {
      s.operate(self);  // deadlocks if the dead producer's counts are waited on
      done[static_cast<std::size_t>(me)] = s.exhausted();
    }
  });
  for (int c = 0; c < kConsumers; ++c) {
    EXPECT_TRUE(done[static_cast<std::size_t>(c)]) << "consumer " << c;
    EXPECT_TRUE(all_unique(delivered[static_cast<std::size_t>(c)]));
  }
  // Everything the surviving producer sent arrived; the dead producer's
  // deliveries are a subset of what it managed to send.
  const auto seen = union_of(delivered);
  for (int i = 0; i < kEach; ++i)
    EXPECT_TRUE(seen.count(element_id(0, i))) << "lost survivor element " << i;
  for (const std::uint64_t id : seen)
    EXPECT_LT(static_cast<std::uint32_t>(id), static_cast<std::uint32_t>(kEach));
}

TEST(FailureMatrix, ProducerCrashBlockExcludedFromExpectedTerms) {
  // Block mapping: consumer 1's only producer dies before terminating. The
  // consumer must observe the crash and strike the dead producer from its
  // expected term count, or it waits forever on a term that cannot come.
  constexpr int kProducers = 2, kConsumers = 2, kEach = 60;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(/*producer 1=*/1, util::microseconds(40));
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  std::array<bool, kConsumers> done{};
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.checkpoint_interval = 8;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, SendBuf::of(&id, 1));
      }
      s.terminate(self);
    } else {
      s.operate(self);
      done[static_cast<std::size_t>(me)] = s.exhausted();
    }
  });
  EXPECT_TRUE(done[0]);
  EXPECT_TRUE(done[1]);
  EXPECT_TRUE(all_unique(delivered[0]));
  EXPECT_TRUE(all_unique(delivered[1]));
  // Producer 0 (alive) delivered everything to its block consumer.
  std::set<std::uint64_t> c0(delivered[0].begin(), delivered[0].end());
  for (int i = 0; i < kEach; ++i)
    EXPECT_TRUE(c0.count(element_id(0, i))) << "lost element " << i;
}

TEST(FailureMatrix, AggregatorCrashMidProtocolReelectsAndReleases) {
  // The effective aggregator (consumer 0) dies while producers are still
  // streaming. Producers re-derive the aggregator (first live + active
  // consumer), re-send their counted terms to it, and the re-elected
  // aggregator runs announce + release from its own idempotent matrix.
  constexpr int kProducers = 2, kConsumers = 3, kEach = 60;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(/*consumer 0=*/kProducers, util::microseconds(80));
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  std::array<bool, kConsumers> done{};
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.checkpoint_interval = 8;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend_to(self, i % kConsumers, SendBuf::of(&id, 1));
      }
      s.terminate(self);  // blocks in the release wait across the re-election
    } else {
      s.operate(self);
      done[static_cast<std::size_t>(me)] = s.exhausted();
    }
  });
  EXPECT_TRUE(done[1]);
  EXPECT_TRUE(done[2]);
  EXPECT_TRUE(all_unique(delivered[1]));
  EXPECT_TRUE(all_unique(delivered[2]));
  // Nothing is lost: the dead aggregator's flows were adopted and replayed.
  const auto seen = union_of(delivered);
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kEach; ++i)
      EXPECT_TRUE(seen.count(element_id(p, i)))
          << "lost element " << p << ":" << i;
}

TEST(FailureMatrix, RestartedConsumerRejoinsAndFlowsRebalanceBack) {
  // Crash consumer 1 mid-stream, restart it later: the respawned
  // incarnation attaches to the channel (no collective), producers observe
  // the rejoin epoch, hand its flows back voluntarily, and the cursor sync
  // from the interim owner keeps delivery exactly-once across all three
  // views (survivor, dead incarnation, rejoined incarnation).
  static constexpr int kProducers = 2, kConsumers = 2, kEach = 120;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.faults.crash(/*consumer 1=*/3, util::microseconds(60))
      .restart(3, util::microseconds(120));
  // Views: [0] consumer 0, [1] consumer 1 incarnation 0, [2] incarnation 1.
  std::vector<std::vector<std::uint64_t>> delivered(3);
  std::uint32_t max_rebalances = 0;
  bool rejoined_exhausted = false, survivor_exhausted = false;
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    const int inc = self.machine().incarnation(self.world_rank());
    ChannelConfig cfg;
    cfg.checkpoint_interval = 8;
    const Channel ch =
        inc > 0 ? Channel::attach(
                      self, self.world(),
                      [](int r) {
                        return static_cast<std::int8_t>(r < kProducers ? 1 : 2);
                      },
                      cfg)
                : Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    const std::size_t view = static_cast<std::size_t>(me + inc);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[view].push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));  // crash and rejoin land mid-loop
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, SendBuf::of(&id, 1));
      }
      s.terminate(self);
      max_rebalances = std::max(max_rebalances, s.rebalances());
    } else {
      s.operate(self);
      if (me == 0) survivor_exhausted = s.exhausted();
      if (me == 1 && inc > 0) rejoined_exhausted = s.exhausted();
    }
  });
  EXPECT_TRUE(survivor_exhausted);
  EXPECT_TRUE(rejoined_exhausted);
  // The voluntary handback happened (a failover alone would not count).
  EXPECT_GE(max_rebalances, 1u);
  // The rejoined incarnation actually got its flow back.
  EXPECT_FALSE(delivered[2].empty());
  EXPECT_TRUE(all_unique(delivered[0]));
  EXPECT_TRUE(all_unique(delivered[2]));
  // The cursor sync fences the handback: what the interim owner processed
  // can never reach the rejoined incarnation again.
  std::set<std::uint64_t> interim(delivered[0].begin(), delivered[0].end());
  for (const std::uint64_t id : delivered[2])
    EXPECT_FALSE(interim.count(id)) << "duplicate across handback: " << id;
  // Full coverage across all views.
  const auto seen = union_of(delivered);
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kEach; ++i)
      EXPECT_TRUE(seen.count(element_id(p, i)))
          << "lost element " << p << ":" << i;
}

TEST(FailureMatrix, ConsumerRetireMovesFlowsWithoutLossOrDuplication) {
  // Elastic remove: consumer 1 withdraws voluntarily mid-stream. Its dedup
  // cursors travel to the adopter ahead of admission, so the producers'
  // replay of the undurable tail cannot duplicate anything the retiree
  // already processed — and the retiree's filter memory drops to zero.
  constexpr int kProducers = 2, kConsumers = 2, kEach = 100;
  constexpr int kBeforeRetire = 20;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  std::size_t retiree_entries_after = 99, adopter_entries = 99;
  bool retiree_exhausted = false, adopter_exhausted = false;
  std::uint32_t max_rebalances = 0;
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.checkpoint_interval = 8;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    int count = 0;
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                                ++count;
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, SendBuf::of(&id, 1));
      }
      s.terminate(self);
      max_rebalances = std::max(max_rebalances, s.rebalances());
    } else if (me == 1) {
      s.operate_while(self, [&] { return count < kBeforeRetire; });
      s.retire(self);
      retiree_entries_after = s.dedup_entries();
      retiree_exhausted = s.exhausted();
    } else {
      s.operate(self);
      adopter_exhausted = s.exhausted();
      adopter_entries = s.dedup_entries();
    }
  });
  EXPECT_TRUE(retiree_exhausted);
  EXPECT_TRUE(adopter_exhausted);
  EXPECT_GE(max_rebalances, 1u);  // the flow moved voluntarily, not by crash
  // Dedup memory: the retiree handed every cursor away; the adopter holds at
  // most one entry per (producer, flow).
  EXPECT_EQ(retiree_entries_after, 0u);
  EXPECT_LE(adopter_entries,
            static_cast<std::size_t>(kProducers) * kConsumers);
  EXPECT_TRUE(all_unique(delivered[0]));
  EXPECT_TRUE(all_unique(delivered[1]));
  // Strict exactly-once across the retire: the views are disjoint (the
  // cursor sync covers everything the retiree processed) and the union
  // covers every element sent.
  std::set<std::uint64_t> retiree(delivered[1].begin(), delivered[1].end());
  for (const std::uint64_t id : delivered[0])
    EXPECT_FALSE(retiree.count(id)) << "duplicate across retire: " << id;
  const auto seen = union_of(delivered);
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers) * static_cast<std::size_t>(kEach));
}

TEST(FailureMatrix, InitiallyInactiveConsumerAdmittedMidRunReceivesFlows) {
  // Elastic add: consumer 1 starts outside the membership (its flows route
  // to the failover target) and is admitted mid-stream. Producers redirect
  // the flow home, the interim owner forwards its cursor, and the late
  // consumer picks up from there — no loss, no duplication.
  constexpr int kProducers = 2, kConsumers = 2, kEach = 100;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  std::vector<std::vector<std::uint64_t>> delivered(kConsumers);
  bool late_exhausted = false, interim_exhausted = false;
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.checkpoint_interval = 8;
    cfg.initially_inactive_consumers = {1};
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(),
                              [&](const StreamElement& el) {
                                std::uint64_t id = 0;
                                std::memcpy(&id, el.data, sizeof id);
                                delivered[static_cast<std::size_t>(me)]
                                    .push_back(id);
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        self.compute(util::microseconds(2));
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, SendBuf::of(&id, 1));
      }
      s.terminate(self);
    } else if (me == 1) {
      self.compute(util::microseconds(60));  // join mid-stream
      ch.admit_consumer(self, 1);
      s.operate(self);
      late_exhausted = s.exhausted();
    } else {
      s.operate(self);
      interim_exhausted = s.exhausted();
    }
  });
  EXPECT_TRUE(late_exhausted);
  EXPECT_TRUE(interim_exhausted);
  // The admitted consumer received the live tail of its flow.
  EXPECT_FALSE(delivered[1].empty());
  EXPECT_TRUE(all_unique(delivered[0]));
  EXPECT_TRUE(all_unique(delivered[1]));
  // Exactly-once across the admission: disjoint views, full coverage.
  std::set<std::uint64_t> interim(delivered[0].begin(), delivered[0].end());
  for (const std::uint64_t id : delivered[1])
    EXPECT_FALSE(interim.count(id)) << "duplicate across admission: " << id;
  const auto seen = union_of(delivered);
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers) * static_cast<std::size_t>(kEach));
}

TEST(FailureMatrix, RetireEffectiveAggregatorIsRejected) {
  // Guard rail: the effective aggregator runs the termination protocol, so
  // retiring it voluntarily is a usage error (crash + re-election is the
  // sanctioned path). The ledger must stay untouched.
  constexpr int kProducers = 1, kConsumers = 2;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  bool threw = false;
  testing::run_program(config, [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.checkpoint_interval = 8;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    Stream s = Stream::attach(ch, mpi::Datatype::int64(), {});
    if (producer) {
      const std::uint64_t id = element_id(0, 0);
      s.isend_to(self, 0, SendBuf::of(&id, 1));
      s.terminate(self);
    } else {
      if (me == 0) {
        try {
          s.retire(self);
        } catch (const std::logic_error&) {
          threw = true;
        }
      }
      s.operate(self);
    }
  });
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace ds
