// Fault-injection mechanics (ds::resilience layer 1): fail-stop semantics,
// mailbox draining, pool-slot accounting, restart, and degradation.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/machine_helpers.hpp"
#include "mpi/rank.hpp"
#include "resilience/fault.hpp"

namespace ds {
namespace {

using mpi::Rank;
using mpi::RecvBuf;
using mpi::SendBuf;

TEST(FaultPlan, BuilderValidates) {
  sim::FaultPlan plan;
  plan.crash(3, util::milliseconds(1)).restart(3, util::milliseconds(2));
  plan.degrade_link(1, util::microseconds(5), 4.0, util::milliseconds(1));
  EXPECT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.first_crash_at(3), util::milliseconds(1));
  EXPECT_EQ(plan.first_crash_at(0), -1);
  EXPECT_THROW(plan.crash(-1, 0), std::invalid_argument);
  EXPECT_THROW(plan.degrade_link(0, 0, 0.5), std::invalid_argument);
}

TEST(FaultInjection, CrashUnwindsAtNextInteraction) {
  // The victim observes the crash at its next runtime interaction and never
  // executes code past it; the machine run still completes.
  auto config = testing::tiny_machine(2);
  config.faults.crash(1, util::microseconds(50));
  bool before = false, after = false;
  testing::run_program(config, [&](Rank& self) {
    if (self.world_rank() == 0) return;
    self.compute(util::microseconds(10));
    before = true;
    self.compute(util::microseconds(100));  // crash lands inside this segment
    self.compute(util::microseconds(1));    // observation point -> unwind
    after = true;
  });
  EXPECT_TRUE(before);
  EXPECT_FALSE(after);
}

TEST(FaultInjection, PostedReceiveFailsAndMailboxDrains) {
  // Victim blocks in recv; the crash completes the posted receive with
  // Status::failed, the fiber unwinds, and messages arriving afterwards are
  // dropped instead of accumulating in a dead mailbox.
  auto config = testing::tiny_machine(2);
  config.faults.crash(1, util::microseconds(50));
  bool victim_got_data = false;
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    if (self.world_rank() == 1) {
      int value = 0;
      self.recv(self.world(), 0, 7, RecvBuf::of(&value, 1));
      victim_got_data = true;  // unreachable: recv fails at the crash
      return;
    }
    self.compute(util::microseconds(200));  // send only after the crash
    const int v = 42;
    for (int i = 0; i < 8; ++i) self.send(self.world(), 1, 7, SendBuf::of(&v, 1));
  });
  EXPECT_FALSE(victim_got_data);
  EXPECT_TRUE(machine.rank_failed(1));
  EXPECT_EQ(machine.failure_epoch(), 1u);
  // No pooled operation slot may stay pinned after the run drains.
  EXPECT_EQ(machine.pool_stats().send.outstanding(), 0u);
  EXPECT_EQ(machine.pool_stats().recv.outstanding(), 0u);
}

TEST(FaultInjection, InFlightTrafficToDeadRankDoesNotLeakPoolSlots) {
  // A burst already in flight toward the victim when it dies is dropped on
  // arrival; every pooled op (including rendezvous-class) recycles.
  auto config = testing::tiny_machine(4);
  config.faults.crash(2, util::microseconds(30));
  mpi::Machine machine(config);
  std::vector<std::byte> big(256 * 1024);  // rendezvous-class payload
  machine.run([&](Rank& self) {
    if (self.world_rank() == 2) {
      // Victim consumes a little, then blocks forever (until killed).
      int v = 0;
      self.recv(self.world(), mpi::kAnySource, 5, RecvBuf::of(&v, 1));
      self.recv(self.world(), mpi::kAnySource, 5, RecvBuf::of(&v, 1));
      return;
    }
    const int v = 7;
    self.send(self.world(), 2, 5, SendBuf::of(&v, 1));
    // Eager and rendezvous sends racing the crash: isend and move on.
    auto r1 = self.isend(self.world(), 2, 5, SendBuf::of(&v, 1));
    auto r2 = self.isend(self.world(), 2, 5,
                         SendBuf{big.data(), big.size()});
    self.wait(r1);
    self.wait(r2);  // must complete even though the peer died
  });
  EXPECT_EQ(machine.pool_stats().send.outstanding(), 0u);
  EXPECT_EQ(machine.pool_stats().recv.outstanding(), 0u);
}

TEST(FaultInjection, RestartRespawnsWithBumpedIncarnation) {
  auto config = testing::tiny_machine(2);
  config.faults.crash(1, util::microseconds(50));
  config.faults.restart(1, util::microseconds(200));
  int incarnations_seen = 0;
  bool exchanged_after_restart = false;
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    if (self.world_rank() == 0) {
      int v = 0;
      self.recv(self.world(), 1, 9, RecvBuf::of(&v, 1));
      exchanged_after_restart = v == 1;
      return;
    }
    ++incarnations_seen;
    if (self.incarnation() == 0) {
      // First life: blocks until the crash unwinds it.
      int v = 0;
      self.recv(self.world(), 0, 9, RecvBuf::of(&v, 1));
      return;
    }
    const int v = self.incarnation();
    self.send(self.world(), 0, 9, SendBuf::of(&v, 1));
  });
  EXPECT_EQ(incarnations_seen, 2);
  EXPECT_TRUE(exchanged_after_restart);
  EXPECT_FALSE(machine.rank_failed(1));
  EXPECT_EQ(machine.incarnation(1), 1);
}

TEST(FaultInjection, LinkDegradationSlowsDeliveryThenRecovers) {
  // The same ping-pong is timed in three phases; during the degrade window
  // the round trip must be strictly slower, and after it expires the
  // nominal timing returns. Deterministic: no noise configured.
  auto round_trip = [](bool degraded) {
    auto config = testing::tiny_machine(2);
    if (degraded)
      config.faults.degrade_link(1, 0, 8.0, util::seconds_i(1));
    util::SimTime elapsed = 0;
    testing::run_program(config, [&](Rank& self) {
      std::vector<std::byte> buf(64 * 1024);
      if (self.world_rank() == 0) {
        const util::SimTime t0 = self.now();
        self.send(self.world(), 1, 3, SendBuf{buf.data(), buf.size()});
        self.recv(self.world(), 1, 4, RecvBuf{buf.data(), buf.size()});
        elapsed = self.now() - t0;
      } else {
        self.recv(self.world(), 0, 3, RecvBuf{buf.data(), buf.size()});
        self.send(self.world(), 0, 4, SendBuf{buf.data(), buf.size()});
      }
    });
    return elapsed;
  };
  const util::SimTime nominal = round_trip(false);
  const util::SimTime degraded = round_trip(true);
  EXPECT_GT(degraded, nominal + nominal / 2);
}

TEST(FaultPlan, DegradePathBuilderValidates) {
  sim::FaultPlan plan;
  plan.degrade_path(0, 3, util::microseconds(5), 4.0, util::milliseconds(1));
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.events[0].rank, 0);
  EXPECT_EQ(plan.events[0].rank_b, 3);
  EXPECT_THROW(plan.degrade_path(-1, 0, 0, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.degrade_path(0, -1, 0, 2.0), std::invalid_argument);
  EXPECT_THROW(plan.degrade_path(0, 1, 0, 0.5), std::invalid_argument);
}

TEST(FaultInjection, PathDegradeEndpointMustBeInsideWorld) {
  auto config = testing::tiny_machine(2);
  config.faults.degrade_path(0, 5, 0, 2.0);
  mpi::Machine machine(config);
  EXPECT_THROW(machine.run([](Rank&) {}), std::invalid_argument);
}

TEST(FaultInjection, PathDegradeSlowsSharedLinksThenRecovers) {
  // Two nodes of two ranks under the two-level topology: degrading the
  // 0 -> 2 path hits node0:up and node1:down, so the inter-node ping-pong
  // slows while the window is open and recovers after it expires.
  auto round_trip = [](bool degraded) {
    auto config = testing::tiny_machine(4);
    config.network.ranks_per_node = 2;
    config.network.topology.kind = net::TopologyConfig::Kind::TwoLevel;
    config.network.ns_per_byte_node_link = 1.0;  // links dominate the cost
    if (degraded)
      config.faults.degrade_path(0, 2, 0, 8.0, util::milliseconds(5));
    std::array<util::SimTime, 2> elapsed{};
    testing::run_program(config, [&](Rank& self) {
      std::vector<std::byte> buf(64 * 1024);
      const auto time_round = [&](int tag) {
        const util::SimTime t0 = self.now();
        self.send(self.world(), 2, tag, SendBuf{buf.data(), buf.size()});
        self.recv(self.world(), 2, tag + 1, RecvBuf{buf.data(), buf.size()});
        return self.now() - t0;
      };
      if (self.world_rank() == 0) {
        elapsed[0] = time_round(3);
        self.compute(util::milliseconds(10));  // outlive the degrade window
        elapsed[1] = time_round(5);
      } else if (self.world_rank() == 2) {
        for (const int tag : {3, 5}) {
          self.recv(self.world(), 0, tag, RecvBuf{buf.data(), buf.size()});
          self.send(self.world(), 0, tag + 1, SendBuf{buf.data(), buf.size()});
        }
      }
    });
    return elapsed;
  };
  const auto nominal = round_trip(false);
  const auto faulted = round_trip(true);
  EXPECT_GT(faulted[0], nominal[0] + nominal[0] / 2);  // inside the window
  EXPECT_EQ(faulted[1], nominal[1]);                   // after revert
}

TEST(FaultInjection, NoiseModelComposesDegradation) {
  // Degradation scales the nominal before jitter/detours apply, so a
  // degraded rank still carries proportional noise on top of the slowdown.
  util::Rng rng = util::Rng::for_stream(7, 0);
  sim::NoiseModel silent{};
  EXPECT_EQ(silent.perturb(util::microseconds(100), rng, 3.0),
            util::microseconds(300));
  sim::NoiseModel noisy{sim::NoiseConfig{0.10, 0.0, 0}};
  util::Rng a = util::Rng::for_stream(7, 1);
  util::Rng b = util::Rng::for_stream(7, 1);
  const util::SimTime base = noisy.perturb(util::microseconds(100), a, 1.0);
  const util::SimTime slowed = noisy.perturb(util::microseconds(100), b, 3.0);
  // Same RNG stream -> same jitter factor -> 3x up to integer rounding.
  EXPECT_NEAR(static_cast<double>(slowed), 3.0 * static_cast<double>(base), 3.0);
}

TEST(FaultInjection, ComputeDegradeSlowsCrashedWindowDeterministically) {
  // End to end through the engine: a degraded rank's compute takes factor x
  // longer while the window is open.
  auto measure = [](bool degraded) {
    auto config = testing::tiny_machine(1);
    if (degraded) config.faults.degrade_link(0, 0, 4.0, util::seconds_i(1));
    util::SimTime elapsed = 0;
    testing::run_program(config, [&](Rank& self) {
      self.compute(util::microseconds(1));  // let the t=0 fault event land
      const util::SimTime t0 = self.now();
      self.compute(util::microseconds(250));
      elapsed = self.now() - t0;
    });
    return elapsed;
  };
  EXPECT_EQ(measure(true), 4 * measure(false));
}

}  // namespace
}  // namespace ds
