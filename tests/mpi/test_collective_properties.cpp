// Property-style sweeps: every collective must be correct for arbitrary
// communicator sizes (including awkward non-powers-of-two) and payloads.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/machine_helpers.hpp"

namespace ds::mpi {
namespace {

class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, ReduceSumMatchesClosedForm) {
  const int p = GetParam();
  long long result = -1;
  testing::run_program(testing::tiny_machine(p), [&](Rank& self) {
    const long long mine = 3 * self.world_rank() + 1;
    long long out = 0;
    self.reduce(self.world(), 0, SendBuf::of(&mine, 1), &out,
                reduce_sum<long long>());
    if (self.world_rank() == 0) result = out;
  });
  long long expected = 0;
  for (int r = 0; r < p; ++r) expected += 3 * r + 1;
  EXPECT_EQ(result, expected);
}

TEST_P(CollectiveSweep, ReduceWithEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; root += (p > 4 ? p / 3 : 1)) {
    int result = -1;
    testing::run_program(testing::tiny_machine(p), [&](Rank& self) {
      const int mine = 1;
      int out = 0;
      self.reduce(self.world(), root, SendBuf::of(&mine, 1), &out,
                  reduce_sum<int>());
      if (self.world_rank() == root) result = out;
    });
    EXPECT_EQ(result, p) << "root=" << root;
  }
}

TEST_P(CollectiveSweep, BcastFromEveryThirdRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; root += (p > 4 ? p / 3 : 1)) {
    int failures = 0;
    testing::run_program(testing::tiny_machine(p), [&](Rank& self) {
      int v = self.world_rank() == root ? root + 1000 : -1;
      self.bcast(self.world(), root, RecvBuf::of(&v, 1));
      if (v != root + 1000) ++failures;
    });
    EXPECT_EQ(failures, 0) << "root=" << root;
  }
}

TEST_P(CollectiveSweep, AllgathervRoundTripsAllBlocks) {
  const int p = GetParam();
  int failures = 0;
  testing::run_program(testing::tiny_machine(p), [&](Rank& self) {
    const int me = self.world_rank();
    // Variable block sizes: rank r contributes (r % 3 + 1) ints.
    std::vector<std::size_t> counts;
    std::size_t total_ints = 0;
    for (int r = 0; r < p; ++r) {
      const std::size_t n = static_cast<std::size_t>(r % 3 + 1);
      counts.push_back(n * sizeof(std::int32_t));
      total_ints += n;
    }
    std::vector<std::int32_t> mine(static_cast<std::size_t>(me % 3 + 1),
                                   me * 7);
    std::vector<std::int32_t> out(total_ints, -1);
    self.allgatherv(self.world(), SendBuf::of(mine.data(), mine.size()),
                    out.data(), counts);
    std::size_t idx = 0;
    for (int r = 0; r < p; ++r)
      for (int j = 0; j < r % 3 + 1; ++j)
        if (out[idx++] != r * 7) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(CollectiveSweep, BarrierNeverReordersAfterwards) {
  const int p = GetParam();
  std::vector<util::SimTime> at(static_cast<std::size_t>(p));
  util::SimTime slowest_ready = 0;
  testing::run_program(testing::tiny_machine(p), [&](Rank& self) {
    const auto delay =
        util::microseconds(100 * (self.world_rank() % 5));
    self.process().advance(delay);
    if (self.world_rank() % 5 == 4) slowest_ready = std::max(slowest_ready, self.now());
    self.barrier(self.world());
    at[static_cast<std::size_t>(self.world_rank())] = self.now();
  });
  for (const auto t : at) EXPECT_GE(t, slowest_ready);
}

TEST_P(CollectiveSweep, AlltoallvTransposesMatrix) {
  const int p = GetParam();
  int failures = 0;
  testing::run_program(testing::tiny_machine(p), [&](Rank& self) {
    const int me = self.world_rank();
    std::vector<std::int32_t> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      send[static_cast<std::size_t>(d)] = me * 1000 + d;
    const std::vector<std::size_t> counts(static_cast<std::size_t>(p),
                                          sizeof(std::int32_t));
    std::vector<std::int32_t> recv(static_cast<std::size_t>(p), -1);
    self.alltoallv(self.world(), send.data(), counts, recv.data(), counts);
    for (int s = 0; s < p; ++s)
      if (recv[static_cast<std::size_t>(s)] != s * 1000 + me) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(CollectiveSweep, AllreduceAgreesOnAllRanks) {
  const int p = GetParam();
  std::vector<double> results(static_cast<std::size_t>(p), -1.0);
  testing::run_program(testing::tiny_machine(p), [&](Rank& self) {
    const double mine = 0.5 * self.world_rank();
    double out = 0;
    self.allreduce(self.world(), SendBuf::of(&mine, 1), &out,
                   reduce_sum<double>());
    results[static_cast<std::size_t>(self.world_rank())] = out;
  });
  const double expected = 0.5 * p * (p - 1) / 2.0;
  for (const double v : results) EXPECT_DOUBLE_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 32));

class PayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSweep, ReduceAcrossEagerAndRendezvousSizes) {
  const std::size_t count = GetParam();
  std::vector<std::int64_t> result;
  testing::run_program(testing::tiny_machine(5), [&](Rank& self) {
    std::vector<std::int64_t> mine(count, self.world_rank() + 1);
    std::vector<std::int64_t> out(count, 0);
    self.reduce(self.world(), 0, SendBuf::of(mine.data(), count), out.data(),
                reduce_sum<std::int64_t>());
    if (self.world_rank() == 0) result = out;
  });
  for (const auto v : result) EXPECT_EQ(v, 15);  // 1+2+3+4+5
}

INSTANTIATE_TEST_SUITE_P(Payloads, PayloadSweep,
                         ::testing::Values(1, 16, 1000, 1024, 5000));

}  // namespace
}  // namespace ds::mpi
