#include "mpi/datatype.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace ds::mpi {
namespace {

TEST(Datatype, FundamentalSizes) {
  EXPECT_EQ(Datatype::int32().size(), 4u);
  EXPECT_EQ(Datatype::int64().size(), 8u);
  EXPECT_EQ(Datatype::float64().size(), 8u);
  EXPECT_EQ(Datatype::bytes(17).size(), 17u);
  EXPECT_TRUE(Datatype::float64().is_contiguous());
}

TEST(Datatype, ContiguousMultiplies) {
  const auto t = Datatype::contiguous(5, Datatype::float64());
  EXPECT_EQ(t.size(), 40u);
  EXPECT_EQ(t.extent(), 40u);
}

TEST(Datatype, VectorSizeAndExtent) {
  // 3 blocks of 2 doubles, stride 4 doubles.
  const auto t = Datatype::vector(3, 2, 4, Datatype::float64());
  EXPECT_EQ(t.size(), 3u * 2u * 8u);
  EXPECT_EQ(t.extent(), ((3u - 1) * 4u + 2u) * 8u);
  EXPECT_FALSE(t.is_contiguous());
}

TEST(Datatype, VectorPackUnpackRoundTrip) {
  const auto t = Datatype::vector(3, 2, 4, Datatype::float64());
  std::vector<double> memory(t.extent() / sizeof(double));
  std::iota(memory.begin(), memory.end(), 0.0);
  std::vector<std::byte> wire(t.size());
  t.pack(reinterpret_cast<const std::byte*>(memory.data()), wire.data());

  // Wire order: blocks {0,1}, {4,5}, {8,9}.
  const auto* w = reinterpret_cast<const double*>(wire.data());
  const double expected[] = {0, 1, 4, 5, 8, 9};
  for (int i = 0; i < 6; ++i) EXPECT_EQ(w[i], expected[i]);

  std::vector<double> restored(memory.size(), -1.0);
  t.unpack(wire.data(), reinterpret_cast<std::byte*>(restored.data()));
  for (const int idx : {0, 1, 4, 5, 8, 9})
    EXPECT_EQ(restored[static_cast<std::size_t>(idx)],
              memory[static_cast<std::size_t>(idx)]);
  EXPECT_EQ(restored[2], -1.0);  // gaps untouched
}

TEST(Datatype, VectorStrideTooSmallThrows) {
  EXPECT_THROW(Datatype::vector(2, 3, 2, Datatype::int32()),
               std::invalid_argument);
}

TEST(Datatype, RecordWithGaps) {
  // struct { int32 a; /* 4 pad */ double b; } -> extent 16, size 12.
  const auto t = Datatype::record(
      {{0, Datatype::int32()}, {8, Datatype::float64()}}, 16, "pair");
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.extent(), 16u);

  struct Pair {
    std::int32_t a;
    std::int32_t pad;
    double b;
  } src{7, 0, 2.5}, dst{0, 0, 0.0};
  std::vector<std::byte> wire(t.size());
  t.pack(reinterpret_cast<const std::byte*>(&src), wire.data());
  t.unpack(wire.data(), reinterpret_cast<std::byte*>(&dst));
  EXPECT_EQ(dst.a, 7);
  EXPECT_EQ(dst.b, 2.5);
}

TEST(Datatype, RecordFieldBeyondExtentThrows) {
  EXPECT_THROW(
      Datatype::record({{12, Datatype::float64()}}, 16, "bad"),
      std::invalid_argument);
}

TEST(Datatype, AdjacentSegmentsMerge) {
  // Contiguous vector should collapse to one memcpy segment; verify via a
  // round trip of a large block (behavioural check).
  const auto t = Datatype::contiguous(1024, Datatype::bytes(1));
  std::vector<std::byte> src(1024), wire(1024), dst(1024);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i);
  t.pack(src.data(), wire.data());
  t.unpack(wire.data(), dst.data());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

}  // namespace
}  // namespace ds::mpi
