#include "mpi/io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/machine_helpers.hpp"

namespace ds::mpi {
namespace {

TEST(FileIo, WriteAllLaysBlocksInRankOrder) {
  mpi::Machine machine(testing::tiny_machine(4));
  machine.run([&](Rank& self) {
    File file(machine, self.world(), "out.dat", /*aggregator_stride=*/2);
    const char c = static_cast<char>('a' + self.world_rank());
    std::vector<char> block(static_cast<std::size_t>(self.world_rank()) + 1, c);
    file.write_all(self, SendBuf::of(block.data(), block.size()));
  });
  const auto content = machine.filesystem().open("out.dat")->content();
  ASSERT_EQ(content.size(), 10u);  // 1+2+3+4
  const std::string text(reinterpret_cast<const char*>(content.data()),
                         content.size());
  EXPECT_EQ(text, "abbcccdddd");
}

TEST(FileIo, SecondCollectiveWriteAppends) {
  mpi::Machine machine(testing::tiny_machine(2));
  machine.run([&](Rank& self) {
    File file(machine, self.world(), "f", 32);
    const char first = static_cast<char>('0' + self.world_rank());
    const char second = static_cast<char>('A' + self.world_rank());
    file.write_all(self, SendBuf::of(&first, 1));
    file.write_all(self, SendBuf::of(&second, 1));
  });
  const auto content = machine.filesystem().open("f")->content();
  const std::string text(reinterpret_cast<const char*>(content.data()),
                         content.size());
  EXPECT_EQ(text, "01AB");
}

TEST(FileIo, WriteSharedKeepsRecordsIntact) {
  mpi::Machine machine(testing::tiny_machine(4));
  machine.run([&](Rank& self) {
    File file(machine, self.world(), "s");
    const std::uint64_t record = 1000 + self.world_rank();
    file.write_shared(self, SendBuf::of(&record, 1));
  });
  const auto content = machine.filesystem().open("s")->content();
  ASSERT_EQ(content.size(), 32u);
  std::vector<std::uint64_t> records(4);
  std::memcpy(records.data(), content.data(), 32);
  std::sort(records.begin(), records.end());
  EXPECT_EQ(records, (std::vector<std::uint64_t>{1000, 1001, 1002, 1003}));
}

TEST(FileIo, WriteAtPlacesExactly) {
  mpi::Machine machine(testing::tiny_machine(2));
  machine.run([&](Rank& self) {
    File file(machine, self.world(), "a");
    const char c = self.world_rank() == 0 ? 'x' : 'y';
    file.write_at(self, static_cast<std::uint64_t>(self.world_rank()) * 4,
                  SendBuf::of(&c, 1));
  });
  const auto content = machine.filesystem().open("a")->content();
  ASSERT_GE(content.size(), 5u);
  EXPECT_EQ(static_cast<char>(content[0]), 'x');
  EXPECT_EQ(static_cast<char>(content[4]), 'y');
}

TEST(FileIo, SharedWritesSerializeCollectiveWritesAggregate) {
  // With many small writers, the shared-pointer path must be slower than the
  // collective two-phase path: this is the Fig. 8 mechanism in miniature.
  const int p = 32;
  auto run = [&](bool shared) {
    mpi::MachineConfig cfg = testing::tiny_machine(p);
    mpi::Machine machine(cfg);
    return util::to_seconds(machine.run([&](Rank& self) {
      File file(machine, self.world(), "t");
      for (int i = 0; i < 4; ++i) {
        if (shared) {
          file.write_shared(self, SendBuf::synthetic(4096));
        } else {
          file.write_all(self, SendBuf::synthetic(4096));
        }
      }
    }));
  };
  EXPECT_GT(run(true), run(false));
}

TEST(FileIo, SetViewSynchronizes) {
  std::vector<util::SimTime> after(3, 0);
  mpi::Machine machine(testing::tiny_machine(3));
  machine.run([&](Rank& self) {
    File file(machine, self.world(), "v");
    if (self.world_rank() == 1) self.process().advance(util::milliseconds(2));
    file.set_view(self);
    after[static_cast<std::size_t>(self.world_rank())] = self.now();
  });
  for (const auto t : after) EXPECT_GE(t, util::milliseconds(2));
}

TEST(FileIo, SyntheticWritesTrackSizeWithoutContent) {
  mpi::Machine machine(testing::tiny_machine(2));
  machine.run([&](Rank& self) {
    File file(machine, self.world(), "z");
    file.write_all(self, SendBuf::synthetic(1 << 20));
  });
  EXPECT_EQ(machine.filesystem().open("z")->size(), 2u << 20);
}

}  // namespace
}  // namespace ds::mpi
