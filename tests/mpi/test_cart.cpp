#include "mpi/cart.hpp"

#include <gtest/gtest.h>

namespace ds::mpi {
namespace {

TEST(Cart, DimsCreateCubes) {
  EXPECT_EQ(CartTopology::dims_create(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(CartTopology::dims_create(27), (std::array<int, 3>{3, 3, 3}));
  EXPECT_EQ(CartTopology::dims_create(64), (std::array<int, 3>{4, 4, 4}));
}

TEST(Cart, DimsCreateNonCubes) {
  for (const int p : {1, 2, 6, 12, 30, 100, 8192}) {
    const auto d = CartTopology::dims_create(p);
    EXPECT_EQ(d[0] * d[1] * d[2], p) << p;
    EXPECT_GE(d[0], d[1]);
    EXPECT_GE(d[1], d[2]);
  }
}

TEST(Cart, RankCoordRoundTrip) {
  const CartTopology cart({3, 2, 4}, {false, false, false});
  for (int r = 0; r < cart.size(); ++r)
    EXPECT_EQ(cart.rank_of(cart.coords_of(r)), r);
}

TEST(Cart, RowMajorConvention) {
  const CartTopology cart({2, 3, 4}, {false, false, false});
  EXPECT_EQ(cart.rank_of({0, 0, 0}), 0);
  EXPECT_EQ(cart.rank_of({0, 0, 1}), 1);
  EXPECT_EQ(cart.rank_of({0, 1, 0}), 4);
  EXPECT_EQ(cart.rank_of({1, 0, 0}), 12);
}

TEST(Cart, NonPeriodicEdgesReturnNull) {
  const CartTopology cart({2, 2, 2}, {false, false, false});
  EXPECT_EQ(cart.neighbor(0, 0, -1), -1);
  EXPECT_EQ(cart.neighbor(0, 0, +1), cart.rank_of({1, 0, 0}));
}

TEST(Cart, PeriodicWrapsAround) {
  const CartTopology cart({3, 1, 1}, {true, false, false});
  EXPECT_EQ(cart.neighbor(0, 0, -1), 2);
  EXPECT_EQ(cart.neighbor(2, 0, +1), 0);
  EXPECT_EQ(cart.neighbor(0, 0, -4), 2);  // multiple wraps
}

TEST(Cart, FaceNeighborsOrdering) {
  const CartTopology cart({3, 3, 3}, {false, false, false});
  const int center = cart.rank_of({1, 1, 1});
  const auto n = cart.face_neighbors(center);
  EXPECT_EQ(n[0], cart.rank_of({0, 1, 1}));
  EXPECT_EQ(n[1], cart.rank_of({2, 1, 1}));
  EXPECT_EQ(n[2], cart.rank_of({1, 0, 1}));
  EXPECT_EQ(n[3], cart.rank_of({1, 2, 1}));
  EXPECT_EQ(n[4], cart.rank_of({1, 1, 0}));
  EXPECT_EQ(n[5], cart.rank_of({1, 1, 2}));
}

TEST(Cart, NeighborhoodIsSymmetric) {
  const CartTopology cart({4, 3, 2}, {false, false, false});
  for (int r = 0; r < cart.size(); ++r) {
    const auto n = cart.face_neighbors(r);
    for (int f = 0; f < 6; ++f) {
      if (n[static_cast<std::size_t>(f)] < 0) continue;
      const auto back = cart.face_neighbors(n[static_cast<std::size_t>(f)]);
      EXPECT_EQ(back[static_cast<std::size_t>(f ^ 1)], r);
    }
  }
}

TEST(Cart, MooreNeighborhoodCountsAndMembers) {
  const CartTopology cart({3, 3, 3}, {false, false, false});
  // The center of a 3x3x3 grid has the full 26-cell neighbourhood.
  EXPECT_EQ(cart.moore_neighbors(cart.rank_of({1, 1, 1})).size(), 26u);
  // A corner has only 7 neighbours.
  const auto corner = cart.moore_neighbors(cart.rank_of({0, 0, 0}));
  EXPECT_EQ(corner.size(), 7u);
  // Face neighbours are a subset of the Moore neighbourhood.
  const int center = cart.rank_of({1, 1, 1});
  const auto moore = cart.moore_neighbors(center);
  for (const int f : cart.face_neighbors(center))
    EXPECT_TRUE(std::binary_search(moore.begin(), moore.end(), f));
}

TEST(Cart, MooreNeighborhoodPeriodicSmallGrid) {
  // 2-wide periodic dimension: +1 and -1 alias to the same rank, which must
  // appear once, and self-aliases are excluded.
  const CartTopology cart({2, 1, 1}, {true, true, true});
  const auto n = cart.moore_neighbors(0);
  EXPECT_EQ(n, (std::vector<int>{1}));
}

TEST(Cart, InvalidInputsThrow) {
  EXPECT_THROW(CartTopology({0, 1, 1}, {false, false, false}),
               std::invalid_argument);
  EXPECT_THROW(CartTopology::dims_create(0), std::invalid_argument);
  const CartTopology cart({2, 2, 2}, {false, false, false});
  EXPECT_THROW(cart.coords_of(8), std::out_of_range);
  EXPECT_THROW(cart.rank_of({2, 0, 0}), std::out_of_range);
  EXPECT_THROW(cart.neighbor(0, 3, 1), std::out_of_range);
}

}  // namespace
}  // namespace ds::mpi
