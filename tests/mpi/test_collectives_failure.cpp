// Failure-aware collectives: a rank crash at ANY virtual time — including
// inside a collective's wire rounds — never hangs the survivors. Each suite
// below measures a collective's fault-free makespan, then sweeps a crash
// across a dense grid of virtual times covering every round window and
// asserts the survivors complete (with a failed outcome when they observed
// the crash, with correct data when they finished clean first — ULFM
// semantics), and that no pooled operation slot leaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/machine_helpers.hpp"
#include "core/channel.hpp"
#include "mpi/io.hpp"
#include "mpi/rank.hpp"
#include "resilience/fault.hpp"

namespace ds {
namespace {

using mpi::AgreeResult;
using mpi::Rank;
using mpi::RecvBuf;
using mpi::SendBuf;
using mpi::Status;

/// Crash instants covering [1ns, makespan]: every wire round of a
/// collective spans >= network latency (1.3us), so `kSweepPoints` evenly
/// spaced instants across the fault-free makespan land several crashes
/// inside every round window, plus the boundaries.
constexpr int kSweepPoints = 16;

std::vector<util::SimTime> crash_grid(util::SimTime makespan) {
  std::vector<util::SimTime> grid;
  grid.push_back(util::nanoseconds(1));
  for (int i = 1; i <= kSweepPoints; ++i)
    grid.push_back(std::max<util::SimTime>(
        1, makespan * i / kSweepPoints));
  return grid;
}

/// Run `program` with `victim` crashed at `at`; assert the run completes and
/// drains both op pools (the collective state machines released every slot
/// even though the schedule was cut by the crash).
void run_with_crash(int world, int victim, util::SimTime at,
                    const std::function<void(Rank&)>& program) {
  auto config = testing::tiny_machine(world);
  config.faults.crash(victim, at);
  mpi::Machine machine(config);
  machine.run(program);
  EXPECT_TRUE(machine.rank_failed(victim));
  EXPECT_EQ(machine.pool_stats().send.outstanding(), 0u) << "crash at " << at;
  EXPECT_EQ(machine.pool_stats().recv.outstanding(), 0u) << "crash at " << at;
}

TEST(CollectivesFailure, BarrierSurvivesCrashAtEveryRound) {
  constexpr int kP = 8, kVictim = 3;
  const util::SimTime makespan = testing::run_program(
      testing::tiny_machine(kP), [](Rank& self) { self.barrier(self.world()); });
  for (const util::SimTime at : crash_grid(makespan)) {
    std::vector<int> completed(kP, 0);
    run_with_crash(kP, kVictim, at, [&](Rank& self) {
      (void)self.barrier(self.world());
      completed[static_cast<std::size_t>(self.world_rank())] = 1;
    });
    for (int r = 0; r < kP; ++r)
      if (r != kVictim)
        EXPECT_TRUE(completed[static_cast<std::size_t>(r)])
            << "rank " << r << " hung, crash at " << at;
  }
}

TEST(CollectivesFailure, BcastSurvivesCrashAtEveryRound) {
  constexpr int kP = 8, kRoot = 0, kVictim = 2;
  const util::SimTime makespan =
      testing::run_program(testing::tiny_machine(kP), [](Rank& self) {
        int v = self.world_rank() == kRoot ? 99 : -1;
        self.bcast(self.world(), kRoot, RecvBuf::of(&v, 1));
      });
  for (const util::SimTime at : crash_grid(makespan)) {
    run_with_crash(kP, kVictim, at, [&](Rank& self) {
      int v = self.world_rank() == kRoot ? 99 : -1;
      const Status st = self.bcast(self.world(), kRoot, RecvBuf::of(&v, 1));
      // ULFM outcome contract: data of a failed broadcast is undefined, but
      // a member that completed clean must hold the root's value.
      if (!st.failed) EXPECT_EQ(v, 99) << "crash at " << at;
    });
  }
}

TEST(CollectivesFailure, BcastRootCrashFailsEveryone) {
  // The root dies before contributing anything: every survivor must observe
  // a failed outcome (nobody can have the value), and nobody hangs.
  constexpr int kP = 8, kRoot = 0;
  std::vector<int> failed(kP, 0);
  run_with_crash(kP, kRoot, util::nanoseconds(1), [&](Rank& self) {
    int v = self.world_rank() == kRoot ? 99 : -1;
    const Status st = self.bcast(self.world(), kRoot, RecvBuf::of(&v, 1));
    failed[static_cast<std::size_t>(self.world_rank())] = st.failed ? 1 : 0;
  });
  for (int r = 1; r < kP; ++r)
    EXPECT_TRUE(failed[static_cast<std::size_t>(r)]) << "rank " << r;
}

TEST(CollectivesFailure, AllreduceSurvivesCrashAtEveryRound) {
  constexpr int kP = 8, kVictim = 5;
  const long long expected = kP * (kP + 1) / 2;
  const util::SimTime makespan =
      testing::run_program(testing::tiny_machine(kP), [](Rank& self) {
        const long long mine = self.world_rank() + 1;
        long long out = 0;
        self.allreduce(self.world(), SendBuf::of(&mine, 1), &out,
                       mpi::reduce_sum<long long>());
      });
  for (const util::SimTime at : crash_grid(makespan)) {
    run_with_crash(kP, kVictim, at, [&](Rank& self) {
      const long long mine = self.world_rank() + 1;
      long long out = 0;
      const Status st = self.allreduce(self.world(), SendBuf::of(&mine, 1),
                                       &out, mpi::reduce_sum<long long>());
      if (!st.failed) EXPECT_EQ(out, expected) << "crash at " << at;
    });
  }
}

TEST(CollectivesFailure, AllgathervSurvivesCrashAtEveryRound) {
  constexpr int kP = 8, kVictim = 6;
  const std::vector<std::size_t> counts(kP, sizeof(std::int32_t));
  const util::SimTime makespan =
      testing::run_program(testing::tiny_machine(kP), [&](Rank& self) {
        const std::int32_t mine = self.world_rank();
        std::vector<std::int32_t> out(kP, -1);
        self.allgatherv(self.world(), SendBuf::of(&mine, 1), out.data(), counts);
      });
  for (const util::SimTime at : crash_grid(makespan)) {
    run_with_crash(kP, kVictim, at, [&](Rank& self) {
      const std::int32_t mine = self.world_rank();
      std::vector<std::int32_t> out(kP, -1);
      const Status st = self.allgatherv(self.world(), SendBuf::of(&mine, 1),
                                        out.data(), counts);
      if (!st.failed)
        for (int r = 0; r < kP; ++r)
          EXPECT_EQ(out[static_cast<std::size_t>(r)], r) << "crash at " << at;
    });
  }
}

TEST(CollectivesFailure, AgreeSurvivorsAlwaysSeeTheSameResult) {
  // The whole point of agree(): no matter where mid-agreement the crash
  // lands — before the victim deposits, between deposit and freeze, after —
  // every survivor returns the exact same (value, survivors, failed) triple.
  constexpr int kP = 8, kVictim = 3;
  const util::SimTime makespan =
      testing::run_program(testing::tiny_machine(kP), [](Rank& self) {
        (void)self.agree(self.world(),
                         1ull << static_cast<unsigned>(self.world_rank()));
      });
  for (const util::SimTime at : crash_grid(makespan)) {
    std::vector<AgreeResult> results(kP);
    std::vector<int> completed(kP, 0);
    run_with_crash(kP, kVictim, at, [&](Rank& self) {
      const auto me = static_cast<std::size_t>(self.world_rank());
      results[me] = self.agree(
          self.world(), 1ull << static_cast<unsigned>(self.world_rank()));
      completed[me] = 1;
    });
    const AgreeResult* first = nullptr;
    for (int r = 0; r < kP; ++r) {
      if (r == kVictim) continue;
      const auto& res = results[static_cast<std::size_t>(r)];
      ASSERT_TRUE(completed[static_cast<std::size_t>(r)])
          << "rank " << r << " hung in agree, crash at " << at;
      // Every survivor's own bit made it in (it deposited before blocking).
      EXPECT_NE(res.value & (1ull << static_cast<unsigned>(r)), 0u);
      if (!first) {
        first = &res;
        continue;
      }
      EXPECT_EQ(res.value, first->value) << "crash at " << at;
      EXPECT_EQ(res.survivors, first->survivors) << "crash at " << at;
      EXPECT_EQ(res.failed, first->failed) << "crash at " << at;
    }
    ASSERT_NE(first, nullptr);
    // The victim is either in the agreed dead set (crash froze in) or the
    // agreement finished before the crash — never in both views.
    const bool victim_dead =
        std::find(first->failed.begin(), first->failed.end(), kVictim) !=
        first->failed.end();
    const bool victim_survivor =
        std::find(first->survivors.begin(), first->survivors.end(), kVictim) !=
        first->survivors.end();
    EXPECT_NE(victim_dead, victim_survivor) << "crash at " << at;
  }
}

TEST(CollectivesFailure, ChannelCreateRebuildsOverSurvivorsAtEveryCrashTime) {
  // A crash anywhere inside Channel::create's role exchange or agreement:
  // the survivors re-derive membership from the agreed failure view, retry,
  // and all end up in one channel spanning exactly the survivors.
  constexpr int kP = 6, kVictim = 4;  // ranks 0-2 produce, 3-5 consume
  const auto program_body = [](Rank& self, stream::Channel* out) {
    stream::ChannelConfig cfg;
    cfg.channel_id = 7;
    auto ch = stream::Channel::create(self, self.world(),
                                      /*is_producer=*/self.world_rank() < 3,
                                      /*is_consumer=*/self.world_rank() >= 3,
                                      cfg);
    if (out) *out = ch;
    ch.free(self);
  };
  const util::SimTime makespan = testing::run_program(
      testing::tiny_machine(kP),
      [&](Rank& self) { program_body(self, nullptr); });
  for (const util::SimTime at : crash_grid(makespan)) {
    std::vector<stream::Channel> built(kP);
    run_with_crash(kP, kVictim, at, [&](Rank& self) {
      program_body(self, &built[static_cast<std::size_t>(self.world_rank())]);
    });
    for (int r = 0; r < kP; ++r) {
      if (r == kVictim) continue;
      const auto& ch = built[static_cast<std::size_t>(r)];
      ASSERT_TRUE(ch.valid()) << "rank " << r << ", crash at " << at;
      EXPECT_EQ(ch.producer_count(), 3) << "crash at " << at;
      // Either the create finished before the crash (victim included) or it
      // rebuilt over the survivors (victim excluded) — consistently.
      EXPECT_EQ(ch.consumer_count(),
                built[0].consumer_count())
          << "crash at " << at;
      EXPECT_GE(ch.consumer_count(), 2) << "crash at " << at;
      EXPECT_LE(ch.consumer_count(), 3) << "crash at " << at;
    }
  }
}

TEST(CollectivesFailure, ChannelCreateSurvivesProducerCrashDuringSetup) {
  // crash_during_setup lands the crash one nanosecond in — strictly inside
  // the first wire round of the role exchange.
  constexpr int kP = 6, kVictim = 1;
  auto config = testing::tiny_machine(kP);
  config.faults.crash_during_setup(kVictim);
  std::vector<int> producer_counts(kP, -1);
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    auto ch = stream::Channel::create(self, self.world(),
                                      self.world_rank() < 3,
                                      self.world_rank() >= 3);
    producer_counts[static_cast<std::size_t>(self.world_rank())] =
        ch.producer_count();
    ch.free(self);
  });
  for (int r = 0; r < kP; ++r) {
    if (r == kVictim) continue;
    EXPECT_EQ(producer_counts[static_cast<std::size_t>(r)], 2) << "rank " << r;
  }
  EXPECT_EQ(machine.pool_stats().send.outstanding(), 0u);
  EXPECT_EQ(machine.pool_stats().recv.outstanding(), 0u);
}

TEST(CollectivesFailure, ChannelFreeDrainsDespiteDeadMember) {
  // A member dies mid-run; the others still tear the channel down — over
  // the failure-aware quiesce barrier (plain) or the agreement drain
  // (resilient) — instead of deadlocking on the dead member's contribution.
  for (const bool resilient : {false, true}) {
    constexpr int kP = 4, kVictim = 2;
    auto config = testing::tiny_machine(kP);
    config.faults.crash(kVictim, util::milliseconds(1));
    std::vector<int> freed(kP, 0);
    mpi::Machine machine(config);
    machine.run([&](Rank& self) {
      stream::ChannelConfig cfg;
      if (resilient) cfg.checkpoint_interval = 8;
      auto ch = stream::Channel::create(self, self.world(),
                                        self.world_rank() < 2,
                                        self.world_rank() >= 2, cfg);
      self.compute(util::milliseconds(2));  // the victim dies in here
      ch.free(self);
      freed[static_cast<std::size_t>(self.world_rank())] = 1;
    });
    for (int r = 0; r < kP; ++r) {
      if (r == kVictim) continue;
      EXPECT_TRUE(freed[static_cast<std::size_t>(r)])
          << "rank " << r << ", resilient=" << resilient;
    }
    EXPECT_EQ(machine.pool_stats().send.outstanding(), 0u);
    EXPECT_EQ(machine.pool_stats().recv.outstanding(), 0u);
  }
}

TEST(CollectivesFailure, IoSetViewSurvivesMetadataRankCrash) {
  // Rank 0 (the member that refreshes the file metadata) dies during the
  // view definition: survivors observe a failed outcome at the barrier.
  constexpr int kP = 4;
  auto config = testing::tiny_machine(kP);
  config.faults.crash_during_setup(0);
  std::vector<int> outcome(kP, -1);
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    mpi::File file(self.machine(), self.world(), "view.dat");
    const Status st = file.set_view(self);
    outcome[static_cast<std::size_t>(self.world_rank())] = st.failed ? 1 : 0;
  });
  for (int r = 1; r < kP; ++r)
    EXPECT_EQ(outcome[static_cast<std::size_t>(r)], 1) << "rank " << r;
  EXPECT_EQ(machine.pool_stats().send.outstanding(), 0u);
  EXPECT_EQ(machine.pool_stats().recv.outstanding(), 0u);
}

TEST(CollectivesFailure, IoWriteAllSurvivesCrashAtEveryPhase) {
  // Collective write with one aggregator per pair: sweep a crash of a
  // non-aggregator across the whole collective (size exchange, block
  // shipping, write, barrier). Survivors always return.
  constexpr int kP = 4, kVictim = 3;
  const auto body = [](Rank& self, std::vector<int>* outcome) {
    mpi::File file(self.machine(), self.world(), "all.dat",
                   /*aggregator_stride=*/2);
    std::vector<std::byte> block(64 * (1 + self.world_rank()));
    const Status st = file.write_all(self, SendBuf{block.data(), block.size()});
    if (outcome)
      (*outcome)[static_cast<std::size_t>(self.world_rank())] = st.failed;
  };
  const util::SimTime makespan = testing::run_program(
      testing::tiny_machine(kP), [&](Rank& self) { body(self, nullptr); });
  for (const util::SimTime at : crash_grid(makespan)) {
    std::vector<int> outcome(kP, -1);
    run_with_crash(kP, kVictim, at,
                   [&](Rank& self) { body(self, &outcome); });
    for (int r = 0; r < kP; ++r)
      if (r != kVictim)
        EXPECT_NE(outcome[static_cast<std::size_t>(r)], -1)
            << "rank " << r << " hung, crash at " << at;
  }
}

TEST(CollectivesFailure, CollectiveTimeoutWatchdogAbortsWedgedCollective) {
  // A member that simply never shows up (no crash — the failure record
  // stays empty, so failure-awareness cannot release the others) trips the
  // watchdog in bounded virtual time instead of wedging the run.
  auto config = testing::tiny_machine(2);
  config.collective_timeout = util::milliseconds(1);
  mpi::Machine machine(config);
  EXPECT_THROW(machine.run([](Rank& self) {
                 if (self.world_rank() == 1)
                   self.compute(util::seconds_i(1));  // far past the budget
                 self.barrier(self.world());
               }),
               mpi::CollectiveTimeout);
}

TEST(CollectivesFailure, CollectiveTimeoutSilentOnFailureAwareCompletion) {
  // A crash-released collective completes (failed) well inside the budget:
  // the armed watchdog must not fire afterwards.
  auto config = testing::tiny_machine(4);
  config.collective_timeout = util::milliseconds(10);
  config.faults.crash(2, util::microseconds(5));
  std::vector<int> done(4, 0);
  mpi::Machine machine(config);
  machine.run([&](Rank& self) {
    (void)self.barrier(self.world());
    done[static_cast<std::size_t>(self.world_rank())] = 1;
  });
  for (int r = 0; r < 4; ++r)
    if (r != 2) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
}

TEST(CollectivesFailure, FaultPlanRejectsCrashAtTimeZero) {
  sim::FaultPlan plan;
  plan.crash(1, 0);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
  // And through the machine, where validation actually runs.
  auto config = testing::tiny_machine(2);
  config.faults.crash(1, 0);
  mpi::Machine machine(config);
  EXPECT_THROW(machine.run([](Rank&) {}), std::invalid_argument);
}

TEST(CollectivesFailure, CrashDuringSetupSchedulesEarliestUsefulCrash) {
  sim::FaultPlan plan;
  plan.crash_during_setup(2);
  ASSERT_EQ(plan.events.size(), 1u);
  EXPECT_EQ(plan.first_crash_at(2), util::nanoseconds(1));
  plan.validate(4);  // one nanosecond is past the t=0 rejection
}

}  // namespace
}  // namespace ds
