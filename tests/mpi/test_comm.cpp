#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include "common/machine_helpers.hpp"

namespace ds::mpi {
namespace {

TEST(Comm, InvalidByDefault) {
  Comm c;
  EXPECT_FALSE(c.valid());
}

TEST(Comm, TranslatesRanks) {
  const Comm c(7, Group({4, 1, 8}));
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.world_rank(2), 8);
  EXPECT_EQ(c.rank_of_world(1), 1);
  EXPECT_EQ(c.rank_of_world(5), -1);
}

TEST(Comm, EqualityByContext) {
  const Comm a(7, Group({0, 1}));
  const Comm b(7, Group({0, 1}));
  const Comm c(8, Group({0, 1}));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(CommSplit, PartitionsByColor) {
  std::vector<int> sizes(6, 0);
  std::vector<int> ranks(6, -1);
  testing::run_program(testing::tiny_machine(6), [&](Rank& self) {
    const int me = self.world_rank();
    const Comm sub = self.split(self.world(), me % 2, me);
    sizes[static_cast<std::size_t>(me)] = sub.size();
    ranks[static_cast<std::size_t>(me)] = self.rank_in(sub);
  });
  for (int r = 0; r < 6; ++r) EXPECT_EQ(sizes[static_cast<std::size_t>(r)], 3);
  // Even world ranks 0,2,4 become 0,1,2 in their sub-communicator.
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[2], 1);
  EXPECT_EQ(ranks[4], 2);
}

TEST(CommSplit, KeyControlsOrdering) {
  std::vector<int> ranks(4, -1);
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    // Reverse order via descending keys.
    const Comm sub = self.split(self.world(), 0, -me);
    ranks[static_cast<std::size_t>(me)] = self.rank_in(sub);
  });
  EXPECT_EQ(ranks[0], 3);
  EXPECT_EQ(ranks[3], 0);
}

TEST(CommSplit, UndefinedColorGetsInvalidComm) {
  std::vector<bool> valid(4, true);
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    const Comm sub = self.split(self.world(), me == 0 ? -1 : 0, me);
    valid[static_cast<std::size_t>(me)] = sub.valid();
  });
  EXPECT_FALSE(valid[0]);
  EXPECT_TRUE(valid[1]);
}

TEST(CommSplit, SubCommunicatorsCarryIsolatedTraffic) {
  std::vector<int> got(4, -1);
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    const Comm sub = self.split(self.world(), me / 2, me);
    // Same (peer rank, tag) in both sub-communicators; contexts isolate.
    const int payload = 100 + me;
    if (self.rank_in(sub) == 0) {
      self.send(sub, 1, 5, SendBuf::of(&payload, 1));
    } else {
      int value = 0;
      (void)self.recv(sub, 0, 5, RecvBuf::of(&value, 1));
      got[static_cast<std::size_t>(me)] = value;
    }
  });
  EXPECT_EQ(got[1], 100);  // from world rank 0
  EXPECT_EQ(got[3], 102);  // from world rank 2
}

TEST(CommSplit, ConsecutiveSplitsGetDistinctContexts) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const Comm a = self.split(self.world(), 0, 0);
    const Comm b = self.split(self.world(), 0, 0);
    EXPECT_NE(a.context(), b.context());
  });
}

}  // namespace
}  // namespace ds::mpi
