#include "mpi/group.hpp"

#include <gtest/gtest.h>

namespace ds::mpi {
namespace {

TEST(Group, WorldIsIdentity) {
  const Group g = Group::world(4);
  EXPECT_EQ(g.size(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(g.world_rank(i), i);
    EXPECT_EQ(g.rank_of(i), i);
  }
}

TEST(Group, CustomOrderTranslates) {
  const Group g({5, 2, 9});
  EXPECT_EQ(g.world_rank(0), 5);
  EXPECT_EQ(g.rank_of(9), 2);
  EXPECT_EQ(g.rank_of(3), -1);
  EXPECT_TRUE(g.contains(2));
  EXPECT_FALSE(g.contains(4));
}

TEST(Group, DuplicateMembersRejected) {
  EXPECT_THROW(Group({1, 2, 1}), std::invalid_argument);
}

TEST(Group, IncludeSelectsInGivenOrder) {
  const Group g({10, 20, 30, 40});
  const Group sub = g.include({3, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.world_rank(0), 40);
  EXPECT_EQ(sub.world_rank(1), 10);
}

TEST(Group, IncludeOutOfRangeThrows) {
  const Group g({1, 2});
  EXPECT_THROW(g.include({2}), std::out_of_range);
}

TEST(Group, ExcludeKeepsOrder) {
  const Group g({10, 20, 30, 40});
  const Group sub = g.exclude({1});
  EXPECT_EQ(sub.members(), (std::vector<int>{10, 30, 40}));
}

TEST(Group, ExcludeInvalidThrows) {
  const Group g({10});
  EXPECT_THROW(g.exclude({-1}), std::out_of_range);
  EXPECT_THROW(g.exclude({1}), std::out_of_range);
}

TEST(Group, FilterByPosition) {
  const Group g = Group::world(10);
  const Group evens = g.filter_by_position([](int r) { return r % 2 == 0; });
  EXPECT_EQ(evens.size(), 5);
  EXPECT_EQ(evens.world_rank(2), 4);
}

TEST(Group, Equality) {
  EXPECT_EQ(Group({1, 2}), Group({1, 2}));
  EXPECT_FALSE(Group({1, 2}) == Group({2, 1}));
}

}  // namespace
}  // namespace ds::mpi
