#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/machine_helpers.hpp"

namespace ds::mpi {
namespace {

TEST(Collectives, BarrierSynchronizesLaggard) {
  std::vector<util::SimTime> exit_times(4, 0);
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    if (self.world_rank() == 2) self.process().advance(util::milliseconds(3));
    self.barrier(self.world());
    exit_times[static_cast<std::size_t>(self.world_rank())] = self.now();
  });
  for (const auto t : exit_times) EXPECT_GE(t, util::milliseconds(3));
}

TEST(Collectives, BcastDeliversFromNonZeroRoot) {
  std::vector<int> got(5, -1);
  testing::run_program(testing::tiny_machine(5), [&](Rank& self) {
    int value = self.world_rank() == 3 ? 99 : -1;
    self.bcast(self.world(), 3, RecvBuf::of(&value, 1));
    got[static_cast<std::size_t>(self.world_rank())] = value;
  });
  for (const int v : got) EXPECT_EQ(v, 99);
}

TEST(Collectives, ReduceSumsToRoot) {
  long long result = 0;
  constexpr int kP = 6;
  testing::run_program(testing::tiny_machine(kP), [&](Rank& self) {
    const long long mine = self.world_rank() + 1;
    long long out = 0;
    self.reduce(self.world(), 0, SendBuf::of(&mine, 1), &out,
                reduce_sum<long long>());
    if (self.world_rank() == 0) result = out;
  });
  EXPECT_EQ(result, kP * (kP + 1) / 2);
}

TEST(Collectives, ReduceVectorElementwise) {
  std::vector<double> result;
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    std::vector<double> mine(8);
    std::iota(mine.begin(), mine.end(), static_cast<double>(self.world_rank()));
    std::vector<double> out(8, 0.0);
    self.reduce(self.world(), 0, SendBuf::of(mine.data(), mine.size()),
                out.data(), reduce_sum<double>());
    if (self.world_rank() == 0) result = out;
  });
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(result[static_cast<std::size_t>(i)], 3.0 * i + 3.0);
}

TEST(Collectives, ReduceMinMax) {
  int min_out = 0, max_out = 0;
  testing::run_program(testing::tiny_machine(5), [&](Rank& self) {
    const int mine = (self.world_rank() * 7) % 5;  // 0,2,4,1,3
    int lo = 0, hi = 0;
    self.reduce(self.world(), 0, SendBuf::of(&mine, 1), &lo, reduce_min<int>());
    self.reduce(self.world(), 0, SendBuf::of(&mine, 1), &hi, reduce_max<int>());
    if (self.world_rank() == 0) {
      min_out = lo;
      max_out = hi;
    }
  });
  EXPECT_EQ(min_out, 0);
  EXPECT_EQ(max_out, 4);
}

TEST(Collectives, AllreduceGivesEveryoneTheSum) {
  std::vector<double> results(4, 0);
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const double mine = 1.5;
    double out = 0;
    self.allreduce(self.world(), SendBuf::of(&mine, 1), &out,
                   reduce_sum<double>());
    results[static_cast<std::size_t>(self.world_rank())] = out;
  });
  for (const double v : results) EXPECT_DOUBLE_EQ(v, 6.0);
}

TEST(Collectives, AllgathervVariableBlocks) {
  constexpr int kP = 4;
  std::vector<std::vector<std::int32_t>> results(kP);
  testing::run_program(testing::tiny_machine(kP), [&](Rank& self) {
    const int me = self.world_rank();
    // Rank r contributes r+1 copies of value r.
    std::vector<std::int32_t> mine(static_cast<std::size_t>(me + 1), me);
    std::vector<std::size_t> counts;
    std::size_t total = 0;
    for (int r = 0; r < kP; ++r) {
      counts.push_back(static_cast<std::size_t>(r + 1) * sizeof(std::int32_t));
      total += static_cast<std::size_t>(r + 1);
    }
    std::vector<std::int32_t> out(total, -1);
    self.allgatherv(self.world(), SendBuf::of(mine.data(), mine.size()),
                    out.data(), counts);
    results[static_cast<std::size_t>(me)] = out;
  });
  const std::vector<std::int32_t> expected{0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

TEST(Collectives, AllgathervPowerOfTwoUsesRecursiveDoublingCorrectly) {
  constexpr int kP = 8;  // power of two -> recursive doubling path
  std::vector<std::vector<std::int32_t>> results(kP);
  testing::run_program(testing::tiny_machine(kP), [&](Rank& self) {
    const int me = self.world_rank();
    std::vector<std::int32_t> mine{me, me * 10};
    const std::vector<std::size_t> counts(kP, 2 * sizeof(std::int32_t));
    std::vector<std::int32_t> out(2 * kP, -1);
    self.allgatherv(self.world(), SendBuf::of(mine.data(), 2), out.data(),
                    counts);
    results[static_cast<std::size_t>(me)] = out;
  });
  for (const auto& r : results) {
    for (int p = 0; p < kP; ++p) {
      EXPECT_EQ(r[static_cast<std::size_t>(2 * p)], p);
      EXPECT_EQ(r[static_cast<std::size_t>(2 * p + 1)], p * 10);
    }
  }
}

TEST(Collectives, AlltoallvExchangesPersonalizedData) {
  constexpr int kP = 4;
  std::vector<std::vector<std::int32_t>> results(kP);
  testing::run_program(testing::tiny_machine(kP), [&](Rank& self) {
    const int me = self.world_rank();
    // Send one int to every rank: value = me*10 + dest.
    std::vector<std::int32_t> send(kP);
    for (int d = 0; d < kP; ++d) send[static_cast<std::size_t>(d)] = me * 10 + d;
    const std::vector<std::size_t> counts(kP, sizeof(std::int32_t));
    std::vector<std::int32_t> recv(kP, -1);
    self.alltoallv(self.world(), send.data(), counts, recv.data(), counts);
    results[static_cast<std::size_t>(me)] = recv;
  });
  for (int me = 0; me < kP; ++me)
    for (int src = 0; src < kP; ++src)
      EXPECT_EQ(results[static_cast<std::size_t>(me)][static_cast<std::size_t>(src)],
                src * 10 + me);
}

TEST(Collectives, AlltoallvSparsePatternSkipsEmptyPairs) {
  constexpr int kP = 6;
  std::vector<int> got(kP, -1);
  testing::run_program(testing::tiny_machine(kP), [&](Rank& self) {
    const int me = self.world_rank();
    // Ring: each rank sends one int to (me+1)%P only. With a single nonzero
    // count, the packed send/recv buffers hold exactly one element at
    // displacement zero.
    std::vector<std::size_t> scounts(kP, 0), rcounts(kP, 0);
    scounts[static_cast<std::size_t>((me + 1) % kP)] = sizeof(int);
    rcounts[static_cast<std::size_t>((me - 1 + kP) % kP)] = sizeof(int);
    const int payload = me;
    int received = -1;
    self.alltoallv(self.world(), &payload, scounts, &received, rcounts);
    got[static_cast<std::size_t>(me)] = received;
  });
  for (int me = 0; me < kP; ++me)
    EXPECT_EQ(got[static_cast<std::size_t>(me)], (me - 1 + kP) % kP);
}

TEST(Collectives, GathervCollectsAtRoot) {
  constexpr int kP = 5;
  std::vector<std::int64_t> result;
  testing::run_program(testing::tiny_machine(kP), [&](Rank& self) {
    const std::int64_t mine = self.world_rank() * 100;
    const std::vector<std::size_t> counts(kP, sizeof(std::int64_t));
    std::vector<std::int64_t> out(kP, -1);
    self.gatherv(self.world(), 2, SendBuf::of(&mine, 1),
                 self.world_rank() == 2 ? out.data() : nullptr, counts);
    if (self.world_rank() == 2) result = out;
  });
  for (int r = 0; r < kP; ++r)
    EXPECT_EQ(result[static_cast<std::size_t>(r)], r * 100);
}

TEST(Collectives, NonblockingReduceOverlapsCompute) {
  // The collective must progress while the fiber computes: total time should
  // be ~ the compute time, not compute + collective.
  const auto overlapped = testing::run_program(
      testing::tiny_machine(8), [&](Rank& self) {
        const Request req = self.ireduce(self.world(), 0,
                                         SendBuf::synthetic(1 << 20), nullptr, {});
        self.compute(util::milliseconds(50));
        self.wait(req);
      });
  const auto serial = testing::run_program(
      testing::tiny_machine(8), [&](Rank& self) {
        self.reduce(self.world(), 0, SendBuf::synthetic(1 << 20), nullptr, {});
        self.compute(util::milliseconds(50));
      });
  EXPECT_LT(overlapped, serial);
}

TEST(Collectives, SingletonCommunicatorCollectivesComplete) {
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    const Comm solo = self.split(self.world(), self.world_rank(), 0);
    self.barrier(solo);
    int v = self.world_rank();
    self.bcast(solo, 0, RecvBuf::of(&v, 1));
    int out = 0;
    self.reduce(solo, 0, SendBuf::of(&v, 1), &out, reduce_sum<int>());
    EXPECT_EQ(out, self.world_rank());
  });
}

TEST(Collectives, SyntheticCollectivesAdvanceTime) {
  const auto makespan = testing::run_program(
      testing::tiny_machine(16), [&](Rank& self) {
        self.reduce(self.world(), 0, SendBuf::synthetic(1 << 16), nullptr, {});
      });
  EXPECT_GT(makespan, 0);
}

}  // namespace
}  // namespace ds::mpi
