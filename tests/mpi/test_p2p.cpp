#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/machine_helpers.hpp"

namespace ds::mpi {
namespace {

TEST(P2P, BlockingSendRecvDeliversPayload) {
  std::vector<int> got;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      const std::vector<int> data{1, 2, 3};
      self.send(self.world(), 1, 7, SendBuf::of(data.data(), data.size()));
    } else {
      got.resize(3);
      const Status st = self.recv(self.world(), 0, 7, RecvBuf::of(got.data(), 3));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 12u);
      EXPECT_FALSE(st.synthetic);
    }
  });
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(P2P, LargeMessageUsesRendezvousAndStillDelivers) {
  // Above the 8 KiB eager threshold.
  constexpr std::size_t kCount = 5000;
  std::vector<double> got;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      std::vector<double> data(kCount);
      std::iota(data.begin(), data.end(), 0.0);
      self.send(self.world(), 1, 1, SendBuf::of(data.data(), data.size()));
    } else {
      got.resize(kCount);
      (void)self.recv(self.world(), 0, 1, RecvBuf::of(got.data(), got.size()));
    }
  });
  EXPECT_EQ(got[0], 0.0);
  EXPECT_EQ(got[kCount - 1], static_cast<double>(kCount - 1));
}

TEST(P2P, SyntheticMessageCarriesSizeOnly) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      self.send(self.world(), 1, 2, SendBuf::synthetic(1 << 20));
    } else {
      const Status st =
          self.recv(self.world(), 0, 2, RecvBuf::discard(1 << 20));
      EXPECT_EQ(st.bytes, 1u << 20);
      EXPECT_TRUE(st.synthetic);
    }
  });
}

TEST(P2P, HeaderOnlyCarriesHeaderWithModeledBody) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      const std::int64_t header = 0xABCD;
      self.send(self.world(), 1, 3, SendBuf::header_only(header, 1 << 16));
    } else {
      std::int64_t header = 0;
      const Status st =
          self.recv(self.world(), 0, 3, RecvBuf::of(&header, 1));
      EXPECT_EQ(header, 0xABCD);
      EXPECT_EQ(st.bytes, 1u << 16);  // wire size, not header size
    }
  });
}

TEST(P2P, MessagesFromOnePairAreOrdered) {
  std::vector<int> order;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      for (int i = 0; i < 20; ++i)
        self.send(self.world(), 1, 4, SendBuf::of(&i, 1));
    } else {
      for (int i = 0; i < 20; ++i) {
        int v = -1;
        (void)self.recv(self.world(), 0, 4, RecvBuf::of(&v, 1));
        order.push_back(v);
      }
    }
  });
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(P2P, TagsSelectMessages) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      const int a = 10, b = 20;
      self.send(self.world(), 1, 100, SendBuf::of(&a, 1));
      self.send(self.world(), 1, 200, SendBuf::of(&b, 1));
    } else {
      int v = 0;
      // Receive the later tag first: matching is by tag, not arrival.
      (void)self.recv(self.world(), 0, 200, RecvBuf::of(&v, 1));
      EXPECT_EQ(v, 20);
      (void)self.recv(self.world(), 0, 100, RecvBuf::of(&v, 1));
      EXPECT_EQ(v, 10);
    }
  });
}

TEST(P2P, AnySourceReceivesFromWhoeverArrivesFirst) {
  int first_source = -1;
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    if (self.world_rank() == 0) {
      int v = 0;
      const Status st =
          self.recv(self.world(), kAnySource, kAnyTag, RecvBuf::of(&v, 1));
      first_source = st.source;
      (void)self.recv(self.world(), kAnySource, kAnyTag, RecvBuf::of(&v, 1));
    } else if (self.world_rank() == 1) {
      self.process().advance(util::milliseconds(10));  // rank 2 wins the race
      const int v = 1;
      self.send(self.world(), 0, 9, SendBuf::of(&v, 1));
    } else {
      const int v = 2;
      self.send(self.world(), 0, 9, SendBuf::of(&v, 1));
    }
  });
  EXPECT_EQ(first_source, 2);
}

TEST(P2P, IsendIrecvWithWaitAll) {
  std::vector<int> got(4, -1);
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      std::vector<Request> reqs;
      std::vector<int> vals{0, 1, 2, 3};
      for (int i = 0; i < 4; ++i)
        reqs.push_back(self.isend(self.world(), 1, i, SendBuf::of(&vals[static_cast<std::size_t>(i)], 1)));
      self.wait_all(reqs);
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < 4; ++i)
        reqs.push_back(self.irecv(self.world(), 0, i,
                                  RecvBuf::of(&got[static_cast<std::size_t>(i)], 1)));
      self.wait_all(reqs);
    }
  });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(P2P, WaitAnyReturnsACompletedRequest) {
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    if (self.world_rank() == 0) {
      int a = 0, b = 0;
      std::vector<Request> reqs{
          self.irecv(self.world(), 1, 0, RecvBuf::of(&a, 1)),
          self.irecv(self.world(), 2, 0, RecvBuf::of(&b, 1))};
      const std::size_t first = self.wait_any(reqs);
      EXPECT_EQ(first, 1u);  // rank 2 sends immediately, rank 1 is delayed
      self.wait(reqs[0]);
    } else if (self.world_rank() == 1) {
      self.process().advance(util::milliseconds(5));
      const int v = 1;
      self.send(self.world(), 0, 0, SendBuf::of(&v, 1));
    } else {
      const int v = 2;
      self.send(self.world(), 0, 0, SendBuf::of(&v, 1));
    }
  });
}

TEST(P2P, TestPollsWithoutBlocking) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      self.process().advance(util::milliseconds(1));
      const int v = 5;
      self.send(self.world(), 1, 0, SendBuf::of(&v, 1));
    } else {
      int v = 0;
      const Request req = self.irecv(self.world(), 0, 0, RecvBuf::of(&v, 1));
      EXPECT_FALSE(self.test(req));  // nothing sent yet at t=0
      self.wait(req);
      EXPECT_TRUE(self.test(req));
      EXPECT_EQ(v, 5);
    }
  });
}

TEST(P2P, ProbeSeesMessageWithoutConsuming) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      const int v = 1;
      self.send(self.world(), 1, 42, SendBuf::of(&v, 1));
    } else {
      const Status st = self.probe(self.world(), kAnySource, kAnyTag);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, sizeof(int));
      int v = 0;
      (void)self.recv(self.world(), st.source, st.tag, RecvBuf::of(&v, 1));
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(P2P, IprobeReturnsFalseWhenNothingPending) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 1) {
      EXPECT_FALSE(self.iprobe(self.world(), kAnySource, kAnyTag));
    } else {
      // Keep rank 0 alive briefly so no traffic exists at probe time.
      self.process().advance(10);
    }
  });
}

TEST(P2P, SendrecvCrossesWithoutDeadlock) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const int me = self.world_rank();
    const int peer = 1 - me;
    const int out = me;
    int in = -1;
    (void)self.sendrecv(self.world(), peer, 0, SendBuf::of(&out, 1), peer, 0,
                        RecvBuf::of(&in, 1));
    EXPECT_EQ(in, peer);
  });
}

TEST(P2P, NegativeUserTagRejected) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0)
      EXPECT_THROW(self.isend(self.world(), 1, -5, SendBuf::synthetic(1)),
                   std::invalid_argument);
  });
}

TEST(P2P, UnmatchedRecvDeadlocks) {
  mpi::Machine machine(testing::tiny_machine(2));
  EXPECT_THROW(machine.run([](Rank& self) {
                 if (self.world_rank() == 0) {
                   int v;
                   (void)self.recv(self.world(), 1, 0, RecvBuf::of(&v, 1));
                 }
               }),
               sim::DeadlockError);
}

TEST(P2P, TimingReflectsNetworkCosts) {
  const auto makespan = testing::run_program(
      testing::tiny_machine(2), [&](Rank& self) {
        if (self.world_rank() == 0) {
          self.send(self.world(), 1, 0, SendBuf::synthetic(1024));
        } else {
          (void)self.recv(self.world(), 0, 0, RecvBuf::discard(1024));
        }
      });
  // At least overheads + latency; well under a millisecond.
  EXPECT_GT(makespan, util::nanoseconds(1000));
  EXPECT_LT(makespan, util::milliseconds(1));
}

}  // namespace
}  // namespace ds::mpi
