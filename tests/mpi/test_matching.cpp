// Matching semantics under the context-hashed mailboxes, and lifetime
// guarantees of the pooled op states.
//
// The mailbox buckets posted/unexpected queues per matching context; these
// tests pin the MPI semantics the bucketing must preserve — FIFO arrival
// order per (context, source), wildcard receives, probe-then-recv
// consistency, and context isolation — plus the pooled-op contract: slots
// are reused across the run, and a completed handle pins its op so it is
// never resurrected into a live request while held.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/machine_helpers.hpp"

namespace ds::mpi {
namespace {

TEST(Matching, FifoOrderPerSourceUnderWildcardReceives) {
  // Two senders each inject an ordered sequence; the receiver consumes with
  // fully wildcard receives. Whatever the interleaving across sources, each
  // source's values must arrive in injection order.
  constexpr int kPerSender = 32;
  std::vector<std::vector<int>> seen(2);
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    const int me = self.world_rank();
    if (me < 2) {
      for (int i = 0; i < kPerSender; ++i) {
        const int value = me * 1000 + i;
        self.send(self.world(), 2, 5, SendBuf::of(&value, 1));
      }
    } else {
      for (int i = 0; i < 2 * kPerSender; ++i) {
        int value = -1;
        const Status st =
            self.recv(self.world(), kAnySource, kAnyTag, RecvBuf::of(&value, 1));
        ASSERT_TRUE(st.source == 0 || st.source == 1);
        seen[static_cast<std::size_t>(st.source)].push_back(value);
      }
    }
  });
  for (int src = 0; src < 2; ++src) {
    ASSERT_EQ(seen[static_cast<std::size_t>(src)].size(),
              static_cast<std::size_t>(kPerSender));
    for (int i = 0; i < kPerSender; ++i)
      EXPECT_EQ(seen[static_cast<std::size_t>(src)][static_cast<std::size_t>(i)],
                src * 1000 + i);
  }
}

TEST(Matching, FifoOrderPreservedThroughUnexpectedQueue) {
  // The receiver deliberately arrives late, so every message lands in the
  // unexpected queue first; draining must still observe injection order.
  constexpr int kCount = 24;
  std::vector<int> seen;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      for (int i = 0; i < kCount; ++i)
        self.send(self.world(), 1, 3, SendBuf::of(&i, 1));
    } else {
      self.process().advance(util::milliseconds(10));  // let them all arrive
      for (int i = 0; i < kCount; ++i) {
        int value = -1;
        (void)self.recv(self.world(), kAnySource, kAnyTag, RecvBuf::of(&value, 1));
        seen.push_back(value);
      }
    }
  });
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(Matching, ContextsDoNotCrossMatch) {
  // A message sent on one communicator must be invisible to probes and
  // receives on another (different matching context, same endpoints).
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const Comm other = self.split(self.world(), 0, self.world_rank());
    if (self.world_rank() == 0) {
      const int v = 42;
      self.send(self.world(), 1, 7, SendBuf::of(&v, 1));
    } else {
      self.process().advance(util::milliseconds(1));  // message has arrived
      EXPECT_FALSE(self.iprobe(other, kAnySource, kAnyTag));
      EXPECT_TRUE(self.iprobe(self.world(), kAnySource, kAnyTag));
      int value = -1;
      const Status st =
          self.recv(self.world(), kAnySource, kAnyTag, RecvBuf::of(&value, 1));
      EXPECT_EQ(value, 42);
      EXPECT_EQ(st.tag, 7);
      EXPECT_FALSE(self.iprobe(other, kAnySource, kAnyTag));
    }
  });
}

TEST(Matching, TagFilteredReceiveSkipsOlderTraffic) {
  // A tag-specific receive must match the first message with that tag even
  // when older messages of the same context sit ahead of it in the bucket.
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    if (self.world_rank() == 0) {
      for (int i = 0; i < 4; ++i) self.send(self.world(), 1, 1, SendBuf::of(&i, 1));
      const int marked = 99;
      self.send(self.world(), 1, 2, SendBuf::of(&marked, 1));
    } else {
      self.process().advance(util::milliseconds(1));
      int value = -1;
      const Status st = self.recv(self.world(), 0, 2, RecvBuf::of(&value, 1));
      EXPECT_EQ(st.tag, 2);
      EXPECT_EQ(value, 99);
      // The tag-1 backlog is still intact and ordered.
      for (int i = 0; i < 4; ++i) {
        (void)self.recv(self.world(), 0, 1, RecvBuf::of(&value, 1));
        EXPECT_EQ(value, i);
      }
    }
  });
}

TEST(Matching, ProbeThenRecvConsistency) {
  // Whatever probe reports (source, tag, bytes) must be exactly what the
  // subsequent filtered receive consumes, message after message.
  constexpr int kCount = 16;
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    const int me = self.world_rank();
    if (me < 2) {
      for (int i = 0; i < kCount; ++i) {
        const std::int64_t value = me * 100 + i;
        self.send(self.world(), 2, 10 + (i % 3), SendBuf::of(&value, 1));
      }
    } else {
      for (int i = 0; i < 2 * kCount; ++i) {
        const Status probed = self.probe(self.world(), kAnySource, kAnyTag);
        std::int64_t value = -1;
        const Status got = self.recv(self.world(), probed.source, probed.tag,
                                     RecvBuf::of(&value, 1));
        EXPECT_EQ(got.source, probed.source);
        EXPECT_EQ(got.tag, probed.tag);
        EXPECT_EQ(got.bytes, probed.bytes);
        EXPECT_EQ(value / 100, probed.source);
      }
    }
  });
}

TEST(Matching, PooledOpsAreReusedAcrossMessages) {
  // Steady traffic must run on recycled op slots: the pools may grow to the
  // small peak-concurrency watermark, but nearly every acquisition after
  // warmup comes from the freelist.
  constexpr int kRounds = 500;
  Machine::PoolStats stats{};
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    for (int i = 0; i < kRounds; ++i) {
      int value = i;
      if (self.world_rank() == 0)
        self.send(self.world(), 1, 1, SendBuf::of(&value, 1));
      else
        (void)self.recv(self.world(), 0, 1, RecvBuf::of(&value, 1));
    }
    stats = self.machine().pool_stats();
  });
  EXPECT_GE(stats.send.acquired, static_cast<std::uint64_t>(kRounds));
  EXPECT_GE(stats.recv.acquired, static_cast<std::uint64_t>(kRounds));
  // Far fewer slots than messages: the freelist served the steady state.
  EXPECT_LT(stats.send.created, 32u);
  EXPECT_LT(stats.recv.created, 32u);
  EXPECT_GT(stats.send.reused(), stats.send.acquired / 2);
  EXPECT_GT(stats.recv.reused(), stats.recv.acquired / 2);
}

TEST(Matching, HeldRequestPinsItsCompletedOp) {
  // A completed handle must never be resurrected into a live request: while
  // the Request is held, its op cannot return to the pool, so its generation
  // and completion status stay frozen through arbitrary later traffic.
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    int first = -1;
    Request held;
    if (self.world_rank() == 0) {
      const int v = 7;
      self.send(self.world(), 1, 1, SendBuf::of(&v, 1));
    } else {
      held = self.irecv(self.world(), 0, 1, RecvBuf::of(&first, 1));
      self.wait(held);
    }
    const std::uint32_t gen_at_completion = held ? held->generation() : 0;

    // Heavy follow-up traffic cycles the pools many times over.
    for (int i = 0; i < 300; ++i) {
      int value = i;
      if (self.world_rank() == 0)
        self.send(self.world(), 1, 2, SendBuf::of(&value, 1));
      else
        (void)self.recv(self.world(), 0, 2, RecvBuf::of(&value, 1));
    }

    if (self.world_rank() == 1) {
      ASSERT_TRUE(held);
      EXPECT_TRUE(held->complete);
      EXPECT_EQ(held->generation(), gen_at_completion);
      EXPECT_EQ(held->status.source, 0);
      EXPECT_EQ(held->status.tag, 1);
      EXPECT_EQ(first, 7);
      // The pool really did recycle ops underneath in the meantime.
      EXPECT_GT(self.machine().pool_stats().recv.reused(), 0u);
    }
  });
}

TEST(Matching, DeadContextBucketsAreSweptEventually) {
  // Short-lived communicators must not leak mailbox buckets: once a
  // context goes quiet and drains, the lazy sweep reclaims it, so the
  // bucket count tracks the live contexts rather than every context ever
  // used. (Hot buckets carry an activity mark and are never churned.)
  constexpr int kEpochs = 60;
  constexpr int kPerEpoch = 64;  // enough traffic for several sweep passes
  std::size_t buckets_at_end = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    for (int e = 0; e < kEpochs; ++e) {
      const Comm epoch_comm = self.split(self.world(), 0, self.world_rank());
      for (int i = 0; i < kPerEpoch; ++i) {
        int value = i;
        if (self.world_rank() == 0)
          self.send(epoch_comm, 1, 1, SendBuf::of(&value, 1));
        else
          (void)self.recv(epoch_comm, 0, 1, RecvBuf::of(&value, 1));
      }
    }
    if (self.world_rank() == 1) {
      self.process().advance(util::milliseconds(1));
      buckets_at_end = self.machine().mailbox_context_count(1);
    }
  });
  // 60 epoch contexts (plus world and collective traffic) went through
  // rank 1's mailbox. A bucket needs a full quiet sweep interval (1024
  // mailbox ops, ~14 epochs here) before reclaim, so the tail of recent
  // epochs legitimately lingers — but anything near kEpochs means the
  // sweep is not collecting.
  EXPECT_LE(buckets_at_end, 2u * kEpochs / 3u);
}

TEST(Matching, ManyContextsMatchIndependently) {
  // Interleaved traffic over many communicators: each context's FIFO is
  // independent, and a receive on one context never consumes another's
  // message even when thousands sit queued.
  constexpr int kComms = 8;
  constexpr int kPerComm = 16;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    std::vector<Comm> comms;
    comms.reserve(kComms);
    for (int c = 0; c < kComms; ++c)
      comms.push_back(self.split(self.world(), 0, self.world_rank()));
    if (self.world_rank() == 0) {
      // Round-robin across contexts so every bucket interleaves on the wire.
      for (int i = 0; i < kPerComm; ++i)
        for (int c = 0; c < kComms; ++c) {
          const int value = c * 1000 + i;
          self.send(comms[static_cast<std::size_t>(c)], 1, 4, SendBuf::of(&value, 1));
        }
    } else {
      self.process().advance(util::milliseconds(5));  // all queue as unexpected
      // Drain one context at a time, in reverse creation order.
      for (int c = kComms - 1; c >= 0; --c)
        for (int i = 0; i < kPerComm; ++i) {
          int value = -1;
          (void)self.recv(comms[static_cast<std::size_t>(c)], kAnySource, kAnyTag,
                          RecvBuf::of(&value, 1));
          EXPECT_EQ(value, c * 1000 + i);
        }
    }
  });
}

}  // namespace
}  // namespace ds::mpi
