#include "net/network.hpp"

#include <gtest/gtest.h>

namespace ds::net {
namespace {

TEST(NetworkConfig, NodeLocality) {
  NetworkConfig c;
  c.ranks_per_node = 4;
  EXPECT_TRUE(c.same_node(0, 3));
  EXPECT_FALSE(c.same_node(3, 4));
  EXPECT_TRUE(c.same_node(5, 6));
}

TEST(NetworkConfig, NoNodesMeansAllRemote) {
  NetworkConfig c;
  c.ranks_per_node = 0;
  EXPECT_FALSE(c.same_node(0, 0));  // degenerate but consistent
}

TEST(NetworkConfig, IntraNodeIsFaster) {
  const NetworkConfig c = NetworkConfig::aries_like();
  EXPECT_LT(c.wire_latency(0, 1), c.wire_latency(0, 40));
  EXPECT_LT(c.byte_time(0, 1), c.byte_time(0, 40));
}

TEST(NetworkConfig, UncontendedCostIsLogGpSum) {
  NetworkConfig c;
  c.ranks_per_node = 0;
  c.latency = 1000;
  c.ns_per_byte = 1.0;
  c.send_overhead = 100;
  c.recv_overhead = 200;
  c.injection_gap = 50;
  EXPECT_EQ(c.uncontended_cost(0, 1, 500), 100 + 50 + 500 + 1000 + 200);
}

TEST(NetworkConfig, IdealIsFree) {
  const NetworkConfig c = NetworkConfig::ideal();
  EXPECT_EQ(c.uncontended_cost(0, 1, 1 << 20), 0);
}

TEST(NetworkConfig, CostGrowsWithSize) {
  const NetworkConfig c = NetworkConfig::aries_like();
  EXPECT_LT(c.uncontended_cost(0, 40, 64), c.uncontended_cost(0, 40, 1 << 20));
}

TEST(NetworkConfig, SameNodeAtNodeBoundaries) {
  NetworkConfig c;
  c.ranks_per_node = 4;
  // First and last rank of one node, then across the boundary.
  EXPECT_TRUE(c.same_node(4, 7));
  EXPECT_FALSE(c.same_node(7, 8));
  EXPECT_TRUE(c.same_node(8, 8));
  EXPECT_FALSE(c.same_node(0, 4));
}

TEST(NetworkConfig, IdealZeroesTopologyTierCosts) {
  const NetworkConfig c = NetworkConfig::ideal();
  EXPECT_DOUBLE_EQ(c.ns_per_byte_node_link, 0.0);
  EXPECT_DOUBLE_EQ(c.ns_per_byte_tier_link, 0.0);
  EXPECT_EQ(c.latency_tier_hop, 0);
}

TEST(NetworkConfig, SlimBisectionTapersTheUpperTier) {
  const NetworkConfig c = NetworkConfig::slim_bisection();
  EXPECT_EQ(c.topology.kind, TopologyConfig::Kind::FatTree);
  EXPECT_DOUBLE_EQ(c.topology.tier_link_taper, 4.0);
  // Endpoint costs stay Aries-like: only the bisection changes.
  EXPECT_DOUBLE_EQ(c.ns_per_byte, NetworkConfig::aries_like().ns_per_byte);
}

}  // namespace
}  // namespace ds::net
