#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ds::net {
namespace {

NetworkConfig shaped(TopologyConfig::Kind kind, int ranks_per_node = 4) {
  NetworkConfig c;
  c.ranks_per_node = ranks_per_node;
  c.topology.kind = kind;
  return c;
}

TEST(Topology, FlatHasNoSharedLinks) {
  const Topology t(shaped(TopologyConfig::Kind::Flat), 16);
  EXPECT_EQ(t.link_count(), 0);
  EXPECT_TRUE(t.route(0, 15).empty());
  EXPECT_TRUE(t.route(3, 3).empty());
}

TEST(Topology, SameNodeTrafficCrossesNoLinks) {
  const Topology t(shaped(TopologyConfig::Kind::TwoLevel), 16);
  EXPECT_TRUE(t.route(0, 3).empty());   // both on node 0
  EXPECT_TRUE(t.route(13, 14).empty()); // both on node 3
}

TEST(Topology, TwoLevelRouteIsSrcUplinkThenDstDownlink) {
  // 16 endpoints, 4 per node -> 4 nodes, 8 links, no pod tier.
  const Topology t(shaped(TopologyConfig::Kind::TwoLevel), 16);
  EXPECT_EQ(t.node_count(), 4);
  EXPECT_EQ(t.link_count(), 8);
  const LinkPath p = t.route(0, 6);  // node 0 -> node 1
  ASSERT_EQ(p.count, 2);
  EXPECT_EQ(p.links[0], t.node_up_link(0));
  EXPECT_EQ(p.links[1], t.node_down_link(1));
  EXPECT_EQ(p.extra_latency, 0);
}

TEST(Topology, FatTreeInterPodAddsTierLinksAndTwoHops) {
  // 4 nodes, near-square split -> 2 nodes/pod, 2 pods, 8 + 4 links.
  const NetworkConfig c = shaped(TopologyConfig::Kind::FatTree);
  const Topology t(c, 16);
  EXPECT_EQ(t.pod_count(), 2);
  EXPECT_EQ(t.link_count(), 12);

  // Intra-pod (node 0 -> node 1): node links only.
  EXPECT_EQ(t.route(0, 4).count, 2);
  EXPECT_EQ(t.route(0, 4).extra_latency, 0);

  // Inter-pod (node 0 -> node 3): up, pod up, pod down, down; two core hops.
  const LinkPath p = t.route(0, 12);
  ASSERT_EQ(p.count, 4);
  EXPECT_EQ(p.links[0], t.node_up_link(0));
  EXPECT_EQ(p.links[1], t.tier_up_link(0));
  EXPECT_EQ(p.links[2], t.tier_down_link(1));
  EXPECT_EQ(p.links[3], t.node_down_link(3));
  EXPECT_EQ(p.extra_latency, 2 * c.latency_tier_hop);
}

TEST(Topology, DragonflyMinimalRouteAddsOneHop) {
  const NetworkConfig c = shaped(TopologyConfig::Kind::Dragonfly);
  const Topology t(c, 16);
  const LinkPath p = t.route(0, 12);  // group 0 -> group 1
  ASSERT_EQ(p.count, 4);
  EXPECT_EQ(p.extra_latency, c.latency_tier_hop);
}

TEST(Topology, ExplicitNodesPerPodOverridesNearSquare) {
  NetworkConfig c = shaped(TopologyConfig::Kind::FatTree);
  c.topology.nodes_per_pod = 1;
  const Topology t(c, 16);
  EXPECT_EQ(t.pod_count(), 4);
  // Every inter-node pair is now inter-pod.
  EXPECT_EQ(t.route(0, 4).count, 4);
}

TEST(Topology, NoLocalityMakesEveryRankItsOwnNode) {
  const Topology t(shaped(TopologyConfig::Kind::TwoLevel, 0), 4);
  EXPECT_EQ(t.node_count(), 4);
  EXPECT_EQ(t.node_of(3), 3);
  EXPECT_EQ(t.route(0, 1).count, 2);  // no pair shares a node
}

TEST(Topology, TapersScaleLinkByteTimeAndClampBelowOne) {
  NetworkConfig c = shaped(TopologyConfig::Kind::FatTree);
  c.ns_per_byte_node_link = 0.5;
  c.ns_per_byte_tier_link = 0.25;
  c.topology.node_link_taper = 2.0;
  c.topology.tier_link_taper = 0.1;  // invalid: must clamp to 1
  const Topology t(c, 16);
  EXPECT_DOUBLE_EQ(t.link_ns_per_byte(t.node_up_link(0)), 1.0);
  EXPECT_DOUBLE_EQ(t.link_ns_per_byte(t.node_down_link(3)), 1.0);
  EXPECT_DOUBLE_EQ(t.link_ns_per_byte(t.tier_up_link(0)), 0.25);
}

TEST(Topology, LinkNamesAreReadable) {
  const Topology t(shaped(TopologyConfig::Kind::FatTree), 16);
  EXPECT_EQ(t.link_name(t.node_up_link(2)), "node2:up");
  EXPECT_EQ(t.link_name(t.node_down_link(0)), "node0:down");
  EXPECT_EQ(t.link_name(t.tier_up_link(1)), "pod1:up");
  EXPECT_EQ(t.link_name(t.tier_down_link(0)), "pod0:down");
}

TEST(Topology, RejectsNonPositiveEndpoints) {
  EXPECT_THROW(Topology(shaped(TopologyConfig::Kind::Flat), 0),
               std::invalid_argument);
}

TEST(TopologyConfig, NamedParsesEveryFamily) {
  EXPECT_EQ(TopologyConfig::named("flat").kind, TopologyConfig::Kind::Flat);
  EXPECT_EQ(TopologyConfig::named("twolevel").kind,
            TopologyConfig::Kind::TwoLevel);
  EXPECT_EQ(TopologyConfig::named("two-level").kind,
            TopologyConfig::Kind::TwoLevel);
  EXPECT_EQ(TopologyConfig::named("fattree").kind,
            TopologyConfig::Kind::FatTree);
  EXPECT_EQ(TopologyConfig::named("fat-tree").kind,
            TopologyConfig::Kind::FatTree);
  EXPECT_EQ(TopologyConfig::named("dragonfly").kind,
            TopologyConfig::Kind::Dragonfly);
  EXPECT_THROW(TopologyConfig::named("mesh"), std::invalid_argument);
  EXPECT_STREQ(TopologyConfig::named("dragonfly").name(), "dragonfly");
}

}  // namespace
}  // namespace ds::net
