#include "net/fabric.hpp"

#include <gtest/gtest.h>

namespace ds::net {
namespace {

NetworkConfig flat_config() {
  NetworkConfig c;
  c.ranks_per_node = 0;  // all remote, uniform costs
  c.latency = 1000;
  c.ns_per_byte = 1.0;
  c.injection_gap = 100;
  c.receiver_drain_factor = 1.0;
  return c;
}

TEST(Fabric, SingleMessageTiming) {
  Fabric f(flat_config(), 4);
  const auto s = f.schedule_message(0, 1, 500, 0);
  // tx: gap 100 + payload 500 = 600; + latency 1000 -> 1600; drain 500 -> 2100.
  EXPECT_EQ(s.sender_free_at, 600);
  EXPECT_EQ(s.deliver_at, 2100);
}

TEST(Fabric, SenderPortSerializesBackToBackSends) {
  Fabric f(flat_config(), 4);
  const auto first = f.schedule_message(0, 1, 1000, 0);
  const auto second = f.schedule_message(0, 2, 1000, 0);
  EXPECT_EQ(first.sender_free_at, 1100);
  EXPECT_EQ(second.sender_free_at, 2200);  // waited for the port
}

TEST(Fabric, ReceiverDrainSerializesFanIn) {
  Fabric f(flat_config(), 8);
  // Two senders target rank 7 at the same instant; drains serialize.
  const auto a = f.schedule_message(0, 7, 1000, 0);
  const auto b = f.schedule_message(1, 7, 1000, 0);
  EXPECT_EQ(a.deliver_at, 3100);           // 1100 tx + 1000 L + 1000 drain
  EXPECT_EQ(b.deliver_at, a.deliver_at + 1000);  // queued behind a's drain
}

TEST(Fabric, HotspotBacklogGrowsLinearly) {
  Fabric f(flat_config(), 64);
  util::SimTime last = 0;
  for (int src = 0; src < 63; ++src)
    last = f.schedule_message(src, 63, 10'000, 0).deliver_at;
  // 63 senders x 10KB drained at 1ns/B -> at least 630us of drain backlog.
  EXPECT_GE(last, 630'000);
}

TEST(Fabric, DistinctReceiversDoNotContend) {
  Fabric f(flat_config(), 4);
  const auto a = f.schedule_message(0, 1, 1000, 0);
  const auto b = f.schedule_message(2, 3, 1000, 0);
  EXPECT_EQ(a.deliver_at, b.deliver_at);
}

TEST(Fabric, CountsTraffic) {
  Fabric f(flat_config(), 4);
  (void)f.schedule_message(0, 1, 100, 0);
  (void)f.schedule_message(1, 2, 200, 0);
  EXPECT_EQ(f.total_messages(), 2u);
  EXPECT_EQ(f.total_bytes(), 300u);
}

TEST(Fabric, ZeroDrainFactorSkipsReceiverSerialization) {
  NetworkConfig c = flat_config();
  c.receiver_drain_factor = 0.0;
  Fabric f(c, 4);
  const auto a = f.schedule_message(0, 3, 1000, 0);
  const auto b = f.schedule_message(1, 3, 1000, 0);
  EXPECT_EQ(a.deliver_at, b.deliver_at);  // no drain queueing
}

TEST(Fabric, InvalidEndpointCountThrows) {
  EXPECT_THROW(Fabric(flat_config(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace ds::net
