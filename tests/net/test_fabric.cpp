#include "net/fabric.hpp"

#include <gtest/gtest.h>

namespace ds::net {
namespace {

NetworkConfig flat_config() {
  NetworkConfig c;
  c.ranks_per_node = 0;  // all remote, uniform costs
  c.latency = 1000;
  c.ns_per_byte = 1.0;
  c.injection_gap = 100;
  c.receiver_drain_factor = 1.0;
  return c;
}

TEST(Fabric, SingleMessageTiming) {
  Fabric f(flat_config(), 4);
  const auto s = f.schedule_message(0, 1, 500, 0);
  // tx: gap 100 + payload 500 = 600; + latency 1000 -> 1600; drain 500 -> 2100.
  EXPECT_EQ(s.sender_free_at, 600);
  EXPECT_EQ(s.deliver_at, 2100);
}

TEST(Fabric, SenderPortSerializesBackToBackSends) {
  Fabric f(flat_config(), 4);
  const auto first = f.schedule_message(0, 1, 1000, 0);
  const auto second = f.schedule_message(0, 2, 1000, 0);
  EXPECT_EQ(first.sender_free_at, 1100);
  EXPECT_EQ(second.sender_free_at, 2200);  // waited for the port
}

TEST(Fabric, ReceiverDrainSerializesFanIn) {
  Fabric f(flat_config(), 8);
  // Two senders target rank 7 at the same instant; drains serialize.
  const auto a = f.schedule_message(0, 7, 1000, 0);
  const auto b = f.schedule_message(1, 7, 1000, 0);
  EXPECT_EQ(a.deliver_at, 3100);           // 1100 tx + 1000 L + 1000 drain
  EXPECT_EQ(b.deliver_at, a.deliver_at + 1000);  // queued behind a's drain
}

TEST(Fabric, HotspotBacklogGrowsLinearly) {
  Fabric f(flat_config(), 64);
  util::SimTime last = 0;
  for (int src = 0; src < 63; ++src)
    last = f.schedule_message(src, 63, 10'000, 0).deliver_at;
  // 63 senders x 10KB drained at 1ns/B -> at least 630us of drain backlog.
  EXPECT_GE(last, 630'000);
}

TEST(Fabric, DistinctReceiversDoNotContend) {
  Fabric f(flat_config(), 4);
  const auto a = f.schedule_message(0, 1, 1000, 0);
  const auto b = f.schedule_message(2, 3, 1000, 0);
  EXPECT_EQ(a.deliver_at, b.deliver_at);
}

TEST(Fabric, CountsTraffic) {
  Fabric f(flat_config(), 4);
  (void)f.schedule_message(0, 1, 100, 0);
  (void)f.schedule_message(1, 2, 200, 0);
  EXPECT_EQ(f.total_messages(), 2u);
  EXPECT_EQ(f.total_bytes(), 300u);
}

TEST(Fabric, ZeroDrainFactorSkipsReceiverSerialization) {
  NetworkConfig c = flat_config();
  c.receiver_drain_factor = 0.0;
  Fabric f(c, 4);
  const auto a = f.schedule_message(0, 3, 1000, 0);
  const auto b = f.schedule_message(1, 3, 1000, 0);
  EXPECT_EQ(a.deliver_at, b.deliver_at);  // no drain queueing
}

TEST(Fabric, InvalidEndpointCountThrows) {
  EXPECT_THROW(Fabric(flat_config(), 0), std::invalid_argument);
}

/// Two ranks per node, two-level topology, drain disabled so every timing
/// difference below comes from the shared links alone.
NetworkConfig twolevel_config() {
  NetworkConfig c;
  c.ranks_per_node = 2;
  c.topology.kind = TopologyConfig::Kind::TwoLevel;
  c.latency = 1000;
  c.latency_intra_node = 1000;
  c.ns_per_byte = 1.0;
  c.ns_per_byte_intra_node = 1.0;
  c.ns_per_byte_node_link = 1.0;
  c.injection_gap = 100;
  c.receiver_drain_factor = 0.0;
  return c;
}

TEST(Fabric, NodeUplinkSerializesCoResidentSenders) {
  // Ranks 0 and 1 share node 0; both send off-node at t=0. Their NICs
  // transmit concurrently, but the node's single up-link carries one
  // payload at a time.
  Fabric f(twolevel_config(), 6);
  const auto a = f.schedule_message(0, 2, 1000, 0);  // node 0 -> node 1
  const auto b = f.schedule_message(1, 4, 1000, 0);  // node 0 -> node 2
  // a: tx 1100, uplink0 -> 2100, downlink1 -> 3100, + latency = 4100.
  EXPECT_EQ(a.deliver_at, 4100);
  // b: tx 1100, waits for uplink0 until 2100 -> 3100, downlink2 -> 4100,
  // + latency = 5100.
  EXPECT_EQ(b.deliver_at, 5100);
}

TEST(Fabric, NodeDownlinkSerializesFanIn) {
  // Senders on different nodes target both ranks of node 0: distinct
  // up-links, but node 0's down-link is shared.
  Fabric f(twolevel_config(), 6);
  const auto a = f.schedule_message(2, 0, 1000, 0);
  const auto b = f.schedule_message(4, 1, 1000, 0);
  EXPECT_EQ(a.deliver_at, 4100);
  EXPECT_EQ(b.deliver_at, 5100);  // queued behind a on node0:down
}

TEST(Fabric, SameNodePairKeepsLegacySchedule) {
  // Intra-node traffic crosses no shared links: identical to a flat fabric
  // with the same endpoint costs.
  NetworkConfig c = twolevel_config();
  c.receiver_drain_factor = 1.0;
  NetworkConfig flat = c;
  flat.topology = TopologyConfig{};
  Fabric structured(c, 6);
  Fabric reference(flat, 6);
  const auto a = structured.schedule_message(0, 1, 777, 5);
  const auto b = reference.schedule_message(0, 1, 777, 5);
  EXPECT_EQ(a.deliver_at, b.deliver_at);
  EXPECT_EQ(a.sender_free_at, b.sender_free_at);
}

TEST(Fabric, DeliveryMonotoneUnderMultiLinkCongestion) {
  // A fat-tree with every message crossing four shared links: schedules
  // issued in nondecreasing injection order must deliver in nondecreasing
  // order per destination, whatever the link backlog.
  NetworkConfig c = twolevel_config();
  c.topology.kind = TopologyConfig::Kind::FatTree;
  c.topology.nodes_per_pod = 1;
  c.receiver_drain_factor = 1.0;
  Fabric f(c, 8);
  util::SimTime last_deliver = 0;
  for (int i = 0; i < 32; ++i) {
    const int src = (i % 3) * 2;  // nodes 0..2 -> node 3, inter-pod
    const auto s = f.schedule_message(src, 7, 4000, i * 10);
    EXPECT_GE(s.sender_free_at, i * 10);
    EXPECT_GE(s.deliver_at, s.sender_free_at);
    EXPECT_GE(s.deliver_at, last_deliver);
    last_deliver = s.deliver_at;
  }
}

TEST(Fabric, EndpointDegradeValidatesRange) {
  Fabric f(flat_config(), 4);
  EXPECT_THROW(f.set_degrade(-1, 2.0), std::out_of_range);
  EXPECT_THROW(f.set_degrade(4, 2.0), std::out_of_range);
  EXPECT_THROW((void)f.degrade(17), std::out_of_range);
  f.set_degrade(2, 0.25);  // sub-nominal factors clamp to 1 (never speed up)
  EXPECT_DOUBLE_EQ(f.degrade(2), 1.0);
}

TEST(Fabric, LinkDegradeValidatesAgainstTopology) {
  Fabric flat(flat_config(), 4);
  EXPECT_THROW(flat.set_link_degrade(0, 2.0), std::out_of_range);
  Fabric f(twolevel_config(), 6);
  EXPECT_THROW(f.set_link_degrade(-1, 2.0), std::out_of_range);
  EXPECT_THROW(f.set_link_degrade(f.topology().link_count(), 2.0),
               std::out_of_range);
  f.set_link_degrade(f.topology().node_up_link(0), 3.0);
  EXPECT_DOUBLE_EQ(f.link_degrade(f.topology().node_up_link(0)), 3.0);
}

TEST(Fabric, LinkDegradeSlowsOnlyCrossingTraffic) {
  Fabric nominal(twolevel_config(), 6);
  Fabric degraded(twolevel_config(), 6);
  degraded.set_link_degrade(degraded.topology().node_up_link(0), 4.0);
  // Through the degraded up-link: slower by 3 extra payload times.
  EXPECT_EQ(degraded.schedule_message(0, 2, 1000, 0).deliver_at,
            nominal.schedule_message(0, 2, 1000, 0).deliver_at + 3000);
  // Traffic from another node never touches it.
  EXPECT_EQ(degraded.schedule_message(2, 4, 1000, 0).deliver_at,
            nominal.schedule_message(2, 4, 1000, 0).deliver_at);
}

TEST(Fabric, DegradePathFlatFallsBackToEndpoints) {
  Fabric f(flat_config(), 4);
  EXPECT_EQ(f.degrade_path(0, 1, 4.0), 0);
  EXPECT_DOUBLE_EQ(f.degrade(0), 4.0);
  EXPECT_DOUBLE_EQ(f.degrade(1), 4.0);
  EXPECT_DOUBLE_EQ(f.degrade(2), 1.0);
  EXPECT_THROW(f.degrade_path(0, 9, 2.0), std::out_of_range);
}

TEST(Fabric, DegradePathHitsRouteLinksNotEndpoints) {
  Fabric f(twolevel_config(), 6);
  EXPECT_EQ(f.degrade_path(0, 4, 4.0), 2);
  EXPECT_DOUBLE_EQ(f.link_degrade(f.topology().node_up_link(0)), 4.0);
  EXPECT_DOUBLE_EQ(f.link_degrade(f.topology().node_down_link(2)), 4.0);
  EXPECT_DOUBLE_EQ(f.degrade(0), 1.0);  // ports untouched
  EXPECT_DOUBLE_EQ(f.degrade(4), 1.0);
  // A same-node pair crosses no shared links: endpoint fallback.
  EXPECT_EQ(f.degrade_path(2, 3, 2.0), 0);
  EXPECT_DOUBLE_EQ(f.degrade(2), 2.0);
}

TEST(Fabric, TaperSlowsSharedLinksOnly) {
  NetworkConfig tapered = twolevel_config();
  tapered.topology.node_link_taper = 4.0;
  Fabric nominal(twolevel_config(), 6);
  Fabric slim(tapered, 6);
  EXPECT_GT(slim.schedule_message(0, 2, 1000, 0).deliver_at,
            nominal.schedule_message(0, 2, 1000, 0).deliver_at);
  // Intra-node messages never see the taper.
  EXPECT_EQ(slim.schedule_message(0, 1, 1000, 0).deliver_at,
            nominal.schedule_message(0, 1, 1000, 0).deliver_at);
}

TEST(Fabric, LinkBytesAccountPerLinkTraffic) {
  Fabric f(twolevel_config(), 6);
  (void)f.schedule_message(0, 2, 100, 0);
  (void)f.schedule_message(1, 2, 50, 0);
  (void)f.schedule_message(0, 1, 900, 0);  // intra-node: no link traffic
  const auto& bytes = f.link_bytes();
  EXPECT_EQ(bytes[static_cast<std::size_t>(f.topology().node_up_link(0))], 150u);
  EXPECT_EQ(bytes[static_cast<std::size_t>(f.topology().node_down_link(1))], 150u);
  EXPECT_EQ(bytes[static_cast<std::size_t>(f.topology().node_up_link(1))], 0u);
}

}  // namespace
}  // namespace ds::net
