#include "fs/filesystem.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace ds::fs {
namespace {

FsConfig small_config() {
  FsConfig c;
  c.num_servers = 4;
  c.server_ns_per_byte = 1.0;
  c.op_latency = 1000;
  c.server_op_service = 0;  // timing tests below use pure byte service
  c.metadata_latency = 500;
  c.metadata_service = 100;
  c.stripe_bytes = 1024;
  return c;
}

TEST(SimFile, TracksSizeAndContent) {
  SimFile f("x");
  const char data[] = "hello";
  f.store(10, data, 5);
  EXPECT_EQ(f.size(), 15u);
  const auto content = f.content();
  EXPECT_EQ(std::memcmp(content.data() + 10, "hello", 5), 0);
  EXPECT_EQ(static_cast<char>(content[0]), 0);  // gap zero-filled
}

TEST(SimFile, SharedReservationsAreDisjoint) {
  SimFile f("x");
  EXPECT_EQ(f.reserve_shared(100), 0u);
  EXPECT_EQ(f.reserve_shared(50), 100u);
  EXPECT_EQ(f.size(), 150u);
}

TEST(SimFile, CollectiveClaimSharedAcrossRanks) {
  SimFile f("x");
  const auto base0a = f.claim_collective(0, 1000);
  const auto base0b = f.claim_collective(0, 1000);  // second rank, same epoch
  const auto base1 = f.claim_collective(1, 500);
  EXPECT_EQ(base0a, 0u);
  EXPECT_EQ(base0b, 0u);
  EXPECT_EQ(base1, 1000u);
}

TEST(FileSystem, OpenReturnsStableHandle) {
  FileSystem fs(small_config());
  SimFile* a = fs.open("f");
  SimFile* b = fs.open("f");
  EXPECT_EQ(a, b);
  EXPECT_NE(fs.open("g"), a);
}

TEST(FileSystem, WriteCompletionCoversServiceTime) {
  FileSystem fs(small_config());
  SimFile* f = fs.open("f");
  // 2048 bytes = 2 stripes on 2 servers in parallel: 1000 latency + 1024ns.
  const auto done = fs.write(*f, 0, 2048, nullptr, 0);
  EXPECT_EQ(done, 1000 + 1024);
}

TEST(FileSystem, SameServerSerializes) {
  FileSystem fs(small_config());
  SimFile* f = fs.open("f");
  // Both writes hit stripe 0 -> server 0.
  const auto a = fs.write(*f, 0, 512, nullptr, 0);
  const auto b = fs.write(*f, 0, 512, nullptr, 0);
  EXPECT_EQ(a, 1512);
  EXPECT_EQ(b, 2024);  // queued behind the first
}

TEST(FileSystem, StripesSpreadServers) {
  FileSystem fs(small_config());
  SimFile* f = fs.open("f");
  // 4 stripes over 4 servers run in parallel after the op latency.
  const auto done = fs.write(*f, 0, 4096, nullptr, 0);
  EXPECT_EQ(done, 1000 + 1024);
}

TEST(FileSystem, MetadataRpcSerializesAtMds) {
  FileSystem fs(small_config());
  const auto a = fs.metadata_rpc(0);
  const auto b = fs.metadata_rpc(0);
  // a: 500 in + 100 service + 500 out = 1100; b queues behind service slot.
  EXPECT_EQ(a, 1100);
  EXPECT_EQ(b, 1200);
}

TEST(FileSystem, SharedAppendAssignsSequentialOffsets) {
  FileSystem fs(small_config());
  SimFile* f = fs.open("f");
  const auto r1 = fs.shared_append(*f, 100, nullptr, 0);
  const auto r2 = fs.shared_append(*f, 100, nullptr, 0);
  EXPECT_EQ(r1.offset, 0u);
  EXPECT_EQ(r2.offset, 100u);
  EXPECT_GT(r2.complete_at, r1.complete_at - 100);  // later lock, later data
}

TEST(FileSystem, ZeroByteWriteStillPaysLatency) {
  FileSystem fs(small_config());
  SimFile* f = fs.open("f");
  EXPECT_EQ(fs.write(*f, 0, 0, nullptr, 5), 5 + 1000);
}

TEST(FileSystem, PerRequestServiceMakesSmallWritesCostlier) {
  FsConfig cfg = small_config();
  cfg.server_op_service = 10'000;
  FileSystem fs(cfg);
  SimFile* f = fs.open("f");
  // 8 writes of 128 B to the same stripe vs one 1024 B write: same bytes,
  // 8x the per-request occupancy.
  util::SimTime many = 0;
  for (int i = 0; i < 8; ++i)
    many = fs.write(*f, 0, 128, nullptr, 0);
  FileSystem fs2(cfg);
  SimFile* g = fs2.open("g");
  const util::SimTime one = fs2.write(*g, 0, 1024, nullptr, 0);
  EXPECT_GT(many, one + 6 * 10'000);
}

TEST(FileSystem, AccountsTotals) {
  FileSystem fs(small_config());
  SimFile* f = fs.open("f");
  (void)fs.write(*f, 0, 100, nullptr, 0);
  (void)fs.shared_append(*f, 50, nullptr, 0);
  EXPECT_EQ(fs.total_bytes_written(), 150u);
  EXPECT_GE(fs.total_requests(), 3u);  // 2 writes + 1 mds rpc
}

}  // namespace
}  // namespace ds::fs
