#include "apps/cg/cg_app.hpp"
#include "apps/cg/cg_solver.hpp"

#include <gtest/gtest.h>

#include "common/machine_helpers.hpp"

namespace ds::apps::cg {
namespace {

constexpr std::array<int, 3> kGlobal{6, 4, 4};
constexpr int kIters = 8;

CgConfig real_config() {
  CgConfig cfg;
  cfg.real_data = true;
  cfg.global_grid = kGlobal;
  cfg.iterations = kIters;
  cfg.stride = 4;  // 8 ranks -> 6 workers (3x2x1), 2 helpers
  cfg.n = 4;       // modeled costs stay small
  return cfg;
}

/// Reassemble the distributed solution and compare to the sequential oracle.
void expect_matches_oracle(const CgResult& result, double tolerance) {
  const auto oracle = solve_sequential(kGlobal[0], kGlobal[1], kGlobal[2], kIters);
  ASSERT_FALSE(result.pieces.empty());
  for (const auto& piece : result.pieces) {
    for (int i = 0; i < piece.grid.nx(); ++i)
      for (int j = 0; j < piece.grid.ny(); ++j)
        for (int k = 0; k < piece.grid.nz(); ++k) {
          const double expected =
              oracle.x.at(piece.offset[0] + i, piece.offset[1] + j,
                          piece.offset[2] + k);
          EXPECT_NEAR(piece.grid.at(i, j, k), expected, tolerance)
              << "at " << piece.offset[0] + i << "," << piece.offset[1] + j
              << "," << piece.offset[2] + k;
        }
  }
}

TEST(CgSequential, ResidualDecreasesWithIterations) {
  const auto r2 = solve_sequential(6, 6, 6, 2);
  const auto r10 = solve_sequential(6, 6, 6, 10);
  EXPECT_LT(r10.residual2, r2.residual2);
  EXPECT_GT(r2.residual2, 0.0);
}

TEST(CgSequential, SolvesTinySystemAccurately) {
  // 30 iterations on a 4^3 system (64 unknowns) should converge hard.
  const auto result = solve_sequential(4, 4, 4, 30);
  EXPECT_LT(result.residual2, 1e-18);
}

TEST(CgGrid, FaceExtractFillRoundTrip) {
  LocalGrid g(3, 4, 5);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j)
      for (int k = 0; k < 5; ++k) g.at(i, j, k) = i * 100 + j * 10 + k;
  std::vector<double> face;
  g.extract_face(kXPlus, face);
  EXPECT_EQ(face.size(), 20u);
  LocalGrid h(3, 4, 5);
  h.fill_ghost(kXMinus, face.data(), face.size());
  // h's -x ghost must equal g's +x interior layer.
  for (int j = 0; j < 4; ++j)
    for (int k = 0; k < 5; ++k) EXPECT_EQ(h.at(-1, j, k), g.at(2, j, k));
}

TEST(CgGrid, PoissonOperatorOnConstantFieldLeavesBoundaryResidue) {
  LocalGrid g(4, 4, 4), out(4, 4, 4);
  g.fill(1.0);
  // Interior cells see 6 neighbours of 1.0 -> 0; cells at the edge see
  // zero ghosts -> positive residue.
  apply_poisson(g, out, {0, 0, 0}, {4, 4, 4});
  EXPECT_EQ(out.at(1, 1, 1), 0.0);
  EXPECT_GT(out.at(0, 1, 1), 0.0);
}

TEST(CgApp, BlockingMatchesOracle) {
  CgConfig cfg = real_config();
  const auto result = run_cg(HaloVariant::Blocking, cfg, testing::tiny_machine(8));
  expect_matches_oracle(result, 1e-9);
}

TEST(CgApp, NonblockingMatchesOracle) {
  CgConfig cfg = real_config();
  const auto result =
      run_cg(HaloVariant::Nonblocking, cfg, testing::tiny_machine(8));
  expect_matches_oracle(result, 1e-9);
}

TEST(CgApp, DecoupledMatchesOracle) {
  CgConfig cfg = real_config();
  const auto result =
      run_cg(HaloVariant::Decoupled, cfg, testing::tiny_machine(8));
  expect_matches_oracle(result, 1e-9);
}

TEST(CgApp, BlockingAndNonblockingResidualsAgree) {
  CgConfig cfg = real_config();
  const auto a = run_cg(HaloVariant::Blocking, cfg, testing::tiny_machine(8));
  const auto b = run_cg(HaloVariant::Nonblocking, cfg, testing::tiny_machine(8));
  // Same decomposition, same reduction order: bitwise-identical trajectories.
  EXPECT_EQ(a.residual2, b.residual2);
}

TEST(CgApp, IndivisibleGridRejected) {
  CgConfig cfg = real_config();
  cfg.global_grid = {7, 4, 4};  // 7 not divisible by dim 2 (or 3)
  EXPECT_THROW((void)run_cg(HaloVariant::Blocking, cfg, testing::tiny_machine(8)),
               std::invalid_argument);
}

TEST(CgApp, ModeledVariantsAdvanceTime) {
  CgConfig cfg;
  cfg.n = 16;
  cfg.iterations = 3;
  cfg.stride = 4;
  for (const auto variant : {HaloVariant::Blocking, HaloVariant::Nonblocking,
                             HaloVariant::Decoupled}) {
    const auto result = run_cg(variant, cfg, testing::tiny_machine(8));
    EXPECT_GT(result.seconds, 0.0);
  }
}

TEST(CgApp, NonblockingNotSlowerThanBlockingWithNoise) {
  CgConfig cfg;
  cfg.n = 32;
  cfg.iterations = 10;
  mpi::MachineConfig machine = testing::tiny_machine(27);
  machine.engine.noise = sim::NoiseConfig{0.05, 20.0, util::microseconds(300)};
  const auto blocking = run_cg(HaloVariant::Blocking, cfg, machine);
  const auto nonblocking = run_cg(HaloVariant::Nonblocking, cfg, machine);
  EXPECT_LE(nonblocking.seconds, blocking.seconds * 1.02);
}

}  // namespace
}  // namespace ds::apps::cg
