// The flagship recovery scenario (ISSUE 5 acceptance): the pic_io
// compute -> reduce -> writeback chain survives an injected crash of a
// writeback rank mid-run. The pipeline completes, the dump is byte-identical
// (as a multiset) to the fault-free run — nothing lost, nothing written
// twice — and the manifest completeness barrier still holds at the
// surviving writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "apps/pic/pic_io.hpp"
#include "common/machine_helpers.hpp"
#include "core/group_plan.hpp"

namespace ds::apps::pic {
namespace {

[[nodiscard]] PicIoConfig resilient_config() {
  PicIoConfig cfg;
  cfg.real_data = true;
  cfg.particles_per_rank = 60;
  cfg.steps = 4;
  cfg.stride = 4;  // 8 ranks -> 2 writers: a surviving writer exists
  cfg.batch_particles = 16;
  cfg.checkpoint_interval = 32;
  return cfg;
}

[[nodiscard]] std::vector<std::uint64_t> ids_of(
    const std::vector<std::byte>& content) {
  std::vector<std::uint64_t> ids(content.size() / sizeof(std::uint64_t));
  std::memcpy(ids.data(), content.data(), ids.size() * sizeof(std::uint64_t));
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// World rank of writeback-stage writer `index` under the test split.
[[nodiscard]] int writer_world_rank(const mpi::MachineConfig& machine,
                                    int stride, int index) {
  mpi::Machine probe(machine);
  const auto plan = stream::GroupPlan::interleaved(probe.world(), stride);
  return plan.helpers().at(static_cast<std::size_t>(index));
}

/// World rank of compute-stage member `index` (the chain carves the reduce
/// stage out of the last worker, so indices below size-1 are compute ranks).
[[nodiscard]] int compute_world_rank(const mpi::MachineConfig& machine,
                                     int stride, int index) {
  mpi::Machine probe(machine);
  const auto plan = stream::GroupPlan::interleaved(probe.world(), stride);
  return plan.workers().at(static_cast<std::size_t>(index));
}

TEST(PicIoResilience, WritebackCrashMidRunDumpsByteIdenticalContent) {
  const PicIoConfig cfg = resilient_config();

  // Fault-free resilient baseline: same machinery, no crash.
  const auto clean =
      run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  ASSERT_GT(clean.file_bytes, 0u);

  // Crash writeback writer 1 (a non-aggregator consumer of the manifest
  // channel) about a third of the way through the run — producers are still
  // streaming dumps, squarely inside the recoverability window.
  auto faulty_machine = testing::tiny_machine(8);
  const int victim = writer_world_rank(faulty_machine, cfg.stride, 1);
  faulty_machine.faults.crash(
      victim, util::from_seconds(clean.seconds / 3.0));
  const auto faulty = run_pic_io(IoVariant::Decoupled, cfg, faulty_machine);

  // The dump must be byte-identical as a multiset: the dead writer's
  // unflushed buffer is replayed to the surviving writer, nothing is lost,
  // and the exactly-once filter keeps anything from landing twice.
  EXPECT_EQ(faulty.file_bytes, clean.file_bytes);
  EXPECT_EQ(ids_of(faulty.file_content), ids_of(clean.file_content));
  // Recovery costs time but the run still finishes.
  EXPECT_GT(faulty.seconds, 0.0);
}

TEST(PicIoResilience, FaultFreeResilientRunMatchesNonResilientContent) {
  // The resilience machinery itself must not change what reaches the file:
  // with no fault injected, the resilient chain and the plain chain write
  // the same multiset (and the writer manifest equality check stays exact).
  PicIoConfig plain = resilient_config();
  plain.checkpoint_interval = 0;
  const PicIoConfig resilient = resilient_config();
  const auto a =
      run_pic_io(IoVariant::Decoupled, plain, testing::tiny_machine(8));
  const auto b =
      run_pic_io(IoVariant::Decoupled, resilient, testing::tiny_machine(8));
  EXPECT_EQ(a.file_bytes, b.file_bytes);
  EXPECT_EQ(ids_of(a.file_content), ids_of(b.file_content));
}

TEST(PicIoResilience, SurvivesCrashAtVariousPhases) {
  // The recoverability window spans the whole producing phase: inject the
  // crash at several points of the run and require completion with full
  // content each time.
  const PicIoConfig cfg = resilient_config();
  const auto clean =
      run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  const auto expected = ids_of(clean.file_content);
  for (const double fraction : {0.15, 0.5, 0.7}) {
    auto machine = testing::tiny_machine(8);
    const int victim = writer_world_rank(machine, cfg.stride, 1);
    machine.faults.crash(victim,
                         util::from_seconds(clean.seconds * fraction));
    const auto faulty = run_pic_io(IoVariant::Decoupled, cfg, machine);
    EXPECT_EQ(ids_of(faulty.file_content), expected)
        << "crash at fraction " << fraction;
  }
}

TEST(PicIoResilience, ProducerCrashKeepsDumpIdempotentAndByteIdentical) {
  // Failure-matrix cell: producer crash. Two flavors against the same keyed
  // (idempotent) resilient baseline:
  //  * a crash after the producing phase (0.9 of the run) must leave the
  //    dump literally byte-identical — the termination protocol absorbs the
  //    dead rank without disturbing a single offset;
  //  * a crash mid-production (0.45) cannot conjure the dead rank's unsent
  //    particles, but every byte that IS in the file must sit exactly where
  //    the fault-free run put it (keyed placement: no duplicates, no
  //    misplaced replays), and every surviving producer's byte must be
  //    present.
  const PicIoConfig cfg = resilient_config();
  const auto clean =
      run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  ASSERT_GT(clean.file_bytes, 0u);

  {
    auto machine = testing::tiny_machine(8);
    const int victim = compute_world_rank(machine, cfg.stride, 0);
    machine.faults.crash(victim, util::from_seconds(clean.seconds * 0.9));
    const auto faulty = run_pic_io(IoVariant::Decoupled, cfg, machine);
    EXPECT_EQ(faulty.file_content, clean.file_content);  // byte-identical
  }
  {
    // Mid-production flavor: stretch the compute phase (the makespan is
    // dominated by simulated file I/O, so a fraction of the whole run would
    // land after the last send) and crash inside the producing window. The
    // particle counts are density-weighted, so pick the densest compute
    // rank (stage index 2, ~262 particles -> ~105us of compute per step):
    // a crash at 250us of virtual time lands squarely between its dumps.
    PicIoConfig slow = cfg;
    slow.ns_mover_per_particle = 400.0;
    const auto slow_clean =
        run_pic_io(IoVariant::Decoupled, slow, testing::tiny_machine(8));
    auto machine = testing::tiny_machine(8);
    const int victim = compute_world_rank(machine, slow.stride, 2);
    machine.faults.crash(victim, util::microseconds(250));
    const auto faulty = run_pic_io(IoVariant::Decoupled, slow, machine);
    auto padded = faulty.file_content;
    padded.resize(slow_clean.file_content.size());  // unwritten tail = holes
    const auto& clean_content = slow_clean.file_content;
    const std::size_t slots = clean_content.size() / sizeof(std::uint64_t);
    std::size_t holes = 0;
    for (std::size_t k = 0; k < slots; ++k) {
      std::uint64_t have = 0, want = 0;
      std::memcpy(&have, padded.data() + k * sizeof have, sizeof have);
      std::memcpy(&want, clean_content.data() + k * sizeof want, sizeof want);
      if (have == 0 && want != 0) {
        // A hole may only belong to the dead compute rank (stage index 2).
        EXPECT_EQ(want >> 40, 2u) << "lost a surviving producer's particle";
        ++holes;
        continue;
      }
      EXPECT_EQ(have, want) << "byte landed at the wrong keyed offset";
    }
    EXPECT_GT(holes, 0u);  // the crash really did land mid-production
  }
}

TEST(PicIoResilience, AggregatorWriterCrashDumpsByteIdenticalContent) {
  // Failure-matrix cell: aggregator crash mid-protocol. Writer slot 0 is
  // the effective aggregator of the Directed manifests stream; killing it
  // forces re-election (writer 1), counted-term replay to the new
  // aggregator, and adoption + full replay of the dead writer's batch
  // flows. With keyed writeback the replayed batches overwrite their own
  // offsets, so the dump is literally byte-identical.
  const PicIoConfig cfg = resilient_config();
  const auto clean =
      run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  auto machine = testing::tiny_machine(8);
  const int victim = writer_world_rank(machine, cfg.stride, 0);
  machine.faults.crash(victim, util::from_seconds(clean.seconds / 3.0));
  const auto faulty = run_pic_io(IoVariant::Decoupled, cfg, machine);
  EXPECT_EQ(faulty.file_bytes, clean.file_bytes);
  EXPECT_EQ(faulty.file_content, clean.file_content);
  EXPECT_GT(faulty.seconds, 0.0);
}

TEST(PicIoResilience, WriterRejoinDumpsByteIdenticalContent) {
  // Failure-matrix cell: restarted-rank rejoin. Writer 1 crashes at 30% and
  // its respawned incarnation rejoins at 50% — the pipeline facade attaches
  // the rejoined rank to the live channels (no collective), producers hand
  // the writer's flows back voluntarily, and the keyed writeback makes the
  // three-way split of the dump (dead incarnation's durable prefix, interim
  // owner's adopted middle, rejoined incarnation's tail) land byte-identical
  // to the fault-free run.
  PicIoConfig cfg = resilient_config();
  // Stretch the producing phase so the rejoin lands while producers are
  // still streaming (a rejoin after the last producer exits has nobody left
  // to hand the flows back).
  cfg.ns_mover_per_particle = 400.0;  // producing window ~120us
  const auto clean =
      run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  auto machine = testing::tiny_machine(8);
  const int victim = writer_world_rank(machine, cfg.stride, 1);
  machine.faults.crash(victim, util::microseconds(40));
  machine.faults.restart(victim, util::microseconds(80));
  const auto faulty = run_pic_io(IoVariant::Decoupled, cfg, machine);
  EXPECT_EQ(faulty.file_bytes, clean.file_bytes);
  EXPECT_EQ(faulty.file_content, clean.file_content);
}

}  // namespace
}  // namespace ds::apps::pic
