// The flagship recovery scenario (ISSUE 5 acceptance): the pic_io
// compute -> reduce -> writeback chain survives an injected crash of a
// writeback rank mid-run. The pipeline completes, the dump is byte-identical
// (as a multiset) to the fault-free run — nothing lost, nothing written
// twice — and the manifest completeness barrier still holds at the
// surviving writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "apps/pic/pic_io.hpp"
#include "common/machine_helpers.hpp"
#include "core/group_plan.hpp"

namespace ds::apps::pic {
namespace {

[[nodiscard]] PicIoConfig resilient_config() {
  PicIoConfig cfg;
  cfg.real_data = true;
  cfg.particles_per_rank = 60;
  cfg.steps = 4;
  cfg.stride = 4;  // 8 ranks -> 2 writers: a surviving writer exists
  cfg.batch_particles = 16;
  cfg.checkpoint_interval = 32;
  return cfg;
}

[[nodiscard]] std::vector<std::uint64_t> ids_of(
    const std::vector<std::byte>& content) {
  std::vector<std::uint64_t> ids(content.size() / sizeof(std::uint64_t));
  std::memcpy(ids.data(), content.data(), ids.size() * sizeof(std::uint64_t));
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// World rank of writeback-stage writer `index` under the test split.
[[nodiscard]] int writer_world_rank(const mpi::MachineConfig& machine,
                                    int stride, int index) {
  mpi::Machine probe(machine);
  const auto plan = stream::GroupPlan::interleaved(probe.world(), stride);
  return plan.helpers().at(static_cast<std::size_t>(index));
}

TEST(PicIoResilience, WritebackCrashMidRunDumpsByteIdenticalContent) {
  const PicIoConfig cfg = resilient_config();

  // Fault-free resilient baseline: same machinery, no crash.
  const auto clean =
      run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  ASSERT_GT(clean.file_bytes, 0u);

  // Crash writeback writer 1 (a non-aggregator consumer of the manifest
  // channel) about a third of the way through the run — producers are still
  // streaming dumps, squarely inside the recoverability window.
  auto faulty_machine = testing::tiny_machine(8);
  const int victim = writer_world_rank(faulty_machine, cfg.stride, 1);
  faulty_machine.faults.crash(
      victim, util::from_seconds(clean.seconds / 3.0));
  const auto faulty = run_pic_io(IoVariant::Decoupled, cfg, faulty_machine);

  // The dump must be byte-identical as a multiset: the dead writer's
  // unflushed buffer is replayed to the surviving writer, nothing is lost,
  // and the exactly-once filter keeps anything from landing twice.
  EXPECT_EQ(faulty.file_bytes, clean.file_bytes);
  EXPECT_EQ(ids_of(faulty.file_content), ids_of(clean.file_content));
  // Recovery costs time but the run still finishes.
  EXPECT_GT(faulty.seconds, 0.0);
}

TEST(PicIoResilience, FaultFreeResilientRunMatchesNonResilientContent) {
  // The resilience machinery itself must not change what reaches the file:
  // with no fault injected, the resilient chain and the plain chain write
  // the same multiset (and the writer manifest equality check stays exact).
  PicIoConfig plain = resilient_config();
  plain.checkpoint_interval = 0;
  const PicIoConfig resilient = resilient_config();
  const auto a =
      run_pic_io(IoVariant::Decoupled, plain, testing::tiny_machine(8));
  const auto b =
      run_pic_io(IoVariant::Decoupled, resilient, testing::tiny_machine(8));
  EXPECT_EQ(a.file_bytes, b.file_bytes);
  EXPECT_EQ(ids_of(a.file_content), ids_of(b.file_content));
}

TEST(PicIoResilience, SurvivesCrashAtVariousPhases) {
  // The recoverability window spans the whole producing phase: inject the
  // crash at several points of the run and require completion with full
  // content each time.
  const PicIoConfig cfg = resilient_config();
  const auto clean =
      run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  const auto expected = ids_of(clean.file_content);
  for (const double fraction : {0.15, 0.5, 0.7}) {
    auto machine = testing::tiny_machine(8);
    const int victim = writer_world_rank(machine, cfg.stride, 1);
    machine.faults.crash(victim,
                         util::from_seconds(clean.seconds * fraction));
    const auto faulty = run_pic_io(IoVariant::Decoupled, cfg, machine);
    EXPECT_EQ(ids_of(faulty.file_content), expected)
        << "crash at fraction " << fraction;
  }
}

}  // namespace
}  // namespace ds::apps::pic
