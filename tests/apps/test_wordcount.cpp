#include "apps/wordcount/wordcount.hpp"

#include <gtest/gtest.h>

#include "common/machine_helpers.hpp"

namespace ds::apps::wordcount {
namespace {

WordcountConfig small_real_config() {
  WordcountConfig cfg;
  cfg.corpus.files_per_rank = 2;
  cfg.corpus.min_file_bytes = 1 << 20;
  cfg.corpus.max_file_bytes = 4 << 20;
  cfg.corpus.sample_vocabulary = 101;
  cfg.block_bytes = 1 << 20;
  cfg.element_bytes = 4096;
  cfg.real_data = true;
  cfg.words_per_block_real = 300;
  cfg.stride = 4;
  return cfg;
}

TEST(WordcountCorpus, DeterministicSizesInRange) {
  CorpusParams p;
  const Corpus a(p, 8), b(p, 8);
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.file_count(), 8 * p.files_per_rank);
  for (int f = 0; f < a.file_count(); ++f) {
    EXPECT_GE(a.file_bytes(f), p.min_file_bytes);
    EXPECT_LE(a.file_bytes(f), p.max_file_bytes);
  }
}

TEST(WordcountCorpus, RoundRobinAssignmentCoversAllFiles) {
  const Corpus corpus(CorpusParams{}, 4);
  std::uint64_t total = 0;
  for (int owner = 0; owner < 4; ++owner) total += corpus.bytes_of(owner, 4);
  EXPECT_EQ(total, corpus.total_bytes());
}

TEST(WordcountCorpus, HeapsLawGrowsSublinearly) {
  const Corpus corpus(CorpusParams{}, 4);
  const auto v1 = corpus.distinct_words(1 << 20);
  const auto v2 = corpus.distinct_words(1ull << 30);
  EXPECT_GT(v2, v1);
  EXPECT_LT(static_cast<double>(v2), 1024.0 * static_cast<double>(v1));
}

TEST(WordcountCorpus, BlockSamplingIsDeterministic) {
  const Corpus corpus(CorpusParams{}, 2);
  std::vector<std::uint64_t> a, b;
  corpus.sample_block(1, 3, 500, a);
  corpus.sample_block(1, 3, 500, b);
  EXPECT_EQ(a, b);
  std::uint64_t total = 0;
  for (const auto c : a) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(Wordcount, ReferenceMatchesSequentialOracle) {
  const WordcountConfig cfg = small_real_config();
  const auto oracle = sequential_histogram(cfg, 8);
  const auto result = run_reference(cfg, testing::tiny_machine(8));
  ASSERT_EQ(result.histogram.size(), oracle.size());
  EXPECT_EQ(result.histogram, oracle);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Wordcount, DecoupledMatchesSequentialOracle) {
  const WordcountConfig cfg = small_real_config();
  const auto oracle = sequential_histogram(cfg, 8);
  const auto result = run_decoupled(cfg, testing::tiny_machine(8));
  ASSERT_EQ(result.histogram.size(), oracle.size());
  EXPECT_EQ(result.histogram, oracle);
}

TEST(Wordcount, DecoupledWithAggregationAlsoExact) {
  WordcountConfig cfg = small_real_config();
  cfg.aggregate_reduce_group = true;
  const auto oracle = sequential_histogram(cfg, 8);
  const auto result = run_decoupled(cfg, testing::tiny_machine(8));
  EXPECT_EQ(result.histogram, oracle);
}

TEST(Wordcount, ModeledRunsProduceTimeAndElements) {
  WordcountConfig cfg;
  cfg.stride = 4;
  const auto ref = run_reference(cfg, testing::tiny_machine(16));
  const auto dec = run_decoupled(cfg, testing::tiny_machine(16));
  EXPECT_GT(ref.seconds, 0.0);
  EXPECT_GT(dec.seconds, 0.0);
  EXPECT_GT(dec.elements_streamed, 0u);
}

TEST(Wordcount, ElementCountMatchesBlockCount) {
  WordcountConfig cfg;
  cfg.stride = 4;
  const int p = 8;
  const Corpus corpus(cfg.corpus, p);
  std::uint64_t expected = 0;
  for (int f = 0; f < corpus.file_count(); ++f)
    expected += blocks_of(cfg, corpus.file_bytes(f));
  const auto dec = run_decoupled(cfg, testing::tiny_machine(p));
  EXPECT_EQ(dec.elements_streamed, expected);
}

TEST(Wordcount, SingleHelperDegeneratesToMasterOnly) {
  // One helper = the reduce group is just the master; still exact.
  WordcountConfig cfg = small_real_config();
  cfg.stride = 8;  // 8 ranks -> exactly one helper
  const auto oracle = sequential_histogram(cfg, 8);
  const auto result = run_decoupled(cfg, testing::tiny_machine(8));
  EXPECT_EQ(result.histogram, oracle);
}

}  // namespace
}  // namespace ds::apps::wordcount
