#include "apps/pic/pic_app.hpp"
#include "apps/pic/pic_io.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include <algorithm>

#include "common/machine_helpers.hpp"

namespace ds::apps::pic {
namespace {

PicConfig small_real_config() {
  PicConfig cfg;
  cfg.real_data = true;
  cfg.particles_per_rank = 120;
  cfg.steps = 4;
  cfg.dt = 0.07;
  cfg.stride = 4;
  return cfg;
}

void expect_matches_oracle(const PicResult& result, const PicConfig& cfg,
                           int world_size, int compute_ranks) {
  const Domain domain = domain_of(compute_ranks);
  const auto initial = initialize_particles(
      domain, cfg.particles_per_rank * static_cast<std::uint64_t>(world_size),
      cfg.seed);
  const auto expected = oracle_advance(domain, initial, cfg.steps, cfg.dt);
  ASSERT_EQ(result.final_particles.size(), expected.size());
  for (std::size_t r = 0; r < expected.size(); ++r) {
    EXPECT_EQ(result.final_particles[r].size(), expected[r].size()) << "rank " << r;
    EXPECT_EQ(particle_signature(result.final_particles[r]),
              particle_signature(expected[r]))
        << "rank " << r;
  }
}

TEST(PicParticles, SheetDensityPeaksAtCenter) {
  EXPECT_GT(sheet_density(0.5), sheet_density(0.1));
  EXPECT_GT(sheet_density(0.5), sheet_density(0.9));
  EXPECT_GT(sheet_density(0.0), 0.0);  // floor keeps all ranks populated
}

TEST(PicParticles, InitializationIsSkewedAndComplete) {
  const Domain domain = domain_of(8);
  const auto lists = initialize_particles(domain, 4000, 1);
  std::uint64_t total = 0;
  for (const auto& l : lists) total += l.size();
  EXPECT_EQ(total, 4000u);
  // Ranks along the sheet-divided x axis should hold unequal shares.
  std::uint64_t lo_x = 0, hi_x = 0;
  for (int r = 0; r < 8; ++r) {
    const auto c = domain.cart.coords_of(r);
    if (c[0] == 0)
      lo_x += lists[static_cast<std::size_t>(r)].size();
    else
      hi_x += lists[static_cast<std::size_t>(r)].size();
  }
  EXPECT_NE(lo_x, hi_x);
}

TEST(PicParticles, OwnershipIsConsistentWithBoxes) {
  const Domain domain = domain_of(12);
  const auto lists = initialize_particles(domain, 1000, 7);
  for (int r = 0; r < 12; ++r)
    for (const auto& p : lists[static_cast<std::size_t>(r)])
      EXPECT_TRUE(domain.contains(r, p));
}

TEST(PicParticles, ReflectionKeepsParticlesInDomain) {
  Particle p;
  p.x = 0.98;
  p.vx = 1.0;
  for (int i = 0; i < 100; ++i) {
    move_particle(p, 0.05);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
  }
}

TEST(PicParticles, SignatureIsOrderIndependent) {
  const Domain domain = domain_of(2);
  auto lists = initialize_particles(domain, 100, 3);
  auto shuffled = lists[0];
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(particle_signature(lists[0]), particle_signature(shuffled));
  shuffled.pop_back();
  EXPECT_NE(particle_signature(lists[0]), particle_signature(shuffled));
}

TEST(PicParticles, ModeledCountsConserveTotal) {
  const Domain domain = domain_of(16);
  const auto counts = modeled_rank_counts(domain, 16'000);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 16000u);
}

TEST(PicExchange, ReferenceMatchesOracle) {
  const PicConfig cfg = small_real_config();
  const auto result =
      run_pic(ExchangeVariant::Reference, cfg, testing::tiny_machine(8));
  expect_matches_oracle(result, cfg, 8, 8);
}

TEST(PicExchange, DecoupledMatchesOracle) {
  const PicConfig cfg = small_real_config();
  const auto result =
      run_pic(ExchangeVariant::Decoupled, cfg, testing::tiny_machine(8));
  expect_matches_oracle(result, cfg, 8,
                        compute_ranks_of(ExchangeVariant::Decoupled, cfg, 8));
}

TEST(PicExchange, ModeledRunsConserveParticles) {
  PicConfig cfg;
  cfg.particles_per_rank = 5000;
  cfg.steps = 6;
  cfg.stride = 4;
  for (const auto variant : {ExchangeVariant::Reference, ExchangeVariant::Decoupled}) {
    const auto result = run_pic(variant, cfg, testing::tiny_machine(16));
    const auto ranks = static_cast<std::uint64_t>(
        compute_ranks_of(variant, cfg, 16));
    EXPECT_EQ(result.total_particles_end, cfg.particles_per_rank * 16)
        << "variant " << static_cast<int>(variant) << " ranks " << ranks;
    EXPECT_GT(result.comm_seconds, 0.0);
    EXPECT_GT(result.seconds, result.comm_seconds);
  }
}

TEST(PicIo, CollectiveAndSharedProduceSameContent) {
  PicIoConfig cfg;
  cfg.real_data = true;
  cfg.particles_per_rank = 50;
  cfg.steps = 2;
  auto ids_of = [](const std::vector<std::byte>& content) {
    std::vector<std::uint64_t> ids(content.size() / 8);
    std::memcpy(ids.data(), content.data(), ids.size() * 8);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const auto coll = run_pic_io(IoVariant::Collective, cfg, testing::tiny_machine(4));
  const auto shared = run_pic_io(IoVariant::Shared, cfg, testing::tiny_machine(4));
  EXPECT_EQ(coll.file_bytes, shared.file_bytes);
  EXPECT_GT(coll.file_bytes, 0u);
  // Same records, possibly in a different order in the file.
  EXPECT_EQ(ids_of(coll.file_content), ids_of(shared.file_content));
}

TEST(PicIo, DecoupledChainWritesOracleIdenticalContent) {
  // The chained decoupled path (compute -> reduce -> writeback, with the
  // manifest completeness barrier) must put exactly the expected records on
  // disk, as a multiset: every compute rank's deterministic ids for every
  // step, nothing lost in either hop of the chain, nothing duplicated.
  PicIoConfig cfg;
  cfg.real_data = true;
  cfg.particles_per_rank = 60;
  cfg.steps = 2;
  cfg.stride = 4;  // 8 ranks -> 2 helpers: the full three-stage chain
  const auto dec = run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));

  // Reconstruct the oracle multiset with the same deterministic formula the
  // compute stage uses (one rank is carved out of the worker group for the
  // chain's reduce stage, so 8 ranks -> 6 workers -> 5 compute ranks).
  const int compute_ranks = 5;
  const Domain domain = domain_of(compute_ranks);
  const auto counts = modeled_rank_counts(domain, cfg.particles_per_rank * 8);
  std::vector<std::uint64_t> expected;
  for (int rank = 0; rank < compute_ranks; ++rank)
    for (int step = 0; step < cfg.steps; ++step)
      for (std::uint64_t i = 0; i < counts[static_cast<std::size_t>(rank)]; ++i)
        expected.push_back((static_cast<std::uint64_t>(rank) << 40) ^
                           (static_cast<std::uint64_t>(step) << 32) ^ i);
  std::sort(expected.begin(), expected.end());

  ASSERT_EQ(dec.file_content.size(), expected.size() * sizeof(std::uint64_t));
  std::vector<std::uint64_t> written(expected.size());
  std::memcpy(written.data(), dec.file_content.data(), dec.file_content.size());
  std::sort(written.begin(), written.end());
  EXPECT_EQ(written, expected);
}

TEST(PicIo, DecoupledWritesEverything) {
  PicIoConfig cfg;
  cfg.particles_per_rank = 1000;
  cfg.steps = 3;
  cfg.stride = 4;
  const auto result = run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  // Total bytes = total particles x particle_bytes x steps (weak-scaled to
  // the same total as the reference layouts).
  const std::uint64_t expected = 1000ull * 8 * sizeof(Particle) * 3;
  EXPECT_EQ(result.file_bytes, expected);
}

TEST(PicIo, NodeAwarePlacementWritesIdenticalBytes) {
  // Moving the writeback group to the tail ranks of each node changes who
  // writes, not what: same helper count (ceil(ranks_per_node / stride) per
  // node here equals the interleaved split's), same bytes on disk.
  PicIoConfig cfg;
  cfg.particles_per_rank = 500;
  cfg.steps = 2;
  cfg.stride = 4;
  auto machine = testing::tiny_machine(8);
  machine.network.ranks_per_node = 4;
  const auto interleaved = run_pic_io(IoVariant::Decoupled, cfg, machine);
  cfg.node_aware_placement = true;
  const auto placed = run_pic_io(IoVariant::Decoupled, cfg, machine);
  EXPECT_GT(placed.file_bytes, 0u);
  EXPECT_EQ(placed.file_bytes, interleaved.file_bytes);
}

TEST(PicIo, AllVariantsWriteSameTotalBytes) {
  PicIoConfig cfg;
  cfg.particles_per_rank = 500;
  cfg.steps = 2;
  cfg.stride = 4;
  const auto coll = run_pic_io(IoVariant::Collective, cfg, testing::tiny_machine(8));
  const auto shared = run_pic_io(IoVariant::Shared, cfg, testing::tiny_machine(8));
  const auto dec = run_pic_io(IoVariant::Decoupled, cfg, testing::tiny_machine(8));
  EXPECT_EQ(coll.file_bytes, shared.file_bytes);
  EXPECT_EQ(coll.file_bytes, dec.file_bytes);
}

}  // namespace
}  // namespace ds::apps::pic
