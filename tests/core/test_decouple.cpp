#include "core/decouple.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/machine_helpers.hpp"
#include "mpi/rank.hpp"

namespace ds::decouple {
namespace {

using mpi::Rank;

struct Sample {
  std::int32_t source = -1;
  std::int32_t tick = -1;
  double value = 0.0;
};

TEST(Pipeline, DispatchesRolesAndRoundTripsTypedRecords) {
  std::vector<int> consumed(8, 0);
  double sum = 0.0;
  testing::run_program(testing::tiny_machine(8), [&](Rank& self) {
    auto pipeline = Pipeline::over(self, self.world()).with_stride(4);
    auto samples = pipeline.stream<Sample>();
    pipeline.run(
        [&](Context& ctx) {
          EXPECT_TRUE(ctx.is_worker());
          EXPECT_EQ(ctx.worker_count(), 6);
          EXPECT_EQ(ctx.helper_count(), 2);
          EXPECT_EQ(ctx.helper_index(), -1);
          auto& s = ctx[samples];
          EXPECT_TRUE(s.is_producer());
          EXPECT_FALSE(s.is_consumer());
          for (int t = 0; t < 3; ++t)
            s.send(Sample{ctx.parent_rank(), t, 0.5 * t});
          // No terminate(): the pipeline handles it when this returns.
        },
        [&](Context& ctx) {
          EXPECT_TRUE(ctx.is_helper());
          EXPECT_EQ(ctx.worker_index(), -1);
          auto& s = ctx[samples];
          s.on_receive([&](const Element<Sample>& el) {
            EXPECT_FALSE(el.synthetic);
            EXPECT_EQ(el.payload_bytes, 0u);
            EXPECT_GE(el.producer, 0);
            consumed[static_cast<std::size_t>(el.record.source)]++;
            sum += el.record.value;
          });
          EXPECT_EQ(s.operate() % 3, 0u);  // every producer sent 3
        });
  });
  for (int r = 0; r < 8; ++r) EXPECT_EQ(consumed[static_cast<std::size_t>(r)], r % 4 == 3 ? 0 : 3);
  EXPECT_DOUBLE_EQ(sum, 6 * (0.0 + 0.5 + 1.0));
}

TEST(Pipeline, TypedPayloadsCrossTheWire) {
  struct Header {
    std::int32_t count = 0;
    std::int32_t tag = 0;
  };
  std::vector<double> received;
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    auto pipeline =
        Pipeline::over(self, self.world()).with_helper_ranks({2});
    auto data = pipeline.stream<Header>(/*max_payload_bytes=*/4 * sizeof(double));
    pipeline.run(
        [&](Context& ctx) {
          auto& s = ctx[data];
          const std::vector<double> body{1.0, 2.0, 3.0};
          s.send(Header{3, ctx.parent_rank()}, body.data(), body.size());
        },
        [&](Context& ctx) {
          auto& s = ctx[data];
          s.on_receive([&](const Element<Header>& el) {
            ASSERT_EQ(el.record.count, 3);
            std::vector<double> body;
            el.payload_to(body, static_cast<std::size_t>(el.record.count));
            for (const double v : body) received.push_back(v);
          });
          s.operate();
        });
  });
  ASSERT_EQ(received.size(), 6u);
  EXPECT_DOUBLE_EQ(std::accumulate(received.begin(), received.end(), 0.0), 12.0);
}

TEST(Pipeline, DirectedStreamsAndModeledBodies) {
  struct Note {
    std::int32_t dest = -1;
    std::int32_t payload_doubles = 0;
  };
  std::vector<std::uint64_t> per_helper(2, 0);
  testing::run_program(testing::tiny_machine(6), [&](Rank& self) {
    StreamOptions options;
    options.mapping = Mapping::Directed;
    auto pipeline = Pipeline::over(self, self.world()).with_stride(3);
    auto notes = pipeline.stream<Note>(64 * sizeof(double), options);
    pipeline.run(
        [&](Context& ctx) {
          auto& s = ctx[notes];
          // Worker w talks to its block helper, body modeled (no real bytes).
          const int target = ctx.helper_of(ctx.worker_index());
          s.send_modeled_to(target, Note{target, 64}, 64 * sizeof(double));
        },
        [&](Context& ctx) {
          auto& s = ctx[notes];
          s.on_receive([&](const Element<Note>& el) {
            // The record is real even when the body is modeled.
            EXPECT_EQ(el.record.dest, ctx.helper_index());
            EXPECT_EQ(el.payload_bytes, 64 * sizeof(double));
            per_helper[static_cast<std::size_t>(ctx.helper_index())]++;
          });
          s.operate();
        });
  });
  // 4 workers, helper_of: workers 0,1 -> helper 0; workers 2,3 -> helper 1.
  EXPECT_EQ(per_helper[0], 2u);
  EXPECT_EQ(per_helper[1], 2u);
}

TEST(Pipeline, RawStreamsCarryBytesAndSynthetics) {
  std::uint64_t real_bytes = 0, synthetic_bytes = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    auto pipeline = Pipeline::over(self, self.world()).with_helper_ranks({1});
    auto bytes = pipeline.raw_stream(256);
    pipeline.run(
        [&](Context& ctx) {
          auto& s = ctx[bytes];
          const std::vector<std::uint32_t> words{1, 2, 3, 4};
          s.send_items(words.data(), words.size());
          s.send_synthetic(128);
          EXPECT_EQ(s.elements_sent(), 2u);
        },
        [&](Context& ctx) {
          auto& s = ctx[bytes];
          s.on_receive([&](const RawElement& el) {
            if (el.synthetic)
              synthetic_bytes += el.bytes;
            else
              real_bytes += el.bytes;
          });
          s.operate();
        });
  });
  EXPECT_EQ(real_bytes, 4 * sizeof(std::uint32_t));
  EXPECT_EQ(synthetic_bytes, 128u);
}

TEST(Pipeline, AdaptiveStreamBatchesRecords) {
  std::uint64_t elements = 0, records = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    AdaptiveConfig adaptive;
    adaptive.initial_records = 4;
    adaptive.max_records = 64;
    auto pipeline = Pipeline::over(self, self.world()).with_helper_ranks({1});
    auto flow = pipeline.adaptive_stream(/*record_bytes=*/32, adaptive);
    pipeline.run(
        [&](Context& ctx) {
          auto& s = ctx[flow];
          EXPECT_TRUE(s.is_adaptive());
          for (int i = 0; i < 103; ++i) s.push();
          EXPECT_EQ(s.records_sent(), 103u);
          // The trailing partial batch flushes via RAII termination.
        },
        [&](Context& ctx) {
          auto& s = ctx[flow];
          s.on_receive([&](const RawElement& el) {
            ++elements;
            records += adaptive_record_count(el);
          });
          s.operate();
        });
  });
  EXPECT_EQ(records, 103u);
  EXPECT_GT(elements, 0u);
  EXPECT_LE(elements, 103u / 4 + 1);
}

TEST(Pipeline, CustomEndpointPredicatesOverrideTheSplit) {
  // Three roles out of two groups: helpers split into one master (last
  // helper) and reducers, as the wordcount reduce group does.
  std::uint64_t master_received = 0;
  testing::run_program(testing::tiny_machine(6), [&](Rank& self) {
    const stream::GroupPlan plan = stream::GroupPlan::interleaved(self.world(), 3);
    const int master = plan.helpers().back();
    auto is_reducer = [plan, master](int r) {
      return plan.is_helper(r) && r != master;
    };
    StreamOptions down;  // workers -> reducers
    down.consumers = is_reducer;
    StreamOptions up;  // reducers -> master
    up.producers = is_reducer;
    up.consumers = [master](int r) { return r == master; };

    auto pipeline = Pipeline::over(self, self.world()).with_plan(plan);
    auto first = pipeline.raw_stream(64, down);
    auto second = pipeline.raw_stream(64, up);
    pipeline.run(
        [&](Context& ctx) { ctx[first].send_synthetic(64); },
        [&](Context& ctx) {
          const bool reducer = is_reducer(ctx.parent_rank());
          if (reducer) {
            auto& in = ctx[first];
            auto& out = ctx[second];
            in.on_receive(
                [&](const RawElement& el) { out.send_synthetic(el.bytes); });
            in.operate();
          } else {
            auto& in = ctx[second];
            in.on_receive([&](const RawElement&) { ++master_received; });
            in.operate();
          }
        });
  });
  EXPECT_EQ(master_received, 4u);  // one element per worker, forwarded
}

TEST(Pipeline, WorkerCommSpansExactlyTheWorkers) {
  testing::run_program(testing::tiny_machine(8), [&](Rank& self) {
    auto pipeline =
        Pipeline::over(self, self.world()).with_stride(4).with_worker_comm();
    auto unused = pipeline.raw_stream(8);
    (void)unused;
    pipeline.run(
        [&](Context& ctx) {
          ASSERT_TRUE(ctx.worker_comm().valid());
          EXPECT_EQ(ctx.worker_comm().size(), ctx.worker_count());
          EXPECT_EQ(ctx.self().rank_in(ctx.worker_comm()), ctx.worker_index());
          std::uint64_t one = 1, total = 0;
          ctx.self().allreduce(ctx.worker_comm(), mpi::SendBuf::of(&one, 1),
                               &total, mpi::reduce_sum<std::uint64_t>());
          EXPECT_EQ(total, static_cast<std::uint64_t>(ctx.worker_count()));
        },
        [&](Context& ctx) { EXPECT_FALSE(ctx.worker_comm().valid()); });
  });
}

TEST(Pipeline, EarlyTerminateStaysIdempotentUnderRaii) {
  std::uint64_t consumed = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    auto pipeline = Pipeline::over(self, self.world()).with_helper_ranks({1});
    auto flow = pipeline.raw_stream(32);
    pipeline.run(
        [&](Context& ctx) {
          ctx[flow].send_synthetic(32);
          ctx[flow].terminate();  // explicit, before the RAII pass
        },
        [&](Context& ctx) {
          ctx[flow].on_receive([&](const RawElement&) { ++consumed; });
          consumed += 0 * ctx[flow].operate();
        });
  });
  EXPECT_EQ(consumed, 1u);
}

TEST(Pipeline, DuplicateHelperRanksCollapseToOneHelper) {
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    auto pipeline =
        Pipeline::over(self, self.world()).with_helper_ranks({2, 2, 2});
    auto flow = pipeline.raw_stream(16);
    pipeline.run(
        [&](Context& ctx) {
          EXPECT_EQ(ctx.helper_count(), 1);
          EXPECT_EQ(ctx.worker_count(), 3);
          EXPECT_EQ(ctx.helper_of(ctx.worker_index()), 0);
          ctx[flow].send_synthetic(16);
        },
        [&](Context& ctx) {
          EXPECT_EQ(ctx.helper_index(), 0);
          EXPECT_EQ(ctx[flow].operate(), 3u);
        });
  });
}

TEST(Element, PayloadToRejectsCountsBeyondTheWireSize) {
  const std::array<double, 2> body{1.0, 2.0};
  Element<std::int32_t> el;
  el.payload = reinterpret_cast<const std::byte*>(body.data());
  el.payload_bytes = sizeof(body);
  std::vector<double> out;
  el.payload_to(out, 2);  // exactly the wire size: fine
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  // A record header claiming more items than the element carries must not
  // turn into an overread.
  EXPECT_THROW(el.payload_to(out, 3), std::length_error);
}

TEST(Pipeline, MisuseIsRejected) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    {
      auto pipeline = Pipeline::over(self, self.world());
      EXPECT_THROW(pipeline.run({}, {}), std::logic_error);  // no split
    }
    {
      auto pipeline = Pipeline::over(self, self.world());
      EXPECT_THROW(pipeline.with_helper_ranks({5}), std::invalid_argument);
      EXPECT_THROW(pipeline.with_helper_ranks({0, 1}), std::invalid_argument);
    }
    {
      auto pipeline = Pipeline::over(self, self.world()).with_helper_ranks({1});
      EXPECT_THROW((void)pipeline.with_stride(2), std::logic_error);
      pipeline.run(
          [&](Context& ctx) {
            EXPECT_THROW((void)ctx.worker_comm(), std::logic_error);
          },
          {});
      EXPECT_THROW((void)pipeline.raw_stream(8), std::logic_error);
      EXPECT_THROW(pipeline.run({}, {}), std::logic_error);  // reran
    }
  });
}

TEST(ScopedChannel, FreesOnScopeExitAndMoves) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ScopedChannel outer;
    {
      ScopedChannel ch =
          ScopedChannel::create(self, self.world(), producer, !producer);
      EXPECT_TRUE(ch.valid());
      EXPECT_EQ(ch->producer_count(), 1);
      outer = std::move(ch);
      EXPECT_FALSE(ch.valid());  // NOLINT(bugprone-use-after-move)
    }
    EXPECT_TRUE(outer.valid());
    outer.release();  // collective: both ranks reach this in the same order
    EXPECT_FALSE(outer.valid());
  });
}

TEST(Pipeline, NodePlacementDedicatesTailRanksPerNode) {
  // 8 ranks, 4 per node: the placement split must pick the last rank of
  // each node as its helper, and the streams must still deliver everything.
  auto config = testing::tiny_machine(8);
  config.network.ranks_per_node = 4;
  std::uint64_t consumed = 0;
  testing::run_program(config, [&](Rank& self) {
    auto pipeline =
        Pipeline::over(self, self.world()).with_node_placement(1);
    auto data = pipeline.raw_stream(sizeof(std::int32_t));
    pipeline.run(
        [&](Context& ctx) {
          EXPECT_EQ(ctx.helpers(), (std::vector<int>{3, 7}));
          EXPECT_EQ(ctx.worker_count(), 6);
          auto& s = ctx[data];
          const std::int32_t v = ctx.parent_rank();
          s.send_items(&v, 1);
          s.send_items(&v, 1);
        },
        [&](Context& ctx) {
          EXPECT_TRUE(ctx.parent_rank() == 3 || ctx.parent_rank() == 7);
          auto& s = ctx[data];
          consumed += s.operate();
        });
  });
  EXPECT_EQ(consumed, 12u);  // 6 workers x 2 elements
}

TEST(Pipeline, NodePlacementSkipsSingleRankNodes) {
  // 9 ranks, 4 per node: node 2 hosts only rank 8, which must stay a
  // worker (a lone rank has nobody to co-locate with).
  auto config = testing::tiny_machine(9);
  config.network.ranks_per_node = 4;
  testing::run_program(config, [&](Rank& self) {
    auto pipeline =
        Pipeline::over(self, self.world()).with_node_placement(1);
    auto data = pipeline.raw_stream(8);
    pipeline.run(
        [&](Context& ctx) { EXPECT_EQ(ctx.helpers(), (std::vector<int>{3, 7})); },
        [&](Context& ctx) { (void)ctx[data].operate(); });
  });
}

TEST(Pipeline, NodePlacementRejectsDegenerateShapes) {
  // One rank per node: no node hosts two members, nothing to co-locate.
  auto config = testing::tiny_machine(4);
  config.network.ranks_per_node = 1;
  testing::run_program(config, [&](Rank& self) {
    auto pipeline = Pipeline::over(self, self.world());
    EXPECT_THROW(pipeline.with_node_placement(1), std::invalid_argument);
    EXPECT_THROW(pipeline.with_node_placement(0), std::invalid_argument);
  });
}

}  // namespace
}  // namespace ds::decouple
