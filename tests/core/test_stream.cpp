#include "core/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include <vector>

#include "common/machine_helpers.hpp"

namespace ds::stream {
namespace {

using mpi::Rank;
using mpi::SendBuf;

TEST(Stream, ElementsReachConsumerWithOperatorApplied) {
  std::vector<int> received;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    auto op = [&](const StreamElement& el) {
      int v = 0;
      std::memcpy(&v, el.data, sizeof v);
      received.push_back(v);
    };
    Stream s = Stream::attach(ch, mpi::Datatype::int32(), producer ? Operator{} : op);
    if (producer) {
      for (int i = 0; i < 5; ++i) s.isend(self, SendBuf::of(&i, 1));
      s.terminate(self);
    } else {
      const auto n = s.operate(self);
      EXPECT_EQ(n, 5u);
    }
  });
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Stream, OperateReturnsAfterAllProducersTerminate) {
  int consumed = 0;
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const bool producer = self.world_rank() < 3;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) { ++consumed; });
    if (producer) {
      const int v = self.world_rank();
      s.isend(self, SendBuf::of(&v, 1));
      s.isend(self, SendBuf::of(&v, 1));
      s.terminate(self);
    } else {
      (void)s.operate(self);
      EXPECT_TRUE(s.exhausted());
    }
  });
  EXPECT_EQ(consumed, 6);
}

TEST(Stream, FcfsAbsorbsProducerImbalance) {
  // One producer is heavily delayed; the consumer must process the fast
  // producer's elements first instead of waiting on the slow one.
  std::vector<int> arrival_order;
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    const bool producer = self.world_rank() < 2;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement& el) {
                                arrival_order.push_back(el.producer);
                              });
    if (producer) {
      if (self.world_rank() == 0) self.process().advance(util::milliseconds(20));
      const int v = 1;
      for (int i = 0; i < 3; ++i) s.isend(self, SendBuf::of(&v, 1));
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
  ASSERT_EQ(arrival_order.size(), 6u);
  // The fast producer (index 1) delivers all three elements first.
  EXPECT_EQ(arrival_order[0], 1);
  EXPECT_EQ(arrival_order[1], 1);
  EXPECT_EQ(arrival_order[2], 1);
}

TEST(Stream, SyntheticElementsReportNullData) {
  int seen = 0;
  bool data_was_null = false;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(1024),
                              [&](const StreamElement& el) {
                                ++seen;
                                data_was_null = el.data == nullptr;
                                EXPECT_EQ(el.bytes, 1024u);
                              });
    if (producer) {
      s.isend_synthetic(self);
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
  EXPECT_EQ(seen, 1);
  EXPECT_TRUE(data_was_null);
}

TEST(Stream, OversizedElementRejected) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(8), {});
    if (producer) {
      EXPECT_THROW(s.isend(self, SendBuf::synthetic(9)), std::invalid_argument);
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
}

TEST(Stream, IsendAfterTerminateRejected) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(), {});
    if (producer) {
      s.terminate(self);
      const int v = 0;
      EXPECT_THROW(s.isend(self, SendBuf::of(&v, 1)), std::logic_error);
    } else {
      (void)s.operate(self);
    }
  });
}

TEST(Stream, ConsumerApiOnProducerThrows) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(), {});
    if (producer) {
      EXPECT_THROW((void)s.operate(self), std::logic_error);
      s.terminate(self);
    } else {
      EXPECT_THROW(s.isend(self, SendBuf::synthetic(4)), std::logic_error);
      (void)s.operate(self);
    }
  });
}

TEST(Stream, DirectedRoutingReachesAddressedConsumer) {
  std::vector<int> seen_by(2, 0);
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < 2;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) {
                                ++seen_by[static_cast<std::size_t>(
                                    ch.my_consumer_index(self))];
                              });
    if (producer) {
      const int v = 1;
      s.isend_to(self, 1, SendBuf::of(&v, 1));  // both producers target c1
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
  EXPECT_EQ(seen_by[0], 0);
  EXPECT_EQ(seen_by[1], 2);
}

TEST(Stream, PollOneDrainsWithoutBlocking) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    int seen = 0;
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) { ++seen; });
    if (producer) {
      const int v = 7;
      s.isend(self, SendBuf::of(&v, 1));
      s.terminate(self);
    } else {
      EXPECT_FALSE(s.poll_one(self));  // nothing arrived yet at t=0
      self.process().advance(util::milliseconds(1));
      EXPECT_TRUE(s.poll_one(self));   // element
      EXPECT_EQ(seen, 1);
      (void)s.operate(self);           // just the termination remains
      EXPECT_EQ(seen, 1);
    }
  });
}

TEST(Stream, MultipleStreamsOnOneChannelStaySeparate) {
  int a_count = 0, b_count = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream a = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) { ++a_count; }, 1);
    Stream b = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) { ++b_count; }, 2);
    if (producer) {
      const int v = 0;
      a.isend(self, SendBuf::of(&v, 1));
      a.isend(self, SendBuf::of(&v, 1));
      b.isend(self, SendBuf::of(&v, 1));
      a.terminate(self);
      b.terminate(self);
    } else {
      (void)a.operate(self);
      (void)b.operate(self);
    }
  });
  EXPECT_EQ(a_count, 2);
  EXPECT_EQ(b_count, 1);
}

TEST(Stream, DirectedTerminationAggregatesThroughTree) {
  // Regression for the O(P*C) term broadcast: every producer must send
  // exactly one term (to the aggregator), every consumer at most two (its
  // tree children), P + C - 1 term messages in total.
  constexpr int kProducers = 3;
  constexpr int kConsumers = 8;
  std::uint64_t producer_terms = 0, consumer_terms = 0;
  std::uint64_t max_producer_terms = 0, max_consumer_terms = 0;
  testing::run_program(
      testing::tiny_machine(kProducers + kConsumers), [&](Rank& self) {
        const bool producer = self.world_rank() < kProducers;
        ChannelConfig cfg;
        cfg.mapping = ChannelConfig::Mapping::Directed;
        const Channel ch =
            Channel::create(self, self.world(), producer, !producer, cfg);
        Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                                  [](const StreamElement&) {});
        if (producer) {
          const int v = self.world_rank();
          for (int c = 0; c < kConsumers; ++c)
            s.isend_to(self, c, SendBuf::of(&v, 1));
          s.terminate(self);
          producer_terms += s.term_messages_sent();
          max_producer_terms =
              std::max(max_producer_terms, s.term_messages_sent());
        } else {
          EXPECT_EQ(s.operate(self), 3u);  // one element from each producer
          consumer_terms += s.term_messages_sent();
          max_consumer_terms =
              std::max(max_consumer_terms, s.term_messages_sent());
        }
      });
  EXPECT_EQ(max_producer_terms, 1u);  // the seed sent kConsumers per producer
  EXPECT_LE(max_consumer_terms, 2u);  // binary-tree fan-out
  EXPECT_EQ(producer_terms + consumer_terms,
            static_cast<std::uint64_t>(kProducers + kConsumers - 1));
}

TEST(Stream, TreeTerminationDoesNotOvertakeInFlightData) {
  // A collective term travels aggregator -> tree, a data element travels
  // producer -> consumer directly; a large element can still be on the wire
  // when the (tiny) term lands. The per-consumer counts the term carries
  // must keep the consumer draining until the element arrives.
  int deep_consumer_elements = 0;
  testing::run_program(testing::tiny_machine(5), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(1 << 20),
                              [&](const StreamElement&) {
                                if (ch.my_consumer_index(self) == 3)
                                  ++deep_consumer_elements;
                              });
    if (producer) {
      // Consumer 3 is the deepest tree node (0 -> 1 -> 3); the 1 MB element
      // takes far longer on the wire than the aggregation path.
      s.isend_to(self, 3, SendBuf::synthetic(1 << 20));
      s.terminate(self);
    } else {
      (void)s.operate(self);
      EXPECT_TRUE(s.exhausted());
    }
  });
  EXPECT_EQ(deep_consumer_elements, 1);
}

TEST(Stream, PollOneSkipsTermOnlyMessages) {
  // Regression: poll_one must not report a termination as a processed
  // element (callers would overcount relative to operate_while semantics).
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    int seen = 0;
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) { ++seen; });
    if (producer) {
      s.terminate(self);  // term-only stream: no data at all
    } else {
      self.process().advance(util::milliseconds(1));
      EXPECT_FALSE(s.poll_one(self));  // term consumed, but no element
      EXPECT_TRUE(s.exhausted());
      EXPECT_EQ(seen, 0);
    }
  });
}

TEST(Stream, IsendToRejectsOutOfRangeConsumer) {
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(), {});
    if (producer) {
      const int v = 0;
      EXPECT_THROW(s.isend_to(self, 2, SendBuf::of(&v, 1)), std::out_of_range);
      EXPECT_THROW(s.isend_to(self, -1, SendBuf::of(&v, 1)), std::out_of_range);
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
}

TEST(Stream, MaxInflightThrottlesProducerToConsumerPace) {
  // Credit-based backpressure: with a window of 2 and a consumer that needs
  // 100 us per element, a 20-element producer must stay within ~2 elements
  // of the consumer instead of finishing instantly.
  util::SimTime producer_done = 0;
  std::uint64_t consumed = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.max_inflight = 2;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) {
                                self.compute(util::microseconds(100));
                              });
    if (producer) {
      const int v = 1;
      for (int i = 0; i < 20; ++i) s.isend(self, SendBuf::of(&v, 1));
      producer_done = self.now();
      s.terminate(self);
    } else {
      consumed = s.operate(self);
    }
  });
  EXPECT_EQ(consumed, 20u);
  // 18 of the 20 sends had to wait for a credit, each behind ~100 us of
  // consumer compute.
  EXPECT_GE(producer_done, util::microseconds(1500));
}

TEST(Stream, InjectionChargesOverheadToProducer) {
  util::SimTime producer_done = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.inject_overhead = util::microseconds(10);
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(), {});
    if (producer) {
      const int v = 0;
      for (int i = 0; i < 100; ++i) s.isend(self, SendBuf::of(&v, 1));
      s.terminate(self);
      producer_done = self.now();
    } else {
      (void)s.operate(self);
    }
  });
  EXPECT_GE(producer_done, util::microseconds(1000));  // 100 x 10us
}

}  // namespace
}  // namespace ds::stream
