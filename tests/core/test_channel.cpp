#include "core/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/machine_helpers.hpp"
#include "core/stream.hpp"
#include "mpi/datatype.hpp"

namespace ds::stream {
namespace {

using mpi::Rank;

TEST(Channel, CreatePartitionsProducersAndConsumers) {
  testing::run_program(testing::tiny_machine(6), [&](Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < 4;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    EXPECT_TRUE(ch.valid());
    EXPECT_EQ(ch.producer_count(), 4);
    EXPECT_EQ(ch.consumer_count(), 2);
    if (producer) {
      EXPECT_EQ(ch.my_producer_index(self), me);
      EXPECT_EQ(ch.my_consumer_index(self), -1);
    } else {
      EXPECT_EQ(ch.my_consumer_index(self), me - 4);
      EXPECT_EQ(ch.my_producer_index(self), -1);
    }
  });
}

TEST(Channel, NonMembersGetInertHandle) {
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    // Rank 3 stays out entirely.
    const Channel ch = Channel::create(self, self.world(), me == 0 || me == 1,
                                       me == 2);
    if (me == 3) {
      EXPECT_FALSE(ch.valid());
    } else {
      EXPECT_TRUE(ch.valid());
    }
  });
}

TEST(Channel, ProducerAndConsumerRolesAreExclusive) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    EXPECT_THROW(Channel::create(self, self.world(), true, true),
                 std::invalid_argument);
    // Keep the collective count consistent for both ranks: nothing else.
  });
}

TEST(Channel, BlockMappingIsStableAndBalanced) {
  testing::run_program(testing::tiny_machine(10), [&](Rank& self) {
    const int me = self.world_rank();
    const Channel ch = Channel::create(self, self.world(), me < 8, me >= 8);
    if (!ch.valid()) return;
    // 8 producers over 2 consumers: first half -> 0, second half -> 1.
    EXPECT_EQ(ch.route(0, 0), 0);
    EXPECT_EQ(ch.route(3, 99), 0);
    EXPECT_EQ(ch.route(4, 0), 1);
    EXPECT_EQ(ch.route(7, 5), 1);
    EXPECT_EQ(ch.producers_of(0), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(ch.producers_of(1), (std::vector<int>{4, 5, 6, 7}));
  });
}

TEST(Channel, RoundRobinCyclesConsumers) {
  testing::run_program(testing::tiny_machine(5), [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::RoundRobin;
    const Channel ch =
        Channel::create(self, self.world(), me < 2, me >= 2, cfg);
    // Same producer, consecutive elements -> different consumers.
    EXPECT_NE(ch.route(0, 0), ch.route(0, 1));
    EXPECT_EQ(ch.route(0, 0), ch.route(0, 3));  // 3 consumers -> period 3
    // Every consumer expects every producer.
    EXPECT_EQ(ch.producers_of(1), (std::vector<int>{0, 1}));
  });
}

TEST(Channel, ChannelRanksMapBackToWorldRanks) {
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    // Producers: ranks 1 and 3; consumers: 0 and 2 (tests reordering).
    const Channel ch =
        Channel::create(self, self.world(), me % 2 == 1, me % 2 == 0);
    if (!ch.valid()) return;
    EXPECT_EQ(ch.comm().world_rank(Channel::producer_rank(0)), 1);
    EXPECT_EQ(ch.comm().world_rank(Channel::producer_rank(1)), 3);
    EXPECT_EQ(ch.comm().world_rank(ch.consumer_rank(0)), 0);
    EXPECT_EQ(ch.comm().world_rank(ch.consumer_rank(1)), 2);
  });
}

TEST(Channel, RequiresBothGroupsNonEmpty) {
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    EXPECT_THROW(Channel::create(self, self.world(), true, false),
                 std::invalid_argument);
  });
}

TEST(Channel, BlockRouteIsStableAcrossTheWholeSequence) {
  // Invariant: under Block mapping a producer's consumer never changes with
  // the element sequence number — the property per-producer element order
  // at the consumer relies on.
  testing::run_program(testing::tiny_machine(12), [&](Rank& self) {
    const int me = self.world_rank();
    const Channel ch = Channel::create(self, self.world(), me < 9, me >= 9);
    if (!ch.valid()) return;
    for (int p = 0; p < ch.producer_count(); ++p) {
      const int peer = ch.route(p, 0);
      for (std::uint64_t seq = 1; seq < 257; ++seq)
        ASSERT_EQ(ch.route(p, seq), peer) << "producer " << p << " seq " << seq;
    }
  });
}

TEST(Channel, BlockRouteCoversEveryConsumerExactlyOnceViaProducersOf) {
  // Invariant: producers_of partitions the producer set — every producer
  // routes to exactly one consumer's list, and the lists are disjoint.
  testing::run_program(testing::tiny_machine(11), [&](Rank& self) {
    const int me = self.world_rank();
    const Channel ch = Channel::create(self, self.world(), me < 8, me >= 8);
    if (!ch.valid()) return;
    std::vector<int> owner(static_cast<std::size_t>(ch.producer_count()), -1);
    for (int c = 0; c < ch.consumer_count(); ++c) {
      for (const int p : ch.producers_of(c)) {
        EXPECT_EQ(owner[static_cast<std::size_t>(p)], -1);
        owner[static_cast<std::size_t>(p)] = c;
        EXPECT_EQ(ch.route(p, 0), c);
      }
    }
    for (const int c : owner) EXPECT_GE(c, 0);
  });
}

TEST(Channel, RoundRobinRotationCoversAllConsumersUniformly) {
  // Invariant: under RoundRobin every producer reaches every consumer, and
  // any window of C consecutive elements covers all C consumers exactly once.
  testing::run_program(testing::tiny_machine(7), [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::RoundRobin;
    const Channel ch = Channel::create(self, self.world(), me < 4, me >= 4, cfg);
    if (!ch.valid()) return;
    const int consumers = ch.consumer_count();
    for (int p = 0; p < ch.producer_count(); ++p) {
      for (std::uint64_t start = 0; start < 8; ++start) {
        std::vector<int> hits(static_cast<std::size_t>(consumers), 0);
        for (int k = 0; k < consumers; ++k)
          hits[static_cast<std::size_t>(
              ch.route(p, start + static_cast<std::uint64_t>(k)))]++;
        for (const int h : hits) EXPECT_EQ(h, 1);
      }
    }
  });
}

TEST(Channel, TermTreeMetadataFormsConsistentBinaryTree) {
  // Invariant: the termination tree spans every consumer exactly once, each
  // node's parent/children agree, and the depth stays logarithmic.
  testing::run_program(testing::tiny_machine(12), [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    const Channel ch = Channel::create(self, self.world(), me < 3, me >= 3, cfg);
    if (!ch.valid()) return;
    EXPECT_TRUE(ch.tree_termination());
    const int consumers = ch.consumer_count();
    ASSERT_EQ(consumers, 9);
    EXPECT_EQ(Channel::term_aggregator(), 0);
    EXPECT_EQ(Channel::term_parent(Channel::term_aggregator()), -1);
    std::vector<int> reached(static_cast<std::size_t>(consumers), 0);
    reached[0] = 1;
    for (int c = 0; c < consumers; ++c) {
      const auto children = ch.term_children(c);
      EXPECT_LE(children.size(), 2u);
      for (const int child : children) {
        EXPECT_EQ(Channel::term_parent(child), c);
        ++reached[static_cast<std::size_t>(child)];
      }
    }
    for (const int r : reached) EXPECT_EQ(r, 1);  // spanning, no duplicates
    EXPECT_LE(ch.term_tree_depth(), 4);  // ceil(log2(9 + 1))
    // Terms expected: P at the aggregator, 1 elsewhere.
    EXPECT_EQ(ch.expected_term_count(0), 3);
    for (int c = 1; c < consumers; ++c) EXPECT_EQ(ch.expected_term_count(c), 1);
  });
}

TEST(Channel, BlockMappingKeepsPerPeerTermAccounting) {
  testing::run_program(testing::tiny_machine(10), [&](Rank& self) {
    const int me = self.world_rank();
    const Channel ch = Channel::create(self, self.world(), me < 8, me >= 8);
    if (!ch.valid()) return;
    EXPECT_FALSE(ch.tree_termination());
    // Under Block, a consumer expects one term per routed producer.
    EXPECT_EQ(ch.expected_term_count(0), 4);
    EXPECT_EQ(ch.expected_term_count(1), 4);
  });
}

TEST(Channel, NodeAwareTermTreeKeepsCrossNodeEdgesAtLeaderCount) {
  // 12 ranks, 4 per node; producers 0-2, consumers on world ranks 3-11 so
  // the consumer set spans node 0 (c0), node 1 (c1-c4), node 2 (c5-c8).
  auto config = testing::tiny_machine(12);
  config.network.ranks_per_node = 4;
  testing::run_program(config, [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.node_aware_term = true;
    const Channel ch = Channel::create(self, self.world(), me < 3, me >= 3, cfg);
    if (!ch.valid()) return;
    EXPECT_TRUE(ch.node_aware_term());
    const int consumers = ch.consumer_count();
    ASSERT_EQ(consumers, 9);

    // The aggregator never moves, and both invariants the protocol relies
    // on hold: parent < child everywhere, spanning without duplicates.
    EXPECT_EQ(Channel::term_aggregator(), 0);
    EXPECT_EQ(ch.term_parent_of(0), -1);
    std::vector<int> reached(static_cast<std::size_t>(consumers), 0);
    reached[0] = 1;
    for (int c = 0; c < consumers; ++c) {
      for (const int child : ch.term_children(c)) {
        EXPECT_EQ(ch.term_parent_of(child), c);
        EXPECT_LT(c, child);
        ++reached[static_cast<std::size_t>(child)];
      }
    }
    for (const int r : reached) EXPECT_EQ(r, 1);

    // Node leaders are c0, c1, c5; only their heap edges cross nodes.
    EXPECT_EQ(ch.term_cross_node_edges(), 2);
    EXPECT_EQ(ch.term_parent_of(2), 1);  // non-leaders hang off their leader
    EXPECT_EQ(ch.term_parent_of(8), 5);
    EXPECT_LE(ch.term_tree_depth(), 2);

    // Subtree membership follows the node-aware shape, not the flat heap.
    EXPECT_TRUE(ch.term_in_subtree_of(7, 5));
    EXPECT_FALSE(ch.term_in_subtree_of(7, 1));
    EXPECT_TRUE(ch.term_in_subtree_of(4, 1));

    // Termination accounting is shape-independent.
    EXPECT_EQ(ch.expected_term_count(0), 3);
    for (int c = 1; c < consumers; ++c) EXPECT_EQ(ch.expected_term_count(c), 1);
  });
}

TEST(Channel, NodeAwareTermDefaultsOffAndFlatOnOneNode) {
  testing::run_program(testing::tiny_machine(12), [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    const Channel off = Channel::create(self, self.world(), me < 3, me >= 3, cfg);
    if (off.valid()) {
      EXPECT_FALSE(off.node_aware_term());
      for (int c = 0; c < off.consumer_count(); ++c)
        EXPECT_EQ(off.term_parent_of(c), Channel::term_parent(c));
    }
    // With every consumer on one node (default 32 ranks/node) the aware
    // tree has no fabric edges at all.
    cfg.node_aware_term = true;
    cfg.channel_id = 7;
    const Channel on = Channel::create(self, self.world(), me < 3, me >= 3, cfg);
    if (on.valid()) {
      EXPECT_TRUE(on.node_aware_term());
      EXPECT_EQ(on.term_cross_node_edges(), 0);
    }
  });
}

TEST(Channel, NodeAwareTermDeliversDirectedStreamExactly) {
  // End to end through the protocol: the reshaped tree must not change what
  // arrives — every element once, one term per producer.
  constexpr int kProducers = 3, kConsumers = 9, kEach = 5;
  auto config = testing::tiny_machine(kProducers + kConsumers);
  config.network.ranks_per_node = 4;
  std::uint64_t consumed = 0;
  std::uint64_t producer_terms = 0;
  testing::run_program(config, [&](Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < kProducers;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.node_aware_term = true;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(64), {});
    if (producer) {
      for (int i = 0; i < kEach; ++i)
        s.isend_to(self, (me + i) % kConsumers, mpi::SendBuf::synthetic(64));
      s.terminate(self);
      producer_terms += s.term_messages_sent();
    } else {
      consumed += s.operate(self);
    }
  });
  EXPECT_EQ(consumed, static_cast<std::uint64_t>(kProducers) * kEach);
  EXPECT_EQ(producer_terms, static_cast<std::uint64_t>(kProducers));
}

TEST(Channel, DistinctChannelIdsGetDistinctContexts) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig c1;
    c1.channel_id = 1;
    ChannelConfig c2;
    c2.channel_id = 2;
    const Channel a = Channel::create(self, self.world(), me == 0, me == 1, c1);
    const Channel b = Channel::create(self, self.world(), me == 0, me == 1, c2);
    EXPECT_NE(a.comm().context(), b.comm().context());
  });
}

}  // namespace
}  // namespace ds::stream
