#include "core/channel.hpp"

#include <gtest/gtest.h>

#include "common/machine_helpers.hpp"

namespace ds::stream {
namespace {

using mpi::Rank;

TEST(Channel, CreatePartitionsProducersAndConsumers) {
  testing::run_program(testing::tiny_machine(6), [&](Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < 4;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    EXPECT_TRUE(ch.valid());
    EXPECT_EQ(ch.producer_count(), 4);
    EXPECT_EQ(ch.consumer_count(), 2);
    if (producer) {
      EXPECT_EQ(ch.my_producer_index(self), me);
      EXPECT_EQ(ch.my_consumer_index(self), -1);
    } else {
      EXPECT_EQ(ch.my_consumer_index(self), me - 4);
      EXPECT_EQ(ch.my_producer_index(self), -1);
    }
  });
}

TEST(Channel, NonMembersGetInertHandle) {
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    // Rank 3 stays out entirely.
    const Channel ch = Channel::create(self, self.world(), me == 0 || me == 1,
                                       me == 2);
    if (me == 3) {
      EXPECT_FALSE(ch.valid());
    } else {
      EXPECT_TRUE(ch.valid());
    }
  });
}

TEST(Channel, ProducerAndConsumerRolesAreExclusive) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    EXPECT_THROW(Channel::create(self, self.world(), true, true),
                 std::invalid_argument);
    // Keep the collective count consistent for both ranks: nothing else.
  });
}

TEST(Channel, BlockMappingIsStableAndBalanced) {
  testing::run_program(testing::tiny_machine(10), [&](Rank& self) {
    const int me = self.world_rank();
    const Channel ch = Channel::create(self, self.world(), me < 8, me >= 8);
    if (!ch.valid()) return;
    // 8 producers over 2 consumers: first half -> 0, second half -> 1.
    EXPECT_EQ(ch.route(0, 0), 0);
    EXPECT_EQ(ch.route(3, 99), 0);
    EXPECT_EQ(ch.route(4, 0), 1);
    EXPECT_EQ(ch.route(7, 5), 1);
    EXPECT_EQ(ch.producers_of(0), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(ch.producers_of(1), (std::vector<int>{4, 5, 6, 7}));
  });
}

TEST(Channel, RoundRobinCyclesConsumers) {
  testing::run_program(testing::tiny_machine(5), [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::RoundRobin;
    const Channel ch =
        Channel::create(self, self.world(), me < 2, me >= 2, cfg);
    // Same producer, consecutive elements -> different consumers.
    EXPECT_NE(ch.route(0, 0), ch.route(0, 1));
    EXPECT_EQ(ch.route(0, 0), ch.route(0, 3));  // 3 consumers -> period 3
    // Every consumer expects every producer.
    EXPECT_EQ(ch.producers_of(1), (std::vector<int>{0, 1}));
  });
}

TEST(Channel, ChannelRanksMapBackToWorldRanks) {
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    const int me = self.world_rank();
    // Producers: ranks 1 and 3; consumers: 0 and 2 (tests reordering).
    const Channel ch =
        Channel::create(self, self.world(), me % 2 == 1, me % 2 == 0);
    if (!ch.valid()) return;
    EXPECT_EQ(ch.comm().world_rank(Channel::producer_rank(0)), 1);
    EXPECT_EQ(ch.comm().world_rank(Channel::producer_rank(1)), 3);
    EXPECT_EQ(ch.comm().world_rank(ch.consumer_rank(0)), 0);
    EXPECT_EQ(ch.comm().world_rank(ch.consumer_rank(1)), 2);
  });
}

TEST(Channel, RequiresBothGroupsNonEmpty) {
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    EXPECT_THROW(Channel::create(self, self.world(), true, false),
                 std::invalid_argument);
  });
}

TEST(Channel, DistinctChannelIdsGetDistinctContexts) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const int me = self.world_rank();
    ChannelConfig c1;
    c1.channel_id = 1;
    ChannelConfig c2;
    c2.channel_id = 2;
    const Channel a = Channel::create(self, self.world(), me == 0, me == 1, c1);
    const Channel b = Channel::create(self, self.world(), me == 0, me == 1, c2);
    EXPECT_NE(a.comm().context(), b.comm().context());
  });
}

}  // namespace
}  // namespace ds::stream
