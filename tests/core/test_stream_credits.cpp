// Credit batching (ChannelConfig::ack_interval) under flow control.
//
// The consumer returns credits every k-th consumed element per producer as
// one batched ack message, flushing the remainder on terms and exhaustion.
// These tests pin the liveness contract (the window never stalls mid-stream
// or at the stream end, for any k, including k > window), the message-count
// reduction the batching exists for, and that max_inflight still bounds
// in-flight elements exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/machine_helpers.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"

namespace ds::stream {
namespace {

using mpi::Rank;
using mpi::RecvBuf;
using mpi::SendBuf;

struct CreditRun {
  std::uint64_t consumed = 0;
  std::uint64_t ack_messages = 0;
  std::uint64_t credits_received = 0;
};

/// One producer, one consumer, Block mapping: send `elements`, terminate,
/// consumer operates to exhaustion.
CreditRun run_block(std::uint32_t window, std::uint32_t ack_interval,
                    int elements) {
  CreditRun run;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.max_inflight = window;
    cfg.ack_interval = ack_interval;
    // These tests pin exact ack-message counts for a given (window, k);
    // self-tuning would retune k toward the coalesced frame occupancy, so
    // it is disabled here (the autotuned interaction is covered in
    // test_stream_coalesce).
    cfg.flow_autotune = false;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(), {});
    if (producer) {
      const int v = 1;
      for (int i = 0; i < elements; ++i) s.isend(self, SendBuf::of(&v, 1));
      s.terminate(self);
      run.credits_received = s.credits_received();
    } else {
      run.consumed = s.operate(self);
      run.ack_messages = s.ack_messages_sent();
    }
  });
  return run;
}

TEST(StreamCredits, WindowNeverStallsAtStreamEnd) {
  // Element count not divisible by the batch, tail smaller than a batch:
  // completion itself proves no stall, for a spread of (window, k) shapes.
  for (const auto& [window, interval] : std::vector<std::pair<std::uint32_t,
                                                              std::uint32_t>>{
           {4u, 4u}, {2u, 2u}, {8u, 3u}, {1u, 1u}, {16u, 16u}}) {
    const CreditRun run = run_block(window, interval, 37);
    EXPECT_EQ(run.consumed, 37u) << "window=" << window << " k=" << interval;
    // Credit accounting: the producer drains acks only while its window is
    // full, so it has consumed at least elements - window credits by the
    // last send, and batching must neither forge nor lose any.
    EXPECT_GE(run.credits_received + window, 37u);
    EXPECT_LE(run.credits_received, 37u);
  }
}

TEST(StreamCredits, AckIntervalLargerThanWindowIsClamped) {
  // k > window would deadlock (the consumer would hold a full window of
  // credits without flushing); the effective interval clamps to the window.
  const CreditRun run = run_block(/*window=*/2, /*ack_interval=*/100, 25);
  EXPECT_EQ(run.consumed, 25u);
}

TEST(StreamCredits, BatchingCutsAckMessageCount) {
  const int elements = 64;
  const CreditRun per_element = run_block(16, 1, elements);
  const CreditRun batched4 = run_block(16, 4, elements);
  const CreditRun batched16 = run_block(16, 16, elements);
  EXPECT_EQ(per_element.ack_messages, 64u);
  EXPECT_EQ(batched4.ack_messages, 16u);
  EXPECT_EQ(batched16.ack_messages, 4u);
  // Same credits flow back regardless of batching (none lost, none forged).
  EXPECT_EQ(per_element.consumed, 64u);
  EXPECT_EQ(batched4.consumed, 64u);
  EXPECT_EQ(batched16.consumed, 64u);
}

TEST(StreamCredits, RemainderFlushesOnTermination) {
  // 10 elements, window 8, k 8: one full batch at 8, then the term must
  // flush the remaining 2 — visible as a second ack message.
  const CreditRun run = run_block(/*window=*/8, /*ack_interval=*/8, 10);
  EXPECT_EQ(run.consumed, 10u);
  EXPECT_EQ(run.ack_messages, 2u);
}

TEST(StreamCredits, DefaultIntervalBatchesByFour) {
  const CreditRun run = run_block(/*window=*/16, /*ack_interval=*/0, 64);
  EXPECT_EQ(run.consumed, 64u);
  EXPECT_EQ(run.ack_messages, 16u);  // kDefaultAckInterval == 4
}

TEST(StreamCredits, MaxInflightStillBoundsInflightExactly) {
  // Window 2, batch 2: the producer may run at most max_inflight elements
  // ahead of consumption. The first credit batch (elements 1-2) flushes,
  // then the consumer stalls inside element 3's operator — element 3's
  // credit is pending, un-flushed. Sends 3-4 ride the flushed batch; send 5
  // must block until the consumer resumes and completes the second batch.
  const util::SimTime stall = util::milliseconds(5);
  std::vector<util::SimTime> send_done(6, 0);
  util::SimTime stall_end = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.max_inflight = 2;
    cfg.ack_interval = 2;
    std::uint64_t consumed = 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) {
                                if (++consumed == 3) {
                                  self.process().advance(stall);
                                  stall_end = self.now();
                                }
                              });
    if (producer) {
      const int v = 1;
      for (int i = 0; i < 6; ++i) {
        s.isend(self, SendBuf::of(&v, 1));
        send_done[static_cast<std::size_t>(i)] = self.now();
      }
      s.terminate(self);
    } else {
      EXPECT_EQ(s.operate(self), 6u);
    }
  });
  // Send 4 completed on the first credit batch, before the stall ended;
  // send 5 needed the second batch, which the stalled consumer held back.
  EXPECT_LT(send_done[3], stall_end);
  EXPECT_GE(send_done[4], stall_end);
}

TEST(StreamCredits, DirectedMappingDrainsUnderBatchedCredits) {
  // Tree termination + flow control + batching: two producers spray two
  // consumers with directed elements; exhaustion (announced counts) must be
  // reached with no credit stall, and the credits all return.
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kEach = 21;  // odd: exercises partial tail batches
  std::uint64_t consumed = 0;
  std::uint64_t credits = 0;
  testing::run_program(testing::tiny_machine(kProducers + kConsumers),
                       [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.max_inflight = 3;
    cfg.ack_interval = 3;
    cfg.flow_autotune = false;  // pin the window: the bound below is exact
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(), {});
    if (producer) {
      const int v = 2;
      for (int i = 0; i < kEach; ++i)
        s.isend_to(self, (self.world_rank() + i) % kConsumers, SendBuf::of(&v, 1));
      s.terminate(self);
      credits += s.credits_received();
    } else {
      consumed += s.operate(self);
    }
  });
  EXPECT_EQ(consumed, static_cast<std::uint64_t>(kProducers * kEach));
  // Each producer consumed at least kEach - window credits (it drains acks
  // only while blocked) and never more than it sent.
  EXPECT_GE(credits + kProducers * 3u, static_cast<std::uint64_t>(kProducers * kEach));
  EXPECT_LE(credits, static_cast<std::uint64_t>(kProducers * kEach));
}

TEST(StreamCredits, ThrottledProducerStillPacedWithBatching) {
  // The original pacing property of max_inflight holds under the default
  // batched acks: a window of 2 against a 100 us/element consumer keeps the
  // producer at consumer pace.
  util::SimTime producer_done = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.max_inflight = 2;  // default ack_interval, clamped to the window
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) {
                                self.compute(util::microseconds(100));
                              });
    if (producer) {
      const int v = 1;
      for (int i = 0; i < 20; ++i) s.isend(self, SendBuf::of(&v, 1));
      producer_done = self.now();
      s.terminate(self);
    } else {
      EXPECT_EQ(s.operate(self), 20u);
    }
  });
  EXPECT_GE(producer_done, util::microseconds(1500));
}

}  // namespace
}  // namespace ds::stream
