// Property sweeps over producer/consumer splits: no element lost, no
// element duplicated, termination always reached, for many channel shapes.
#include <gtest/gtest.h>

#include <cstring>

#include <map>
#include <tuple>
#include <vector>

#include "common/machine_helpers.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"

namespace ds::stream {
namespace {

using mpi::Rank;
using mpi::SendBuf;

struct Shape {
  int producers;
  int consumers;
  int elements_per_producer;
  ChannelConfig::Mapping mapping;
};

class StreamShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(StreamShapeSweep, EveryElementArrivesExactlyOnce) {
  const Shape shape = GetParam();
  const int world = shape.producers + shape.consumers;
  std::map<int, int> seen;  // element id -> times seen
  std::uint64_t total_consumed = 0;

  testing::run_program(testing::tiny_machine(world), [&](Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < shape.producers;
    ChannelConfig cfg;
    cfg.mapping = shape.mapping;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    auto op = [&](const StreamElement& el) {
      int id = -1;
      std::memcpy(&id, el.data, sizeof id);
      ++seen[id];
    };
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              producer ? Operator{} : Operator{op});
    if (producer) {
      for (int i = 0; i < shape.elements_per_producer; ++i) {
        const int id = me * 10000 + i;
        if (shape.mapping == ChannelConfig::Mapping::Directed) {
          s.isend_to(self, (me + i) % shape.consumers, SendBuf::of(&id, 1));
        } else {
          s.isend(self, SendBuf::of(&id, 1));
        }
      }
      s.terminate(self);
    } else {
      total_consumed += s.operate(self);
    }
  });

  EXPECT_EQ(total_consumed,
            static_cast<std::uint64_t>(shape.producers) *
                static_cast<std::uint64_t>(shape.elements_per_producer));
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "element " << id;
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(shape.producers) *
                             static_cast<std::size_t>(shape.elements_per_producer));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StreamShapeSweep,
    ::testing::Values(Shape{1, 1, 20, ChannelConfig::Mapping::Block},
                      Shape{4, 1, 10, ChannelConfig::Mapping::Block},
                      Shape{7, 3, 11, ChannelConfig::Mapping::Block},
                      Shape{15, 1, 6, ChannelConfig::Mapping::Block},
                      Shape{3, 3, 9, ChannelConfig::Mapping::RoundRobin},
                      Shape{8, 2, 12, ChannelConfig::Mapping::RoundRobin},
                      Shape{2, 9, 6, ChannelConfig::Mapping::RoundRobin},
                      Shape{5, 4, 7, ChannelConfig::Mapping::Directed},
                      Shape{2, 2, 25, ChannelConfig::Mapping::Directed},
                      // Wide consumer fan-outs stress the termination tree:
                      // multi-level fan-out, counts racing in-flight data.
                      Shape{1, 16, 32, ChannelConfig::Mapping::Directed},
                      Shape{4, 13, 9, ChannelConfig::Mapping::Directed}));

class StreamSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamSeedSweep, ImbalancedProducersStillDeliverEverything) {
  // Producers sleep random amounts (per-rank RNG); the consumer must still
  // see every element exactly once, whatever the arrival interleaving.
  constexpr int kProducers = 6;
  std::uint64_t consumed = 0;
  mpi::MachineConfig cfg = testing::tiny_machine(kProducers + 1);
  cfg.engine.seed = GetParam();
  cfg.engine.noise = sim::NoiseConfig{0.3, 100.0, util::microseconds(200)};
  testing::run_program(cfg, [&](Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < kProducers;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) {});
    if (producer) {
      const int v = me;
      for (int i = 0; i < 8; ++i) {
        self.compute(util::microseconds(50 + 100 * (me % 3)));
        s.isend(self, SendBuf::of(&v, 1));
      }
      s.terminate(self);
    } else {
      consumed = s.operate(self);
    }
  });
  EXPECT_EQ(consumed, static_cast<std::uint64_t>(kProducers) * 8u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace ds::stream
