// Transport-level element coalescing (ChannelConfig::coalesce_budget).
//
// These tests pin the semantic contract of the coalesced transport: packed
// frames must be invisible to stream consumers — per-(context,src) FIFO
// order under wildcard receives, count-based termination exhaustion with
// partial final frames, credit liveness, synthetic elements, oversized
// bypass — plus the liveness backstop (elements are never delayed past the
// instant the producing fiber yields) and the self-tuning loop
// (FlowController: budget growth under bursty load, ack batches tracking
// frame occupancy, AdaptiveBatcher composition).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/machine_helpers.hpp"
#include "core/adaptive.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"

namespace ds::stream {
namespace {

using mpi::Rank;
using mpi::SendBuf;

TEST(StreamCoalesce, PartialFrameFlushesOnTerminate) {
  // Three small elements fit one frame with room to spare; terminate must
  // flush the partial frame before the term so nothing is stranded.
  std::uint64_t consumed = 0, frames = 0, coalesced = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) {});
    if (producer) {
      for (int i = 0; i < 3; ++i) s.isend(self, SendBuf::of(&i, 1));
      s.terminate(self);
      frames = s.frames_sent();
      coalesced = s.coalesced_elements_sent();
    } else {
      consumed = s.operate(self);
    }
  });
  EXPECT_EQ(consumed, 3u);
  EXPECT_EQ(frames, 1u);  // one frame carried all three elements
  EXPECT_EQ(coalesced, 3u);
}

TEST(StreamCoalesce, WildcardRecvSeesFramesInPerSourceFifoOrder) {
  // Two producers, one consumer, 64-byte elements: several frames per
  // producer. The wildcard operate() must observe every producer's elements
  // in send order (frames preserve per-(context,src) FIFO; interleaving
  // across sources happens at frame granularity, which FCFS permits).
  constexpr int kEach = 100;
  std::vector<int> last_seq(2, -1);
  std::uint64_t consumed = 0, min_frames = ~0ull;
  bool order_ok = true;
  testing::run_program(testing::tiny_machine(3), [&](Rank& self) {
    const bool producer = self.world_rank() < 2;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    struct Payload {
      int seq = 0;
      std::byte fill[60] = {};
    };
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(sizeof(Payload)),
                              [&](const StreamElement& el) {
                                Payload p;
                                std::memcpy(&p, el.data, sizeof p);
                                auto& last =
                                    last_seq[static_cast<std::size_t>(el.producer)];
                                if (p.seq != last + 1) order_ok = false;
                                last = p.seq;
                              });
    if (producer) {
      for (int i = 0; i < kEach; ++i) {
        Payload p;
        p.seq = i;
        s.isend(self, SendBuf::of(&p, 1));
      }
      s.terminate(self);
      min_frames = std::min(min_frames, s.frames_sent());
    } else {
      consumed = s.operate(self);
    }
  });
  EXPECT_EQ(consumed, 2u * kEach);
  EXPECT_TRUE(order_ok);
  EXPECT_EQ(last_seq[0], kEach - 1);
  EXPECT_EQ(last_seq[1], kEach - 1);
  EXPECT_GE(min_frames, 2u);  // the order survived actual multi-frame packing
}

TEST(StreamCoalesce, BackstopFlushesTheInstantTheProducerYields) {
  // Request/response over two streams, one element per round, far below any
  // budget: the only thing that can flush the frame is the same-instant
  // backstop when the producer blocks waiting for the reply. Completion of
  // every round proves elements are never delayed by coalescing.
  constexpr int kRounds = 5;
  int replies_seen = 0, requests_seen = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool requester = self.world_rank() == 0;
    const Channel fwd =
        Channel::create(self, self.world(), requester, !requester);
    ChannelConfig back_cfg;
    back_cfg.channel_id = 1;
    const Channel back =
        Channel::create(self, self.world(), !requester, requester, back_cfg);
    int got = 0;
    int replies_sent = 0;
    Stream req = Stream::attach(fwd, mpi::Datatype::int32(),
                                [&](const StreamElement&) { ++requests_seen; });
    Stream rsp = Stream::attach(back, mpi::Datatype::int32(),
                                [&](const StreamElement&) {
                                  ++got;
                                  ++replies_seen;
                                });
    if (requester) {
      for (int r = 0; r < kRounds; ++r) {
        req.isend(self, SendBuf::of(&r, 1));
        rsp.operate_while(self, [&] { return got <= r; });
      }
      req.terminate(self);
      (void)rsp.operate(self);  // drain the responder's termination
    } else {
      req.operate_while(self, [&] {
        if (requests_seen > replies_sent) {
          const int v = replies_sent++;
          rsp.isend(self, SendBuf::of(&v, 1));
        }
        return true;
      });
      // operate_while returns once the requester terminated; answer any
      // tail request and close the reply stream.
      while (requests_seen > replies_sent) {
        const int v = replies_sent++;
        rsp.isend(self, SendBuf::of(&v, 1));
      }
      rsp.terminate(self);
    }
  });
  EXPECT_EQ(requests_seen, kRounds);
  EXPECT_EQ(replies_seen, kRounds);
}

TEST(StreamCoalesce, CreditWindowSmallerThanFrameStaysLive) {
  // Window far below one frame's worth: the producer must flush its partial
  // frame before blocking on a credit, or the consumer never sees the
  // elements and the run deadlocks. Completion is the assertion.
  std::uint64_t consumed = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.max_inflight = 4;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [](const StreamElement&) {});
    if (producer) {
      const int v = 1;
      for (int i = 0; i < 37; ++i) s.isend(self, SendBuf::of(&v, 1));
      s.terminate(self);
      // Exact window accounting survives coalescing: credits neither forged
      // nor lost.
      EXPECT_LE(s.credits_received(), 37u);
      EXPECT_GE(s.credits_received() + cfg.max_inflight, 37u);
    } else {
      consumed = s.operate(self);
    }
  });
  EXPECT_EQ(consumed, 37u);
}

TEST(StreamCoalesce, CountBasedExhaustionWithPartialFinalFrames) {
  // Directed mapping + tree termination: odd element counts leave partial
  // final frames toward both consumers; the announced per-consumer counts
  // must drain them completely before exhaustion.
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kEach = 21;
  std::uint64_t consumed = 0;
  int exhausted_consumers = 0;
  testing::run_program(testing::tiny_machine(kProducers + kConsumers),
                       [&](Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    ChannelConfig cfg;
    cfg.mapping = ChannelConfig::Mapping::Directed;
    cfg.max_inflight = 8;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [](const StreamElement&) {});
    if (producer) {
      const int v = 2;
      for (int i = 0; i < kEach; ++i)
        s.isend_to(self, (self.world_rank() + i) % kConsumers, SendBuf::of(&v, 1));
      s.terminate(self);
    } else {
      consumed += s.operate(self);
      if (s.exhausted()) ++exhausted_consumers;
    }
  });
  EXPECT_EQ(consumed, static_cast<std::uint64_t>(kProducers * kEach));
  EXPECT_EQ(exhausted_consumers, kConsumers);
}

TEST(StreamCoalesce, SyntheticElementsSurvivePacking) {
  // Synthetic elements (modeled payloads) coalesce as zero-data sub-records
  // and must still report null data with the full wire size.
  constexpr int kElements = 7;
  int seen = 0;
  bool all_synthetic = true, sizes_ok = true;
  std::uint64_t frames = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(256),
                              [&](const StreamElement& el) {
                                ++seen;
                                all_synthetic &= el.data == nullptr;
                                sizes_ok &= el.bytes == 256;
                              });
    if (producer) {
      for (int i = 0; i < kElements; ++i) s.isend_synthetic(self);
      s.terminate(self);
      frames = s.frames_sent();
    } else {
      (void)s.operate(self);
    }
  });
  EXPECT_EQ(seen, kElements);
  EXPECT_TRUE(all_synthetic);
  EXPECT_TRUE(sizes_ok);
  EXPECT_GE(frames, 1u);
}

TEST(StreamCoalesce, OversizedElementsBypassAndKeepOrder) {
  // Elements larger than the frame budget travel per-element; a pending
  // frame toward the same consumer must flush first so arrival order stays
  // the send order.
  struct Big {
    int seq = 0;
    std::byte fill[3000] = {};  // exceeds the default 2 KiB budget
  };
  std::vector<int> order;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(sizeof(Big)),
                              [&](const StreamElement& el) {
                                int seq = 0;
                                std::memcpy(&seq, el.data, sizeof seq);
                                order.push_back(seq);
                              });
    if (producer) {
      for (int i = 0; i < 6; ++i) {
        if (i % 3 == 2) {
          Big big;
          big.seq = i;
          s.isend(self, SendBuf::of(&big, 1));
        } else {
          int small[2] = {i, 0};  // small element, coalesces
          s.isend(self, SendBuf::of(small, 2));
        }
      }
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(StreamCoalesce, SelfTuningGrowsBudgetUnderBurstyLoad) {
  // An unthrottled burst keeps filling frames: the FlowController must grow
  // the budget toward its cap, and most elements must leave coalesced.
  std::uint32_t budget_end = 0;
  std::uint64_t frames = 0, coalesced = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(64),
                              [](const StreamElement&) {});
    if (producer) {
      for (int i = 0; i < 3000; ++i) s.isend_synthetic(self);
      s.terminate(self);
      budget_end = s.coalesce_budget_now();
      frames = s.frames_sent();
      coalesced = s.coalesced_elements_sent();
    } else {
      (void)s.operate(self);
    }
  });
  EXPECT_GT(budget_end, ChannelConfig::kDefaultCoalesceBudget);
  EXPECT_LE(budget_end, ChannelConfig::kDefaultCoalesceBudget *
                            ChannelConfig::kCoalesceGrowthCap);
  EXPECT_EQ(coalesced, 3000u);
  // Growth shows up as amortization: far fewer frames than a fixed default
  // budget (~28 elements/frame) would need.
  EXPECT_LT(frames, 3000u / 28u);
}

TEST(StreamCoalesce, SelfTuningAcksTrackFrameOccupancy) {
  // With flow control on and ack_interval left at the default, the consumer
  // retunes its credit batch to the frame occupancy: ack messages land near
  // one per frame, far below the per-4-elements default.
  constexpr int kElements = 2000;
  std::uint64_t acks = 0;
  std::uint32_t ack_now = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.max_inflight = 64;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(64),
                              [](const StreamElement&) {});
    if (producer) {
      std::byte payload[64] = {};
      for (int i = 0; i < kElements; ++i)
        s.isend(self, SendBuf{payload, sizeof payload});
      s.terminate(self);
    } else {
      EXPECT_EQ(s.operate(self), static_cast<std::uint64_t>(kElements));
      acks = s.ack_messages_sent();
      ack_now = s.ack_interval_now();
    }
  });
  EXPECT_LT(acks, kElements / 8u);   // default per-4 acking would be 500
  EXPECT_GT(ack_now, ChannelConfig::kDefaultAckInterval);
}

TEST(StreamCoalesce, AdaptiveBatcherShrinkPathFlushesThroughCoalescing) {
  // The AdaptiveBatcher's shrink path produces a falling sequence of
  // variable-size elements; the coalescer packs them as variable-length
  // sub-records, and every record must still arrive exactly once.
  constexpr int kRecords = 1200;
  std::uint64_t records_consumed = 0, elements_consumed = 0;
  std::uint32_t final_batch = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    AdaptiveConfig cfg;
    cfg.min_records = 1;
    cfg.initial_records = 32;
    cfg.window = 2;
    cfg.max_flush_interval = util::microseconds(10);
    const mpi::Datatype element =
        mpi::Datatype::bytes(AdaptiveBatcher::element_bytes(16, cfg.max_records));
    Stream s = Stream::attach(ch, element, [&](const StreamElement& el) {
      ++elements_consumed;
      records_consumed += adaptive_record_count(el);
    });
    if (producer) {
      AdaptiveBatcher batcher(s, 16, cfg);
      for (int i = 0; i < kRecords; ++i) {
        self.compute(util::microseconds(30));  // coarse flow -> shrink
        batcher.push(self);
      }
      batcher.finish(self);
      final_batch = batcher.current_batch();
    } else {
      (void)s.operate(self);
    }
  });
  EXPECT_EQ(records_consumed, static_cast<std::uint64_t>(kRecords));
  EXPECT_GT(elements_consumed, 0u);
  EXPECT_LT(final_batch, 32u);  // the shrink path actually ran
}

TEST(StreamCoalesce, ExplicitFlushShipsAPartialFrame) {
  // Stream::flush pushes a partial frame without terminating; the consumer
  // can poll it before any termination exists.
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    int seen = 0;
    Stream s = Stream::attach(ch, mpi::Datatype::int32(),
                              [&](const StreamElement&) { ++seen; });
    if (producer) {
      const int v = 9;
      s.isend(self, SendBuf::of(&v, 1));
      s.flush(self);
      self.process().advance(util::milliseconds(2));
      s.terminate(self);
    } else {
      self.process().advance(util::milliseconds(1));
      EXPECT_TRUE(s.poll_one(self));  // arrived well before the term
      EXPECT_EQ(seen, 1);
      (void)s.operate(self);
    }
  });
}

TEST(StreamCoalesce, OversizedAsFinalElementBeforeTerminate) {
  // Gap left by the PR 4 sweep: an oversized bypass element as the very
  // last send leaves a partial frame pending toward the same consumer. The
  // ordering-preserving flush, the bypass message, and the term must arrive
  // in exactly that order — nothing stranded, nothing overtaken.
  struct Big {
    int seq = 0;
    std::byte fill[3000] = {};  // exceeds the default 2 KiB budget
  };
  std::vector<int> order;
  std::uint64_t consumed = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.flow_autotune = false;  // keep the 2 KiB budget pinned
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(sizeof(Big)),
                              [&](const StreamElement& el) {
                                int seq = 0;
                                std::memcpy(&seq, el.data, sizeof seq);
                                order.push_back(seq);
                              });
    if (producer) {
      for (int i = 0; i < 4; ++i) {
        int small[2] = {i, 0};
        s.isend(self, SendBuf::of(small, 2));
      }
      Big big;
      big.seq = 4;
      s.isend(self, SendBuf::of(&big, 1));  // bypass right before the term
      s.terminate(self);
    } else {
      consumed = s.operate(self);
    }
  });
  EXPECT_EQ(consumed, 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(StreamCoalesce, OversizedInterleavedWithPartialFinalFramesUnderTreeTermination) {
  // Directed (tree-terminated) spray where every consumer's tail mixes a
  // partial final frame with an oversized bypass element: count-based
  // exhaustion must account bypass elements and packed elements alike, on
  // every consumer, or operate() would hang or exit early.
  struct Big {
    int seq = 0;
    std::byte fill[2500] = {};
  };
  constexpr int kProducers = 2, kConsumers = 3, kEach = 31;
  std::vector<std::uint64_t> per_consumer(kConsumers, 0);
  std::vector<bool> exhausted(kConsumers, false);
  testing::run_program(
      testing::tiny_machine(kProducers + kConsumers), [&](Rank& self) {
        const bool producer = self.world_rank() < kProducers;
        ChannelConfig cfg;
        cfg.mapping = ChannelConfig::Mapping::Directed;
        cfg.flow_autotune = false;
        const Channel ch =
            Channel::create(self, self.world(), producer, !producer, cfg);
        const int me = ch.my_consumer_index(self);
        Stream s = Stream::attach(ch, mpi::Datatype::bytes(sizeof(Big)),
                                  [&](const StreamElement&) {});
        if (producer) {
          for (int i = 0; i < kEach; ++i) {
            const int to = (self.world_rank() + i) % kConsumers;
            if (i % 5 == 4) {
              Big big;
              big.seq = i;
              s.isend_to(self, to, SendBuf::of(&big, 1));  // bypass
            } else {
              int small[2] = {i, 0};
              s.isend_to(self, to, SendBuf::of(small, 2));  // coalesces
            }
          }
          s.terminate(self);  // partial final frames + announced counts
        } else {
          per_consumer[static_cast<std::size_t>(me)] = s.operate(self);
          exhausted[static_cast<std::size_t>(me)] = s.exhausted();
        }
      });
  std::uint64_t total = 0;
  for (int c = 0; c < kConsumers; ++c) {
    EXPECT_TRUE(exhausted[static_cast<std::size_t>(c)]) << "consumer " << c;
    total += per_consumer[static_cast<std::size_t>(c)];
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kProducers) *
                       static_cast<std::uint64_t>(kEach));
}

TEST(StreamCoalesce, AlternatingOversizedAndSmallWithCreditWindow) {
  // Oversized bypass interleaved with packed elements under flow control:
  // per-element credit accounting must stay exact across both paths (a
  // bypass element acks like any other), so the producer's window never
  // wedges and the tail drains.
  struct Big {
    int seq = 0;
    std::byte fill[2500] = {};
  };
  std::uint64_t consumed = 0, credits = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    ChannelConfig cfg;
    cfg.max_inflight = 3;
    cfg.ack_interval = 2;
    cfg.flow_autotune = false;
    const Channel ch = Channel::create(self, self.world(), producer, !producer, cfg);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(sizeof(Big)), {});
    if (producer) {
      for (int i = 0; i < 20; ++i) {
        if (i % 2 == 0) {
          Big big;
          big.seq = i;
          s.isend(self, SendBuf::of(&big, 1));
        } else {
          int small[2] = {i, 0};
          s.isend(self, SendBuf::of(small, 2));
        }
      }
      s.terminate(self);
      credits = s.credits_received();
    } else {
      consumed = s.operate(self);
    }
  });
  EXPECT_EQ(consumed, 20u);
  EXPECT_LE(credits, 20u);
  EXPECT_GE(credits + 3u, 20u);  // everything beyond a window came back
}

}  // namespace
}  // namespace ds::stream
