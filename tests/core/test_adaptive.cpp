#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/machine_helpers.hpp"

namespace ds::stream {
namespace {

using mpi::Rank;

struct Harness {
  std::uint64_t records_consumed = 0;
  std::uint64_t elements_consumed = 0;
};

/// Run a 1-producer/1-consumer adaptive stream; `produce` drives the
/// batcher; returns consumption counters.
template <typename Produce>
Harness run_adaptive(const AdaptiveConfig& cfg, std::size_t record_bytes,
                     Produce&& produce,
                     const mpi::MachineConfig& machine = testing::tiny_machine(2)) {
  Harness h;
  testing::run_program(machine, [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    // The batcher's controller reads the virtual time its isends charge;
    // transport coalescing defers those charges to frame flushes, which
    // would starve the overhead signal. These tests pin the per-element
    // transport so they exercise the batcher controller in isolation (the
    // batcher x coalescing composition is covered in test_stream_coalesce).
    ChannelConfig ccfg;
    ccfg.coalesce_budget = 0;
    const Channel ch =
        Channel::create(self, self.world(), producer, !producer, ccfg);
    const mpi::Datatype element = mpi::Datatype::bytes(
        AdaptiveBatcher::element_bytes(record_bytes, cfg.max_records));
    auto op = [&](const StreamElement& el) {
      ++h.elements_consumed;
      h.records_consumed += adaptive_record_count(el);
    };
    Stream s = Stream::attach(ch, element, producer ? Operator{} : Operator{op});
    if (producer) {
      AdaptiveBatcher batcher(s, record_bytes, cfg);
      produce(self, batcher);
      batcher.finish(self);
    } else {
      (void)s.operate(self);
    }
  });
  return h;
}

TEST(Adaptive, AllRecordsArriveExactlyOnce) {
  AdaptiveConfig cfg;
  cfg.initial_records = 4;
  const auto h = run_adaptive(cfg, 64, [](Rank& self, AdaptiveBatcher& b) {
    for (int i = 0; i < 1000; ++i) b.push(self);
  });
  EXPECT_EQ(h.records_consumed, 1000u);
  EXPECT_GT(h.elements_consumed, 0u);
  EXPECT_LT(h.elements_consumed, 1000u);  // batching happened
}

TEST(Adaptive, PartialBatchFlushesOnFinish) {
  AdaptiveConfig cfg;
  cfg.initial_records = 64;
  const auto h = run_adaptive(cfg, 32, [](Rank& self, AdaptiveBatcher& b) {
    for (int i = 0; i < 10; ++i) b.push(self);  // far below one batch
  });
  EXPECT_EQ(h.records_consumed, 10u);
  EXPECT_EQ(h.elements_consumed, 1u);
}

TEST(Adaptive, GrowsBatchWhenOverheadDominates) {
  // Producer emits records with essentially no compute between them: the
  // injection overhead dominates and the controller must grow the batch.
  AdaptiveConfig cfg;
  cfg.initial_records = 1;
  cfg.window = 4;
  std::uint32_t final_batch = 0;
  run_adaptive(cfg, 16, [&](Rank& self, AdaptiveBatcher& b) {
    for (int i = 0; i < 2000; ++i) b.push(self);
    final_batch = b.current_batch();
  });
  EXPECT_GT(final_batch, 1u);
}

TEST(Adaptive, ShrinksBatchWhenFlowTooCoarse) {
  // Slow production with a large batch: flush gaps exceed the target
  // interval, so the controller shrinks toward finer elements.
  AdaptiveConfig cfg;
  cfg.initial_records = 512;
  cfg.window = 2;
  cfg.max_flush_interval = util::microseconds(50);
  std::uint32_t final_batch = 0;
  run_adaptive(cfg, 16, [&](Rank& self, AdaptiveBatcher& b) {
    for (int i = 0; i < 16 * 512; ++i) {
      self.compute(util::microseconds(1));
      b.push(self);
    }
    final_batch = b.current_batch();
  });
  EXPECT_LT(final_batch, 512u);
}

TEST(Adaptive, RespectsBounds) {
  AdaptiveConfig cfg;
  cfg.min_records = 8;
  cfg.max_records = 32;
  cfg.initial_records = 8;
  cfg.window = 2;
  std::uint32_t final_batch = 0;
  run_adaptive(cfg, 16, [&](Rank& self, AdaptiveBatcher& b) {
    for (int i = 0; i < 5000; ++i) b.push(self);  // overhead-heavy -> grow
    final_batch = b.current_batch();
  });
  EXPECT_GE(final_batch, 8u);
  EXPECT_LE(final_batch, 32u);
}

TEST(Adaptive, RejectsUndersizedElement) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(64), {});
    if (producer) {
      AdaptiveConfig cfg;
      cfg.max_records = 1000;  // needs far more than 64 bytes
      EXPECT_THROW(AdaptiveBatcher(s, 64, cfg), std::invalid_argument);
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
}

TEST(Adaptive, RejectsBadBounds) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(1 << 16), {});
    if (producer) {
      AdaptiveConfig cfg;
      cfg.min_records = 16;
      cfg.max_records = 8;
      EXPECT_THROW(AdaptiveBatcher(s, 8, cfg), std::invalid_argument);
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
}

TEST(Adaptive, ValidatesBoundsBeforeClampingTarget) {
  // Regression: the ctor used to clamp initial_records in the member-init
  // list *before* validating min <= max — UB on bad bounds. Validation must
  // win whatever initial_records is.
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(1 << 16), {});
    if (producer) {
      for (const std::uint32_t initial : {0u, 8u, 16u, 1000u}) {
        AdaptiveConfig cfg;
        cfg.min_records = 16;
        cfg.max_records = 8;  // inverted bounds
        cfg.initial_records = initial;
        EXPECT_THROW(AdaptiveBatcher(s, 8, cfg), std::invalid_argument);
      }
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
}

TEST(Adaptive, RejectsNonMultiplicativeGrowth) {
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    const Channel ch = Channel::create(self, self.world(), producer, !producer);
    Stream s = Stream::attach(ch, mpi::Datatype::bytes(1 << 16), {});
    if (producer) {
      AdaptiveConfig cfg;
      cfg.growth = 1.0;  // would leave the controller unable to move
      EXPECT_THROW(AdaptiveBatcher(s, 8, cfg), std::invalid_argument);
      s.terminate(self);
    } else {
      (void)s.operate(self);
    }
  });
}

TEST(Adaptive, ShrinkMakesProgressDownToMinRecords) {
  // Regression for the truncated-quotient shrink: with a growth factor just
  // above 1 the batch must still walk all the way down to min_records under
  // sustained coarse flow, never sticking above the floor.
  AdaptiveConfig cfg;
  cfg.min_records = 1;
  cfg.initial_records = 12;
  cfg.growth = 1.05;  // smallest steps: truncation effects dominate
  cfg.window = 2;
  cfg.max_flush_interval = util::microseconds(10);
  std::uint32_t final_batch = 0;
  run_adaptive(cfg, 16, [&](Rank& self, AdaptiveBatcher& b) {
    for (int i = 0; i < 1200; ++i) {
      self.compute(util::microseconds(30));  // every flush gap too coarse
      b.push(self);
    }
    final_batch = b.current_batch();
  });
  EXPECT_EQ(final_batch, cfg.min_records);
}

TEST(Adaptive, FirstWindowStartsAtFirstPushNotSimTimeZero) {
  // Regression: window_start_ defaulted to sim-time 0, so a batcher created
  // late saw the pre-history as elapsed production time, diluting
  // overhead_fraction and skipping the grow decision in its first window.
  AdaptiveConfig cfg;
  cfg.initial_records = 1;
  cfg.window = 8;
  std::uint32_t batch_after_first_window = 0;
  run_adaptive(cfg, 16, [&](Rank& self, AdaptiveBatcher& b) {
    self.compute(util::milliseconds(50));  // long pre-batcher history
    // Exactly one controller window of overhead-dominated pushes.
    for (std::uint32_t i = 0; i < cfg.window; ++i) b.push(self);
    batch_after_first_window = b.current_batch();
  });
  EXPECT_GT(batch_after_first_window, 1u);
}

TEST(Adaptive, HeaderDecodeHandlesSyntheticElements) {
  const StreamElement synthetic{nullptr, 128, 0};
  EXPECT_EQ(adaptive_record_count(synthetic), 0u);
}

}  // namespace
}  // namespace ds::stream
