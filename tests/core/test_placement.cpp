#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace ds::stream {
namespace {

net::NetworkConfig with_rpn(int ranks_per_node) {
  net::NetworkConfig c;
  c.ranks_per_node = ranks_per_node;
  return c;
}

TEST(Placement, SnapshotsNodeStructure) {
  const Placement p(with_rpn(4), 10);
  EXPECT_EQ(p.world_size(), 10);
  EXPECT_EQ(p.ranks_per_node(), 4);
  EXPECT_EQ(p.node_count(), 3);  // 4 + 4 + 2
  EXPECT_EQ(p.node_of(0), 0);
  EXPECT_EQ(p.node_of(7), 1);
  EXPECT_EQ(p.node_of(9), 2);
  EXPECT_TRUE(p.same_node(4, 7));
  EXPECT_FALSE(p.same_node(3, 4));
}

TEST(Placement, NoLocalityGivesOneRankPerNode) {
  const Placement p(with_rpn(0), 5);
  EXPECT_EQ(p.ranks_per_node(), 1);
  EXPECT_EQ(p.node_count(), 5);
  EXPECT_FALSE(p.same_node(0, 1));
}

TEST(Placement, RanksOnListsNodeMembers) {
  const Placement p(with_rpn(4), 10);
  EXPECT_EQ(p.ranks_on(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(p.ranks_on(2), (std::vector<int>{8, 9}));  // partial last node
  EXPECT_TRUE(p.ranks_on(3).empty());
  EXPECT_TRUE(p.ranks_on(-1).empty());
}

TEST(Placement, GroupByNodeKeepsInputOrderWithinGroups) {
  const Placement p(with_rpn(4), 12);
  const auto groups = p.group_by_node({9, 1, 0, 8, 5});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{1, 0}));  // node 0, input order
  EXPECT_EQ(groups[1], (std::vector<int>{5}));
  EXPECT_EQ(groups[2], (std::vector<int>{9, 8}));
}

TEST(Placement, TailPerNodeTakesLastMembers) {
  const Placement p(with_rpn(4), 12);
  const std::vector<int> world{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_EQ(p.tail_per_node(world, 1), (std::vector<int>{3, 7, 11}));
  EXPECT_EQ(p.tail_per_node(world, 2),
            (std::vector<int>{2, 3, 6, 7, 10, 11}));
}

TEST(Placement, TailPerNodeKeepsOneWorkerPerNode) {
  const Placement p(with_rpn(4), 12);
  // Node 0 contributes three members, node 1 just one: asking for three
  // helpers per node must leave a worker on node 0 and skip node 1 entirely.
  const auto selected = p.tail_per_node({0, 1, 2, 5}, 3);
  EXPECT_EQ(selected, (std::vector<int>{1, 2}));
}

TEST(Placement, Validates) {
  EXPECT_THROW(Placement(with_rpn(4), 0), std::invalid_argument);
  const Placement p(with_rpn(4), 8);
  EXPECT_THROW((void)p.tail_per_node({0, 1}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ds::stream
