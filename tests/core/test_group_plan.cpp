#include "core/group_plan.hpp"

#include <gtest/gtest.h>

#include "mpi/comm.hpp"

namespace ds::stream {
namespace {

mpi::Comm comm_of(int n) { return mpi::Comm(1, mpi::Group::world(n)); }

TEST(GroupPlan, StrideSixteenMatchesPaperAlpha) {
  const GroupPlan plan = GroupPlan::interleaved(comm_of(32), 16);
  EXPECT_EQ(plan.helper_count(), 2);
  EXPECT_EQ(plan.worker_count(), 30);
  EXPECT_DOUBLE_EQ(plan.alpha(), 1.0 / 16.0);
  EXPECT_TRUE(plan.is_helper(15));
  EXPECT_TRUE(plan.is_helper(31));
  EXPECT_TRUE(plan.is_worker(0));
  EXPECT_TRUE(plan.is_worker(16));
}

TEST(GroupPlan, PartitionIsDisjointAndComplete) {
  const GroupPlan plan = GroupPlan::interleaved(comm_of(64), 8);
  EXPECT_EQ(plan.worker_count() + plan.helper_count(), 64);
  for (const int w : plan.workers()) EXPECT_FALSE(plan.is_helper(w));
  for (const int h : plan.helpers()) EXPECT_TRUE(plan.is_helper(h));
}

TEST(GroupPlan, WithAlphaPicksNearestStride) {
  // The paper's three evaluation points: 12.5%, 6.25%, 3.125% helpers.
  EXPECT_EQ(GroupPlan::with_alpha(comm_of(64), 0.125).stride(), 8);
  EXPECT_EQ(GroupPlan::with_alpha(comm_of(64), 0.0625).stride(), 16);
  EXPECT_EQ(GroupPlan::with_alpha(comm_of(64), 0.03125).stride(), 32);
}

TEST(GroupPlan, WithAlphaRoundsToTheClosestStride) {
  // Off-grid alphas land on the stride closest to 1/alpha.
  EXPECT_EQ(GroupPlan::with_alpha(comm_of(64), 0.1).stride(), 10);
  EXPECT_EQ(GroupPlan::with_alpha(comm_of(64), 0.07).stride(), 14);   // 14.28…
  EXPECT_EQ(GroupPlan::with_alpha(comm_of(64), 0.06).stride(), 17);   // 16.67…
  EXPECT_EQ(GroupPlan::with_alpha(comm_of(64), 0.9).stride(), 2);     // clamped
  // And the realized alpha is within half a stride step of the request.
  for (const double alpha : {0.125, 0.0625, 0.03125, 0.1, 0.05}) {
    const GroupPlan plan = GroupPlan::with_alpha(comm_of(320), alpha);
    EXPECT_NEAR(1.0 / plan.stride(), alpha, alpha * 0.5) << "alpha " << alpha;
  }
}

TEST(GroupPlan, HelpersAreSpreadNotClustered) {
  const GroupPlan plan = GroupPlan::interleaved(comm_of(48), 16);
  EXPECT_EQ(plan.helpers(), (std::vector<int>{15, 31, 47}));
}

TEST(GroupPlan, InvalidArgumentsThrow) {
  EXPECT_THROW(GroupPlan::interleaved(comm_of(8), 1), std::invalid_argument);
  EXPECT_THROW(GroupPlan::interleaved(comm_of(8), 16), std::invalid_argument);
  EXPECT_THROW(GroupPlan::with_alpha(comm_of(8), 0.0), std::invalid_argument);
  EXPECT_THROW(GroupPlan::with_alpha(comm_of(8), 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace ds::stream
