// Chained multi-stage pipelines: stage declaration, role dispatch, linked
// streams, stage-to-stage auto-termination, facade backpressure, and the
// tree termination protocol reached through the facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "common/machine_helpers.hpp"
#include "core/decouple.hpp"
#include "mpi/rank.hpp"

namespace ds::decouple {
namespace {

using mpi::Rank;

TEST(ChainedPipeline, ThreeStageChainRoundTripsAndAutoTerminates) {
  struct Sample {
    std::int32_t worker = -1;
    std::int32_t value = 0;
  };
  struct Partial {
    std::int32_t reducer = -1;
    std::int64_t sum = 0;
  };
  std::int64_t total = 0;
  std::uint64_t partials_seen = 0;
  testing::run_program(testing::tiny_machine(7), [&](Rank& self) {
    auto pipeline = Pipeline::over(self, self.world());
    const auto compute = pipeline.stage([](int r) { return r < 4; });
    const auto reduce = pipeline.stage([](int r) { return r == 4 || r == 5; });
    const auto sink = pipeline.stage(std::vector<int>{6});
    const auto samples = pipeline.stream_between<Sample>(compute, reduce);
    const auto partials = pipeline.stream_between<Partial>(reduce, sink);
    pipeline.run_stages({
        [&](Context& ctx) {
          EXPECT_EQ(ctx.stage_index(), 0);
          auto& out = ctx[samples];
          EXPECT_TRUE(out.is_producer());
          for (int i = 1; i <= 5; ++i)
            out.send(Sample{ctx.stage_member_index(), i});
          // No explicit terminate: propagation is the pipeline's job.
        },
        [&](Context& ctx) {
          EXPECT_EQ(ctx.stage_index(), 1);
          auto& in = ctx[samples];
          auto& out = ctx[partials];
          EXPECT_TRUE(in.is_consumer());
          EXPECT_TRUE(out.is_producer());
          std::int64_t sum = 0;
          in.on_receive(
              [&](const Element<Sample>& el) { sum += el.record.value; });
          in.operate();  // unblocks when the compute stage terminated
          out.send(Partial{ctx.stage_member_index(), sum});
        },
        [&](Context& ctx) {
          EXPECT_EQ(ctx.stage_index(), 2);
          auto& in = ctx[partials];
          in.on_receive([&](const Element<Partial>& el) {
            total += el.record.sum;
            ++partials_seen;
          });
          in.operate();  // unblocks when the reduce stage terminated
        },
    });
  });
  EXPECT_EQ(partials_seen, 2u);
  EXPECT_EQ(total, 4 * (1 + 2 + 3 + 4 + 5));  // every sample exactly once
}

TEST(ChainedPipeline, StageMetadataAndDispatchAreConsistent) {
  std::vector<int> dispatched(6, -1);
  testing::run_program(testing::tiny_machine(6), [&](Rank& self) {
    auto pipeline = Pipeline::over(self, self.world());
    const auto a = pipeline.stage(std::vector<int>{0, 2});
    const auto b = pipeline.stage(std::vector<int>{1, 4});
    const auto c = pipeline.stage(std::vector<int>{5});
    // Rank 3 belongs to no stage: it only participates in the collectives.
    auto link1 = pipeline.raw_stream_between(a, b, 16);
    auto link2 = pipeline.raw_stream_between(b, c, 16);
    auto note = [&](Context& ctx, int stage) {
      dispatched[static_cast<std::size_t>(ctx.parent_rank())] = stage;
      EXPECT_EQ(ctx.stage_index(), stage);
      EXPECT_EQ(ctx.stage_count(), 3);
      EXPECT_EQ(ctx.stage_size(0), 2);
      EXPECT_EQ(ctx.stage_size(1), 2);
      EXPECT_EQ(ctx.stage_size(2), 1);
      EXPECT_EQ(ctx.stage_ranks(1), (std::vector<int>{1, 4}));
    };
    pipeline.run_stages({
        [&](Context& ctx) {
          note(ctx, 0);
          EXPECT_EQ(ctx.stage_member_index(), ctx.parent_rank() == 0 ? 0 : 1);
          ctx[link1].send_synthetic(16);
        },
        [&](Context& ctx) {
          note(ctx, 1);
          auto& in = ctx[link1];
          auto& out = ctx[link2];
          in.on_receive([&](const RawElement&) { out.send_synthetic(16); });
          in.operate();
        },
        [&](Context& ctx) {
          note(ctx, 2);
          EXPECT_EQ(ctx[link2].operate(), 2u);  // forwarded, one per worker
        },
    });
  });
  EXPECT_EQ(dispatched, (std::vector<int>{0, 1, 0, -1, 1, 2}));
}

TEST(ChainedPipeline, RoutingInvariantAcrossChainShapes) {
  // No element lost or duplicated through a two-hop chain, whatever the
  // stage split.
  struct Shape {
    int compute, reduce, sink;
  };
  for (const Shape shape : {Shape{4, 2, 1}, Shape{6, 1, 1}, Shape{2, 3, 2}}) {
    const int world = shape.compute + shape.reduce + shape.sink;
    std::map<int, int> seen;
    testing::run_program(testing::tiny_machine(world), [&](Rank& self) {
      auto pipeline = Pipeline::over(self, self.world());
      const auto s0 = pipeline.stage([&](int r) { return r < shape.compute; });
      const auto s1 = pipeline.stage([&](int r) {
        return r >= shape.compute && r < shape.compute + shape.reduce;
      });
      const auto s2 = pipeline.stage(
          [&](int r) { return r >= shape.compute + shape.reduce; });
      const auto first = pipeline.stream_between<std::int32_t>(s0, s1);
      const auto second = pipeline.stream_between<std::int32_t>(s1, s2);
      pipeline.run_stages({
          [&](Context& ctx) {
            for (int i = 0; i < 7; ++i)
              ctx[first].send(ctx.stage_member_index() * 1000 + i);
          },
          [&](Context& ctx) {
            ctx[first].on_receive([&](const Element<std::int32_t>& el) {
              ctx[second].send(el.record);
            });
            ctx[first].operate();
          },
          [&](Context& ctx) {
            ctx[second].on_receive(
                [&](const Element<std::int32_t>& el) { ++seen[el.record]; });
            ctx[second].operate();
          },
      });
    });
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(shape.compute) * 7u);
    for (const auto& [id, count] : seen)
      EXPECT_EQ(count, 1) << "element " << id << " in shape " << shape.compute
                          << "/" << shape.reduce << "/" << shape.sink;
  }
}

TEST(ChainedPipeline, DirectedLinkTerminatesThroughAggregationTree) {
  // The facade path to the tree protocol: a Directed link from one producer
  // stage to a wide consumer stage must deliver everything, and the
  // producer must emit exactly one term message.
  constexpr int kConsumers = 9;
  std::uint64_t consumed = 0;
  std::uint64_t producer_terms = 0;
  std::uint64_t max_consumer_terms = 0;
  testing::run_program(testing::tiny_machine(1 + kConsumers), [&](Rank& self) {
    StreamOptions directed;
    directed.mapping = Mapping::Directed;
    auto pipeline = Pipeline::over(self, self.world());
    const auto head = pipeline.stage(std::vector<int>{0});
    const auto fan = pipeline.stage([](int r) { return r > 0; });
    const auto link =
        pipeline.stream_between<std::int32_t>(head, fan, 0, directed);
    pipeline.run_stages({
        [&](Context& ctx) {
          auto& out = ctx[link];
          for (int c = 0; c < kConsumers; ++c) out.send_to(c, c);
          out.terminate();  // explicit, so the term count is observable here
          producer_terms = out.term_messages_sent();
        },
        [&](Context& ctx) {
          auto& in = ctx[link];
          in.on_receive([&](const Element<std::int32_t>& el) {
            EXPECT_EQ(el.record, ctx.stage_member_index());
          });
          consumed += in.operate();
          max_consumer_terms =
              std::max(max_consumer_terms, in.term_messages_sent());
        },
    });
  });
  EXPECT_EQ(consumed, static_cast<std::uint64_t>(kConsumers));
  EXPECT_EQ(producer_terms, 1u);  // one term to the aggregator, not C
  EXPECT_LE(max_consumer_terms, 2u);
}

TEST(ChainedPipeline, MaxInflightBackpressuresThroughTheFacade) {
  util::SimTime producer_done = 0;
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    StreamOptions throttled;
    throttled.max_inflight = 2;
    auto pipeline = Pipeline::over(self, self.world()).with_helper_ranks({1});
    const auto flow = pipeline.stream<std::int32_t>(0, throttled);
    pipeline.run(
        [&](Context& ctx) {
          auto& out = ctx[flow];
          for (int i = 0; i < 10; ++i) out.send(i);
          producer_done = self.now();
        },
        [&](Context& ctx) {
          auto& in = ctx[flow];
          in.on_receive([&](const Element<std::int32_t>&) {
            self.compute(util::microseconds(50));
          });
          EXPECT_EQ(in.operate(), 10u);
        });
  });
  // 8 of the 10 sends waited on a credit behind ~50 us of consumer compute.
  EXPECT_GE(producer_done, util::microseconds(350));
}

TEST(ChainedPipeline, MisdeclaredStagesAreRejected) {
  testing::run_program(testing::tiny_machine(4), [&](Rank& self) {
    {
      auto pipeline = Pipeline::over(self, self.world());
      (void)pipeline.stage(std::vector<int>{0, 1});
      EXPECT_THROW((void)pipeline.stage(std::vector<int>{1, 2}),
                   std::invalid_argument);  // overlap
      EXPECT_THROW((void)pipeline.stage(std::vector<int>{7}),
                   std::invalid_argument);  // outside parent
      EXPECT_THROW((void)pipeline.stage(std::vector<int>{}),
                   std::invalid_argument);  // empty
    }
    {
      auto pipeline = Pipeline::over(self, self.world());
      const auto only = pipeline.stage(std::vector<int>{0, 1});
      EXPECT_THROW(
          (void)pipeline.stream_between<std::int32_t>(only, only),
          std::invalid_argument);  // self-link
      EXPECT_THROW((void)pipeline.stream_between<std::int32_t>(only, StageHandle{}),
                   std::logic_error);  // foreign handle
      EXPECT_THROW(pipeline.run_stages({{}, {}}),
                   std::logic_error);  // one declared stage, two functions
    }
    {
      auto pipeline = Pipeline::over(self, self.world());
      (void)pipeline.stage(std::vector<int>{0, 1});
      (void)pipeline.stage(std::vector<int>{2, 3});
      EXPECT_THROW(pipeline.run_stages({{}}),
                   std::invalid_argument);  // function count mismatch
      pipeline.run_stages({{}, {}});        // no-op stages are fine
      EXPECT_THROW(pipeline.run_stages({{}, {}}), std::logic_error);  // reran
    }
  });
}

TEST(ChainedPipeline, DispatchRejectsTruncatedRecords) {
  // A consumer whose record type is wider than what is on the wire must get
  // a clean throw, not an overread. (Each rank declares its own Pipeline
  // object, so the mismatch can be staged deliberately.)
  struct Wide {
    std::int64_t a = 0;
    std::int64_t b = 0;
  };
  testing::run_program(testing::tiny_machine(2), [&](Rank& self) {
    const bool producer = self.world_rank() == 0;
    auto pipeline = Pipeline::over(self, self.world()).with_helper_ranks({1});
    if (producer) {
      const auto narrow = pipeline.stream<std::int32_t>();
      pipeline.run([&](Context& ctx) { ctx[narrow].send(7); }, {});
    } else {
      const auto wide = pipeline.stream<Wide>();
      pipeline.run({}, [&](Context& ctx) {
        auto& in = ctx[wide];
        in.on_receive([](const Element<Wide>&) {});
        EXPECT_THROW(in.operate(), std::length_error);
        in.operate();  // drain the remaining termination
      });
    }
  });
}

}  // namespace
}  // namespace ds::decouple
