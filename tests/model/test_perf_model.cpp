#include "model/perf_model.hpp"

#include <gtest/gtest.h>

namespace ds::model {
namespace {

TwoOpWorkload base() {
  TwoOpWorkload w;
  w.t_w0 = 10.0;
  w.t_w1 = 5.0;
  w.t_sigma = 1.0;
  w.alpha = 0.0625;
  w.beta = 0.3;
  w.t_w1_decoupled = 0.2;
  w.total_data = 1e9;
  w.granularity = 1e6;
  w.overhead_per_element = 1e-6;
  return w;
}

TEST(PerfModel, Eq1ConventionalIsPlainSum) {
  EXPECT_DOUBLE_EQ(conventional_time(base()), 16.0);
}

TEST(PerfModel, Eq2TakesTheMaxOfBothGroups) {
  TwoOpWorkload w = base();
  // Workers: 10/(1-1/16) + 1 = 11.667; helpers: 0.2/0.0625 = 3.2.
  EXPECT_NEAR(decoupled_time_ideal(w), 10.0 / (1 - 0.0625) + 1.0, 1e-12);
  w.t_w1_decoupled = 1.0;  // helpers: 16 > workers
  EXPECT_DOUBLE_EQ(decoupled_time_ideal(w), 16.0);
}

TEST(PerfModel, Eq3BetaExtremes) {
  TwoOpWorkload w = base();
  w.beta = 0.0;  // perfect pipeline -> only the decoupled op remains
  EXPECT_DOUBLE_EQ(decoupled_time_beta(w), w.t_w1_decoupled / w.alpha);
  w.beta = 1.0;  // no pipeline -> full worker time plus decoupled op
  EXPECT_DOUBLE_EQ(decoupled_time_beta(w),
                   w.t_w0 / (1 - w.alpha) + w.t_sigma + w.t_w1_decoupled / w.alpha);
}

TEST(PerfModel, Eq4AddsStreamOverheadScaledByBeta) {
  TwoOpWorkload w = base();
  const double without = decoupled_time_beta(w);
  const double with = decoupled_time_full(w);
  const double elements = w.total_data / w.granularity;
  EXPECT_NEAR(with - without, w.beta * elements * w.overhead_per_element, 1e-9);
}

TEST(PerfModel, FinerGranularityCostsMoreOverhead) {
  TwoOpWorkload coarse = base();
  TwoOpWorkload fine = base();
  fine.granularity = coarse.granularity / 10.0;
  EXPECT_GT(decoupled_time_full(fine), decoupled_time_full(coarse));
}

TEST(PerfModel, BetaOfGranularityIsMonotoneAndClamped) {
  EXPECT_DOUBLE_EQ(beta_of_granularity(0.2, 0.0, 100.0), 0.2);
  EXPECT_DOUBLE_EQ(beta_of_granularity(0.2, 100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(beta_of_granularity(0.2, 1e9, 100.0), 1.0);  // clamped
  EXPECT_LT(beta_of_granularity(0.2, 10.0, 100.0),
            beta_of_granularity(0.2, 50.0, 100.0));
}

TEST(PerfModel, SpeedupMatchesRatio) {
  const TwoOpWorkload w = base();
  EXPECT_NEAR(predicted_speedup(w),
              conventional_time(w) / decoupled_time_full(w), 1e-12);
}

TEST(PerfModel, OptimalGranularityBalancesOverheadAndPipeline) {
  TwoOpWorkload w = base();
  const double best = optimal_granularity(w, 0.05, 1e3, 1e9);
  // The optimum is interior: both extremes must be worse.
  auto at = [&](double s) {
    w.granularity = s;
    w.beta = beta_of_granularity(0.05, s, w.total_data);
    return decoupled_time_full(w);
  };
  EXPECT_LE(at(best), at(1e3) + 1e-12);
  EXPECT_LE(at(best), at(1e9) + 1e-12);
  EXPECT_GT(best, 1e3);
  EXPECT_LT(best, 1e9);
}

TEST(PerfModel, DecouplingWinsWhenComplexityDrops) {
  // Paper's criterion: T'_W1 << T_W1 makes decoupling profitable.
  TwoOpWorkload w = base();
  w.beta = 0.1;
  EXPECT_GT(predicted_speedup(w), 1.0);
  // And loses when the decoupled op cannot be optimized and beta is high.
  w.t_w1_decoupled = w.t_w1;  // no complexity reduction
  w.alpha = 0.0625;           // 16x fewer processes doing the same work
  w.beta = 1.0;
  EXPECT_LT(predicted_speedup(w), 1.0);
}

}  // namespace
}  // namespace ds::model
