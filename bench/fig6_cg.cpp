// Figure 6: weak-scaling of the CG solver with three halo-exchange
// strategies: blocking collective, nonblocking collective (overlapped), and
// the decoupled helper-group exchange (alpha = 6.25%).
//
// Paper result: decoupling matches the nonblocking reference (near-constant
// time 256 -> 8,192 procs) and beats the blocking reference by ~1.25x at
// 8,192 procs. We run 6 iterations instead of 300 (timing is linear in the
// iteration count; the weak-scaling shape is unchanged).
#include "apps/cg/cg_app.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const auto opt = util::BenchOptions::parse(argc, argv);
  bench::print_header("Fig. 6 — CG solver weak scaling",
                      "120^3 grid points per process; blocking vs nonblocking "
                      "vs decoupling (alpha = 6.25%)", opt);

  util::Table table({"procs", "blocking_s", "nonblocking_s", "decoupling_s",
                     "blocking/decoupling"});

  for (const int procs : bench::scaling_sweep(opt)) {
    auto run = [&](apps::cg::HaloVariant variant) {
      return bench::repeat(opt, procs, [&](int p, std::uint64_t seed) {
        apps::cg::CgConfig cfg;
        cfg.n = 120;
        cfg.iterations = 6;
        cfg.stride = 16;
        return apps::cg::run_cg(variant, cfg, bench::beskow_like(p, seed, opt)).seconds;
      });
    };
    const auto blocking = run(apps::cg::HaloVariant::Blocking);
    const auto nonblocking = run(apps::cg::HaloVariant::Nonblocking);
    const auto decoupled = run(apps::cg::HaloVariant::Decoupled);
    table.add_row({std::to_string(procs),
                   util::Table::fmt_mean_std(blocking.mean(), blocking.stddev()),
                   util::Table::fmt_mean_std(nonblocking.mean(), nonblocking.stddev()),
                   util::Table::fmt_mean_std(decoupled.mean(), decoupled.stddev()),
                   util::Table::fmt(blocking.mean() / decoupled.mean())});
    std::printf("  procs=%d done\n", procs);
  }
  bench::print_table(table);
  return 0;
}
