// Topology sweep (machine-model extension): the fig. 3 execution-model
// comparison and the fig. 9 termination tree re-run across the pluggable
// topologies (flat, two-level, fat-tree, dragonfly), plus a congestion
// scenario that shrinks the bisection and watches placement start to
// matter.
//
// Three scenario families, all virtual-time deterministic (no noise, fixed
// seed — the JSON is byte-stable across machines and gated in CI by
// tools/check_bench_regression.py):
//
//  * model_<topo>: 64 ranks, 8 per node. Conventional staged execution vs
//    the decoupled pipeline placed with with_node_placement(1) (one helper
//    on every node, co-located with its producers). Decoupling must win on
//    every topology.
//
//  * term_<topo>: a 16x48 Directed channel, default heap term tree vs the
//    node-aware tree. The node-aware tree must not add cross-node edges —
//    on multi-node topologies it must remove them — and must deliver
//    exactly the same elements.
//
//  * congestion_<topo>_taper<t>: the same streaming workload under two
//    placements — all helpers packed on the last node (every element
//    crosses the shared fabric into one node's down-link) vs node-aware
//    helpers (every element stays on its producer's node). The advantage
//    ratio remote/local must grow as the contended tier's bandwidth is
//    tapered: that widening gap is the paper's exascale argument for
//    decoupling with placement, made concrete per topology.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/channel.hpp"
#include "core/decouple.hpp"
#include "core/stream.hpp"
#include "mpi/rank.hpp"

namespace {

using namespace ds;

constexpr int kWorld = 64;
constexpr int kRanksPerNode = 8;

util::BenchOptions g_opt;

/// Aries-like costs with the named topology and taper plugged in, 8 ranks
/// per node so the 64-rank world spans 8 nodes. Noise stays off: every
/// number this bench emits is a pure function of the config.
mpi::MachineConfig topo_machine(const std::string& topology, double taper,
                                std::uint64_t seed) {
  util::BenchOptions model = g_opt;
  model.topology = topology;
  model.taper = taper;
  mpi::MachineConfig config;
  config.world_size = kWorld;
  config.network = bench::machine_model(model);
  config.network.ranks_per_node = kRanksPerNode;
  config.engine.seed = seed;
  config.engine.stack_bytes = 64 * 1024;
  return config;
}

// ---------------------------------------------------------------------------
// model_<topo>: conventional vs node-placed decoupled, fig. 3 workload.
// ---------------------------------------------------------------------------

constexpr util::SimTime kModelOp0 = util::milliseconds(10);
constexpr util::SimTime kModelOp1 = util::milliseconds(4);
constexpr std::size_t kModelBytes = 64 * 1024;

struct ModelResult {
  double conventional_s = 0.0;
  double decoupled_s = 0.0;
};

ModelResult run_model(const std::string& topology, int rounds) {
  ModelResult result;
  {
    mpi::Machine machine(topo_machine(topology, 1.0, 7));
    const auto makespan = machine.run([&](mpi::Rank& self) {
      for (int r = 0; r < rounds; ++r) {
        self.compute(kModelOp0, "op0");
        self.reduce(self.world(), 0, mpi::SendBuf::synthetic(kModelBytes),
                    nullptr, {});
        self.compute(kModelOp1, "op1");
        self.barrier(self.world());
      }
    });
    result.conventional_s = util::to_seconds(makespan);
  }
  {
    mpi::Machine machine(topo_machine(topology, 1.0, 7));
    const auto makespan = machine.run([&](mpi::Rank& self) {
      auto pipeline = decouple::Pipeline::over(self, self.world())
                          .with_node_placement(1);
      auto op1 = pipeline.raw_stream(kModelBytes);
      pipeline.run(
          [&](decouple::Context& ctx) {
            auto& s = ctx[op1];
            // Workers absorb the helpers' share of op0 (fig. 3 scaling).
            const auto scaled = kModelOp0 * ctx.parent().size() /
                                std::max(1, ctx.worker_count());
            for (int r = 0; r < rounds; ++r) {
              self.compute(scaled, "op0");
              s.send_synthetic(kModelBytes);
            }
          },
          [&](decouple::Context& ctx) {
            auto& s = ctx[op1];
            const int per_helper = std::max(
                1, ctx.worker_count() / std::max(1, ctx.helper_count()));
            s.on_receive([&](const decouple::RawElement&) {
              self.compute(kModelOp1 / per_helper, "op1");
            });
            (void)s.operate();
          });
    });
    result.decoupled_s = util::to_seconds(makespan);
  }
  return result;
}

// ---------------------------------------------------------------------------
// term_<topo>: default heap tree vs node-aware tree on a Directed channel.
// ---------------------------------------------------------------------------

constexpr int kTermProducers = 16;
constexpr int kTermConsumers = kWorld - kTermProducers;
constexpr int kTermElements = 4;

struct TermResult {
  int tree_depth = 0;
  int cross_node_edges = 0;
  std::uint64_t max_producer_terms = 0;
  std::uint64_t consumed = 0;
};

TermResult run_term(const std::string& topology, bool node_aware) {
  TermResult result;
  mpi::Machine machine(topo_machine(topology, 1.0, 11));
  machine.run([&](mpi::Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < kTermProducers;
    stream::ChannelConfig cfg;
    cfg.mapping = stream::ChannelConfig::Mapping::Directed;
    cfg.node_aware_term = node_aware;
    const stream::Channel ch =
        stream::Channel::create(self, self.world(), producer, !producer, cfg);
    stream::Stream s = stream::Stream::attach(ch, mpi::Datatype::bytes(64), {});
    if (producer) {
      for (int i = 0; i < kTermElements; ++i)
        s.isend_to(self, (me + i) % kTermConsumers, mpi::SendBuf::synthetic(64));
      s.terminate(self);
      result.max_producer_terms =
          std::max(result.max_producer_terms, s.term_messages_sent());
    } else {
      result.consumed += s.operate(self);
      result.tree_depth = ch.term_tree_depth();
      result.cross_node_edges = ch.term_cross_node_edges();
    }
  });
  return result;
}

// ---------------------------------------------------------------------------
// congestion_<topo>_taper<t>: helper placement vs shrinking bisection.
// ---------------------------------------------------------------------------

constexpr util::SimTime kCongOp0 = util::milliseconds(2);
constexpr util::SimTime kCongOp1 = util::microseconds(100);
constexpr std::size_t kCongBytes = 256 * 1024;

/// One streaming run: 56 workers push `rounds` elements of 256 KiB each to
/// 8 helpers. `node_aware` places one helper per node (with_node_placement);
/// otherwise all 8 helpers are the last node's ranks, so every element
/// funnels through the shared fabric into that node.
double run_congestion(const std::string& topology, double taper,
                      bool node_aware, int rounds) {
  mpi::Machine machine(topo_machine(topology, taper, 13));
  const auto makespan = machine.run([&](mpi::Rank& self) {
    auto pipeline = decouple::Pipeline::over(self, self.world());
    if (node_aware) {
      pipeline.with_node_placement(1);
    } else {
      std::vector<int> last_node;
      for (int r = kWorld - kRanksPerNode; r < kWorld; ++r)
        last_node.push_back(r);
      pipeline.with_helper_ranks(std::move(last_node));
    }
    auto data = pipeline.raw_stream(kCongBytes);
    pipeline.run(
        [&](decouple::Context& ctx) {
          auto& s = ctx[data];
          for (int r = 0; r < rounds; ++r) {
            self.compute(kCongOp0, "op0");
            s.send_synthetic(kCongBytes);
          }
        },
        [&](decouple::Context& ctx) {
          auto& s = ctx[data];
          s.on_receive(
              [&](const decouple::RawElement&) { self.compute(kCongOp1, "op1"); });
          (void)s.operate();
        });
  });
  return util::to_seconds(makespan);
}

[[nodiscard]] std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  g_opt = util::BenchOptions::parse(argc, argv);
  bench::print_header(
      "topology_sweep — machine model x execution model",
      "fig. 3 model and fig. 9 termination across flat/twolevel/fattree/"
      "dragonfly, plus decoupled placement advantage vs bisection taper",
      g_opt);

  const std::vector<std::string> topologies = {"flat", "twolevel", "fattree",
                                               "dragonfly"};
  const std::vector<double> tapers =
      g_opt.fast ? std::vector<double>{1.0, 4.0}
                 : std::vector<double>{1.0, 2.0, 4.0};
  const int model_rounds = g_opt.fast ? 4 : 6;
  const int cong_rounds = g_opt.fast ? 6 : 8;

  bool ok = true;
  std::string json = "{\"bench\":\"topology_sweep\",\"scenarios\":[";
  bool first = true;
  const auto emit = [&](const std::string& entry) {
    json += (first ? "" : ",") + entry;
    first = false;
  };

  // --- model family -------------------------------------------------------
  util::Table model_table({"topology", "conventional_s", "decoupled_s",
                           "speedup"});
  for (const auto& topo : topologies) {
    const ModelResult m = run_model(topo, model_rounds);
    const double speedup = m.conventional_s / m.decoupled_s;
    ok &= m.decoupled_s < m.conventional_s;
    model_table.add_row({topo, fmt(m.conventional_s), fmt(m.decoupled_s),
                         fmt(speedup)});
    char entry[256];
    std::snprintf(entry, sizeof entry,
                  "{\"name\":\"model_%s\",\"conventional_s\":%.9g,"
                  "\"decoupled_s\":%.9g,\"speedup\":%.9g}",
                  topo.c_str(), m.conventional_s, m.decoupled_s, speedup);
    emit(entry);
  }
  std::printf("fig. 3 model, 64 ranks (8/node), node-placed helpers:\n");
  bench::print_table(model_table);

  // --- termination family -------------------------------------------------
  util::Table term_table({"topology", "depth_default", "depth_aware",
                          "cross_default", "cross_aware"});
  for (const auto& topo : topologies) {
    const TermResult flat_tree = run_term(topo, false);
    const TermResult aware = run_term(topo, true);
    const auto expected = static_cast<std::uint64_t>(kTermProducers) *
                          static_cast<std::uint64_t>(kTermElements);
    // The aware tree must deliver identically, keep one term per producer,
    // and never add cross-node hops; with consumers spread over several
    // nodes it must strictly remove some.
    ok &= flat_tree.consumed == expected && aware.consumed == expected;
    ok &= flat_tree.max_producer_terms == 1 && aware.max_producer_terms == 1;
    ok &= aware.cross_node_edges <= flat_tree.cross_node_edges;
    ok &= aware.cross_node_edges < kTermConsumers / kRanksPerNode + 1;
    term_table.add_row({topo, std::to_string(flat_tree.tree_depth),
                        std::to_string(aware.tree_depth),
                        std::to_string(flat_tree.cross_node_edges),
                        std::to_string(aware.cross_node_edges)});
    char entry[320];
    std::snprintf(entry, sizeof entry,
                  "{\"name\":\"term_%s\",\"depth_default\":%d,"
                  "\"depth_aware\":%d,\"cross_default\":%d,\"cross_aware\":%d,"
                  "\"consumed\":%llu}",
                  topo.c_str(), flat_tree.tree_depth, aware.tree_depth,
                  flat_tree.cross_node_edges, aware.cross_node_edges,
                  static_cast<unsigned long long>(aware.consumed));
    emit(entry);
  }
  std::printf("fig. 9 termination tree, 16x48 Directed:\n");
  bench::print_table(term_table);

  // --- congestion family --------------------------------------------------
  util::Table cong_table(
      {"topology", "taper", "remote_s", "local_s", "advantage"});
  // Flat has no shared links: one taper as the control row (placement must
  // not matter much when the fabric has full bisection everywhere).
  {
    const double remote = run_congestion("flat", 1.0, false, cong_rounds);
    const double local = run_congestion("flat", 1.0, true, cong_rounds);
    const double advantage = remote / local;
    ok &= advantage > 0.0;
    cong_table.add_row({"flat", "1", fmt(remote), fmt(local), fmt(advantage)});
    char entry[256];
    std::snprintf(entry, sizeof entry,
                  "{\"name\":\"congestion_flat_taper1\",\"remote_s\":%.9g,"
                  "\"local_s\":%.9g,\"advantage\":%.9g}",
                  remote, local, advantage);
    emit(entry);
  }
  for (const auto& topo : topologies) {
    if (topo == "flat") continue;
    std::vector<double> advantages;
    for (const double taper : tapers) {
      const double remote = run_congestion(topo, taper, false, cong_rounds);
      const double local = run_congestion(topo, taper, true, cong_rounds);
      const double advantage = remote / local;
      advantages.push_back(advantage);
      cong_table.add_row({topo, fmt(taper), fmt(remote), fmt(local),
                          fmt(advantage)});
      char entry[288];
      std::snprintf(entry, sizeof entry,
                    "{\"name\":\"congestion_%s_taper%g\",\"remote_s\":%.9g,"
                    "\"local_s\":%.9g,\"advantage\":%.9g}",
                    topo.c_str(), taper, remote, local, advantage);
      emit(entry);
    }
    // The acceptance gate: decoupling-with-placement must matter MORE as
    // bisection shrinks — weakly monotone advantage (2% slack), and a >= 5%
    // widening from full bisection to the strongest taper.
    for (std::size_t i = 1; i < advantages.size(); ++i)
      ok &= advantages[i] >= advantages[i - 1] * 0.98;
    ok &= advantages.back() >= advantages.front() * 1.05;
  }
  std::printf("placement advantage (remote helpers / node-aware helpers):\n");
  bench::print_table(cong_table);

  json += "]}\n";
  const std::string json_path =
      util::env_string("DS_BENCH_JSON", "BENCH_topology.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("JSON written to %s\n", json_path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", json_path.c_str());
    ok = false;
  }

  std::printf("topology sweep checks: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
