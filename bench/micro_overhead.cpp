// Micro-benchmarks of the simulator substrate itself (host wall-clock, via
// google-benchmark): fiber context switches, event queue throughput, and
// the end-to-end cost of simulating one stream element — the practical
// limits on how large a virtual machine this laptop-scale simulator can
// sweep.
#include <benchmark/benchmark.h>

#include "core/decouple.hpp"
#include "mpi/rank.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"

namespace {

using namespace ds;

void BM_FiberSwitch(benchmark::State& state) {
  sim::Fiber fiber([] {
    while (true) sim::Fiber::yield();
  });
  for (auto _ : state) fiber.resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  util::SimTime t = 0;
  for (auto _ : state) {
    queue.push(++t, [] {});
    if (queue.size() > 1024) benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EngineSelfWake(benchmark::State& state) {
  // One advance() = schedule + fiber switch out + event dispatch + switch in.
  const std::int64_t steps = state.range(0);
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn([steps](sim::Process& p) {
      for (std::int64_t i = 0; i < steps; ++i) p.advance(1);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_EngineSelfWake)->Arg(10000);

void BM_SimulatedP2PMessage(benchmark::State& state) {
  const std::int64_t messages = state.range(0);
  for (auto _ : state) {
    mpi::Machine machine(mpi::MachineConfig::testbed(2));
    machine.run([messages](mpi::Rank& self) {
      if (self.world_rank() == 0) {
        for (std::int64_t i = 0; i < messages; ++i)
          self.send(self.world(), 1, 0, mpi::SendBuf::synthetic(64));
      } else {
        for (std::int64_t i = 0; i < messages; ++i)
          (void)self.recv(self.world(), 0, 0, mpi::RecvBuf::discard(64));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_SimulatedP2PMessage)->Arg(5000);

void BM_SimulatedStreamElement(benchmark::State& state) {
  // Host cost per simulated MPIStream element: producer inject -> fabric ->
  // consumer operate. This is the harness's `o` in wall-clock terms.
  const std::int64_t elements = state.range(0);
  for (auto _ : state) {
    mpi::Machine machine(mpi::MachineConfig::testbed(2));
    machine.run([elements](mpi::Rank& self) {
      auto pipeline =
          decouple::Pipeline::over(self, self.world()).with_helper_ranks({1});
      auto flow = pipeline.raw_stream(256);
      pipeline.run(
          [&](decouple::Context& ctx) {
            auto& s = ctx[flow];
            for (std::int64_t i = 0; i < elements; ++i) s.send_synthetic(256);
          },
          [&](decouple::Context& ctx) {
            auto& s = ctx[flow];
            s.on_receive([](const decouple::RawElement&) {});
            (void)s.operate();
          });
    });
  }
  state.SetItemsProcessed(state.iterations() * elements);
}
BENCHMARK(BM_SimulatedStreamElement)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
