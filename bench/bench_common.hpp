// Shared harness for the figure benches: the Beskow-like machine profile,
// the weak-scaling sweep, and mean ± stddev reporting over repeated seeds
// (the paper reports the average and standard deviation of ten runs; we
// default to DS_BENCH_REPS=3 — raise it for tighter error bars).
#pragma once

#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ds::bench {

/// Network cost calibration by preset name (--network= / DS_BENCH_NETWORK).
[[nodiscard]] inline net::NetworkConfig network_preset(const std::string& name) {
  if (name == "aries") return net::NetworkConfig::aries_like();
  if (name == "ideal") return net::NetworkConfig::ideal();
  if (name == "slim") return net::NetworkConfig::slim_bisection();
  throw std::invalid_argument("bench: unknown network preset '" + name +
                              "' (expected aries, ideal, or slim)");
}

/// The machine model a bench run simulates: the named cost preset with the
/// named topology plugged in, the taper applied to the tier the family
/// contends on — node up/down links for the two-level machine (its only
/// shared tier), the pod/global tier for fat-tree and dragonfly. Flat
/// ignores the taper (it has no shared links).
[[nodiscard]] inline net::NetworkConfig machine_model(
    const util::BenchOptions& opt) {
  net::NetworkConfig network = network_preset(opt.network);
  network.topology = net::TopologyConfig::named(opt.topology);
  if (network.topology.kind == net::TopologyConfig::Kind::TwoLevel)
    network.topology.node_link_taper = opt.taper;
  else
    network.topology.tier_link_taper = opt.taper;
  return network;
}

/// Cray-XC40-flavoured machine: Aries-like fabric, production-node noise,
/// Lustre-like file system whose OST count grows with the allocation (a
/// larger job writes to more of the file system).
[[nodiscard]] inline mpi::MachineConfig beskow_like(int procs,
                                                    std::uint64_t seed) {
  mpi::MachineConfig config;
  config.world_size = procs;
  config.network = net::NetworkConfig::aries_like();
  config.engine.noise = sim::NoiseConfig::production_node();
  config.engine.seed = seed;
  config.filesystem.num_servers = std::max(16, procs / 8);
  return config;
}

/// beskow_like under the bench options' machine model: same costs and noise,
/// but the fabric gets the swept topology/network/taper. With the defaults
/// (flat/aries/1) this is byte-identical to the two-argument form, so
/// baselines are unchanged unless a sweep is asked for.
[[nodiscard]] inline mpi::MachineConfig beskow_like(
    int procs, std::uint64_t seed, const util::BenchOptions& opt) {
  mpi::MachineConfig config = beskow_like(procs, seed);
  config.network = machine_model(opt);
  return config;
}

/// The paper's weak-scaling x-axis: 32 ... 8192 processes.
[[nodiscard]] inline std::vector<int> scaling_sweep(const util::BenchOptions& opt) {
  std::vector<int> procs;
  const int limit = opt.fast ? std::min(opt.max_procs, 512) : opt.max_procs;
  for (int p = 32; p <= limit; p *= 2) procs.push_back(p);
  return procs;
}

/// Run `measure(procs, seed)` opt.repetitions times; returns the stats.
[[nodiscard]] inline util::RunningStats repeat(
    const util::BenchOptions& opt, int procs,
    const std::function<double(int, std::uint64_t)>& measure) {
  util::RunningStats stats;
  for (int r = 0; r < opt.repetitions; ++r)
    stats.add(measure(procs, opt.seed + static_cast<std::uint64_t>(r) * 1000003ull));
  return stats;
}

inline void print_header(const std::string& title, const std::string& paper_ref,
                         const util::BenchOptions& opt) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("(max_procs=%d reps=%d topology=%s network=%s taper=%g%s; tune "
              "with DS_BENCH_* env or --max-procs= --reps= --topology= "
              "--network= --taper= --fast)\n\n",
              opt.max_procs, opt.repetitions, opt.topology.c_str(),
              opt.network.c_str(), opt.taper, opt.fast ? " FAST" : "");
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  print_header(title, paper_ref, util::BenchOptions::from_env());
}

inline void print_table(const util::Table& table) {
  std::fputs(table.to_text().c_str(), stdout);
  std::printf("\nCSV:\n%s\n", table.to_csv().c_str());
}

}  // namespace ds::bench
