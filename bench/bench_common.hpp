// Shared harness for the figure benches: the Beskow-like machine profile,
// the weak-scaling sweep, and mean ± stddev reporting over repeated seeds
// (the paper reports the average and standard deviation of ten runs; we
// default to DS_BENCH_REPS=3 — raise it for tighter error bars).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "mpi/machine.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ds::bench {

/// Cray-XC40-flavoured machine: Aries-like fabric, production-node noise,
/// Lustre-like file system whose OST count grows with the allocation (a
/// larger job writes to more of the file system).
[[nodiscard]] inline mpi::MachineConfig beskow_like(int procs,
                                                    std::uint64_t seed) {
  mpi::MachineConfig config;
  config.world_size = procs;
  config.network = net::NetworkConfig::aries_like();
  config.engine.noise = sim::NoiseConfig::production_node();
  config.engine.seed = seed;
  config.filesystem.num_servers = std::max(16, procs / 8);
  return config;
}

/// The paper's weak-scaling x-axis: 32 ... 8192 processes.
[[nodiscard]] inline std::vector<int> scaling_sweep(const util::BenchOptions& opt) {
  std::vector<int> procs;
  const int limit = opt.fast ? std::min(opt.max_procs, 512) : opt.max_procs;
  for (int p = 32; p <= limit; p *= 2) procs.push_back(p);
  return procs;
}

/// Run `measure(procs, seed)` opt.repetitions times; returns the stats.
[[nodiscard]] inline util::RunningStats repeat(
    const util::BenchOptions& opt, int procs,
    const std::function<double(int, std::uint64_t)>& measure) {
  util::RunningStats stats;
  for (int r = 0; r < opt.repetitions; ++r)
    stats.add(measure(procs, opt.seed + static_cast<std::uint64_t>(r) * 1000003ull));
  return stats;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  const auto opt = util::BenchOptions::from_env();
  std::printf("(max_procs=%d reps=%d%s; tune with DS_BENCH_MAX_PROCS / "
              "DS_BENCH_REPS / DS_BENCH_FAST)\n\n",
              opt.max_procs, opt.repetitions, opt.fast ? " FAST" : "");
}

inline void print_table(const util::Table& table) {
  std::fputs(table.to_text().c_str(), stdout);
  std::printf("\nCSV:\n%s\n", table.to_csv().c_str());
}

}  // namespace ds::bench
