// Simulator-core hot-path microbench: wall-clock elements/sec and heap
// allocations per streamed element.
//
// The paper's decoupling strategy stands on per-element overhead `o`
// (Eq. 4); this repo's ability to explore exascale-sized scenarios stands
// on how many simulated stream elements per host-second the core pushes.
// This bench drives the simulate-one-element path end to end — stream
// inject, fabric scheduling, event dispatch, mailbox matching, credit
// return — and reports:
//
//  * steady_stream   — the 64-rank streaming scenario (32 producers x 32
//    consumers, Block mapping, credit window): throughput plus heap
//    allocations per eager element in steady state, measured with a
//    counting global-allocator hook and a two-length delta (the longer run
//    re-executes the same steady state, so setup/warmup allocations cancel
//    and any residual is a true per-element cost).
//  * multistream     — 8 concurrent streams between the same 64 ranks,
//    consumed one stream at a time, so each rank's mailbox fills with
//    traffic for the *other* streams: the matching-path stress that a flat
//    per-rank mailbox scans in O(backlog) and context-hashed mailboxes
//    match in O(1). Reported with the same two-length allocation delta as
//    steady_stream.
//  * credit_batching — flow-control message counts at ack_interval 1 vs.
//    the batched default vs. 16, via the fabric's total message counter.
//  * coalesce_budget — fabric messages/element and throughput across frame
//    budgets (0 = per-element transport .. 8 KiB), pinned (no self-tuning),
//    plus the self-tuned default the steady_stream scenario runs with.
//  * obs_enabled     — the steady scenario with the ds::obs layer fully on
//    (span tracing + metrics): the observability overhead contract. Gated
//    at <= 5% eps loss vs. the disabled run, best-of-3 each to damp host
//    noise (tolerance overridable via DS_BENCH_OBS_TOLERANCE).
//
// Writes BENCH_simcore.json (override with DS_BENCH_JSON) for the CI
// artifact. Exits nonzero when steady-state eager elements allocate, when
// enabled-mode observability overhead exceeds its gate, or when any
// scenario loses elements.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/rank.hpp"

// ---- counting allocator hook ----------------------------------------------
// Every global operator new in the process bumps one counter. The bench is
// single-threaded; plain loads/stores would do, but keeping the counter
// trivially racy-free costs nothing.
namespace {
unsigned long long g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_count;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace ds;

constexpr int kWorld = 64;        ///< the 64-rank streaming scenario
constexpr int kProducers = 32;
constexpr int kElementBytes = 64;

struct RunResult {
  double wall_s = 0;
  std::uint64_t elements = 0;       ///< data elements consumed
  unsigned long long allocs = 0;    ///< operator-new calls during the run
  std::uint64_t fabric_messages = 0;
};

[[nodiscard]] mpi::MachineConfig bench_machine(bool obs_on = false) {
  mpi::MachineConfig config;
  config.world_size = kWorld;
  config.engine.stack_bytes = 64 * 1024;
  if (obs_on) config.observability = obs::ObsConfig::all();
  return config;
}

/// Sentinel for run_steady: keep the library-default coalesce budget and
/// self-tuning (what applications get out of the box).
constexpr std::uint32_t kLibraryDefault = 0xFFFFFFFFu;

/// steady_stream: 32 producers block-map onto 32 consumers, each sending
/// `elements_per_producer` real 64-byte eager elements under a credit
/// window — the windowed steady state whose per-element allocation count
/// the delta method isolates. `coalesce_budget` pins the frame budget with
/// self-tuning off; kLibraryDefault runs the out-of-the-box transport.
RunResult run_steady(int elements_per_producer, std::uint32_t ack_interval,
                     std::uint32_t window,
                     std::uint32_t coalesce_budget = kLibraryDefault,
                     bool obs_on = false) {
  RunResult result;
  mpi::Machine machine(bench_machine(obs_on));
  const auto t0 = std::chrono::steady_clock::now();
  const auto allocs0 = g_alloc_count;
  machine.run([&](mpi::Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    stream::ChannelConfig cfg;
    cfg.mapping = stream::ChannelConfig::Mapping::Block;
    cfg.max_inflight = window;
    cfg.ack_interval = ack_interval;
    if (coalesce_budget != kLibraryDefault) {
      cfg.coalesce_budget = coalesce_budget;
      cfg.flow_autotune = false;
    }
    const stream::Channel ch =
        stream::Channel::create(self, self.world(), producer, !producer, cfg);
    std::uint64_t consumed = 0;
    stream::Stream s =
        stream::Stream::attach(ch, mpi::Datatype::bytes(kElementBytes),
                               [&](const stream::StreamElement&) { ++consumed; });
    if (producer) {
      std::byte payload[kElementBytes] = {};
      for (int i = 0; i < elements_per_producer; ++i)
        s.isend(self, mpi::SendBuf{payload, sizeof payload});
      s.terminate(self);
    } else {
      result.elements += s.operate(self);
    }
  });
  result.allocs = g_alloc_count - allocs0;
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  result.fabric_messages = machine.fabric().total_messages();
  return result;
}

/// multistream: 8 concurrent streams over the same 64 ranks. Producers
/// interleave across all streams; consumers drain one stream to exhaustion
/// before the next, so later streams' traffic piles up in the mailbox while
/// the earlier ones are serviced — worst case for flat-mailbox scanning.
RunResult run_multistream(int elements_per_producer_per_stream) {
  constexpr int kStreams = 8;
  RunResult result;
  mpi::Machine machine(bench_machine());
  const auto t0 = std::chrono::steady_clock::now();
  const auto allocs0 = g_alloc_count;
  machine.run([&](mpi::Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    std::vector<stream::Channel> channels;
    std::vector<stream::Stream> streams;
    for (int c = 0; c < kStreams; ++c) {
      stream::ChannelConfig cfg;
      cfg.channel_id = static_cast<std::uint64_t>(c);
      channels.push_back(stream::Channel::create(self, self.world(), producer,
                                                 !producer, cfg));
    }
    for (int c = 0; c < kStreams; ++c)
      streams.push_back(
          stream::Stream::attach(channels[static_cast<std::size_t>(c)],
                                 mpi::Datatype::bytes(kElementBytes), {}));
    if (producer) {
      for (int i = 0; i < elements_per_producer_per_stream; ++i)
        for (auto& s : streams) s.isend_synthetic(self);
      for (auto& s : streams) s.terminate(self);
    } else {
      for (auto& s : streams) result.elements += s.operate(self);
    }
  });
  result.allocs = g_alloc_count - allocs0;
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  result.fabric_messages = machine.fabric().total_messages();
  return result;
}

[[nodiscard]] std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

}  // namespace

int main() {
  const auto opt = util::BenchOptions::from_env();
  bench::print_header(
      "micro_simcore — simulator hot-path throughput",
      "per-element overhead o (Eq. 4) at the simulator level: elements/sec "
      "and heap allocations per eager element in steady state");

  const int e_short = opt.fast ? 1000 : 4000;
  const int e_long = 4 * e_short;
  const int e_multi = opt.fast ? 60 : 150;

  bool ok = true;
  util::Table table({"scenario", "elements", "wall_s", "elements_per_sec",
                     "allocs_per_element", "fabric_msgs"});
  std::string json = "{\"bench\":\"micro_simcore\",\"world\":64,\"scenarios\":[";

  // -- steady_stream: throughput + allocation delta --------------------------
  const RunResult warm = run_steady(e_short, /*ack_interval=*/0, /*window=*/64);
  const RunResult steady = run_steady(e_long, /*ack_interval=*/0, /*window=*/64);
  ok &= warm.elements ==
        static_cast<std::uint64_t>(kProducers) * static_cast<std::uint64_t>(e_short);
  ok &= steady.elements ==
        static_cast<std::uint64_t>(kProducers) * static_cast<std::uint64_t>(e_long);
  const double extra_elements = static_cast<double>(steady.elements - warm.elements);
  // The longer run repeats the same windowed steady state, so every setup,
  // warmup, and container-growth allocation cancels in the difference.
  const double allocs_per_element =
      (static_cast<double>(steady.allocs) - static_cast<double>(warm.allocs)) /
      extra_elements;
  const double steady_eps = static_cast<double>(steady.elements) / steady.wall_s;
  table.add_row({"steady_stream", std::to_string(steady.elements),
                 fmt(steady.wall_s), fmt(steady_eps), fmt(allocs_per_element),
                 std::to_string(steady.fabric_messages)});
  char entry[512];
  std::snprintf(entry, sizeof entry,
                "{\"name\":\"steady_stream\",\"elements\":%llu,\"wall_s\":%.6f,"
                "\"elements_per_sec\":%.1f,\"allocs_per_element\":%.6f,"
                "\"fabric_messages\":%llu}",
                static_cast<unsigned long long>(steady.elements), steady.wall_s,
                steady_eps, allocs_per_element,
                static_cast<unsigned long long>(steady.fabric_messages));
  json += entry;

  // -- multistream: matching under cross-stream backlog ----------------------
  // Same two-length delta as steady_stream, with one caveat: this scenario's
  // mailbox backlog grows with run length by design (consumers drain stream
  // 0 to exhaustion while streams 1..7 pile up), so the delta includes the
  // occasional capacity doubling of those backlog queues — an O(log n) cost,
  // reported for trend-tracking but not gated like steady_stream.
  const RunResult multi_warm = run_multistream(e_multi);
  const RunResult multi = run_multistream(4 * e_multi);
  ok &= multi_warm.elements == static_cast<std::uint64_t>(kProducers) * 8u *
                                   static_cast<std::uint64_t>(e_multi);
  ok &= multi.elements == static_cast<std::uint64_t>(kProducers) * 8u *
                              static_cast<std::uint64_t>(4 * e_multi);
  const double multi_allocs_per_element =
      (static_cast<double>(multi.allocs) - static_cast<double>(multi_warm.allocs)) /
      static_cast<double>(multi.elements - multi_warm.elements);
  const double multi_eps = static_cast<double>(multi.elements) / multi.wall_s;
  table.add_row({"multistream", std::to_string(multi.elements),
                 fmt(multi.wall_s), fmt(multi_eps),
                 fmt(multi_allocs_per_element),
                 std::to_string(multi.fabric_messages)});
  std::snprintf(entry, sizeof entry,
                ",{\"name\":\"multistream\",\"elements\":%llu,\"wall_s\":%.6f,"
                "\"elements_per_sec\":%.1f,\"allocs_per_element\":%.6f,"
                "\"fabric_messages\":%llu}",
                static_cast<unsigned long long>(multi.elements), multi.wall_s,
                multi_eps, multi_allocs_per_element,
                static_cast<unsigned long long>(multi.fabric_messages));
  json += entry;
  json += "],\"credit_batching\":[";

  // -- credit batching: flow-control message count vs. ack_interval ----------
  bool first = true;
  for (const std::uint32_t interval : {1u, 0u, 16u}) {  // 0 = library default
    const RunResult r = run_steady(opt.fast ? 300 : 1000, interval, 16);
    ok &= r.elements == static_cast<std::uint64_t>(kProducers) *
                            static_cast<std::uint64_t>(opt.fast ? 300 : 1000);
    const double msgs_per_element =
        static_cast<double>(r.fabric_messages) / static_cast<double>(r.elements);
    table.add_row({std::string("ack_interval=") +
                       (interval == 0 ? "default" : std::to_string(interval)),
                   std::to_string(r.elements), fmt(r.wall_s),
                   fmt(static_cast<double>(r.elements) / r.wall_s),
                   fmt(msgs_per_element) + " msg/elem",
                   std::to_string(r.fabric_messages)});
    std::snprintf(entry, sizeof entry,
                  "%s{\"ack_interval\":%u,\"elements\":%llu,"
                  "\"fabric_messages\":%llu,\"messages_per_element\":%.4f}",
                  first ? "" : ",", interval,
                  static_cast<unsigned long long>(r.elements),
                  static_cast<unsigned long long>(r.fabric_messages),
                  msgs_per_element);
    json += entry;
    first = false;
  }
  json += "],\"coalesce_budget\":[";

  // -- coalescing: messages/element and throughput vs. frame budget ----------
  // Pinned budgets (self-tuning off) isolate the budget's effect; the last
  // row is the out-of-the-box self-tuned default — the configuration
  // steady_stream above ran with.
  first = true;
  const int e_sweep = opt.fast ? 300 : 1000;
  for (const std::uint32_t budget :
       {0u, 256u, 1024u, stream::ChannelConfig::kDefaultCoalesceBudget, 8192u,
        kLibraryDefault}) {
    const RunResult r = run_steady(e_sweep, /*ack_interval=*/0, /*window=*/64,
                                   budget);
    ok &= r.elements == static_cast<std::uint64_t>(kProducers) *
                            static_cast<std::uint64_t>(e_sweep);
    const double msgs_per_element =
        static_cast<double>(r.fabric_messages) / static_cast<double>(r.elements);
    const std::string label =
        budget == kLibraryDefault
            ? "coalesce=default+tune"
            : "coalesce_budget=" + std::to_string(budget);
    table.add_row({label, std::to_string(r.elements), fmt(r.wall_s),
                   fmt(static_cast<double>(r.elements) / r.wall_s),
                   fmt(msgs_per_element) + " msg/elem",
                   std::to_string(r.fabric_messages)});
    std::snprintf(entry, sizeof entry,
                  "%s{\"coalesce_budget\":%lld,\"self_tuned\":%s,"
                  "\"elements\":%llu,\"elements_per_sec\":%.1f,"
                  "\"fabric_messages\":%llu,\"messages_per_element\":%.4f}",
                  first ? "" : ",",
                  budget == kLibraryDefault
                      ? static_cast<long long>(
                            stream::ChannelConfig::kDefaultCoalesceBudget)
                      : static_cast<long long>(budget),
                  budget == kLibraryDefault ? "true" : "false",
                  static_cast<unsigned long long>(r.elements),
                  static_cast<double>(r.elements) / r.wall_s,
                  static_cast<unsigned long long>(r.fabric_messages),
                  msgs_per_element);
    json += entry;
    first = false;
  }
  json += "],";

  // -- obs_enabled: the observability overhead contract ----------------------
  // Disabled-mode cost is covered by the allocation/eps gates above (the
  // hot path pays one null check per hook). Enabled mode — every blocked
  // wait a span, metrics registry live — must stay within a few percent:
  // best-of-3 on each side damps host scheduling noise.
  const double obs_tolerance =
      util::env_double("DS_BENCH_OBS_TOLERANCE", 0.05);
  double best_off = 0.0, best_on = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const RunResult off = run_steady(e_long, /*ack_interval=*/0, /*window=*/64);
    const RunResult on = run_steady(e_long, /*ack_interval=*/0, /*window=*/64,
                                    kLibraryDefault, /*obs_on=*/true);
    ok &= off.elements == steady.elements && on.elements == steady.elements;
    best_off = std::max(best_off,
                        static_cast<double>(off.elements) / off.wall_s);
    best_on = std::max(best_on, static_cast<double>(on.elements) / on.wall_s);
  }
  const double obs_overhead = best_off > 0 ? 1.0 - best_on / best_off : 0.0;
  table.add_row({"obs_enabled", std::to_string(steady.elements), "-",
                 fmt(best_on), fmt(obs_overhead * 100.0) + "% overhead", "-"});
  std::snprintf(entry, sizeof entry,
                "\"obs_enabled\":{\"elements\":%llu,"
                "\"elements_per_sec_disabled\":%.1f,"
                "\"elements_per_sec_enabled\":%.1f,\"overhead_frac\":%.4f,"
                "\"tolerance\":%.4f}}\n",
                static_cast<unsigned long long>(steady.elements), best_off,
                best_on, obs_overhead, obs_tolerance);
  json += entry;

  bench::print_table(table);

  if (obs_overhead > obs_tolerance) {
    std::printf("\nFAIL: observability enabled-mode overhead %.1f%% exceeds "
                "%.1f%% eps gate\n",
                obs_overhead * 100.0, obs_tolerance * 100.0);
    ok = false;
  } else {
    std::printf("\nobservability enabled-mode overhead: %.1f%% of eps "
                "(gate %.0f%%, PASS)\n",
                obs_overhead * 100.0, obs_tolerance * 100.0);
  }

  // The acceptance gates: the windowed eager steady state must not touch
  // the heap (a regression in the pooled hot path), and the coalesced
  // transport must keep the fabric message count well below one message per
  // element (a regression in frame packing or the self-tuning loop).
  if (allocs_per_element > 0.0005) {
    std::printf("\nFAIL: steady-state eager elements allocate "
                "(%.6f allocs/element)\n",
                allocs_per_element);
    ok = false;
  } else {
    std::printf("\nsteady-state allocations per eager element: %.6f (PASS)\n",
                allocs_per_element);
  }
  const double steady_msgs_per_element =
      static_cast<double>(steady.fabric_messages) /
      static_cast<double>(steady.elements);
  if (steady_msgs_per_element > 0.15) {
    std::printf("FAIL: coalescing regressed — %.4f fabric messages/element "
                "on steady_stream (gate: 0.15)\n",
                steady_msgs_per_element);
    ok = false;
  } else {
    std::printf("steady-state fabric messages per element: %.4f (PASS)\n",
                steady_msgs_per_element);
  }

  const std::string json_path =
      util::env_string("DS_BENCH_JSON", "BENCH_simcore.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("JSON written to %s\n", json_path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", json_path.c_str());
    ok = false;
  }

  std::printf("micro_simcore check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
