// Figure 8: weak-scaling of the particle I/O in the PIC code.
// RefColl: MPI_File_write_all with per-dump file-view recomputation.
// RefShared: MPI_File_write_shared (shared-pointer lock per record).
// Decoupling: stream to an I/O group that buffers aggressively and issues
// few large writes (alpha = 6.25%).
//
// Paper result: at 8,192 procs the decoupled I/O is ~12x faster than
// write_shared and ~3x faster than write_all; the benefit appears from 64
// procs on and grows with scale.
#include "apps/pic/pic_io.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const auto opt = util::BenchOptions::parse(argc, argv);
  bench::print_header("Fig. 8 — iPIC3D particle I/O weak scaling",
                      "per-step particle dumps; write_all vs write_shared vs "
                      "decoupled buffered I/O group", opt);

  util::Table table({"procs", "ref_coll_s", "ref_shared_s", "decoupling_s",
                     "shared/dec", "coll/dec"});

  for (const int procs : bench::scaling_sweep(opt)) {
    auto run = [&](apps::pic::IoVariant variant) {
      return bench::repeat(opt, procs, [&](int p, std::uint64_t seed) {
        apps::pic::PicIoConfig cfg;
        cfg.particles_per_rank = 250'000;
        cfg.steps = 3;
        cfg.stride = 16;
        cfg.batch_particles = 16'384;
        // Full iPIC3D step (mover + moments + field) per particle — the
        // compute window the decoupled I/O group hides its writes behind.
        cfg.ns_mover_per_particle = 400.0;
        cfg.seed = seed;
        return apps::pic::run_pic_io(variant, cfg, bench::beskow_like(p, seed, opt))
            .seconds;
      });
    };
    const auto coll = run(apps::pic::IoVariant::Collective);
    const auto shared = run(apps::pic::IoVariant::Shared);
    const auto dec = run(apps::pic::IoVariant::Decoupled);
    table.add_row({std::to_string(procs),
                   util::Table::fmt_mean_std(coll.mean(), coll.stddev()),
                   util::Table::fmt_mean_std(shared.mean(), shared.stddev()),
                   util::Table::fmt_mean_std(dec.mean(), dec.stddev()),
                   util::Table::fmt(shared.mean() / dec.mean()),
                   util::Table::fmt(coll.mean() / dec.mean())});
    std::printf("  procs=%d done\n", procs);
  }
  bench::print_table(table);
  return 0;
}
