// Ablation: stream-element granularity S (paper Eq. 4).
//
// Fine-grained elements pipeline better and absorb imbalance but pay
// (D/S)*o injection overhead; coarse elements amortize overhead but delay
// the consumer. The sweep shows the interior optimum the model predicts,
// and prints the Eq. 4 prediction next to the simulation.
#include <cstdio>

#include "apps/wordcount/wordcount.hpp"
#include "bench/bench_common.hpp"
#include "model/perf_model.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const auto opt = util::BenchOptions::parse(argc, argv);
  bench::print_header("Ablation — stream granularity S (Eq. 4)",
                      "MapReduce decoupled on 128 procs, block size swept "
                      "from 1 MB to 256 MB", opt);

  const int procs = std::min(128, opt.max_procs);
  util::Table table({"block_bytes", "elements", "decoupled_s"});

  for (const std::uint64_t block : {1ull << 20, 4ull << 20, 16ull << 20,
                                    32ull << 20, 64ull << 20, 256ull << 20}) {
    std::uint64_t elements = 0;
    const auto stats = bench::repeat(opt, procs, [&](int p, std::uint64_t seed) {
      apps::wordcount::WordcountConfig cfg;
      cfg.corpus.seed = seed;
      cfg.block_bytes = block;
      cfg.stride = 16;
      // Exaggerate the per-element cost so the overhead side of the
      // trade-off is visible at this reduced scale.
      const auto result = apps::wordcount::run_decoupled(
          cfg, bench::beskow_like(p, seed, opt));
      elements = result.elements_streamed;
      return result.seconds;
    });
    table.add_row({std::to_string(block), std::to_string(elements),
                   util::Table::fmt_mean_std(stats.mean(), stats.stddev())});
  }
  bench::print_table(table);

  // The analytic optimum for a matching workload.
  model::TwoOpWorkload w;
  w.t_w0 = 40.0;
  w.t_w1 = 30.0;
  w.t_sigma = 4.0;
  w.alpha = 1.0 / 16.0;
  w.t_w1_decoupled = 1.5;
  w.total_data = 650e6;
  w.overhead_per_element = 1.05e-6;  // inject + send overhead
  const double best =
      model::optimal_granularity(w, 0.02, 64e3, w.total_data);
  std::printf("Eq. 4 optimal granularity for the matching workload: %.1f MB\n",
              best / 1e6);
  return 0;
}
