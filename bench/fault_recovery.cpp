// Fault-recovery bench: time-to-recover and goodput under an injected
// consumer crash (the ds::resilience subsystem end to end).
//
// Three runs of the same 16-producer / 8-consumer credit-windowed stream:
//
//  * baseline        — resilience off: the PR 4 transport as-is, the cost
//    reference for the resilience machinery.
//  * fault_free      — stream epochs on (checkpoint_interval, automatic
//    durability): measures the fault-free overhead (virtual makespan delta
//    vs. baseline) and the producers' peak replay retention, which must
//    stay bounded by the open epoch plus credit-window slack.
//  * consumer_crash  — one consumer is fail-stopped a third of the way
//    through the fault-free makespan: measures recovery (makespan delta vs.
//    fault_free), replayed elements, and verifies the exactly-once contract
//    — every element reaches some consumer, no element reaches any single
//    consumer twice, and per-producer replay stays within
//    checkpoint_interval + credit-window slack.
//
// With --churn a fourth scenario runs the elastic-membership stress: ten
// crash/rejoin cycles sweep across the consumer group while producers keep
// streaming at a fixed pace. Every respawned incarnation re-attaches to the
// live channel (Channel::attach, no collective), producers hand its flows
// back voluntarily, and the run is gated on exactly-once delivery per
// consumer view (0 duplicates), full coverage across all views, and churn
// goodput >= 80% of the same paced run without faults.
//
// With --setup-crash another scenario crashes a consumer one nanosecond in
// — strictly inside Channel::create's role exchange. The failure-aware
// collectives plus the creation-time agreement rebuild the channel over the
// surviving membership (no failover, no replay: the victim was never a
// member), and the run is gated on exactly-once delivery, full coverage,
// and a bounded virtual-time cost over the fault-free resilient run.
//
// Emits BENCH_fault_recovery.json (override with DS_FAULT_BENCH_JSON) for
// the CI artifact; exits nonzero when any contract above fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/datatype.hpp"
#include "mpi/rank.hpp"
#include "resilience/fault.hpp"

namespace {

using namespace ds;

constexpr int kProducers = 16;
constexpr int kConsumers = 8;
constexpr std::uint32_t kInterval = 256;
constexpr std::uint32_t kWindow = 64;
constexpr int kVictim = 5;  ///< consumer index to crash (a tree-safe leaf)

struct RunResult {
  double wall_s = 0;
  double virtual_s = 0;
  std::uint64_t delivered = 0;       ///< operator invocations, all consumers
  std::uint64_t replayed = 0;        ///< re-posted elements, all producers
  std::uint64_t max_replayed_one = 0;///< worst single producer
  std::uint64_t retained_max = 0;    ///< peak replay retention, any producer
  std::uint64_t durable_acks = 0;
  std::uint64_t duplicates_filtered = 0;
  std::uint32_t failovers = 0;
  bool exactly_once = true;   ///< no element twice at any single consumer
  bool complete = true;       ///< every element seen somewhere
};

[[nodiscard]] mpi::MachineConfig bench_machine() {
  mpi::MachineConfig config;
  config.world_size = kProducers + kConsumers;
  config.engine.stack_bytes = 64 * 1024;
  return config;
}

[[nodiscard]] std::uint64_t element_id(int producer, int i) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(producer))
          << 32) |
         static_cast<std::uint32_t>(i);
}

RunResult run_stream(int elements_per_producer, bool resilient,
                     util::SimTime crash_at, bool setup_crash = false) {
  RunResult result;
  auto config = bench_machine();
  if (setup_crash)
    config.faults.crash_during_setup(kProducers + kVictim);
  else if (crash_at > 0)
    config.faults.crash(kProducers + kVictim, crash_at);
  mpi::Machine machine(config);
  // Per-consumer delivery records for the exactly-once / coverage checks.
  std::vector<std::vector<std::uint64_t>> delivered(
      static_cast<std::size_t>(kConsumers));
  const auto t0 = std::chrono::steady_clock::now();
  const util::SimTime makespan = machine.run([&](mpi::Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    stream::ChannelConfig cfg;
    cfg.mapping = stream::ChannelConfig::Mapping::Block;
    cfg.max_inflight = kWindow;
    if (resilient) cfg.checkpoint_interval = kInterval;
    const stream::Channel ch =
        stream::Channel::create(self, self.world(), producer, !producer, cfg);
    const int me = ch.my_consumer_index(self);
    stream::Stream s = stream::Stream::attach(
        ch, mpi::Datatype::int64(), [&](const stream::StreamElement& el) {
          std::uint64_t id = 0;
          std::memcpy(&id, el.data, sizeof id);
          delivered[static_cast<std::size_t>(me)].push_back(id);
        });
    if (producer) {
      for (int i = 0; i < elements_per_producer; ++i) {
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, mpi::SendBuf::of(&id, 1));
        if (resilient)
          result.retained_max =
              std::max(result.retained_max, s.retained_elements());
      }
      s.terminate(self);
      result.replayed += s.replayed_elements();
      result.max_replayed_one =
          std::max(result.max_replayed_one, s.replayed_elements());
      result.failovers += s.failovers();
    } else {
      (void)s.operate(self);
      result.durable_acks += s.durable_acks_sent();
      result.duplicates_filtered += s.duplicates_dropped();
    }
  });
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  result.virtual_s = util::to_seconds(makespan);

  // Contract checks: exactly-once per consumer, full coverage overall.
  std::set<std::uint64_t> seen;
  for (const auto& d : delivered) {
    std::vector<std::uint64_t> sorted = d;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      result.exactly_once = false;
    seen.insert(sorted.begin(), sorted.end());
    result.delivered += d.size();
  }
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < elements_per_producer; ++i)
      if (!seen.count(element_id(p, i))) result.complete = false;
  return result;
}

// ---- churn: repeated crash/rejoin cycles under a paced stream -------------

constexpr int kChurnCycles = 10;
/// Incarnation views kept per consumer slot (cycles revisit victims, so a
/// slot can run its third life; anything beyond folds into the last view).
constexpr int kMaxIncarnations = 4;

struct ChurnResult {
  double wall_s = 0;
  double virtual_s = 0;
  std::uint64_t delivered = 0;   ///< operator invocations, all views
  std::uint64_t unique = 0;      ///< distinct elements across all views
  std::uint64_t replayed = 0;
  std::uint64_t duplicates_filtered = 0;
  std::uint32_t failovers = 0;
  std::uint32_t rebalances = 0;  ///< voluntary handbacks (rejoins observed)
  int rejoined_views = 0;        ///< incarnation>0 views that saw elements
  bool exactly_once = true;      ///< no element twice within any single view
  bool complete = true;          ///< every element in some view
};

/// One paced run: each producer spaces its sends by a fixed compute step so
/// the producing window is long enough for every churn cycle to land inside
/// it. `inject` schedules kChurnCycles crash/restart pairs sweeping over
/// consumers 1..kConsumers-1 (slot 0 stays up so the machine is never
/// consumer-empty); the same pacing without faults is the goodput reference.
ChurnResult run_churn(int elements_per_producer, bool inject) {
  ChurnResult result;
  auto config = bench_machine();
  if (inject) {
    for (int k = 0; k < kChurnCycles; ++k) {
      const int victim = kProducers + 1 + (k % (kConsumers - 1));
      const util::SimTime crash_at = util::microseconds(200 + 300 * k);
      config.faults.crash(victim, crash_at)
          .restart(victim, crash_at + util::microseconds(140));
    }
  }
  mpi::Machine machine(config);
  // Delivery views are per (consumer slot, incarnation): a dead
  // incarnation's undurable tail is legitimately re-delivered to whoever
  // owns the flow next, so exactly-once holds within each view, and
  // coverage over the union of views.
  std::vector<std::vector<std::uint64_t>> views(
      static_cast<std::size_t>(kConsumers * kMaxIncarnations));
  const auto t0 = std::chrono::steady_clock::now();
  const util::SimTime makespan = machine.run([&](mpi::Rank& self) {
    const bool producer = self.world_rank() < kProducers;
    const int inc = self.machine().incarnation(self.world_rank());
    stream::ChannelConfig cfg;
    cfg.mapping = stream::ChannelConfig::Mapping::Block;
    cfg.max_inflight = kWindow;
    cfg.checkpoint_interval = kInterval;
    // A respawned incarnation missed the original collective: it re-admits
    // itself through the non-collective attach against the live channel.
    const stream::Channel ch =
        inc > 0 ? stream::Channel::attach(
                      self, self.world(),
                      [](int r) {
                        return static_cast<std::int8_t>(r < kProducers ? 1 : 2);
                      },
                      cfg)
                : stream::Channel::create(self, self.world(), producer,
                                          !producer, cfg);
    const int me = ch.my_consumer_index(self);
    const std::size_t view = static_cast<std::size_t>(
        me * kMaxIncarnations + std::min(inc, kMaxIncarnations - 1));
    stream::Stream s = stream::Stream::attach(
        ch, mpi::Datatype::int64(), [&](const stream::StreamElement& el) {
          std::uint64_t id = 0;
          std::memcpy(&id, el.data, sizeof id);
          views[view].push_back(id);
        });
    if (producer) {
      for (int i = 0; i < elements_per_producer; ++i) {
        self.compute(util::microseconds(2));  // the pacing: churn lands mid-stream
        const std::uint64_t id = element_id(self.world_rank(), i);
        s.isend(self, mpi::SendBuf::of(&id, 1));
      }
      s.terminate(self);
      result.replayed += s.replayed_elements();
      result.failovers += s.failovers();
      result.rebalances += s.rebalances();
    } else {
      (void)s.operate(self);
      result.duplicates_filtered += s.duplicates_dropped();
    }
  });
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.virtual_s = util::to_seconds(makespan);

  std::set<std::uint64_t> seen;
  for (std::size_t v = 0; v < views.size(); ++v) {
    std::vector<std::uint64_t> sorted = views[v];
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      result.exactly_once = false;
    if (!sorted.empty() && v % kMaxIncarnations != 0) ++result.rejoined_views;
    seen.insert(sorted.begin(), sorted.end());
    result.delivered += sorted.size();
  }
  result.unique = seen.size();
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < elements_per_producer; ++i)
      if (!seen.count(element_id(p, i))) result.complete = false;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --churn / --setup-crash are ours, not BenchOptions'; strip them before
  // the strict parse.
  bool churn = false;
  bool setup_crash = false;
  std::vector<char*> args(argv, argv + argc);
  args.erase(std::remove_if(args.begin(), args.end(),
                            [&](char* a) {
                              if (std::strcmp(a, "--churn") == 0) {
                                churn = true;
                                return true;
                              }
                              if (std::strcmp(a, "--setup-crash") == 0) {
                                setup_crash = true;
                                return true;
                              }
                              return false;
                            }),
             args.end());
  const auto opt =
      util::BenchOptions::parse(static_cast<int>(args.size()), args.data());
  bench::print_header(
      "fault_recovery — consumer-crash recovery time and goodput",
      "ds::resilience: stream epochs, bounded replay, consumer failover "
      "(exascale-readiness: surviving rank loss mid-run)", opt);

  const int elements = opt.fast ? 2000 : 8000;
  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) *
      static_cast<std::uint64_t>(elements);
  bool ok = true;

  util::Table table({"scenario", "delivered", "virtual_ms", "wall_s",
                     "replayed", "retained_max", "notes"});
  auto ms = [](double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", s * 1e3);
    return std::string(buf);
  };

  // -- baseline: resilience off ---------------------------------------------
  const RunResult baseline = run_stream(elements, /*resilient=*/false, 0);
  ok &= baseline.delivered == total && baseline.exactly_once;
  table.add_row({"baseline_no_resilience", std::to_string(baseline.delivered),
                 ms(baseline.virtual_s), ms(baseline.wall_s / 1e3), "0", "0",
                 "reference"});

  // -- resilient, fault-free: overhead + bounded retention ------------------
  const RunResult fault_free = run_stream(elements, /*resilient=*/true, 0);
  ok &= fault_free.delivered == total && fault_free.exactly_once &&
        fault_free.complete;
  // Peak retention: the open epoch plus credit-window and frame slack.
  const std::uint64_t retention_bound = kInterval + 2 * kWindow + 128;
  if (fault_free.retained_max > retention_bound) {
    std::printf("FAIL: fault-free replay retention %llu exceeds bound %llu\n",
                static_cast<unsigned long long>(fault_free.retained_max),
                static_cast<unsigned long long>(retention_bound));
    ok = false;
  }
  const double overhead_pct =
      baseline.virtual_s > 0
          ? 100.0 * (fault_free.virtual_s - baseline.virtual_s) /
                baseline.virtual_s
          : 0.0;
  char note[64];
  std::snprintf(note, sizeof note, "overhead %.1f%%, %llu acks", overhead_pct,
                static_cast<unsigned long long>(fault_free.durable_acks));
  table.add_row({"resilient_fault_free", std::to_string(fault_free.delivered),
                 ms(fault_free.virtual_s), ms(fault_free.wall_s / 1e3), "0",
                 std::to_string(fault_free.retained_max), note});

  // -- consumer crash a third of the way through ----------------------------
  const util::SimTime crash_at =
      util::from_seconds(fault_free.virtual_s / 3.0);
  const RunResult crash = run_stream(elements, /*resilient=*/true, crash_at);
  // Coverage counts durable deliveries at the dead consumer too, so the
  // union check holds; exactly-once is per surviving consumer view.
  ok &= crash.exactly_once && crash.complete;
  if (crash.failovers == 0 || crash.replayed == 0) {
    std::printf("FAIL: the crash did not exercise failover "
                "(failovers=%u replayed=%llu)\n",
                crash.failovers,
                static_cast<unsigned long long>(crash.replayed));
    ok = false;
  }
  // Acceptance bound: per-producer replay <= checkpoint_interval + credit
  // window (+ one frame of slack for the element cap).
  const std::uint64_t replay_bound = kInterval + kWindow + 128;
  if (crash.max_replayed_one > replay_bound) {
    std::printf("FAIL: replayed %llu elements from one producer, bound %llu\n",
                static_cast<unsigned long long>(crash.max_replayed_one),
                static_cast<unsigned long long>(replay_bound));
    ok = false;
  }
  const double recovery_s = crash.virtual_s - fault_free.virtual_s;
  std::snprintf(note, sizeof note, "recovery %.3f ms, %u failovers",
                recovery_s * 1e3, crash.failovers);
  table.add_row({"consumer_crash", std::to_string(crash.delivered),
                 ms(crash.virtual_s), ms(crash.wall_s / 1e3),
                 std::to_string(crash.replayed),
                 std::to_string(crash.max_replayed_one), note});

  // -- setup crash: a consumer dies inside Channel::create ------------------
  RunResult setup{};
  double rebuild_ratio = 0.0;
  if (setup_crash) {
    setup = run_stream(elements, /*resilient=*/true, 0, /*setup_crash=*/true);
    // The victim died before membership settled, so the channel is born over
    // the survivors: delivery must be complete and exactly-once without any
    // failover or replay ever triggering — the repair happened at setup.
    ok &= setup.exactly_once && setup.complete && setup.delivered == total;
    if (setup.failovers != 0 || setup.replayed != 0) {
      std::printf(
          "FAIL: setup crash leaked into the streaming phase "
          "(failovers=%u replayed=%llu; expected the rebuilt membership to "
          "exclude the victim)\n",
          setup.failovers, static_cast<unsigned long long>(setup.replayed));
      ok = false;
    }
    // Recovery-time gate: one retried role exchange plus the agreement, and
    // the same element volume spread over one fewer consumer. Block mapping
    // concentrates at most one extra producer on a consumer, so the makespan
    // must stay within 2x of the fault-free resilient run.
    rebuild_ratio = fault_free.virtual_s > 0
                        ? setup.virtual_s / fault_free.virtual_s
                        : 0.0;
    if (rebuild_ratio > 2.0) {
      std::printf("FAIL: setup-crash makespan %.3f ms is %.2fx the "
                  "fault-free run (bound 2x)\n",
                  setup.virtual_s * 1e3, rebuild_ratio);
      ok = false;
    }
    std::snprintf(note, sizeof note, "rebuild %.2fx fault-free, %u failovers",
                  rebuild_ratio, setup.failovers);
    table.add_row({"setup_crash", std::to_string(setup.delivered),
                   ms(setup.virtual_s), ms(setup.wall_s / 1e3),
                   std::to_string(setup.replayed), "-", note});
  }

  // -- churn: ten crash/rejoin cycles under a paced stream ------------------
  ChurnResult churn_ref, churned;
  double goodput_ratio = 1.0;
  if (churn) {
    const int churn_elements = opt.fast ? 2000 : 4000;
    churn_ref = run_churn(churn_elements, /*inject=*/false);
    churned = run_churn(churn_elements, /*inject=*/true);
    ok &= churn_ref.exactly_once && churn_ref.complete;
    ok &= churned.exactly_once && churned.complete;
    if (churned.failovers == 0 || churned.rebalances == 0 ||
        churned.rejoined_views == 0) {
      std::printf(
          "FAIL: churn did not exercise rejoin (failovers=%u rebalances=%u "
          "rejoined_views=%d)\n",
          churned.failovers, churned.rebalances, churned.rejoined_views);
      ok = false;
    }
    // Goodput gate: useful-work rate (distinct elements per virtual second)
    // under churn must hold >= 80% of the same paced run without faults.
    const double ref_goodput =
        churn_ref.virtual_s > 0
            ? static_cast<double>(churn_ref.unique) / churn_ref.virtual_s
            : 0.0;
    const double churn_goodput =
        churned.virtual_s > 0
            ? static_cast<double>(churned.unique) / churned.virtual_s
            : 0.0;
    goodput_ratio = ref_goodput > 0 ? churn_goodput / ref_goodput : 0.0;
    if (goodput_ratio < 0.80) {
      std::printf("FAIL: churn goodput %.1f%% of fault-free (floor 80%%)\n",
                  goodput_ratio * 100.0);
      ok = false;
    }
    std::snprintf(note, sizeof note, "%d cycles, goodput %.0f%%, %u handbacks",
                  kChurnCycles, goodput_ratio * 100.0, churned.rebalances);
    table.add_row({"churn_fault_free", std::to_string(churn_ref.delivered),
                   ms(churn_ref.virtual_s), ms(churn_ref.wall_s / 1e3), "0",
                   "0", "paced reference"});
    table.add_row({"churn", std::to_string(churned.delivered),
                   ms(churned.virtual_s), ms(churned.wall_s / 1e3),
                   std::to_string(churned.replayed), "-", note});
  }

  bench::print_table(table);

  // -- JSON artifact --------------------------------------------------------
  const char* path = std::getenv("DS_FAULT_BENCH_JSON");
  if (path == nullptr) path = "BENCH_fault_recovery.json";
  if (FILE* f = std::fopen(path, "w")) {
    std::fprintf(
        f,
        "{\"bench\":\"fault_recovery\",\"world\":%d,\"producers\":%d,"
        "\"consumers\":%d,\"elements_per_producer\":%d,"
        "\"checkpoint_interval\":%u,\"max_inflight\":%u,\"scenarios\":["
        "{\"name\":\"baseline_no_resilience\",\"virtual_s\":%.9f,"
        "\"wall_s\":%.6f,\"delivered\":%llu},"
        "{\"name\":\"resilient_fault_free\",\"virtual_s\":%.9f,"
        "\"wall_s\":%.6f,\"delivered\":%llu,\"retained_max\":%llu,"
        "\"durable_acks\":%llu,\"overhead_pct\":%.3f},"
        "{\"name\":\"consumer_crash\",\"virtual_s\":%.9f,\"wall_s\":%.6f,"
        "\"delivered\":%llu,\"replayed_elements\":%llu,"
        "\"max_replayed_one_producer\":%llu,\"replay_bound\":%llu,"
        "\"recovery_virtual_s\":%.9f,\"failovers\":%u,"
        "\"duplicates_filtered\":%llu,\"goodput_eps_virtual\":%.1f}",
        kProducers + kConsumers, kProducers, kConsumers, elements, kInterval,
        kWindow, baseline.virtual_s, baseline.wall_s,
        static_cast<unsigned long long>(baseline.delivered),
        fault_free.virtual_s, fault_free.wall_s,
        static_cast<unsigned long long>(fault_free.delivered),
        static_cast<unsigned long long>(fault_free.retained_max),
        static_cast<unsigned long long>(fault_free.durable_acks), overhead_pct,
        crash.virtual_s, crash.wall_s,
        static_cast<unsigned long long>(crash.delivered),
        static_cast<unsigned long long>(crash.replayed),
        static_cast<unsigned long long>(crash.max_replayed_one),
        static_cast<unsigned long long>(replay_bound), recovery_s,
        crash.failovers,
        static_cast<unsigned long long>(crash.duplicates_filtered),
        crash.virtual_s > 0
            ? static_cast<double>(crash.delivered) / crash.virtual_s
            : 0.0);
    if (setup_crash)
      std::fprintf(
          f,
          ",{\"name\":\"setup_crash\",\"virtual_s\":%.9f,\"wall_s\":%.6f,"
          "\"delivered\":%llu,\"rebuild_ratio\":%.4f,\"failovers\":%u,"
          "\"replayed_elements\":%llu,\"exactly_once\":%d,\"complete\":%d}",
          setup.virtual_s, setup.wall_s,
          static_cast<unsigned long long>(setup.delivered), rebuild_ratio,
          setup.failovers, static_cast<unsigned long long>(setup.replayed),
          setup.exactly_once ? 1 : 0, setup.complete ? 1 : 0);
    if (churn)
      std::fprintf(
          f,
          ",{\"name\":\"churn_fault_free\",\"virtual_s\":%.9f,"
          "\"wall_s\":%.6f,\"delivered\":%llu,\"unique\":%llu},"
          "{\"name\":\"churn\",\"cycles\":%d,\"virtual_s\":%.9f,"
          "\"wall_s\":%.6f,\"delivered\":%llu,\"unique\":%llu,"
          "\"replayed_elements\":%llu,\"failovers\":%u,\"rebalances\":%u,"
          "\"rejoined_views\":%d,\"duplicates_filtered\":%llu,"
          "\"exactly_once\":%d,\"complete\":%d,\"goodput_ratio\":%.4f}",
          churn_ref.virtual_s, churn_ref.wall_s,
          static_cast<unsigned long long>(churn_ref.delivered),
          static_cast<unsigned long long>(churn_ref.unique), kChurnCycles,
          churned.virtual_s, churned.wall_s,
          static_cast<unsigned long long>(churned.delivered),
          static_cast<unsigned long long>(churned.unique),
          static_cast<unsigned long long>(churned.replayed), churned.failovers,
          churned.rebalances, churned.rejoined_views,
          static_cast<unsigned long long>(churned.duplicates_filtered),
          churned.exactly_once ? 1 : 0, churned.complete ? 1 : 0,
          goodput_ratio);
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("JSON written to %s\n", path);
  }

  std::printf("fault_recovery check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
