// Figure 9 (repo extension): termination-message scaling for Directed
// channels.
//
// The seed library broadcast a term message from every producer to every
// consumer under the Directed/RoundRobin mappings — O(P*C) messages, and
// O(C) serialized sends on each terminating producer. The aggregated tree
// protocol sends one term per producer to an aggregator consumer, which
// fans the collective term down a binary tree: O(P + C) messages total,
// one send per producer, and an O(log C) critical path.
//
// This bench sweeps the consumer count for P = 1 and P = C/4 producers,
// counts the actual term messages sent by every rank, and reports the tree
// depth. It asserts the scaling claim (producer terms independent of C,
// aggregation path logarithmic in C) and exits nonzero on violation, so CI
// smoke runs track the trend per PR. Alongside the table it writes
// fig9_termination.json (override the path with DS_BENCH_JSON) for
// artifact upload.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/rank.hpp"

namespace {

using namespace ds;

struct TermCounts {
  std::uint64_t producer_terms = 0;      ///< sum over producers
  std::uint64_t max_producer_terms = 0;  ///< worst single producer
  std::uint64_t consumer_terms = 0;      ///< tree fan-out, sum over consumers
  std::uint64_t max_consumer_terms = 0;  ///< worst single consumer
  std::uint64_t consumed = 0;            ///< data elements delivered
  int tree_depth = 0;
};

/// Run one Directed channel of `producers` x `consumers`; every producer
/// sends `elements` directed elements, then terminates. Returns the term
/// message counters observed on every rank.
TermCounts run_shape(int producers, int consumers, int elements) {
  TermCounts counts;
  const int world = producers + consumers;
  mpi::MachineConfig config;
  config.world_size = world;
  config.engine.stack_bytes = 64 * 1024;
  mpi::Machine machine(config);
  machine.run([&](mpi::Rank& self) {
    const int me = self.world_rank();
    const bool producer = me < producers;
    stream::ChannelConfig cfg;
    cfg.mapping = stream::ChannelConfig::Mapping::Directed;
    const stream::Channel ch =
        stream::Channel::create(self, self.world(), producer, !producer, cfg);
    stream::Stream s = stream::Stream::attach(ch, mpi::Datatype::bytes(64), {});
    if (producer) {
      for (int i = 0; i < elements; ++i)
        s.isend_to(self, (me + i) % consumers, mpi::SendBuf::synthetic(64));
      s.terminate(self);
      counts.producer_terms += s.term_messages_sent();
      counts.max_producer_terms =
          std::max(counts.max_producer_terms, s.term_messages_sent());
    } else {
      counts.consumed += s.operate(self);
      counts.consumer_terms += s.term_messages_sent();
      counts.max_consumer_terms =
          std::max(counts.max_consumer_terms, s.term_messages_sent());
      counts.tree_depth = ch.term_tree_depth();
    }
  });
  return counts;
}

[[nodiscard]] int log2_ceil(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = util::BenchOptions::parse(argc, argv);
  bench::print_header(
      "Fig. 9 — Directed termination scaling",
      "term messages vs consumer count: per-producer broadcast O(P*C) vs "
      "aggregated tree O(P + C), critical path O(log C)", opt);

  util::Table table({"consumers", "producers", "terms_total", "terms_legacy",
                     "max_per_producer", "max_per_consumer", "tree_depth",
                     "depth_bound"});
  std::string json = "{\"bench\":\"fig9_termination\",\"series\":[";
  bool ok = true;
  bool first = true;

  const int max_consumers = opt.fast ? 256 : 1024;
  constexpr int kElementsPerProducer = 4;
  for (int consumers = 4; consumers <= max_consumers; consumers *= 4) {
    for (const int producers : {1, std::max(1, consumers / 4)}) {
      const TermCounts counts =
          run_shape(producers, consumers, kElementsPerProducer);
      const std::uint64_t total = counts.producer_terms + counts.consumer_terms;
      const auto legacy = static_cast<std::uint64_t>(producers) *
                          static_cast<std::uint64_t>(consumers);
      const int depth_bound = log2_ceil(consumers + 1);

      // The scaling claims this bench exists to guard:
      //  * a terminating producer sends exactly one term, however many
      //    consumers the channel has (the seed sent C);
      //  * the fan-out tree keeps every consumer's share constant (<= 2)
      //    and the aggregation path logarithmic in C;
      //  * no element is lost to the protocol change.
      ok &= counts.max_producer_terms == 1;
      ok &= counts.max_consumer_terms <= 2;
      ok &= counts.tree_depth <= depth_bound;
      ok &= counts.consumed == static_cast<std::uint64_t>(producers) *
                                   static_cast<std::uint64_t>(kElementsPerProducer);

      table.add_row({std::to_string(consumers), std::to_string(producers),
                     std::to_string(total), std::to_string(legacy),
                     std::to_string(counts.max_producer_terms),
                     std::to_string(counts.max_consumer_terms),
                     std::to_string(counts.tree_depth),
                     std::to_string(depth_bound)});
      char entry[256];
      std::snprintf(entry, sizeof entry,
                    "%s{\"consumers\":%d,\"producers\":%d,\"terms_total\":%llu,"
                    "\"terms_legacy\":%llu,\"max_per_producer\":%llu,"
                    "\"max_per_consumer\":%llu,\"tree_depth\":%d}",
                    first ? "" : ",", consumers, producers,
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(legacy),
                    static_cast<unsigned long long>(counts.max_producer_terms),
                    static_cast<unsigned long long>(counts.max_consumer_terms),
                    counts.tree_depth);
      json += entry;
      first = false;
    }
    std::printf("  consumers=%d done\n", consumers);
  }
  json += "]}\n";

  bench::print_table(table);

  const std::string json_path =
      util::env_string("DS_BENCH_JSON", "fig9_termination.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nJSON written to %s\n", json_path.c_str());
  } else {
    std::printf("\nWARNING: could not write %s\n", json_path.c_str());
    ok = false;
  }

  std::printf("termination scaling check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
