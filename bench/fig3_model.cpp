// Figure 3: the conceptual comparison of the three execution models —
// conventional staged, nonblocking, decoupled — realized both analytically
// (Eqs. 1-4) and as a simulated synthetic two-operation application on four
// ranks, printing the same three timelines the paper sketches.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/decouple.hpp"
#include "model/perf_model.hpp"
#include "mpi/rank.hpp"

namespace {

using namespace ds;

constexpr int kRanks = 4;
constexpr int kRounds = 6;
constexpr util::SimTime kOp0 = util::milliseconds(10);   // red: computation
constexpr util::SimTime kOp1 = util::milliseconds(4);    // blue: second op
constexpr std::size_t kOp1Bytes = 64 * 1024;

util::BenchOptions g_opt;  ///< machine-model sweep (--topology= etc.)

mpi::MachineConfig machine_config(std::uint64_t seed) {
  mpi::MachineConfig cfg = bench::beskow_like(kRanks, seed, g_opt);
  cfg.engine.noise = sim::NoiseConfig{0.25, 50.0, util::microseconds(600)};
  cfg.engine.record_trace = true;
  return cfg;
}

/// (a) conventional: both operations staged on all ranks, synchronized.
double conventional(std::string* trace) {
  mpi::Machine machine(machine_config(7));
  const auto makespan = machine.run([&](mpi::Rank& self) {
    for (int r = 0; r < kRounds; ++r) {
      self.compute(kOp0, "red");
      self.process().trace_begin("blue");
      self.reduce(self.world(), 0, mpi::SendBuf::synthetic(kOp1Bytes), nullptr, {});
      self.process().trace_end();
      self.compute(kOp1, "blue");
      self.barrier(self.world());
    }
  });
  if (auto* t = machine.engine().trace()) *trace = t->to_ascii(72);
  return util::to_seconds(makespan);
}

/// (b) nonblocking: Op1's communication overlaps Op0, but both operations
/// still run on every rank.
double nonblocking(std::string* trace) {
  mpi::Machine machine(machine_config(7));
  const auto makespan = machine.run([&](mpi::Rank& self) {
    for (int r = 0; r < kRounds; ++r) {
      const mpi::Request req = self.ireduce(
          self.world(), 0, mpi::SendBuf::synthetic(kOp1Bytes), nullptr, {});
      self.compute(kOp0, "red");
      self.wait(req);
      self.compute(kOp1, "blue");
    }
  });
  if (auto* t = machine.engine().trace()) *trace = t->to_ascii(72);
  return util::to_seconds(makespan);
}

/// (c) decoupled: Op1 moves to rank 3; ranks 0-2 stream to it and keep
/// computing without any synchronization.
double decoupled(std::string* trace) {
  mpi::Machine machine(machine_config(7));
  const auto makespan = machine.run([&](mpi::Rank& self) {
    auto pipeline = decouple::Pipeline::over(self, self.world())
                        .with_helper_ranks({kRanks - 1});
    auto op1 = pipeline.raw_stream(kOp1Bytes);
    pipeline.run(
        [&](decouple::Context& ctx) {
          auto& s = ctx[op1];
          for (int r = 0; r < kRounds; ++r) {
            // Workers carry Op0 scaled by 1/(1-alpha).
            self.compute(kOp0 * kRanks / (kRanks - 1), "red");
            s.send_synthetic(kOp1Bytes);
          }
        },
        [&](decouple::Context& ctx) {
          auto& s = ctx[op1];
          s.on_receive([&](const decouple::RawElement&) {
            self.compute(kOp1 / (kRanks - 1), "blue");
          });
          (void)s.operate();
        });
  });
  if (auto* t = machine.engine().trace()) *trace = t->to_ascii(72);
  return util::to_seconds(makespan);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ds;
  g_opt = util::BenchOptions::parse(argc, argv);
  bench::print_header("Fig. 3 — execution-model comparison",
                      "conventional vs nonblocking vs decoupled, 4 ranks; "
                      "'r' = Op0, 'b' = Op1, '.' = idle",
                      g_opt);

  std::string trace;
  const double conv = conventional(&trace);
  std::printf("(a) conventional  %.3fs\n%s\n", conv, trace.c_str());
  const double nbc = nonblocking(&trace);
  std::printf("(b) nonblocking   %.3fs\n%s\n", nbc, trace.c_str());
  const double dec = decoupled(&trace);
  std::printf("(c) decoupled     %.3fs\n%s\n", dec, trace.c_str());

  // The analytic model (Eqs. 1-4) for the same workload.
  model::TwoOpWorkload w;
  w.t_w0 = util::to_seconds(kOp0) * kRounds;
  w.t_w1 = util::to_seconds(kOp1) * kRounds;
  w.t_sigma = 0.25 * w.t_w0 / 3.0;  // rough E[max-mean] for 4 jittered ranks
  w.alpha = 1.0 / kRanks;
  w.beta = 0.05;
  w.t_w1_decoupled = util::to_seconds(kOp1) * kRounds / kRanks;
  w.total_data = static_cast<double>(kOp1Bytes) * kRounds * (kRanks - 1);
  w.granularity = static_cast<double>(kOp1Bytes);
  w.overhead_per_element = 150e-9;
  std::printf("Analytic model: Eq.1 conventional %.3fs | Eq.2 ideal %.3fs | "
              "Eq.4 full %.3fs | predicted speedup %.2fx\n",
              model::conventional_time(w), model::decoupled_time_ideal(w),
              model::decoupled_time_full(w), model::predicted_speedup(w));
  std::printf("Simulated:      conventional %.3fs | nonblocking %.3fs | "
              "decoupled %.3fs | speedup %.2fx\n",
              conv, nbc, dec, conv / dec);
  return 0;
}
