// Ablation: imbalance absorption (paper Sec. II-B/II-C).
//
// We run the MapReduce pair under three machine-noise levels. The
// interesting (and paper-consistent) outcome is that the decoupling
// speedup barely moves: this workload's imbalance is *structural* — the
// 4x file-size spread — so FCFS absorption keeps paying even on a quiet
// machine. Machine noise mostly shifts both variants together.
//
// Second ablation: the reduce-group aggregation switch. The paper notes the
// missing aggregation congests the master at scale; turning it on removes
// the large-P uptick.
#include <cstdio>

#include "apps/wordcount/wordcount.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const auto opt = util::BenchOptions::parse(argc, argv);
  bench::print_header("Ablation — noise & reduce-group aggregation",
                      "decoupling speedup vs machine noise; master uptick vs "
                      "in-group aggregation", opt);

  const int procs = std::min(256, opt.max_procs);
  util::Table noise_table({"noise", "reference_s", "decoupled_s", "speedup"});
  struct Level {
    const char* name;
    sim::NoiseConfig cfg;
  };
  const Level levels[] = {
      {"none", sim::NoiseConfig{}},
      {"moderate", sim::NoiseConfig{0.04, 15.0, util::microseconds(500)}},
      {"production", sim::NoiseConfig::production_node()},
  };
  for (const auto& level : levels) {
    auto run = [&](bool decoupled) {
      return bench::repeat(opt, procs, [&](int p, std::uint64_t seed) {
        apps::wordcount::WordcountConfig cfg;
        cfg.corpus.seed = seed;
        cfg.stride = 16;
        mpi::MachineConfig machine = bench::beskow_like(p, seed, opt);
        machine.engine.noise = level.cfg;
        return (decoupled ? apps::wordcount::run_decoupled(cfg, machine)
                          : apps::wordcount::run_reference(cfg, machine))
            .seconds;
      });
    };
    const auto reference = run(false);
    const auto decoupled = run(true);
    noise_table.add_row(
        {level.name, util::Table::fmt_mean_std(reference.mean(), reference.stddev()),
         util::Table::fmt_mean_std(decoupled.mean(), decoupled.stddev()),
         util::Table::fmt(reference.mean() / decoupled.mean())});
  }
  bench::print_table(noise_table);

  // The aggregation switch only matters past the master's congestion knee
  // (~4,096 procs at the default forward fraction); below it both columns
  // match, which is itself the expected reading.
  util::Table agg_table({"procs", "no_aggregation_s", "aggregation_s"});
  const int big = std::min(4096, opt.max_procs);
  for (int p = 256; p <= big; p *= 4) {
    auto run = [&](bool aggregate) {
      return bench::repeat(opt, p, [&](int procs_inner, std::uint64_t seed) {
        apps::wordcount::WordcountConfig cfg;
        cfg.corpus.seed = seed;
        cfg.stride = 16;
        cfg.aggregate_reduce_group = aggregate;
        return apps::wordcount::run_decoupled(
                   cfg, bench::beskow_like(procs_inner, seed, opt))
            .seconds;
      });
    };
    const auto off = run(false);
    const auto on = run(true);
    agg_table.add_row({std::to_string(p),
                       util::Table::fmt_mean_std(off.mean(), off.stddev()),
                       util::Table::fmt_mean_std(on.mean(), on.stddev())});
  }
  bench::print_table(agg_table);
  return 0;
}
