// Figure 5: weak-scaling of the MapReduce word-histogram application.
// Series: Reference (Iallgatherv keys + Ireduce counts) and Decoupling with
// alpha = 12.5% / 6.25% / 3.125% of the processes in the reduce group.
//
// Paper result: decoupling wins 2x at 32 procs growing to 4x at 8,192; the
// alpha = 6.25% curve is best; the un-aggregated reduce group congests the
// master at 4,096+ procs, producing a visible uptick.
#include "apps/wordcount/wordcount.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const auto opt = util::BenchOptions::parse(argc, argv);
  bench::print_header("Fig. 5 — MapReduce weak scaling",
                      "2.9 TB corpus on 8,192 procs; Reference vs Decoupling "
                      "(alpha = 1/8, 1/16, 1/32)", opt);

  util::Table table({"procs", "reference_s", "decoupled_a12.5%_s",
                     "decoupled_a6.25%_s", "decoupled_a3.125%_s",
                     "speedup_a6.25%"});

  for (const int procs : bench::scaling_sweep(opt)) {
    auto run = [&](int stride) {
      return bench::repeat(opt, procs, [&](int p, std::uint64_t seed) {
        apps::wordcount::WordcountConfig cfg;
        cfg.corpus.seed = seed;
        if (stride > 0) cfg.stride = stride;
        const auto machine = bench::beskow_like(p, seed, opt);
        const auto result = stride > 0
                                ? apps::wordcount::run_decoupled(cfg, machine)
                                : apps::wordcount::run_reference(cfg, machine);
        return result.seconds;
      });
    };
    const auto reference = run(0);
    const auto alpha8 = run(8);
    const auto alpha16 = run(16);
    const auto alpha32 = run(32);
    table.add_row({std::to_string(procs),
                   util::Table::fmt_mean_std(reference.mean(), reference.stddev()),
                   util::Table::fmt_mean_std(alpha8.mean(), alpha8.stddev()),
                   util::Table::fmt_mean_std(alpha16.mean(), alpha16.stddev()),
                   util::Table::fmt_mean_std(alpha32.mean(), alpha32.stddev()),
                   util::Table::fmt(reference.mean() / alpha16.mean())});
    std::printf("  procs=%d done\n", procs);
  }
  bench::print_table(table);
  return 0;
}
