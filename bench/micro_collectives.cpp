// Micro-benchmark of the collective algorithms' *virtual* cost scaling —
// the mechanism behind "collective operations significantly impact
// scalability because their complexities increase with the number of
// processes" (paper Sec. I). Reported as google-benchmark counters: virtual
// microseconds per collective at each communicator size.
#include <benchmark/benchmark.h>

#include "mpi/rank.hpp"

namespace {

using namespace ds;

template <typename Op>
void run_collective(benchmark::State& state, Op&& op, std::size_t bytes) {
  const int procs = static_cast<int>(state.range(0));
  double virtual_us = 0.0;
  for (auto _ : state) {
    mpi::Machine machine(mpi::MachineConfig::testbed(procs));
    const auto makespan = machine.run(
        [&](mpi::Rank& self) { op(self, bytes); });
    virtual_us = util::to_seconds(makespan) * 1e6;
    benchmark::DoNotOptimize(virtual_us);
  }
  state.counters["virtual_us"] = virtual_us;
  state.counters["procs"] = procs;
}

void BM_VirtualBarrier(benchmark::State& state) {
  run_collective(state, [](mpi::Rank& self, std::size_t) {
    self.barrier(self.world());
  }, 0);
}
BENCHMARK(BM_VirtualBarrier)->RangeMultiplier(4)->Range(8, 2048);

void BM_VirtualReduce64K(benchmark::State& state) {
  run_collective(state, [](mpi::Rank& self, std::size_t bytes) {
    self.reduce(self.world(), 0, mpi::SendBuf::synthetic(bytes), nullptr, {});
  }, 64 * 1024);
}
BENCHMARK(BM_VirtualReduce64K)->RangeMultiplier(4)->Range(8, 2048);

void BM_VirtualAllgatherv4K(benchmark::State& state) {
  run_collective(state, [](mpi::Rank& self, std::size_t bytes) {
    const std::vector<std::size_t> counts(
        static_cast<std::size_t>(self.world().size()), bytes);
    self.allgatherv(self.world(), mpi::SendBuf::synthetic(bytes), nullptr,
                    counts);
  }, 4 * 1024);
}
BENCHMARK(BM_VirtualAllgatherv4K)->RangeMultiplier(4)->Range(8, 2048);

void BM_VirtualGathervHotspot(benchmark::State& state) {
  // Flat gather into a root: the drain-port hotspot grows linearly with P.
  run_collective(state, [](mpi::Rank& self, std::size_t bytes) {
    const std::vector<std::size_t> counts(
        static_cast<std::size_t>(self.world().size()), bytes);
    self.gatherv(self.world(), 0, mpi::SendBuf::synthetic(bytes),
                 nullptr, counts);
  }, 16 * 1024);
}
BENCHMARK(BM_VirtualGathervHotspot)->RangeMultiplier(4)->Range(8, 512);

}  // namespace

BENCHMARK_MAIN();
