// Figure 2: execution trace of the PIC code on 7 ranks, reference vs
// decoupled — the HPCToolkit view from the paper's motivation section.
// Rows are ranks, columns are time buckets, glyphs per the printed legend
// ('c' = particle computation, blocked waits / collectives / stream
// operate get their own glyphs, '.' = idle, '!' = instant event).
//
// The spans come from the ds::obs auto-instrumentation (no manual
// begin/end bookkeeping in the app); alongside the ASCII view the bench
// writes each variant's Chrome trace-event JSON — open it in Perfetto or
// chrome://tracing — and its ds.metrics.v1 document:
//   fig2_trace_{reference,decoupled}.json
//   fig2_metrics_{reference,decoupled}.json
// (directory overridable via DS_BENCH_OUT_DIR).
//
// Paper result: in the reference, computation and communication alternate
// as staged phases on every rank; in the decoupled run the helper handles
// the communication while the workers compute, the phases overlap on the
// timeline, and the makespan shrinks.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/pic/pic_app.hpp"
#include "bench/bench_common.hpp"

namespace {

void write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "fig2: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  using namespace ds;
  bench::print_header("Fig. 2 — PIC execution trace, 7 ranks",
                      "reference (top) vs decoupled (bottom); decoupling "
                      "overlaps comm with comp and shortens the run");

  const char* out_env = std::getenv("DS_BENCH_OUT_DIR");
  const std::string out_dir = out_env != nullptr ? std::string(out_env) : ".";

  double reference_seconds = 0.0;
  for (const auto variant : {apps::pic::ExchangeVariant::Reference,
                             apps::pic::ExchangeVariant::Decoupled}) {
    apps::pic::PicConfig cfg;
    cfg.particles_per_rank = 400'000;
    cfg.steps = 5;
    cfg.stride = 7;  // 7 ranks -> 6 workers + 1 helper, as in the paper
    cfg.exit_fraction = 0.15;
    cfg.relaxed_arrival = true;  // the paper's loose arrival integration
    const mpi::MachineConfig machine_cfg = bench::beskow_like(7, 42);
    const bool is_reference =
        variant == apps::pic::ExchangeVariant::Reference;
    const auto traced = apps::pic::run_pic_traced(variant, cfg, machine_cfg);
    std::printf("%s  (makespan %.3fs, exchange %.3fs)\n%s\n",
                is_reference ? "REFERENCE" : "DECOUPLED",
                traced.result.seconds, traced.result.comm_seconds,
                traced.ascii_trace.c_str());
    const char* tag = is_reference ? "reference" : "decoupled";
    write_file(out_dir + "/fig2_trace_" + tag + ".json", traced.chrome_trace);
    write_file(out_dir + "/fig2_metrics_" + tag + ".json",
               traced.metrics_json);
    if (is_reference) {
      reference_seconds = traced.result.seconds;
    } else {
      std::printf("decoupled/reference makespan: %.2fx shorter\n\n",
                  reference_seconds / traced.result.seconds);
    }
  }
  return 0;
}
