// Figure 2: execution trace of the PIC code on 7 ranks, reference vs
// decoupled — the HPCToolkit view from the paper's motivation section.
// Rows are ranks, columns are time buckets: 'c' = particle computation,
// 'm' = particle communication, 'a' = helper aggregation, '.' = idle.
//
// Paper result: in the reference, computation and communication alternate
// as staged phases on every rank; in the decoupled run the helper handles
// the communication while the workers compute, the phases overlap on the
// timeline, and the makespan shrinks.
#include <cstdio>

#include "apps/pic/pic_app.hpp"
#include "bench/bench_common.hpp"

int main() {
  using namespace ds;
  bench::print_header("Fig. 2 — PIC execution trace, 7 ranks",
                      "reference (top) vs decoupled (bottom); decoupling "
                      "overlaps comm with comp and shortens the run");

  double reference_seconds = 0.0;
  for (const auto variant : {apps::pic::ExchangeVariant::Reference,
                             apps::pic::ExchangeVariant::Decoupled}) {
    apps::pic::PicConfig cfg;
    cfg.particles_per_rank = 400'000;
    cfg.steps = 5;
    cfg.stride = 7;  // 7 ranks -> 6 workers + 1 helper, as in the paper
    cfg.exit_fraction = 0.15;
    cfg.relaxed_arrival = true;  // the paper's loose arrival integration
    const mpi::MachineConfig machine_cfg = bench::beskow_like(7, 42);
    const bool is_reference =
        variant == apps::pic::ExchangeVariant::Reference;
    const auto traced = apps::pic::run_pic_traced(variant, cfg, machine_cfg);
    std::printf("%s  (makespan %.3fs, exchange %.3fs)\n%s\n",
                is_reference ? "REFERENCE" : "DECOUPLED",
                traced.result.seconds, traced.result.comm_seconds,
                traced.ascii_trace.c_str());
    if (is_reference) {
      reference_seconds = traced.result.seconds;
    } else {
      std::printf("decoupled/reference makespan: %.2fx shorter\n\n",
                  reference_seconds / traced.result.seconds);
    }
  }
  return 0;
}
