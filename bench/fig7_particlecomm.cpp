// Figure 7: weak-scaling of the particle communication in the PIC code.
// Reference: iterative six-neighbour forwarding with per-round global
// termination detection. Decoupled: stream to helper group, aggregate by
// destination, forward in one pass (max two hops per particle).
//
// Paper result: the reference's exchange time grows with scale while the
// decoupled exchange stays near-constant, reaching ~1.3x at 8,192 procs.
#include "apps/pic/pic_app.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ds;
  const auto opt = util::BenchOptions::parse(argc, argv);
  bench::print_header("Fig. 7 — iPIC3D particle communication weak scaling",
                      "GEM-like setup, ~2e9 particles at 8,192 procs; "
                      "reference vs decoupling (alpha = 6.25%)", opt);

  util::Table table({"procs", "reference_s", "decoupled_s",
                     "ref_exchange_s", "dec_exchange_s", "reference/decoupled"});

  for (const int procs : bench::scaling_sweep(opt)) {
    double ref_comm = 0, dec_comm = 0;
    auto run = [&](apps::pic::ExchangeVariant variant, double* comm_out) {
      return bench::repeat(opt, procs, [&](int p, std::uint64_t seed) {
        apps::pic::PicConfig cfg;
        cfg.particles_per_rank = 250'000;
        cfg.steps = 8;
        cfg.stride = 16;
        // Full iPIC3D step work per particle (mover + moments + field) and
        // the paper's loose arrival integration in the decoupled variant.
        cfg.ns_mover_per_particle = 400.0;
        cfg.relaxed_arrival = true;
        cfg.seed = seed;
        const auto result =
            apps::pic::run_pic(variant, cfg, bench::beskow_like(p, seed, opt));
        *comm_out = result.comm_seconds;
        return result.seconds;  // execution time, as the paper plots
      });
    };
    const auto reference = run(apps::pic::ExchangeVariant::Reference, &ref_comm);
    const auto decoupled = run(apps::pic::ExchangeVariant::Decoupled, &dec_comm);
    table.add_row({std::to_string(procs),
                   util::Table::fmt_mean_std(reference.mean(), reference.stddev()),
                   util::Table::fmt_mean_std(decoupled.mean(), decoupled.stddev()),
                   util::Table::fmt(ref_comm, 3), util::Table::fmt(dec_comm, 3),
                   util::Table::fmt(reference.mean() / decoupled.mean())});
    std::printf("  procs=%d done\n", procs);
  }
  bench::print_table(table);
  return 0;
}
