#!/usr/bin/env python3
"""CI perf-regression guard for the simulator hot-path microbench.

Compares a freshly produced BENCH_simcore.json against the committed
baseline (bench/baselines/BENCH_simcore.json) and fails when the
steady_stream scenario regresses:

  * elements_per_sec drops by more than the tolerance (default 20%,
    override with DS_BENCH_EPS_TOLERANCE, e.g. 0.30 for noisy runners);
  * allocs_per_element is nonzero (the zero-allocation hot-path gate).

The messages-per-element coalescing gate lives in the bench binary itself
(micro_simcore exits nonzero on it); it is not duplicated here.

Usage: check_bench_regression.py <baseline.json> <fresh.json>
"""
import json
import os
import sys


def scenario(doc, name):
    for s in doc.get("scenarios", []):
        if s.get("name") == name:
            return s
    raise SystemExit(f"FAIL: scenario '{name}' missing from bench JSON")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        baseline = scenario(json.load(f), "steady_stream")
    with open(sys.argv[2]) as f:
        fresh = scenario(json.load(f), "steady_stream")

    tolerance = float(os.environ.get("DS_BENCH_EPS_TOLERANCE", "0.20"))
    base_eps = float(baseline["elements_per_sec"])
    fresh_eps = float(fresh["elements_per_sec"])
    floor = base_eps * (1.0 - tolerance)
    ok = True

    print(f"steady_stream elements_per_sec: baseline {base_eps:.3g}, "
          f"fresh {fresh_eps:.3g} (floor {floor:.3g})")
    if fresh_eps < floor:
        print(f"FAIL: throughput dropped more than {tolerance:.0%} "
              f"below the committed baseline")
        ok = False

    allocs = float(fresh.get("allocs_per_element", 0.0))
    print(f"steady_stream allocs_per_element: {allocs:.6f}")
    if allocs > 0.0005:
        print("FAIL: steady-state eager elements allocate")
        ok = False

    print("bench regression check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
