#!/usr/bin/env python3
"""CI perf/behavior-regression guard for the committed bench baselines.

The baseline document's top-level "bench" key selects the mode:

  * "topology_sweep" (BENCH_topology.json): every scenario the baseline
    records must exist in the fresh output, and every numeric metric must
    match within a relative tolerance (default 1%, override with
    DS_BENCH_VT_TOLERANCE). The sweep is virtual-time deterministic — a
    pure function of the machine model, independent of the host — so a
    drift means the simulated network or placement behavior changed; the
    tight default is intentional.

  * "fault_recovery" (BENCH_fault_recovery.json): the resilience contract
    gate. Every scenario the baseline records must exist in the fresh
    output, and the fresh churn scenario (when the baseline has one) must
    uphold the failure-matrix acceptance contract: >= 10 crash/rejoin
    cycles, exactly-once delivery per consumer view, full coverage, and
    goodput >= 80% of the paced fault-free reference (override the floor
    with DS_BENCH_FAULT_GOODPUT). A setup_crash scenario (when the
    baseline has one) must show exactly-once complete delivery with zero
    failovers/replay — the crash inside Channel::create must be repaired
    by membership agreement, not by the streaming failover path — and a
    rebuild makespan within 2x of the fault-free run (override with
    DS_BENCH_SETUP_REBUILD). The numeric recovery/goodput metrics are
    archived for trend reading, not drift-gated here — the bench binary
    itself exits nonzero on every bound it owns.

  * anything else (BENCH_simcore.json, predating the key): the simulator
    hot-path mode. The steady_stream scenario must not regress:
    elements_per_sec within DS_BENCH_EPS_TOLERANCE (default 20% — it is a
    wall-clock number, host-dependent) and allocs_per_element zero (the
    zero-allocation hot-path gate).

Every problem is reported as a clear per-metric line (which file, which
scenario, which key) and the script exits nonzero — a malformed or
truncated JSON never surfaces as a raw KeyError traceback.

The messages-per-element coalescing gate lives in the bench binary itself
(micro_simcore exits nonzero on it); it is not duplicated here, and the
topology sweep's monotone-advantage gate likewise lives in
bench_topology_sweep.

Usage: check_bench_regression.py <baseline.json> <fresh.json>
"""
import json
import os
import sys

errors = []


def fail(message):
    print(f"FAIL: {message}")
    errors.append(message)


def load(path, which):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        raise SystemExit(f"FAIL: cannot read {which} JSON {path!r}: {e}")
    except json.JSONDecodeError as e:
        raise SystemExit(f"FAIL: {which} JSON {path!r} is not valid JSON: {e}")


def scenario(doc, name, which):
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list):
        fail(f"{which} JSON has no 'scenarios' array")
        return None
    for s in scenarios:
        if isinstance(s, dict) and s.get("name") == name:
            return s
    fail(f"scenario '{name}' missing from {which} JSON")
    return None


def metric(s, key, which, name, required=True):
    """Fetch a numeric metric, reporting (not raising) when it is absent."""
    if s is None:
        return None
    if key not in s:
        if required:
            fail(f"metric '{key}' missing from {which} JSON "
             f"(scenario '{name}')")
        return None
    try:
        return float(s[key])
    except (TypeError, ValueError):
        fail(f"metric '{key}' in {which} JSON (scenario '{name}') "
             f"is not a number: {s[key]!r}")
        return None


def check_topology(baseline_doc, fresh_doc):
    """Virtual-time determinism gate: fresh metrics must reproduce the
    committed baseline within a tight relative tolerance."""
    tolerance = float(os.environ.get("DS_BENCH_VT_TOLERANCE", "0.01"))
    scenarios = baseline_doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail("baseline JSON has no 'scenarios' array")
        return
    for base in scenarios:
        if not isinstance(base, dict) or "name" not in base:
            fail("baseline scenario without a 'name'")
            continue
        name = base["name"]
        fresh = scenario(fresh_doc, name, "fresh")
        if fresh is None:
            continue
        for key, value in base.items():
            if key == "name" or not isinstance(value, (int, float)):
                continue
            got = metric(fresh, key, "fresh", name)
            if got is None:
                continue
            reference = float(value)
            slack = abs(reference) * tolerance
            if abs(got - reference) > slack:
                fail(f"scenario '{name}' metric '{key}': baseline "
                     f"{reference:.6g}, fresh {got:.6g} "
                     f"(> {tolerance:.0%} drift)")
    print(f"topology sweep: {len(scenarios)} scenario(s) compared at "
          f"{tolerance:.0%} tolerance")


def check_fault_recovery(baseline_doc, fresh_doc):
    """Resilience contract gate: scenario presence plus the churn
    acceptance bounds (cycles, exactly-once, coverage, goodput floor)."""
    scenarios = baseline_doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail("baseline JSON has no 'scenarios' array")
        return
    churn_in_baseline = False
    setup_in_baseline = False
    for base in scenarios:
        if not isinstance(base, dict) or "name" not in base:
            fail("baseline scenario without a 'name'")
            continue
        if base["name"] == "churn":
            churn_in_baseline = True
        if base["name"] == "setup_crash":
            setup_in_baseline = True
        scenario(fresh_doc, base["name"], "fresh")
    if setup_in_baseline:
        setup = scenario(fresh_doc, "setup_crash", "fresh")
        if setup is not None:
            for key in ("exactly_once", "complete"):
                value = metric(setup, key, "fresh", "setup_crash")
                if value is not None and value != 1:
                    fail(f"setup_crash scenario violates '{key}'")
            for key in ("failovers", "replayed_elements"):
                value = metric(setup, key, "fresh", "setup_crash")
                if value is not None and value != 0:
                    fail(f"setup_crash scenario has nonzero '{key}': the "
                         f"crash inside channel creation must be repaired "
                         f"by the membership agreement, not by streaming "
                         f"failover")
            bound = float(os.environ.get("DS_BENCH_SETUP_REBUILD", "2.0"))
            ratio = metric(setup, "rebuild_ratio", "fresh", "setup_crash")
            if ratio is not None:
                print(f"setup-crash rebuild: {ratio:.2f}x fault-free "
                      f"(bound {bound:.1f}x)")
                if ratio > bound:
                    fail(f"setup-crash rebuild {ratio:.2f}x exceeds the "
                         f"{bound:.1f}x bound")
    if not churn_in_baseline:
        print("fault recovery: baseline predates the churn scenario; "
              "presence-only check")
        return
    churn = scenario(fresh_doc, "churn", "fresh")
    if churn is None:
        return
    floor = float(os.environ.get("DS_BENCH_FAULT_GOODPUT", "0.80"))
    cycles = metric(churn, "cycles", "fresh", "churn")
    if cycles is not None and cycles < 10:
        fail(f"churn ran only {cycles:.0f} crash/rejoin cycles (need >= 10)")
    for key in ("exactly_once", "complete"):
        value = metric(churn, key, "fresh", "churn")
        if value is not None and value != 1:
            fail(f"churn scenario violates '{key}'")
    ratio = metric(churn, "goodput_ratio", "fresh", "churn")
    if ratio is not None:
        print(f"churn goodput: {ratio:.1%} of fault-free (floor {floor:.0%})")
        if ratio < floor:
            fail(f"churn goodput {ratio:.1%} below the {floor:.0%} floor")
    rejoined = metric(churn, "rejoined_views", "fresh", "churn")
    if rejoined is not None and rejoined < 1:
        fail("no rejoined incarnation ever received elements "
             "(churn did not exercise rejoin)")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    baseline_doc = load(sys.argv[1], "baseline")
    fresh_doc = load(sys.argv[2], "fresh")
    if isinstance(baseline_doc, dict) and \
            baseline_doc.get("bench") == "topology_sweep":
        check_topology(baseline_doc, fresh_doc)
        ok = not errors
        print("bench regression check:",
              "PASS" if ok else f"FAIL ({len(errors)} problem(s))")
        return 0 if ok else 1
    if isinstance(baseline_doc, dict) and \
            baseline_doc.get("bench") == "fault_recovery":
        check_fault_recovery(baseline_doc, fresh_doc)
        ok = not errors
        print("bench regression check:",
              "PASS" if ok else f"FAIL ({len(errors)} problem(s))")
        return 0 if ok else 1

    baseline = scenario(baseline_doc, "steady_stream", "baseline")
    fresh = scenario(fresh_doc, "steady_stream", "fresh")

    tolerance = float(os.environ.get("DS_BENCH_EPS_TOLERANCE", "0.20"))
    base_eps = metric(baseline, "elements_per_sec", "baseline", "steady_stream")
    fresh_eps = metric(fresh, "elements_per_sec", "fresh", "steady_stream")
    if base_eps is not None and fresh_eps is not None:
        floor = base_eps * (1.0 - tolerance)
        print(f"steady_stream elements_per_sec: baseline {base_eps:.3g}, "
              f"fresh {fresh_eps:.3g} (floor {floor:.3g})")
        if fresh_eps < floor:
            fail(f"throughput dropped more than {tolerance:.0%} "
                 f"below the committed baseline")

    # Absent on old baselines is fine; absent on fresh output is a bug in the
    # bench (the gate would silently stop gating).
    allocs = metric(fresh, "allocs_per_element", "fresh", "steady_stream")
    if allocs is not None:
        print(f"steady_stream allocs_per_element: {allocs:.6f}")
        if allocs > 0.0005:
            fail("steady-state eager elements allocate")

    ok = not errors
    print("bench regression check:", "PASS" if ok else f"FAIL ({len(errors)} problem(s))")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
