#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (the ds::obs exporter format).

Checks, per file:
  * well-formed JSON with a top-level {"traceEvents": [...]} object;
  * every event has the required fields for its phase
    (B/E: ts+pid+tid, B additionally name; i: name+ts+pid+tid; M: name);
  * timestamps are monotone non-decreasing per (pid, tid) track;
  * B/E pairs balance on every track (no unmatched end, nothing left open).

Usage: tools/check_trace.py TRACE.json [TRACE2.json ...]
Exits nonzero on the first file that fails, printing what and where.
"""
import json
import sys


def fail(path, msg):
    print(f"check_trace: {path}: {msg}")
    sys.exit(1)


def check(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, "top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, "traceEvents is not an array")

    last_ts = {}    # (pid, tid) -> last timestamp seen
    depth = {}      # (pid, tid) -> open B count
    counts = {"B": 0, "E": 0, "i": 0, "M": 0}
    for n, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(path, f"event {n}: not an object with a ph field")
        ph = ev["ph"]
        if ph not in counts:
            fail(path, f"event {n}: unknown phase {ph!r}")
        counts[ph] += 1
        if ph == "M":
            if "name" not in ev:
                fail(path, f"event {n}: metadata event without name")
            continue
        for field in ("ts", "pid", "tid"):
            if field not in ev:
                fail(path, f"event {n} (ph={ph}): missing {field}")
        if ph in ("B", "i") and "name" not in ev:
            fail(path, f"event {n} (ph={ph}): missing name")
        ts = float(ev["ts"])
        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, float("-inf")):
            fail(path,
                 f"event {n}: ts {ts} goes backwards on track {track} "
                 f"(previous {last_ts[track]})")
        last_ts[track] = ts
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            if depth.get(track, 0) == 0:
                fail(path, f"event {n}: E without matching B on track {track}")
            depth[track] -= 1

    open_tracks = {t: d for t, d in depth.items() if d != 0}
    if open_tracks:
        fail(path, f"unbalanced B/E pairs left open: {open_tracks}")
    if counts["B"] == 0:
        fail(path, "trace contains no spans at all")
    print(f"check_trace: {path}: OK "
          f"({counts['B']} spans, {counts['i']} instants, "
          f"{len(last_ts)} tracks)")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
