// Adaptive stream granularity (the paper's stated future work, Sec. III).
//
// A producer's record rate changes mid-run: dense bursts, then a slow
// trickle. A static element size is wrong for one of the two regimes; the
// adaptive stream grows batches while injection overhead dominates and
// shrinks them when the flow turns coarse, keeping both Eq. 4 terms bounded.
// Declared through the facade, the batching policy is one
// Pipeline::adaptive_stream call; push() replaces the manual batcher and the
// trailing partial batch flushes on RAII termination.
//
// Run: ./adaptive_granularity
#include <cstdio>

#include "core/decouple.hpp"
#include "mpi/rank.hpp"

using namespace ds;

int main() {
  mpi::MachineConfig config = mpi::MachineConfig::testbed(2);
  mpi::Machine machine(config);

  std::uint64_t elements = 0, records = 0;
  std::uint32_t batch_after_burst = 0, batch_after_trickle = 0;

  machine.run([&](mpi::Rank& self) {
    constexpr std::size_t kRecordBytes = 48;
    decouple::AdaptiveConfig adaptive;
    adaptive.initial_records = 4;
    adaptive.max_records = 1024;
    adaptive.window = 8;
    adaptive.max_flush_interval = util::microseconds(200);

    auto pipeline = decouple::Pipeline::over(self, self.world())
                        .with_helper_ranks({1});
    auto flow = pipeline.adaptive_stream(kRecordBytes, adaptive);

    pipeline.run(
        [&](decouple::Context& ctx) {  // producer
          auto& s = ctx[flow];
          // Phase 1: dense burst — records arrive back to back; the
          // per-element overhead would dominate, so the batch should grow.
          for (int i = 0; i < 50'000; ++i) s.push();
          batch_after_burst = s.current_batch();
          // Phase 2: slow trickle — computing between records; large batches
          // would starve the consumer, so the batch should shrink.
          for (int i = 0; i < 40'000; ++i) {
            self.compute(util::microseconds(40), "calc");
            s.push();
          }
          batch_after_trickle = s.current_batch();
        },
        [&](decouple::Context& ctx) {  // consumer
          auto& s = ctx[flow];
          s.on_receive([&](const decouple::RawElement& el) {
            ++elements;
            records += decouple::adaptive_record_count(el);
          });
          (void)s.operate();
        });
  });

  std::printf("records streamed : %llu in %llu elements (avg %.1f records/el)\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(elements),
              static_cast<double>(records) / static_cast<double>(elements));
  std::printf("batch after burst   : %u records (grew to amortize overhead)\n",
              batch_after_burst);
  std::printf("batch after trickle : %u records (shrank to keep flow fine)\n",
              batch_after_trickle);
  return 0;
}
