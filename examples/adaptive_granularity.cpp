// Adaptive stream granularity (the paper's stated future work, Sec. III).
//
// A producer's record rate changes mid-run: dense bursts, then a slow
// trickle. A static element size is wrong for one of the two regimes; the
// AdaptiveBatcher grows batches while injection overhead dominates and
// shrinks them when the flow turns coarse, keeping both Eq. 4 terms bounded.
//
// Run: ./adaptive_granularity
#include <cstdio>

#include "core/adaptive.hpp"
#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/rank.hpp"

using namespace ds;

int main() {
  mpi::MachineConfig config = mpi::MachineConfig::testbed(2);
  mpi::Machine machine(config);

  std::uint64_t elements = 0, records = 0;
  std::uint32_t batch_after_burst = 0, batch_after_trickle = 0;

  machine.run([&](mpi::Rank& self) {
    const bool producer = self.world_rank() == 0;
    const stream::Channel ch =
        stream::Channel::create(self, self.world(), producer, !producer);
    constexpr std::size_t kRecordBytes = 48;
    stream::AdaptiveConfig adaptive;
    adaptive.initial_records = 4;
    adaptive.max_records = 1024;
    adaptive.window = 8;
    adaptive.max_flush_interval = util::microseconds(200);
    const mpi::Datatype element = mpi::Datatype::bytes(
        stream::AdaptiveBatcher::element_bytes(kRecordBytes, adaptive.max_records));

    auto count = [&](const stream::StreamElement& el) {
      ++elements;
      records += stream::adaptive_record_count(el);
    };
    stream::Stream s = stream::Stream::attach(
        ch, element, producer ? stream::Operator{} : stream::Operator{count});

    if (producer) {
      stream::AdaptiveBatcher batcher(s, kRecordBytes, adaptive);
      // Phase 1: dense burst — records arrive back to back; the per-element
      // overhead would dominate, so the batch should grow.
      for (int i = 0; i < 50'000; ++i) batcher.push(self);
      batch_after_burst = batcher.current_batch();
      // Phase 2: slow trickle — computing between records; large batches
      // would starve the consumer, so the batch should shrink.
      for (int i = 0; i < 40'000; ++i) {
        self.compute(util::microseconds(40), "calc");
        batcher.push(self);
      }
      batch_after_trickle = batcher.current_batch();
      batcher.finish(self);
    } else {
      (void)s.operate(self);
    }
  });

  std::printf("records streamed : %llu in %llu elements (avg %.1f records/el)\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(elements),
              static_cast<double>(records) / static_cast<double>(elements));
  std::printf("batch after burst   : %u records (grew to amortize overhead)\n",
              batch_after_burst);
  std::printf("batch after trickle : %u records (shrank to keep flow fine)\n",
              batch_after_trickle);
  return 0;
}
