// Decoupled halo exchange on a real Poisson solve (paper Sec. IV-C).
//
// Runs the same small CG problem three ways — blocking, nonblocking and
// decoupled halo exchange — verifies all three give the same answer, and
// prints their virtual times. Demonstrates the real-data mode: actual
// doubles cross the simulated network. The decoupled variant is written
// against the ds::decouple Pipeline facade (see src/apps/cg/cg_app.cpp for
// the worker/helper role functions and the two directed face streams).
//
// Run: ./decoupled_halo
#include <cstdio>

#include "apps/cg/cg_app.hpp"
#include "apps/cg/cg_solver.hpp"

using namespace ds;

int main() {
  apps::cg::CgConfig cfg;
  cfg.real_data = true;
  cfg.global_grid = {12, 8, 8};
  cfg.iterations = 12;
  cfg.stride = 4;  // 8 ranks -> 6 workers + 2 helpers
  cfg.n = 8;

  mpi::MachineConfig machine = mpi::MachineConfig::testbed(8);
  machine.engine.noise = sim::NoiseConfig::production_node();

  const auto oracle = apps::cg::solve_sequential(12, 8, 8, cfg.iterations);
  std::printf("sequential oracle   : ||r||^2 = %.6e\n", oracle.residual2);

  struct Variant {
    const char* name;
    apps::cg::HaloVariant halo;
  };
  const Variant variants[] = {
      {"blocking halo      ", apps::cg::HaloVariant::Blocking},
      {"nonblocking halo   ", apps::cg::HaloVariant::Nonblocking},
      {"decoupled halo     ", apps::cg::HaloVariant::Decoupled},
  };
  for (const auto& variant : variants) {
    const auto result = apps::cg::run_cg(variant.halo, cfg, machine);
    std::printf("%s: ||r||^2 = %.6e  virtual time = %.3f ms\n", variant.name,
                result.residual2, result.seconds * 1e3);
  }
  std::printf("\nall residuals match the oracle: the decoupled helper group\n"
              "aggregates each worker's six neighbour faces into one bundle\n"
              "while the workers compute their interior stencil.\n");
  return 0;
}
