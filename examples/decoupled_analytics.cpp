// In-situ data analytics, decoupled (paper Fig. 1).
//
// A simulation group produces field snapshots every step; an analytics
// group consumes them on the fly (histogram + running energy), exactly the
// "call an independent data-analytics application without interfering with
// the remaining processes" pattern of Sec. II-E. The example also shows the
// RoundRobin mapping spreading analytics load over several consumers, and
// send_modeled: a real typed header riding on a modeled field body.
//
// Run: ./decoupled_analytics
#include <cstdio>
#include <vector>

#include "core/decouple.hpp"
#include "mpi/rank.hpp"

using namespace ds;

namespace {
constexpr int kProcs = 12;
constexpr int kSteps = 8;
constexpr int kCellsPerRank = 512;
}  // namespace

int main() {
  mpi::MachineConfig config = mpi::MachineConfig::testbed(kProcs);
  config.engine.noise = sim::NoiseConfig::production_node();
  mpi::Machine machine(config);

  std::vector<double> step_energy(kSteps, 0.0);

  const auto makespan = machine.run([&](mpi::Rank& self) {
    struct SnapshotHeader {
      std::int32_t step;
      std::int32_t cells;
      double energy;
    };

    // One analytics process per 4 simulation processes; RoundRobin spreads
    // snapshots over all of them.
    decouple::StreamOptions options;
    options.mapping = decouple::Mapping::RoundRobin;
    auto pipeline = decouple::Pipeline::over(self, self.world()).with_stride(4);
    auto snapshots = pipeline.stream<SnapshotHeader>(
        kCellsPerRank * sizeof(double), options);

    pipeline.run(
        [&](decouple::Context& ctx) {  // simulation group
          auto& s = ctx[snapshots];
          std::vector<double> field(kCellsPerRank, 1.0);
          for (int step = 0; step < kSteps; ++step) {
            // Simulate: advance the field (virtual compute + real math).
            self.compute(util::milliseconds(3), "sim");
            double energy = 0;
            for (auto& v : field) {
              v = 0.99 * v + 0.01 * self.process().rng().next_double();
              energy += v * v;
            }
            // Stream the snapshot: real header, modeled field body.
            s.send_modeled(SnapshotHeader{step, kCellsPerRank, energy},
                           kCellsPerRank * sizeof(double));
          }
        },
        [&](decouple::Context& ctx) {  // analytics group
          auto& s = ctx[snapshots];
          s.on_receive([&](const decouple::Element<SnapshotHeader>& el) {
            self.compute(util::microseconds(200), "ana");  // histogramming etc.
            step_energy[static_cast<std::size_t>(el.record.step)] +=
                el.record.energy;
          });
          const auto consumed = s.operate();
          std::printf("analyst rank %d consumed %llu snapshots\n",
                      self.world_rank(),
                      static_cast<unsigned long long>(consumed));
        });
  });

  std::printf("\nper-step total field energy (gathered in situ):\n");
  for (int s = 0; s < kSteps; ++s)
    std::printf("  step %d: %.2f\n", s, step_energy[static_cast<std::size_t>(s)]);
  std::printf("virtual makespan: %.3f ms\n", util::to_seconds(makespan) * 1e3);
  return 0;
}
