// In-situ data analytics, decoupled (paper Fig. 1).
//
// A simulation group produces field snapshots every step; an analytics
// group consumes them on the fly (histogram + running energy), exactly the
// "call an independent data-analytics application without interfering with
// the remaining processes" pattern of Sec. II-E. The example also shows the
// RoundRobin mapping spreading analytics load over several consumers.
//
// Run: ./decoupled_analytics
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/channel.hpp"
#include "core/group_plan.hpp"
#include "core/stream.hpp"
#include "mpi/rank.hpp"

using namespace ds;

namespace {
constexpr int kProcs = 12;
constexpr int kSteps = 8;
constexpr int kCellsPerRank = 512;
}  // namespace

int main() {
  mpi::MachineConfig config = mpi::MachineConfig::testbed(kProcs);
  config.engine.noise = sim::NoiseConfig::production_node();
  mpi::Machine machine(config);

  std::vector<double> step_energy(kSteps, 0.0);

  const auto makespan = machine.run([&](mpi::Rank& self) {
    // One analytics process per 4 simulation processes.
    const stream::GroupPlan plan =
        stream::GroupPlan::interleaved(self.world(), 4);
    const bool analyst = plan.is_helper(self.rank_in(self.world()));

    stream::ChannelConfig channel_cfg;
    channel_cfg.mapping = stream::ChannelConfig::Mapping::RoundRobin;
    const stream::Channel channel =
        stream::Channel::create(self, self.world(), !analyst, analyst, channel_cfg);

    struct SnapshotHeader {
      std::int32_t step;
      std::int32_t cells;
      double energy;
    };
    const std::size_t element_bytes =
        sizeof(SnapshotHeader) + kCellsPerRank * sizeof(double);
    const mpi::Datatype element = mpi::Datatype::bytes(element_bytes);

    if (!analyst) {
      stream::Stream s = stream::Stream::attach(channel, element, {});
      std::vector<double> field(kCellsPerRank, 1.0);
      for (int step = 0; step < kSteps; ++step) {
        // Simulate: advance the field (virtual compute + a little real math).
        self.compute(util::milliseconds(3), "sim");
        double energy = 0;
        for (auto& v : field) {
          v = 0.99 * v + 0.01 * self.process().rng().next_double();
          energy += v * v;
        }
        // Stream the snapshot: real header, modeled field body.
        const SnapshotHeader header{step, kCellsPerRank, energy};
        s.isend(self, mpi::SendBuf::header_only(header, element_bytes));
      }
      s.terminate(self);
    } else {
      auto analyze = [&](const stream::StreamElement& el) {
        SnapshotHeader header{};
        std::memcpy(&header, el.data, sizeof header);
        self.compute(util::microseconds(200), "ana");  // histogramming etc.
        step_energy[static_cast<std::size_t>(header.step)] += header.energy;
      };
      stream::Stream s = stream::Stream::attach(channel, element, analyze);
      const auto consumed = s.operate(self);
      std::printf("analyst rank %d consumed %llu snapshots\n",
                  self.world_rank(), static_cast<unsigned long long>(consumed));
    }
  });

  std::printf("\nper-step total field energy (gathered in situ):\n");
  for (int s = 0; s < kSteps; ++s)
    std::printf("  step %d: %.2f\n", s, step_energy[static_cast<std::size_t>(s)]);
  std::printf("virtual makespan: %.3f ms\n", util::to_seconds(makespan) * 1e3);
  return 0;
}
