// Quickstart: the paper's Listing 1, through the ds::decouple facade.
//
// An application alternates Calculation() with a workload-distribution
// analysis (min/max/mean — the reductions that bottleneck at scale). The
// decoupling strategy moves the analysis to a one-process group; the
// computation group streams workload samples whenever they change and never
// waits for a reduction again.
//
// One Pipeline declaration replaces the paper's five manual steps: the
// channel is created by run(), the stream carries typed records, producers
// terminate when their role function returns, and the channel is released
// when the pipeline leaves scope.
//
// Run: ./quickstart
#include <algorithm>
#include <cstdio>

#include "core/decouple.hpp"
#include "mpi/rank.hpp"

using namespace ds;

namespace {

constexpr int kProcs = 8;
constexpr int kIterations = 20;

struct WorkloadSample {
  std::int32_t rank;
  std::int32_t iteration;
  double load;
};

}  // namespace

int main() {
  mpi::MachineConfig config = mpi::MachineConfig::testbed(kProcs);
  config.engine.noise = sim::NoiseConfig::production_node();
  mpi::Machine machine(config);

  const auto makespan = machine.run([&](mpi::Rank& self) {
    // Declare the pipeline: the last rank is the analysis group, everyone
    // else computes and produces samples.
    auto pipeline = decouple::Pipeline::over(self, self.world())
                        .with_helper_ranks({kProcs - 1});
    auto samples = pipeline.stream<WorkloadSample>();

    double min_load = 1e300, max_load = 0, sum = 0;
    std::int64_t count = 0;

    pipeline.run(
        [&](decouple::Context& ctx) {  // computation group
          auto& stream = ctx[samples];
          double load = 1.0;
          for (int i = 0; i < kIterations; ++i) {
            self.compute(util::milliseconds(2), "calc");  // Calculation(&data)
            load = 0.8 * load + 0.4 * self.process().rng().next_double();
            const bool has_workload_changes = true;
            if (has_workload_changes)
              stream.send(WorkloadSample{self.world_rank(), i, load});
          }
          // No MPIStream_Terminate, no FreeChannel: the pipeline handles both.
        },
        [&](decouple::Context& ctx) {  // analysis group
          auto& stream = ctx[samples];
          // The decoupled analyze_workload() operator, applied on-the-fly,
          // first-come-first-served, on decoded records.
          stream.on_receive([&](const decouple::Element<WorkloadSample>& el) {
            min_load = std::min(min_load, el.record.load);
            max_load = std::max(max_load, el.record.load);
            sum += el.record.load;
            ++count;
          });
          (void)stream.operate();
          std::printf(
              "analysis group: %lld samples, load min %.3f mean %.3f max %.3f\n",
              static_cast<long long>(count), min_load,
              sum / static_cast<double>(count), max_load);
        });
  });

  std::printf("virtual makespan: %.3f ms on %d simulated ranks\n",
              util::to_seconds(makespan) * 1e3, kProcs);
  std::printf("(the computation group never executed a reduction — the\n"
              " analysis ran concurrently on the decoupled process)\n");
  return 0;
}
