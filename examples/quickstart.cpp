// Quickstart: the paper's Listing 1, in this library's API.
//
// An application alternates Calculation() with a workload-distribution
// analysis (min/max/mean — the reductions that bottleneck at scale). The
// decoupling strategy moves the analysis to a one-process group; the
// computation group streams workload samples whenever they change and never
// waits for a reduction again.
//
// Run: ./quickstart
#include <cstdio>
#include <cstring>

#include "core/channel.hpp"
#include "core/stream.hpp"
#include "mpi/rank.hpp"

using namespace ds;

namespace {

constexpr int kProcs = 8;
constexpr int kIterations = 20;

struct WorkloadSample {
  std::int32_t rank;
  std::int32_t iteration;
  double load;
};

}  // namespace

int main() {
  mpi::MachineConfig config = mpi::MachineConfig::testbed(kProcs);
  config.engine.noise = sim::NoiseConfig::production_node();
  mpi::Machine machine(config);

  const auto makespan = machine.run([&](mpi::Rank& self) {
    // Step 1 (Listing 1, line 12): establish the communication channel.
    // The last rank is the data consumer; everyone else produces.
    const bool is_consumer = self.world_rank() == kProcs - 1;
    const bool is_producer = !is_consumer;
    const stream::Channel channel =
        stream::Channel::create(self, self.world(), is_producer, is_consumer);

    // Step 2 (line 15): define the stream element as an MPI-style datatype.
    const mpi::Datatype element = mpi::Datatype::record(
        {{offsetof(WorkloadSample, rank), mpi::Datatype::int32()},
         {offsetof(WorkloadSample, iteration), mpi::Datatype::int32()},
         {offsetof(WorkloadSample, load), mpi::Datatype::float64()}},
        sizeof(WorkloadSample), "WorkloadSample");

    // Step 3 (line 18): the operator attached to the stream — the decoupled
    // analyze_workload(), applied on-the-fly, first-come-first-served.
    double min_load = 1e300, max_load = 0, sum = 0;
    std::int64_t samples = 0;
    auto analyze_workload = [&](const stream::StreamElement& el) {
      WorkloadSample sample{};
      std::memcpy(&sample, el.data, sizeof sample);
      min_load = std::min(min_load, sample.load);
      max_load = std::max(max_load, sample.load);
      sum += sample.load;
      ++samples;
    };
    stream::Stream stream = stream::Stream::attach(
        channel, element, is_consumer ? stream::Operator(analyze_workload)
                                      : stream::Operator{});

    // Step 4 (lines 24-35): both groups progress concurrently.
    if (is_producer) {
      double load = 1.0;
      for (int i = 0; i < kIterations; ++i) {
        self.compute(util::milliseconds(2), "calc");  // Calculation(&data)
        load = 0.8 * load + 0.4 * self.process().rng().next_double();
        const bool has_workload_changes = true;
        if (has_workload_changes) {
          const WorkloadSample sample{self.world_rank(), i, load};
          stream.isend(self, mpi::SendBuf::of(&sample, 1));
        }
      }
      stream.terminate(self);  // MPIStream_Terminate
    } else {
      (void)stream.operate(self);  // MPIStream_Operate
      std::printf("analysis group: %lld samples, load min %.3f mean %.3f max %.3f\n",
                  static_cast<long long>(samples), min_load,
                  sum / static_cast<double>(samples), max_load);
    }

    // Step 5 (line 37): release the channel.
    stream::Channel mutable_channel = channel;
    mutable_channel.free(self);
  });

  std::printf("virtual makespan: %.3f ms on %d simulated ranks\n",
              util::to_seconds(makespan) * 1e3, kProcs);
  std::printf("(the computation group never executed a reduction — the\n"
              " analysis ran concurrently on the decoupled process)\n");
  return 0;
}
