// Decoupled particle I/O (paper Sec. IV-D2).
//
// Dumps the same particle data through the three write paths of Fig. 8 on a
// 64-rank simulated machine and prints the time each takes — a miniature of
// the bench_fig8_particleio experiment, small enough to run in a second.
// The decoupled path's batch stream and buffered I/O group live in
// src/apps/pic/pic_io.cpp, written against the ds::decouple facade.
//
// Run: ./decoupled_io
#include <cstdio>

#include "apps/pic/pic_io.hpp"

using namespace ds;

int main() {
  apps::pic::PicIoConfig cfg;
  cfg.particles_per_rank = 50'000;
  cfg.steps = 3;
  cfg.stride = 16;

  mpi::MachineConfig machine = mpi::MachineConfig::testbed(64);
  machine.engine.noise = sim::NoiseConfig::production_node();

  struct Variant {
    const char* name;
    apps::pic::IoVariant io;
  };
  const Variant variants[] = {
      {"write_all   (collective, view per dump)", apps::pic::IoVariant::Collective},
      {"write_shared (shared file pointer)     ", apps::pic::IoVariant::Shared},
      {"decoupled   (buffered I/O group)       ", apps::pic::IoVariant::Decoupled},
  };
  std::printf("dumping %d steps x %llu particles/rank x 64 ranks:\n\n",
              cfg.steps, static_cast<unsigned long long>(cfg.particles_per_rank));
  for (const auto& variant : variants) {
    const auto result = apps::pic::run_pic_io(variant.io, cfg, machine);
    std::printf("%s : %7.2f ms total, %llu MB written\n", variant.name,
                result.seconds * 1e3,
                static_cast<unsigned long long>(result.file_bytes >> 20));
  }
  std::printf("\nthe I/O group buffers 64 MB before touching the file system,\n"
              "so the compute ranks stream and move on — the paper's\n"
              "\"aggressive buffering\" optimization.\n");
  return 0;
}
