// Resilient decoupled pipeline: surviving a consumer crash mid-run.
//
// Eight ranks: six workers stream records to two helpers under
// Pipeline::with_resilience. A fault plan crashes one helper partway
// through; the workers rebind its flows to the survivor, replay the
// unacknowledged epoch, and the run completes with every record delivered
// exactly once to a surviving consumer — the recovery path pic_io's
// writeback stage uses, in ~60 lines.
#include <cstdio>
#include <cstring>

#include "core/decouple.hpp"
#include "mpi/machine.hpp"
#include "mpi/rank.hpp"
#include "resilience/fault.hpp"

namespace {

using namespace ds;

constexpr int kWorkers = 6;
constexpr int kRecordsPerWorker = 500;

struct Sample {
  std::int32_t worker = 0;
  std::int32_t seq = 0;
};

}  // namespace

int main() {
  mpi::MachineConfig config;
  config.world_size = kWorkers + 2;
  // Crash helper rank 7 at 200 microseconds of virtual time — mid-stream.
  config.faults.crash(7, util::microseconds(200));
  mpi::Machine machine(config);

  std::uint64_t delivered = 0, replayed = 0;
  std::uint32_t failovers = 0;

  machine.run([&](mpi::Rank& self) {
    auto pipeline = decouple::Pipeline::over(self, self.world())
                        .with_helper_ranks({kWorkers, kWorkers + 1})
                        .with_resilience({.checkpoint_interval = 64});
    const auto samples = pipeline.stream<Sample>();

    pipeline.run(
        [&](decouple::Context& ctx) {  // worker: produce paced records
          auto& out = ctx[samples];
          for (int i = 0; i < kRecordsPerWorker; ++i) {
            self.compute(util::nanoseconds(800), "produce");
            out.send(Sample{ctx.worker_index(), i});
          }
          replayed += out.replayed_elements();
          failovers += out.failovers();
        },
        [&](decouple::Context& ctx) {  // helper: consume until exhaustion
          auto& in = ctx[samples];
          in.on_receive(
              [&](const decouple::Element<Sample>&) { ++delivered; });
          in.operate();
        });
  });

  std::printf("resilient_pipeline: %llu of %d records delivered, "
              "%u flow failovers, %llu elements replayed\n",
              static_cast<unsigned long long>(delivered),
              kWorkers * kRecordsPerWorker, failovers,
              static_cast<unsigned long long>(replayed));
  const bool lost = delivered <
                    static_cast<std::uint64_t>(kWorkers * kRecordsPerWorker) -
                        64 * 2;  // dead helper's undurable tail only
  return lost ? 1 : 0;
}
