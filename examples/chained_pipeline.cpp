// Chained multi-stage pipelines (compute -> reduce -> writeback).
//
// Pipeline::stage() partitions the communicator into an ordered chain of
// role groups; stream_between() links consecutive stages, making an
// intermediate stage consumer of one typed stream and producer of the next.
// Auto-termination propagates down the chain: when the compute stage
// returns, its stream terminates, the reduce stage's operate() unblocks and
// finishes, its own stream terminates, and so on — no explicit termination
// calls anywhere.
//
// The example also shows StreamOptions::max_inflight, the facade's
// credit-based backpressure: compute ranks may run at most 8 unconsumed
// samples ahead of the reducers, so a slow consumer throttles producers
// instead of letting queues grow without bound.
//
// Run: ./chained_pipeline
#include <cstdio>
#include <vector>

#include "core/decouple.hpp"
#include "mpi/rank.hpp"

using namespace ds;

namespace {
constexpr int kProcs = 12;
constexpr int kSamplesPerWorker = 64;
}  // namespace

int main() {
  mpi::Machine machine(mpi::MachineConfig::testbed(kProcs));
  double reduced_total = 0.0;
  std::uint64_t written = 0;

  const auto makespan = machine.run([&](mpi::Rank& self) {
    struct Sample {
      std::int32_t worker;
      double value;
    };
    struct Partial {
      std::int32_t reducer;
      double sum;
    };

    // Stages: 9 compute ranks -> 2 reducers -> 1 writer.
    auto pipeline = decouple::Pipeline::over(self, self.world());
    const auto compute = pipeline.stage([](int r) { return r < 9; });
    const auto reduce = pipeline.stage([](int r) { return r == 9 || r == 10; });
    const auto write = pipeline.stage([](int r) { return r == 11; });

    decouple::StreamOptions throttled;
    throttled.max_inflight = 8;  // backpressure: stay <= 8 samples ahead
    const auto samples =
        pipeline.stream_between<Sample>(compute, reduce, 0, throttled);
    const auto partials = pipeline.stream_between<Partial>(reduce, write);

    pipeline.run_stages({
        [&](decouple::Context& ctx) {  // compute stage
          auto& out = ctx[samples];
          for (int i = 0; i < kSamplesPerWorker; ++i) {
            self.compute(util::microseconds(5), "produce");
            out.send(Sample{ctx.stage_member_index(), 0.5 * i});
          }
        },
        [&](decouple::Context& ctx) {  // reduce stage
          auto& in = ctx[samples];
          auto& out = ctx[partials];
          double sum = 0.0;
          in.on_receive([&](const decouple::Element<Sample>& el) {
            self.compute(util::microseconds(20), "reduce");  // slow consumer
            sum += el.record.value;
          });
          in.operate();  // returns when the compute stage terminated
          out.send(Partial{ctx.stage_member_index(), sum});
        },
        [&](decouple::Context& ctx) {  // writeback stage
          auto& in = ctx[partials];
          in.on_receive([&](const decouple::Element<Partial>& el) {
            reduced_total += el.record.sum;
            ++written;
          });
          in.operate();  // returns when the reduce stage terminated
        },
    });
  });

  std::printf("chained pipeline: %llu partials, total %.1f "
              "(expect %d workers x sum 0..%d of 0.5k = %.1f)\n",
              static_cast<unsigned long long>(written), reduced_total, 9,
              kSamplesPerWorker - 1,
              9 * 0.5 * (kSamplesPerWorker - 1) * kSamplesPerWorker / 2);
  std::printf("virtual makespan: %.3f ms\n", util::to_seconds(makespan) * 1e3);
  return 0;
}
