#include "apps/pic/pic_io.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "apps/pic/pic_app.hpp"
#include "core/decouple.hpp"
#include "core/group_plan.hpp"
#include "mpi/io.hpp"
#include "mpi/rank.hpp"

namespace ds::apps::pic {

namespace {

using mpi::Rank;
using mpi::SendBuf;

constexpr const char* kFileName = "particles.dump";

[[nodiscard]] util::SimTime ns_time(double ns) {
  return static_cast<util::SimTime>(std::max(0.0, ns));
}

/// Real payload for a rank's dump chunk: particle ids as u64, deterministic
/// per (rank, step, chunk) so content equivalence across variants is exact.
void fill_ids(std::vector<std::uint64_t>& ids, int rank, int step,
              std::uint64_t first, std::size_t count) {
  ids.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    ids[i] = (static_cast<std::uint64_t>(rank) << 40) ^
             (static_cast<std::uint64_t>(step) << 32) ^ (first + i);
}

}  // namespace

const char* pic_io_file_name() { return kFileName; }

PicIoResult run_pic_io(IoVariant variant, const PicIoConfig& config,
                       const mpi::MachineConfig& machine_config) {
  mpi::Machine machine(machine_config);
  const int size = machine.world_size();
  const bool decoupled = variant == IoVariant::Decoupled;

  stream::GroupPlan plan;
  if (decoupled) plan = stream::GroupPlan::interleaved(machine.world(), config.stride);
  const int compute_ranks = decoupled ? plan.worker_count() : size;
  const Domain domain = domain_of(compute_ranks);
  const auto counts = modeled_rank_counts(
      domain, config.particles_per_rank * static_cast<std::uint64_t>(size));

  std::vector<double> io_time(static_cast<std::size_t>(compute_ranks), 0.0);
  PicIoResult result;

  // Real mode keeps payload sizes equal to the id stream (8 B per particle)
  // so file content checks are practical; modeled mode uses the full 56 B.
  const std::size_t unit =
      config.real_data ? sizeof(std::uint64_t) : config.particle_bytes;

  const auto program = [&](Rank& self) {
    const int me = self.rank_in(self.world());

    if (!decoupled) {
      mpi::File file(machine, self.world(), kFileName);
      const std::uint64_t my_count = counts[static_cast<std::size_t>(me)];
      std::vector<std::uint64_t> ids;
      for (int step = 0; step < config.steps; ++step) {
        self.compute(
            ns_time(config.ns_mover_per_particle * static_cast<double>(my_count)),
            "comp");
        const util::SimTime io_begin = self.now();
        self.process().trace_begin("io");
        const std::size_t bytes = static_cast<std::size_t>(my_count) * unit;
        if (config.real_data) fill_ids(ids, me, step, 0, my_count);
        if (variant == IoVariant::Collective) {
          // Counts change every dump: the file view must be recomputed and
          // redefined before the collective write.
          file.set_view(self);
          file.write_all(self, config.real_data
                                   ? SendBuf::of(ids.data(), ids.size())
                                   : SendBuf::synthetic(bytes));
        } else {
          file.write_shared(self, config.real_data
                                      ? SendBuf::of(ids.data(), ids.size())
                                      : SendBuf::synthetic(bytes));
        }
        self.process().trace_end();
        io_time[static_cast<std::size_t>(me)] +=
            util::to_seconds(self.now() - io_begin);
      }
      return;
    }

    // ---------------- decoupled ----------------
    auto pipeline = decouple::Pipeline::over(self, self.world()).with_plan(plan);
    auto batches = pipeline.raw_stream(sizeof(std::uint64_t) +
                                       config.batch_particles * unit);

    pipeline.run(
        [&](decouple::Context& ctx) {
          const int w = ctx.worker_index();
          auto& s = ctx[batches];
          const std::uint64_t my_count = counts[static_cast<std::size_t>(w)];
          std::vector<std::uint64_t> ids;
          for (int step = 0; step < config.steps; ++step) {
            self.compute(ns_time(config.ns_mover_per_particle *
                                 static_cast<double>(my_count)),
                         "comp");
            const util::SimTime io_begin = self.now();
            self.process().trace_begin("io");
            // Stream the dump in batches; no waiting on storage.
            for (std::uint64_t first = 0; first < my_count;
                 first += config.batch_particles) {
              const std::size_t batch = static_cast<std::size_t>(
                  std::min<std::uint64_t>(config.batch_particles,
                                          my_count - first));
              if (config.real_data) {
                fill_ids(ids, w, step, first, batch);
                s.send_items(ids.data(), ids.size());
              } else {
                s.send_synthetic(batch * unit);
              }
            }
            self.process().trace_end();
            io_time[static_cast<std::size_t>(w)] +=
                util::to_seconds(self.now() - io_begin);
          }
        },
        [&](decouple::Context& ctx) {
          // I/O group: buffer aggressively, write rarely and big.
          auto& s = ctx[batches];
          mpi::File file(machine, s.channel().comm(), kFileName);
          std::vector<std::byte> buffer;
          buffer.reserve(config.real_data ? config.helper_buffer_bytes : 0);
          std::size_t buffered = 0;
          auto flush = [&] {
            if (buffered == 0) return;
            file.write_shared(self, config.real_data
                                        ? SendBuf{buffer.data(), buffer.size()}
                                        : SendBuf::synthetic(buffered));
            buffer.clear();
            buffered = 0;
          };
          s.on_receive([&](const decouple::RawElement& el) {
            if (config.real_data && el.data) {
              const std::size_t base = buffer.size();
              buffer.resize(base + el.bytes);
              std::memcpy(buffer.data() + base, el.data, el.bytes);
            }
            buffered += el.bytes;
            if (buffered >= config.helper_buffer_bytes) flush();
          });
          s.operate();
          flush();
        });
  };

  result.seconds = util::to_seconds(machine.run(program));
  result.io_seconds = *std::max_element(io_time.begin(), io_time.end());
  result.file_bytes = machine.filesystem().open(kFileName)->size();
  if (config.real_data)
    result.file_content = machine.filesystem().open(kFileName)->content();
  return result;
}

}  // namespace ds::apps::pic
