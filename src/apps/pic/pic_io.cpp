#include "apps/pic/pic_io.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "apps/pic/pic_app.hpp"
#include "core/decouple.hpp"
#include "core/group_plan.hpp"
#include "core/placement.hpp"
#include "mpi/io.hpp"
#include "mpi/rank.hpp"

namespace ds::apps::pic {

namespace {

using mpi::Rank;
using mpi::SendBuf;

constexpr const char* kFileName = "particles.dump";

[[nodiscard]] util::SimTime ns_time(double ns) {
  return static_cast<util::SimTime>(std::max(0.0, ns));
}

/// Real payload for a rank's dump chunk: particle ids as u64, deterministic
/// per (rank, step, chunk) so content equivalence across variants is exact.
void fill_ids(std::vector<std::uint64_t>& ids, int rank, int step,
              std::uint64_t first, std::size_t count) {
  ids.resize(count);
  for (std::size_t i = 0; i < count; ++i)
    ids[i] = (static_cast<std::uint64_t>(rank) << 40) ^
             (static_cast<std::uint64_t>(step) << 32) ^ (first + i);
}

}  // namespace

const char* pic_io_file_name() { return kFileName; }

PicIoResult run_pic_io(IoVariant variant, const PicIoConfig& config,
                       const mpi::MachineConfig& machine_config) {
  mpi::Machine machine(machine_config);
  const int size = machine.world_size();
  const bool decoupled = variant == IoVariant::Decoupled;

  // The worker/writeback split: rank-interleaved by default (GroupPlan), or
  // node-aware via stream::Placement — the tail ranks of each node write, so
  // dump batches stay on their producer's node.
  std::vector<int> worker_ranks;
  std::vector<int> helper_ranks;
  if (decoupled) {
    if (config.node_aware_placement) {
      const stream::Placement placement(machine_config.network, size);
      std::vector<int> all(static_cast<std::size_t>(size));
      std::iota(all.begin(), all.end(), 0);
      const int per_node = std::max(
          1, (placement.ranks_per_node() + config.stride - 1) / config.stride);
      helper_ranks = placement.tail_per_node(all, per_node);
    }
    if (helper_ranks.empty()) {
      const auto plan = stream::GroupPlan::interleaved(machine.world(), config.stride);
      worker_ranks = plan.workers();
      helper_ranks = plan.helpers();
    } else {
      for (int r = 0; r < size; ++r)
        if (!std::binary_search(helper_ranks.begin(), helper_ranks.end(), r))
          worker_ranks.push_back(r);
    }
  }
  // The chained decoupled pipeline carves its reduce stage out of the worker
  // group (the last worker), so one fewer rank computes.
  const bool chained = decoupled && worker_ranks.size() >= 2;
  const int compute_ranks =
      decoupled ? static_cast<int>(worker_ranks.size()) - (chained ? 1 : 0)
                : size;
  const Domain domain = domain_of(compute_ranks);
  const auto counts = modeled_rank_counts(
      domain, config.particles_per_rank * static_cast<std::uint64_t>(size));

  std::vector<double> io_time(static_cast<std::size_t>(compute_ranks), 0.0);
  PicIoResult result;

  // Real mode keeps payload sizes equal to the id stream (8 B per particle)
  // so file content checks are practical; modeled mode uses the full 56 B.
  const std::size_t unit =
      config.real_data ? sizeof(std::uint64_t) : config.particle_bytes;

  // Keyed layout for the idempotent decoupled writeback: step-major, then
  // worker-major, then particle index — every particle id maps to exactly
  // one file offset, computable by any writer from the id alone.
  std::vector<std::uint64_t> prefix_units(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i)
    prefix_units[i + 1] = prefix_units[i] + counts[i];
  const std::uint64_t units_per_step = prefix_units[counts.size()];

  const auto program = [&](Rank& self) {
    const int me = self.rank_in(self.world());

    if (!decoupled) {
      mpi::File file(machine, self.world(), kFileName);
      const std::uint64_t my_count = counts[static_cast<std::size_t>(me)];
      std::vector<std::uint64_t> ids;
      for (int step = 0; step < config.steps; ++step) {
        self.compute(
            ns_time(config.ns_mover_per_particle * static_cast<double>(my_count)),
            "comp");
        const util::SimTime io_begin = self.now();
        self.process().trace_begin("io");
        const std::size_t bytes = static_cast<std::size_t>(my_count) * unit;
        if (config.real_data) fill_ids(ids, me, step, 0, my_count);
        if (variant == IoVariant::Collective) {
          // Counts change every dump: the file view must be recomputed and
          // redefined before the collective write.
          file.set_view(self);
          file.write_all(self, config.real_data
                                   ? SendBuf::of(ids.data(), ids.size())
                                   : SendBuf::synthetic(bytes));
        } else {
          file.write_shared(self, config.real_data
                                      ? SendBuf::of(ids.data(), ids.size())
                                      : SendBuf::synthetic(bytes));
        }
        self.process().trace_end();
        io_time[static_cast<std::size_t>(me)] +=
            util::to_seconds(self.now() - io_begin);
      }
      return;
    }

    // ---------------- decoupled: compute -> reduce -> writeback -----------
    // A three-stage chain. The bulk dump flows straight from the compute
    // stage to the (wide) writeback stage, which buffers aggressively and
    // issues few large writes — the writeback stage keeps every helper, so
    // the I/O group's drain bandwidth (and node locality) matches the plain
    // two-group split. The reduce stage is carved out of the worker group
    // instead: every compute rank streams one summary record per dump to
    // it, it merges them into per-writer byte manifests, and streams those
    // (Directed) to the writeback stage. Each writer verifies it consumed
    // exactly the announced bytes before its final flush — an end-to-end
    // completeness check on the decoupled dump path.
    struct DumpSummary {
      std::int32_t worker = -1;
      std::int32_t step = -1;
      std::uint64_t bytes = 0;
    };
    struct WriterManifest {
      std::uint64_t expected_bytes = 0;
    };
    const std::size_t batch_bytes =
        sizeof(std::uint64_t) + config.batch_particles * unit;
    const bool resilient = config.checkpoint_interval > 0;

    auto pipeline = decouple::Pipeline::over(self, self.world());
    if (resilient) {
      // Stream epochs + consumer failover for the whole chain. The bulk
      // batches stream runs manual durability: a writer's batches become
      // durable only when their bytes reach the file, so a writer crash
      // replays exactly the unflushed tail to the adopting writer.
      resilience::ResilienceOptions ro;
      ro.checkpoint_interval = config.checkpoint_interval;
      pipeline.with_resilience(ro);
    }
    const auto compute_stage = pipeline.stage(
        chained ? std::vector<int>(worker_ranks.begin(), worker_ranks.end() - 1)
                : std::vector<int>(worker_ranks.begin(), worker_ranks.end()));
    decouple::StageHandle reduce_stage;
    if (chained)
      reduce_stage = pipeline.stage(std::vector<int>{worker_ranks.back()});
    const auto write_stage =
        pipeline.stage({helper_ranks.begin(), helper_ranks.end()});
    decouple::StreamOptions batch_options;
    if (resilient) {
      // Writers have external effects: batches become durable at the file
      // flush, not at consumption (see ack_durable in write_fn below).
      batch_options.checkpoint_interval = config.checkpoint_interval;
      batch_options.manual_durability = true;
      // Directed keeps the exact Block routing (Channel::route's default
      // peer is the same block assignment) but upgrades termination to the
      // resilient tree-v2 release barrier: producers stay in their release
      // wait — replay logs alive, terms re-sendable — and writers stay in
      // operate() until every writer has flushed and acked the count
      // matrix. A writer crashing *inside its final flush* is then still
      // recoverable: nothing was released, so the survivors adopt its flows
      // and the producers replay the undurable tail to them.
      batch_options.mapping = decouple::Mapping::Directed;
    }
    const auto batches = pipeline.raw_stream_between(
        compute_stage, write_stage, batch_bytes, batch_options);
    decouple::StreamHandle<DumpSummary> summaries;
    decouple::StreamHandle<WriterManifest> manifests;
    if (chained) {
      summaries = pipeline.stream_between<DumpSummary>(compute_stage, reduce_stage);
      decouple::StreamOptions directed;
      directed.mapping = decouple::Mapping::Directed;
      manifests = pipeline.stream_between<WriterManifest>(reduce_stage, write_stage,
                                                          0, directed);
    }

    const auto compute_fn = [&](decouple::Context& ctx) {
      const int w = ctx.stage_member_index();
      auto& s = ctx[batches];
      const std::uint64_t my_count = counts[static_cast<std::size_t>(w)];
      std::vector<std::uint64_t> ids;
      for (int step = 0; step < config.steps; ++step) {
        self.compute(ns_time(config.ns_mover_per_particle *
                             static_cast<double>(my_count)),
                     "comp");
        const util::SimTime io_begin = self.now();
        self.process().trace_begin("io");
        // Stream the dump in batches; no waiting on storage.
        std::uint64_t step_bytes = 0;
        for (std::uint64_t first = 0; first < my_count;
             first += config.batch_particles) {
          const std::size_t batch = static_cast<std::size_t>(
              std::min<std::uint64_t>(config.batch_particles, my_count - first));
          if (config.real_data) {
            fill_ids(ids, w, step, first, batch);
            s.send_items(ids.data(), ids.size());
          } else {
            s.send_synthetic(batch * unit);
          }
          step_bytes += batch * unit;
        }
        if (chained) ctx[summaries].send(DumpSummary{w, step, step_bytes});
        self.process().trace_end();
        io_time[static_cast<std::size_t>(w)] +=
            util::to_seconds(self.now() - io_begin);
      }
    };

    const auto reduce_fn = [&](decouple::Context& ctx) {
      // Merge the per-dump summaries into per-writer byte totals, then
      // stream each writer its manifest (the chain's second hop).
      auto& in = ctx[summaries];
      auto& out = ctx[manifests];
      const int writers = ctx.stage_size(write_stage);
      const int producers = ctx.stage_size(compute_stage);
      std::vector<std::uint64_t> writer_bytes(static_cast<std::size_t>(writers),
                                              0);
      in.on_receive([&](const decouple::Element<DumpSummary>& el) {
        // Same block assignment the batches channel routes with (the reduce
        // stage holds an inert handle on that channel, so it uses the
        // closed form).
        const auto writer = static_cast<std::size_t>(
            stream::Channel::block_route(el.record.worker, producers, writers));
        writer_bytes[writer] += el.record.bytes;
      });
      in.operate();
      // Resilient chains announce the grand total to every writer: crashes,
      // rejoins, and elastic moves shift flows between writers mid-run, so
      // per-writer totals no longer bound any one writer's consumption —
      // the dump total still does.
      const std::uint64_t total =
          std::accumulate(writer_bytes.begin(), writer_bytes.end(),
                          std::uint64_t{0});
      for (int wr = 0; wr < writers; ++wr)
        out.send_to(
            wr, WriterManifest{
                    resilient ? total
                              : writer_bytes[static_cast<std::size_t>(wr)]});
    };

    const auto write_fn = [&](decouple::Context& ctx) {
      // Writeback: buffer aggressively, write rarely and big.
      auto& s = ctx[batches];
      mpi::File file(machine, s.channel().comm(), kFileName);
      // Idempotent (keyed) writeback: in resilient real-data mode each batch
      // is written at the offset its leading particle id determines, not
      // appended. A batch replayed after a writer crash — or redelivered
      // because the durability ack died with the writer — overwrites the
      // same bytes, so the dump is byte-identical to a fault-free run no
      // matter which writer flushes it, or how often.
      const bool keyed = resilient && config.real_data;
      struct Run {
        std::uint64_t offset = 0;
        std::size_t bytes = 0;
      };
      std::vector<Run> runs;  ///< keyed mode: file extents backing `buffer`
      std::vector<std::byte> buffer;
      buffer.reserve(config.real_data ? config.helper_buffer_bytes : 0);
      std::size_t buffered = 0;
      std::uint64_t consumed_bytes = 0;
      auto flush = [&] {
        if (buffered == 0) return;
        if (keyed) {
          std::size_t pos = 0;
          for (const Run& run : runs) {
            file.write_at(self, run.offset, SendBuf{buffer.data() + pos, run.bytes});
            pos += run.bytes;
          }
          runs.clear();
        } else {
          file.write_shared(self, config.real_data
                                      ? SendBuf{buffer.data(), buffer.size()}
                                      : SendBuf::synthetic(buffered));
        }
        buffer.clear();
        buffered = 0;
        // Durability point: everything consumed so far is on storage. A
        // crash after this ack replays only later batches; a crash before
        // it replays the batches whose bytes died in this writer's buffer.
        if (resilient) s.ack_durable();
      };
      s.on_receive([&](const decouple::RawElement& el) {
        if (keyed && el.data != nullptr && el.bytes >= sizeof(std::uint64_t)) {
          // Decode the deterministic fill_ids encoding of the batch's first
          // particle: worker, step, and index recover the keyed offset.
          std::uint64_t id = 0;
          std::memcpy(&id, el.data, sizeof id);
          const auto w64 = id >> 40;
          const auto step64 = (id >> 32) & 0xffu;
          const std::uint64_t first = id & 0xffffffffu;
          if (w64 >= counts.size() || first >= counts[static_cast<std::size_t>(w64)])
            throw std::runtime_error(
                "pic_io decoupled: batch id decodes outside the dump layout");
          const std::uint64_t offset =
              (step64 * units_per_step + prefix_units[static_cast<std::size_t>(w64)] +
               first) *
              unit;
          if (!runs.empty() && runs.back().offset + runs.back().bytes == offset)
            runs.back().bytes += el.bytes;  // contiguous with the previous batch
          else
            runs.push_back(Run{offset, el.bytes});
        }
        if (config.real_data && el.data) {
          const std::size_t base = buffer.size();
          buffer.resize(base + el.bytes);
          std::memcpy(buffer.data() + base, el.data, el.bytes);
        }
        buffered += el.bytes;
        consumed_bytes += el.bytes;
        if (buffered >= config.helper_buffer_bytes) flush();
      });
      // Durability-gated termination: the stream's release barrier invokes
      // the flush right before this writer's announce-ack (and before the
      // aggregator's release broadcast), so the release certifies that
      // every batch anywhere reached the file — producers hold their
      // replay logs, in their release wait and able to service failover,
      // until then. The flush must therefore happen *inside* operate(),
      // not after it: a writer past operate() could no longer consume the
      // replays a mid-flush crash of its peer would send here.
      if (resilient) s.on_durable_point(flush);
      s.operate();
      if (resilient) flush();  // safety net; normally a no-op after release
      if (chained) {
        // Completeness barrier: the reduce stage announces how many bytes
        // this writer must have seen before the data can be trusted on disk.
        std::uint64_t expected = 0;
        auto& m = ctx[manifests];
        m.on_receive([&](const decouple::Element<WriterManifest>& el) {
          expected += el.record.expected_bytes;
        });
        m.operate();
        // Plain chain: the writer saw exactly the announced bytes. Resilient
        // chain: the manifest announces the dump's grand total (flows move
        // between writers across crashes/rejoins), so the exactly-once bound
        // is one-sided — no writer may consume more than the whole dump.
        // Content itself is verified end to end by the byte-identity checks
        // in the tests.
        const bool mismatch =
            resilient ? consumed_bytes > expected : expected != consumed_bytes;
        if (mismatch)
          throw std::runtime_error(
              "pic_io decoupled: writer consumed byte count does not match "
              "the reduce stage's manifest");
      }
      flush();
    };

    if (chained)
      pipeline.run_stages({compute_fn, reduce_fn, write_fn});
    else
      pipeline.run_stages({compute_fn, write_fn});
  };

  result.seconds = util::to_seconds(machine.run(program));
  result.io_seconds = *std::max_element(io_time.begin(), io_time.end());
  result.file_bytes = machine.filesystem().open(kFileName)->size();
  if (config.real_data)
    result.file_content = machine.filesystem().open(kFileName)->content();
  return result;
}

}  // namespace ds::apps::pic
