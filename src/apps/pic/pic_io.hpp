// Particle I/O: the three write strategies of paper Sec. IV-D2 (Fig. 8).
//
//  * Collective — MPI_File_write_all with a per-dump file-view redefinition
//    (particle counts change every step, so iPIC3D must recompute
//    displacements and reset the view each time), then a two-phase
//    collective write.
//  * Shared     — MPI_File_write_shared: every rank independently appends
//    through the shared file pointer, serializing at the lock manager.
//  * Decoupled  — a chained pipeline (compute -> reduce -> writeback):
//    compute ranks stream particle batches to a writeback stage that
//    buffers aggressively in memory and issues few large writes,
//    overlapping compute with I/O (paper: "it can dedicate substantial
//    memory for buffering"). Alongside the bulk flow, per-dump summaries
//    stream to a reduce stage that merges them into per-writer byte
//    manifests; writers verify the manifest before their final flush — an
//    end-to-end completeness check on the decoupled dump path.
//
// Real-data mode writes actual particle ids so tests can verify that all
// three paths produce files with identical content (as a multiset).
#pragma once

#include <cstdint>

#include "apps/pic/particles.hpp"
#include "mpi/machine.hpp"

namespace ds::apps::pic {

enum class IoVariant { Collective, Shared, Decoupled };

struct PicIoConfig {
  std::uint64_t particles_per_rank = 250'000;
  int steps = 5;  ///< dumps
  double ns_mover_per_particle = 24.0;
  std::size_t particle_bytes = sizeof(Particle);

  int stride = 16;                              ///< decoupling split
  std::size_t batch_particles = 4096;           ///< stream element batch
  std::size_t helper_buffer_bytes = 64u << 20;  ///< flush threshold

  /// Place the writeback group node-aware (stream::Placement): instead of
  /// GroupPlan's rank-interleaved split, dedicate the tail ranks of each
  /// compute node — ceil(ranks_per_node / stride) of them, keeping the
  /// helper fraction ~1/stride — so every compute rank streams its dump
  /// batches to a writer on its own node (shared memory, not the fabric's
  /// shared links). Falls back to the interleaved split on machines without
  /// locality (ranks_per_node = 0 or single-rank nodes). The dump bytes are
  /// identical either way; only who writes them moves.
  bool node_aware_placement = false;

  /// Resilience for the decoupled chain (ds::resilience): elements per
  /// epoch on each flow, 0 = off. With it on, the writeback stage runs
  /// manual durability — a writer acknowledges its consumed batches only
  /// after flushing them to the file — so an injected writer crash (via
  /// mpi::MachineConfig::faults) replays exactly the batches whose bytes
  /// had not reached storage, and the surviving writer that adopts the dead
  /// writer's flows completes the dump byte-identically. In real-data mode
  /// the writeback is additionally *idempotent*: every batch is written at
  /// the file offset its leading particle id determines (step-major, then
  /// worker-major layout), so replayed or redelivered batches overwrite the
  /// same bytes and the dump is byte-identical to a fault-free run across
  /// producer crashes, writer crashes, and writer rejoins.
  std::uint32_t checkpoint_interval = 0;

  bool real_data = false;  ///< write real particle-id payloads
  std::uint64_t seed = 42;
};

struct PicIoResult {
  double seconds = 0.0;      ///< whole-app makespan
  double io_seconds = 0.0;   ///< max over compute ranks: time in dump phase
  std::uint64_t file_bytes = 0;
  std::vector<std::byte> file_content;  ///< real-data mode only
};

[[nodiscard]] PicIoResult run_pic_io(IoVariant variant, const PicIoConfig& config,
                                     const mpi::MachineConfig& machine_config);

/// The file name each run writes (for content inspection in tests).
[[nodiscard]] const char* pic_io_file_name();

}  // namespace ds::apps::pic
