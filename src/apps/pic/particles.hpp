// Particle model for the PIC mini-app (iPIC3D stand-in, paper Sec. IV-D).
//
// Particles free-stream in the unit cube with reflecting walls; the motion
// is deterministic, so a sequential oracle can follow every particle exactly
// and both exchange strategies must reproduce it bit for bit. The initial
// density follows a GEM-challenge-like current sheet: heavily concentrated
// around the y = 0.5 plane, which produces the skewed per-rank particle
// counts the paper's imbalance discussion builds on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mpi/cart.hpp"
#include "util/rng.hpp"

namespace ds::apps::pic {

struct Particle {
  double x = 0, y = 0, z = 0;
  double vx = 0, vy = 0, vz = 0;
  std::int64_t id = 0;
};
static_assert(sizeof(Particle) == 56);

/// Relative particle density at position y (GEM current sheet profile).
[[nodiscard]] double sheet_density(double y) noexcept;

/// Expected relative density of a rank's subdomain (used to skew counts in
/// modeled mode identically to the real initialization).
[[nodiscard]] double subdomain_density(const mpi::CartTopology& cart, int rank);

struct Domain {
  mpi::CartTopology cart;
  [[nodiscard]] std::array<double, 3> lo(int rank) const;
  [[nodiscard]] std::array<double, 3> hi(int rank) const;
  /// Rank whose box contains (x, y, z).
  [[nodiscard]] int owner(double x, double y, double z) const;
  [[nodiscard]] bool contains(int rank, const Particle& p) const;
};

/// Deterministically create `total_particles` over `ranks` subdomains with
/// sheet-skewed placement; returns per-rank particle lists.
[[nodiscard]] std::vector<std::vector<Particle>> initialize_particles(
    const Domain& domain, std::uint64_t total_particles, std::uint64_t seed);

/// Advance one particle by dt with reflecting walls.
void move_particle(Particle& p, double dt) noexcept;

/// Sequential oracle: advance every rank's particles `steps` times and
/// redistribute by ownership after each step. Returns final per-rank lists.
[[nodiscard]] std::vector<std::vector<Particle>> oracle_advance(
    const Domain& domain, std::vector<std::vector<Particle>> particles,
    int steps, double dt);

/// Stable content signature of a particle list (order independent).
[[nodiscard]] std::uint64_t particle_signature(const std::vector<Particle>& list);

/// Modeled per-rank particle counts, sheet-skewed, summing exactly to
/// `total_particles` (used by the modeled app modes; the decoupled variants
/// spread the same total over fewer compute ranks).
[[nodiscard]] std::vector<std::uint64_t> modeled_rank_counts(
    const Domain& domain, std::uint64_t total_particles);

}  // namespace ds::apps::pic
