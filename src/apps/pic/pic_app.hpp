// PIC mini-app: particle mover plus the two particle-communication
// strategies of paper Sec. IV-D1 (Figs. 2 and 7).
//
//  * Reference — iPIC3D's optimized scheme: each process forwards exiting
//    particles only to its six face neighbours, repeating rounds (bounded by
//    DimX+DimY+DimZ) until a global allreduce reports no particle in
//    flight.
//  * Decoupled — exiting particles stream to a helper group; helpers
//    aggregate by destination and forward each aggregate in one pass, so a
//    particle takes at most two hops (G0 -> G1 -> G0). Per-step closure
//    works with END markers from producers and per-destination CLOSE
//    elements from helpers.
//
// Real-data mode moves actual particles and must reproduce the sequential
// oracle exactly; modeled mode carries real count headers (so conservation
// holds and closure logic is identical) with synthetic particle payloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/pic/particles.hpp"
#include "mpi/machine.hpp"

namespace ds::apps::pic {

enum class ExchangeVariant { Reference, Decoupled };

struct PicConfig {
  std::uint64_t particles_per_rank = 250'000;  ///< paper: ~2e9 / 8192
  int steps = 10;
  double dt = 0.05;

  double ns_mover_per_particle = 24.0;  ///< trajectory + moments work
  double ns_aggregate_per_byte = 0.25;  ///< helper-side aggregation
  std::size_t particle_bytes = sizeof(Particle);

  /// Modeled mode: expected fraction of a rank's particles exiting per step,
  /// and the fraction of forwarded particles needing a second hop in the
  /// reference scheme (corner/edge crossings).
  double exit_fraction = 0.08;
  double second_hop_fraction = 0.04;

  int stride = 16;  ///< decoupling: one helper per `stride` ranks

  /// Decoupled variant: when true, workers never block on incoming
  /// particles during the run — arrivals are drained opportunistically and
  /// integrate into whichever step is current, as in the paper's
  /// implementation (iPIC3D tolerates that relaxed consistency); everything
  /// is reconciled in a final drain, so conservation stays exact. Modeled
  /// mode only; real-data mode always uses strict per-step closure so the
  /// oracle comparison is exact.
  bool relaxed_arrival = false;

  bool real_data = false;
  std::uint64_t seed = 42;
};

struct PicResult {
  double seconds = 0.0;       ///< whole-app virtual makespan
  double comm_seconds = 0.0;  ///< max over compute ranks: time in exchange
  std::uint64_t total_particles_end = 0;  ///< conservation check
  std::vector<std::vector<Particle>> final_particles;  ///< real mode
};

[[nodiscard]] PicResult run_pic(ExchangeVariant variant, const PicConfig& config,
                                const mpi::MachineConfig& machine_config);

/// Like run_pic, but with observability fully on (paper Fig. 2's HPCToolkit
/// view): auto-instrumented per-rank timelines (compute, blocked waits,
/// collectives, stream operate), exported as ASCII, CSV, a Chrome
/// trace-event JSON (loadable in Perfetto), and a ds.metrics.v1 document.
struct PicTraceResult {
  PicResult result;
  std::string ascii_trace;
  std::string csv_trace;
  std::string chrome_trace;  ///< trace-event JSON (Perfetto / chrome://tracing)
  std::string metrics_json;  ///< ds.metrics.v1
};
[[nodiscard]] PicTraceResult run_pic_traced(ExchangeVariant variant,
                                            const PicConfig& config,
                                            mpi::MachineConfig machine_config);

/// Compute-rank count for a variant (world size for the reference, the
/// worker count for the decoupled run) and the matching particle domain.
[[nodiscard]] int compute_ranks_of(ExchangeVariant variant, const PicConfig& config,
                                   int world_size);
[[nodiscard]] Domain domain_of(int compute_ranks);

}  // namespace ds::apps::pic
