#include "apps/pic/particles.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace ds::apps::pic {

double sheet_density(double y) noexcept {
  const double d = (y - 0.5) / 0.15;
  return 0.2 + 2.4 * std::exp(-d * d);
}

std::array<double, 3> Domain::lo(int rank) const {
  const auto c = cart.coords_of(rank);
  const auto& d = cart.dims();
  return {static_cast<double>(c[0]) / d[0], static_cast<double>(c[1]) / d[1],
          static_cast<double>(c[2]) / d[2]};
}

std::array<double, 3> Domain::hi(int rank) const {
  const auto c = cart.coords_of(rank);
  const auto& d = cart.dims();
  return {static_cast<double>(c[0] + 1) / d[0],
          static_cast<double>(c[1] + 1) / d[1],
          static_cast<double>(c[2] + 1) / d[2]};
}

int Domain::owner(double x, double y, double z) const {
  const auto& d = cart.dims();
  auto clamp_coord = [](double v, int n) {
    int c = static_cast<int>(v * n);
    return std::clamp(c, 0, n - 1);
  };
  return cart.rank_of({clamp_coord(x, d[0]), clamp_coord(y, d[1]),
                       clamp_coord(z, d[2])});
}

bool Domain::contains(int rank, const Particle& p) const {
  return owner(p.x, p.y, p.z) == rank;
}

double subdomain_density(const mpi::CartTopology& cart, int rank) {
  // Average the sheet profile over the rank's x-extent (midpoint rule over a
  // few samples keeps it cheap and deterministic). The sheet is oriented
  // perpendicular to the x axis — the most-divided dimension of the process
  // grid — so the skew is visible for every decomposition, including 1-D.
  const auto c = cart.coords_of(rank);
  const double x0 = static_cast<double>(c[0]) / cart.dims()[0];
  const double x1 = static_cast<double>(c[0] + 1) / cart.dims()[0];
  double sum = 0.0;
  constexpr int kSamples = 8;
  for (int s = 0; s < kSamples; ++s)
    sum += sheet_density(x0 + (x1 - x0) * (s + 0.5) / kSamples);
  return sum / kSamples;
}

std::vector<std::vector<Particle>> initialize_particles(
    const Domain& domain, std::uint64_t total_particles, std::uint64_t seed) {
  const int ranks = domain.cart.size();
  std::vector<std::vector<Particle>> per_rank(static_cast<std::size_t>(ranks));
  util::Rng rng = util::Rng::for_stream(seed, 0xFA111);
  for (std::uint64_t i = 0; i < total_particles; ++i) {
    Particle p;
    p.id = static_cast<std::int64_t>(i);
    // Rejection-sample the sheet profile in x; uniform in y/z.
    do {
      p.x = rng.next_double();
    } while (rng.next_double() * 2.6 > sheet_density(p.x));
    p.y = rng.next_double();
    p.z = rng.next_double();
    p.vx = rng.normal(0.0, 0.08);
    p.vy = rng.normal(0.0, 0.08);
    p.vz = rng.normal(0.0, 0.08);
    per_rank[static_cast<std::size_t>(domain.owner(p.x, p.y, p.z))].push_back(p);
  }
  return per_rank;
}

void move_particle(Particle& p, double dt) noexcept {
  auto reflect = [](double& pos, double& vel) {
    if (pos < 0.0) {
      pos = -pos;
      vel = -vel;
    } else if (pos >= 1.0) {
      pos = 2.0 - pos;
      vel = -vel;
      // A particle exactly on the wall after reflection stays inside.
      if (pos >= 1.0) pos = std::nextafter(1.0, 0.0);
    }
  };
  p.x += p.vx * dt;
  p.y += p.vy * dt;
  p.z += p.vz * dt;
  reflect(p.x, p.vx);
  reflect(p.y, p.vy);
  reflect(p.z, p.vz);
}

std::vector<std::vector<Particle>> oracle_advance(
    const Domain& domain, std::vector<std::vector<Particle>> particles,
    int steps, double dt) {
  for (int s = 0; s < steps; ++s) {
    std::vector<std::vector<Particle>> next(particles.size());
    for (auto& list : particles) {
      for (Particle p : list) {
        move_particle(p, dt);
        next[static_cast<std::size_t>(domain.owner(p.x, p.y, p.z))].push_back(p);
      }
    }
    particles = std::move(next);
  }
  return particles;
}

std::vector<std::uint64_t> modeled_rank_counts(const Domain& domain,
                                               std::uint64_t total_particles) {
  const int ranks = domain.cart.size();
  std::vector<double> density(static_cast<std::size_t>(ranks));
  double sum = 0.0;
  for (int r = 0; r < ranks; ++r) {
    density[static_cast<std::size_t>(r)] = subdomain_density(domain.cart, r);
    sum += density[static_cast<std::size_t>(r)];
  }
  const double total = static_cast<double>(total_particles);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(ranks));
  std::uint64_t assigned = 0;
  for (int r = 0; r < ranks; ++r) {
    counts[static_cast<std::size_t>(r)] = static_cast<std::uint64_t>(
        total * density[static_cast<std::size_t>(r)] / sum);
    assigned += counts[static_cast<std::size_t>(r)];
  }
  counts[0] += static_cast<std::uint64_t>(total) - assigned;  // exact total
  return counts;
}

std::uint64_t particle_signature(const std::vector<Particle>& list) {
  // Order-independent: combine per-particle hashes with addition.
  std::uint64_t total = 0;
  for (const Particle& p : list) {
    std::uint64_t h = static_cast<std::uint64_t>(p.id) * 0x9E3779B97F4A7C15ull;
    auto mix = [&h](double v) {
      std::uint64_t bits;
      static_assert(sizeof bits == sizeof v);
      std::memcpy(&bits, &v, sizeof bits);
      h = (h ^ bits) * 0xBF58476D1CE4E5B9ull;
    };
    mix(p.x);
    mix(p.y);
    mix(p.z);
    mix(p.vx);
    mix(p.vy);
    mix(p.vz);
    total += h ^ (h >> 31);
  }
  return total;
}

}  // namespace ds::apps::pic
