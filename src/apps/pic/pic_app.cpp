#include "apps/pic/pic_app.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>

#include "core/decouple.hpp"
#include "core/group_plan.hpp"
#include "mpi/rank.hpp"

namespace ds::apps::pic {

namespace {

using mpi::Rank;
using mpi::RecvBuf;
using mpi::SendBuf;

[[nodiscard]] util::SimTime ns_time(double ns) {
  return static_cast<util::SimTime>(std::max(0.0, ns));
}

/// Element header for decoupled particle streams.
struct PartHeader {
  std::int32_t kind = 0;     ///< 0 = batch, 1 = end-of-step, 2 = close
  std::int32_t step = -1;
  std::int32_t dest = -1;    ///< destination worker (batch/close)
  std::int32_t count = 0;    ///< particles carried / aggregated
};

/// Sort exiting particles (one mover step applied) from `mine` into
/// per-destination lists; keeps residents in `mine`.
void split_exits(const Domain& domain, int my_rank, std::vector<Particle>& mine,
                 std::map<int, std::vector<Particle>>& exits, double dt) {
  std::vector<Particle> stay;
  stay.reserve(mine.size());
  for (Particle p : mine) {
    move_particle(p, dt);
    const int owner = domain.owner(p.x, p.y, p.z);
    if (owner == my_rank)
      stay.push_back(p);
    else
      exits[owner].push_back(p);
  }
  mine = std::move(stay);
}

}  // namespace

int compute_ranks_of(ExchangeVariant variant, const PicConfig& config,
                     int world_size) {
  if (variant == ExchangeVariant::Reference) return world_size;
  return world_size - world_size / config.stride;
}

Domain domain_of(int compute_ranks) {
  return Domain{mpi::CartTopology(mpi::CartTopology::dims_create(compute_ranks),
                                  {false, false, false})};
}

// ------------------------------------------------------------- reference --
namespace {

void run_reference_program(Rank& self, const PicConfig& cfg, const Domain& domain,
                           PicResult& result,
                           std::vector<std::vector<Particle>>& particles,
                           std::vector<std::uint64_t>& counts,
                           std::vector<double>& comm_time) {
  const int me = self.rank_in(self.world());
  const auto neighbors = domain.cart.face_neighbors(me);
  const auto my_coords = domain.cart.coords_of(me);
  util::Rng exit_rng = util::Rng::for_stream(cfg.seed ^ 0xE817, me);

  std::vector<int> present_faces;
  for (int f = 0; f < 6; ++f)
    if (neighbors[static_cast<std::size_t>(f)] >= 0) present_faces.push_back(f);

  auto& mine = particles[static_cast<std::size_t>(me)];
  std::uint64_t my_count =
      cfg.real_data ? mine.size() : counts[static_cast<std::size_t>(me)];

  for (int step = 0; step < cfg.steps; ++step) {
    // ---- mover (and moments) ----
    self.compute(ns_time(cfg.ns_mover_per_particle * static_cast<double>(my_count)),
                 "comp");

    std::map<int, std::vector<Particle>> exits;  // real mode: by final owner
    std::uint64_t modeled_outgoing = 0;
    if (cfg.real_data) {
      split_exits(domain, me, mine, exits, cfg.dt);
    } else {
      const double jitter = 0.6 + 0.8 * exit_rng.next_double();
      modeled_outgoing = static_cast<std::uint64_t>(
          cfg.exit_fraction * jitter * static_cast<double>(my_count));
      my_count -= modeled_outgoing;
    }

    // ---- iterative six-neighbour forwarding (rounds bounded by
    //      DimX + DimY + DimZ, terminated by a global allreduce) ----
    const util::SimTime comm_begin = self.now();
    while (true) {
      std::uint64_t received_total = 0;
      std::size_t present_index = 0;
      for (int f = 0; f < 6; ++f) {
        const int nbr = neighbors[static_cast<std::size_t>(f)];
        if (nbr < 0) continue;
        // Count exchange, then payload exchange (sizes now known). Tag
        // pairing: my face f talks to the neighbour's face f^1.
        std::uint64_t send_count = 0;
        std::vector<Particle> outgoing;
        if (cfg.real_data) {
          // Forward everything whose destination lies further along this
          // direction one hop toward it.
          for (auto it = exits.begin(); it != exits.end();) {
            const auto dest_coords = domain.cart.coords_of(it->first);
            const auto d = static_cast<std::size_t>(f / 2);
            const bool along = (f % 2 == 0) ? dest_coords[d] < my_coords[d]
                                            : dest_coords[d] > my_coords[d];
            if (along) {
              outgoing.insert(outgoing.end(), it->second.begin(),
                              it->second.end());
              it = exits.erase(it);
            } else {
              ++it;
            }
          }
          send_count = outgoing.size();
        } else {
          // Split this round's outgoing over the present faces, exactly.
          const auto faces = present_faces.size();
          send_count = modeled_outgoing / faces +
                       (present_index < modeled_outgoing % faces ? 1 : 0);
          ++present_index;
        }

        std::uint64_t recv_count = 0;
        self.sendrecv(self.world(), nbr, /*send_tag=*/100 + f,
                      SendBuf::of(&send_count, 1), nbr,
                      /*recv_tag=*/100 + (f ^ 1), RecvBuf::of(&recv_count, 1));
        std::vector<Particle> incoming(cfg.real_data ? recv_count : 0);
        self.sendrecv(
            self.world(), nbr, /*send_tag=*/200 + f,
            cfg.real_data ? SendBuf::of(outgoing.data(), outgoing.size())
                          : SendBuf::synthetic(send_count * cfg.particle_bytes),
            nbr, /*recv_tag=*/200 + (f ^ 1),
            cfg.real_data ? RecvBuf::of(incoming.data(), incoming.size())
                          : RecvBuf::discard(recv_count * cfg.particle_bytes));

        received_total += recv_count;
        if (cfg.real_data) {
          for (const Particle& p : incoming) {
            if (domain.contains(me, p)) {
              mine.push_back(p);
            } else {
              exits[domain.owner(p.x, p.y, p.z)].push_back(p);
            }
          }
        }
      }

      std::uint64_t still_moving = 0;
      if (cfg.real_data) {
        for (const auto& [dest, list] : exits) still_moving += list.size();
      } else {
        // A small tail of what just arrived crossed a corner/edge and needs
        // another hop; the rest settles here. Conservation is exact.
        const auto next_out = static_cast<std::uint64_t>(
            cfg.second_hop_fraction * static_cast<double>(received_total));
        my_count += received_total - next_out;
        modeled_outgoing = next_out;
        still_moving = next_out;
      }

      std::uint64_t global_moving = 0;
      self.allreduce(self.world(), SendBuf::of(&still_moving, 1), &global_moving,
                     mpi::reduce_sum<std::uint64_t>());
      if (global_moving == 0) break;
    }
    comm_time[static_cast<std::size_t>(me)] +=
        util::to_seconds(self.now() - comm_begin);
    if (cfg.real_data) my_count = mine.size();
  }

  if (cfg.real_data) {
    result.final_particles[static_cast<std::size_t>(me)] = mine;
    counts[static_cast<std::size_t>(me)] = mine.size();
  } else {
    counts[static_cast<std::size_t>(me)] = my_count;
  }
}

}  // namespace

// --------------------------------------------------------------- decoupled --
namespace {

void run_decoupled_program(Rank& self, const PicConfig& cfg, const Domain& domain,
                           const stream::GroupPlan& plan, PicResult& result,
                           std::vector<std::vector<Particle>>& particles,
                           std::vector<std::uint64_t>& counts,
                           std::vector<double>& comm_time) {
  // Element sizing: a batch carries up to one full exit wave; keep a
  // generous cap so real tests never overflow.
  const std::size_t max_batch =
      sizeof(PartHeader) +
      cfg.particle_bytes *
          std::max<std::size_t>(
              4096, static_cast<std::size_t>(
                        2.0 * cfg.exit_fraction *
                        static_cast<double>(cfg.particles_per_rank)));
  const std::size_t batch_payload = max_batch - sizeof(PartHeader);

  decouple::StreamOptions out_options;  // Block mapping toward the helpers
  // Both streams ride the default coalesced transport. Outbound particle
  // batches are element-sized chunks (typically far above the frame budget,
  // so they bypass coalescing), but end-of-step markers and small tail
  // chunks pack into frames with whatever was injected at the same instant.
  // The closure protocol's latency is untouched: the same-instant backstop
  // flushes the moment the worker blocks waiting on its closes.
  decouple::StreamOptions back_options;
  back_options.direction = decouple::Direction::ToWorkers;
  back_options.mapping = decouple::Mapping::Directed;
  // CLOSE notifications are small directed records fanning from each helper
  // to its workers: frames pack a helper's same-instant closes per worker.

  auto pipeline = decouple::Pipeline::over(self, self.world()).with_plan(plan);
  auto outflow = pipeline.stream<PartHeader>(batch_payload, out_options);
  auto backflow = pipeline.stream<PartHeader>(batch_payload, back_options);

  const auto worker_program = [&](decouple::Context& ctx) {
    const int w = ctx.worker_index();
    const auto neighbors = domain.cart.face_neighbors(w);
    // Particles can cross corners in one step, so closure spans the Moore
    // neighbourhood: I expect one CLOSE per distinct helper of any
    // Moore-neighbour (they hold everything that can reach me in one hop).
    const auto moore = domain.cart.moore_neighbors(w);
    std::set<int> close_sources;
    for (const int v : moore) close_sources.insert(ctx.helper_of(v));

    util::Rng exit_rng = util::Rng::for_stream(cfg.seed ^ 0xE817, w);
    auto& mine = particles[static_cast<std::size_t>(w)];
    std::uint64_t my_count =
        cfg.real_data ? mine.size() : counts[static_cast<std::size_t>(w)];

    const bool relaxed = cfg.relaxed_arrival && !cfg.real_data;
    auto& s_out = ctx[outflow];
    auto& s_back = ctx[backflow];
    int closes_seen = 0;        // strict mode: closes for the current step
    int closes_total = 0;       // relaxed mode: closes across the whole run
    int current_step = -1;
    // A neighbour can run one step ahead, so its helper's CLOSE for step k+1
    // may arrive while we still wait on step k; stash and apply in order so
    // early arrivals are not moved twice (strict mode only — relaxed mode
    // integrates arrivals immediately by design).
    struct StashedClose {
      PartHeader header;
      std::vector<Particle> incoming;
    };
    std::map<int, std::vector<StashedClose>> stashed;
    auto apply_close = [&](const PartHeader& h, std::vector<Particle> incoming) {
      if (h.kind == 2) {  // final chunk for this (helper, step)
        ++closes_seen;
        ++closes_total;
      }
      if (cfg.real_data) {
        for (const Particle& p : incoming) mine.push_back(p);
      } else {
        my_count += static_cast<std::uint64_t>(h.count);
      }
    };
    s_back.on_receive([&](const decouple::Element<PartHeader>& el) {
      if (el.synthetic) return;
      const PartHeader& h = el.record;
      if (h.dest != w || (!relaxed && h.step < current_step))
        throw std::logic_error("pic decoupled: misrouted close element");
      std::vector<Particle> incoming;
      if (cfg.real_data && h.count > 0)
        el.payload_to(incoming, static_cast<std::size_t>(h.count));
      if (relaxed || h.step == current_step) {
        apply_close(h, std::move(incoming));
      } else {
        stashed[h.step].push_back(StashedClose{h, std::move(incoming)});
      }
    });

    for (int step = 0; step < cfg.steps; ++step) {
      self.compute(
          ns_time(cfg.ns_mover_per_particle * static_cast<double>(my_count)),
          "comp");

      const util::SimTime comm_begin = self.now();
      current_step = step;
      closes_seen = 0;
      if (cfg.real_data) {
        std::map<int, std::vector<Particle>> exits;
        split_exits(domain, w, mine, exits, cfg.dt);
        for (auto& [dest, list] : exits) {
          // The closure protocol covers one subdomain of travel per step;
          // faster particles would need a smaller dt.
          if (!std::binary_search(moore.begin(), moore.end(), dest))
            throw std::logic_error(
                "pic decoupled: particle crossed more than one subdomain per "
                "step; reduce dt");
          const PartHeader h{0, step, dest,
                             static_cast<std::int32_t>(list.size())};
          s_out.send(h, list.data(), list.size());
        }
      } else {
        const double jitter = 0.6 + 0.8 * exit_rng.next_double();
        std::uint64_t outgoing = static_cast<std::uint64_t>(
            cfg.exit_fraction * jitter * static_cast<double>(my_count));
        my_count -= outgoing;
        // Spread exits across the real neighbours.
        std::vector<int> nbrs;
        for (int f = 0; f < 6; ++f)
          if (neighbors[static_cast<std::size_t>(f)] >= 0)
            nbrs.push_back(neighbors[static_cast<std::size_t>(f)]);
        const std::uint64_t chunk_limit = batch_payload / cfg.particle_bytes;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          std::uint64_t share =
              outgoing / nbrs.size() + (i < outgoing % nbrs.size() ? 1 : 0);
          // Ship in element-sized chunks (fine-grained stream elements).
          do {
            const std::uint64_t n = std::min(chunk_limit, share);
            const PartHeader h{0, step, nbrs[i], static_cast<std::int32_t>(n)};
            s_out.send_modeled(
                h, static_cast<std::size_t>(n) * cfg.particle_bytes);
            share -= n;
          } while (share > 0);
        }
      }
      // End-of-step marker; then either wait for this step's closes (strict)
      // or just drain whatever has already arrived (relaxed).
      s_out.send(PartHeader{1, step, w, 0});
      if (relaxed) {
        s_back.drain();
      } else {
        if (auto it = stashed.find(step); it != stashed.end()) {
          for (auto& sc : it->second)
            apply_close(sc.header, std::move(sc.incoming));
          stashed.erase(it);
        }
        s_back.operate_while([&] {
          return closes_seen < static_cast<int>(close_sources.size());
        });
      }
      comm_time[static_cast<std::size_t>(w)] +=
          util::to_seconds(self.now() - comm_begin);
      if (cfg.real_data) my_count = mine.size();
    }
    if (relaxed) {
      // Final reconciliation: every step's closes must land so the particle
      // count is exact before reporting.
      const int expected = cfg.steps * static_cast<int>(close_sources.size());
      s_back.operate_while([&] { return closes_total < expected; });
    }
    if (cfg.real_data) {
      result.final_particles[static_cast<std::size_t>(w)] = mine;
      counts[static_cast<std::size_t>(w)] = mine.size();
    } else {
      counts[static_cast<std::size_t>(w)] = my_count;
    }
  };

  const auto helper_program = [&](decouple::Context& ctx) {
    // ---- helper: aggregate by destination, forward in one pass ----
    const int h_idx = ctx.helper_index();
    const int workers = ctx.worker_count();
    std::vector<int> my_producers;  // worker indices streaming to me
    for (int w = 0; w < workers; ++w)
      if (ctx.helper_of(w) == h_idx) my_producers.push_back(w);
    // Destinations I close each step, and for each the producers whose END
    // gates the close: only the destination's Moore neighbours assigned to
    // me. Gating on *all* producers would turn every step into a semi-global
    // barrier through the helper and destroy imbalance absorption.
    std::map<int, std::vector<int>> relevant_producers;  // dest -> producers
    for (const int w : my_producers)
      for (const int dest : domain.cart.moore_neighbors(w))
        relevant_producers[dest].push_back(w);

    struct DestSlot {
      int ends = 0;
      std::vector<Particle> real_particles;
      std::uint64_t count = 0;
    };
    std::map<std::pair<int, int>, DestSlot> slots;  // (step, dest) -> slot

    auto& s_out = ctx[outflow];
    auto& s_back = ctx[backflow];
    // One aggregate can exceed an element (many neighbours funnel into one
    // destination), so flush in chunks; only the last chunk carries the
    // CLOSE kind that advances the worker's step.
    const std::uint64_t chunk_particles = batch_payload / cfg.particle_bytes;
    auto flush_dest = [&](int step, int dest, DestSlot& slot) {
      const std::uint64_t total =
          cfg.real_data ? slot.real_particles.size() : slot.count;
      self.compute(ns_time(cfg.ns_aggregate_per_byte *
                           static_cast<double>(total * cfg.particle_bytes)),
                   "agg");
      std::uint64_t sent = 0;
      do {
        const std::uint64_t n = std::min(chunk_particles, total - sent);
        const bool last = sent + n == total;
        const PartHeader h{last ? 2 : 0, step, dest,
                           static_cast<std::int32_t>(n)};
        if (cfg.real_data) {
          s_back.send_to(dest, h, slot.real_particles.data() + sent,
                         static_cast<std::size_t>(n));
        } else {
          s_back.send_modeled_to(
              dest, h, static_cast<std::size_t>(n) * cfg.particle_bytes);
        }
        sent += n;
      } while (sent < total);
    };
    s_out.on_receive([&](const decouple::Element<PartHeader>& el) {
      if (el.synthetic) return;
      const PartHeader& h = el.record;
      if (h.kind == 1) {
        // END from producer h.dest (==w): advance every destination it gates.
        const int producer = h.dest;
        for (const int dest : domain.cart.moore_neighbors(producer)) {
          auto& slot = slots[{h.step, dest}];
          const auto& gate = relevant_producers.at(dest);
          if (++slot.ends == static_cast<int>(gate.size())) {
            flush_dest(h.step, dest, slot);
            slots.erase({h.step, dest});
          }
        }
        return;
      }
      auto& slot = slots[{h.step, h.dest}];
      if (cfg.real_data && h.count > 0) {
        const auto n = static_cast<std::size_t>(h.count);
        auto& list = slot.real_particles;
        const std::size_t base = list.size();
        list.resize(base + n);
        std::memcpy(list.data() + base, el.payload, n * sizeof(Particle));
      } else {
        slot.count += static_cast<std::uint64_t>(h.count);
      }
    });
    s_out.operate();
  };

  pipeline.run(worker_program, helper_program);
}

}  // namespace

namespace {
PicResult run_pic_on(mpi::Machine& machine, ExchangeVariant variant,
                     const PicConfig& config) {
  const int size = machine.world_size();
  const int compute_ranks = compute_ranks_of(variant, config, size);
  const Domain domain = domain_of(compute_ranks);

  PicResult result;
  // Fair comparison (paper Sec. IV-A): same total workload and same total
  // process count; the decoupled variant spreads the same particles over
  // fewer compute ranks.
  const std::uint64_t total_particles =
      config.particles_per_rank * static_cast<std::uint64_t>(size);
  std::vector<std::vector<Particle>> particles;
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(compute_ranks), 0);
  if (config.real_data) {
    particles = initialize_particles(domain, total_particles, config.seed);
    result.final_particles.resize(static_cast<std::size_t>(compute_ranks));
  } else {
    particles.resize(static_cast<std::size_t>(compute_ranks));
    counts = modeled_rank_counts(domain, total_particles);
  }
  std::vector<double> comm_time(static_cast<std::size_t>(compute_ranks), 0.0);

  stream::GroupPlan plan;
  if (variant == ExchangeVariant::Decoupled)
    plan = stream::GroupPlan::interleaved(machine.world(), config.stride);

  const auto program = [&](Rank& self) {
    if (variant == ExchangeVariant::Reference) {
      run_reference_program(self, config, domain, result, particles, counts,
                            comm_time);
    } else {
      run_decoupled_program(self, config, domain, plan, result, particles,
                            counts, comm_time);
    }
  };
  result.seconds = util::to_seconds(machine.run(program));
  result.comm_seconds = *std::max_element(comm_time.begin(), comm_time.end());
  for (const std::uint64_t c : counts) result.total_particles_end += c;
  return result;
}
}  // namespace

PicResult run_pic(ExchangeVariant variant, const PicConfig& config,
                  const mpi::MachineConfig& machine_config) {
  mpi::Machine machine(machine_config);
  return run_pic_on(machine, variant, config);
}

PicTraceResult run_pic_traced(ExchangeVariant variant, const PicConfig& config,
                              mpi::MachineConfig machine_config) {
  machine_config.observability = obs::ObsConfig::all();
  mpi::Machine machine(machine_config);
  PicTraceResult traced;
  traced.result = run_pic_on(machine, variant, config);
  if (auto* trace = machine.engine().trace()) {
    traced.ascii_trace = trace->to_ascii();
    traced.csv_trace = trace->to_csv();
    traced.chrome_trace = trace->to_chrome_json();
  }
  if (auto* metrics = machine.metrics()) traced.metrics_json = metrics->to_json();
  return traced;
}

}  // namespace ds::apps::pic
