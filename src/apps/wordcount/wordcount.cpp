#include "apps/wordcount/wordcount.hpp"

#include <algorithm>
#include <cstring>

#include "core/decouple.hpp"
#include "core/group_plan.hpp"
#include "mpi/rank.hpp"

namespace ds::apps::wordcount {

namespace {

using mpi::Rank;
using mpi::SendBuf;

constexpr double kKeyBytes = 4.0;    // serialized key id
constexpr double kCountBytes = 8.0;  // serialized count

[[nodiscard]] util::SimTime ns_cost(double ns_per_byte, std::uint64_t bytes) {
  return static_cast<util::SimTime>(ns_per_byte * static_cast<double>(bytes));
}

/// Map one rank's files block by block; `emit` is called once per block with
/// (file, block index, block bytes).
template <typename Emit>
void map_files(Rank& self, const WordcountConfig& cfg, const Corpus& corpus,
               int owner, int owners, Emit&& emit) {
  for (const int file : corpus.files_of(owner, owners)) {
    std::uint64_t remaining = corpus.file_bytes(file);
    int block = 0;
    while (remaining > 0) {
      const std::uint64_t chunk = std::min<std::uint64_t>(remaining, cfg.block_bytes);
      self.compute(ns_cost(cfg.map_ns_per_byte, chunk), "map");
      emit(file, block, chunk);
      remaining -= chunk;
      ++block;
    }
  }
}

void merge_into(std::vector<std::uint64_t>& accum,
                const std::vector<std::uint64_t>& part) {
  if (accum.size() < part.size()) accum.resize(part.size(), 0);
  for (std::size_t i = 0; i < part.size(); ++i) accum[i] += part[i];
}

}  // namespace

std::uint64_t blocks_of(const WordcountConfig& config, std::uint64_t bytes) {
  return (bytes + config.block_bytes - 1) / config.block_bytes;
}

std::vector<std::uint64_t> sequential_histogram(const WordcountConfig& config,
                                                int map_tasks) {
  const Corpus corpus(config.corpus, map_tasks);
  std::vector<std::uint64_t> hist(config.corpus.sample_vocabulary, 0);
  for (int file = 0; file < corpus.file_count(); ++file) {
    const auto blocks =
        static_cast<int>(blocks_of(config, corpus.file_bytes(file)));
    for (int b = 0; b < blocks; ++b)
      corpus.sample_block(file, b, config.words_per_block_real, hist);
  }
  return hist;
}

// --------------------------------------------------------------- reference --
WordcountResult run_reference(const WordcountConfig& config,
                              const mpi::MachineConfig& machine_config) {
  mpi::Machine machine(machine_config);
  const int size = machine.world_size();
  const Corpus corpus(config.corpus, size);
  WordcountResult result;

  const auto program = [&](Rank& self) {
    const int me = self.rank_in(self.world());
    const std::uint64_t my_bytes = corpus.bytes_of(me, size);

    // ---- map: every process maps its own files ----
    std::vector<std::uint64_t> local_hist;
    map_files(self, config, corpus, me, size,
              [&](int file, int block, std::uint64_t /*chunk*/) {
                if (config.real_data)
                  corpus.sample_block(file, block, config.words_per_block_real,
                                      local_hist);
              });

    // ---- key-set union via nonblocking allgatherv (overlaps with the
    //      local combine pass), then count reduction via nonblocking reduce.
    std::vector<std::size_t> key_counts(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      key_counts[static_cast<std::size_t>(r)] =
          config.real_data
              ? config.corpus.sample_vocabulary * static_cast<std::size_t>(kKeyBytes)
              : corpus.distinct_words(corpus.bytes_of(r, size)) *
                    static_cast<std::size_t>(kKeyBytes);
    }
    std::vector<std::uint32_t> my_keys;
    mpi::Request keys_req;
    if (config.real_data) {
      my_keys.resize(config.corpus.sample_vocabulary);
      for (std::uint32_t k = 0; k < my_keys.size(); ++k) my_keys[k] = k;
      keys_req = self.iallgatherv(
          self.world(), SendBuf::of(my_keys.data(), my_keys.size()),
          /*out=*/nullptr, key_counts);
    } else {
      keys_req = self.iallgatherv(
          self.world(),
          SendBuf::synthetic(key_counts[static_cast<std::size_t>(me)]),
          /*out=*/nullptr, key_counts);
    }

    // Local combine of intermediate pairs overlaps the allgatherv.
    self.compute(ns_cost(config.reduce_ns_per_byte, my_bytes), "reduce");
    self.wait(keys_req);

    // Count reduction over the union key set.
    if (config.real_data) {
      local_hist.resize(config.corpus.sample_vocabulary, 0);
      std::vector<std::uint64_t> global(local_hist.size(), 0);
      self.reduce(self.world(), /*root=*/0,
                  SendBuf::of(local_hist.data(), local_hist.size()),
                  global.data(), mpi::reduce_sum<std::uint64_t>());
      if (me == 0) result.histogram = std::move(global);
    } else {
      const std::size_t union_bytes =
          corpus.union_distinct_words() * static_cast<std::size_t>(kCountBytes);
      self.reduce(self.world(), /*root=*/0, SendBuf::synthetic(union_bytes),
                  nullptr, {});
    }
  };

  result.seconds = util::to_seconds(machine.run(program));
  return result;
}

// --------------------------------------------------------------- decoupled --
WordcountResult run_decoupled(const WordcountConfig& config,
                              const mpi::MachineConfig& machine_config) {
  mpi::Machine machine(machine_config);
  const int size = machine.world_size();
  const Corpus corpus(config.corpus, size);
  WordcountResult result;

  const stream::GroupPlan plan =
      stream::GroupPlan::interleaved(machine.world(), config.stride);
  if (plan.helper_count() < 1)
    throw std::invalid_argument("wordcount decoupled: need >= 1 helper");
  // The reduce group is itself decoupled into local reducers plus one master
  // that aggregates global results (paper Sec. IV-B) — a three-stage chain
  // map -> reduce -> master. A single-helper group degenerates to the
  // two-stage chain map -> master: workers stream straight to it.
  const bool master_only = plan.helper_count() == 1;
  const int master = plan.helpers().front();
  const int workers = plan.worker_count();

  const auto program = [&](Rank& self) {
    const std::size_t vocab_bytes =
        config.corpus.sample_vocabulary * static_cast<std::size_t>(kCountBytes);
    // A block's partial histogram occupies ~8 bytes per distinct word.
    const std::size_t max_histogram_bytes =
        corpus.distinct_words(config.block_bytes) *
        static_cast<std::size_t>(kCountBytes);
    const std::size_t element_capacity =
        config.real_data ? std::max(config.element_bytes, vocab_bytes)
                         : std::max(config.element_bytes, max_histogram_bytes);

    // The chain: map stage -> reduce stage -> master stage, linked by one
    // stream per hop (the reduce hop is absent when the reduce group is a
    // single process). Stage declarations replace the hand-rolled role
    // predicates; auto-termination propagates map -> reduce -> master.
    auto pipeline = decouple::Pipeline::over(self, self.world());
    const auto map_stage =
        pipeline.stage({plan.workers().begin(), plan.workers().end()});
    decouple::StageHandle reduce_stage;
    if (!master_only)
      reduce_stage = pipeline.stage([plan, master](int r) {
        return plan.is_helper(r) && r != master;
      });
    const auto master_stage = pipeline.stage(std::vector<int>{master});
    // Both hops ride the transport defaults: coalescing packs the many
    // small-to-medium histogram records injected back to back into framed
    // messages (vocabulary-sized real blocks bypass), and self-tuning keeps
    // the frame budget matched to the block-size mix while the reducers ack
    // whole frames instead of per element. Nothing here needs pinning — set
    // StreamOptions::coalesce_budget = 0 on a hop to recover the paper's
    // per-element traffic for comparison runs.
    const auto blocks = pipeline.raw_stream_between(
        map_stage, master_only ? master_stage : reduce_stage, element_capacity);
    decouple::RawStreamHandle updates;
    if (!master_only)
      updates = pipeline.raw_stream_between(reduce_stage, master_stage,
                                            element_capacity);

    std::vector<std::uint64_t> global_hist;  // master-side result

    const auto map_fn = [&](decouple::Context& ctx) {
      auto& s1 = ctx[blocks];
      std::vector<std::uint64_t> block_hist;
      map_files(self, config, corpus, ctx.stage_member_index(), workers,
                [&](int file, int block, std::uint64_t chunk) {
                  if (config.real_data) {
                    block_hist.assign(config.corpus.sample_vocabulary, 0);
                    corpus.sample_block(file, block,
                                        config.words_per_block_real,
                                        block_hist);
                    s1.send_items(block_hist.data(), block_hist.size());
                  } else {
                    s1.send_synthetic(corpus.distinct_words(chunk) *
                                      static_cast<std::size_t>(kCountBytes));
                  }
                });
      result.elements_streamed += s1.elements_sent();
    };

    const auto reduce_fn = [&](decouple::Context& ctx) {
      std::vector<std::uint64_t> local_hist;  // reducer-side partial
      auto& s1 = ctx[blocks];
      auto& s2 = ctx[updates];
      s1.on_receive([&](const decouple::RawElement& el) {
        self.compute(ns_cost(config.histogram_merge_ns_per_byte, el.bytes),
                     "reduce");
        if (config.real_data && el.data) {
          std::vector<std::uint64_t> part(el.bytes / sizeof(std::uint64_t));
          std::memcpy(part.data(), el.data, part.size() * sizeof(std::uint64_t));
          merge_into(local_hist, part);
          if (!config.aggregate_reduce_group)
            s2.send_items(part.data(), part.size());
        } else if (!config.aggregate_reduce_group) {
          s2.send_synthetic(static_cast<std::size_t>(
              config.forward_fraction * static_cast<double>(el.bytes)));
        }
      });
      s1.operate();
      if (config.aggregate_reduce_group) {
        if (config.real_data) {
          local_hist.resize(config.corpus.sample_vocabulary, 0);
          s2.send_items(local_hist.data(), local_hist.size());
        } else {
          s2.send_synthetic(vocab_bytes);
        }
      }
      // The updates stream terminates via RAII when this stage returns.
    };

    const auto master_fn = [&](decouple::Context& ctx) {
      auto& in = master_only ? ctx[blocks] : ctx[updates];
      in.on_receive([&](const decouple::RawElement& el) {
        self.compute(ns_cost(config.histogram_merge_ns_per_byte, el.bytes),
                     "reduce");
        if (config.real_data && el.data) {
          std::vector<std::uint64_t> part(el.bytes / sizeof(std::uint64_t));
          std::memcpy(part.data(), el.data, part.size() * sizeof(std::uint64_t));
          merge_into(global_hist, part);
        }
      });
      in.operate();
      if (config.real_data) result.histogram = std::move(global_hist);
    };

    if (master_only)
      pipeline.run_stages({map_fn, master_fn});
    else
      pipeline.run_stages({map_fn, reduce_fn, master_fn});
  };

  result.seconds = util::to_seconds(machine.run(program));
  return result;
}

}  // namespace ds::apps::wordcount
