#include "apps/wordcount/corpus.hpp"

#include <cmath>

namespace ds::apps::wordcount {

Corpus::Corpus(CorpusParams params, int map_tasks)
    : params_(params), zipf_(params.sample_vocabulary, params.zipf_exponent) {
  util::Rng rng = util::Rng::for_stream(params_.seed, 0xF11E5);
  const int files = map_tasks * params_.files_per_rank;
  file_bytes_.reserve(static_cast<std::size_t>(files));
  for (int f = 0; f < files; ++f) {
    const auto size = static_cast<std::uint64_t>(
        rng.uniform_int(static_cast<std::int64_t>(params_.min_file_bytes),
                        static_cast<std::int64_t>(params_.max_file_bytes)));
    file_bytes_.push_back(size);
    total_bytes_ += size;
  }
}

std::vector<int> Corpus::files_of(int owner, int owners) const {
  std::vector<int> mine;
  for (int f = owner; f < file_count(); f += owners) mine.push_back(f);
  return mine;
}

std::uint64_t Corpus::bytes_of(int owner, int owners) const {
  std::uint64_t sum = 0;
  for (const int f : files_of(owner, owners)) sum += file_bytes(f);
  return sum;
}

std::size_t Corpus::distinct_words(std::uint64_t bytes) const noexcept {
  if (bytes == 0) return 0;
  const double v =
      params_.heaps_k * std::pow(static_cast<double>(bytes), params_.heaps_beta);
  return static_cast<std::size_t>(v) + 1;
}

void Corpus::sample_block(int file, int block, std::uint64_t words,
                          std::vector<std::uint64_t>& histogram) const {
  histogram.resize(params_.sample_vocabulary, 0);
  util::Rng rng = util::Rng::for_stream(
      params_.seed ^ 0xB10C5ull,
      static_cast<std::uint64_t>(file) * 1'000'003ull +
          static_cast<std::uint64_t>(block));
  for (std::uint64_t w = 0; w < words; ++w) ++histogram[zipf_.sample(rng)];
}

}  // namespace ds::apps::wordcount
