// Synthetic log-file corpus, standing in for the PUMA Wikipedia dataset
// (paper Sec. IV-B: 2.9 TB over 8,192 processes, file sizes 256 MB - 1 GB).
//
// The corpus is a deterministic list of file sizes (uniform in the
// configured range) plus a Zipf word model. Three properties the experiment
// depends on are preserved:
//   * variable file sizes  -> map-phase imbalance,
//   * Zipf word skew       -> irregular reduce load,
//   * vocabulary growth with corpus size (Heaps' law) -> collective payloads
//     that grow with scale in the reference implementation.
//
// Real-data mode (tests) samples actual word ids per block so histograms can
// be checked against a sequential oracle; modeled mode (benches) only uses
// the byte/size accessors.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace ds::apps::wordcount {

struct CorpusParams {
  int files_per_rank = 4;
  std::uint64_t min_file_bytes = 64ull << 20;   ///< 64 MB
  std::uint64_t max_file_bytes = 256ull << 20;  ///< 256 MB
  double avg_word_bytes = 6.0;

  /// Heaps' law V(n) = k * n^beta with n = corpus bytes.
  double heaps_k = 60.0;
  double heaps_beta = 0.55;

  /// Real-data mode vocabulary and skew.
  std::size_t sample_vocabulary = 101;
  double zipf_exponent = 1.05;

  std::uint64_t seed = 42;
};

class Corpus {
 public:
  /// Builds the file list for a weak-scaling run: `map_tasks * files_per_rank`
  /// files with deterministic pseudo-random sizes.
  Corpus(CorpusParams params, int map_tasks);

  [[nodiscard]] const CorpusParams& params() const noexcept { return params_; }
  [[nodiscard]] int file_count() const noexcept {
    return static_cast<int>(file_bytes_.size());
  }
  [[nodiscard]] std::uint64_t file_bytes(int file) const {
    return file_bytes_.at(static_cast<std::size_t>(file));
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  /// Files assigned to `owner` when files are dealt round-robin over
  /// `owners` owners.
  [[nodiscard]] std::vector<int> files_of(int owner, int owners) const;
  [[nodiscard]] std::uint64_t bytes_of(int owner, int owners) const;

  /// Heaps-law distinct-word estimates (modeled mode wire sizes).
  [[nodiscard]] std::size_t distinct_words(std::uint64_t bytes) const noexcept;
  [[nodiscard]] std::size_t union_distinct_words() const noexcept {
    return distinct_words(total_bytes_);
  }

  /// Real-data mode: histogram of one block of `words` words of `file`,
  /// appended into `histogram` (indexed by word id). Deterministic in
  /// (seed, file, block).
  void sample_block(int file, int block, std::uint64_t words,
                    std::vector<std::uint64_t>& histogram) const;

 private:
  CorpusParams params_;
  std::vector<std::uint64_t> file_bytes_;
  std::uint64_t total_bytes_ = 0;
  util::ZipfSampler zipf_;
};

}  // namespace ds::apps::wordcount
