// MapReduce word-histogram application (paper Sec. IV-B, Fig. 5).
//
// Reference implementation follows Hoefler et al., "Towards efficient
// MapReduce using MPI": every process maps its files, then the global key
// set is built with a nonblocking allgatherv and the per-key counts are
// combined with a nonblocking reduce.
//
// Decoupled implementation: the map group streams per-block partial
// histograms to a reduce group through an MPIStream channel; the reduce
// group is itself split into local reducers and one master that aggregates
// global results. Without in-group aggregation (the paper's configuration)
// every reducer forwards its updates to the master, whose drain port
// congests at large scale — the Fig. 5 uptick at 4,096/8,192 processes.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/wordcount/corpus.hpp"
#include "mpi/machine.hpp"

namespace ds::apps::wordcount {

struct WordcountConfig {
  CorpusParams corpus{};

  /// Stream granularity: one element carries one block's partial histogram,
  /// whose wire size follows Heaps' law on the block bytes (modeled mode).
  std::uint64_t block_bytes = 32ull << 20;  ///< file bytes per block
  std::size_t element_bytes = 4096;         ///< real-data mode element cap

  /// Workload rates.
  /// Reading + tokenizing + block-local hashing, per input byte (I/O-bound).
  double map_ns_per_byte = 55.0;
  /// The conventional reduce pass merges raw intermediate pairs word by
  /// word, per input byte (the reference lacks the pre-aggregation the
  /// decoupled reduce group applies with application-specific knowledge).
  double reduce_ns_per_byte = 45.0;
  /// Merging pre-aggregated histograms, per histogram byte.
  double histogram_merge_ns_per_byte = 2.0;

  /// Decoupling: one of every `stride` ranks joins the reduce group.
  int stride = 16;
  /// Fraction of consumed histogram bytes a reducer forwards to the master
  /// when aggregation is off (partially-deduplicated update traffic).
  /// At 5%, the master keeps up through ~2,048 procs and becomes the tail
  /// beyond — the Fig. 5 uptick at 4,096/8,192.
  double forward_fraction = 0.05;
  /// Paper default: no aggregation inside the reduce group.
  bool aggregate_reduce_group = false;

  /// Real-data mode: actually sample words and keep exact histograms.
  bool real_data = false;
  std::uint64_t words_per_block_real = 512;
};

struct WordcountResult {
  double seconds = 0.0;                     ///< virtual makespan
  std::uint64_t elements_streamed = 0;      ///< decoupled runs only
  std::vector<std::uint64_t> histogram;     ///< real-data mode: root's result
};

/// Sequential oracle for real-data mode: exact histogram of the whole corpus.
[[nodiscard]] std::vector<std::uint64_t> sequential_histogram(
    const WordcountConfig& config, int map_tasks);

/// Number of blocks a file of `bytes` is processed in.
[[nodiscard]] std::uint64_t blocks_of(const WordcountConfig& config,
                                      std::uint64_t bytes);

[[nodiscard]] WordcountResult run_reference(const WordcountConfig& config,
                                            const mpi::MachineConfig& machine);
[[nodiscard]] WordcountResult run_decoupled(const WordcountConfig& config,
                                            const mpi::MachineConfig& machine);

}  // namespace ds::apps::wordcount
