// Distributed CG application with three halo-exchange strategies (paper
// Sec. IV-C, Fig. 6):
//
//  * Blocking    — alltoallv halo exchange completed before any stencil work
//                  (the reference's blocking collective path);
//  * Nonblocking — ialltoallv posted, the interior stencil overlaps the
//                  exchange, boundary stencil after completion (Hoefler et
//                  al.'s nonblocking-collective CG);
//  * Decoupled   — boundary faces stream to a helper group that aggregates
//                  each worker's six neighbour faces into one bundle and
//                  streams it back, overlapping the interior stencil
//                  (paper's decoupling).
//
// Real-data mode solves an actual Poisson system and is validated against
// the sequential oracle; modeled mode charges calibrated per-cell costs and
// ships synthetic face payloads, which is what the weak-scaling bench runs.
#pragma once

#include <array>
#include <vector>

#include "apps/cg/grid.hpp"
#include "mpi/machine.hpp"

namespace ds::apps::cg {

enum class HaloVariant { Blocking, Nonblocking, Decoupled };

struct CgConfig {
  /// Modeled per-process subdomain edge (reference layout; paper: 120^3).
  int n = 120;
  int iterations = 30;

  /// Modeled workload rates.
  double ns_stencil_per_cell = 40.0;
  double ns_vector_per_cell = 25.0;
  double ns_aggregate_per_byte = 0.3;  ///< helper-side bundle assembly

  /// Decoupling: one of every `stride` ranks becomes a helper (6.25% = 16).
  int stride = 16;

  /// Real-data mode: solve this global grid (must divide by the process
  /// grid in every dimension, for both the reference and worker layouts).
  bool real_data = false;
  std::array<int, 3> global_grid{0, 0, 0};
};

struct CgPiece {
  std::array<int, 3> offset{};  ///< global offset of this subdomain
  LocalGrid grid;               ///< final solution block
};

struct CgResult {
  double seconds = 0.0;
  double residual2 = 0.0;           ///< real mode: final global ||r||^2
  std::vector<CgPiece> pieces;      ///< real mode: per-compute-rank solution
};

[[nodiscard]] CgResult run_cg(HaloVariant variant, const CgConfig& config,
                              const mpi::MachineConfig& machine_config);

}  // namespace ds::apps::cg
