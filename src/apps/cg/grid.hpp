// Local 3-D grid with ghost layers, plus the 7-point Poisson stencil the CG
// solver applies (paper Sec. IV-C: Poisson equation on a Cartesian uniform
// grid).
//
// Values are stored with one ghost cell on each side; indices run over
// [-1, n] in each dimension. Dirichlet boundaries are zero-valued ghosts
// that never get overwritten; interior faces are refreshed by the halo
// exchange each iteration.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace ds::apps::cg {

/// Face directions in the order (-x, +x, -y, +y, -z, +z), matching
/// mpi::CartTopology::face_neighbors.
enum Face : int { kXMinus = 0, kXPlus, kYMinus, kYPlus, kZMinus, kZPlus };

/// Opposite face (received data lands on the opposite ghost layer).
[[nodiscard]] constexpr int opposite(int face) noexcept { return face ^ 1; }

class LocalGrid {
 public:
  LocalGrid() = default;
  LocalGrid(int nx, int ny, int nz);

  [[nodiscard]] int nx() const noexcept { return nx_; }
  [[nodiscard]] int ny() const noexcept { return ny_; }
  [[nodiscard]] int nz() const noexcept { return nz_; }
  [[nodiscard]] std::size_t cells() const noexcept {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }

  /// Interior + ghost access; i in [-1, nx], etc.
  [[nodiscard]] double& at(int i, int j, int k) noexcept {
    return data_[index(i, j, k)];
  }
  [[nodiscard]] double at(int i, int j, int k) const noexcept {
    return data_[index(i, j, k)];
  }

  void fill(double value);

  /// Number of values on face `f` (its area).
  [[nodiscard]] std::size_t face_cells(int face) const noexcept;

  /// Copy the interior layer adjacent to `face` into `out` (resized).
  void extract_face(int face, std::vector<double>& out) const;
  /// Write received neighbour data into the ghost layer of `face`.
  void fill_ghost(int face, const double* values, std::size_t count);
  /// Zero the ghost layer of `face` (physical boundary).
  void zero_ghost(int face);

  [[nodiscard]] const std::vector<double>& raw() const noexcept { return data_; }

 private:
  [[nodiscard]] std::size_t index(int i, int j, int k) const noexcept {
    return (static_cast<std::size_t>(i + 1) * (ny_ + 2) + (j + 1)) * (nz_ + 2) +
           (k + 1);
  }
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> data_;
};

/// out = A * in over the interior range [lo, hi) in each dimension, where A
/// is the 7-point Poisson operator: (6*c - sum of neighbours). Ghosts of
/// `in` must be current for touched boundary cells.
void apply_poisson(const LocalGrid& in, LocalGrid& out,
                   const std::array<int, 3>& lo, const std::array<int, 3>& hi);

/// Interior dot product (no ghosts).
[[nodiscard]] double dot_interior(const LocalGrid& a, const LocalGrid& b);

/// y += alpha * x over the interior.
void axpy_interior(double alpha, const LocalGrid& x, LocalGrid& y);
/// p = r + beta * p over the interior.
void xpby_interior(const LocalGrid& r, double beta, LocalGrid& p);

}  // namespace ds::apps::cg
