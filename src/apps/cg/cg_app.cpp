#include "apps/cg/cg_app.hpp"

#include <cmath>
#include <cstring>
#include <map>
#include <stdexcept>

#include "apps/cg/cg_solver.hpp"
#include "core/decouple.hpp"
#include "core/group_plan.hpp"
#include "mpi/cart.hpp"
#include "mpi/rank.hpp"

namespace ds::apps::cg {

namespace {

using mpi::Rank;
using mpi::RecvBuf;
using mpi::SendBuf;

struct FaceHeader {
  std::int32_t target = -1;  ///< destination worker (cart rank)
  std::int32_t face = -1;    ///< which ghost face of the target this fills
  std::int32_t iter = -1;
  std::int32_t count = 0;    ///< doubles carried (real mode)
};

[[nodiscard]] util::SimTime ns_time(double ns) {
  return static_cast<util::SimTime>(ns);
}

/// Modeled per-rank geometry: cell counts and face sizes, possibly inflated
/// for decoupled workers that carry 1/(1-alpha) more volume.
struct ModeledShape {
  double edge = 0.0;  ///< effective cubic subdomain edge
  [[nodiscard]] double cells() const noexcept { return edge * edge * edge; }
  [[nodiscard]] double inner_cells() const noexcept {
    const double e = std::max(0.0, edge - 2.0);
    return e * e * e;
  }
  [[nodiscard]] double shell_cells() const noexcept {
    return cells() - inner_cells();
  }
  [[nodiscard]] std::size_t face_bytes() const noexcept {
    return static_cast<std::size_t>(edge * edge) * sizeof(double);
  }
};

/// Real-data per-rank solver state.
struct RealState {
  LocalGrid x, r, p, ap;
  std::array<int, 3> lo{};     // global offset
  std::array<int, 3> dims{};   // local interior dims
  double rr = 0.0;
};

[[nodiscard]] std::array<int, 3> partition_local(const std::array<int, 3>& global,
                                                 const std::array<int, 3>& dims) {
  std::array<int, 3> local{};
  for (int d = 0; d < 3; ++d) {
    const auto idx = static_cast<std::size_t>(d);
    if (global[idx] % dims[idx] != 0)
      throw std::invalid_argument("cg: global grid not divisible by process grid");
    local[idx] = global[idx] / dims[idx];
  }
  return local;
}

void init_real_state(RealState& st, const mpi::CartTopology& cart, int cart_rank,
                     const std::array<int, 3>& global) {
  const auto local = partition_local(global, cart.dims());
  const auto coords = cart.coords_of(cart_rank);
  st.dims = local;
  for (int d = 0; d < 3; ++d)
    st.lo[static_cast<std::size_t>(d)] =
        coords[static_cast<std::size_t>(d)] * local[static_cast<std::size_t>(d)];
  st.x = LocalGrid(local[0], local[1], local[2]);
  st.r = LocalGrid(local[0], local[1], local[2]);
  st.p = LocalGrid(local[0], local[1], local[2]);
  st.ap = LocalGrid(local[0], local[1], local[2]);
  for (int i = 0; i < local[0]; ++i)
    for (int j = 0; j < local[1]; ++j)
      for (int k = 0; k < local[2]; ++k) {
        const double b = rhs_value(st.lo[0] + i, st.lo[1] + j, st.lo[2] + k);
        st.r.at(i, j, k) = b;
        st.p.at(i, j, k) = b;
      }
  st.rr = dot_interior(st.r, st.r);
}

/// Apply the stencil on the one-cell-thick boundary shell only.
void apply_poisson_shell(const LocalGrid& in, LocalGrid& out) {
  const int nx = in.nx(), ny = in.ny(), nz = in.nz();
  auto run = [&](std::array<int, 3> lo, std::array<int, 3> hi) {
    for (int d = 0; d < 3; ++d)
      if (lo[static_cast<std::size_t>(d)] >= hi[static_cast<std::size_t>(d)]) return;
    apply_poisson(in, out, lo, hi);
  };
  run({0, 0, 0}, {1, ny, nz});
  if (nx > 1) run({nx - 1, 0, 0}, {nx, ny, nz});
  run({1, 0, 0}, {nx - 1, 1, nz});
  if (ny > 1) run({1, ny - 1, 0}, {nx - 1, ny, nz});
  run({1, 1, 0}, {nx - 1, ny - 1, 1});
  if (nz > 1) run({1, 1, nz - 1}, {nx - 1, ny - 1, nz});
}

/// Distributed scalar allreduce shared by all variants: real values when
/// `real` is set, synthetic 8-byte payload otherwise.
double allreduce_scalar(Rank& self, const mpi::Comm& comm, bool real,
                        double local) {
  if (real) {
    double global = 0.0;
    self.allreduce(comm, SendBuf::of(&local, 1), &global,
                   mpi::reduce_sum<double>());
    return global;
  }
  self.allreduce(comm, SendBuf::synthetic(sizeof(double)), nullptr, {});
  return 0.0;
}

/// One CG step's scalar/vector tail after `ap` is complete: dot products,
/// axpy updates and the direction update, with modeled costs charged.
void cg_tail(Rank& self, const mpi::Comm& comm, const CgConfig& cfg,
             const ModeledShape& shape, bool real, RealState* st) {
  double pap_local = real ? dot_interior(st->p, st->ap) : 0.0;
  const double pap = allreduce_scalar(self, comm, real, pap_local);
  self.compute(ns_time(cfg.ns_vector_per_cell * shape.cells()), "vec");
  double rr_new_local = 0.0;
  if (real) {
    const double alpha = pap == 0.0 ? 0.0 : st->rr / pap;
    axpy_interior(alpha, st->p, st->x);
    axpy_interior(-alpha, st->ap, st->r);
    rr_new_local = dot_interior(st->r, st->r);
  }
  const double rr_new = allreduce_scalar(self, comm, real, rr_new_local);
  if (real) {
    const double beta = st->rr == 0.0 ? 0.0 : rr_new / st->rr;
    st->rr = rr_new;
    xpby_interior(st->r, beta, st->p);
  }
}

}  // namespace

CgResult run_cg(HaloVariant variant, const CgConfig& config,
                const mpi::MachineConfig& machine_config) {
  mpi::Machine machine(machine_config);
  const int size = machine.world_size();
  CgResult result;

  // ---------------- group layout ----------------
  const bool decoupled = variant == HaloVariant::Decoupled;
  stream::GroupPlan plan =
      decoupled ? stream::GroupPlan::interleaved(machine.world(), config.stride)
                : stream::GroupPlan();  // unused otherwise
  const int compute_ranks = decoupled ? plan.worker_count() : size;
  const mpi::CartTopology cart(mpi::CartTopology::dims_create(compute_ranks),
                               {false, false, false});

  // Modeled geometry: decoupled workers carry size/compute_ranks more volume.
  ModeledShape shape;
  shape.edge = config.n *
               std::cbrt(static_cast<double>(size) / compute_ranks);

  if (config.real_data) result.pieces.resize(static_cast<std::size_t>(compute_ranks));

  const auto program = [&](Rank& self) {
    const int me = self.rank_in(self.world());
    const bool real = config.real_data;

    // ---------------- reference variants ----------------
    if (!decoupled) {
      const int cart_rank = me;
      const auto neighbors = cart.face_neighbors(cart_rank);
      RealState st;
      if (real) init_real_state(st, cart, cart_rank, config.global_grid);
      // r0 = b is distributed; the CG scalars need the global ||r0||^2.
      st.rr = allreduce_scalar(self, self.world(), real, st.rr);

      // Byte counts per peer for the halo alltoallv.
      std::vector<std::size_t> counts(static_cast<std::size_t>(size), 0);
      std::array<std::size_t, 6> face_sizes{};
      for (int f = 0; f < 6; ++f) {
        if (neighbors[static_cast<std::size_t>(f)] < 0) continue;
        face_sizes[static_cast<std::size_t>(f)] =
            real ? st.p.face_cells(f) * sizeof(double) : shape.face_bytes();
        counts[static_cast<std::size_t>(neighbors[static_cast<std::size_t>(f)])] +=
            face_sizes[static_cast<std::size_t>(f)];
      }
      const std::size_t total_bytes =
          [&] { std::size_t s = 0; for (auto c : counts) s += c; return s; }();
      std::vector<std::byte> send_buf(real ? total_bytes : 0);
      std::vector<std::byte> recv_buf(real ? total_bytes : 0);
      std::vector<std::size_t> displs(static_cast<std::size_t>(size) + 1, 0);
      for (int r = 0; r < size; ++r)
        displs[static_cast<std::size_t>(r) + 1] =
            displs[static_cast<std::size_t>(r)] + counts[static_cast<std::size_t>(r)];

      std::vector<double> scratch;
      for (int it = 0; it < config.iterations; ++it) {
        if (real) {
          // Pack each face into its neighbour's slot (faces to the same
          // neighbour are laid out in face order on both sides).
          std::vector<std::size_t> cursor(displs.begin(), displs.end() - 1);
          for (int f = 0; f < 6; ++f) {
            const int nbr = neighbors[static_cast<std::size_t>(f)];
            if (nbr < 0) continue;
            st.p.extract_face(f, scratch);
            std::memcpy(send_buf.data() + cursor[static_cast<std::size_t>(nbr)],
                        scratch.data(), scratch.size() * sizeof(double));
            cursor[static_cast<std::size_t>(nbr)] += scratch.size() * sizeof(double);
          }
        }
        const mpi::Request halo = self.ialltoallv(
            self.world(), real ? send_buf.data() : nullptr, counts,
            real ? recv_buf.data() : nullptr, counts);

        auto unpack = [&] {
          if (!real) return;
          std::vector<std::size_t> cursor(displs.begin(), displs.end() - 1);
          // The neighbour packed faces in *its* face order; the face it sent
          // toward us fills our ghost on side f when it sits at -f of us.
          // Both sides enumerate faces in ascending order, and each pair of
          // ranks exchanges exactly the two opposing faces, so per-peer data
          // is unambiguous.
          for (int f = 0; f < 6; ++f) {
            const int nbr = neighbors[static_cast<std::size_t>(f)];
            if (nbr < 0) continue;
            const std::size_t bytes = face_sizes[static_cast<std::size_t>(f)];
            scratch.resize(bytes / sizeof(double));
            std::memcpy(scratch.data(),
                        recv_buf.data() + cursor[static_cast<std::size_t>(nbr)],
                        bytes);
            cursor[static_cast<std::size_t>(nbr)] += bytes;
            st.p.fill_ghost(f, scratch.data(), scratch.size());
          }
        };

        if (variant == HaloVariant::Blocking) {
          self.wait(halo);
          unpack();
          self.compute(ns_time(config.ns_stencil_per_cell * shape.cells()),
                       "comp");
          if (real)
            apply_poisson(st.p, st.ap, {0, 0, 0},
                          {st.dims[0], st.dims[1], st.dims[2]});
        } else {
          self.compute(ns_time(config.ns_stencil_per_cell * shape.inner_cells()),
                       "comp");
          if (real)
            apply_poisson(st.p, st.ap, {1, 1, 1},
                          {st.dims[0] - 1, st.dims[1] - 1, st.dims[2] - 1});
          self.wait(halo);
          unpack();
          self.compute(ns_time(config.ns_stencil_per_cell * shape.shell_cells()),
                       "comp");
          if (real) apply_poisson_shell(st.p, st.ap);
        }
        cg_tail(self, self.world(), config, shape, real, real ? &st : nullptr);
      }
      if (real) {
        result.residual2 = st.rr;
        result.pieces[static_cast<std::size_t>(cart_rank)] =
            CgPiece{st.lo, std::move(st.x)};
      }
      return;
    }

    // ---------------- decoupled variant ----------------
    const std::size_t max_face_bytes =
        (config.real_data
             ? [&] {
                 const auto local = partition_local(config.global_grid, cart.dims());
                 const std::size_t a = static_cast<std::size_t>(local[0]) * local[1];
                 const std::size_t b = static_cast<std::size_t>(local[1]) * local[2];
                 const std::size_t c = static_cast<std::size_t>(local[0]) * local[2];
                 return std::max({a, b, c}) * sizeof(double);
               }()
             : shape.face_bytes());

    decouple::StreamOptions to_helpers;
    to_helpers.mapping = decouple::Mapping::Directed;
    decouple::StreamOptions to_workers = to_helpers;
    to_workers.direction = decouple::Direction::ToWorkers;

    auto pipeline = decouple::Pipeline::over(self, self.world())
                        .with_plan(plan)
                        .with_worker_comm();
    auto faces = pipeline.stream<FaceHeader>(max_face_bytes, to_helpers);
    auto bundles = pipeline.stream<FaceHeader>(6 * max_face_bytes, to_workers);

    pipeline.run(
        [&](decouple::Context& ctx) {
          const int w = ctx.worker_index();
          const auto neighbors = cart.face_neighbors(w);
          RealState st;
          if (real) init_real_state(st, cart, w, config.global_grid);
          st.rr = allreduce_scalar(self, ctx.worker_comm(), real, st.rr);

          auto& s_face = ctx[faces];
          auto& s_back = ctx[bundles];
          bool got_bundle = false;
          int current_iter = -1;
          s_back.on_receive([&](const decouple::Element<FaceHeader>& el) {
            if (el.synthetic) {
              got_bundle = true;
              return;
            }
            if (el.record.target != w || el.record.iter != current_iter)
              throw std::logic_error(
                  "cg decoupled: bundle routed to wrong worker");
            got_bundle = true;
            if (!real) return;
            const std::byte* cursor = el.payload;
            for (int f = 0; f < 6; ++f) {
              if (neighbors[static_cast<std::size_t>(f)] < 0) continue;
              const std::size_t n = st.p.face_cells(f);
              std::vector<double> vals(n);
              std::memcpy(vals.data(), cursor, n * sizeof(double));
              cursor += n * sizeof(double);
              st.p.fill_ghost(f, vals.data(), n);
            }
          });

          std::vector<double> scratch;
          for (int it = 0; it < config.iterations; ++it) {
            current_iter = it;
            // Stream each face toward the helper that owns the *receiving*
            // neighbour; the helper aggregates all six and answers with one
            // bundle (paper: "instead of communicating with six processes").
            for (int f = 0; f < 6; ++f) {
              const int nbr = neighbors[static_cast<std::size_t>(f)];
              if (nbr < 0) continue;
              FaceHeader h{nbr, static_cast<std::int32_t>(opposite(f)), it, 0};
              if (real) {
                st.p.extract_face(f, scratch);
                h.count = static_cast<std::int32_t>(scratch.size());
                s_face.send_to(ctx.helper_of(nbr), h, scratch.data(),
                               scratch.size());
              } else {
                s_face.send_modeled_to(ctx.helper_of(nbr), h,
                                       shape.face_bytes());
              }
            }
            self.compute(
                ns_time(config.ns_stencil_per_cell * shape.inner_cells()),
                "comp");
            if (real)
              apply_poisson(st.p, st.ap, {1, 1, 1},
                            {st.dims[0] - 1, st.dims[1] - 1, st.dims[2] - 1});
            got_bundle = false;
            s_back.operate_while([&] { return !got_bundle; });
            self.compute(
                ns_time(config.ns_stencil_per_cell * shape.shell_cells()),
                "comp");
            if (real) apply_poisson_shell(st.p, st.ap);
            cg_tail(self, ctx.worker_comm(), config, shape, real,
                    real ? &st : nullptr);
          }
          if (real) {
            result.residual2 = st.rr;
            result.pieces[static_cast<std::size_t>(w)] =
                CgPiece{st.lo, std::move(st.x)};
          }
        },
        [&](decouple::Context& ctx) {
          // ---- helper: collect faces, answer bundles ----
          const int h_idx = ctx.helper_index();
          const int workers = ctx.worker_count();
          // Faces for one worker can interleave across iterations (a fast
          // neighbour may run up to two iterations ahead of a slow one), so
          // arrivals are slotted per (worker, iteration).
          struct IterSlot {
            int arrived = 0;
            std::array<std::vector<double>, 6> faces;
          };
          struct PerWorker {
            int expected = 0;
            std::map<int, IterSlot> pending;
          };
          std::vector<PerWorker> state(static_cast<std::size_t>(workers));
          for (int w = 0; w < workers; ++w) {
            if (ctx.helper_of(w) != h_idx) continue;
            const auto nb = cart.face_neighbors(w);
            for (int f = 0; f < 6; ++f)
              if (nb[static_cast<std::size_t>(f)] >= 0)
                ++state[static_cast<std::size_t>(w)].expected;
          }

          auto& s_face = ctx[faces];
          auto& s_back = ctx[bundles];
          std::vector<double> bundle;
          s_face.on_receive([&](const decouple::Element<FaceHeader>& el) {
            if (el.synthetic) return;
            const FaceHeader& h = el.record;
            auto& pw = state.at(static_cast<std::size_t>(h.target));
            auto& slot_iter = pw.pending[h.iter];
            if (real && h.count > 0)
              el.payload_to(slot_iter.faces[static_cast<std::size_t>(h.face)],
                            static_cast<std::size_t>(h.count));
            if (++slot_iter.arrived < pw.expected) return;
            IterSlot ready = std::move(slot_iter);
            pw.pending.erase(h.iter);
            auto& faces_ready = ready.faces;

            // All six (or fewer at domain boundaries) faces arrived:
            // aggregate and stream the bundle back to the worker.
            const auto nb = cart.face_neighbors(h.target);
            std::size_t data_bytes = 0;
            if (real) {
              for (int f = 0; f < 6; ++f)
                if (nb[static_cast<std::size_t>(f)] >= 0)
                  data_bytes += faces_ready[static_cast<std::size_t>(f)].size() *
                                sizeof(double);
            } else {
              int present = 0;
              for (int f = 0; f < 6; ++f)
                if (nb[static_cast<std::size_t>(f)] >= 0) ++present;
              data_bytes = static_cast<std::size_t>(present) * shape.face_bytes();
            }
            self.compute(ns_time(config.ns_aggregate_per_byte *
                                 static_cast<double>(data_bytes)),
                         "agg");
            const FaceHeader out{h.target, -1, h.iter, 0};
            if (real) {
              bundle.clear();
              for (int f = 0; f < 6; ++f) {
                if (nb[static_cast<std::size_t>(f)] < 0) continue;
                const auto& slot = faces_ready[static_cast<std::size_t>(f)];
                bundle.insert(bundle.end(), slot.begin(), slot.end());
              }
              s_back.send_to(h.target, out, bundle.data(), bundle.size());
            } else {
              s_back.send_modeled_to(h.target, out, data_bytes);
            }
          });
          s_face.operate();
        });
  };

  result.seconds = util::to_seconds(machine.run(program));
  return result;
}

}  // namespace ds::apps::cg
