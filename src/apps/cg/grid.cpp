#include "apps/cg/grid.hpp"

#include <cassert>

namespace ds::apps::cg {

LocalGrid::LocalGrid(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  assert(nx > 0 && ny > 0 && nz > 0);
  data_.assign(static_cast<std::size_t>(nx + 2) * (ny + 2) * (nz + 2), 0.0);
}

void LocalGrid::fill(double value) {
  for (int i = 0; i < nx_; ++i)
    for (int j = 0; j < ny_; ++j)
      for (int k = 0; k < nz_; ++k) at(i, j, k) = value;
}

std::size_t LocalGrid::face_cells(int face) const noexcept {
  switch (face) {
    case kXMinus:
    case kXPlus:
      return static_cast<std::size_t>(ny_) * nz_;
    case kYMinus:
    case kYPlus:
      return static_cast<std::size_t>(nx_) * nz_;
    default:
      return static_cast<std::size_t>(nx_) * ny_;
  }
}

namespace {
/// Iterate a face's cells, calling fn(i, j, k). layer_index 0 touches the
/// interior layer adjacent to the face; -1 touches the ghost layer.
template <typename Fn>
void for_face(int face, int nx, int ny, int nz, int layer_index, Fn&& fn) {
  switch (face) {
    case kXMinus:
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) fn(layer_index == -1 ? -1 : 0, j, k);
      break;
    case kXPlus:
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) fn(layer_index == -1 ? nx : nx - 1, j, k);
      break;
    case kYMinus:
      for (int i = 0; i < nx; ++i)
        for (int k = 0; k < nz; ++k) fn(i, layer_index == -1 ? -1 : 0, k);
      break;
    case kYPlus:
      for (int i = 0; i < nx; ++i)
        for (int k = 0; k < nz; ++k) fn(i, layer_index == -1 ? ny : ny - 1, k);
      break;
    case kZMinus:
      for (int i = 0; i < nx; ++i)
        for (int j = 0; j < ny; ++j) fn(i, j, layer_index == -1 ? -1 : 0);
      break;
    default:
      for (int i = 0; i < nx; ++i)
        for (int j = 0; j < ny; ++j) fn(i, j, layer_index == -1 ? nz : nz - 1);
      break;
  }
}
}  // namespace

void LocalGrid::extract_face(int face, std::vector<double>& out) const {
  out.clear();
  out.reserve(face_cells(face));
  for_face(face, nx_, ny_, nz_, 0,
           [&](int i, int j, int k) { out.push_back(at(i, j, k)); });
}

void LocalGrid::fill_ghost(int face, const double* values, std::size_t count) {
  assert(count == face_cells(face));
  (void)count;
  std::size_t idx = 0;
  for_face(face, nx_, ny_, nz_, -1,
           [&](int i, int j, int k) { at(i, j, k) = values[idx++]; });
}

void LocalGrid::zero_ghost(int face) {
  for_face(face, nx_, ny_, nz_, -1,
           [&](int i, int j, int k) { at(i, j, k) = 0.0; });
}

void apply_poisson(const LocalGrid& in, LocalGrid& out,
                   const std::array<int, 3>& lo, const std::array<int, 3>& hi) {
  for (int i = lo[0]; i < hi[0]; ++i)
    for (int j = lo[1]; j < hi[1]; ++j)
      for (int k = lo[2]; k < hi[2]; ++k)
        out.at(i, j, k) = 6.0 * in.at(i, j, k) - in.at(i - 1, j, k) -
                          in.at(i + 1, j, k) - in.at(i, j - 1, k) -
                          in.at(i, j + 1, k) - in.at(i, j, k - 1) -
                          in.at(i, j, k + 1);
}

double dot_interior(const LocalGrid& a, const LocalGrid& b) {
  double sum = 0.0;
  for (int i = 0; i < a.nx(); ++i)
    for (int j = 0; j < a.ny(); ++j)
      for (int k = 0; k < a.nz(); ++k) sum += a.at(i, j, k) * b.at(i, j, k);
  return sum;
}

void axpy_interior(double alpha, const LocalGrid& x, LocalGrid& y) {
  for (int i = 0; i < x.nx(); ++i)
    for (int j = 0; j < x.ny(); ++j)
      for (int k = 0; k < x.nz(); ++k) y.at(i, j, k) += alpha * x.at(i, j, k);
}

void xpby_interior(const LocalGrid& r, double beta, LocalGrid& p) {
  for (int i = 0; i < r.nx(); ++i)
    for (int j = 0; j < r.ny(); ++j)
      for (int k = 0; k < r.nz(); ++k)
        p.at(i, j, k) = r.at(i, j, k) + beta * p.at(i, j, k);
}

}  // namespace ds::apps::cg
