// Sequential conjugate-gradient solver: the correctness oracle for the
// distributed variants, and the definition of the problem both share.
#pragma once

#include <cstdint>

#include "apps/cg/grid.hpp"

namespace ds::apps::cg {

/// Deterministic right-hand side value at global cell (gi, gj, gk): a
/// hash-derived value in [-1, 1] so every decomposition assembles the same
/// global problem.
[[nodiscard]] double rhs_value(std::int64_t gi, std::int64_t gj, std::int64_t gk) noexcept;

struct SequentialCgResult {
  LocalGrid x;           ///< solution estimate after `iterations`
  double residual2 = 0;  ///< final squared residual norm
};

/// Run `iterations` of CG on the 7-point Poisson system over an
/// (nx, ny, nz) grid with zero Dirichlet boundaries and rhs_value() data.
[[nodiscard]] SequentialCgResult solve_sequential(int nx, int ny, int nz,
                                                  int iterations);

}  // namespace ds::apps::cg
