#include "apps/cg/cg_solver.hpp"

#include "util/rng.hpp"

namespace ds::apps::cg {

double rhs_value(std::int64_t gi, std::int64_t gj, std::int64_t gk) noexcept {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  h ^= static_cast<std::uint64_t>(gi + 1) * 0xBF58476D1CE4E5B9ull;
  h ^= static_cast<std::uint64_t>(gj + 1) * 0x94D049BB133111EBull;
  h ^= static_cast<std::uint64_t>(gk + 1) * 0xD6E8FEB86659FD93ull;
  (void)util::splitmix64(h);
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

SequentialCgResult solve_sequential(int nx, int ny, int nz, int iterations) {
  LocalGrid x(nx, ny, nz), r(nx, ny, nz), p(nx, ny, nz), ap(nx, ny, nz);
  // x0 = 0  =>  r0 = b, p0 = r0.
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int k = 0; k < nz; ++k) {
        const double b = rhs_value(i, j, k);
        r.at(i, j, k) = b;
        p.at(i, j, k) = b;
      }
  double rr = dot_interior(r, r);
  for (int it = 0; it < iterations; ++it) {
    apply_poisson(p, ap, {0, 0, 0}, {nx, ny, nz});
    const double pap = dot_interior(p, ap);
    if (pap == 0.0) break;
    const double alpha = rr / pap;
    axpy_interior(alpha, p, x);
    axpy_interior(-alpha, ap, r);
    const double rr_new = dot_interior(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    xpby_interior(r, beta, p);
  }
  return SequentialCgResult{std::move(x), rr};
}

}  // namespace ds::apps::cg
