#include "core/channel.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "resilience/failover.hpp"

namespace ds::stream {

Channel Channel::create(mpi::Rank& self, const mpi::Comm& parent,
                        bool is_producer, bool is_consumer,
                        ChannelConfig config) {
  if (is_producer && is_consumer)
    throw std::invalid_argument(
        "Channel::create: producer and consumer groups must be disjoint");
  if (self.rank_in(parent) < 0)
    throw std::logic_error("Channel::create: caller not in parent communicator");

  const std::int8_t my_role = is_producer ? 1 : (is_consumer ? 2 : 0);
  mpi::Comm active = parent;
  for (int attempt = 0;; ++attempt) {
    const int size = active.size();
    // Everyone learns everyone's role — the same traffic MPI_Comm_split
    // pays. Zero-initialized so a block satisfied by failure reads as "not
    // a member" instead of garbage.
    std::vector<std::int8_t> roles(static_cast<std::size_t>(size), 0);
    const std::vector<std::size_t> counts(static_cast<std::size_t>(size), 1);
    const mpi::Status st = self.allgatherv(
        active, mpi::SendBuf::of(&my_role, 1), roles.data(), counts);
    // Commit the exchange through agreement: collective outcomes may
    // diverge when a crash races the last rounds (one rank completes clean
    // before the crash instant, its neighbor observes the failure), and a
    // member that built the channel while the rest retried would leave the
    // group split forever. The agreement ORs every member's local outcome
    // and settles one failure view, so either everyone builds from this
    // exchange or everyone retries.
    const mpi::AgreeResult verdict =
        self.agree(active, st.failed ? 1u : 0u);
    if (verdict.value == 0 && verdict.clean())
      return build(self, active, roles, config);
    // A crash landed inside setup: re-derive membership from the agreed
    // survivor view and retry the exchange over it. Each retry excludes at
    // least one newly dead rank, so the loop terminates — with a channel
    // over the survivors, or with build's clean "no producers/consumers
    // left" error on every survivor alike. Never a deadlock.
    const std::uint64_t ctx = mpi::Machine::derive_context(
        parent.context(), 0x5E7B4C0ull + static_cast<std::uint64_t>(attempt),
        config.channel_id);
    active = mpi::Comm(ctx, mpi::Group(verdict.survivors));
  }
}

Channel Channel::attach(mpi::Rank& self, const mpi::Comm& parent,
                        const std::function<std::int8_t(int)>& role_of,
                        ChannelConfig config) {
  if (self.rank_in(parent) < 0)
    throw std::logic_error("Channel::attach: caller not in parent communicator");
  std::vector<std::int8_t> roles(static_cast<std::size_t>(parent.size()));
  for (int r = 0; r < parent.size(); ++r)
    roles[static_cast<std::size_t>(r)] = role_of(r);
  return build(self, parent, roles, config);
}

Channel Channel::build(mpi::Rank& self, const mpi::Comm& parent,
                       const std::vector<std::int8_t>& roles,
                       ChannelConfig config) {
  const int size = parent.size();
  std::vector<int> members;  // world ranks: producers first, then consumers
  int producers = 0;
  for (int r = 0; r < size; ++r)
    if (roles[static_cast<std::size_t>(r)] == 1) {
      members.push_back(parent.world_rank(r));
      ++producers;
    }
  int consumers = 0;
  for (int r = 0; r < size; ++r)
    if (roles[static_cast<std::size_t>(r)] == 2) {
      members.push_back(parent.world_rank(r));
      ++consumers;
    }
  if (producers == 0 || consumers == 0)
    throw std::invalid_argument(
        "Channel::create: need at least one producer and one consumer");

  Channel ch;
  ch.config_ = config;
  ch.producer_count_ = producers;
  ch.consumer_count_ = consumers;
  // Record where each consumer lives (the machine's node structure is the
  // same on every rank, so this is collectively consistent), and shape the
  // term tree from it when asked.
  const auto& network = self.machine().config().network;
  ch.consumer_node_.reserve(static_cast<std::size_t>(consumers));
  for (int c = 0; c < consumers; ++c) {
    const int world = members[static_cast<std::size_t>(producers + c)];
    ch.consumer_node_.push_back(
        network.ranks_per_node > 0 ? world / network.ranks_per_node : world);
  }
  if (config.node_aware_term && ch.tree_termination())
    ch.build_node_aware_tree();
  const std::uint64_t ctx = mpi::Machine::derive_context(
      parent.context(), 0xC4A77E1ull, config.channel_id);
  const mpi::Comm channel_comm(ctx, mpi::Group(std::move(members)));
  // Non-members keep an invalid comm -> inert handle.
  if (channel_comm.rank_of_world(self.world_rank()) >= 0) {
    ch.comm_ = channel_comm;
    if (config.resilient()) {
      // Every member of the same channel fetches the same machine-hosted
      // ledger; deactivations are idempotent, so concurrent builders agree.
      ch.ledger_ = self.machine().membership_ledger(ctx, consumers);
      for (const int c : config.initially_inactive_consumers) {
        if (c < 0 || c >= consumers)
          throw std::invalid_argument(
              "Channel: initially_inactive_consumers slot outside the "
              "consumer group");
        ch.ledger_->set_active(c, false);
      }
    }
  }
  return ch;
}

void Channel::retire_consumer(mpi::Rank& self, int c) const {
  if (!ledger_)
    throw std::logic_error(
        "Channel::retire_consumer: elastic membership needs a resilient "
        "channel (checkpoint_interval > 0)");
  if (c < 0 || c >= consumer_count_)
    throw std::invalid_argument("Channel::retire_consumer: no such slot");
  // The effective aggregator runs the termination protocol; a retired slot
  // stops polling, so retiring it would strand producer terms forever.
  if (c == resilience::effective_aggregator(*this, self.machine()))
    throw std::logic_error(
        "Channel::retire_consumer: cannot retire the effective aggregator "
        "(retire another slot, or crash it and let re-election run)");
  ledger_->set_active(c, false);
}

void Channel::admit_consumer(mpi::Rank& self, int c) const {
  if (!ledger_)
    throw std::logic_error(
        "Channel::admit_consumer: elastic membership needs a resilient "
        "channel (checkpoint_interval > 0)");
  if (c < 0 || c >= consumer_count_)
    throw std::invalid_argument("Channel::admit_consumer: no such slot");
  const int world = comm_.world_rank(consumer_rank(c));
  if (self.machine().rank_failed(world))
    throw std::logic_error(
        "Channel::admit_consumer: slot's rank is crashed — restart it first");
  ledger_->set_active(c, true);
}

void Channel::free(mpi::Rank& self) {
  if (!valid() || self.rank_in(comm_) < 0) return;
  // A crashed rank's own unwinding must not start new communication.
  if (self.failed()) return;
  if (config_.resilient()) {
    // Agreement-based drain, replacing the formerly *skipped* quiesce: every
    // live member (including restarted incarnations that re-attached)
    // deposits, crashed members are excused by the failure record, and all
    // survivors leave with the same final membership view instead of
    // tearing down blind.
    (void)self.agree(comm_);
    return;
  }
  // The quiesce barrier is failure-aware: it completes (with a failed
  // outcome) even if a member crashed, so teardown never deadlocks.
  (void)self.barrier(comm_);
}

int Channel::my_producer_index(const mpi::Rank& self) const noexcept {
  if (!valid()) return -1;
  const int r = comm_.rank_of_world(self.world_rank());
  return (r >= 0 && r < producer_count_) ? r : -1;
}

int Channel::my_consumer_index(const mpi::Rank& self) const noexcept {
  if (!valid()) return -1;
  const int r = comm_.rank_of_world(self.world_rank());
  return r >= producer_count_ ? r - producer_count_ : -1;
}

int Channel::route(int producer, std::uint64_t seq) const noexcept {
  if (config_.mapping == ChannelConfig::Mapping::RoundRobin) {
    return static_cast<int>((static_cast<std::uint64_t>(producer) + seq) %
                            static_cast<std::uint64_t>(consumer_count_));
  }
  // Block (and the default peer for Directed): contiguous producer slices
  // share one consumer.
  return block_route(producer, producer_count_, consumer_count_);
}

void Channel::build_node_aware_tree() {
  const int consumers = consumer_count_;
  if (consumers <= 1) return;  // a single consumer needs no tree
  term_parent_.assign(static_cast<std::size_t>(consumers), -1);

  // Leaders: the first consumer index on each node (scan order makes
  // leader < every other consumer of its node, and leaders ascend). The
  // first leader is consumer 0, so the aggregator never moves.
  std::map<int, int> leader_on_node;
  std::vector<int> leaders;
  std::vector<int> leader_of(static_cast<std::size_t>(consumers));
  for (int c = 0; c < consumers; ++c) {
    const auto [it, inserted] =
        leader_on_node.emplace(consumer_node_[static_cast<std::size_t>(c)], c);
    if (inserted) leaders.push_back(c);
    leader_of[static_cast<std::size_t>(c)] = it->second;
  }
  // Non-leaders hang off their node's leader (intra-node edges); leaders
  // form a binary heap over their positions (the only cross-node edges).
  // Both rules keep parent index < child index, so subtree walks ascend.
  for (int c = 0; c < consumers; ++c)
    if (leader_of[static_cast<std::size_t>(c)] != c)
      term_parent_[static_cast<std::size_t>(c)] =
          leader_of[static_cast<std::size_t>(c)];
  for (std::size_t j = 1; j < leaders.size(); ++j)
    term_parent_[static_cast<std::size_t>(leaders[j])] = leaders[(j - 1) / 2];
}

std::vector<int> Channel::term_children(int consumer) const {
  std::vector<int> children;
  if (!term_parent_.empty()) {
    // Parents always precede children, so scanning above `consumer` is
    // exhaustive. O(C), but only on the termination path.
    for (int c = consumer + 1; c < consumer_count_; ++c)
      if (term_parent_[static_cast<std::size_t>(c)] == consumer)
        children.push_back(c);
    return children;
  }
  for (int k = 1; k <= 2; ++k) {
    const int child = 2 * consumer + k;
    if (child < consumer_count_) children.push_back(child);
  }
  return children;
}

int Channel::term_tree_depth() const noexcept {
  if (!term_parent_.empty()) {
    int max_depth = 0;
    for (int leaf = 1; leaf < consumer_count_; ++leaf) {
      int depth = 0;
      for (int c = leaf; c > 0; c = term_parent_of(c)) ++depth;
      max_depth = std::max(max_depth, depth);
    }
    return max_depth;
  }
  int depth = 0;
  for (int c = consumer_count_ - 1; c > 0; c = term_parent(c)) ++depth;
  return depth;
}

int Channel::term_cross_node_edges() const noexcept {
  if (consumer_node_.empty()) return 0;
  int edges = 0;
  for (int c = 1; c < consumer_count_; ++c) {
    const int parent = term_parent_of(c);
    if (parent >= 0 && consumer_node_[static_cast<std::size_t>(c)] !=
                           consumer_node_[static_cast<std::size_t>(parent)])
      ++edges;
  }
  return edges;
}

int Channel::expected_term_count(int consumer) const {
  if (!tree_termination())
    return static_cast<int>(producers_of(consumer).size());
  return consumer == term_aggregator() ? producer_count_ : 1;
}

std::vector<int> Channel::producers_of(int consumer) const {
  std::vector<int> result;
  for (int p = 0; p < producer_count_; ++p) {
    if (config_.mapping != ChannelConfig::Mapping::Block) {
      result.push_back(p);  // round-robin/directed producers reach everyone
    } else if (route(p, 0) == consumer) {
      result.push_back(p);
    }
  }
  return result;
}

}  // namespace ds::stream
