// ds::decouple — the typed, RAII pipeline facade over the MPIStream layer.
//
// The low-level API (GroupPlan / Channel / Stream, paper Sec. III-A) stays
// deliberately close to the paper's C interface: raw byte elements, manual
// channel release, hand-rolled worker/helper role dispatch. Every decoupled
// application repeated the same ~100 lines of boilerplate around it. This
// facade fuses those steps into one declarative object:
//
//   auto pipeline = decouple::Pipeline::over(self, self.world())
//                       .with_stride(16)          // or .with_alpha(0.0625)
//                       .with_worker_comm();
//   auto faces = pipeline.stream<FaceHeader>(max_face_bytes, options);
//   pipeline.run(worker_fn, helper_fn);           // role dispatch
//
// Three ideas:
//  * RAII, move-only lifetime — run() creates every declared channel in
//    declaration order (the collective order), producer streams terminate
//    automatically when their role function returns, and channels are
//    released when the Pipeline leaves scope. Call sites never invoke
//    Channel::free or Stream::terminate by hand (early termination remains
//    available for protocols that need it).
//  * Typed elements — TypedStream<Record> serializes trivially-copyable
//    records (plus an optional byte payload) and hands consumers decoded
//    Element<Record> values: no std::byte* arithmetic or memcpy at call
//    sites. RawStream keeps the byte-level interface for payload-only
//    streams and carries the opt-in AdaptiveBatcher policy.
//  * One split, many streams — the worker/helper split (GroupPlan stride or
//    alpha, or an explicit helper set) is declared once; each stream picks a
//    direction relative to it, or overrides the endpoint groups entirely.
//  * Chained stages — Pipeline::stage() partitions the parent communicator
//    into an ordered chain of role groups (worker -> helper -> helper ...);
//    stream_between() links consecutive stages, so an intermediate stage is
//    consumer of one typed stream and producer of the next. run_stages()
//    dispatches each rank to its stage function, and the RAII termination
//    pass propagates end-of-stream stage to stage: when a stage returns, its
//    outgoing streams terminate and the next stage's operate() unblocks.
//
// Collective discipline: every member of the parent communicator must
// declare the same split (or stages) and the same streams in the same order,
// then call run() / run_stages(). Stream declaration order doubles as the
// channel-creation order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/adaptive.hpp"
#include "core/channel.hpp"
#include "core/group_plan.hpp"
#include "core/stream.hpp"
#include "mpi/comm.hpp"
#include "resilience/options.hpp"
#include "util/time.hpp"

namespace ds::mpi {
class Rank;
}

namespace ds::decouple {

class Context;
class Pipeline;

using Mapping = stream::ChannelConfig::Mapping;
using stream::AdaptiveConfig;

/// Which way a pipeline stream flows between the two role groups.
enum class Direction { ToHelpers, ToWorkers };

/// Predicate over a parent-communicator rank. Evaluated with the same
/// arguments on every rank (it derives the collective channel roles), so it
/// must be a pure function of the rank number.
using RolePredicate = std::function<bool(int parent_rank)>;

struct StreamOptions {
  Direction direction = Direction::ToHelpers;
  Mapping mapping = Mapping::Block;
  /// Per-element injection overhead `o` (paper Eq. 4).
  util::SimTime inject_overhead = stream::ChannelConfig{}.inject_overhead;
  /// Facade-level backpressure: the maximum number of elements a producer
  /// may have in flight (sent but not yet consumed). Every send beyond the
  /// window blocks until the consumer returns a credit on the stream's ack
  /// context. 0 (default) disables flow control. Consumers of a throttled
  /// stream must consume every element (operate to exhaustion), or the
  /// producer stays blocked once the window fills.
  std::uint32_t max_inflight = 0;
  /// Credit batching for flow-controlled streams: the consumer returns
  /// credits every `ack_interval`-th element per producer (one ack message
  /// carrying the batch) instead of per element, and flushes the remainder
  /// on termination/exhaustion so the window never stalls on the tail.
  /// For liveness the effective batch is clamped to
  /// ceil(max_inflight / spread), where spread is the number of consumers
  /// a producer can route to (1 under Block, the consumer count under
  /// RoundRobin/Directed). 0 (default) picks the library default
  /// (stream::ChannelConfig::kDefaultAckInterval). Ignored without
  /// max_inflight.
  std::uint32_t ack_interval = 0;
  /// Transport-level element coalescing (see ChannelConfig::coalesce_budget):
  /// same-instant, same-destination elements pack into one framed fabric
  /// message of up to this many wire bytes; a same-instant backstop flush
  /// keeps virtual-time semantics element-exact. 0 disables coalescing
  /// (per-element messages). Defaults to the library default budget.
  std::uint32_t coalesce_budget = stream::ChannelConfig{}.coalesce_budget;
  /// Per-frame element cap (0 picks the library default).
  std::uint32_t coalesce_max_elements = 0;
  /// Self-tuning flow control: drive the coalesce budget (and, when
  /// ack_interval is 0, the consumer's credit batch; and, when max_inflight
  /// is set, the effective credit window — grown on credit stalls, never
  /// shrunk below the configured value) online from the frame occupancy /
  /// inter-arrival signals. Pin the knobs and set this false for fully
  /// static behavior.
  bool flow_autotune = true;
  /// Stream epochs / consumer failover (see ChannelConfig::
  /// checkpoint_interval and README "Resilience"): elements per epoch on
  /// each flow; 0 disables resilience for this stream unless the pipeline
  /// sets a default via Pipeline::with_resilience.
  std::uint32_t checkpoint_interval = 0;
  /// Durability-ack mode for resilient streams (see
  /// resilience::ResilienceOptions::manual_durability).
  bool manual_durability = false;
  /// Node-aware termination aggregation for tree mappings (RoundRobin /
  /// Directed): shape the term tree from the machine's node structure so
  /// cross-node term messages scale with the node count instead of the
  /// consumer count (see ChannelConfig::node_aware_term). Off by default —
  /// the flat heap tree is kept bit-for-bit.
  bool node_aware_term = false;
  /// Elastic membership (resilient streams only): consumer slots that start
  /// deactivated in the shared membership ledger. Their traffic routes to
  /// failover targets until Stream/Channel admit_consumer brings them in
  /// (see ChannelConfig::initially_inactive_consumers).
  std::vector<int> initially_inactive_consumers;
  /// Endpoint overrides for streams that do not follow the worker/helper
  /// split (e.g. a reduce group's internal master stream); when set, they
  /// replace the direction-derived groups.
  RolePredicate producers;
  RolePredicate consumers;
};

/// Move-only RAII ownership of a Channel: released (collectively) when the
/// owner leaves scope. The building block Pipeline uses for every stream's
/// channel; also usable standalone with the low-level Stream API.
class ScopedChannel {
 public:
  ScopedChannel() = default;
  ScopedChannel(mpi::Rank& self, stream::Channel channel) noexcept
      : self_(&self), channel_(std::move(channel)) {}
  ScopedChannel(ScopedChannel&& other) noexcept;
  ScopedChannel& operator=(ScopedChannel&& other) noexcept;
  ScopedChannel(const ScopedChannel&) = delete;
  ScopedChannel& operator=(const ScopedChannel&) = delete;
  ~ScopedChannel();

  /// Collective over `parent`, like Channel::create.
  [[nodiscard]] static ScopedChannel create(mpi::Rank& self,
                                            const mpi::Comm& parent,
                                            bool is_producer, bool is_consumer,
                                            stream::ChannelConfig config = {});

  /// Collective over the channel members: quiesce and release early.
  /// Idempotent; also what the destructor runs.
  void release();

  [[nodiscard]] bool valid() const noexcept { return channel_.valid(); }
  [[nodiscard]] const stream::Channel& get() const noexcept { return channel_; }
  [[nodiscard]] const stream::Channel* operator->() const noexcept {
    return &channel_;
  }

 private:
  mpi::Rank* self_ = nullptr;
  stream::Channel channel_{};
};

/// A decoded stream element, valid only during the handler invocation.
template <typename Record>
struct Element {
  Record record{};                     ///< zeroed for synthetic elements
  const std::byte* payload = nullptr;  ///< bytes after the record (real only)
  std::size_t payload_bytes = 0;       ///< wire bytes after the record
  int producer = -1;                   ///< producer index in the channel
  bool synthetic = false;              ///< modeled element: no real bytes

  /// Copy `count` payload items of U into `out` (real elements only; the
  /// record usually states how many items are meaningful). Rejects counts a
  /// corrupt or mismatched record header could smuggle past the wire size.
  template <typename U>
  void payload_to(std::vector<U>& out, std::size_t count) const {
    static_assert(std::is_trivially_copyable_v<U>);
    if (count * sizeof(U) > payload_bytes)
      throw std::length_error(
          "decouple: record-declared payload exceeds the element's wire size");
    out.resize(count);
    if (count > 0) std::memcpy(out.data(), payload, count * sizeof(U));
  }
};

/// An undecoded element for payload-only streams.
struct RawElement {
  const std::byte* data = nullptr;  ///< null for synthetic elements
  std::size_t bytes = 0;            ///< wire size
  int producer = -1;                ///< producer index in the channel
  bool synthetic = false;
};

/// Record count of an element flushed by an adaptive stream.
[[nodiscard]] std::uint32_t adaptive_record_count(const RawElement& element);

/// Role-aware RAII wrapper around one attached Stream, owned by a Pipeline
/// and obtained inside run() via Context::operator[]. Knows its Rank, so no
/// call threads `self` through; producers terminate automatically when
/// their role function returns.
class StreamBase {
 public:
  StreamBase(const StreamBase&) = delete;
  StreamBase& operator=(const StreamBase&) = delete;
  virtual ~StreamBase() = default;

  // ---- producer side ----
  /// Signal end-of-stream now (paper's MPIStream_Terminate). Idempotent,
  /// and implied by the role function returning.
  virtual void terminate();

  // ---- consumer side ----
  /// Resilient streams with manual durability: acknowledge that everything
  /// consumed so far has durable effects (e.g. after a file flush); see
  /// stream::Stream::ack_durable. No-op otherwise.
  void ack_durable();
  /// Resilient tree streams (Directed/RoundRobin) with manual durability:
  /// register the hook the termination protocol runs before this consumer
  /// commits to the release barrier (its announce-ack; the release
  /// broadcast on the aggregator). The hook must flush external effects and
  /// call ack_durable — the release then certifies global durability, so
  /// producers retire replay logs only once no consumer still buffers
  /// undurable state; see stream::Stream::set_durable_point.
  void on_durable_point(std::function<void()> hook);
  /// Elastic membership: gracefully withdraw this consumer from the stream
  /// (resilient streams only). Deactivates the slot in the shared ledger,
  /// hands the dedup cursors of every owned flow to the failover target, and
  /// marks the stream exhausted; see stream::Stream::retire.
  void retire();
  /// Elastic membership control plane (resilient streams only, callable
  /// from any member): deactivate / re-admit consumer slot `c` in the
  /// shared ledger. Live peers observe the membership change and rebalance;
  /// see Channel::retire_consumer / admit_consumer.
  void retire_consumer(int c);
  void admit_consumer(int c);
  /// Process elements FCFS until every routed producer terminated.
  std::uint64_t operate();
  /// Process arrivals while `keep_going()` stays true (re-checked after
  /// each element) and unterminated producers remain.
  std::uint64_t operate_while(const std::function<bool()>& keep_going);
  /// Consume pending arrivals without blocking until one data element has
  /// been handled; terminations on the way are absorbed silently. Returns
  /// true iff a data element was consumed.
  bool poll_one();
  /// Consume every data element already pending without blocking; returns
  /// the count (terminations absorbed on the way are not counted).
  std::uint64_t drain();

  // ---- introspection ----
  [[nodiscard]] bool is_producer() const;
  [[nodiscard]] bool is_consumer() const;
  [[nodiscard]] int producer_index() const;
  [[nodiscard]] int consumer_index() const;
  [[nodiscard]] std::uint64_t elements_sent() const noexcept {
    return stream_.elements_sent();
  }
  /// Termination-protocol messages this rank has sent on this stream.
  [[nodiscard]] std::uint64_t term_messages_sent() const noexcept {
    return stream_.term_messages_sent();
  }
  /// Coalesced frame messages this producer has posted.
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return stream_.frames_sent();
  }
  /// The producer's current effective coalesce budget (self-tuned), in wire
  /// bytes; 0 when coalescing is off or nothing has been sent.
  [[nodiscard]] std::uint32_t coalesce_budget_now() const noexcept {
    return stream_.coalesce_budget_now();
  }
  /// The producer's current effective credit window (adaptively grown when
  /// flow_autotune is on; equals max_inflight otherwise).
  [[nodiscard]] std::uint32_t max_inflight_now() const noexcept {
    return stream_.max_inflight_now();
  }
  /// Elements this producer re-posted from replay logs across failovers.
  [[nodiscard]] std::uint64_t replayed_elements() const noexcept {
    return stream_.replayed_elements();
  }
  /// Elements currently retained for replay (producer side).
  [[nodiscard]] std::uint64_t retained_elements() const noexcept {
    return stream_.retained_elements();
  }
  /// Flow rebinds this producer performed after consumer crashes.
  [[nodiscard]] std::uint32_t failovers() const noexcept {
    return stream_.failovers();
  }
  /// Duplicate deliveries suppressed by the exactly-once filter (consumer).
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return stream_.duplicates_dropped();
  }
  /// Voluntary flow handbacks/moves this producer performed after rejoins
  /// or elastic membership changes (vs. failovers(), which counts
  /// crash-driven rebinds).
  [[nodiscard]] std::uint32_t rebalances() const noexcept {
    return stream_.rebalances();
  }
  /// Live (producer, flow) entries in the consumer's exactly-once filter —
  /// the dedup memory bound observable (entries are erased on handback and
  /// retire).
  [[nodiscard]] std::size_t dedup_entries() const noexcept {
    return stream_.dedup_entries();
  }
  /// True once all routed producers have terminated (consumer side).
  [[nodiscard]] bool exhausted() const noexcept { return stream_.exhausted(); }
  [[nodiscard]] std::size_t element_size() const noexcept {
    return stream_.element_size();
  }
  [[nodiscard]] const stream::Channel& channel() const noexcept {
    return channel_.get();
  }

 protected:
  StreamBase() = default;
  /// Decode and hand one arrived element to the user handler.
  virtual void dispatch(const stream::StreamElement& element) = 0;
  /// Hook run once the stream is attached (e.g. to set up a batcher).
  virtual void on_bound() {}

  void send_raw(mpi::SendBuf element);
  void send_raw_to(int consumer, mpi::SendBuf element);
  [[nodiscard]] mpi::Rank& self() const;
  [[nodiscard]] stream::Stream& stream() noexcept { return stream_; }

  std::vector<std::byte> scratch_;  ///< record+payload packing buffer

 private:
  friend class Pipeline;
  void bind(mpi::Rank& self, ScopedChannel channel, std::size_t element_bytes,
            std::uint64_t stream_id);

  mpi::Rank* self_ = nullptr;
  ScopedChannel channel_;
  stream::Stream stream_;
};

/// A stream of trivially-copyable `Record`s, each optionally followed by a
/// byte payload of up to the declared maximum. Producers call send*;
/// consumers set on_receive and call operate/poll.
template <typename Record>
class TypedStream final : public StreamBase {
  static_assert(std::is_trivially_copyable_v<Record>,
                "TypedStream records must be trivially copyable");

 public:
  using Handler = std::function<void(const Element<Record>&)>;

  /// Consumer: operator applied on-the-fly to each decoded element. Set it
  /// before operate()/poll_one(); elements arriving without a handler are
  /// consumed silently (termination accounting still runs).
  void on_receive(Handler handler) { handler_ = std::move(handler); }

  // ---- routed by the channel mapping ----
  void send(const Record& record) { send_raw(mpi::SendBuf::of(&record, 1)); }
  template <typename U>
  void send(const Record& record, const U* payload, std::size_t count) {
    send_raw(pack(record, payload, count));
  }
  /// Real record on the wire, modeled payload of `payload_wire_bytes`.
  void send_modeled(const Record& record, std::size_t payload_wire_bytes) {
    send_raw(
        mpi::SendBuf::header_only(record, sizeof(Record) + payload_wire_bytes));
  }
  /// Fully synthetic full-size element.
  void send_synthetic() { send_raw(mpi::SendBuf::synthetic(element_size())); }

  // ---- directed to an explicit consumer index (Directed mapping) ----
  void send_to(int consumer, const Record& record) {
    send_raw_to(consumer, mpi::SendBuf::of(&record, 1));
  }
  template <typename U>
  void send_to(int consumer, const Record& record, const U* payload,
               std::size_t count) {
    send_raw_to(consumer, pack(record, payload, count));
  }
  void send_modeled_to(int consumer, const Record& record,
                       std::size_t payload_wire_bytes) {
    send_raw_to(consumer, mpi::SendBuf::header_only(
                              record, sizeof(Record) + payload_wire_bytes));
  }

 private:
  template <typename U>
  [[nodiscard]] mpi::SendBuf pack(const Record& record, const U* payload,
                                  std::size_t count) {
    static_assert(std::is_trivially_copyable_v<U>,
                  "TypedStream payloads must be trivially copyable");
    const std::size_t payload_bytes = count * sizeof(U);
    scratch_.resize(sizeof(Record) + payload_bytes);
    std::memcpy(scratch_.data(), &record, sizeof(Record));
    if (payload_bytes > 0)
      std::memcpy(scratch_.data() + sizeof(Record), payload, payload_bytes);
    return mpi::SendBuf{scratch_.data(), scratch_.size()};
  }

  void dispatch(const stream::StreamElement& el) override {
    if (!handler_) return;
    Element<Record> typed;
    typed.producer = el.producer;
    typed.synthetic = el.data == nullptr;
    if (el.data != nullptr) {
      // A truncated or mismatched element must not turn into an overread of
      // the wire payload: the record header has to be fully present.
      if (el.bytes < sizeof(Record))
        throw std::length_error(
            "decouple: element smaller than its record type");
      std::memcpy(&typed.record, el.data, sizeof(Record));
      typed.payload = el.data + sizeof(Record);
    }
    typed.payload_bytes = el.bytes > sizeof(Record) ? el.bytes - sizeof(Record) : 0;
    handler_(typed);
  }

  Handler handler_;
};

/// A payload-only stream (no record header): raw bytes in, raw bytes out.
/// Streams declared via Pipeline::adaptive_stream add the producer-side
/// AdaptiveBatcher policy: push() batches logical records into elements
/// whose size adapts online (paper Sec. III future work).
class RawStream final : public StreamBase {
 public:
  using Handler = std::function<void(const RawElement&)>;

  void on_receive(Handler handler) { handler_ = std::move(handler); }

  void send(const void* data, std::size_t bytes);
  template <typename U>
  void send_items(const U* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<U>);
    send(data, count * sizeof(U));
  }
  /// Fully synthetic element occupying `wire_bytes` on the simulated wire.
  void send_synthetic(std::size_t wire_bytes);

  /// Flushes any partial adaptive batch, then terminates.
  void terminate() override;

  // ---- adaptive producer interface (Pipeline::adaptive_stream only) ----
  /// Append one logical record; flushes when the batch target is reached.
  void push();
  /// Flush a partial batch, if any.
  void flush();
  [[nodiscard]] bool is_adaptive() const noexcept { return adaptive_.has_value(); }
  [[nodiscard]] std::uint32_t current_batch() const;
  [[nodiscard]] std::uint64_t records_sent() const;

 private:
  friend class Pipeline;
  void on_bound() override;
  void dispatch(const stream::StreamElement& el) override {
    if (!handler_) return;
    handler_(RawElement{el.data, el.bytes, el.producer, el.data == nullptr});
  }
  [[nodiscard]] stream::AdaptiveBatcher& batcher();
  [[nodiscard]] const stream::AdaptiveBatcher& batcher() const;

  Handler handler_;
  std::optional<AdaptiveConfig> adaptive_;
  std::size_t record_bytes_ = 0;
  std::optional<stream::AdaptiveBatcher> batcher_;
};

/// Cheap token returned by stream declaration; redeemed inside run() with
/// Context::operator[]. Only valid against the pipeline that issued it.
template <typename Record>
class StreamHandle {
 public:
  StreamHandle() = default;
  [[nodiscard]] bool valid() const noexcept { return index_ >= 0; }

 private:
  friend class Context;
  friend class Pipeline;
  explicit StreamHandle(int index) : index_(index) {}
  int index_ = -1;
};

class RawStreamHandle {
 public:
  RawStreamHandle() = default;
  [[nodiscard]] bool valid() const noexcept { return index_ >= 0; }

 private:
  friend class Context;
  friend class Pipeline;
  explicit RawStreamHandle(int index) : index_(index) {}
  int index_ = -1;
};

/// Token for a declared chain stage; redeemed with Pipeline::stream_between
/// and Context::stage_size / stage_ranks.
class StageHandle {
 public:
  StageHandle() = default;
  [[nodiscard]] bool valid() const noexcept { return index_ >= 0; }

 private:
  friend class Context;
  friend class Pipeline;
  explicit StageHandle(int index) : index_(index) {}
  int index_ = -1;
};

/// What a role function sees: identity within the split, the split itself,
/// and the pipeline's bound streams.
class Context {
 public:
  [[nodiscard]] mpi::Rank& self() const noexcept;
  [[nodiscard]] const mpi::Comm& parent() const noexcept;
  [[nodiscard]] int parent_rank() const noexcept;

  [[nodiscard]] bool is_worker() const noexcept;
  [[nodiscard]] bool is_helper() const noexcept { return !is_worker(); }
  /// Index in the worker (helper) group, or -1 when the other role.
  [[nodiscard]] int worker_index() const noexcept;
  [[nodiscard]] int helper_index() const noexcept;
  [[nodiscard]] int worker_count() const noexcept;
  [[nodiscard]] int helper_count() const noexcept;
  /// Parent-comm ranks, ascending.
  [[nodiscard]] const std::vector<int>& workers() const noexcept;
  [[nodiscard]] const std::vector<int>& helpers() const noexcept;
  /// Balanced block assignment of workers to helpers: the helper index
  /// responsible for `worker` under the Block consumer mapping.
  [[nodiscard]] int helper_of(int worker) const noexcept;
  [[nodiscard]] double alpha() const noexcept;

  /// The workers-only communicator (requires with_worker_comm; invalid on
  /// helpers, MPI_UNDEFINED-style).
  [[nodiscard]] const mpi::Comm& worker_comm() const;

  // ---- chained stages (run_stages pipelines only) ----
  /// Number of declared stages (0 for a classic worker/helper run).
  [[nodiscard]] int stage_count() const noexcept;
  /// Index of the stage this rank belongs to, or -1 when unassigned.
  [[nodiscard]] int stage_index() const noexcept;
  /// This rank's position within its stage, or -1 when unassigned.
  [[nodiscard]] int stage_member_index() const noexcept;
  /// Member count of stage `stage`.
  [[nodiscard]] int stage_size(int stage) const;
  [[nodiscard]] int stage_size(StageHandle stage) const;
  /// Parent-comm ranks of stage `stage`, ascending.
  [[nodiscard]] const std::vector<int>& stage_ranks(int stage) const;

  template <typename Record>
  [[nodiscard]] TypedStream<Record>& operator[](StreamHandle<Record> h) const {
    return static_cast<TypedStream<Record>&>(slot(h.index_));
  }
  [[nodiscard]] RawStream& operator[](RawStreamHandle h) const {
    return static_cast<RawStream&>(slot(h.index_));
  }

 private:
  friend class Pipeline;
  explicit Context(Pipeline& pipeline) : pipeline_(&pipeline) {}
  [[nodiscard]] StreamBase& slot(int index) const;

  Pipeline* pipeline_;
};

/// The pipeline builder/runner. Declare the split and the streams (same
/// order on every rank), then run(worker_fn, helper_fn).
class Pipeline {
 public:
  [[nodiscard]] static Pipeline over(mpi::Rank& self, const mpi::Comm& parent);

  Pipeline(Pipeline&&) noexcept = default;
  Pipeline& operator=(Pipeline&&) noexcept = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;
  ~Pipeline() = default;  // slots release their channels in declaration order

  // ---- split declaration (exactly one of the first four) ----
  /// Every `stride`-th parent rank becomes a helper (GroupPlan::interleaved).
  Pipeline& with_stride(int stride) &;
  Pipeline&& with_stride(int stride) && { return std::move(with_stride(stride)); }
  /// Closest interleaved split to helper fraction `alpha` (paper: 12.5%,
  /// 6.25%, 3.125%).
  Pipeline& with_alpha(double alpha) &;
  Pipeline&& with_alpha(double alpha) && { return std::move(with_alpha(alpha)); }
  /// Adopt a split computed elsewhere (e.g. one shared with result sizing).
  Pipeline& with_plan(const stream::GroupPlan& plan) &;
  Pipeline&& with_plan(const stream::GroupPlan& plan) && {
    return std::move(with_plan(plan));
  }
  /// Explicit helper set; every other parent rank is a worker.
  Pipeline& with_helper_ranks(std::vector<int> helpers) &;
  Pipeline&& with_helper_ranks(std::vector<int> helpers) && {
    return std::move(with_helper_ranks(std::move(helpers)));
  }
  /// Topology-aware split: dedicate the last `helpers_per_node` ranks of
  /// each compute node (stream::Placement over the machine's node
  /// structure) to helper duty, so every worker streams to a helper on its
  /// own node — over shared memory, off the fabric's shared links. Nodes
  /// contributing a single rank keep it as a worker. Throws when no node
  /// hosts two members of the parent communicator (no co-location exists).
  Pipeline& with_node_placement(int helpers_per_node = 1) &;
  Pipeline&& with_node_placement(int helpers_per_node = 1) && {
    return std::move(with_node_placement(helpers_per_node));
  }
  /// Also split a workers-only communicator (for in-group collectives).
  Pipeline& with_worker_comm() &;
  Pipeline&& with_worker_comm() && { return std::move(with_worker_comm()); }
  /// Base for the channel ids this pipeline assigns (base + declaration
  /// index). Only needed when two pipelines are concurrently live over the
  /// same parent communicator: give each a distinct base so their derived
  /// matching contexts never collide.
  Pipeline& with_channel_base(std::uint64_t base) &;
  Pipeline&& with_channel_base(std::uint64_t base) && {
    return std::move(with_channel_base(base));
  }
  /// Resilience defaults for every stream of this pipeline: stream epochs,
  /// bounded replay, and consumer failover (see README "Resilience"). A
  /// stream whose StreamOptions sets checkpoint_interval explicitly keeps
  /// its own value; manual_durability likewise composes per stream (a
  /// stream-level `true` is never overridden).
  Pipeline& with_resilience(resilience::ResilienceOptions options = {}) &;
  Pipeline&& with_resilience(resilience::ResilienceOptions options = {}) && {
    return std::move(with_resilience(options));
  }

  // ---- stream declaration ----
  /// A stream of `Record`s, each carrying up to `max_payload_bytes` extra.
  template <typename Record>
  [[nodiscard]] StreamHandle<Record> stream(std::size_t max_payload_bytes = 0,
                                            StreamOptions options = {}) {
    return StreamHandle<Record>(add_slot(std::make_unique<TypedStream<Record>>(),
                                         sizeof(Record) + max_payload_bytes,
                                         std::move(options)));
  }
  /// A payload-only stream of `element_bytes`-sized elements.
  [[nodiscard]] RawStreamHandle raw_stream(std::size_t element_bytes,
                                           StreamOptions options = {});
  /// A payload-only stream whose producers batch `record_bytes` logical
  /// records per element under the adaptive granularity policy.
  [[nodiscard]] RawStreamHandle adaptive_stream(std::size_t record_bytes,
                                                AdaptiveConfig adaptive,
                                                StreamOptions options = {});

  // ---- chained-stage declaration ----
  /// Append a stage to the chain: the given parent-comm ranks form the next
  /// role group. Stages must be pairwise disjoint; every rank declares the
  /// same stages in the same order (the set derives collective channel
  /// roles). The first stage is the chain's worker group; all later stages
  /// are helper groups of the split.
  StageHandle stage(std::vector<int> parent_ranks);
  /// Same, with membership given as a pure predicate over parent ranks.
  StageHandle stage(const RolePredicate& member);

  /// A typed stream whose producers are exactly stage `from` and whose
  /// consumers are exactly stage `to` — the link that makes an intermediate
  /// stage consumer of one stream and producer of the next.
  template <typename Record>
  [[nodiscard]] StreamHandle<Record> stream_between(StageHandle from,
                                                    StageHandle to,
                                                    std::size_t max_payload_bytes = 0,
                                                    StreamOptions options = {}) {
    link_stages(from, to, options);
    return stream<Record>(max_payload_bytes, std::move(options));
  }
  /// Payload-only variant of stream_between.
  [[nodiscard]] RawStreamHandle raw_stream_between(StageHandle from,
                                                   StageHandle to,
                                                   std::size_t element_bytes,
                                                   StreamOptions options = {});

  using RoleFn = std::function<void(Context&)>;
  /// Create every declared channel (collective, declaration order), attach
  /// the streams, and dispatch to `worker_fn` or `helper_fn` by role. When
  /// the role function returns, producer streams terminate automatically;
  /// channels are released when the Pipeline leaves scope.
  void run(const RoleFn& worker_fn, const RoleFn& helper_fn);

  /// Chained dispatch: `stage_fns[i]` runs on the members of stage i (one
  /// function per declared stage; ranks in no stage only participate in the
  /// collective channel creation). Auto-termination propagates stage to
  /// stage: when a stage function returns, that stage's outgoing streams
  /// terminate, unblocking the next stage's operate().
  void run_stages(const std::vector<RoleFn>& stage_fns);

 private:
  friend class Context;
  Pipeline(mpi::Rank& self, mpi::Comm parent);

  struct Slot {
    std::unique_ptr<StreamBase> stream;
    std::size_t element_bytes = 0;
    StreamOptions options;
  };

  int add_slot(std::unique_ptr<StreamBase> stream, std::size_t element_bytes,
               StreamOptions options);
  void set_split(std::vector<int> helpers);
  [[nodiscard]] bool is_helper_rank(int parent_rank) const noexcept;
  /// Fill `options`' endpoint predicates from two declared stages.
  void link_stages(StageHandle from, StageHandle to, StreamOptions& options) const;
  [[nodiscard]] int stage_of(int parent_rank) const noexcept;
  /// Channel creation + role dispatch + RAII termination for this rank.
  void launch(const RoleFn& role_fn);

  mpi::Rank* self_;
  mpi::Comm parent_;
  std::vector<int> workers_;
  std::vector<int> helpers_;
  std::vector<std::vector<int>> stages_;  ///< sorted parent ranks per stage
  bool split_configured_ = false;
  bool want_worker_comm_ = false;
  bool ran_ = false;
  std::uint64_t channel_base_ = 0;
  std::optional<resilience::ResilienceOptions> resilience_;
  mpi::Comm worker_comm_{};
  std::vector<Slot> slots_;
};

}  // namespace ds::decouple
