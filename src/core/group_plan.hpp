// Decoupling group plans (paper Sec. II-C, IV).
//
// The evaluation dedicates "one out of every 8 / 16 / 32 processes"
// (alpha = 12.5% / 6.25% / 3.125%) to the decoupled operation. GroupPlan
// captures that interleaved split of a communicator into workers (who keep
// the main operations) and helpers (who run the decoupled one). A plan
// plugs into decouple::Pipeline via with_plan / with_stride / with_alpha.
#pragma once

#include <vector>

#include "mpi/comm.hpp"

namespace ds::stream {

class GroupPlan {
 public:
  /// Every `stride`-th rank (the last of each block) becomes a helper:
  /// stride=16 gives alpha = 1/16 = 6.25%. Requires stride >= 2 and at least
  /// one full block.
  [[nodiscard]] static GroupPlan interleaved(const mpi::Comm& parent, int stride);

  /// Closest interleaved plan to fraction `alpha` of helpers.
  [[nodiscard]] static GroupPlan with_alpha(const mpi::Comm& parent, double alpha);

  [[nodiscard]] bool is_helper(int parent_rank) const noexcept;
  [[nodiscard]] bool is_worker(int parent_rank) const noexcept {
    return !is_helper(parent_rank);
  }
  [[nodiscard]] int worker_count() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] int helper_count() const noexcept {
    return static_cast<int>(helpers_.size());
  }
  /// Parent-comm ranks.
  [[nodiscard]] const std::vector<int>& workers() const noexcept { return workers_; }
  [[nodiscard]] const std::vector<int>& helpers() const noexcept { return helpers_; }
  [[nodiscard]] int stride() const noexcept { return stride_; }
  [[nodiscard]] double alpha() const noexcept;

 private:
  std::vector<int> workers_;
  std::vector<int> helpers_;
  int stride_ = 0;
  int parent_size_ = 0;
};

}  // namespace ds::stream
