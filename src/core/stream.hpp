// MPIStream data streams (paper Sec. III-A, steps 2-5).
//
// A Stream binds a datatype (the stream-element granularity S of Eq. 4) and
// a consumer-side operator to a Channel. Producers inject elements with
// stream_isend as soon as each element is ready — fine-grained asynchronous
// dataflow. Consumers run operate(), which applies the operator to elements
// in first-come-first-served arrival order across all of their producers;
// that FCFS consumption is the mechanism that absorbs producer imbalance.
//
// Termination (MPIStream_Terminate): under Block mapping a terminating
// producer notifies its single peer consumer, and operate() returns once
// every routed producer has terminated. RoundRobin and Directed channels
// aggregate instead of broadcasting: each producer sends one term — carrying
// its per-consumer element counts — to the channel's aggregator consumer,
// which fans the collective term (with the summed counts) down a binary tree
// over the consumers. A consumer is exhausted once it has seen its term(s)
// AND processed exactly the announced number of elements, so a collective
// term can never overtake in-flight data.
//
// Liveness contract of the aggregated protocol: the collective term travels
// through consumers, so a consumer that stops servicing the stream (returns
// from operate_while early and never polls again) also stops forwarding the
// term to its tree descendants. Waiting on exhausted()/operate() completion
// therefore requires every consumer of the channel to keep servicing the
// stream; protocols where consumers leave early by design (e.g. the PIC
// close-notification stream) must not wait on exhaustion — exactly as under
// the seed's broadcast, where unread terms were simply abandoned.
//
// Transport coalescing (ChannelConfig::coalesce_budget): elements a producer
// injects at the same virtual instant toward the same consumer are packed
// into one framed fabric message (length-prefixed sub-records) and unpacked
// in place at the consumer — element semantics (per-(context,src) FIFO,
// wildcard matching, count-based termination exhaustion, credit accounting)
// are preserved with counted rather than per-message bookkeeping, while the
// per-message software cost o_s/o_r and the wake/advance context-switch pair
// are paid once per frame. A same-instant backstop event flushes the moment
// the producing fiber yields, so coalescing never delays an element in
// virtual time. See ChannelConfig::flow_autotune for the self-tuning loop.
//
// Resilience (ChannelConfig::checkpoint_interval > 0, the ds::resilience
// subsystem): every element travels in a framed message stamped with its
// *flow* (the original consumer index its sequence space belongs to) and
// sequence number. Producers cut an epoch every checkpoint_interval elements
// per flow and retain flushed-but-not-durably-acknowledged frames in a
// bounded replay log (resilience::ReplayLog); consumers acknowledge epoch
// durability (automatically at epoch boundaries, or via ack_durable for
// consumers with external effects), which truncates the log. When fault
// injection crashes a consumer, producers rebind the dead consumer's flows
// to the deterministic failover target (resilience::failover_target) and
// replay the retained frames; receivers dedupe by (producer, flow, seq), so
// application code sees every element exactly once. Recoverability window:
// crashes are recoverable while producers are still active on the stream
// (terminate() repairs its own routing); data already durable at the dead
// consumer is never replayed.
//
// Resilient termination (tree mappings) runs a release-barrier protocol
// that covers the remaining failure-matrix cells — producer crash,
// aggregator crash mid-protocol, rank rejoin, elastic membership:
//
//  * Each terminating producer sends its per-flow element counts to the
//    effective aggregator (first live+active consumer) and then blocks until
//    a TermRelease, resending the counted term whenever the aggregator role
//    moves (crash of the old aggregator, or rejoin of an earlier slot) and
//    servicing durable acks / failover / rebalancing while it waits.
//  * The aggregator records count vectors idempotently per producer and is
//    complete once every producer has reported or crashed (a dead producer's
//    unreported counts are excluded: its undurable in-flight tail is
//    unrecoverable by definition and nobody waits for it). It then announces
//    the full (producer x flow) count matrix to every live+active consumer,
//    collects announce-acks, and only then releases producers and consumers
//    (in one atomic fiber step). The barrier yields the invariant that makes
//    an aggregator crash mid-protocol survivable: if any producer was
//    released, every live consumer already holds the matrix, so a newly
//    elected aggregator either re-collects terms (producers are still
//    blocked and resend) or re-announces from its own copy.
//  * A consumer is exhausted once it holds the matrix, its dedup cursor for
//    every (live producer, owned flow) pair has reached the announced count,
//    and it has been released. Per-pair accounting means a dead producer's
//    lost tail can never mask a live producer's in-flight data.
//
// Rejoin and elastic membership ride the same machinery: when a crashed
// rank restarts (Machine::restart_rank) or a retired slot is re-admitted
// (Channel::admit_consumer), producers observe the rejoin epoch /
// membership version at their next stream operation, point the flow back at
// its home slot, and send the previous owner a handback marker; the owner
// replies to the home slot with a RebalanceSync carrying its dedup cursors
// (and erases them — the dedup filter's memory bound), so the rejoined
// consumer resumes exactly where its predecessor stopped. A consumer leaves
// voluntarily with Stream::retire(): it flushes durable acks, deactivates
// its slot in the shared membership ledger, and hands each owned flow to
// its failover target with a cursor sync before exiting.
//
// This is the implementation layer: application code normally uses the
// typed streams of core/decouple.hpp (decouple::TypedStream / RawStream),
// which decode elements and terminate by RAII.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/channel.hpp"
#include "mpi/datatype.hpp"
#include "resilience/failover.hpp"

namespace ds::stream {

/// Producer-side coalescing state (defined in stream.cpp; heap-boxed and
/// shared with the same-instant backstop events so a moved/destroyed Stream
/// never leaves a scheduled flush dangling).
struct CoalesceState;

/// A received stream element, valid only during the operator invocation.
/// `data` is null for synthetic elements (modeled payloads).
struct StreamElement {
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  int producer = -1;  ///< producer index in the channel
};

/// Consumer-side operator applied on-the-fly to arriving elements.
using Operator = std::function<void(const StreamElement&)>;

class Stream {
 public:
  Stream() = default;

  /// Attach a stream to `channel` (paper's MPIStream_Attach). Local call;
  /// every channel member must attach with the same `stream_id` before
  /// using it. `element_type` fixes the element wire size; `op` is invoked
  /// on consumers only and may be empty elsewhere.
  [[nodiscard]] static Stream attach(const Channel& channel,
                                     const mpi::Datatype& element_type,
                                     Operator op, std::uint64_t stream_id = 0);

  /// Producer: asynchronously inject one element (paper's MPIStream_Isend).
  /// `element.bytes` must not exceed the element type's size. Charges the
  /// per-element overhead and sender overhead; returns without blocking on
  /// delivery. Routed by the channel's mapping policy.
  void isend(mpi::Rank& self, mpi::SendBuf element);

  /// Producer: inject one element addressed to a specific consumer index
  /// (Directed routing; used when elements carry their own destination,
  /// e.g. halo faces addressed to a neighbour's helper). Throws
  /// std::out_of_range when `consumer` is not a valid consumer index.
  void isend_to(mpi::Rank& self, int consumer, mpi::SendBuf element);

  /// Producer: inject a synthetic element of the full element size.
  void isend_synthetic(mpi::Rank& self) {
    isend(self, mpi::SendBuf::synthetic(element_size_));
  }

  /// Producer: flush any coalesced frames still buffered (one per addressed
  /// consumer). Rarely needed by applications — frames flush on their own
  /// when the byte budget or element cap fills, when the producer terminates
  /// or blocks on a credit, and (via a same-instant backstop event) the
  /// moment the producing fiber yields the CPU — but available for protocols
  /// that want an explicit push.
  void flush(mpi::Rank& self);

  /// Producer: signal end-of-stream (paper's MPIStream_Terminate).
  void terminate(mpi::Rank& self);

  /// Consumer: process elements FCFS until every routed producer terminated
  /// (paper's MPIStream_Operate). Returns the number of elements processed.
  std::uint64_t operate(mpi::Rank& self);

  /// Consumer: process arrivals while `keep_going()` returns true and
  /// unterminated producers remain; re-checks `keep_going` after each
  /// element. Returns elements processed. Used by consumers that interleave
  /// other duties.
  std::uint64_t operate_while(mpi::Rank& self, const std::function<bool()>& keep_going);

  /// Consumer: drain pending arrivals without blocking until one *data*
  /// element has been consumed. Terminations encountered on the way are
  /// consumed silently (they are control flow, not elements — matching
  /// operate_while accounting). Returns true iff a data element was consumed.
  bool poll_one(mpi::Rank& self);

  /// Consumer (resilient streams with manual_durability): acknowledge that
  /// every element consumed so far has durable effects (e.g. the writer's
  /// buffer reached storage). Producers truncate their replay logs up to the
  /// acknowledged sequences; a later crash of this consumer replays only
  /// elements consumed after the last ack. No-op on non-resilient streams
  /// and in automatic mode (where epoch boundaries ack on their own).
  void ack_durable(mpi::Rank& self);

  /// Consumer (resilient tree streams with manual_durability): register the
  /// durability hook the termination protocol invokes before this consumer
  /// commits to the release barrier — right before its announce-ack, and
  /// (on the aggregator) right before the release broadcast. The hook must
  /// make every consumed element's external effects durable and call
  /// ack_durable (e.g. a writer's file flush). With it registered, the
  /// release certifies global durability: producers may retire their replay
  /// logs knowing no consumer still holds undurable state a later crash
  /// could lose. Without a hook the announce-ack is sent immediately (the
  /// release then certifies only count agreement, as in automatic mode).
  void set_durable_point(std::function<void()> hook) {
    durable_point_ = std::move(hook);
  }

  /// Consumer (resilient streams): leave the channel voluntarily. Flushes
  /// durable acks, deactivates this slot in the shared membership ledger,
  /// hands every owned flow to its failover target with a cursor sync, and
  /// marks the stream exhausted so operate() returns. Producers observe the
  /// membership change at their next stream operation and re-route; the
  /// effective aggregator cannot retire (Channel::retire_consumer throws).
  void retire(mpi::Rank& self);

  [[nodiscard]] std::size_t element_size() const noexcept { return element_size_; }
  [[nodiscard]] const Channel& channel() const noexcept { return *channel_; }
  [[nodiscard]] std::uint64_t elements_sent() const noexcept { return sent_; }
  /// Termination-protocol messages this rank has sent on this stream:
  /// producer terms plus collective-term fan-out (consumer side).
  [[nodiscard]] std::uint64_t term_messages_sent() const noexcept {
    return term_msgs_sent_;
  }
  /// Flow-control ack messages this consumer has sent (each carries a whole
  /// credit batch, so with ack_interval k this is ~elements/k).
  [[nodiscard]] std::uint64_t ack_messages_sent() const noexcept {
    return ack_msgs_sent_;
  }
  /// Credits this producer has received back (equals elements consumed and
  /// acked, regardless of how they were batched).
  [[nodiscard]] std::uint64_t credits_received() const noexcept {
    return acks_seen_;
  }
  /// Coalesced frame messages this producer has posted (each carrying one
  /// or more elements; oversized elements bypass coalescing and are not
  /// counted here).
  [[nodiscard]] std::uint64_t frames_sent() const noexcept;
  /// Elements that left this producer inside coalesced frames.
  [[nodiscard]] std::uint64_t coalesced_elements_sent() const noexcept;
  /// The producer's current effective coalesce budget in wire bytes (may
  /// differ from ChannelConfig::coalesce_budget under self-tuning); 0 when
  /// coalescing is off or no element has been sent yet.
  [[nodiscard]] std::uint32_t coalesce_budget_now() const noexcept;
  /// The consumer's current effective credit batch (self-tuned toward the
  /// observed frame occupancy when ChannelConfig::flow_autotune is on and
  /// ack_interval is 0).
  [[nodiscard]] std::uint32_t ack_interval_now() const noexcept {
    return ack_every_;
  }
  /// The producer's current effective credit window: max_inflight, adaptively
  /// grown (never shrunk below the configured value) from credit-stall
  /// signals when flow_autotune is on and coalescing is active.
  [[nodiscard]] std::uint32_t max_inflight_now() const noexcept;

  // ---- resilience instrumentation (see ds::resilience) ----
  /// Elements this producer has re-posted from replay logs across failovers.
  [[nodiscard]] std::uint64_t replayed_elements() const noexcept;
  /// Elements currently retained for replay across this producer's flows.
  [[nodiscard]] std::uint64_t retained_elements() const noexcept;
  /// Flow rebinds this producer has performed after consumer crashes.
  [[nodiscard]] std::uint32_t failovers() const noexcept;
  /// Voluntary flow moves this producer has performed for rank rejoins and
  /// elastic membership changes (handbacks to a rejoined or re-admitted
  /// slot, and moves off a retired one).
  [[nodiscard]] std::uint32_t rebalances() const noexcept;
  /// Live (producer, flow) cursor entries held by this consumer's
  /// exactly-once filter. Handbacks and retirement erase entries, so this
  /// stays bounded by the flows a consumer currently owns rather than
  /// growing with churn history.
  [[nodiscard]] std::size_t dedup_entries() const noexcept {
    return dedup_.dedup_entries();
  }
  /// Duplicate deliveries this consumer suppressed (exactly-once filter).
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return dedup_.duplicates_dropped();
  }
  /// Durability acknowledgments this consumer has sent.
  [[nodiscard]] std::uint64_t durable_acks_sent() const noexcept {
    return durable_acks_sent_;
  }
  /// True once the stream's termination protocol has completed for this
  /// consumer. Non-resilient / Block: all terms observed and, under tree
  /// termination, every announced element processed. Resilient tree mode:
  /// the count matrix is known, every (live producer, owned flow) cursor
  /// reached its announced count, and the release barrier passed. A retired
  /// consumer is exhausted by definition.
  [[nodiscard]] bool exhausted() const noexcept {
    if (retired_) return true;
    if (tree_v2_) {
      if (!counts_known_ || !matrix_satisfied_) return false;
      // Either form of the barrier counts: a consumer that received the
      // release and is later re-derived as aggregator (the old aggregator
      // crashed after broadcasting) must not wait for a second one.
      return release_seen_ || release_done_;
    }
    if (expected_terms_ < 0 || terms_seen_ < expected_terms_) return false;
    return !counts_known_ || processed_data_ >= expected_data_;
  }

 private:
  /// Wire entry of a termination message: how many data elements are bound
  /// for one consumer. Terms carry only the entries relevant to the
  /// receiver — a producer's touched consumers (up to C each, so O(P*C)
  /// bytes on the aggregation hop in the worst case) and a tree node's
  /// subtree (O(C log C) bytes across the whole fan-out).
  struct TermEntry {
    std::uint64_t consumer = 0;
    std::uint64_t count = 0;
  };

  void ensure_consumer_state(mpi::Rank& self);
  void ensure_producer_state(mpi::Rank& self);
  /// Append one element to the consumer's pending frame, flushing by budget
  /// or element cap first. False when the element is too large to coalesce
  /// (bypasses as a per-element message; resilient flows force-frame it
  /// instead, alone in its own frame, so every element carries a sequence).
  bool coalesce_element(mpi::Rank& self, int consumer, mpi::SendBuf element);
  /// Fiber-context flush of one consumer's pending frame (post, retune,
  /// charge the deferred per-element + per-message overhead as one advance).
  void flush_frame(mpi::Rank& self, int consumer, std::uint8_t trigger);
  void flush_all_frames(mpi::Rank& self, std::uint8_t trigger);
  /// Unpack state for an arrived frame; consume_frame_element() then hands
  /// elements to the operator one at a time, in place. Returns false when
  /// the element was a replay duplicate suppressed by the exactly-once
  /// filter (nothing was delivered or accounted).
  void begin_frame(const mpi::Status& status);
  bool consume_frame_element(mpi::Rank& self);
  void account_data_element(mpi::Rank& self, int producer);
  void handle(mpi::Rank& self, const mpi::Status& status);
  void handle_tree_term(mpi::Rank& self, const mpi::Status& status);
  /// Send the collective term on to this consumer's tree children, sliced
  /// to each child's subtree.
  void fan_out_term(mpi::Rank& self, const std::vector<TermEntry>& entries);
  /// One fan-out hop: send `entries` sliced to `child`'s subtree, or — when
  /// the child is a crashed consumer of a resilient stream — route around it
  /// into its own tree children, so the collective term reaches every
  /// surviving subtree.
  void fan_out_to(mpi::Rank& self, int child,
                  const std::vector<TermEntry>& entries);
  /// Return `producer`'s accumulated credits as one batched ack message.
  void flush_credits(mpi::Rank& self, int producer);
  void flush_all_credits(mpi::Rank& self);
  void await_credit(mpi::Rank& self);

  // ---- resilience (ds::resilience; active only when the channel config
  // ---- sets checkpoint_interval > 0) ----
  /// Producer: react to newly observed crashes — rebind dead consumers'
  /// flows to their failover targets, retarget pending frames, and replay
  /// retained frames. Returns true when at least one flow was rebound.
  bool check_producer_failover(mpi::Rank& self);
  /// Producer: react to rank rejoins and elastic membership changes — hand
  /// redirected flows back to a rejoined/re-admitted home slot (with a
  /// handback marker to the previous owner), move flows off a retired slot,
  /// and resynchronize (handoff + full undurable replay) with a home slot
  /// whose rank crashed and restarted without the redirect ever moving.
  /// Returns true when at least one flow moved.
  bool check_producer_rebalance(mpi::Rank& self);
  /// Consumer: react to newly observed crashes, rejoins, and membership
  /// changes — adopt dead/retired consumers' flows this rank is the
  /// failover target of (repairing expected term counts under Block
  /// mapping), exclude dead producers' missing terms, and re-derive the
  /// effective aggregator.
  void check_consumer_failover(mpi::Rank& self);
  /// Consumer, resilient tree mode, effective aggregator only: drive the
  /// termination protocol forward — complete term collection (waiving dead
  /// producers), announce the count matrix, collect announce-acks, release.
  void progress_termination(mpi::Rank& self);
  /// Consumer, resilient tree mode: recompute matrix_satisfied_ from the
  /// dedup cursors against the announced matrix (dead producers waived).
  void update_matrix_exhaustion(mpi::Rank& self);
  /// Consumer, resilient tree mode with a registered durable point: once
  /// everything this consumer owes the matrix is consumed, run the flush
  /// hook and send the deferred announce-ack.
  void maybe_ack_announce(mpi::Rank& self);
  /// Aggregator (resilient tree mode): record one producer's counted term
  /// as an idempotent matrix row.
  void handle_counted_term(mpi::Rank& self, const mpi::Status& status);
  /// Producer: hand one flow to `dst_world` — durable point first, then the
  /// retained undurable frames, verbatim.
  void replay_flow(mpi::Rank& self, std::size_t flow, int dst_world);
  /// Consumer: apply/emit rebalance messages. handle_sync dispatches an
  /// incoming kTagSync (producer handback marker or consumer cursor sync);
  /// send_rebalance_sync ships the (producer, `flow`) cursors this rank
  /// holds to consumer `target` and erases the local entries (all producers,
  /// or just `only_producer` when answering a single handback marker).
  void handle_sync(mpi::Rank& self, const mpi::Status& status);
  void send_rebalance_sync(mpi::Rank& self, int target, int flow,
                           int only_producer = -1);
  /// Consumer: block until the live retiree owning `flow` has delivered its
  /// cursor sync (adoption-by-retire must not admit replayed elements the
  /// retiree already processed).
  void await_rebalance_sync(mpi::Rank& self, int retiree_flow);
  /// Producer: consume pending durability acknowledgments, truncating logs.
  void drain_durable_acks(mpi::Rank& self);
  /// Consumer: one durability ack for (producer, flow) up to sequence `upto`.
  void send_durable_ack(mpi::Rank& self, int producer, int flow,
                        std::uint64_t upto);
  /// Consumer: ack the current consumption point of every tracked flow.
  void flush_durable_acks(mpi::Rank& self);
  [[nodiscard]] std::uint32_t window_now() const noexcept;
  /// The real bodies of terminate()/operate_while(); the public entry
  /// points wrap them with the ds::obs span and the lifecycle metrics
  /// flush so every exit path (including RankFailure unwinds) is covered.
  void terminate_impl(mpi::Rank& self);
  std::uint64_t operate_loop(mpi::Rank& self,
                             const std::function<bool()>& keep_going);
  /// Lifecycle flush into the machine's metrics registry (ds::obs): each
  /// role adds its totals once, when it completes — the per-element hot
  /// path never touches the registry.
  void flush_producer_metrics(mpi::Rank& self);
  void flush_consumer_metrics(mpi::Rank& self);
  void flush_term_metrics(mpi::Rank& self);

  const Channel* channel_ = nullptr;
  std::uint64_t context_ = 0;      ///< matching context derived per stream
  std::uint64_t ack_context_ = 0;  ///< credit/ack context derived from it
  std::uint64_t durable_context_ = 0;  ///< durability-ack matching context
  std::size_t element_size_ = 0;
  Operator operator_;

  // producer state
  std::uint64_t sent_ = 0;
  std::uint64_t acks_seen_ = 0;
  bool terminated_ = false;
  // one-shot latches for the metrics lifecycle flush (see flush_*_metrics)
  bool producer_metrics_flushed_ = false;
  bool consumer_metrics_flushed_ = false;
  std::uint64_t term_msgs_flushed_ = 0;  ///< term msgs already flushed
  std::vector<std::uint64_t> sent_per_consumer_;  ///< tree termination only
  /// Coalescing state box (null until the first isend, or when coalescing
  /// is disabled). Shared with the backstop events scheduled at each frame
  /// open, so flushes survive Stream moves.
  std::shared_ptr<CoalesceState> coalesce_;

  // consumer state
  int my_consumer_ = -1;
  int expected_terms_ = -1;
  int terms_seen_ = 0;
  std::uint64_t processed_data_ = 0;
  std::uint64_t expected_data_ = 0;
  bool counts_known_ = false;  ///< tree mode: announced counts received
  std::vector<std::uint64_t> count_accum_;  ///< aggregator: per-consumer sums
  std::vector<std::byte> element_buffer_;
  /// Credit batching (flow-controlled streams): per-producer count of
  /// consumed-but-unacked elements, flushed every ack_every_-th element and
  /// whenever a term arrives or the stream exhausts.
  std::vector<std::uint32_t> credit_pending_;
  std::uint32_t ack_every_ = 1;  ///< effective min(ack_interval, window)
  std::uint32_t ack_limit_ = 1;  ///< liveness clamp ceil(window/spread)
  bool ack_auto_ = false;        ///< self-tune ack_every_ to frame occupancy

  /// Partially drained incoming frame: elements left, read cursor into
  /// element_buffer_, and the frame's producer index. poll_one/operate pull
  /// from here before touching the mailbox, so a frame interleaves with
  /// other sources at frame granularity while per-(context,src) order holds.
  std::uint32_t frame_left_ = 0;
  std::uint32_t frame_elements_ = 0;  ///< total elements of the current frame
  std::size_t frame_cursor_ = 0;
  int frame_source_ = -1;
  /// Resilient frames additionally carry their flow id and the sequence of
  /// their first element (the epoch header).
  int frame_flow_ = -1;
  std::uint64_t frame_seq0_ = 0;

  // consumer-side resilience state (inert unless the channel is resilient)
  bool resilient_ = false;
  bool manual_durability_ = false;
  std::uint32_t checkpoint_interval_ = 0;
  resilience::DedupFilter dedup_;
  std::uint64_t consumer_failure_epoch_ = 0;  ///< last crash count reacted to
  std::uint64_t consumer_rejoin_epoch_ = 0;   ///< last restart count reacted to
  std::uint64_t consumer_membership_version_ = 0;  ///< last ledger version seen
  std::vector<std::uint8_t> adopted_;  ///< dead consumers whose flows I took
  std::vector<std::uint8_t> slot_active_seen_;  ///< last observed active bits
  std::vector<std::uint8_t> synced_slot_;  ///< retiree cursor sync applied
  int effective_aggregator_ = 0;  ///< tree root, re-derived after crashes
  /// Highest durability ack already sent per (producer, flow) key.
  std::unordered_map<std::uint64_t, std::uint64_t> durable_acked_;
  std::uint64_t durable_acks_sent_ = 0;

  // resilient tree-termination protocol (the "v2" release barrier)
  bool tree_v2_ = false;   ///< resilient_ && tree_termination
  bool retired_ = false;   ///< this consumer left via retire()
  std::vector<std::uint8_t> term_from_;  ///< per-producer: term received
  std::vector<std::uint8_t> producer_excluded_;  ///< Block: dead, term waived
  std::vector<std::uint64_t> matrix_;  ///< announced counts, P x C flattened
  bool matrix_satisfied_ = false;  ///< owned cursors reached the matrix
  bool release_seen_ = false;      ///< TermRelease received (non-aggregator)
  bool release_done_ = false;      ///< release barrier broadcast (aggregator)
  bool announced_ = false;         ///< aggregator: matrix broadcast begun
  std::vector<std::uint8_t> announce_acked_;  ///< aggregator: acks collected
  std::uint64_t announce_failure_epoch_ = 0;  ///< re-announce keying
  std::uint64_t announce_rejoin_epoch_ = 0;
  /// Durability hook (see set_durable_point): flushes this consumer's
  /// external effects before an announce-ack / the release commits.
  std::function<void()> durable_point_;
  bool announce_ack_pending_ = false;  ///< deferred ack owed (durable point)
  int announce_ack_to_ = -1;           ///< world rank of the announcer

  /// Deadlock-report detail: the blocked-state notes below snprintf the
  /// stream's termination progress into this buffer so a hung run's report
  /// names the stuck channel and which protocol step is missing, instead of
  /// a bare "blocked in stream poll".
  char state_note_buf_[192] = {};
  [[nodiscard]] const char* blocked_note(const char* what);

  // termination scratch, reserved once and reused across terms/children so
  // the fan-out does not reallocate per child slice
  std::vector<TermEntry> term_rx_;     ///< decoded incoming term entries
  std::vector<TermEntry> term_tx_;     ///< producer entries / aggregator totals
  std::vector<TermEntry> term_slice_;  ///< per-child subtree slice

  // shared instrumentation
  std::uint64_t term_msgs_sent_ = 0;
  std::uint64_t ack_msgs_sent_ = 0;

  static constexpr int kTagData = 0;
  static constexpr int kTagTerm = 1;
  static constexpr int kTagAck = 2;
  /// A coalesced frame: length-prefixed sub-records of one or more
  /// same-destination elements, unpacked in place at the consumer.
  static constexpr int kTagFrame = 3;
  /// A durability acknowledgment (resilient streams, durable_context_).
  static constexpr int kTagDurable = 4;
  /// A flow handoff announcing an adopted flow's durable point; posted on
  /// the data context right before its replayed frames, so per-source FIFO
  /// delivers it first and the adopter's dedup cursor skips the replay's
  /// already-durable prefix.
  static constexpr int kTagHandoff = 5;
  /// Aggregator -> consumers: the full (producer x flow) count matrix
  /// (resilient tree termination). Idempotent; resent after membership
  /// changes until acked.
  static constexpr int kTagAnnounce = 6;
  /// Consumer -> aggregator: matrix received (or a retiring consumer's
  /// courtesy "don't wait for me").
  static constexpr int kTagAnnounceAck = 7;
  /// Aggregator -> everyone: release barrier commit. Sent to producers on
  /// durable_context_ (their wait loop probes there) and to consumers on
  /// context_, in one atomic fiber step.
  static constexpr int kTagRelease = 8;
  /// Rebalance traffic (context_). From a producer: a handback marker — flow
  /// f returns to its home slot as of the carried sequence; the receiving
  /// owner replies to the home slot with its cursors. From a consumer: a
  /// RebalanceSync — dedup cursor entries the receiver adopts (and the
  /// sender erases).
  static constexpr int kTagSync = 9;
};

}  // namespace ds::stream
