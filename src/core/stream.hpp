// MPIStream data streams (paper Sec. III-A, steps 2-5).
//
// A Stream binds a datatype (the stream-element granularity S of Eq. 4) and
// a consumer-side operator to a Channel. Producers inject elements with
// stream_isend as soon as each element is ready — fine-grained asynchronous
// dataflow. Consumers run operate(), which applies the operator to elements
// in first-come-first-served arrival order across all of their producers;
// that FCFS consumption is the mechanism that absorbs producer imbalance.
//
// Termination (MPIStream_Terminate): a producer that is done sends a
// zero-byte control element to every consumer it routes to; operate()
// returns once every routed producer has terminated.
//
// This is the implementation layer: application code normally uses the
// typed streams of core/decouple.hpp (decouple::TypedStream / RawStream),
// which decode elements and terminate by RAII.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/channel.hpp"
#include "mpi/datatype.hpp"

namespace ds::stream {

/// A received stream element, valid only during the operator invocation.
/// `data` is null for synthetic elements (modeled payloads).
struct StreamElement {
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  int producer = -1;  ///< producer index in the channel
};

/// Consumer-side operator applied on-the-fly to arriving elements.
using Operator = std::function<void(const StreamElement&)>;

class Stream {
 public:
  Stream() = default;

  /// Attach a stream to `channel` (paper's MPIStream_Attach). Local call;
  /// every channel member must attach with the same `stream_id` before
  /// using it. `element_type` fixes the element wire size; `op` is invoked
  /// on consumers only and may be empty elsewhere.
  [[nodiscard]] static Stream attach(const Channel& channel,
                                     const mpi::Datatype& element_type,
                                     Operator op, std::uint64_t stream_id = 0);

  /// Producer: asynchronously inject one element (paper's MPIStream_Isend).
  /// `element.bytes` must not exceed the element type's size. Charges the
  /// per-element overhead and sender overhead; returns without blocking on
  /// delivery. Routed by the channel's mapping policy.
  void isend(mpi::Rank& self, mpi::SendBuf element);

  /// Producer: inject one element addressed to a specific consumer index
  /// (Directed routing; used when elements carry their own destination,
  /// e.g. halo faces addressed to a neighbour's helper).
  void isend_to(mpi::Rank& self, int consumer, mpi::SendBuf element);

  /// Producer: inject a synthetic element of the full element size.
  void isend_synthetic(mpi::Rank& self) {
    isend(self, mpi::SendBuf::synthetic(element_size_));
  }

  /// Producer: signal end-of-stream (paper's MPIStream_Terminate).
  void terminate(mpi::Rank& self);

  /// Consumer: process elements FCFS until every routed producer terminated
  /// (paper's MPIStream_Operate). Returns the number of elements processed.
  std::uint64_t operate(mpi::Rank& self);

  /// Consumer: process arrivals while `keep_going()` returns true and
  /// unterminated producers remain; re-checks `keep_going` after each
  /// element. Returns elements processed. Used by consumers that interleave
  /// other duties.
  std::uint64_t operate_while(mpi::Rank& self, const std::function<bool()>& keep_going);

  /// Consumer: drain at most one pending element without blocking.
  /// Returns true if an element or termination was consumed.
  bool poll_one(mpi::Rank& self);

  [[nodiscard]] std::size_t element_size() const noexcept { return element_size_; }
  [[nodiscard]] const Channel& channel() const noexcept { return *channel_; }
  [[nodiscard]] std::uint64_t elements_sent() const noexcept { return sent_; }
  /// True once all routed producers have terminated (consumer side).
  [[nodiscard]] bool exhausted() const noexcept {
    return expected_terms_ >= 0 && terms_seen_ >= expected_terms_;
  }

 private:
  void ensure_consumer_state(mpi::Rank& self);
  void handle(mpi::Rank& self, const mpi::Status& status);

  const Channel* channel_ = nullptr;
  std::uint64_t context_ = 0;  ///< matching context derived per stream
  std::size_t element_size_ = 0;
  Operator operator_;

  // producer state
  std::uint64_t sent_ = 0;
  bool terminated_ = false;

  // consumer state
  int my_consumer_ = -1;
  int expected_terms_ = -1;
  int terms_seen_ = 0;
  std::vector<std::byte> element_buffer_;

  static constexpr int kTagData = 0;
  static constexpr int kTagTerm = 1;
};

}  // namespace ds::stream
