// MPIStream data streams (paper Sec. III-A, steps 2-5).
//
// A Stream binds a datatype (the stream-element granularity S of Eq. 4) and
// a consumer-side operator to a Channel. Producers inject elements with
// stream_isend as soon as each element is ready — fine-grained asynchronous
// dataflow. Consumers run operate(), which applies the operator to elements
// in first-come-first-served arrival order across all of their producers;
// that FCFS consumption is the mechanism that absorbs producer imbalance.
//
// Termination (MPIStream_Terminate): under Block mapping a terminating
// producer notifies its single peer consumer, and operate() returns once
// every routed producer has terminated. RoundRobin and Directed channels
// aggregate instead of broadcasting: each producer sends one term — carrying
// its per-consumer element counts — to the channel's aggregator consumer,
// which fans the collective term (with the summed counts) down a binary tree
// over the consumers. A consumer is exhausted once it has seen its term(s)
// AND processed exactly the announced number of elements, so a collective
// term can never overtake in-flight data.
//
// Liveness contract of the aggregated protocol: the collective term travels
// through consumers, so a consumer that stops servicing the stream (returns
// from operate_while early and never polls again) also stops forwarding the
// term to its tree descendants. Waiting on exhausted()/operate() completion
// therefore requires every consumer of the channel to keep servicing the
// stream; protocols where consumers leave early by design (e.g. the PIC
// close-notification stream) must not wait on exhaustion — exactly as under
// the seed's broadcast, where unread terms were simply abandoned.
//
// Transport coalescing (ChannelConfig::coalesce_budget): elements a producer
// injects at the same virtual instant toward the same consumer are packed
// into one framed fabric message (length-prefixed sub-records) and unpacked
// in place at the consumer — element semantics (per-(context,src) FIFO,
// wildcard matching, count-based termination exhaustion, credit accounting)
// are preserved with counted rather than per-message bookkeeping, while the
// per-message software cost o_s/o_r and the wake/advance context-switch pair
// are paid once per frame. A same-instant backstop event flushes the moment
// the producing fiber yields, so coalescing never delays an element in
// virtual time. See ChannelConfig::flow_autotune for the self-tuning loop.
//
// This is the implementation layer: application code normally uses the
// typed streams of core/decouple.hpp (decouple::TypedStream / RawStream),
// which decode elements and terminate by RAII.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/channel.hpp"
#include "mpi/datatype.hpp"

namespace ds::stream {

/// Producer-side coalescing state (defined in stream.cpp; heap-boxed and
/// shared with the same-instant backstop events so a moved/destroyed Stream
/// never leaves a scheduled flush dangling).
struct CoalesceState;

/// A received stream element, valid only during the operator invocation.
/// `data` is null for synthetic elements (modeled payloads).
struct StreamElement {
  const std::byte* data = nullptr;
  std::size_t bytes = 0;
  int producer = -1;  ///< producer index in the channel
};

/// Consumer-side operator applied on-the-fly to arriving elements.
using Operator = std::function<void(const StreamElement&)>;

class Stream {
 public:
  Stream() = default;

  /// Attach a stream to `channel` (paper's MPIStream_Attach). Local call;
  /// every channel member must attach with the same `stream_id` before
  /// using it. `element_type` fixes the element wire size; `op` is invoked
  /// on consumers only and may be empty elsewhere.
  [[nodiscard]] static Stream attach(const Channel& channel,
                                     const mpi::Datatype& element_type,
                                     Operator op, std::uint64_t stream_id = 0);

  /// Producer: asynchronously inject one element (paper's MPIStream_Isend).
  /// `element.bytes` must not exceed the element type's size. Charges the
  /// per-element overhead and sender overhead; returns without blocking on
  /// delivery. Routed by the channel's mapping policy.
  void isend(mpi::Rank& self, mpi::SendBuf element);

  /// Producer: inject one element addressed to a specific consumer index
  /// (Directed routing; used when elements carry their own destination,
  /// e.g. halo faces addressed to a neighbour's helper). Throws
  /// std::out_of_range when `consumer` is not a valid consumer index.
  void isend_to(mpi::Rank& self, int consumer, mpi::SendBuf element);

  /// Producer: inject a synthetic element of the full element size.
  void isend_synthetic(mpi::Rank& self) {
    isend(self, mpi::SendBuf::synthetic(element_size_));
  }

  /// Producer: flush any coalesced frames still buffered (one per addressed
  /// consumer). Rarely needed by applications — frames flush on their own
  /// when the byte budget or element cap fills, when the producer terminates
  /// or blocks on a credit, and (via a same-instant backstop event) the
  /// moment the producing fiber yields the CPU — but available for protocols
  /// that want an explicit push.
  void flush(mpi::Rank& self);

  /// Producer: signal end-of-stream (paper's MPIStream_Terminate).
  void terminate(mpi::Rank& self);

  /// Consumer: process elements FCFS until every routed producer terminated
  /// (paper's MPIStream_Operate). Returns the number of elements processed.
  std::uint64_t operate(mpi::Rank& self);

  /// Consumer: process arrivals while `keep_going()` returns true and
  /// unterminated producers remain; re-checks `keep_going` after each
  /// element. Returns elements processed. Used by consumers that interleave
  /// other duties.
  std::uint64_t operate_while(mpi::Rank& self, const std::function<bool()>& keep_going);

  /// Consumer: drain pending arrivals without blocking until one *data*
  /// element has been consumed. Terminations encountered on the way are
  /// consumed silently (they are control flow, not elements — matching
  /// operate_while accounting). Returns true iff a data element was consumed.
  bool poll_one(mpi::Rank& self);

  [[nodiscard]] std::size_t element_size() const noexcept { return element_size_; }
  [[nodiscard]] const Channel& channel() const noexcept { return *channel_; }
  [[nodiscard]] std::uint64_t elements_sent() const noexcept { return sent_; }
  /// Termination-protocol messages this rank has sent on this stream:
  /// producer terms plus collective-term fan-out (consumer side).
  [[nodiscard]] std::uint64_t term_messages_sent() const noexcept {
    return term_msgs_sent_;
  }
  /// Flow-control ack messages this consumer has sent (each carries a whole
  /// credit batch, so with ack_interval k this is ~elements/k).
  [[nodiscard]] std::uint64_t ack_messages_sent() const noexcept {
    return ack_msgs_sent_;
  }
  /// Credits this producer has received back (equals elements consumed and
  /// acked, regardless of how they were batched).
  [[nodiscard]] std::uint64_t credits_received() const noexcept {
    return acks_seen_;
  }
  /// Coalesced frame messages this producer has posted (each carrying one
  /// or more elements; oversized elements bypass coalescing and are not
  /// counted here).
  [[nodiscard]] std::uint64_t frames_sent() const noexcept;
  /// Elements that left this producer inside coalesced frames.
  [[nodiscard]] std::uint64_t coalesced_elements_sent() const noexcept;
  /// The producer's current effective coalesce budget in wire bytes (may
  /// differ from ChannelConfig::coalesce_budget under self-tuning); 0 when
  /// coalescing is off or no element has been sent yet.
  [[nodiscard]] std::uint32_t coalesce_budget_now() const noexcept;
  /// The consumer's current effective credit batch (self-tuned toward the
  /// observed frame occupancy when ChannelConfig::flow_autotune is on and
  /// ack_interval is 0).
  [[nodiscard]] std::uint32_t ack_interval_now() const noexcept {
    return ack_every_;
  }
  /// True once the stream's termination protocol has completed for this
  /// consumer: all terms observed and, under tree termination, every
  /// announced element processed.
  [[nodiscard]] bool exhausted() const noexcept {
    if (expected_terms_ < 0 || terms_seen_ < expected_terms_) return false;
    return !counts_known_ || processed_data_ >= expected_data_;
  }

 private:
  /// Wire entry of a termination message: how many data elements are bound
  /// for one consumer. Terms carry only the entries relevant to the
  /// receiver — a producer's touched consumers (up to C each, so O(P*C)
  /// bytes on the aggregation hop in the worst case) and a tree node's
  /// subtree (O(C log C) bytes across the whole fan-out).
  struct TermEntry {
    std::uint64_t consumer = 0;
    std::uint64_t count = 0;
  };

  void ensure_consumer_state(mpi::Rank& self);
  void ensure_producer_state(mpi::Rank& self);
  /// Append one element to the consumer's pending frame, flushing by budget
  /// or element cap first. False when the element is too large to coalesce
  /// (bypasses as a per-element message).
  bool coalesce_element(mpi::Rank& self, int consumer, mpi::SendBuf element);
  /// Fiber-context flush of one consumer's pending frame (post, retune,
  /// charge the deferred per-element + per-message overhead as one advance).
  void flush_frame(mpi::Rank& self, int consumer, std::uint8_t trigger);
  void flush_all_frames(mpi::Rank& self, std::uint8_t trigger);
  /// Unpack state for an arrived frame; consume_frame_element() then hands
  /// elements to the operator one at a time, in place.
  void begin_frame(const mpi::Status& status);
  void consume_frame_element(mpi::Rank& self);
  void account_data_element(mpi::Rank& self, int producer);
  void handle(mpi::Rank& self, const mpi::Status& status);
  void handle_tree_term(mpi::Rank& self, const mpi::Status& status);
  /// Send the collective term on to this consumer's tree children, sliced
  /// to each child's subtree.
  void fan_out_term(mpi::Rank& self, const std::vector<TermEntry>& entries);
  /// Return `producer`'s accumulated credits as one batched ack message.
  void flush_credits(mpi::Rank& self, int producer);
  void flush_all_credits(mpi::Rank& self);
  void await_credit(mpi::Rank& self);

  const Channel* channel_ = nullptr;
  std::uint64_t context_ = 0;      ///< matching context derived per stream
  std::uint64_t ack_context_ = 0;  ///< credit/ack context derived from it
  std::size_t element_size_ = 0;
  Operator operator_;

  // producer state
  std::uint64_t sent_ = 0;
  std::uint64_t acks_seen_ = 0;
  bool terminated_ = false;
  std::vector<std::uint64_t> sent_per_consumer_;  ///< tree termination only
  /// Coalescing state box (null until the first isend, or when coalescing
  /// is disabled). Shared with the backstop events scheduled at each frame
  /// open, so flushes survive Stream moves.
  std::shared_ptr<CoalesceState> coalesce_;

  // consumer state
  int my_consumer_ = -1;
  int expected_terms_ = -1;
  int terms_seen_ = 0;
  std::uint64_t processed_data_ = 0;
  std::uint64_t expected_data_ = 0;
  bool counts_known_ = false;  ///< tree mode: announced counts received
  std::vector<std::uint64_t> count_accum_;  ///< aggregator: per-consumer sums
  std::vector<std::byte> element_buffer_;
  /// Credit batching (flow-controlled streams): per-producer count of
  /// consumed-but-unacked elements, flushed every ack_every_-th element and
  /// whenever a term arrives or the stream exhausts.
  std::vector<std::uint32_t> credit_pending_;
  std::uint32_t ack_every_ = 1;  ///< effective min(ack_interval, window)
  std::uint32_t ack_limit_ = 1;  ///< liveness clamp ceil(window/spread)
  bool ack_auto_ = false;        ///< self-tune ack_every_ to frame occupancy

  /// Partially drained incoming frame: elements left, read cursor into
  /// element_buffer_, and the frame's producer index. poll_one/operate pull
  /// from here before touching the mailbox, so a frame interleaves with
  /// other sources at frame granularity while per-(context,src) order holds.
  std::uint32_t frame_left_ = 0;
  std::uint32_t frame_elements_ = 0;  ///< total elements of the current frame
  std::size_t frame_cursor_ = 0;
  int frame_source_ = -1;

  // termination scratch, reserved once and reused across terms/children so
  // the fan-out does not reallocate per child slice
  std::vector<TermEntry> term_rx_;     ///< decoded incoming term entries
  std::vector<TermEntry> term_tx_;     ///< producer entries / aggregator totals
  std::vector<TermEntry> term_slice_;  ///< per-child subtree slice

  // shared instrumentation
  std::uint64_t term_msgs_sent_ = 0;
  std::uint64_t ack_msgs_sent_ = 0;

  static constexpr int kTagData = 0;
  static constexpr int kTagTerm = 1;
  static constexpr int kTagAck = 2;
  /// A coalesced frame: length-prefixed sub-records of one or more
  /// same-destination elements, unpacked in place at the consumer.
  static constexpr int kTagFrame = 3;
};

}  // namespace ds::stream
