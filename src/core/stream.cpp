#include "core/stream.hpp"

#include <stdexcept>

#include "mpi/machine.hpp"

namespace ds::stream {

Stream Stream::attach(const Channel& channel, const mpi::Datatype& element_type,
                      Operator op, std::uint64_t stream_id) {
  Stream s;
  s.channel_ = &channel;
  s.element_size_ = element_type.size();
  s.operator_ = std::move(op);
  if (channel.valid()) {
    s.context_ = mpi::Machine::derive_context(channel.comm().context(),
                                              0x57BEA4ull, stream_id);
  }
  return s;
}

void Stream::isend(mpi::Rank& self, mpi::SendBuf element) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::isend: caller is not a producer");
  isend_to(self, channel_->route(p, sent_), element);
}

void Stream::isend_to(mpi::Rank& self, int consumer, mpi::SendBuf element) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::isend_to: caller is not a producer");
  if (element.on_wire() > element_size_)
    throw std::invalid_argument("Stream::isend: element larger than its datatype");
  if (terminated_)
    throw std::logic_error("Stream::isend: stream already terminated");
  ++sent_;

  // Per-element library overhead `o` (Eq. 4) plus the transport's own o_s.
  auto& machine = self.machine();
  self.process().advance(channel_->config().inject_overhead);
  self.process().advance(machine.config().network.send_overhead);
  machine.post_send(context_, p, self.world_rank(),
                    channel_->comm().world_rank(channel_->consumer_rank(consumer)),
                    kTagData, element);
}

void Stream::terminate(mpi::Rank& self) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::terminate: caller is not a producer");
  if (terminated_) return;
  terminated_ = true;

  // Tell every consumer this producer can route to.
  auto& machine = self.machine();
  std::vector<bool> notified(static_cast<std::size_t>(channel_->consumer_count()),
                             false);
  auto notify = [&](int consumer) {
    if (notified[static_cast<std::size_t>(consumer)]) return;
    notified[static_cast<std::size_t>(consumer)] = true;
    self.process().advance(machine.config().network.send_overhead);
    machine.post_send(context_, p, self.world_rank(),
                      channel_->comm().world_rank(channel_->consumer_rank(consumer)),
                      kTagTerm, mpi::SendBuf::synthetic(0));
  };
  if (channel_->config().mapping == ChannelConfig::Mapping::Block) {
    notify(channel_->route(p, 0));
  } else {
    for (int c = 0; c < channel_->consumer_count(); ++c) notify(c);
  }
}

void Stream::ensure_consumer_state(mpi::Rank& self) {
  if (my_consumer_ >= 0) return;
  my_consumer_ = channel_->my_consumer_index(self);
  if (my_consumer_ < 0)
    throw std::logic_error("Stream::operate: caller is not a consumer");
  expected_terms_ =
      static_cast<int>(channel_->producers_of(my_consumer_).size());
  element_buffer_.resize(element_size_);
}

void Stream::handle(mpi::Rank& /*self*/, const mpi::Status& status) {
  if (status.tag == kTagTerm) {
    ++terms_seen_;
    return;
  }
  if (operator_) {
    StreamElement el{status.synthetic || element_buffer_.empty()
                         ? nullptr
                         : element_buffer_.data(),
                     status.bytes, status.source};
    operator_(el);
  }
}

std::uint64_t Stream::operate(mpi::Rank& self) {
  return operate_while(self, [] { return true; });
}

std::uint64_t Stream::operate_while(mpi::Rank& self,
                                    const std::function<bool()>& keep_going) {
  ensure_consumer_state(self);
  std::uint64_t processed = 0;
  // First-come-first-served across every producer: whichever element arrives
  // next gets processed, regardless of which peer sent it. Streams use their
  // own derived matching context, so receives post through the machine.
  auto& machine = self.machine();
  while (!exhausted() && keep_going()) {
    auto req = machine.post_recv(
        context_, self.world_rank(), mpi::kAnySource, mpi::kAnyTag,
        element_buffer_.empty()
            ? mpi::RecvBuf::discard(element_size_)
            : mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()});
    self.wait(req);
    handle(self, req->status);
    if (req->status.tag == kTagData) ++processed;
  }
  return processed;
}

bool Stream::poll_one(mpi::Rank& self) {
  ensure_consumer_state(self);
  if (exhausted()) return false;
  auto& machine = self.machine();
  mpi::Status status;
  if (!machine.match_probe(context_, self.world_rank(), mpi::kAnySource,
                           mpi::kAnyTag, &status))
    return false;
  auto req = machine.post_recv(
      context_, self.world_rank(), status.source, status.tag,
      element_buffer_.empty()
          ? mpi::RecvBuf::discard(element_size_)
          : mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()});
  self.wait(req);
  handle(self, req->status);
  return true;
}

}  // namespace ds::stream
