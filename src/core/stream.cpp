#include "core/stream.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/adaptive.hpp"
#include "mpi/machine.hpp"
#include "mpi/rank.hpp"

namespace ds::stream {

namespace {

/// Leads every coalesced frame on the wire.
struct FrameHeader {
  std::uint32_t elements = 0;
  std::uint32_t data_bytes = 0;  ///< real payload bytes following the header
};

/// Length prefix of one sub-record: `wire` is the element's simulated wire
/// size, `data` the real bytes actually carried (0 for synthetic elements,
/// less than `wire` for header-only elements).
struct SubHeader {
  std::uint32_t wire = 0;
  std::uint32_t data = 0;
};

/// Resilient frames carry this directly after the FrameHeader: the flow the
/// frame belongs to (the original consumer index of its sequence space) and
/// the flow sequence of the first packed element. Everything the receiver
/// needs for exactly-once admission, and everything a replayed frame needs
/// to stay self-describing.
struct EpochHeader {
  std::uint64_t seq0 = 0;
  std::uint32_t flow = 0;
  std::uint32_t reserved = 0;
};

/// One durability acknowledgment: every element of `flow` below `upto` has
/// durable effects at the consumer; the producer truncates its replay log.
struct DurableAck {
  std::uint64_t upto = 0;
  std::uint32_t flow = 0;
  std::uint32_t reserved = 0;
};

/// Flow handoff sent at failover, ahead of the replayed frames: the adopted
/// flow's durable point, so the adopter admits exactly the undurable tail
/// even when a retained frame straddles the durability boundary (possible
/// under manual acks, which land at arbitrary consumption points).
struct FlowHandoff {
  std::uint64_t durable = 0;
  std::uint32_t flow = 0;
  std::uint32_t reserved = 0;
};

/// One rebalance-sync record (kTagSync from a consumer): the receiver adopts
/// the dedup cursor — and, under Block mapping, the term-seen flag — for one
/// (producer, flow) pair, while the sender erases its own entry. `next == 0`
/// carries no cursor; it still marks the flow as handed over, which is what
/// adopters blocked in await_rebalance_sync wake on. Producer-sourced
/// kTagSync messages reuse FlowHandoff as a handback marker instead
/// (durable = the flow sequence as of the handback).
struct SyncEntry {
  std::uint64_t producer = 0;
  std::uint64_t flow = 0;
  std::uint64_t next = 0;
  std::uint64_t termed = 0;
};

constexpr std::size_t kFrameOverhead = sizeof(FrameHeader);
constexpr std::size_t kSubOverhead = sizeof(SubHeader);
constexpr std::size_t kEpochOverhead = sizeof(EpochHeader);

}  // namespace

/// Everything the producer-side coalescer needs, heap-boxed once per stream:
/// the backstop events hold a shared_ptr, so a flush scheduled at the
/// current instant still finds live state after the Stream moves (or even
/// dies). post_send is event-context safe, so backstop flushes need no
/// fiber; their CPU charge is carried as debt and settled on the fiber's
/// next flush/terminate.
struct CoalesceState {
  mpi::Machine* machine = nullptr;
  std::uint64_t context = 0;
  int producer_index = -1;
  int src_world = -1;
  int frame_tag = 0;  ///< Stream::kTagFrame (private there; stashed at init)

  std::uint32_t budget = 0;        ///< current effective frame budget (wire)
  std::uint32_t budget_cap = 0;    ///< growth ceiling (kCoalesceGrowthCap x)
  std::uint32_t budget_floor = 0;  ///< shrink floor
  std::uint32_t max_elements = 0;  ///< per-frame element cap
  bool autotune = false;
  FlowController controller;

  util::SimTime inject_overhead = 0;
  util::SimTime send_overhead = 0;
  util::SimTime debt = 0;  ///< CPU owed from event-context flushes

  // Adaptive credit window (flow_autotune && max_inflight > 0): grown on
  // credit stalls, decayed back toward — never below — the configured value.
  std::uint32_t window_cfg = 0;
  std::uint32_t window_cap = 0;
  std::uint32_t window_now = 0;

  // Resilience (ChannelConfig::checkpoint_interval > 0): per-flow sequence
  // spaces, replay logs, and the physical redirect installed by failover.
  // Lives in the shared box so backstop (event-context) flushes retain
  // frames exactly like fiber flushes.
  bool resilient = false;
  std::size_t frame_overhead = kFrameOverhead;  ///< + epoch header if resilient
  std::uint32_t checkpoint_interval = 0;
  struct Flow {
    std::uint64_t seq = 0;  ///< next sequence to assign on this flow
    resilience::ReplayLog log;
  };
  std::vector<Flow> flows;     ///< by flow id (original consumer index)
  std::vector<int> redirect;   ///< physical consumer per flow (identity start)
  std::uint64_t seen_failure_epoch = 0;
  std::uint64_t seen_rejoin_epoch = 0;
  std::uint64_t seen_membership_version = 0;
  /// Last observed incarnation of each flow's *home* rank: a bump while the
  /// redirect still points home means the rank crashed and restarted without
  /// this producer ever noticing — everything sent during the dead window
  /// was dropped at the dead mailbox and must be replayed.
  std::vector<int> flow_incarnation;
  std::uint64_t replayed_elements = 0;
  std::uint32_t failovers = 0;
  std::uint32_t rebalances = 0;  ///< voluntary moves (rejoin/elastic)

  struct Pending {
    std::vector<std::byte> buf;  ///< FrameHeader + sub-records (capacity kept)
    std::uint32_t elements = 0;
    std::uint64_t wire = 0;   ///< frame wire bytes incl. all framing
    std::uint64_t epoch = 0;  ///< bumped per flush; stale backstops no-op
    std::uint64_t seq0 = 0;   ///< resilient: flow seq of the first element
    int dst_world = -1;
  };
  std::vector<Pending> pending;  ///< by flow (== consumer index), lazily sized

  std::uint64_t frames_sent = 0;
  std::uint64_t coalesced_elements = 0;

  /// Post one flow's pending frame (fiber or event context) and reset the
  /// slot. Resilient flows retain the frame bytes for replay before posting.
  /// Returns the frame's wire size for the controller.
  std::uint64_t post_frame(int consumer) {
    Pending& p = pending[static_cast<std::size_t>(consumer)];
    FrameHeader header{p.elements,
                       static_cast<std::uint32_t>(p.buf.size() - kFrameOverhead)};
    std::memcpy(p.buf.data(), &header, sizeof header);
    if (resilient)
      flows[static_cast<std::size_t>(consumer)].log.retain(
          p.seq0, p.elements, p.wire, p.buf.data(), p.buf.size());
    machine->post_send(context, producer_index, src_world, p.dst_world,
                       frame_tag,
                       mpi::SendBuf{p.buf.data(), p.buf.size(), p.wire});
    ++frames_sent;
    coalesced_elements += p.elements;
    const std::uint64_t wire = p.wire;
    ++p.epoch;
    p.buf.clear();  // keeps capacity
    p.elements = 0;
    p.wire = 0;
    return wire;
  }

  /// Retune the budget (and, when flow control is on, the credit window)
  /// after a flush of `elements`/`wire` under `trigger`.
  void retune(FlushTrigger trigger, std::uint32_t elements, std::uint64_t wire) {
    if (!autotune) return;
    const std::uint32_t next =
        controller.observe_flush(trigger, elements, wire, budget);
    budget = std::clamp(next, budget_floor, budget_cap);
    if (window_cfg > 0 && controller.window_rolled())
      window_now = FlowController::retune_window(
          window_now, window_cfg, window_cap,
          controller.last_window_credit_stalled());
  }
};

Stream Stream::attach(const Channel& channel, const mpi::Datatype& element_type,
                      Operator op, std::uint64_t stream_id) {
  Stream s;
  s.channel_ = &channel;
  s.element_size_ = element_type.size();
  s.operator_ = std::move(op);
  if (channel.valid()) {
    s.context_ = mpi::Machine::derive_context(channel.comm().context(),
                                              0x57BEA4ull, stream_id);
    s.ack_context_ = mpi::Machine::derive_context(s.context_, 0xACCull, 1);
    s.durable_context_ = mpi::Machine::derive_context(s.context_, 0xD07ull, 2);
  }
  return s;
}

std::uint64_t Stream::frames_sent() const noexcept {
  return coalesce_ ? coalesce_->frames_sent : 0;
}

std::uint64_t Stream::coalesced_elements_sent() const noexcept {
  return coalesce_ ? coalesce_->coalesced_elements : 0;
}

std::uint32_t Stream::coalesce_budget_now() const noexcept {
  return coalesce_ ? coalesce_->budget : 0;
}

std::uint32_t Stream::max_inflight_now() const noexcept {
  return coalesce_ && coalesce_->window_now > 0
             ? coalesce_->window_now
             : (channel_ != nullptr ? channel_->config().max_inflight : 0);
}

std::uint32_t Stream::window_now() const noexcept { return max_inflight_now(); }

std::uint64_t Stream::replayed_elements() const noexcept {
  return coalesce_ ? coalesce_->replayed_elements : 0;
}

std::uint64_t Stream::retained_elements() const noexcept {
  if (!coalesce_) return 0;
  std::uint64_t total = 0;
  for (const CoalesceState::Flow& f : coalesce_->flows)
    total += f.log.retained_elements();
  return total;
}

std::uint32_t Stream::failovers() const noexcept {
  return coalesce_ ? coalesce_->failovers : 0;
}

std::uint32_t Stream::rebalances() const noexcept {
  return coalesce_ ? coalesce_->rebalances : 0;
}

void Stream::ensure_producer_state(mpi::Rank& self) {
  const ChannelConfig& cfg = channel_->config();
  if (coalesce_ || (cfg.coalesce_budget == 0 && !cfg.resilient())) return;
  auto st = std::make_shared<CoalesceState>();
  st->machine = &self.machine();
  st->context = context_;
  st->producer_index = channel_->my_producer_index(self);
  st->src_world = self.world_rank();
  st->frame_tag = kTagFrame;
  st->resilient = cfg.resilient();
  st->frame_overhead =
      kFrameOverhead + (st->resilient ? kEpochOverhead : 0);
  // Resilience with coalescing off still frames every element (alone): the
  // frame is what carries the flow/sequence stamp and what the replay log
  // retains. A budget of exactly the framing overhead admits one forced
  // element per frame and packs nothing.
  const std::uint32_t base_budget =
      cfg.coalesce_budget > 0
          ? cfg.coalesce_budget
          : static_cast<std::uint32_t>(st->frame_overhead + kSubOverhead);
  st->budget = base_budget;
  st->budget_cap = base_budget * ChannelConfig::kCoalesceGrowthCap;
  st->budget_floor = std::min(base_budget, FlowController::Config{}.min_budget);
  st->max_elements = cfg.coalesce_max_elements == 0
                         ? ChannelConfig::kDefaultCoalesceMaxElements
                         : cfg.coalesce_max_elements;
  st->autotune = cfg.flow_autotune && cfg.coalesce_budget > 0;
  FlowController::Config fc;
  fc.min_budget = st->budget_floor;
  fc.max_budget = st->budget_cap;
  st->controller = FlowController(fc);
  st->inject_overhead = cfg.inject_overhead;
  st->send_overhead = self.machine().config().network.send_overhead;
  st->pending.resize(static_cast<std::size_t>(channel_->consumer_count()));
  if (cfg.max_inflight > 0 && st->autotune) {
    st->window_cfg = cfg.max_inflight;
    st->window_cap = cfg.max_inflight * ChannelConfig::kWindowGrowthCap;
    st->window_now = cfg.max_inflight;
  }
  if (st->resilient) {
    auto& machine = self.machine();
    st->checkpoint_interval = cfg.checkpoint_interval;
    st->flows.resize(static_cast<std::size_t>(channel_->consumer_count()));
    st->redirect.resize(static_cast<std::size_t>(channel_->consumer_count()));
    st->flow_incarnation.resize(st->redirect.size());
    for (std::size_t c = 0; c < st->redirect.size(); ++c) {
      st->redirect[c] = static_cast<int>(c);
      const int w = channel_->comm().world_rank(
          channel_->consumer_rank(static_cast<int>(c)));
      st->flow_incarnation[c] = machine.incarnation(w);
      // Slots already unavailable (crashed before our first send, or
      // inactive from birth — elastic spares) start routed around.
      if (machine.rank_failed(w) ||
          !channel_->consumer_active(static_cast<int>(c))) {
        const int target = resilience::failover_target(
            *channel_, static_cast<int>(c), machine);
        if (target >= 0) st->redirect[c] = target;
      }
    }
    st->seen_failure_epoch = 0;
    st->seen_rejoin_epoch = machine.rejoin_epoch();
    st->seen_membership_version = channel_->membership_version();
  }
  coalesce_ = std::move(st);
}

bool Stream::coalesce_element(mpi::Rank& self, int consumer,
                              mpi::SendBuf element) {
  if (!coalesce_) return false;
  CoalesceState& st = *coalesce_;
  const std::size_t el_wire = element.on_wire();
  // Oversized for even an empty frame: bypass (after ordering-preserving
  // flush of anything already pending toward this consumer, done by caller).
  // Resilient flows never bypass — every element needs its sequence stamp —
  // so an oversized element is force-framed alone (flushed below by the
  // budget check before the next element can join it).
  if (!st.resilient &&
      st.frame_overhead + kSubOverhead + el_wire > st.budget)
    return false;

  auto& p = st.pending[static_cast<std::size_t>(consumer)];
  if (p.elements > 0 &&
      (p.wire + kSubOverhead + el_wire > st.budget ||
       p.elements >= st.max_elements)) {
    flush_frame(self, consumer,
                static_cast<std::uint8_t>(FlushTrigger::Budget));
  }
  if (p.elements == 0) {
    p.buf.resize(st.frame_overhead);  // header(s) written at flush/open
    p.wire = st.frame_overhead;
    if (st.resilient) {
      // The frame belongs to flow `consumer` but travels to the flow's
      // current physical target; the epoch header makes it self-describing
      // for both first delivery and replay.
      auto& flow = st.flows[static_cast<std::size_t>(consumer)];
      p.seq0 = flow.seq;
      p.dst_world = channel_->comm().world_rank(channel_->consumer_rank(
          st.redirect[static_cast<std::size_t>(consumer)]));
      const EpochHeader eh{p.seq0, static_cast<std::uint32_t>(consumer), 0};
      std::memcpy(p.buf.data() + kFrameOverhead, &eh, sizeof eh);
    } else {
      p.dst_world =
          channel_->comm().world_rank(channel_->consumer_rank(consumer));
    }
    // Same-instant backstop: the moment this fiber yields the CPU (advance,
    // wait, return), the engine runs this event at the *current* virtual
    // time and flushes whatever the burst left behind — coalescing merges
    // only same-instant sends and never delays an element in virtual time.
    self.machine().engine().schedule(
        self.machine().engine().now(),
        [st = coalesce_, consumer, epoch = p.epoch] {
          auto& slot = st->pending[static_cast<std::size_t>(consumer)];
          if (slot.epoch != epoch || slot.elements == 0) return;
          // Event context: no fiber to charge — carry the CPU cost as debt,
          // settled on the producer's next fiber-side flush.
          st->debt += st->inject_overhead * slot.elements + st->send_overhead;
          const std::uint32_t n = slot.elements;
          const std::uint64_t wire = st->post_frame(consumer);
          st->retune(FlushTrigger::Idle, n, wire);
        });
  }
  const SubHeader sub{static_cast<std::uint32_t>(el_wire),
                      static_cast<std::uint32_t>(element.bytes)};
  const std::size_t at = p.buf.size();
  p.buf.resize(at + kSubOverhead + element.bytes);
  std::memcpy(p.buf.data() + at, &sub, sizeof sub);
  if (element.bytes > 0)
    std::memcpy(p.buf.data() + at + kSubOverhead, element.ptr, element.bytes);
  p.wire += kSubOverhead + el_wire;
  ++p.elements;
  if (st.resilient) {
    auto& flow = st.flows[static_cast<std::size_t>(consumer)];
    ++flow.seq;
    // Epoch cut: frames never straddle checkpoint boundaries, so durability
    // acknowledgments (which arrive at epoch granularity) always truncate
    // whole frames from the replay log.
    if (flow.seq % st.checkpoint_interval == 0)
      flush_frame(self, consumer,
                  static_cast<std::uint8_t>(FlushTrigger::Epoch));
  }
  return true;
}

void Stream::flush_frame(mpi::Rank& self, int consumer, std::uint8_t trigger) {
  CoalesceState& st = *coalesce_;
  auto& p = st.pending[static_cast<std::size_t>(consumer)];
  if (p.elements == 0) return;
  // One aggregate advance per frame replaces the per-element wake/advance
  // pair: n injections' worth of `o` plus one per-message o_s, plus any
  // debt left by event-context (backstop) flushes.
  const util::SimTime charge =
      st.debt + st.inject_overhead * p.elements + st.send_overhead;
  st.debt = 0;
  const std::uint32_t n = p.elements;
  const std::uint64_t wire = st.post_frame(consumer);
  st.retune(static_cast<FlushTrigger>(trigger), n, wire);
  self.process().advance(charge);
}

void Stream::flush_all_frames(mpi::Rank& self, std::uint8_t trigger) {
  if (!coalesce_) return;
  for (std::size_t c = 0; c < coalesce_->pending.size(); ++c)
    flush_frame(self, static_cast<int>(c), trigger);
}

void Stream::flush(mpi::Rank& self) {
  if (channel_->my_producer_index(self) < 0)
    throw std::logic_error("Stream::flush: caller is not a producer");
  flush_all_frames(self,
                   static_cast<std::uint8_t>(FlushTrigger::Explicit));
}

void Stream::isend(mpi::Rank& self, mpi::SendBuf element) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::isend: caller is not a producer");
  isend_to(self, channel_->route(p, sent_), element);
}

void Stream::isend_to(mpi::Rank& self, int consumer, mpi::SendBuf element) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::isend_to: caller is not a producer");
  if (consumer < 0 || consumer >= channel_->consumer_count())
    throw std::out_of_range("Stream::isend_to: consumer index out of range");
  if (element.on_wire() > element_size_)
    throw std::invalid_argument("Stream::isend: element larger than its datatype");
  if (terminated_)
    throw std::logic_error("Stream::isend: stream already terminated");
  ensure_producer_state(self);

  if (coalesce_ && coalesce_->resilient) {
    // Truncate replay logs with any durability progress first (smaller
    // replays), then react to crashes, rejoins, and membership changes
    // observed since the last send.
    drain_durable_acks(self);
    check_producer_failover(self);
    check_producer_rebalance(self);
  }

  // Credit-based backpressure: block until the in-flight window has room —
  // flushing first, since buffered elements count against the window and
  // only delivered elements can come back as credits. (Failover can return
  // a handful of duplicate credits, so the outstanding count is computed
  // underflow-safe.)
  const std::uint32_t window = window_now();
  if (window > 0 && sent_ > acks_seen_ && sent_ - acks_seen_ >= window) {
    flush_all_frames(self, static_cast<std::uint8_t>(FlushTrigger::Credit));
    while (sent_ > acks_seen_ && sent_ - acks_seen_ >= window)
      await_credit(self);
  }

  ++sent_;
  // Per-consumer tallies feed the v1 aggregated term; resilient tree
  // channels derive their counted terms from the per-flow sequence spaces
  // instead (counts stay logical — the exhaustion matrix is per flow, not
  // per physical destination).
  if (channel_->tree_termination() && !(coalesce_ && coalesce_->resilient)) {
    if (sent_per_consumer_.empty())
      sent_per_consumer_.assign(
          static_cast<std::size_t>(channel_->consumer_count()), 0);
    ++sent_per_consumer_[static_cast<std::size_t>(consumer)];
  }

  if (coalesce_element(self, consumer, element)) return;

  // Per-element path (coalescing off, or the element exceeds any frame):
  // the per-element library overhead `o` (Eq. 4) plus the transport's own
  // o_s, charged as one advance. An oversized element must not overtake a
  // frame already pending toward the same consumer.
  if (coalesce_)
    flush_frame(self, consumer,
                static_cast<std::uint8_t>(FlushTrigger::Budget));
  auto& machine = self.machine();
  self.process().advance(channel_->config().inject_overhead +
                         machine.config().network.send_overhead);
  machine.post_send(context_, p, self.world_rank(),
                    channel_->comm().world_rank(channel_->consumer_rank(consumer)),
                    kTagData, element);
}

void Stream::terminate(mpi::Rank& self) {
  terminate_impl(self);
  // Reached only on clean completion: a crashed producer's counters are
  // lost with it, like everything else about a fail-stop rank.
  flush_producer_metrics(self);
}

void Stream::terminate_impl(mpi::Rank& self) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::terminate: caller is not a producer");
  if (terminated_) return;
  if (self.failed()) {
    // A crashed rank's RAII termination must not emit protocol traffic.
    terminated_ = true;
    return;
  }
  // A producer that never sent still needs its resilience state here: its
  // term must route to the failover target, not to a dead consumer.
  ensure_producer_state(self);
  const bool resilient = coalesce_ && coalesce_->resilient;
  if (resilient) {
    // Repair routing before the counts go out. Under tree termination the
    // release-barrier wait below keeps servicing these until the whole
    // channel is done, so later crashes/rejoins stay recoverable; under
    // Block the durability wait below does the same for automatic
    // durability, while manual durability gets its last chance here
    // (terminate then returns immediately).
    drain_durable_acks(self);
    check_producer_failover(self);
    check_producer_rebalance(self);
  }
  terminated_ = true;
  // Partial frames leave before the term so counts and order stay intact;
  // settle any backstop debt even when nothing is pending.
  flush_all_frames(self, static_cast<std::uint8_t>(FlushTrigger::Term));
  if (coalesce_ && coalesce_->debt > 0) {
    self.process().advance(coalesce_->debt);
    coalesce_->debt = 0;
  }

  auto& machine = self.machine();
  auto post_term = [&](int consumer, mpi::SendBuf payload) {
    self.process().advance(machine.config().network.send_overhead);
    machine.post_send(context_, p, self.world_rank(),
                      channel_->comm().world_rank(channel_->consumer_rank(consumer)),
                      kTagTerm, payload);
    ++term_msgs_sent_;
  };
  if (!channel_->tree_termination()) {
    // Block mapping: this producer routes to exactly one consumer — after a
    // failover, to the consumer that adopted its flow (which repaired its
    // expected term count when it adopted).
    const int peer = channel_->route(p, 0);
    int owner = resilient
                    ? coalesce_->redirect[static_cast<std::size_t>(peer)]
                    : peer;
    post_term(owner, mpi::SendBuf::synthetic(0));
    if (!resilient) return;
    // Manual durability keeps the fire-and-forget term: the app owns the
    // ack schedule, and a consumer that never acks is *defined* as having
    // no durable effects — blocking here on acks that may never come would
    // deadlock that contract. Apps that need durability-certified
    // termination use a tree mapping with a registered durable point (see
    // set_durable_point), whose release barrier provides exactly that.
    if (channel_->config().manual_durability) return;
    // A resilient producer must not retire its replay log while anything it
    // sent is still undurable: once this fiber exits, a consumer crash
    // loses the undurable tail for good, and a consumer that crashes and
    // *rejoins* can never re-learn this producer's term. Block until every
    // retained frame is acknowledged durable, servicing failover and
    // rebalance meanwhile, and re-point the term whenever the flow's
    // ownership moves (the consumer side counts terms idempotently, so
    // re-sends are harmless).
    while (true) {
      drain_durable_acks(self);
      check_producer_failover(self);
      check_producer_rebalance(self);
      const int now_owner =
          coalesce_->redirect[static_cast<std::size_t>(peer)];
      if (now_owner != owner) {
        owner = now_owner;
        post_term(owner, mpi::SendBuf::synthetic(0));
      }
      bool pending = false;
      for (const auto& flow : coalesce_->flows)
        if (flow.log.frame_count() > 0) {
          pending = true;
          break;
        }
      if (!pending) break;
      if (resilience::effective_aggregator(*channel_, machine) < 0)
        break;  // every consumer is gone — the tail is fail-stop loss
      machine.add_probe_waiter(self.world_rank(), self.process().id());
      machine.add_failure_waiter(self.process().id());
      self.process().set_state_note(blocked_note("stream durability wait"));
      self.process().suspend();
      machine.ensure_alive(self.world_rank());
      self.process().set_state_note({});
    }
    return;
  }
  if (!resilient) {
    // Aggregated termination (v1): one term to the aggregator consumer,
    // carrying this producer's per-consumer element counts (nonzero entries
    // only) so consumers can account for data still in flight.
    term_tx_.clear();
    term_tx_.reserve(sent_per_consumer_.size());
    for (std::size_t c = 0; c < sent_per_consumer_.size(); ++c)
      if (sent_per_consumer_[c] > 0)
        term_tx_.push_back(TermEntry{c, sent_per_consumer_[c]});
    post_term(Channel::term_aggregator(),
              mpi::SendBuf::of(term_tx_.data(), term_tx_.size()));
    return;
  }

  // Resilient tree termination: a *counted term* — this producer's final
  // per-flow sequence (one entry per flow it touched) — goes to the
  // effective aggregator, and the producer then blocks until the channel's
  // release barrier commits. Blocking here is what makes the protocol
  // crash-proof: the counts stay resendable when the aggregator role moves,
  // and the replay logs stay alive until every consumer has confirmed the
  // full count matrix.
  term_tx_.clear();
  term_tx_.reserve(coalesce_->flows.size());
  for (std::size_t c = 0; c < coalesce_->flows.size(); ++c)
    if (coalesce_->flows[c].seq > 0)
      term_tx_.push_back(TermEntry{c, coalesce_->flows[c].seq});
  int aggregator = resilience::effective_aggregator(*channel_, machine);
  if (aggregator < 0)
    throw std::runtime_error(
        "Stream::terminate: every consumer of the resilient channel is "
        "unavailable");
  post_term(aggregator, mpi::SendBuf::of(term_tx_.data(), term_tx_.size()));
  while (true) {
    // Service the stream while blocked: durability acks keep replay logs
    // bounded, failover/rebalance keep the counted term's recipient (and
    // any replays) correct across membership changes.
    drain_durable_acks(self);
    check_producer_failover(self);
    check_producer_rebalance(self);
    const int now_agg = resilience::effective_aggregator(*channel_, machine);
    if (now_agg < 0)
      throw std::runtime_error(
          "Stream::terminate: every consumer of the resilient channel is "
          "unavailable");
    if (now_agg != aggregator) {
      // The role moved (old aggregator crashed, or an earlier slot
      // rejoined): re-send the counted term there. Rows are recorded
      // idempotently, so duplicates are harmless.
      aggregator = now_agg;
      post_term(aggregator, mpi::SendBuf::of(term_tx_.data(), term_tx_.size()));
    }
    mpi::Status st;
    if (machine.match_probe(durable_context_, self.world_rank(),
                            mpi::kAnySource, kTagRelease, &st)) {
      auto req = machine.post_recv(durable_context_, self.world_rank(),
                                   st.source, kTagRelease,
                                   mpi::RecvBuf::discard(sizeof(std::uint64_t)));
      self.wait(req);
      break;
    }
    machine.add_probe_waiter(self.world_rank(), self.process().id());
    machine.add_failure_waiter(self.process().id());
    self.process().set_state_note(blocked_note("stream release wait"));
    self.process().suspend();
    machine.ensure_alive(self.world_rank());
  }
  self.process().set_state_note({});
}

const char* Stream::blocked_note(const char* what) {
  // Termination-progress snapshot for the engine's deadlock report. The
  // note pointer must outlive the suspension, so it renders into the
  // stream's own buffer.
  std::snprintf(state_note_buf_, sizeof state_note_buf_,
                "blocked in %s (ctx=%llu consumer=%d terms=%d/%d counts=%d "
                "matrix=%d release=%d/%d announced=%d data=%llu/%llu)",
                what, static_cast<unsigned long long>(context_), my_consumer_,
                terms_seen_, expected_terms_, counts_known_ ? 1 : 0,
                matrix_satisfied_ ? 1 : 0, release_seen_ ? 1 : 0,
                release_done_ ? 1 : 0, announced_ ? 1 : 0,
                static_cast<unsigned long long>(processed_data_),
                static_cast<unsigned long long>(expected_data_));
  return state_note_buf_;
}

void Stream::ensure_consumer_state(mpi::Rank& self) {
  if (my_consumer_ >= 0) return;
  my_consumer_ = channel_->my_consumer_index(self);
  if (my_consumer_ < 0)
    throw std::logic_error("Stream::operate: caller is not a consumer");
  expected_terms_ = channel_->expected_term_count(my_consumer_);
  const ChannelConfig& cfg = channel_->config();
  resilient_ = cfg.resilient();
  manual_durability_ = cfg.manual_durability;
  checkpoint_interval_ = cfg.checkpoint_interval;
  // Tree-mode terms carry up to one count entry per consumer; coalesced
  // frames carry up to the (possibly self-tuned) budget. Size the receive
  // buffer for the largest of those, the bare element, or a single-element
  // frame — the growth factor applies only when self-tuning can actually
  // grow the producer's budget. Resilient frames carry the epoch header on
  // top, and arrive even with coalescing off (forced single-element frames).
  const std::size_t frame_overhead =
      kFrameOverhead + (resilient_ ? kEpochOverhead : 0);
  std::size_t capacity = element_size_;
  if (cfg.coalesce_budget > 0 || resilient_) {
    const std::size_t growth =
        cfg.flow_autotune && cfg.coalesce_budget > 0
            ? ChannelConfig::kCoalesceGrowthCap
            : 1;
    capacity = std::max(capacity + frame_overhead + kSubOverhead,
                        static_cast<std::size_t>(cfg.coalesce_budget) * growth);
  }
  if (channel_->tree_termination()) {
    const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
    capacity = std::max(capacity, consumers * sizeof(TermEntry));
    term_rx_.reserve(consumers);
    term_tx_.reserve(consumers);
    term_slice_.reserve(consumers);
  }
  if (resilient_) {
    const auto producers = static_cast<std::size_t>(channel_->producer_count());
    const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
    // Rebalance syncs carry up to one entry per producer; tree-mode
    // announces carry the whole P x C count matrix.
    capacity = std::max(capacity, producers * sizeof(SyncEntry));
    if (channel_->tree_termination())
      capacity =
          std::max(capacity, producers * consumers * sizeof(std::uint64_t));
    term_from_.assign(producers, 0);
    producer_excluded_.assign(producers, 0);
    adopted_.assign(consumers, 0);
    synced_slot_.assign(consumers, 0);
    slot_active_seen_.resize(consumers);
    for (std::size_t c = 0; c < consumers; ++c)
      slot_active_seen_[c] =
          channel_->consumer_active(static_cast<int>(c)) ? 1 : 0;
    // A rejoined rank (or a consumer attaching after crashes/retires) must
    // derive the *current* aggregator, not assume slot 0.
    effective_aggregator_ =
        resilience::effective_aggregator(*channel_, self.machine());
    if (channel_->tree_termination()) {
      tree_v2_ = true;
      matrix_.assign(producers * consumers, 0);
      announce_acked_.assign(consumers, 0);
    }
  }
  element_buffer_.resize(capacity);
  if (cfg.max_inflight > 0) {
    // Effective credit batch, clamped for liveness: a blocked producer has
    // max_inflight un-acked elements spread over the consumers it routes to
    // (1 under Block, up to C under RoundRobin/Directed), so by pigeonhole
    // some consumer holds >= ceil(window/spread) of them. Keeping the batch
    // at or below that bound guarantees consumers can never jointly hold a
    // whole window in sub-threshold batches (spread*(k-1) < window), i.e. a
    // blocked producer always gets a flush; the stream tail is covered by
    // the term/exhaustion flushes in handle().
    ack_every_ = cfg.ack_interval == 0 ? ChannelConfig::kDefaultAckInterval
                                       : cfg.ack_interval;
    const auto spread = channel_->tree_termination()
                            ? static_cast<std::uint32_t>(
                                  channel_->consumer_count())
                            : 1u;
    ack_limit_ = std::max(1u, (cfg.max_inflight + spread - 1) / spread);
    ack_every_ = std::max(1u, std::min(ack_every_, ack_limit_));
    // Self-tuning acks: track the observed frame occupancy (one ack per
    // drained frame) within the liveness clamp. Only when the interval was
    // left at the library default — an explicit ack_interval stays pinned.
    ack_auto_ =
        cfg.flow_autotune && cfg.ack_interval == 0 && cfg.coalesce_budget > 0;
    credit_pending_.assign(static_cast<std::size_t>(channel_->producer_count()),
                           0);
  }
}

void Stream::fan_out_term(mpi::Rank& self,
                          const std::vector<TermEntry>& entries) {
  // Every child gets a collective term; its payload is sliced down to the
  // counts of the child's own subtree. The slice scratch is a reserved
  // member, reused across children instead of reallocating per slice.
  for (const int child : channel_->term_children(my_consumer_))
    fan_out_to(self, child, entries);
}

void Stream::fan_out_to(mpi::Rank& self, int child,
                        const std::vector<TermEntry>& entries) {
  auto& machine = self.machine();
  if (resilient_ &&
      machine.rank_failed(
          channel_->comm().world_rank(channel_->consumer_rank(child)))) {
    // Route around a crashed interior consumer: its subtrees still need the
    // collective term, delivered straight to the grandchildren.
    for (const int grandchild : channel_->term_children(child))
      fan_out_to(self, grandchild, entries);
    return;
  }
  term_slice_.clear();
  for (const TermEntry& e : entries)
    if (channel_->term_in_subtree_of(static_cast<int>(e.consumer), child))
      term_slice_.push_back(e);
  self.process().advance(machine.config().network.send_overhead);
  machine.post_send(context_, channel_->consumer_rank(my_consumer_),
                    self.world_rank(),
                    channel_->comm().world_rank(channel_->consumer_rank(child)),
                    kTagTerm,
                    mpi::SendBuf::of(term_slice_.data(), term_slice_.size()));
  ++term_msgs_sent_;
}

void Stream::handle_tree_term(mpi::Rank& self, const mpi::Status& status) {
  const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
  const std::size_t n = std::min(status.bytes / sizeof(TermEntry), consumers);
  term_rx_.resize(n);
  if (n > 0)
    std::memcpy(term_rx_.data(), element_buffer_.data(), n * sizeof(TermEntry));
  ++terms_seen_;
  if (my_consumer_ == effective_aggregator_) {
    // Producer term: accumulate; once every producer reported, the summed
    // totals are final — announce them down the tree.
    if (count_accum_.empty()) count_accum_.assign(consumers, 0);
    for (const TermEntry& e : term_rx_)
      if (e.consumer < consumers) count_accum_[e.consumer] += e.count;
    if (terms_seen_ >= expected_terms_) {
      expected_data_ = count_accum_[static_cast<std::size_t>(my_consumer_)];
      counts_known_ = true;
      term_tx_.clear();
      for (std::size_t c = 0; c < consumers; ++c)
        if (count_accum_[c] > 0) term_tx_.push_back(TermEntry{c, count_accum_[c]});
      fan_out_term(self, term_tx_);
    }
    return;
  }
  // Collective term from the tree parent (a consumer sees exactly one):
  // adopt my announced count and keep the fan-out going.
  expected_data_ = 0;
  for (const TermEntry& e : term_rx_)
    if (e.consumer == static_cast<std::uint64_t>(my_consumer_))
      expected_data_ = e.count;
  counts_known_ = true;
  fan_out_term(self, term_rx_);
}

void Stream::flush_credits(mpi::Rank& self, int producer) {
  std::uint64_t count = credit_pending_[static_cast<std::size_t>(producer)];
  if (count == 0) return;
  credit_pending_[static_cast<std::size_t>(producer)] = 0;
  auto& machine = self.machine();
  self.process().advance(machine.config().network.send_overhead);
  // One ack message carries the whole batch; the producer adds its count to
  // the window. post_send copies the payload out, so the stack local is safe.
  machine.post_send(ack_context_, my_consumer_, self.world_rank(),
                    channel_->comm().world_rank(Channel::producer_rank(producer)),
                    kTagAck, mpi::SendBuf::of(&count, 1));
  ++ack_msgs_sent_;
}

void Stream::flush_all_credits(mpi::Rank& self) {
  for (std::size_t p = 0; p < credit_pending_.size(); ++p)
    flush_credits(self, static_cast<int>(p));
}

void Stream::await_credit(mpi::Rank& self) {
  const sim::SpanScope span(self.process(), obs::SpanKind::SendBlocked,
                            "credit-wait");
  std::uint64_t granted = 0;
  auto req = self.machine().post_recv(ack_context_, self.world_rank(),
                                      mpi::kAnySource, kTagAck,
                                      mpi::RecvBuf::of(&granted, 1), {},
                                      /*fused_wake=*/true);
  if (coalesce_ && coalesce_->resilient) {
    // A credit may never come if the consumer holding it just crashed: wait
    // interruptibly, re-evaluating failover on every crash notification.
    // Rebinding replays the lost elements to the adopting consumer, whose
    // consumption then produces the acks this loop is blocked on.
    auto& machine = self.machine();
    while (!req->complete) {
      req->waiter_pid = self.process().id();
      machine.add_failure_waiter(self.process().id());
      self.process().set_state_note("blocked in stream credit wait");
      self.process().suspend();
      machine.ensure_alive(self.world_rank());
      check_producer_failover(self);
      check_producer_rebalance(self);
    }
    req->waiter_pid = -1;
    self.process().set_state_note({});
  }
  self.wait(req);
  // Each ack carries the batch size it returns; malformed/synthetic acks
  // conservatively count one credit.
  acks_seen_ += (!req->status.synthetic && req->status.bytes >= sizeof granted &&
                 granted > 0)
                    ? granted
                    : 1;
}

// ---------------------------------------------------------------------------
// Resilience (ds::resilience): failover, replay, durability. Everything in
// this block is inert unless ChannelConfig::checkpoint_interval > 0.
// ---------------------------------------------------------------------------

bool Stream::check_producer_failover(mpi::Rank& self) {
  CoalesceState& st = *coalesce_;
  auto& machine = self.machine();
  if (st.seen_failure_epoch == machine.failure_epoch()) return false;
  st.seen_failure_epoch = machine.failure_epoch();

  bool any = false;
  const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
  for (std::size_t flow = 0; flow < consumers; ++flow) {
    const int phys = st.redirect[flow];
    if (!machine.rank_failed(
            channel_->comm().world_rank(channel_->consumer_rank(phys))))
      continue;
    const int target =
        resilience::failover_target(*channel_, phys, machine);
    if (target < 0)
      throw std::runtime_error(
          "stream failover: every consumer of the resilient channel is dead");
    any = true;
    ++st.failovers;
    st.redirect[flow] = target;

    auto& p = st.pending[flow];
    // A frame still being packed follows the flow to its new target.
    const int dst_world =
        channel_->comm().world_rank(channel_->consumer_rank(target));
    if (p.elements > 0) p.dst_world = dst_world;
    // A rebind back home (the dead adopter's failover target can be the
    // flow's own rejoined slot) counts as reconciliation with the current
    // incarnation — the replay below is the resynchronization.
    if (target == static_cast<int>(flow))
      st.flow_incarnation[flow] = machine.incarnation(dst_world);
    replay_flow(self, flow, dst_world);
  }
  if (any) self.process().trace_instant("failover");
  return any;
}

void Stream::replay_flow(mpi::Rank& self, std::size_t flow, int dst_world) {
  const sim::SpanScope span(self.process(), obs::SpanKind::StreamReplay,
                            "replay");
  CoalesceState& st = *coalesce_;
  auto& machine = self.machine();
  auto& fl = st.flows[flow];
  // Hand the flow over: the durable point travels ahead of the replayed
  // frames (per-source FIFO), so the receiver's cursor skips whatever the
  // previous owner already made durable — even mid-frame.
  if (fl.log.durable_seq() > 0) {
    self.process().trace_instant("handoff");
    const FlowHandoff handoff{fl.log.durable_seq(),
                              static_cast<std::uint32_t>(flow), 0};
    self.process().advance(st.send_overhead);
    machine.post_send(context_, st.producer_index, st.src_world, dst_world,
                      kTagHandoff, mpi::SendBuf::of(&handoff, 1));
  }
  // Replay: re-post the retained frames verbatim (they are self-describing:
  // flow id and sequences travel in the epoch header).
  for (const resilience::RetainedFrame& rf : fl.log.frames()) {
    self.process().advance(st.send_overhead);
    machine.post_send(context_, st.producer_index, st.src_world, dst_world,
                      kTagFrame,
                      mpi::SendBuf{rf.buf.data(), rf.buf.size(), rf.wire});
    st.replayed_elements += rf.elements;
  }
}

bool Stream::check_producer_rebalance(mpi::Rank& self) {
  CoalesceState& st = *coalesce_;
  auto& machine = self.machine();
  const std::uint64_t re = machine.rejoin_epoch();
  const std::uint64_t mv = channel_->membership_version();
  if (st.seen_rejoin_epoch == re && st.seen_membership_version == mv)
    return false;
  st.seen_rejoin_epoch = re;
  st.seen_membership_version = mv;

  bool any = false;
  const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
  for (std::size_t flow = 0; flow < consumers; ++flow) {
    const int home_world = channel_->comm().world_rank(
        channel_->consumer_rank(static_cast<int>(flow)));
    const bool home_dead = machine.rank_failed(home_world);
    const bool home_ok =
        !home_dead && channel_->consumer_active(static_cast<int>(flow));
    auto& fl = st.flows[flow];
    auto& p = st.pending[flow];
    if (st.redirect[flow] != static_cast<int>(flow)) {
      if (!home_ok) continue;  // still away; adopter crashes are failover's job
      // Hand the flow back to its rejoined / re-admitted home slot. New
      // elements go home; the previous owner gets a handback marker telling
      // it to ship its cursor to the home slot (per-source FIFO puts the
      // marker after every element it received from us). Only flows this
      // producer actually uses need a marker — under Block that includes
      // the zero-send routed flow, whose term accounting moves with it.
      const int prev = st.redirect[flow];
      st.redirect[flow] = static_cast<int>(flow);
      st.flow_incarnation[flow] = machine.incarnation(home_world);
      if (p.elements > 0) p.dst_world = home_world;
      if (fl.seq > 0 ||
          (!channel_->tree_termination() &&
           channel_->route(st.producer_index, 0) == static_cast<int>(flow))) {
        const FlowHandoff marker{fl.seq, static_cast<std::uint32_t>(flow), 0};
        self.process().advance(st.send_overhead);
        machine.post_send(
            context_, st.producer_index, st.src_world,
            channel_->comm().world_rank(channel_->consumer_rank(prev)),
            kTagSync, mpi::SendBuf::of(&marker, 1));
        ++st.rebalances;
        any = true;
      }
      continue;
    }
    if (!home_ok) {
      if (home_dead) continue;  // a crash: check_producer_failover's job
      // The home slot retired while we were routing to it: move the flow to
      // its failover target. The retiree's own cursor sync establishes the
      // target's starting point; the handoff + replay only covers elements
      // the retiree never processed (anything it did process is at or below
      // the synced cursor and gets dropped as a duplicate).
      const int target = resilience::failover_target(
          *channel_, static_cast<int>(flow), machine);
      if (target < 0)
        throw std::runtime_error(
            "stream rebalance: no consumer of the resilient channel is "
            "available");
      st.redirect[flow] = target;
      const int dst_world =
          channel_->comm().world_rank(channel_->consumer_rank(target));
      if (p.elements > 0) p.dst_world = dst_world;
      replay_flow(self, flow, dst_world);
      ++st.rebalances;
      any = true;
      continue;
    }
    const int inc = machine.incarnation(home_world);
    if (inc != st.flow_incarnation[flow]) {
      // Crash + restart that this producer never observed while it was
      // away from the stream: frames sent during the dead window were
      // dropped at the dead mailbox. Resynchronize the new incarnation —
      // durable point first, then the whole undurable tail.
      st.flow_incarnation[flow] = inc;
      replay_flow(self, flow, home_world);
      ++st.rebalances;
      any = true;
    }
  }
  if (any) self.process().trace_instant("rejoin-rebalance");
  return any;
}

void Stream::check_consumer_failover(mpi::Rank& self) {
  auto& machine = self.machine();
  const std::uint64_t fe = machine.failure_epoch();
  const std::uint64_t re = machine.rejoin_epoch();
  const std::uint64_t mv = channel_->membership_version();
  if (consumer_failure_epoch_ == fe && consumer_rejoin_epoch_ == re &&
      consumer_membership_version_ == mv)
    return;
  consumer_failure_epoch_ = fe;
  consumer_rejoin_epoch_ = re;
  consumer_membership_version_ = mv;

  const int consumers = channel_->consumer_count();
  for (int c = 0; c < consumers; ++c) {
    const auto cz = static_cast<std::size_t>(c);
    const bool dead = machine.rank_failed(
        channel_->comm().world_rank(channel_->consumer_rank(c)));
    const bool active = channel_->consumer_active(c);
    const bool was_active = slot_active_seen_[cz] != 0;
    slot_active_seen_[cz] = active ? 1 : 0;
    if (c == my_consumer_ || adopted_[cz] != 0) continue;
    if (!dead && active) continue;
    if (resilience::failover_target(*channel_, c, machine) != my_consumer_)
      continue;
    adopted_[cz] = 1;
    // A freshly owned slot may have unmet announced counts: re-derive the
    // matrix verdict from scratch.
    matrix_satisfied_ = false;
    // Block mapping counts terms per routed producer: adopting a consumer's
    // flows means its producers' terms now arrive here.
    if (!channel_->tree_termination())
      expected_terms_ +=
          static_cast<int>(channel_->producers_of(c).size());
    // Adoption by *retire* (the slot's rank is alive — it deactivated
    // voluntarily): block for the retiree's cursor sync before touching any
    // replayed data of the flow. The retiree already processed the
    // undurable elements the producers are about to replay here; admitting
    // them before the cursor arrives would double-process them.
    if (!dead && was_active) await_rebalance_sync(self, c);
  }
  // A producer that crashed without terminating leaves a hole in the Block
  // term count; its undurable tail is unrecoverable (fail-stop), so the
  // expectation is dropped rather than waited on. Tree mode handles this in
  // the aggregator's completion rule and the matrix waiver instead.
  if (!channel_->tree_termination()) {
    for (int s = 0; s < consumers; ++s) {
      if (s != my_consumer_ && adopted_[static_cast<std::size_t>(s)] == 0)
        continue;
      for (const int p : channel_->producers_of(s)) {
        const auto pz = static_cast<std::size_t>(p);
        if (term_from_[pz] != 0 || producer_excluded_[pz] != 0) continue;
        if (!machine.rank_failed(
                channel_->comm().world_rank(Channel::producer_rank(p))))
          continue;
        producer_excluded_[pz] = 1;
        --expected_terms_;
      }
    }
  }
  if (channel_->tree_termination()) {
    const int aggregator =
        resilience::effective_aggregator(*channel_, machine);
    if (aggregator >= 0 && aggregator != effective_aggregator_) {
      effective_aggregator_ = aggregator;
      if (my_consumer_ == aggregator) {
        // Taking over the role mid-protocol: collect announce-acks afresh.
        // The release invariant guarantees soundness — either no producer
        // was released yet (they are still blocked and re-send their
        // counted terms here) or every live consumer, this one included,
        // already holds the matrix from the old aggregator's announce.
        announced_ = false;
        std::fill(announce_acked_.begin(), announce_acked_.end(), 0);
      }
    }
    if (counts_known_) update_matrix_exhaustion(self);
  }
}

void Stream::update_matrix_exhaustion(mpi::Rank& self) {
  if (!tree_v2_ || !counts_known_ || matrix_satisfied_) return;
  auto& machine = self.machine();
  const int producers = channel_->producer_count();
  const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
  for (std::size_t s = 0; s < consumers; ++s) {
    if (static_cast<int>(s) != my_consumer_ && adopted_[s] == 0) continue;
    for (int p = 0; p < producers; ++p) {
      const std::uint64_t want =
          matrix_[static_cast<std::size_t>(p) * consumers + s];
      if (want == 0 || dedup_.next_seq(p, static_cast<int>(s)) >= want)
        continue;
      // A dead producer's missing tail is unrecoverable (fail-stop): only
      // its durable/delivered prefix counts, so the shortfall is waived.
      if (machine.rank_failed(
              channel_->comm().world_rank(Channel::producer_rank(p))))
        continue;
      return;  // a live producer's announced elements are still in flight
    }
  }
  matrix_satisfied_ = true;
}

void Stream::maybe_ack_announce(mpi::Rank& self) {
  if (!announce_ack_pending_ || !counts_known_ || !matrix_satisfied_) return;
  // Everything this consumer owes the matrix has been consumed: run the
  // flush hook so it is also durable, then commit to the barrier. The hook
  // may suspend the fiber (file I/O); if an adoption lands meanwhile the
  // matrix verdict is re-derived and the ack stays owed — the aggregator's
  // membership-keyed re-announce re-collects the barrier anyway.
  durable_point_();
  if (!matrix_satisfied_) return;
  auto& machine = self.machine();
  self.process().advance(machine.config().network.send_overhead);
  machine.post_send(context_, channel_->consumer_rank(my_consumer_),
                    self.world_rank(), announce_ack_to_, kTagAnnounceAck,
                    mpi::SendBuf::synthetic(0));
  ++term_msgs_sent_;
  announce_ack_pending_ = false;
}

void Stream::progress_termination(mpi::Rank& self) {
  if (!tree_v2_ || retired_ || release_done_ || release_seen_) return;
  if (my_consumer_ != effective_aggregator_) return;
  auto& machine = self.machine();
  const int producers = channel_->producer_count();
  const int consumers = channel_->consumer_count();
  const auto consumers_z = static_cast<std::size_t>(consumers);
  if (!counts_known_) {
    for (int p = 0; p < producers; ++p) {
      if (term_from_[static_cast<std::size_t>(p)] != 0) continue;
      if (!machine.rank_failed(
              channel_->comm().world_rank(Channel::producer_rank(p))))
        return;  // a live producer has not terminated yet
      // Dead without reporting: its counts are excluded — the matrix row
      // stays zero and nobody waits for its lost tail.
    }
    counts_known_ = true;
    expected_data_ = 0;
    for (int p = 0; p < producers; ++p)
      expected_data_ += matrix_[static_cast<std::size_t>(p) * consumers_z +
                                static_cast<std::size_t>(my_consumer_)];
    update_matrix_exhaustion(self);
  }
  auto alive_active = [&](int c) {
    return !machine.rank_failed(
               channel_->comm().world_rank(channel_->consumer_rank(c))) &&
           channel_->consumer_active(c);
  };
  // (Re-)announce the matrix. Membership changes reset the send decision so
  // a consumer that rejoined (fresh state, never acked) is covered; sends
  // are idempotent and ack-gated, so this stays bounded by membership
  // events, not poll iterations.
  const std::uint64_t fe = machine.failure_epoch();
  const std::uint64_t re = machine.rejoin_epoch();
  if (!announced_ || fe != announce_failure_epoch_ ||
      re != announce_rejoin_epoch_) {
    // Membership moved since the last announce: an adoption may have routed
    // replayed (undurable) elements to a consumer that already acked, so
    // the barrier is collected afresh — with durability-gated acks each
    // consumer then re-certifies its flush state before re-acking.
    if (announced_)
      std::fill(announce_acked_.begin(), announce_acked_.end(), 0);
    announced_ = true;
    announce_failure_epoch_ = fe;
    announce_rejoin_epoch_ = re;
    announce_acked_[static_cast<std::size_t>(my_consumer_)] = 1;
    for (int c = 0; c < consumers; ++c) {
      if (c == my_consumer_ ||
          announce_acked_[static_cast<std::size_t>(c)] != 0 ||
          !alive_active(c))
        continue;
      self.process().advance(machine.config().network.send_overhead);
      machine.post_send(
          context_, channel_->consumer_rank(my_consumer_), self.world_rank(),
          channel_->comm().world_rank(channel_->consumer_rank(c)),
          kTagAnnounce, mpi::SendBuf::of(matrix_.data(), matrix_.size()));
      ++term_msgs_sent_;
    }
  }
  for (int c = 0; c < consumers; ++c)
    if (c != my_consumer_ && alive_active(c) &&
        announce_acked_[static_cast<std::size_t>(c)] == 0)
      return;  // barrier still collecting
  if (manual_durability_ && durable_point_) {
    // The aggregator certifies its own durability last: everything it owes
    // the matrix must be consumed and flushed before the release commits —
    // the release is what tells producers to retire their replay logs. The
    // hook may suspend (file I/O); if membership moved under the flush the
    // barrier is stale, so bail and let the next poll re-collect it.
    if (!matrix_satisfied_) return;
    durable_point_();
    if (!matrix_satisfied_ ||
        machine.failure_epoch() != announce_failure_epoch_ ||
        machine.rejoin_epoch() != announce_rejoin_epoch_)
      return;
  }
  // Commit the release in one atomic fiber step (post_send never yields;
  // the overhead is charged once after the burst): either nobody was
  // released or everybody was, so a crash of this aggregator can never
  // strand a half-released channel — the property the new-aggregator
  // takeover in check_consumer_failover relies on.
  int releases = 0;
  for (int p = 0; p < producers; ++p) {
    const int w = channel_->comm().world_rank(Channel::producer_rank(p));
    if (machine.rank_failed(w)) continue;
    machine.post_send(durable_context_, channel_->consumer_rank(my_consumer_),
                      self.world_rank(), w, kTagRelease,
                      mpi::SendBuf::synthetic(0));
    ++releases;
  }
  for (int c = 0; c < consumers; ++c) {
    if (c == my_consumer_ || !alive_active(c)) continue;
    machine.post_send(context_, channel_->consumer_rank(my_consumer_),
                      self.world_rank(),
                      channel_->comm().world_rank(channel_->consumer_rank(c)),
                      kTagRelease, mpi::SendBuf::synthetic(0));
    ++releases;
  }
  release_done_ = true;
  term_msgs_sent_ += static_cast<std::uint64_t>(releases);
  if (releases > 0)
    self.process().advance(machine.config().network.send_overhead *
                           static_cast<unsigned>(releases));
}

void Stream::handle_counted_term(mpi::Rank& self, const mpi::Status& status) {
  const int p = status.source;
  if (status.synthetic || p < 0 || p >= channel_->producer_count()) return;
  const auto pz = static_cast<std::size_t>(p);
  const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
  const std::size_t n = std::min(status.bytes / sizeof(TermEntry), consumers);
  term_rx_.resize(n);
  if (n > 0)
    std::memcpy(term_rx_.data(), element_buffer_.data(), n * sizeof(TermEntry));
  // Idempotent row write: a producer re-sends its counted term every time
  // the aggregator role moves, and rows simply overwrite in place.
  for (std::size_t c = 0; c < consumers; ++c) matrix_[pz * consumers + c] = 0;
  for (const TermEntry& e : term_rx_)
    if (e.consumer < consumers) matrix_[pz * consumers + e.consumer] = e.count;
  if (term_from_[pz] == 0) {
    term_from_[pz] = 1;
    ++terms_seen_;
  }
  (void)self;
}

void Stream::handle_sync(mpi::Rank& self, const mpi::Status& status) {
  if (!resilient_ || status.synthetic) return;
  const int producers = channel_->producer_count();
  if (status.source >= 0 && status.source < producers) {
    // Handback marker from a producer: its flow returned to the home slot.
    // Ship this producer's cursor for the flow to the home slot (the marker
    // is FIFO-after every element the producer sent here, so the cursor is
    // final) and erase the local entry — the dedup filter's memory bound
    // under churn.
    if (status.bytes < sizeof(FlowHandoff)) return;
    FlowHandoff marker;
    std::memcpy(&marker, element_buffer_.data(), sizeof marker);
    const int flow = static_cast<int>(marker.flow);
    if (flow < 0 || flow >= channel_->consumer_count() ||
        flow == my_consumer_)
      return;
    send_rebalance_sync(self, flow, flow, status.source);
    if (adopted_[static_cast<std::size_t>(flow)] != 0) {
      adopted_[static_cast<std::size_t>(flow)] = 0;
      synced_slot_[static_cast<std::size_t>(flow)] = 0;
    }
    // Block mapping: this producer's term now routes to the home slot
    // again — drop the expectation raised at adoption (unless its term
    // already landed here and was counted).
    if (!channel_->tree_termination() &&
        channel_->route(status.source, 0) == flow &&
        term_from_[static_cast<std::size_t>(status.source)] == 0)
      --expected_terms_;
    return;
  }
  // Cursor sync from another consumer (a retiree handing over its slots, or
  // an adopter answering a handback marker): adopt the carried cursors.
  const std::size_t n = status.bytes / sizeof(SyncEntry);
  for (std::size_t i = 0; i < n; ++i) {
    SyncEntry e;
    std::memcpy(&e, element_buffer_.data() + i * sizeof(SyncEntry), sizeof e);
    const int p = static_cast<int>(e.producer);
    const int flow = static_cast<int>(e.flow);
    if (p < 0 || p >= producers || flow < 0 ||
        flow >= channel_->consumer_count())
      continue;
    synced_slot_[static_cast<std::size_t>(flow)] = 1;
    if (e.next > 0) dedup_.advance_to(p, flow, e.next);
    if (!channel_->tree_termination() && e.termed != 0 &&
        term_from_[static_cast<std::size_t>(p)] == 0) {
      // The previous owner consumed this producer's term on our behalf.
      term_from_[static_cast<std::size_t>(p)] = 1;
      ++terms_seen_;
    }
  }
  if (tree_v2_ && counts_known_) update_matrix_exhaustion(self);
}

void Stream::send_rebalance_sync(mpi::Rank& self, int target, int flow,
                                 int only_producer) {
  auto& machine = self.machine();
  const int producers = channel_->producer_count();
  std::vector<SyncEntry> entries;
  for (int p = 0; p < producers; ++p) {
    if (only_producer >= 0 && p != only_producer) continue;
    const std::uint64_t next = dedup_.next_seq(p, flow);
    const bool termed = !channel_->tree_termination() &&
                        term_from_[static_cast<std::size_t>(p)] != 0 &&
                        channel_->route(p, 0) == flow;
    dedup_.erase(p, flow);
    durable_acked_.erase(resilience::DedupFilter::key(p, flow));
    if (next == 0 && !termed) continue;
    entries.push_back(SyncEntry{static_cast<std::uint64_t>(p),
                                static_cast<std::uint64_t>(flow), next,
                                termed ? 1u : 0u});
  }
  // A retiring consumer's sync must arrive even when it carries nothing —
  // the adopter blocks on it; a bare entry marks the handover.
  if (entries.empty()) {
    if (only_producer >= 0) return;  // marker replies may stay silent
    entries.push_back(SyncEntry{0, static_cast<std::uint64_t>(flow), 0, 0});
  }
  self.process().advance(machine.config().network.send_overhead);
  machine.post_send(context_, channel_->consumer_rank(my_consumer_),
                    self.world_rank(),
                    channel_->comm().world_rank(channel_->consumer_rank(target)),
                    kTagSync,
                    mpi::SendBuf::of(entries.data(), entries.size()));
}

void Stream::await_rebalance_sync(mpi::Rank& self, int retiree_flow) {
  auto& machine = self.machine();
  const int src = channel_->consumer_rank(retiree_flow);
  while (synced_slot_[static_cast<std::size_t>(retiree_flow)] == 0) {
    auto req = machine.post_recv(
        context_, self.world_rank(), src, kTagSync,
        mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()}, {},
        /*fused_wake=*/true);
    self.wait(req);
    handle_sync(self, req->status);
  }
}

void Stream::retire(mpi::Rank& self) {
  if (channel_ == nullptr || !channel_->config().resilient())
    throw std::logic_error(
        "Stream::retire: elastic membership needs a resilient channel");
  ensure_consumer_state(self);
  if (retired_) return;
  auto& machine = self.machine();
  // Everything consumed so far becomes the successor's starting point; under
  // manual durability, retiring asserts the application made it durable.
  flush_durable_acks(self);
  // Deactivate first: the failover targets computed below then match what
  // producers compute when they observe the version bump. (Throws for the
  // effective aggregator — it must keep servicing the protocol.)
  channel_->retire_consumer(self, my_consumer_);
  slot_active_seen_[static_cast<std::size_t>(my_consumer_)] = 0;
  const int consumers = channel_->consumer_count();
  for (int s = 0; s < consumers; ++s) {
    const auto sz = static_cast<std::size_t>(s);
    if (s != my_consumer_ && adopted_[sz] == 0) continue;
    const int target = resilience::failover_target(*channel_, s, machine);
    if (target >= 0 && target != my_consumer_)
      send_rebalance_sync(self, target, s);
    adopted_[sz] = 0;
  }
  if (tree_v2_) {
    // Courtesy ack so the aggregator's release barrier stops waiting on us
    // (recomputed post-deactivation, so it can never be this slot).
    const int agg = resilience::effective_aggregator(*channel_, machine);
    if (agg >= 0 && agg != my_consumer_) {
      self.process().advance(machine.config().network.send_overhead);
      machine.post_send(
          context_, channel_->consumer_rank(my_consumer_), self.world_rank(),
          channel_->comm().world_rank(channel_->consumer_rank(agg)),
          kTagAnnounceAck, mpi::SendBuf::synthetic(0));
      ++term_msgs_sent_;
    }
  }
  if (!credit_pending_.empty()) flush_all_credits(self);
  retired_ = true;
  self.process().trace_instant("retire");
  flush_consumer_metrics(self);
}

void Stream::drain_durable_acks(mpi::Rank& self) {
  auto& machine = self.machine();
  mpi::Status st;
  while (machine.match_probe(durable_context_, self.world_rank(),
                             mpi::kAnySource, kTagDurable, &st)) {
    DurableAck ack;
    auto req = machine.post_recv(durable_context_, self.world_rank(),
                                 st.source, kTagDurable,
                                 mpi::RecvBuf::of(&ack, 1));
    self.wait(req);  // completes synchronously after a successful probe
    if (!req->status.synthetic && req->status.bytes >= sizeof ack &&
        ack.flow < coalesce_->flows.size())
      coalesce_->flows[ack.flow].log.truncate(ack.upto);
  }
}

void Stream::send_durable_ack(mpi::Rank& self, int producer, int flow,
                              std::uint64_t upto) {
  auto& acked = durable_acked_[resilience::DedupFilter::key(producer, flow)];
  if (upto <= acked) return;
  acked = upto;
  auto& machine = self.machine();
  const DurableAck ack{upto, static_cast<std::uint32_t>(flow), 0};
  self.process().advance(machine.config().network.send_overhead);
  machine.post_send(durable_context_, my_consumer_, self.world_rank(),
                    channel_->comm().world_rank(Channel::producer_rank(producer)),
                    kTagDurable, mpi::SendBuf::of(&ack, 1));
  ++durable_acks_sent_;
}

void Stream::flush_durable_acks(mpi::Rank& self) {
  dedup_.for_each([&](int producer, int flow, std::uint64_t next) {
    send_durable_ack(self, producer, flow, next);
  });
}

void Stream::ack_durable(mpi::Rank& self) {
  if (channel_ == nullptr || !channel_->config().resilient()) return;
  ensure_consumer_state(self);
  flush_durable_acks(self);
}

void Stream::account_data_element(mpi::Rank& self, int producer) {
  // Batched credit return: ack every ack_every_-th consumed element per
  // producer; stragglers flush on terms and at exhaustion.
  if (credit_pending_.empty()) return;
  auto& pending = credit_pending_[static_cast<std::size_t>(producer)];
  if (++pending >= ack_every_) flush_credits(self, producer);
  if (exhausted()) flush_all_credits(self);
}

void Stream::begin_frame(const mpi::Status& status) {
  FrameHeader header;
  std::memcpy(&header, element_buffer_.data(), sizeof header);
  frame_left_ = header.elements;
  frame_elements_ = header.elements;
  frame_cursor_ = kFrameOverhead;
  frame_source_ = status.source;
  if (resilient_) {
    EpochHeader eh;
    std::memcpy(&eh, element_buffer_.data() + kFrameOverhead, sizeof eh);
    frame_seq0_ = eh.seq0;
    frame_flow_ = static_cast<int>(eh.flow);
    frame_cursor_ += kEpochOverhead;
  }
}

bool Stream::consume_frame_element(mpi::Rank& self) {
  SubHeader sub;
  std::memcpy(&sub, element_buffer_.data() + frame_cursor_, sizeof sub);
  const std::size_t data_at = frame_cursor_ + kSubOverhead;
  // The element is consumed once unpacked — cursor and counts move before
  // the operator runs, so a throwing operator leaves the frame walkable
  // (matching the per-message path, where the message left the mailbox
  // before the operator saw it).
  const std::uint64_t seq = frame_seq0_ + (frame_elements_ - frame_left_);
  frame_cursor_ += kSubOverhead + sub.data;
  --frame_left_;
  // Exactly-once admission: a replayed element the filter has already seen
  // is unpacked but never reaches the operator, the processed count, or the
  // credit accounting — from every accounting angle it never arrived.
  const bool admit =
      !resilient_ || dedup_.admit(frame_source_, frame_flow_, seq);
  if (admit) {
    ++processed_data_;
    if (operator_) {
      StreamElement el{sub.data > 0 ? element_buffer_.data() + data_at
                                    : nullptr,
                       sub.wire, frame_source_};
      operator_(el);
    }
    if (tree_v2_ && counts_known_ && !matrix_satisfied_)
      update_matrix_exhaustion(self);
    account_data_element(self, frame_source_);
    if (resilient_) {
      if (!manual_durability_ && (seq + 1) % checkpoint_interval_ == 0)
        send_durable_ack(self, frame_source_, frame_flow_, seq + 1);
      if (!manual_durability_ && exhausted()) flush_durable_acks(self);
    }
  }
  if (frame_left_ == 0 && ack_auto_) {
    // Close the loop with the producer's coalescer: one credit batch per
    // drained frame, bounded by the liveness clamp.
    ack_every_ = FlowController::retune_ack_interval(
        ack_every_, frame_elements_, ChannelConfig::kDefaultAckInterval,
        ack_limit_);
  }
  return admit;
}

void Stream::handle(mpi::Rank& self, const mpi::Status& status) {
  if (status.tag == kTagTerm) {
    if (tree_v2_)
      handle_counted_term(self, status);
    else if (channel_->tree_termination())
      handle_tree_term(self, status);
    else if (resilient_ && status.source >= 0 &&
             status.source < channel_->producer_count()) {
      // Terms are idempotent under churn: a producer re-points its term
      // whenever its flow changes owners, so the same producer's term can
      // reach a consumer more than once (directly, or via a handback
      // cursor sync that already credited it). Count each producer once.
      auto& from = term_from_[static_cast<std::size_t>(status.source)];
      if (from == 0) {
        from = 1;
        ++terms_seen_;
      }
    } else {
      ++terms_seen_;
    }
    // A term means a producer (or the whole tree) has gone quiet: return
    // every credit still held back so no producer tail blocks on a partial
    // batch.
    if (!credit_pending_.empty()) flush_all_credits(self);
    return;
  }
  if (status.tag == kTagHandoff) {
    // Control flow, not an element: adopt the flow's durable point.
    if (resilient_ && !status.synthetic &&
        status.bytes >= sizeof(FlowHandoff) && !element_buffer_.empty()) {
      FlowHandoff handoff;
      std::memcpy(&handoff, element_buffer_.data(), sizeof handoff);
      dedup_.advance_to(status.source, static_cast<int>(handoff.flow),
                        handoff.durable);
      if (tree_v2_ && counts_known_) update_matrix_exhaustion(self);
    }
    return;
  }
  if (status.tag == kTagAnnounce) {
    if (tree_v2_ && !status.synthetic &&
        status.bytes >= matrix_.size() * sizeof(std::uint64_t)) {
      std::memcpy(matrix_.data(), element_buffer_.data(),
                  matrix_.size() * sizeof(std::uint64_t));
      counts_known_ = true;
      const auto consumers = static_cast<std::size_t>(
          channel_->consumer_count());
      expected_data_ = 0;
      for (int p = 0; p < channel_->producer_count(); ++p)
        expected_data_ += matrix_[static_cast<std::size_t>(p) * consumers +
                                  static_cast<std::size_t>(my_consumer_)];
      update_matrix_exhaustion(self);
      // Ack to whoever announced (the role may move under us; the reply
      // address, not the derived aggregator, is what keeps the barrier
      // consistent across takeovers). Announces are idempotent — re-ack
      // every copy. With a registered durable point the ack is deferred:
      // it must certify that everything this consumer owes the matrix is
      // consumed *and* flushed durable, so maybe_ack_announce sends it
      // after the hook runs.
      if (manual_durability_ && durable_point_) {
        announce_ack_pending_ = true;
        announce_ack_to_ = channel_->comm().world_rank(status.source);
      } else {
        auto& machine = self.machine();
        self.process().advance(machine.config().network.send_overhead);
        machine.post_send(context_, channel_->consumer_rank(my_consumer_),
                          self.world_rank(),
                          channel_->comm().world_rank(status.source),
                          kTagAnnounceAck, mpi::SendBuf::synthetic(0));
        ++term_msgs_sent_;
      }
    }
    return;
  }
  if (status.tag == kTagAnnounceAck) {
    const int c = status.source - channel_->producer_count();
    if (tree_v2_ && c >= 0 && c < channel_->consumer_count())
      announce_acked_[static_cast<std::size_t>(c)] = 1;
    return;
  }
  if (status.tag == kTagRelease) {
    if (tree_v2_) release_seen_ = true;
    return;
  }
  if (status.tag == kTagSync) {
    handle_sync(self, status);
    return;
  }
  ++processed_data_;
  if (operator_) {
    StreamElement el{status.synthetic || element_buffer_.empty()
                         ? nullptr
                         : element_buffer_.data(),
                     status.bytes, status.source};
    operator_(el);
  }
  account_data_element(self, status.source);
}

std::uint64_t Stream::operate(mpi::Rank& self) {
  return operate_while(self, [] { return true; });
}

std::uint64_t Stream::operate_while(mpi::Rank& self,
                                    const std::function<bool()>& keep_going) {
  ensure_consumer_state(self);
  const sim::SpanScope span(self.process(), obs::SpanKind::StreamOperate,
                            "stream-operate");
  const std::uint64_t processed = operate_loop(self, keep_going);
  if (exhausted()) flush_consumer_metrics(self);
  return processed;
}

std::uint64_t Stream::operate_loop(mpi::Rank& self,
                                   const std::function<bool()>& keep_going) {
  std::uint64_t processed = 0;
  // First-come-first-served across every producer: whichever element arrives
  // next gets processed, regardless of which peer sent it. A partially
  // drained frame is consumed to completion before the mailbox is touched
  // again (frames preserve per-(context,src) order; arrival interleaving
  // across sources happens at frame granularity).
  auto& machine = self.machine();
  if (!resilient_) {
    while (true) {
      if (exhausted() || !keep_going()) break;
      if (frame_left_ > 0) {
        if (consume_frame_element(self)) ++processed;
        continue;
      }
      auto req = machine.post_recv(
          context_, self.world_rank(), mpi::kAnySource, mpi::kAnyTag,
          element_buffer_.empty()
              ? mpi::RecvBuf::discard(element_size_)
              : mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()},
          {}, /*fused_wake=*/true);
      self.wait(req);
      if (req->status.tag == kTagFrame) {
        // One aggregate recv-overhead advance was fused into this wake-up;
        // the frame's elements now drain with no further machine traffic.
        begin_frame(req->status);
        continue;
      }
      handle(self, req->status);
      if (req->status.tag == kTagData) ++processed;
    }
    return processed;
  }
  // Resilient loop: never park in a plain blocking receive — a crash,
  // rejoin, or elastic membership change may be exactly what unblocks
  // termination (adoption raising the expected term count, a takeover of
  // the aggregator role, a flow handed back). Idle waits therefore sleep on
  // probe + failure waiters, waking on the next arrival *or* membership
  // event, and every iteration re-reacts before re-judging exhaustion.
  while (true) {
    check_consumer_failover(self);
    if (tree_v2_) {
      progress_termination(self);
      maybe_ack_announce(self);
    }
    if (exhausted() || !keep_going()) {
      // Producers block in their termination protocol until their replay
      // logs are acknowledged durable. Auto-durability acks normally flow
      // from the data path, but when a *term* (or a membership event) is
      // what flips exhaustion, nothing after it would ack — flush here so
      // the producers' durability wait always terminates.
      if (!manual_durability_) flush_durable_acks(self);
      break;
    }
    if (frame_left_ > 0) {
      if (consume_frame_element(self)) ++processed;
      continue;
    }
    mpi::Status status;
    if (!machine.match_probe(context_, self.world_rank(), mpi::kAnySource,
                             mpi::kAnyTag, &status)) {
      machine.add_probe_waiter(self.world_rank(), self.process().id());
      machine.add_failure_waiter(self.process().id());
      self.process().set_state_note(blocked_note("stream poll"));
      self.process().suspend();
      machine.ensure_alive(self.world_rank());
      self.process().set_state_note({});
      continue;
    }
    // After a successful probe the receive completes synchronously inside
    // post_recv, so wait() never blocks and charges o_r on the spot.
    auto req = machine.post_recv(
        context_, self.world_rank(), status.source, status.tag,
        element_buffer_.empty()
            ? mpi::RecvBuf::discard(element_size_)
            : mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()});
    self.wait(req);
    if (req->status.tag == kTagFrame) {
      begin_frame(req->status);
      continue;
    }
    handle(self, req->status);
    if (req->status.tag == kTagData) ++processed;
  }
  return processed;
}

bool Stream::poll_one(mpi::Rank& self) {
  ensure_consumer_state(self);
  auto& machine = self.machine();
  // Terminations are control flow, not elements: consume them silently and
  // keep looking, so the return value counts data elements only (matching
  // operate_while accounting). Replay duplicates are likewise absorbed.
  while (true) {
    if (resilient_) {
      check_consumer_failover(self);
      if (tree_v2_) {
        progress_termination(self);
        maybe_ack_announce(self);
      }
    }
    if (exhausted()) break;
    if (frame_left_ > 0) {
      if (consume_frame_element(self)) return true;
      continue;
    }
    mpi::Status status;
    if (!machine.match_probe(context_, self.world_rank(), mpi::kAnySource,
                             mpi::kAnyTag, &status))
      return false;
    // No fused wake here: after a successful probe the receive completes
    // synchronously inside post_recv, so wait() never blocks and charges
    // o_r on the spot.
    auto req = machine.post_recv(
        context_, self.world_rank(), status.source, status.tag,
        element_buffer_.empty()
            ? mpi::RecvBuf::discard(element_size_)
            : mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()});
    self.wait(req);
    if (req->status.tag == kTagFrame) {
      begin_frame(req->status);
      continue;
    }
    handle(self, req->status);
    if (req->status.tag == kTagData) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Metrics lifecycle flush (ds::obs). Counters accumulate across the rank's
// streams, so a rank using several channels reports its per-role totals.
// ---------------------------------------------------------------------------

void Stream::flush_term_metrics(mpi::Rank& self) {
  // Terms are sent by both roles (producer terminate, consumer tree
  // fan-out), so a dual-role rank would double-report a plain total: flush
  // the delta since the last flush instead.
  auto* m = self.machine().metrics();
  if (m == nullptr) return;
  m->counter("stream.term_messages", self.world_rank())
      .add(term_msgs_sent_ - term_msgs_flushed_);
  term_msgs_flushed_ = term_msgs_sent_;
}

void Stream::flush_producer_metrics(mpi::Rank& self) {
  auto* m = self.machine().metrics();
  if (m == nullptr || producer_metrics_flushed_) return;
  producer_metrics_flushed_ = true;
  const int r = self.world_rank();
  m->counter("stream.elements_sent", r).add(sent_);
  m->counter("stream.frames_sent", r).add(frames_sent());
  m->counter("stream.coalesced_elements", r).add(coalesced_elements_sent());
  m->counter("stream.credits_received", r).add(acks_seen_);
  m->counter("stream.replayed_elements", r).add(replayed_elements());
  m->counter("stream.failovers", r).add(failovers());
  m->counter("stream.rebalances", r).add(rebalances());
  m->counter("stream.retained_elements", r).add(retained_elements());
  flush_term_metrics(self);
}

void Stream::flush_consumer_metrics(mpi::Rank& self) {
  auto* m = self.machine().metrics();
  if (m == nullptr || consumer_metrics_flushed_) return;
  consumer_metrics_flushed_ = true;
  const int r = self.world_rank();
  m->counter("stream.elements_consumed", r).add(processed_data_);
  m->counter("stream.ack_messages", r).add(ack_msgs_sent_);
  m->counter("stream.duplicates_dropped", r).add(duplicates_dropped());
  m->counter("stream.dedup_entries", r).add(dedup_entries());
  m->counter("stream.durable_acks", r).add(durable_acks_sent_);
  flush_term_metrics(self);
}

}  // namespace ds::stream
