#include "core/stream.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpi/machine.hpp"

namespace ds::stream {

Stream Stream::attach(const Channel& channel, const mpi::Datatype& element_type,
                      Operator op, std::uint64_t stream_id) {
  Stream s;
  s.channel_ = &channel;
  s.element_size_ = element_type.size();
  s.operator_ = std::move(op);
  if (channel.valid()) {
    s.context_ = mpi::Machine::derive_context(channel.comm().context(),
                                              0x57BEA4ull, stream_id);
    s.ack_context_ = mpi::Machine::derive_context(s.context_, 0xACCull, 1);
  }
  return s;
}

void Stream::isend(mpi::Rank& self, mpi::SendBuf element) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::isend: caller is not a producer");
  isend_to(self, channel_->route(p, sent_), element);
}

void Stream::isend_to(mpi::Rank& self, int consumer, mpi::SendBuf element) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::isend_to: caller is not a producer");
  if (consumer < 0 || consumer >= channel_->consumer_count())
    throw std::out_of_range("Stream::isend_to: consumer index out of range");
  if (element.on_wire() > element_size_)
    throw std::invalid_argument("Stream::isend: element larger than its datatype");
  if (terminated_)
    throw std::logic_error("Stream::isend: stream already terminated");

  // Credit-based backpressure: block until the in-flight window has room.
  const std::uint32_t window = channel_->config().max_inflight;
  if (window > 0)
    while (sent_ - acks_seen_ >= window) await_credit(self);

  ++sent_;
  if (channel_->tree_termination()) {
    if (sent_per_consumer_.empty())
      sent_per_consumer_.assign(
          static_cast<std::size_t>(channel_->consumer_count()), 0);
    ++sent_per_consumer_[static_cast<std::size_t>(consumer)];
  }

  // Per-element library overhead `o` (Eq. 4) plus the transport's own o_s,
  // charged as one advance: both occupy this fiber back to back, and every
  // advance costs a scheduled wake plus two context switches on the host.
  auto& machine = self.machine();
  self.process().advance(channel_->config().inject_overhead +
                         machine.config().network.send_overhead);
  machine.post_send(context_, p, self.world_rank(),
                    channel_->comm().world_rank(channel_->consumer_rank(consumer)),
                    kTagData, element);
}

void Stream::terminate(mpi::Rank& self) {
  const int p = channel_->my_producer_index(self);
  if (p < 0) throw std::logic_error("Stream::terminate: caller is not a producer");
  if (terminated_) return;
  terminated_ = true;

  auto& machine = self.machine();
  auto post_term = [&](int consumer, mpi::SendBuf payload) {
    self.process().advance(machine.config().network.send_overhead);
    machine.post_send(context_, p, self.world_rank(),
                      channel_->comm().world_rank(channel_->consumer_rank(consumer)),
                      kTagTerm, payload);
    ++term_msgs_sent_;
  };
  if (!channel_->tree_termination()) {
    // Block mapping: this producer routes to exactly one consumer.
    post_term(channel_->route(p, 0), mpi::SendBuf::synthetic(0));
    return;
  }
  // Aggregated termination: one term to the aggregator consumer, carrying
  // this producer's per-consumer element counts (nonzero entries only) so
  // consumers can account for data still in flight.
  term_tx_.clear();
  term_tx_.reserve(sent_per_consumer_.size());
  for (std::size_t c = 0; c < sent_per_consumer_.size(); ++c)
    if (sent_per_consumer_[c] > 0)
      term_tx_.push_back(TermEntry{c, sent_per_consumer_[c]});
  post_term(Channel::term_aggregator(),
            mpi::SendBuf::of(term_tx_.data(), term_tx_.size()));
}

void Stream::ensure_consumer_state(mpi::Rank& self) {
  if (my_consumer_ >= 0) return;
  my_consumer_ = channel_->my_consumer_index(self);
  if (my_consumer_ < 0)
    throw std::logic_error("Stream::operate: caller is not a consumer");
  expected_terms_ = channel_->expected_term_count(my_consumer_);
  // Tree-mode terms carry up to one count entry per consumer; size the
  // receive buffer for whichever is larger, the element or that worst case.
  std::size_t capacity = element_size_;
  if (channel_->tree_termination()) {
    const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
    capacity = std::max(capacity, consumers * sizeof(TermEntry));
    term_rx_.reserve(consumers);
    term_tx_.reserve(consumers);
    term_slice_.reserve(consumers);
  }
  element_buffer_.resize(capacity);
  const ChannelConfig& cfg = channel_->config();
  if (cfg.max_inflight > 0) {
    // Effective credit batch, clamped for liveness: a blocked producer has
    // max_inflight un-acked elements spread over the consumers it routes to
    // (1 under Block, up to C under RoundRobin/Directed), so by pigeonhole
    // some consumer holds >= ceil(window/spread) of them. Keeping the batch
    // at or below that bound guarantees consumers can never jointly hold a
    // whole window in sub-threshold batches (spread*(k-1) < window), i.e. a
    // blocked producer always gets a flush; the stream tail is covered by
    // the term/exhaustion flushes in handle().
    ack_every_ = cfg.ack_interval == 0 ? ChannelConfig::kDefaultAckInterval
                                       : cfg.ack_interval;
    const auto spread = channel_->tree_termination()
                            ? static_cast<std::uint32_t>(
                                  channel_->consumer_count())
                            : 1u;
    const std::uint32_t limit =
        std::max(1u, (cfg.max_inflight + spread - 1) / spread);
    ack_every_ = std::max(1u, std::min(ack_every_, limit));
    credit_pending_.assign(static_cast<std::size_t>(channel_->producer_count()),
                           0);
  }
}

void Stream::fan_out_term(mpi::Rank& self,
                          const std::vector<TermEntry>& entries) {
  // Every child gets a collective term; its payload is sliced down to the
  // counts of the child's own subtree. The slice scratch is a reserved
  // member, reused across children instead of reallocating per slice.
  auto& machine = self.machine();
  for (const int child : channel_->term_children(my_consumer_)) {
    term_slice_.clear();
    for (const TermEntry& e : entries)
      if (Channel::term_in_subtree(static_cast<int>(e.consumer), child))
        term_slice_.push_back(e);
    self.process().advance(machine.config().network.send_overhead);
    machine.post_send(context_, channel_->consumer_rank(my_consumer_),
                      self.world_rank(),
                      channel_->comm().world_rank(channel_->consumer_rank(child)),
                      kTagTerm,
                      mpi::SendBuf::of(term_slice_.data(), term_slice_.size()));
    ++term_msgs_sent_;
  }
}

void Stream::handle_tree_term(mpi::Rank& self, const mpi::Status& status) {
  const auto consumers = static_cast<std::size_t>(channel_->consumer_count());
  const std::size_t n = std::min(status.bytes / sizeof(TermEntry), consumers);
  term_rx_.resize(n);
  if (n > 0)
    std::memcpy(term_rx_.data(), element_buffer_.data(), n * sizeof(TermEntry));
  ++terms_seen_;
  if (my_consumer_ == Channel::term_aggregator()) {
    // Producer term: accumulate; once every producer reported, the summed
    // totals are final — announce them down the tree.
    if (count_accum_.empty()) count_accum_.assign(consumers, 0);
    for (const TermEntry& e : term_rx_)
      if (e.consumer < consumers) count_accum_[e.consumer] += e.count;
    if (terms_seen_ >= expected_terms_) {
      expected_data_ = count_accum_[static_cast<std::size_t>(my_consumer_)];
      counts_known_ = true;
      term_tx_.clear();
      for (std::size_t c = 0; c < consumers; ++c)
        if (count_accum_[c] > 0) term_tx_.push_back(TermEntry{c, count_accum_[c]});
      fan_out_term(self, term_tx_);
    }
    return;
  }
  // Collective term from the tree parent (a consumer sees exactly one):
  // adopt my announced count and keep the fan-out going.
  expected_data_ = 0;
  for (const TermEntry& e : term_rx_)
    if (e.consumer == static_cast<std::uint64_t>(my_consumer_))
      expected_data_ = e.count;
  counts_known_ = true;
  fan_out_term(self, term_rx_);
}

void Stream::flush_credits(mpi::Rank& self, int producer) {
  std::uint64_t count = credit_pending_[static_cast<std::size_t>(producer)];
  if (count == 0) return;
  credit_pending_[static_cast<std::size_t>(producer)] = 0;
  auto& machine = self.machine();
  self.process().advance(machine.config().network.send_overhead);
  // One ack message carries the whole batch; the producer adds its count to
  // the window. post_send copies the payload out, so the stack local is safe.
  machine.post_send(ack_context_, my_consumer_, self.world_rank(),
                    channel_->comm().world_rank(Channel::producer_rank(producer)),
                    kTagAck, mpi::SendBuf::of(&count, 1));
  ++ack_msgs_sent_;
}

void Stream::flush_all_credits(mpi::Rank& self) {
  for (std::size_t p = 0; p < credit_pending_.size(); ++p)
    flush_credits(self, static_cast<int>(p));
}

void Stream::await_credit(mpi::Rank& self) {
  std::uint64_t granted = 0;
  auto req = self.machine().post_recv(ack_context_, self.world_rank(),
                                      mpi::kAnySource, kTagAck,
                                      mpi::RecvBuf::of(&granted, 1));
  self.wait(req);
  // Each ack carries the batch size it returns; malformed/synthetic acks
  // conservatively count one credit.
  acks_seen_ += (!req->status.synthetic && req->status.bytes >= sizeof granted &&
                 granted > 0)
                    ? granted
                    : 1;
}

void Stream::handle(mpi::Rank& self, const mpi::Status& status) {
  if (status.tag == kTagTerm) {
    if (channel_->tree_termination())
      handle_tree_term(self, status);
    else
      ++terms_seen_;
    // A term means a producer (or the whole tree) has gone quiet: return
    // every credit still held back so no producer tail blocks on a partial
    // batch.
    if (!credit_pending_.empty()) flush_all_credits(self);
    return;
  }
  ++processed_data_;
  if (operator_) {
    StreamElement el{status.synthetic || element_buffer_.empty()
                         ? nullptr
                         : element_buffer_.data(),
                     status.bytes, status.source};
    operator_(el);
  }
  // Batched credit return: ack every ack_every_-th consumed element per
  // producer; stragglers flush on terms (above) and at exhaustion (below).
  if (!credit_pending_.empty()) {
    auto& pending = credit_pending_[static_cast<std::size_t>(status.source)];
    if (++pending >= ack_every_) flush_credits(self, status.source);
    if (exhausted()) flush_all_credits(self);
  }
}

std::uint64_t Stream::operate(mpi::Rank& self) {
  return operate_while(self, [] { return true; });
}

std::uint64_t Stream::operate_while(mpi::Rank& self,
                                    const std::function<bool()>& keep_going) {
  ensure_consumer_state(self);
  std::uint64_t processed = 0;
  // First-come-first-served across every producer: whichever element arrives
  // next gets processed, regardless of which peer sent it. Streams use their
  // own derived matching context, so receives post through the machine.
  auto& machine = self.machine();
  while (!exhausted() && keep_going()) {
    auto req = machine.post_recv(
        context_, self.world_rank(), mpi::kAnySource, mpi::kAnyTag,
        element_buffer_.empty()
            ? mpi::RecvBuf::discard(element_size_)
            : mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()});
    self.wait(req);
    handle(self, req->status);
    if (req->status.tag == kTagData) ++processed;
  }
  return processed;
}

bool Stream::poll_one(mpi::Rank& self) {
  ensure_consumer_state(self);
  auto& machine = self.machine();
  // Terminations are control flow, not elements: consume them silently and
  // keep looking, so the return value counts data elements only (matching
  // operate_while accounting).
  while (!exhausted()) {
    mpi::Status status;
    if (!machine.match_probe(context_, self.world_rank(), mpi::kAnySource,
                             mpi::kAnyTag, &status))
      return false;
    auto req = machine.post_recv(
        context_, self.world_rank(), status.source, status.tag,
        element_buffer_.empty()
            ? mpi::RecvBuf::discard(element_size_)
            : mpi::RecvBuf{element_buffer_.data(), element_buffer_.size()});
    self.wait(req);
    handle(self, req->status);
    if (req->status.tag == kTagData) return true;
  }
  return false;
}

}  // namespace ds::stream
