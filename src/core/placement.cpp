#include "core/placement.hpp"

#include <map>
#include <stdexcept>

namespace ds::stream {

Placement::Placement(const net::NetworkConfig& network, int world_size)
    : world_size_(world_size),
      ranks_per_node_(network.ranks_per_node > 0 ? network.ranks_per_node : 1) {
  if (world_size <= 0)
    throw std::invalid_argument("Placement: world_size must be > 0");
  node_count_ = (world_size + ranks_per_node_ - 1) / ranks_per_node_;
}

std::vector<int> Placement::ranks_on(int node) const {
  std::vector<int> ranks;
  if (node < 0 || node >= node_count_) return ranks;
  const int first = node * ranks_per_node_;
  for (int r = first; r < first + ranks_per_node_ && r < world_size_; ++r)
    ranks.push_back(r);
  return ranks;
}

std::vector<std::vector<int>> Placement::group_by_node(
    const std::vector<int>& world_ranks) const {
  std::map<int, std::vector<int>> by_node;
  for (const int r : world_ranks) by_node[node_of(r)].push_back(r);
  std::vector<std::vector<int>> groups;
  groups.reserve(by_node.size());
  for (auto& [node, ranks] : by_node) groups.push_back(std::move(ranks));
  return groups;
}

std::vector<int> Placement::tail_per_node(const std::vector<int>& world_ranks,
                                          int per_node) const {
  if (per_node < 1)
    throw std::invalid_argument("Placement::tail_per_node: per_node must be >= 1");
  std::vector<int> selected;
  for (const auto& group : group_by_node(world_ranks)) {
    const int take =
        std::min(per_node, static_cast<int>(group.size()) - 1);
    for (int k = 0; k < take; ++k)
      selected.push_back(
          group[group.size() - static_cast<std::size_t>(take - k)]);
  }
  return selected;
}

}  // namespace ds::stream
