// Adaptive stream granularity — the paper's stated future work.
//
// Sec. III ends with: "Currently, the library only supports static
// configuration of these values. An extension to support adaptive changes of
// the configuration is subject of a current work." This module is that
// extension: a producer-side controller that batches logical records into
// stream elements and adapts the batch size S online toward the Eq. 4
// trade-off — large enough that the per-element overhead o stays a bounded
// fraction of production time, small enough that the consumer receives a
// steady fine-grained flow (pipelining and imbalance absorption).
//
// The controller needs no global coordination: it watches two local signals,
//   * overhead ratio   — (elements * o) / elapsed production time,
//   * flow interval    — virtual time between consecutive flushes,
// and multiplicatively grows/shrinks the batch within [min, max] records.
// Consumers are unchanged: they see ordinary elements whose leading header
// states the record count. Through the facade, the policy is declared with
// decouple::Pipeline::adaptive_stream and driven with RawStream::push().
#pragma once

#include <cstdint>

#include "core/stream.hpp"
#include "util/time.hpp"

namespace ds::stream {

struct AdaptiveConfig {
  std::uint32_t min_records = 1;
  std::uint32_t max_records = 4096;
  std::uint32_t initial_records = 16;

  /// Target ceiling for injection overhead as a fraction of production time;
  /// above it the batch grows (fewer, larger elements).
  double max_overhead_fraction = 0.05;
  /// Target ceiling for the virtual time between element flushes; above it
  /// the batch shrinks so the consumer keeps receiving a fine-grained flow.
  util::SimTime max_flush_interval = util::milliseconds(5);

  /// Multiplicative step for both directions; must exceed 1.
  double growth = 2.0;
  /// Controller reacts once per `window` flushed elements.
  std::uint32_t window = 8;
};

/// Header prepended to every adaptive element (real bytes on the wire).
struct AdaptiveHeader {
  std::uint32_t records = 0;
  std::uint32_t reserved = 0;
};

/// Producer-side batching controller over a Stream whose element type must
/// hold `sizeof(AdaptiveHeader) + max_records * record_bytes` bytes.
class AdaptiveBatcher {
 public:
  AdaptiveBatcher(Stream& stream, std::size_t record_bytes,
                  AdaptiveConfig config = {});

  /// Append one logical record (modeled payload); flushes when the current
  /// batch target is reached.
  void push(mpi::Rank& self);

  /// Flush a partial batch, if any.
  void flush(mpi::Rank& self);

  /// Flush and terminate the underlying stream.
  void finish(mpi::Rank& self);

  [[nodiscard]] std::uint32_t current_batch() const noexcept { return target_; }
  [[nodiscard]] std::uint64_t records_sent() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t elements_sent() const noexcept { return elements_; }

  /// Element wire size needed for `max_records` records of `record_bytes`.
  [[nodiscard]] static std::size_t element_bytes(std::size_t record_bytes,
                                                 std::uint32_t max_records) {
    return sizeof(AdaptiveHeader) + record_bytes * max_records;
  }

 private:
  void adapt(mpi::Rank& self);

  Stream* stream_;
  std::size_t record_bytes_;
  AdaptiveConfig config_;
  std::uint32_t target_ = 0;
  std::uint32_t pending_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t elements_ = 0;

  // controller state, sampled per window
  std::uint32_t flushes_in_window_ = 0;
  bool window_started_ = false;  ///< each window opens at its first push
  util::SimTime window_start_ = 0;
  util::SimTime overhead_in_window_ = 0;
  util::SimTime last_flush_at_ = 0;
  util::SimTime flush_gap_sum_ = 0;
};

/// Consumer-side helper: decode the record count of an adaptive element.
[[nodiscard]] std::uint32_t adaptive_record_count(const StreamElement& element);

// ---------------------------------------------------------------------------
// Self-tuning transport flow control (the coalescing extension of the same
// future-work direction): where the AdaptiveBatcher adapts the *element*
// granularity S from producer-side overhead/flow-interval signals, the
// FlowController adapts the *transport* granularity — the coalesce budget a
// Stream packs frames under, and the credit batch a consumer acks with —
// from the equivalent signals one level down: frame occupancy (how full
// frames are when they flush) and the flush trigger mix (budget-full bursts
// vs. idle backstop flushes, the inter-arrival signal: a backstop flush
// means the producer yielded the CPU before filling a frame).
// ---------------------------------------------------------------------------

/// Why a coalesced frame left the producer.
enum class FlushTrigger : std::uint8_t {
  Budget,   ///< byte budget or element cap filled (bursty arrivals)
  Idle,     ///< same-instant backstop: the fiber yielded mid-frame
  Term,     ///< stream termination flushed a partial frame
  Credit,   ///< producer blocked on the credit window
  Explicit, ///< Stream::flush() called by the application
  Epoch     ///< resilient flow crossed a checkpoint boundary (frames never
            ///< straddle epochs, so durability acks truncate whole frames)
};

/// Producer-side controller: one per coalescing stream. Observes every
/// frame flush and retunes the effective budget once per window —
/// multiplicative growth while bursts keep filling frames (cut per-message
/// software cost further), multiplicative shrink while a sparse producer
/// keeps flushing near-empty frames from the backstop (no coalescing to be
/// had; a small budget keeps the packing memcpy and buffer footprint low).
class FlowController {
 public:
  struct Config {
    std::uint32_t min_budget = 256;
    std::uint32_t max_budget = 0;  ///< hard cap (kCoalesceGrowthCap * initial)
    std::uint32_t window = 16;     ///< flushes per adaptation step
    /// Grow when at least this fraction of the window flushed on budget.
    double grow_fraction = 0.5;
    /// Shrink when mean occupancy stayed below this fraction of the budget
    /// and no flush in the window was budget-triggered.
    double shrink_occupancy = 0.25;
  };

  FlowController() = default;
  explicit FlowController(Config config) : config_(config) {}

  /// Record one flush; returns the (possibly retuned) budget to use next.
  std::uint32_t observe_flush(FlushTrigger trigger, std::uint32_t elements,
                              std::uint64_t wire_bytes, std::uint32_t budget);

  /// Adaptive max_inflight (ROADMAP follow-up): retune the producer's
  /// effective credit window from the same flush-trigger signals, once per
  /// controller window. Credit-triggered flushes mean the producer keeps
  /// blocking on the window — grow it (x2, capped at `cap`); a window with
  /// no credit stalls decays halfway back toward the configured value.
  /// The result never drops below `configured`: the consumer-side liveness
  /// clamp ceil(configured/spread) stays valid for any window >= configured,
  /// so adaptation can never starve a blocked producer of its ack flush.
  /// Call at the window rollover (when observe_flush returns a fresh
  /// budget); `credit_stalled` is whether the rolled-over window contained
  /// credit-triggered flushes.
  [[nodiscard]] static std::uint32_t retune_window(std::uint32_t current,
                                                  std::uint32_t configured,
                                                  std::uint32_t cap,
                                                  bool credit_stalled) noexcept;

  /// Credit-triggered flushes observed in the window that just rolled over
  /// (valid right after observe_flush crossed the window boundary).
  [[nodiscard]] bool last_window_credit_stalled() const noexcept {
    return last_window_credit_stalled_;
  }
  /// True exactly when the previous observe_flush call rolled the window.
  [[nodiscard]] bool window_rolled() const noexcept { return window_rolled_; }

  /// Consumer-side ack retune: with self-tuning on, the effective credit
  /// batch tracks the observed frame occupancy (one ack per drained frame)
  /// but never drops below the library default nor exceeds the liveness
  /// clamp `limit` (ceil(window/spread); see ChannelConfig::ack_interval).
  [[nodiscard]] static std::uint32_t retune_ack_interval(
      std::uint32_t current, std::uint32_t frame_elements,
      std::uint32_t default_interval, std::uint32_t limit) noexcept;

 private:
  Config config_{};
  std::uint32_t flushes_in_window_ = 0;
  std::uint32_t budget_flushes_ = 0;
  std::uint32_t idle_flushes_ = 0;
  std::uint32_t credit_flushes_ = 0;
  std::uint64_t bytes_in_window_ = 0;
  bool window_rolled_ = false;
  bool last_window_credit_stalled_ = false;
};

}  // namespace ds::stream
