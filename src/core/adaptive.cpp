#include "core/adaptive.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpi/rank.hpp"

namespace ds::stream {

AdaptiveBatcher::AdaptiveBatcher(Stream& stream, std::size_t record_bytes,
                                 AdaptiveConfig config)
    : stream_(&stream),
      record_bytes_(record_bytes),
      config_(config),
      target_(std::clamp(config.initial_records, config.min_records,
                         config.max_records)) {
  if (config_.min_records == 0 || config_.min_records > config_.max_records)
    throw std::invalid_argument("AdaptiveBatcher: bad record bounds");
  if (element_bytes(record_bytes, config_.max_records) >
      stream.element_size())
    throw std::invalid_argument(
        "AdaptiveBatcher: stream element too small for max_records");
}

void AdaptiveBatcher::push(mpi::Rank& self) {
  ++pending_;
  ++records_;
  if (pending_ >= target_) flush(self);
}

void AdaptiveBatcher::flush(mpi::Rank& self) {
  if (pending_ == 0) return;
  const AdaptiveHeader header{pending_, 0};
  const util::SimTime before = self.now();
  stream_->isend(self, mpi::SendBuf::header_only(
                           header, sizeof header + pending_ * record_bytes_));
  // Everything the injection charged to this fiber counts as overhead o.
  overhead_in_window_ += self.now() - before;
  pending_ = 0;
  ++elements_;

  const util::SimTime now = self.now();
  if (flushes_in_window_ > 0) flush_gap_sum_ += now - last_flush_at_;
  last_flush_at_ = now;
  if (++flushes_in_window_ >= config_.window) adapt(self);
}

void AdaptiveBatcher::finish(mpi::Rank& self) {
  flush(self);
  stream_->terminate(self);
}

void AdaptiveBatcher::adapt(mpi::Rank& self) {
  const util::SimTime elapsed = self.now() - window_start_;
  const double overhead_fraction =
      elapsed > 0 ? static_cast<double>(overhead_in_window_) /
                        static_cast<double>(elapsed)
                  : 0.0;
  const util::SimTime mean_gap =
      flushes_in_window_ > 1
          ? flush_gap_sum_ / (flushes_in_window_ - 1)
          : 0;

  // Eq. 4's two failure modes: too much (D/S)*o -> grow S; flow too coarse
  // for pipelining/absorption -> shrink S. Overhead pressure wins ties (the
  // paper calls congestion from over-fine elements the costlier error).
  if (overhead_fraction > config_.max_overhead_fraction) {
    target_ = std::min<std::uint32_t>(
        config_.max_records,
        static_cast<std::uint32_t>(static_cast<double>(target_) * config_.growth));
  } else if (mean_gap > config_.max_flush_interval) {
    target_ = std::max<std::uint32_t>(
        config_.min_records,
        static_cast<std::uint32_t>(static_cast<double>(target_) / config_.growth));
  }

  flushes_in_window_ = 0;
  flush_gap_sum_ = 0;
  overhead_in_window_ = 0;
  window_start_ = self.now();
}

std::uint32_t adaptive_record_count(const StreamElement& element) {
  if (!element.data || element.bytes < sizeof(AdaptiveHeader)) return 0;
  AdaptiveHeader header;
  std::memcpy(&header, element.data, sizeof header);
  return header.records;
}

}  // namespace ds::stream
