#include "core/adaptive.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpi/rank.hpp"

namespace ds::stream {

AdaptiveBatcher::AdaptiveBatcher(Stream& stream, std::size_t record_bytes,
                                 AdaptiveConfig config)
    : stream_(&stream), record_bytes_(record_bytes), config_(config) {
  // Validate before clamping: std::clamp with min > max is UB, so the
  // bounds must be known-sane before target_ is derived from them.
  if (config_.min_records == 0 || config_.min_records > config_.max_records)
    throw std::invalid_argument("AdaptiveBatcher: bad record bounds");
  if (config_.growth <= 1.0)
    throw std::invalid_argument("AdaptiveBatcher: growth must exceed 1");
  if (element_bytes(record_bytes, config_.max_records) >
      stream.element_size())
    throw std::invalid_argument(
        "AdaptiveBatcher: stream element too small for max_records");
  target_ = std::clamp(config_.initial_records, config_.min_records,
                       config_.max_records);
}

void AdaptiveBatcher::push(mpi::Rank& self) {
  // The controller's first window starts at the first record, not at
  // sim-time zero: a batcher created late must not see the pre-history as
  // elapsed production time (it would dilute overhead_fraction and skew the
  // first adapt() decision).
  if (!window_started_) {
    window_start_ = self.now();
    window_started_ = true;
  }
  ++pending_;
  ++records_;
  if (pending_ >= target_) flush(self);
}

void AdaptiveBatcher::flush(mpi::Rank& self) {
  if (pending_ == 0) return;
  const AdaptiveHeader header{pending_, 0};
  const util::SimTime before = self.now();
  stream_->isend(self, mpi::SendBuf::header_only(
                           header, sizeof header + pending_ * record_bytes_));
  // Everything the injection charged to this fiber counts as overhead o.
  overhead_in_window_ += self.now() - before;
  pending_ = 0;
  ++elements_;

  const util::SimTime now = self.now();
  if (flushes_in_window_ > 0) flush_gap_sum_ += now - last_flush_at_;
  last_flush_at_ = now;
  if (++flushes_in_window_ >= config_.window) adapt(self);
}

void AdaptiveBatcher::finish(mpi::Rank& self) {
  flush(self);
  stream_->terminate(self);
}

void AdaptiveBatcher::adapt(mpi::Rank& /*self*/) {
  const util::SimTime elapsed = last_flush_at_ - window_start_;
  const double overhead_fraction =
      elapsed > 0 ? static_cast<double>(overhead_in_window_) /
                        static_cast<double>(elapsed)
                  : 0.0;
  const util::SimTime mean_gap =
      flushes_in_window_ > 1
          ? flush_gap_sum_ / (flushes_in_window_ - 1)
          : 0;

  // Eq. 4's two failure modes: too much (D/S)*o -> grow S; flow too coarse
  // for pipelining/absorption -> shrink S. Overhead pressure wins ties (the
  // paper calls congestion from over-fine elements the costlier error).
  if (overhead_fraction > config_.max_overhead_fraction) {
    target_ = std::min<std::uint32_t>(
        config_.max_records,
        static_cast<std::uint32_t>(static_cast<double>(target_) * config_.growth));
  } else if (mean_gap > config_.max_flush_interval) {
    // Guarantee progress toward min_records: the truncated quotient alone
    // can repeat the current target (e.g. small targets under a growth just
    // above 1), leaving the batch stuck above the floor.
    const auto shrunk =
        static_cast<std::uint32_t>(static_cast<double>(target_) / config_.growth);
    target_ = std::max(config_.min_records,
                       std::min(shrunk, target_ > 0 ? target_ - 1 : 0));
  }

  flushes_in_window_ = 0;
  flush_gap_sum_ = 0;
  overhead_in_window_ = 0;
  // The next window opens at its first push, not now: an idle gap between
  // bursts must not count as elapsed production time (same skew the first
  // window had before it was stamped lazily).
  window_started_ = false;
}

std::uint32_t FlowController::observe_flush(FlushTrigger trigger,
                                            std::uint32_t elements,
                                            std::uint64_t wire_bytes,
                                            std::uint32_t budget) {
  ++flushes_in_window_;
  bytes_in_window_ += wire_bytes;
  if (trigger == FlushTrigger::Budget) ++budget_flushes_;
  if (trigger == FlushTrigger::Idle && elements > 0) ++idle_flushes_;
  if (trigger == FlushTrigger::Credit) ++credit_flushes_;
  if (flushes_in_window_ < config_.window) {
    window_rolled_ = false;
    return budget;
  }

  const double budget_fraction =
      static_cast<double>(budget_flushes_) / flushes_in_window_;
  const double occupancy =
      static_cast<double>(bytes_in_window_) /
      (static_cast<double>(flushes_in_window_) * static_cast<double>(budget));
  std::uint32_t next = budget;
  if (budget_fraction >= config_.grow_fraction) {
    // Bursts keep filling frames: double the budget so each burst leaves in
    // fewer, larger messages (more per-message software cost amortized).
    next = std::min(config_.max_budget > 0 ? config_.max_budget : budget * 2,
                    budget * 2);
  } else if (budget_flushes_ == 0 && occupancy < config_.shrink_occupancy &&
             idle_flushes_ > 0) {
    // Sparse producer: frames leave near-empty from the backstop, so a large
    // budget buys nothing — halve it (never below one small element's worth).
    next = std::max(config_.min_budget, budget / 2);
  }
  window_rolled_ = true;
  last_window_credit_stalled_ = credit_flushes_ > 0;
  flushes_in_window_ = 0;
  budget_flushes_ = 0;
  idle_flushes_ = 0;
  credit_flushes_ = 0;
  bytes_in_window_ = 0;
  return next;
}

std::uint32_t FlowController::retune_window(std::uint32_t current,
                                            std::uint32_t configured,
                                            std::uint32_t cap,
                                            bool credit_stalled) noexcept {
  if (configured == 0) return 0;  // flow control off
  if (credit_stalled) return std::min(cap, current * 2);
  // No credit stall this window: decay halfway toward the configured value
  // (never below it — the consumer's liveness clamp is derived from it).
  if (current <= configured) return configured;
  return current - (current - configured + 1) / 2;
}

std::uint32_t FlowController::retune_ack_interval(
    std::uint32_t current, std::uint32_t frame_elements,
    std::uint32_t default_interval, std::uint32_t limit) noexcept {
  // Track the frame occupancy, but never drop below half the liveness clamp
  // (~half the credit window per consumer): acking in window-halves keeps a
  // credit-blocked producer refilling in large bursts (double-buffering).
  // Without that floor the loop locks into dribbles — each ack batch of k
  // credits unblocks a k-element burst, which flushes as a k-element frame,
  // which retunes the ack batch back to k.
  const std::uint32_t target = std::min(
      limit,
      std::max({default_interval, frame_elements, limit / 2}));
  // Move halfway toward the target each frame: smooth against one-off
  // partial frames while converging in a few frames of steady occupancy.
  if (target > current) return current + (target - current + 1) / 2;
  if (target < current) return current - (current - target + 1) / 2;
  return current;
}

std::uint32_t adaptive_record_count(const StreamElement& element) {
  if (!element.data || element.bytes < sizeof(AdaptiveHeader)) return 0;
  AdaptiveHeader header;
  std::memcpy(&header, element.data, sizeof header);
  return header.records;
}

}  // namespace ds::stream
