// First-class placement: where ranks live on the machine.
//
// The paper's decoupling strategy is a placement decision as much as a role
// split — helpers that share a node with their workers stream over shared
// memory instead of the (possibly tapered) fabric, and per-node aggregation
// keeps termination traffic off the upper tier. Placement captures the
// node structure once (from NetworkConfig::ranks_per_node, the same source
// the fabric's locality model uses) and offers the grouping primitives the
// layers above build on: decouple::Pipeline::with_node_placement co-locates
// helpers with their workers, Channel's node-aware term tree keeps
// aggregation edges intra-node, and pic_io places its writeback group.
#pragma once

#include <vector>

#include "net/network.hpp"

namespace ds::stream {

class Placement {
 public:
  /// Snapshot the node structure of a `world_size`-rank machine. With
  /// ranks_per_node <= 0 every rank is its own node (no locality).
  Placement(const net::NetworkConfig& network, int world_size);

  [[nodiscard]] int world_size() const noexcept { return world_size_; }
  /// Effective ranks per node (>= 1).
  [[nodiscard]] int ranks_per_node() const noexcept { return ranks_per_node_; }
  [[nodiscard]] int node_count() const noexcept { return node_count_; }

  [[nodiscard]] int node_of(int world_rank) const noexcept {
    return world_rank / ranks_per_node_;
  }
  [[nodiscard]] bool same_node(int rank_a, int rank_b) const noexcept {
    return node_of(rank_a) == node_of(rank_b);
  }

  /// World ranks hosted on `node`, ascending (empty for out-of-range nodes).
  [[nodiscard]] std::vector<int> ranks_on(int node) const;

  /// Partition a set of world ranks by node: groups ordered by node id,
  /// members keeping their input order.
  [[nodiscard]] std::vector<std::vector<int>> group_by_node(
      const std::vector<int>& world_ranks) const;

  /// Co-location selector: the last `per_node` members of each node-group,
  /// with every node keeping at least one non-selected member (a node
  /// contributing only one rank contributes no helper). This is the
  /// node-aware analogue of GroupPlan::interleaved's "last of each block":
  /// the selected ranks sit on the same node as the ranks they serve.
  [[nodiscard]] std::vector<int> tail_per_node(
      const std::vector<int>& world_ranks, int per_node) const;

 private:
  int world_size_ = 0;
  int ranks_per_node_ = 1;
  int node_count_ = 0;
};

}  // namespace ds::stream
