#include "core/group_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ds::stream {

GroupPlan GroupPlan::interleaved(const mpi::Comm& parent, int stride) {
  if (stride < 2)
    throw std::invalid_argument("GroupPlan::interleaved: stride must be >= 2");
  const int size = parent.size();
  if (size < stride)
    throw std::invalid_argument(
        "GroupPlan::interleaved: communicator smaller than one block");
  GroupPlan plan;
  plan.stride_ = stride;
  plan.parent_size_ = size;
  for (int r = 0; r < size; ++r) {
    if (r % stride == stride - 1)
      plan.helpers_.push_back(r);
    else
      plan.workers_.push_back(r);
  }
  return plan;
}

GroupPlan GroupPlan::with_alpha(const mpi::Comm& parent, double alpha) {
  if (alpha <= 0.0 || alpha >= 1.0)
    throw std::invalid_argument("GroupPlan::with_alpha: alpha must be in (0,1)");
  const int stride = std::max(2, static_cast<int>(std::lround(1.0 / alpha)));
  return interleaved(parent, stride);
}

bool GroupPlan::is_helper(int parent_rank) const noexcept {
  return stride_ >= 2 && parent_rank % stride_ == stride_ - 1;
}

double GroupPlan::alpha() const noexcept {
  return parent_size_ == 0
             ? 0.0
             : static_cast<double>(helpers_.size()) / parent_size_;
}

}  // namespace ds::stream
