// MPIStream channels (paper Sec. III-A, step 1).
//
// A channel is the communication fabric between two disjoint groups of a
// parent communicator: data producers and data consumers. Creation is
// collective over the parent (mirroring MPIStream_CreateChannel's
// is_data_producer / is_data_consumer flags); every member learns both
// groups and non-members receive an inert handle.
//
// Producers address consumers through a mapping policy:
//  * Block      — producer p always streams to consumer floor(p*C/P); stable
//                 peer, preserves per-producer element order at the consumer.
//  * RoundRobin — producer p spreads elements over all consumers; spreads
//                 load, order preserved only per (producer, consumer) pair.
//
// This is the implementation layer: application code normally goes through
// the typed RAII facade in core/decouple.hpp (decouple::Pipeline), which
// owns channel lifetime and role dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rank.hpp"
#include "resilience/membership.hpp"
#include "util/time.hpp"

namespace ds::stream {

struct ChannelConfig {
  /// Distinguishes channels created over the same parent communicator; every
  /// concurrently live channel on one parent needs a distinct id.
  std::uint64_t channel_id = 0;

  /// Per-element injection overhead `o` (paper Eq. 4): element construction
  /// plus the library call, charged to the producer at every stream_isend.
  util::SimTime inject_overhead = util::nanoseconds(150);

  /// Block      — producer p streams to one fixed consumer.
  /// RoundRobin — producer p rotates over all consumers.
  /// Directed   — producers address consumers per element via isend_to;
  ///              termination is aggregated (see term_* metadata below).
  enum class Mapping { Block, RoundRobin, Directed };
  Mapping mapping = Mapping::Block;

  /// Producer-side flow-control window: the maximum number of elements a
  /// producer may have in flight (sent but not yet consumed) before its next
  /// injection blocks on a credit returned over the stream's ack context.
  /// 0 disables backpressure (paper default: unbounded injection).
  /// Contract: credits come from consumption, so consumers of a
  /// flow-controlled stream must consume every element (operate to
  /// exhaustion); a consumer that stops with more than a window of elements
  /// outstanding leaves the producer blocked.
  std::uint32_t max_inflight = 0;

  /// Credit batching: a flow-controlled consumer returns credits every
  /// `ack_interval`-th element per producer (one ack message carrying the
  /// batched count) instead of per element, cutting flow-control message
  /// count ~ack_interval-fold. Remaining credits are flushed whenever a
  /// termination message is observed and when the stream is exhausted, so
  /// the producer window never stalls on the tail. For liveness the
  /// effective batch is clamped to ceil(max_inflight / spread), where
  /// spread is the number of consumers a producer can route to (1 under
  /// Block, the consumer count under RoundRobin/Directed): a blocked
  /// producer then always has some consumer holding a full batch. 0 picks
  /// the library default (kDefaultAckInterval). Only meaningful with
  /// max_inflight > 0.
  std::uint32_t ack_interval = 0;

  /// Default credit batch when ack_interval is 0: every 4th element acks.
  static constexpr std::uint32_t kDefaultAckInterval = 4;

  /// Transport-level element coalescing: a producer packs same-destination
  /// elements injected at the same virtual instant into one framed fabric
  /// message of up to `coalesce_budget` wire bytes (length-prefixed
  /// sub-records). Frames flush when the budget or `coalesce_max_elements`
  /// fills, when the producer terminates or blocks on a credit, and — via a
  /// same-instant backstop event — the moment the producing fiber yields the
  /// CPU, so elements are never delayed in virtual time beyond the instant
  /// they were injected at. Elements too large for the budget bypass
  /// coalescing and travel as before. 0 disables coalescing entirely
  /// (per-element messages, the paper's fine-grained default).
  std::uint32_t coalesce_budget = kDefaultCoalesceBudget;

  /// Element-count cap per frame (the timeout-equivalent trigger: a frame
  /// never holds more than this many elements regardless of byte budget).
  /// 0 picks kDefaultCoalesceMaxElements.
  std::uint32_t coalesce_max_elements = 0;

  /// Self-tuning flow control: when true, the stream drives the coalesce
  /// budget online from the producer's flush-occupancy/inter-arrival
  /// signals (stream::FlowController), and — when ack_interval is 0 — the
  /// consumer's effective credit batch tracks the observed frame occupancy
  /// (one ack per drained frame) within the liveness clamp. Pin
  /// coalesce_budget/ack_interval and set this false for fixed behavior.
  bool flow_autotune = true;

  /// Stream epochs / consumer failover (ds::resilience): when nonzero, every
  /// element of the stream travels in a framed message stamped with its flow
  /// id and sequence number, producers cut an epoch every
  /// `checkpoint_interval` elements per flow and retain unacknowledged
  /// frames for replay, and on an injected consumer crash the producers
  /// rebind the dead consumer's flows to the deterministic failover target,
  /// replay the open epoch, and the receiver dedupes by (flow, seq) so
  /// delivery stays exactly-once from the application's view. 0 (default)
  /// disables all resilience machinery — the fault-free hot path is
  /// untouched.
  std::uint32_t checkpoint_interval = 0;

  /// Durability-acknowledgment mode for resilient streams: false = automatic
  /// at epoch boundaries (processing counts as durable); true = the consumer
  /// application calls Stream::ack_durable once its external effects are
  /// safe. See resilience::ResilienceOptions.
  bool manual_durability = false;

  /// Node-aware termination aggregation (tree mappings only): shape the term
  /// tree from the machine's node structure instead of the flat binary heap.
  /// The first consumer on each node becomes the node's leader; leaders form
  /// a binary tree among themselves (the only cross-node edges), and every
  /// other consumer hangs off its own node's leader — so the collective term
  /// crosses the fabric O(nodes) times instead of O(consumers), and the
  /// per-node hops ride shared memory. The aggregator stays consumer 0.
  /// False (default) keeps the flat heap tree exactly as before.
  bool node_aware_term = false;

  /// Consumer slots that start the run deactivated in the membership ledger
  /// (resilient channels only): their flows are served by the deterministic
  /// failover target until Channel::admit_consumer brings them online — the
  /// elastic scale-up scenario. Ignored on non-resilient channels.
  std::vector<int> initially_inactive_consumers{};

  [[nodiscard]] bool resilient() const noexcept {
    return checkpoint_interval > 0;
  }

  /// Default frame budget in wire bytes (fits well under the default eager
  /// threshold; ~28 64-byte elements per frame).
  static constexpr std::uint32_t kDefaultCoalesceBudget = 2048;
  /// Default per-frame element cap when coalesce_max_elements is 0.
  static constexpr std::uint32_t kDefaultCoalesceMaxElements = 128;
  /// Self-tuning may grow a frame budget to at most this multiple of its
  /// configured value; consumers size their receive buffers from the same
  /// bound, so both sides agree without coordination.
  static constexpr std::uint32_t kCoalesceGrowthCap = 4;
  /// Adaptive flow control may grow the effective credit window to at most
  /// this multiple of max_inflight (and never below it): the consumer-side
  /// liveness clamp is derived from the configured window, so growing — but
  /// never shrinking past — the configured value keeps the clamp valid.
  static constexpr std::uint32_t kWindowGrowthCap = 4;
};

class Channel {
 public:
  Channel() = default;

  /// Collective over `parent`: every member calls with its role. A rank may
  /// be producer, consumer, or neither (inert handle); producer+consumer on
  /// the same rank is rejected (the groups must be disjoint).
  [[nodiscard]] static Channel create(mpi::Rank& self, const mpi::Comm& parent,
                                      bool is_producer, bool is_consumer,
                                      ChannelConfig config = {});

  /// Local-only (non-collective) reconstruction of the channel create()
  /// built: `role_of(parent_rank)` must return the role each member passed
  /// at create time (0 = neither, 1 = producer, 2 = consumer). A respawned
  /// fiber rejoining a live channel cannot re-enter the creation collective
  /// — its peers are long past it — but in every decoupled program the role
  /// assignment is a pure function of rank, so the restarted rank rebuilds
  /// an identical handle (same derived context, same membership ledger)
  /// without touching the fabric.
  [[nodiscard]] static Channel attach(
      mpi::Rank& self, const mpi::Comm& parent,
      const std::function<std::int8_t(int)>& role_of, ChannelConfig config = {});

  /// Collective over the channel members: quiesce and release (paper's
  /// MPIStream_FreeChannel). No-op for non-members.
  void free(mpi::Rank& self);

  [[nodiscard]] bool valid() const noexcept { return comm_.valid(); }
  [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }
  /// Communicator spanning producers (ranks [0, P)) then consumers
  /// (ranks [P, P+C)).
  [[nodiscard]] const mpi::Comm& comm() const noexcept { return comm_; }
  [[nodiscard]] int producer_count() const noexcept { return producer_count_; }
  [[nodiscard]] int consumer_count() const noexcept { return consumer_count_; }

  /// This rank's producer index, or -1.
  [[nodiscard]] int my_producer_index(const mpi::Rank& self) const noexcept;
  /// This rank's consumer index, or -1.
  [[nodiscard]] int my_consumer_index(const mpi::Rank& self) const noexcept;

  /// Consumer index element #`seq` from producer `p` is routed to.
  [[nodiscard]] int route(int producer, std::uint64_t seq) const noexcept;

  /// The Block assignment in closed form: the consumer a producer streams
  /// to when `producer_count` producers block-map onto `consumer_count`
  /// consumers. Exposed so code holding an inert handle (e.g. a chain stage
  /// that is neither endpoint) can reproduce the routing without a channel.
  [[nodiscard]] static int block_route(int producer, int producer_count,
                                       int consumer_count) noexcept {
    return static_cast<int>(static_cast<long long>(producer) * consumer_count /
                            producer_count);
  }

  /// Producers that may route elements to consumer `c` (for termination
  /// accounting).
  [[nodiscard]] std::vector<int> producers_of(int consumer) const;

  // ---- termination routing metadata --------------------------------------
  // Under Block mapping every producer has exactly one peer consumer, so a
  // terminating producer notifies just that peer. RoundRobin and Directed
  // producers can reach every consumer; broadcasting a term from each of P
  // producers to each of C consumers costs O(P*C) messages. Those mappings
  // instead aggregate: every producer sends one term (carrying its
  // per-consumer element counts) to a designated aggregator consumer, which
  // fans the collective term down a binary tree over the consumers —
  // O(P + C) messages total, O(log C) hops on the aggregation path.

  /// True when termination uses the aggregated tree protocol (non-Block).
  [[nodiscard]] bool tree_termination() const noexcept {
    return config_.mapping != ChannelConfig::Mapping::Block;
  }
  /// Consumer index that aggregates producer terms (tree root). Holds for
  /// both tree shapes: the node-aware build keeps consumer 0 as the first
  /// leader, so the root never moves.
  [[nodiscard]] static int term_aggregator() noexcept { return 0; }
  /// Flat-heap tree parent of consumer `c` (-1 for the aggregator). Static
  /// shape only; channel-aware code should use term_parent_of.
  [[nodiscard]] static int term_parent(int consumer) noexcept {
    return consumer <= 0 ? -1 : (consumer - 1) / 2;
  }
  /// Tree parent of consumer `c` under this channel's tree shape (node-aware
  /// when enabled, the flat heap otherwise). Both shapes guarantee
  /// parent < child, so subtree walks ascend strictly.
  [[nodiscard]] int term_parent_of(int consumer) const noexcept {
    if (!term_parent_.empty())
      return consumer <= 0 ? -1 : term_parent_[static_cast<std::size_t>(consumer)];
    return term_parent(consumer);
  }
  /// True when the channel built a node-aware term tree.
  [[nodiscard]] bool node_aware_term() const noexcept {
    return !term_parent_.empty();
  }
  /// Tree children of consumer `c` under this channel's tree shape.
  [[nodiscard]] std::vector<int> term_children(int consumer) const;
  /// Flat-heap membership test (static shape only; see term_in_subtree_of).
  [[nodiscard]] static bool term_in_subtree(int consumer, int root) noexcept {
    while (consumer > root) consumer = term_parent(consumer);
    return consumer == root;
  }
  /// True when `consumer` lies in the tree subtree rooted at `root`
  /// (inclusive) under this channel's tree shape. Used to slice the
  /// per-consumer counts a collective term carries down to just the
  /// receiver's subtree.
  [[nodiscard]] bool term_in_subtree_of(int consumer, int root) const noexcept {
    while (consumer > root) consumer = term_parent_of(consumer);
    return consumer == root;
  }
  /// Tree hops from the aggregator to the deepest consumer: the length of
  /// the collective-term critical path. O(log C) for the flat heap;
  /// O(log nodes + 1) node-aware.
  [[nodiscard]] int term_tree_depth() const noexcept;
  /// Tree edges whose endpoint consumers live on different nodes — the
  /// term messages that must cross the fabric. The node-aware shape bounds
  /// this by the leader tree (O(nodes)); the flat heap scatters edges
  /// across nodes. Benches use it to compare the shapes.
  [[nodiscard]] int term_cross_node_edges() const noexcept;
  /// Node id of consumer `c` on the machine the channel was created on.
  [[nodiscard]] int consumer_node(int consumer) const noexcept {
    return consumer_node_.empty()
               ? 0
               : consumer_node_[static_cast<std::size_t>(consumer)];
  }
  /// Terms consumer `c` must observe before the stream can be exhausted:
  /// its routed producers under Block; under tree termination P for the
  /// aggregator (one per producer) and 1 for everyone else (the collective
  /// term from the tree parent).
  [[nodiscard]] int expected_term_count(int consumer) const;

  /// Channel rank (in comm()) of producer p / consumer c.
  [[nodiscard]] static int producer_rank(int p) noexcept { return p; }
  [[nodiscard]] int consumer_rank(int c) const noexcept {
    return producer_count_ + c;
  }

  // ---- elastic membership (resilient channels) ---------------------------
  // The ledger is shared machine-wide per channel context: a retire/admit on
  // any rank is observed by every other rank at its next poll, exactly like
  // the failure record. Slots, not ranks: a retired slot's rank stays alive.

  /// True when consumer slot `c` is active (always true without a ledger —
  /// non-resilient channels have static membership).
  [[nodiscard]] bool consumer_active(int c) const noexcept {
    return !ledger_ || ledger_->is_active(c);
  }
  /// Monotone membership version (0 without a ledger). Streams cache it and
  /// rebalance flows when it moves — the elastic analogue of failure_epoch.
  [[nodiscard]] std::uint64_t membership_version() const noexcept {
    return ledger_ ? ledger_->version : 0;
  }
  /// Deactivate consumer slot `c`: its flows rebalance to the deterministic
  /// failover target (voluntary handoff — no replay storm, no data loss).
  /// Retiring the current effective aggregator is rejected: the aggregator
  /// must keep servicing the termination protocol. Resilient channels only.
  void retire_consumer(mpi::Rank& self, int c) const;
  /// (Re)activate consumer slot `c`: the current owner hands its flows back.
  void admit_consumer(mpi::Rank& self, int c) const;

 private:
  void build_node_aware_tree();
  static Channel build(mpi::Rank& self, const mpi::Comm& parent,
                       const std::vector<std::int8_t>& roles,
                       ChannelConfig config);

  ChannelConfig config_{};
  mpi::Comm comm_{};
  int producer_count_ = 0;
  int consumer_count_ = 0;
  /// Node id per consumer (filled at create; empty for inert handles).
  std::vector<int> consumer_node_;
  /// Node-aware term-tree parents (empty = flat heap shape).
  std::vector<int> term_parent_;
  /// Shared membership ledger (resilient channels; null otherwise).
  std::shared_ptr<resilience::MembershipLedger> ledger_;
};

}  // namespace ds::stream
