// MPIStream channels (paper Sec. III-A, step 1).
//
// A channel is the communication fabric between two disjoint groups of a
// parent communicator: data producers and data consumers. Creation is
// collective over the parent (mirroring MPIStream_CreateChannel's
// is_data_producer / is_data_consumer flags); every member learns both
// groups and non-members receive an inert handle.
//
// Producers address consumers through a mapping policy:
//  * Block      — producer p always streams to consumer floor(p*C/P); stable
//                 peer, preserves per-producer element order at the consumer.
//  * RoundRobin — producer p spreads elements over all consumers; spreads
//                 load, order preserved only per (producer, consumer) pair.
//
// This is the implementation layer: application code normally goes through
// the typed RAII facade in core/decouple.hpp (decouple::Pipeline), which
// owns channel lifetime and role dispatch.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/rank.hpp"
#include "util/time.hpp"

namespace ds::stream {

struct ChannelConfig {
  /// Distinguishes channels created over the same parent communicator; every
  /// concurrently live channel on one parent needs a distinct id.
  std::uint64_t channel_id = 0;

  /// Per-element injection overhead `o` (paper Eq. 4): element construction
  /// plus the library call, charged to the producer at every stream_isend.
  util::SimTime inject_overhead = util::nanoseconds(150);

  /// Block      — producer p streams to one fixed consumer.
  /// RoundRobin — producer p rotates over all consumers.
  /// Directed   — producers address consumers per element via isend_to;
  ///              termination is broadcast to every consumer.
  enum class Mapping { Block, RoundRobin, Directed };
  Mapping mapping = Mapping::Block;
};

class Channel {
 public:
  Channel() = default;

  /// Collective over `parent`: every member calls with its role. A rank may
  /// be producer, consumer, or neither (inert handle); producer+consumer on
  /// the same rank is rejected (the groups must be disjoint).
  [[nodiscard]] static Channel create(mpi::Rank& self, const mpi::Comm& parent,
                                      bool is_producer, bool is_consumer,
                                      ChannelConfig config = {});

  /// Collective over the channel members: quiesce and release (paper's
  /// MPIStream_FreeChannel). No-op for non-members.
  void free(mpi::Rank& self);

  [[nodiscard]] bool valid() const noexcept { return comm_.valid(); }
  [[nodiscard]] const ChannelConfig& config() const noexcept { return config_; }
  /// Communicator spanning producers (ranks [0, P)) then consumers
  /// (ranks [P, P+C)).
  [[nodiscard]] const mpi::Comm& comm() const noexcept { return comm_; }
  [[nodiscard]] int producer_count() const noexcept { return producer_count_; }
  [[nodiscard]] int consumer_count() const noexcept { return consumer_count_; }

  /// This rank's producer index, or -1.
  [[nodiscard]] int my_producer_index(const mpi::Rank& self) const noexcept;
  /// This rank's consumer index, or -1.
  [[nodiscard]] int my_consumer_index(const mpi::Rank& self) const noexcept;

  /// Consumer index element #`seq` from producer `p` is routed to.
  [[nodiscard]] int route(int producer, std::uint64_t seq) const noexcept;

  /// Producers that may route elements to consumer `c` (for termination
  /// accounting).
  [[nodiscard]] std::vector<int> producers_of(int consumer) const;

  /// Channel rank (in comm()) of producer p / consumer c.
  [[nodiscard]] static int producer_rank(int p) noexcept { return p; }
  [[nodiscard]] int consumer_rank(int c) const noexcept {
    return producer_count_ + c;
  }

 private:
  ChannelConfig config_{};
  mpi::Comm comm_{};
  int producer_count_ = 0;
  int consumer_count_ = 0;
};

}  // namespace ds::stream
