#include "core/decouple.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/placement.hpp"
#include "mpi/datatype.hpp"
#include "mpi/machine.hpp"
#include "mpi/rank.hpp"

namespace ds::decouple {

namespace {

/// Default base for the channel ids the facade assigns (base + declaration
/// index). Offset so hand-made channels on the same parent (ids 0..) never
/// collide with a pipeline's. Two pipelines *concurrently live* over the
/// same parent must be disambiguated with with_channel_base.
constexpr std::uint64_t kChannelIdBase = 0xDC00;

}  // namespace

// ------------------------------------------------------------ ScopedChannel --

ScopedChannel::ScopedChannel(ScopedChannel&& other) noexcept
    : self_(std::exchange(other.self_, nullptr)),
      channel_(std::exchange(other.channel_, stream::Channel{})) {}

ScopedChannel& ScopedChannel::operator=(ScopedChannel&& other) noexcept {
  if (this != &other) {
    release();
    self_ = std::exchange(other.self_, nullptr);
    channel_ = std::exchange(other.channel_, stream::Channel{});
  }
  return *this;
}

ScopedChannel::~ScopedChannel() { release(); }

ScopedChannel ScopedChannel::create(mpi::Rank& self, const mpi::Comm& parent,
                                    bool is_producer, bool is_consumer,
                                    stream::ChannelConfig config) {
  return ScopedChannel(
      self, stream::Channel::create(self, parent, is_producer, is_consumer,
                                    std::move(config)));
}

void ScopedChannel::release() {
  if (self_ != nullptr && channel_.valid()) channel_.free(*self_);
  self_ = nullptr;
  channel_ = stream::Channel{};
}

// --------------------------------------------------------------- StreamBase --

void StreamBase::bind(mpi::Rank& self, ScopedChannel channel,
                      std::size_t element_bytes, std::uint64_t stream_id) {
  self_ = &self;
  channel_ = std::move(channel);
  stream_ = stream::Stream::attach(
      channel_.get(), mpi::Datatype::bytes(element_bytes),
      [this](const stream::StreamElement& el) { dispatch(el); }, stream_id);
  on_bound();
}

mpi::Rank& StreamBase::self() const {
  if (self_ == nullptr)
    throw std::logic_error("decouple: stream used before Pipeline::run");
  return *self_;
}

void StreamBase::terminate() {
  if (self_ != nullptr && is_producer()) stream_.terminate(*self_);
}

std::uint64_t StreamBase::operate() { return stream_.operate(self()); }

std::uint64_t StreamBase::operate_while(
    const std::function<bool()>& keep_going) {
  return stream_.operate_while(self(), keep_going);
}

bool StreamBase::poll_one() { return stream_.poll_one(self()); }

void StreamBase::ack_durable() { stream_.ack_durable(self()); }

void StreamBase::on_durable_point(std::function<void()> hook) {
  stream_.set_durable_point(std::move(hook));
}

void StreamBase::retire() { stream_.retire(self()); }

void StreamBase::retire_consumer(int c) {
  channel_.get().retire_consumer(self(), c);
}

void StreamBase::admit_consumer(int c) {
  channel_.get().admit_consumer(self(), c);
}

std::uint64_t StreamBase::drain() {
  std::uint64_t consumed = 0;
  while (poll_one()) ++consumed;
  return consumed;
}

bool StreamBase::is_producer() const { return producer_index() >= 0; }

bool StreamBase::is_consumer() const { return consumer_index() >= 0; }

int StreamBase::producer_index() const {
  return self_ == nullptr ? -1 : channel_.get().my_producer_index(*self_);
}

int StreamBase::consumer_index() const {
  return self_ == nullptr ? -1 : channel_.get().my_consumer_index(*self_);
}

void StreamBase::send_raw(mpi::SendBuf element) {
  stream_.isend(self(), element);
}

void StreamBase::send_raw_to(int consumer, mpi::SendBuf element) {
  stream_.isend_to(self(), consumer, element);
}

// ---------------------------------------------------------------- RawStream --

void RawStream::send(const void* data, std::size_t bytes) {
  send_raw(mpi::SendBuf{data, bytes, 0});
}

void RawStream::send_synthetic(std::size_t wire_bytes) {
  send_raw(mpi::SendBuf::synthetic(wire_bytes));
}

void RawStream::terminate() {
  if (batcher_ && is_producer()) batcher_->flush(self());
  StreamBase::terminate();
}

void RawStream::on_bound() {
  if (adaptive_ && is_producer())
    batcher_.emplace(stream(), record_bytes_, *adaptive_);
}

stream::AdaptiveBatcher& RawStream::batcher() {
  if (!batcher_)
    throw std::logic_error(
        "decouple: push/flush need an adaptive stream and the producer role");
  return *batcher_;
}

const stream::AdaptiveBatcher& RawStream::batcher() const {
  return const_cast<RawStream*>(this)->batcher();
}

void RawStream::push() { batcher().push(self()); }

void RawStream::flush() { batcher().flush(self()); }

std::uint32_t RawStream::current_batch() const {
  return batcher().current_batch();
}

std::uint64_t RawStream::records_sent() const { return batcher().records_sent(); }

std::uint32_t adaptive_record_count(const RawElement& element) {
  if (element.data == nullptr ||
      element.bytes < sizeof(stream::AdaptiveHeader))
    return 0;
  stream::AdaptiveHeader header;
  std::memcpy(&header, element.data, sizeof header);
  return header.records;
}

// ------------------------------------------------------------------ Context --

mpi::Rank& Context::self() const noexcept { return *pipeline_->self_; }

const mpi::Comm& Context::parent() const noexcept { return pipeline_->parent_; }

int Context::parent_rank() const noexcept {
  return self().rank_in(pipeline_->parent_);
}

bool Context::is_worker() const noexcept {
  return !pipeline_->is_helper_rank(parent_rank());
}

int Context::worker_index() const noexcept {
  const auto& workers = pipeline_->workers_;
  const auto it = std::lower_bound(workers.begin(), workers.end(), parent_rank());
  return it != workers.end() && *it == parent_rank()
             ? static_cast<int>(it - workers.begin())
             : -1;
}

int Context::helper_index() const noexcept {
  const auto& helpers = pipeline_->helpers_;
  const auto it = std::lower_bound(helpers.begin(), helpers.end(), parent_rank());
  return it != helpers.end() && *it == parent_rank()
             ? static_cast<int>(it - helpers.begin())
             : -1;
}

int Context::worker_count() const noexcept {
  return static_cast<int>(pipeline_->workers_.size());
}

int Context::helper_count() const noexcept {
  return static_cast<int>(pipeline_->helpers_.size());
}

const std::vector<int>& Context::workers() const noexcept {
  return pipeline_->workers_;
}

const std::vector<int>& Context::helpers() const noexcept {
  return pipeline_->helpers_;
}

int Context::helper_of(int worker) const noexcept {
  return static_cast<int>(static_cast<long long>(worker) * helper_count() /
                          worker_count());
}

double Context::alpha() const noexcept {
  const auto total = pipeline_->workers_.size() + pipeline_->helpers_.size();
  return total == 0 ? 0.0
                    : static_cast<double>(pipeline_->helpers_.size()) /
                          static_cast<double>(total);
}

const mpi::Comm& Context::worker_comm() const {
  if (!pipeline_->want_worker_comm_)
    throw std::logic_error(
        "decouple: worker_comm() requires Pipeline::with_worker_comm()");
  return pipeline_->worker_comm_;
}

int Context::stage_count() const noexcept {
  return static_cast<int>(pipeline_->stages_.size());
}

int Context::stage_index() const noexcept {
  return pipeline_->stage_of(parent_rank());
}

int Context::stage_member_index() const noexcept {
  const int stage = stage_index();
  if (stage < 0) return -1;
  const auto& ranks = pipeline_->stages_[static_cast<std::size_t>(stage)];
  const auto it = std::lower_bound(ranks.begin(), ranks.end(), parent_rank());
  return static_cast<int>(it - ranks.begin());
}

int Context::stage_size(int stage) const {
  return static_cast<int>(stage_ranks(stage).size());
}

int Context::stage_size(StageHandle stage) const {
  return stage_size(stage.index_);
}

const std::vector<int>& Context::stage_ranks(int stage) const {
  if (stage < 0 || stage >= stage_count())
    throw std::logic_error("decouple: stage index out of range");
  return pipeline_->stages_[static_cast<std::size_t>(stage)];
}

StreamBase& Context::slot(int index) const {
  if (index < 0 || index >= static_cast<int>(pipeline_->slots_.size()))
    throw std::logic_error("decouple: stream handle not from this pipeline");
  return *pipeline_->slots_[static_cast<std::size_t>(index)].stream;
}

// ----------------------------------------------------------------- Pipeline --

Pipeline::Pipeline(mpi::Rank& self, mpi::Comm parent)
    : self_(&self), parent_(std::move(parent)), channel_base_(kChannelIdBase) {}

Pipeline Pipeline::over(mpi::Rank& self, const mpi::Comm& parent) {
  if (self.rank_in(parent) < 0)
    throw std::logic_error("Pipeline::over: caller not in parent communicator");
  return Pipeline(self, parent);
}

void Pipeline::set_split(std::vector<int> helpers) {
  if (split_configured_)
    throw std::logic_error("Pipeline: split already configured");
  std::sort(helpers.begin(), helpers.end());
  helpers.erase(std::unique(helpers.begin(), helpers.end()), helpers.end());
  workers_.clear();
  for (int r = 0; r < parent_.size(); ++r)
    if (!std::binary_search(helpers.begin(), helpers.end(), r))
      workers_.push_back(r);
  if (workers_.empty() || helpers.empty())
    throw std::invalid_argument(
        "Pipeline: need at least one worker and one helper");
  helpers_ = std::move(helpers);
  split_configured_ = true;
}

Pipeline& Pipeline::with_stride(int stride) & {
  return with_plan(stream::GroupPlan::interleaved(parent_, stride));
}

Pipeline& Pipeline::with_alpha(double alpha) & {
  return with_plan(stream::GroupPlan::with_alpha(parent_, alpha));
}

Pipeline& Pipeline::with_plan(const stream::GroupPlan& plan) & {
  set_split(plan.helpers());
  return *this;
}

Pipeline& Pipeline::with_helper_ranks(std::vector<int> helpers) & {
  for (const int h : helpers)
    if (h < 0 || h >= parent_.size())
      throw std::invalid_argument(
          "Pipeline::with_helper_ranks: rank outside the parent communicator");
  set_split(std::move(helpers));
  return *this;
}

Pipeline& Pipeline::with_node_placement(int helpers_per_node) & {
  if (helpers_per_node < 1)
    throw std::invalid_argument(
        "Pipeline::with_node_placement: helpers_per_node must be >= 1");
  const auto& config = self_->machine().config();
  const stream::Placement placement(config.network, config.world_size);
  std::vector<int> world;
  world.reserve(static_cast<std::size_t>(parent_.size()));
  for (int r = 0; r < parent_.size(); ++r) world.push_back(parent_.world_rank(r));
  std::vector<int> helpers;
  for (const int w : placement.tail_per_node(world, helpers_per_node))
    helpers.push_back(parent_.rank_of_world(w));
  if (helpers.empty())
    throw std::invalid_argument(
        "Pipeline::with_node_placement: no node hosts two members of the "
        "parent communicator (nothing to co-locate)");
  std::sort(helpers.begin(), helpers.end());
  set_split(std::move(helpers));
  return *this;
}

Pipeline& Pipeline::with_worker_comm() & {
  want_worker_comm_ = true;
  return *this;
}

Pipeline& Pipeline::with_channel_base(std::uint64_t base) & {
  channel_base_ = base;
  return *this;
}

Pipeline& Pipeline::with_resilience(resilience::ResilienceOptions options) & {
  if (options.checkpoint_interval == 0)
    throw std::invalid_argument(
        "Pipeline::with_resilience: checkpoint_interval must be > 0 "
        "(resilience without epochs would retain unboundedly)");
  resilience_ = options;
  return *this;
}

bool Pipeline::is_helper_rank(int parent_rank) const noexcept {
  return std::binary_search(helpers_.begin(), helpers_.end(), parent_rank);
}

int Pipeline::add_slot(std::unique_ptr<StreamBase> stream,
                       std::size_t element_bytes, StreamOptions options) {
  if (ran_)
    throw std::logic_error("Pipeline: streams must be declared before run()");
  slots_.push_back(Slot{std::move(stream), element_bytes, std::move(options)});
  return static_cast<int>(slots_.size()) - 1;
}

RawStreamHandle Pipeline::raw_stream(std::size_t element_bytes,
                                     StreamOptions options) {
  return RawStreamHandle(
      add_slot(std::make_unique<RawStream>(), element_bytes, std::move(options)));
}

StageHandle Pipeline::stage(std::vector<int> parent_ranks) {
  if (ran_)
    throw std::logic_error("Pipeline: stages must be declared before run()");
  std::sort(parent_ranks.begin(), parent_ranks.end());
  parent_ranks.erase(std::unique(parent_ranks.begin(), parent_ranks.end()),
                     parent_ranks.end());
  if (parent_ranks.empty())
    throw std::invalid_argument("Pipeline::stage: stage must not be empty");
  for (const int r : parent_ranks) {
    if (r < 0 || r >= parent_.size())
      throw std::invalid_argument(
          "Pipeline::stage: rank outside the parent communicator");
    if (stage_of(r) >= 0)
      throw std::invalid_argument(
          "Pipeline::stage: stages must be pairwise disjoint");
  }
  stages_.push_back(std::move(parent_ranks));
  return StageHandle(static_cast<int>(stages_.size()) - 1);
}

StageHandle Pipeline::stage(const RolePredicate& member) {
  if (!member) throw std::invalid_argument("Pipeline::stage: empty predicate");
  std::vector<int> ranks;
  for (int r = 0; r < parent_.size(); ++r)
    if (member(r)) ranks.push_back(r);
  return stage(std::move(ranks));
}

int Pipeline::stage_of(int parent_rank) const noexcept {
  for (std::size_t i = 0; i < stages_.size(); ++i)
    if (std::binary_search(stages_[i].begin(), stages_[i].end(), parent_rank))
      return static_cast<int>(i);
  return -1;
}

void Pipeline::link_stages(StageHandle from, StageHandle to,
                           StreamOptions& options) const {
  const auto stage_count = static_cast<int>(stages_.size());
  if (from.index_ < 0 || from.index_ >= stage_count || to.index_ < 0 ||
      to.index_ >= stage_count)
    throw std::logic_error(
        "decouple: stream_between needs handles from this pipeline's stages");
  if (from.index_ == to.index_)
    throw std::invalid_argument(
        "decouple: a stage cannot stream to itself (groups must be disjoint)");
  // Capture by value: the predicates outlive this call and must stay pure
  // functions of the rank number (they derive the collective channel roles).
  options.producers = [ranks = stages_[static_cast<std::size_t>(from.index_)]](
                          int r) {
    return std::binary_search(ranks.begin(), ranks.end(), r);
  };
  options.consumers = [ranks = stages_[static_cast<std::size_t>(to.index_)]](
                          int r) {
    return std::binary_search(ranks.begin(), ranks.end(), r);
  };
}

RawStreamHandle Pipeline::raw_stream_between(StageHandle from, StageHandle to,
                                             std::size_t element_bytes,
                                             StreamOptions options) {
  link_stages(from, to, options);
  return raw_stream(element_bytes, std::move(options));
}

RawStreamHandle Pipeline::adaptive_stream(std::size_t record_bytes,
                                          AdaptiveConfig adaptive,
                                          StreamOptions options) {
  auto stream = std::make_unique<RawStream>();
  stream->adaptive_ = adaptive;
  stream->record_bytes_ = record_bytes;
  return RawStreamHandle(add_slot(
      std::move(stream),
      stream::AdaptiveBatcher::element_bytes(record_bytes, adaptive.max_records),
      std::move(options)));
}

void Pipeline::run(const RoleFn& worker_fn, const RoleFn& helper_fn) {
  if (!split_configured_)
    throw std::logic_error(
        "Pipeline::run: declare a split first (with_stride / with_alpha / "
        "with_plan / with_helper_ranks)");
  if (ran_) throw std::logic_error("Pipeline::run: pipeline already ran");
  const bool worker = !is_helper_rank(self_->rank_in(parent_));
  launch(worker ? worker_fn : helper_fn);
}

void Pipeline::run_stages(const std::vector<RoleFn>& stage_fns) {
  if (stages_.size() < 2)
    throw std::logic_error(
        "Pipeline::run_stages: declare at least two stages first");
  if (stage_fns.size() != stages_.size())
    throw std::invalid_argument(
        "Pipeline::run_stages: need exactly one function per declared stage");
  if (ran_) throw std::logic_error("Pipeline::run_stages: pipeline already ran");
  // The chain induces the worker/helper split: the first stage is the worker
  // group, every other rank (later stages and unassigned) is a helper. A
  // split declared explicitly (with_plan etc.) is kept as-is.
  if (!split_configured_) {
    std::vector<int> helpers;
    for (int r = 0; r < parent_.size(); ++r)
      if (!std::binary_search(stages_.front().begin(), stages_.front().end(), r))
        helpers.push_back(r);
    set_split(std::move(helpers));
  }
  const int my_stage = stage_of(self_->rank_in(parent_));
  launch(my_stage >= 0 ? stage_fns[static_cast<std::size_t>(my_stage)]
                       : RoleFn{});
}

void Pipeline::launch(const RoleFn& role_fn) {
  ran_ = true;

  mpi::Rank& self = *self_;
  const int me = self.rank_in(parent_);
  const bool worker = !is_helper_rank(me);

  // A restarted incarnation rejoins a pipeline whose surviving members are
  // mid-run: no collective step can happen (peers are not at a matching
  // call). Channels are re-derived locally via Channel::attach from the
  // same pure role predicates every rank evaluated at first launch.
  const bool rejoining = self.machine().incarnation(self.world_rank()) > 0;
  if (rejoining && want_worker_comm_)
    throw std::logic_error(
        "Pipeline: a restarted rank cannot rejoin a pipeline configured "
        "with_worker_comm (communicator splits are collective)");

  if (want_worker_comm_)
    worker_comm_ = self.split(parent_, worker ? 0 : -1, me);

  // Channel creation is collective over the parent: declaration order is the
  // creation order on every rank. Rejoining ranks attach instead.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    stream::ChannelConfig config;
    config.channel_id = channel_base_ + i;
    config.mapping = slot.options.mapping;
    config.inject_overhead = slot.options.inject_overhead;
    config.max_inflight = slot.options.max_inflight;
    config.ack_interval = slot.options.ack_interval;
    config.coalesce_budget = slot.options.coalesce_budget;
    config.coalesce_max_elements = slot.options.coalesce_max_elements;
    config.flow_autotune = slot.options.flow_autotune;
    config.checkpoint_interval = slot.options.checkpoint_interval;
    config.manual_durability = slot.options.manual_durability;
    config.node_aware_term = slot.options.node_aware_term;
    config.initially_inactive_consumers =
        slot.options.initially_inactive_consumers;
    if (resilience_ && config.checkpoint_interval == 0) {
      config.checkpoint_interval = resilience_->checkpoint_interval;
      config.manual_durability =
          config.manual_durability || resilience_->manual_durability;
    }
    const bool to_helpers = slot.options.direction == Direction::ToHelpers;
    const auto role_of = [&](int r) -> std::int8_t {
      const bool w = !is_helper_rank(r);
      const bool produce = slot.options.producers
                               ? slot.options.producers(r)
                               : (to_helpers ? w : !w);
      const bool consume = slot.options.consumers
                               ? slot.options.consumers(r)
                               : (to_helpers ? !w : w);
      return produce ? std::int8_t{1} : (consume ? std::int8_t{2} : std::int8_t{0});
    };
    ScopedChannel channel;
    if (rejoining) {
      if (!config.resilient())
        throw std::logic_error(
            "Pipeline: a restarted rank can only rejoin resilient streams "
            "(set checkpoint_interval or with_resilience)");
      channel = ScopedChannel(
          self, stream::Channel::attach(self, parent_, role_of, std::move(config)));
    } else {
      channel = ScopedChannel::create(self, parent_, role_of(me) == 1,
                                      role_of(me) == 2, std::move(config));
    }
    slot.stream->bind(self, std::move(channel), slot.element_bytes,
                      /*stream_id=*/i + 1);
  }

  Context context(*this);
  if (role_fn) role_fn(context);

  // RAII half of the termination protocol: whatever this rank produced is
  // now over; consumers' operate() unblocks as the terms land. In a chain
  // this is what propagates termination stage to stage.
  for (Slot& slot : slots_) slot.stream->terminate();
}

}  // namespace ds::decouple
