// Analytic performance model of the decoupling strategy (paper Sec. II-D,
// Eqs. 1-4).
//
// Two operations Op0, Op1 with per-process workloads T_W0, T_W1, imbalance
// T_sigma, on P processes. Decoupling moves Op1 to an alpha-fraction group;
// the workers' Op0 grows by 1/(1-alpha), the helpers' Op1 shrinks (or not)
// to T'_W1 / alpha. beta is the non-overlapped fraction of Op0; streaming D
// bytes in elements of S costs (D/S)*o extra on the producers.
//
// All times in seconds (the model is dimensionless in P beyond the
// alpha-scaling, matching the paper's presentation).
#pragma once

namespace ds::model {

struct TwoOpWorkload {
  double t_w0 = 0.0;      ///< per-process time of the kept operation Op0
  double t_w1 = 0.0;      ///< per-process time of Op1 in the conventional run
  double t_sigma = 0.0;   ///< expected imbalance/idle time
  double alpha = 0.0625;  ///< fraction of processes running decoupled Op1
  double beta = 0.0;      ///< non-overlapped fraction of Op0 (0 = perfect pipe)
  double t_w1_decoupled = 0.0;  ///< T'_W1: per-helper-process Op1 time after
                                ///< decoupling (already reflects optimization)
  double total_data = 0.0;      ///< D: bytes streamed between the groups
  double granularity = 1.0;     ///< S: bytes per stream element
  double overhead_per_element = 0.0;  ///< o: injection overhead per element
};

/// Eq. 1: conventional model, T_c = T_W0 + T_sigma + T_W1.
[[nodiscard]] double conventional_time(const TwoOpWorkload& w) noexcept;

/// Eq. 2: perfectly pipelined decoupling,
/// T_d = max( T_W0/(1-alpha) + T_sigma , T'_W1/alpha ).
[[nodiscard]] double decoupled_time_ideal(const TwoOpWorkload& w) noexcept;

/// Eq. 3: partial pipelining with non-overlapped fraction beta,
/// T_d = beta*(T_W0/(1-alpha) + T_sigma) + T'_W1/alpha.
[[nodiscard]] double decoupled_time_beta(const TwoOpWorkload& w) noexcept;

/// Eq. 4: Eq. 3 plus per-element streaming overhead (D/S)*o on the producer
/// side: T_d = beta(S)*(T_W0/(1-alpha) + T_sigma + (D/S)*o) + T'_W1/alpha.
[[nodiscard]] double decoupled_time_full(const TwoOpWorkload& w) noexcept;

/// A simple beta(S) refinement the paper alludes to ("beta is a function of
/// S: the finer the stream element, the higher the pipelining"): beta rises
/// from beta_min toward 1 as S approaches the whole of D.
/// beta(S) = beta_min + (1 - beta_min) * (S / D), clamped to [beta_min, 1].
[[nodiscard]] double beta_of_granularity(double beta_min, double granularity,
                                         double total_data) noexcept;

/// Predicted speedup conventional/decoupled under Eq. 4.
[[nodiscard]] double predicted_speedup(const TwoOpWorkload& w) noexcept;

/// Granularity minimizing Eq. 4 over a log-spaced scan of [s_min, s_max]
/// with beta(S) = beta_of_granularity. Returns the best S.
[[nodiscard]] double optimal_granularity(TwoOpWorkload w, double beta_min,
                                         double s_min, double s_max);

}  // namespace ds::model
