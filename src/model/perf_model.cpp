#include "model/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace ds::model {

double conventional_time(const TwoOpWorkload& w) noexcept {
  return w.t_w0 + w.t_sigma + w.t_w1;
}

double decoupled_time_ideal(const TwoOpWorkload& w) noexcept {
  const double workers = w.t_w0 / (1.0 - w.alpha) + w.t_sigma;
  const double helpers = w.t_w1_decoupled / w.alpha;
  return std::max(workers, helpers);
}

double decoupled_time_beta(const TwoOpWorkload& w) noexcept {
  return w.beta * (w.t_w0 / (1.0 - w.alpha) + w.t_sigma) +
         w.t_w1_decoupled / w.alpha;
}

double decoupled_time_full(const TwoOpWorkload& w) noexcept {
  const double elements =
      w.granularity > 0.0 ? w.total_data / w.granularity : 0.0;
  const double stream_overhead = elements * w.overhead_per_element;
  return w.beta * (w.t_w0 / (1.0 - w.alpha) + w.t_sigma + stream_overhead) +
         w.t_w1_decoupled / w.alpha;
}

double beta_of_granularity(double beta_min, double granularity,
                           double total_data) noexcept {
  if (total_data <= 0.0) return beta_min;
  const double beta = beta_min + (1.0 - beta_min) * (granularity / total_data);
  return std::clamp(beta, beta_min, 1.0);
}

double predicted_speedup(const TwoOpWorkload& w) noexcept {
  const double decoupled = decoupled_time_full(w);
  return decoupled > 0.0 ? conventional_time(w) / decoupled : 0.0;
}

double optimal_granularity(TwoOpWorkload w, double beta_min, double s_min,
                           double s_max) {
  double best_s = s_min;
  double best_t = HUGE_VAL;
  constexpr int kSteps = 200;
  for (int i = 0; i <= kSteps; ++i) {
    const double s =
        s_min * std::pow(s_max / s_min, static_cast<double>(i) / kSteps);
    w.granularity = s;
    w.beta = beta_of_granularity(beta_min, s, w.total_data);
    const double t = decoupled_time_full(w);
    if (t < best_t) {
      best_t = t;
      best_s = s;
    }
  }
  return best_s;
}

}  // namespace ds::model
