#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace ds::net {

Fabric::Fabric(NetworkConfig config, int endpoints)
    : config_(config),
      tx_free_(static_cast<std::size_t>(endpoints), 0),
      rx_free_(static_cast<std::size_t>(endpoints), 0),
      degrade_(static_cast<std::size_t>(endpoints), 1.0) {
  if (endpoints <= 0) throw std::invalid_argument("Fabric: endpoints must be > 0");
}

void Fabric::set_degrade(int endpoint, double factor) {
  degrade_.at(static_cast<std::size_t>(endpoint)) = factor < 1.0 ? 1.0 : factor;
}

DeliverySchedule Fabric::schedule_message(int src, int dst, std::size_t bytes,
                                          util::SimTime earliest) {
  auto& tx = tx_free_.at(static_cast<std::size_t>(src));
  auto& rx = rx_free_.at(static_cast<std::size_t>(dst));

  const double byte_ns = config_.byte_time(src, dst);
  const auto payload_time = static_cast<util::SimTime>(
      degrade_[static_cast<std::size_t>(src)] * byte_ns *
      static_cast<double>(bytes));

  // Transmit: wait for the sender port, then occupy it for gap + payload.
  const util::SimTime tx_start = std::max(earliest, tx);
  const util::SimTime tx_end = tx_start + config_.injection_gap + payload_time;
  tx = tx_end;

  // Propagate, then drain through the receiver port.
  const util::SimTime arrival = tx_end + config_.wire_latency(src, dst);
  const auto drain_time = static_cast<util::SimTime>(
      degrade_[static_cast<std::size_t>(dst)] * config_.receiver_drain_factor *
      byte_ns * static_cast<double>(bytes));
  const util::SimTime rx_start = std::max(arrival, rx);
  const util::SimTime rx_end = rx_start + drain_time;
  rx = rx_end;

  total_bytes_ += bytes;
  ++total_messages_;
  return DeliverySchedule{rx_end, tx_end};
}

}  // namespace ds::net
