#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ds::net {

Fabric::Fabric(NetworkConfig config, int endpoints)
    : config_(config),
      topology_(config_, endpoints > 0 ? endpoints : 1),
      tx_free_(static_cast<std::size_t>(endpoints > 0 ? endpoints : 1), 0),
      rx_free_(tx_free_.size(), 0),
      degrade_(tx_free_.size(), 1.0),
      link_free_(static_cast<std::size_t>(topology_.link_count()), 0),
      link_degrade_(link_free_.size(), 1.0),
      link_bytes_(link_free_.size(), 0) {
  if (endpoints <= 0) throw std::invalid_argument("Fabric: endpoints must be > 0");
}

void Fabric::check_endpoint(int endpoint, const char* what) const {
  if (endpoint < 0 || endpoint >= endpoints()) {
    throw std::out_of_range(std::string(what) + ": endpoint " +
                            std::to_string(endpoint) +
                            " out of range [0, " + std::to_string(endpoints()) +
                            ")");
  }
}

void Fabric::check_link(int link, const char* what) const {
  if (link < 0 || link >= topology_.link_count()) {
    throw std::out_of_range(
        std::string(what) + ": link " + std::to_string(link) +
        " out of range [0, " + std::to_string(topology_.link_count()) +
        ") for topology '" + topology_.config().name() + "'");
  }
}

void Fabric::set_degrade(int endpoint, double factor) {
  check_endpoint(endpoint, "Fabric::set_degrade");
  degrade_[static_cast<std::size_t>(endpoint)] = factor < 1.0 ? 1.0 : factor;
}

double Fabric::degrade(int endpoint) const {
  check_endpoint(endpoint, "Fabric::degrade");
  return degrade_[static_cast<std::size_t>(endpoint)];
}

void Fabric::set_link_degrade(int link, double factor) {
  check_link(link, "Fabric::set_link_degrade");
  link_degrade_[static_cast<std::size_t>(link)] = factor < 1.0 ? 1.0 : factor;
}

double Fabric::link_degrade(int link) const {
  check_link(link, "Fabric::link_degrade");
  return link_degrade_[static_cast<std::size_t>(link)];
}

int Fabric::degrade_path(int src, int dst, double factor) {
  check_endpoint(src, "Fabric::degrade_path");
  check_endpoint(dst, "Fabric::degrade_path");
  const LinkPath path = topology_.route(src, dst);
  if (path.empty()) {
    // Flat topology or same-node pair: no shared links to address, so the
    // fault lands on the endpoints themselves.
    set_degrade(src, factor);
    set_degrade(dst, factor);
    return 0;
  }
  for (int i = 0; i < path.count; ++i)
    set_link_degrade(path.links[static_cast<std::size_t>(i)], factor);
  return path.count;
}

DeliverySchedule Fabric::schedule_message(int src, int dst, std::size_t bytes,
                                          util::SimTime earliest) {
  auto& tx = tx_free_.at(static_cast<std::size_t>(src));
  auto& rx = rx_free_.at(static_cast<std::size_t>(dst));

  const double byte_ns = config_.byte_time(src, dst);
  const auto payload_time = static_cast<util::SimTime>(
      degrade_[static_cast<std::size_t>(src)] * byte_ns *
      static_cast<double>(bytes));

  // Transmit: wait for the sender port, then occupy it for gap + payload.
  const util::SimTime tx_start = std::max(earliest, tx);
  const util::SimTime tx_end = tx_start + config_.injection_gap + payload_time;
  tx = tx_end;

  // Serialize through each shared link on the topology route, in order. A
  // flat topology (and any same-node pair) has an empty route, leaving the
  // historical endpoint-only schedule bit-for-bit intact.
  util::SimTime head = tx_end;
  const LinkPath path = topology_.route(src, dst);
  for (int i = 0; i < path.count; ++i) {
    const auto link = static_cast<std::size_t>(path.links[static_cast<std::size_t>(i)]);
    const auto link_time = static_cast<util::SimTime>(
        link_degrade_[link] * topology_.link_ns_per_byte(path.links[static_cast<std::size_t>(i)]) *
        static_cast<double>(bytes));
    const util::SimTime start = std::max(head, link_free_[link]);
    head = start + link_time;
    link_free_[link] = head;
    link_bytes_[link] += bytes;
  }

  // Propagate, then drain through the receiver port.
  const util::SimTime arrival =
      head + config_.wire_latency(src, dst) + path.extra_latency;
  const auto drain_time = static_cast<util::SimTime>(
      degrade_[static_cast<std::size_t>(dst)] * config_.receiver_drain_factor *
      byte_ns * static_cast<double>(bytes));
  const util::SimTime rx_start = std::max(arrival, rx);
  const util::SimTime rx_end = rx_start + drain_time;
  rx = rx_end;

  total_bytes_ += bytes;
  ++total_messages_;
  return DeliverySchedule{rx_end, tx_end};
}

void Fabric::sample_metrics(obs::Metrics& m) const {
  m.gauge("fabric.total_bytes").set(static_cast<double>(total_bytes_));
  m.gauge("fabric.total_messages").set(static_cast<double>(total_messages_));
  m.gauge("fabric.links").set(static_cast<double>(link_bytes_.size()));
  // Per-link gauges are capped: a big machine's link set belongs in the
  // histogram, not as thousands of JSON entries.
  constexpr std::size_t kMaxLinkGauges = 64;
  auto& hist = m.histogram("fabric.link_bytes");
  hist.reset();
  for (std::size_t link = 0; link < link_bytes_.size(); ++link) {
    hist.add(static_cast<double>(link_bytes_[link]));
    if (link < kMaxLinkGauges) {
      m.gauge("fabric.link_bytes", static_cast<int>(link))
          .set(static_cast<double>(link_bytes_[link]));
      m.gauge("fabric.link_busy_until_s", static_cast<int>(link))
          .set(util::to_seconds(link_free_[link]));
    }
  }
}

}  // namespace ds::net
