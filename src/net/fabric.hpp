// Stateful fabric: tracks when each endpoint's transmit and drain ports free
// up — and, under a non-flat topology, when each shared link on the route
// frees up — serializing concurrent messages through them. This is where
// congestion emerges: a rank receiving from many peers accumulates drain-port
// backlog, and a node (or tapered upper tier) carrying many flows accumulates
// link backlog the flat model cannot express.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace ds::net {

struct DeliverySchedule {
  /// When the payload has fully arrived and is matchable at the receiver.
  util::SimTime deliver_at = 0;
  /// When the sender's transmit port is free again (isend completion for
  /// buffered/eager sends).
  util::SimTime sender_free_at = 0;
};

class Fabric {
 public:
  Fabric(NetworkConfig config, int endpoints);

  /// Reserve transmit (src) and drain (dst) port time — plus occupancy on
  /// every shared link along the topology route — for a message of `bytes`
  /// injected no earlier than `earliest`. Mutates port/link state; callers
  /// must invoke it in nondecreasing `earliest` order per endpoint pair for
  /// physical sensibility (the engine's event order guarantees this).
  DeliverySchedule schedule_message(int src, int dst, std::size_t bytes,
                                    util::SimTime earliest);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] int endpoints() const noexcept { return static_cast<int>(tx_free_.size()); }

  /// Cumulative bytes scheduled through the fabric (for bench reporting).
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const noexcept { return total_messages_; }

  /// Fault-injected link degradation (resilience::FaultPlan): messages
  /// touching a degraded endpoint occupy its ports `factor` times longer
  /// (payload and drain time; propagation latency is unaffected). 1 restores
  /// nominal. Throws std::out_of_range naming the bad endpoint.
  void set_degrade(int endpoint, double factor);
  [[nodiscard]] double degrade(int endpoint) const;

  /// Per-link degradation under a non-flat topology: traffic crossing the
  /// link takes `factor` times longer on it. Throws std::out_of_range naming
  /// the bad link id (valid ids are [0, topology().link_count())).
  void set_link_degrade(int link, double factor);
  [[nodiscard]] double link_degrade(int link) const;

  /// Degrade the shared links on the route src -> dst (the ISSUE's
  /// link-addressed fault form). Under a flat topology — or for same-node
  /// pairs, which cross no shared links — falls back to degrading both
  /// endpoints so the fault still bites. Returns the number of shared links
  /// affected (0 indicates the endpoint fallback was used).
  int degrade_path(int src, int dst, double factor);

  /// Cumulative bytes carried per shared link (bench/diagnostic heat map).
  [[nodiscard]] const std::vector<std::uint64_t>& link_bytes() const noexcept {
    return link_bytes_;
  }
  /// When each shared link last frees up (diagnostics).
  [[nodiscard]] util::SimTime link_busy_until(int link) const {
    return link_free_.at(static_cast<std::size_t>(link));
  }

  /// Snapshot fabric state into the metrics registry (a ds::obs collector):
  /// message/byte totals, a distribution over per-link carried bytes, and
  /// per-link byte gauges (link id as the rank dimension) for the heat map.
  void sample_metrics(obs::Metrics& m) const;

 private:
  void check_endpoint(int endpoint, const char* what) const;
  void check_link(int link, const char* what) const;

  NetworkConfig config_;
  Topology topology_;
  std::vector<util::SimTime> tx_free_;    // per-endpoint transmit port
  std::vector<util::SimTime> rx_free_;    // per-endpoint drain port
  std::vector<double> degrade_;           // per-endpoint port-cost multiplier
  std::vector<util::SimTime> link_free_;  // per shared link occupancy
  std::vector<double> link_degrade_;      // per shared link cost multiplier
  std::vector<std::uint64_t> link_bytes_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
};

}  // namespace ds::net
