// Stateful fabric: tracks when each endpoint's transmit and drain ports free
// up, serializing concurrent messages through them. This is where congestion
// emerges: a rank receiving from many peers accumulates drain-port backlog.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "util/time.hpp"

namespace ds::net {

struct DeliverySchedule {
  /// When the payload has fully arrived and is matchable at the receiver.
  util::SimTime deliver_at = 0;
  /// When the sender's transmit port is free again (isend completion for
  /// buffered/eager sends).
  util::SimTime sender_free_at = 0;
};

class Fabric {
 public:
  Fabric(NetworkConfig config, int endpoints);

  /// Reserve transmit (src) and drain (dst) port time for a message of
  /// `bytes` injected no earlier than `earliest`. Mutates port state; callers
  /// must invoke it in nondecreasing `earliest` order per endpoint pair for
  /// physical sensibility (the engine's event order guarantees this).
  DeliverySchedule schedule_message(int src, int dst, std::size_t bytes,
                                    util::SimTime earliest);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] int endpoints() const noexcept { return static_cast<int>(tx_free_.size()); }

  /// Cumulative bytes scheduled through the fabric (for bench reporting).
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const noexcept { return total_messages_; }

  /// Fault-injected link degradation (sim::FaultPlan): messages touching a
  /// degraded endpoint occupy its ports `factor` times longer (payload and
  /// drain time; propagation latency is unaffected). 1 restores nominal.
  void set_degrade(int endpoint, double factor);
  [[nodiscard]] double degrade(int endpoint) const {
    return degrade_.at(static_cast<std::size_t>(endpoint));
  }

 private:
  NetworkConfig config_;
  std::vector<util::SimTime> tx_free_;  // per-endpoint transmit port
  std::vector<util::SimTime> rx_free_;  // per-endpoint drain port
  std::vector<double> degrade_;         // per-endpoint port-cost multiplier
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
};

}  // namespace ds::net
