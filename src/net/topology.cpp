#include "net/topology.hpp"

#include <cmath>
#include <stdexcept>

namespace ds::net {

namespace {

int near_square_split(int nodes) {
  int split = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(nodes))));
  return split < 1 ? 1 : split;
}

}  // namespace

Topology::Topology(const NetworkConfig& config, int endpoints)
    : topo_(config.topology),
      endpoints_(endpoints),
      ranks_per_node_(config.ranks_per_node),
      tier_hop_latency_(config.latency_tier_hop) {
  if (endpoints <= 0) throw std::invalid_argument("Topology: endpoints must be > 0");
  // ranks_per_node <= 0 means "no locality": each rank is its own node.
  const int rpn = ranks_per_node_ > 0 ? ranks_per_node_ : 1;
  nodes_ = (endpoints + rpn - 1) / rpn;
  nodes_per_pod_ =
      topo_.nodes_per_pod > 0 ? topo_.nodes_per_pod : near_square_split(nodes_);
  pods_ = (nodes_ + nodes_per_pod_ - 1) / nodes_per_pod_;

  const bool two_tier = topo_.kind == TopologyConfig::Kind::FatTree ||
                        topo_.kind == TopologyConfig::Kind::Dragonfly;
  link_count_ = topo_.flat() ? 0 : 2 * nodes_ + (two_tier ? 2 * pods_ : 0);

  const double node_taper = topo_.node_link_taper < 1.0 ? 1.0 : topo_.node_link_taper;
  const double tier_taper = topo_.tier_link_taper < 1.0 ? 1.0 : topo_.tier_link_taper;
  node_link_ns_ = config.ns_per_byte_node_link * node_taper;
  tier_link_ns_ = config.ns_per_byte_tier_link * tier_taper;
}

LinkPath Topology::route(int src, int dst) const noexcept {
  LinkPath path;
  if (topo_.flat()) return path;
  const int src_node = node_of(src);
  const int dst_node = node_of(dst);
  if (src_node == dst_node) return path;  // intra-node: shared memory, no links

  path.push(node_up_link(src_node));
  if (topo_.kind != TopologyConfig::Kind::TwoLevel) {
    const int src_pod = src_node / nodes_per_pod_;
    const int dst_pod = dst_node / nodes_per_pod_;
    if (src_pod != dst_pod) {
      path.push(tier_up_link(src_pod));
      path.push(tier_down_link(dst_pod));
      // Fat-tree: up through the core and back down (two switch hops).
      // Dragonfly minimal route: one direct global link between the groups.
      const int hops = topo_.kind == TopologyConfig::Kind::FatTree ? 2 : 1;
      path.extra_latency = hops * tier_hop_latency_;
    }
  }
  path.push(node_down_link(dst_node));
  return path;
}

double Topology::link_ns_per_byte(int link) const noexcept {
  return tier_link(link) ? tier_link_ns_ : node_link_ns_;
}

std::string Topology::link_name(int link) const {
  if (link < 0 || link >= link_count_) return "link?" + std::to_string(link);
  if (link < nodes_) return "node" + std::to_string(link) + ":up";
  if (link < 2 * nodes_) return "node" + std::to_string(link - nodes_) + ":down";
  if (link < 2 * nodes_ + pods_)
    return "pod" + std::to_string(link - 2 * nodes_) + ":up";
  return "pod" + std::to_string(link - 2 * nodes_ - pods_) + ":down";
}

}  // namespace ds::net
