// Network cost model (LogGP family) and machine-structure configuration.
//
// Parameters follow Alexandrov/Culler LogGP extended with the two effects the
// paper's results hinge on:
//
//  * per-endpoint serialization — each rank's NIC transmits and drains one
//    message at a time at link bandwidth, so a rank addressed by thousands of
//    peers becomes a hotspot (Fig. 5's master-congestion uptick, Fig. 8's
//    shared-file serialization);
//  * node locality — ranks on the same node (32 per node, as on Beskow's
//    XC40) communicate with lower latency and higher bandwidth.
//
// On top of the endpoint model sits a pluggable machine structure
// (TopologyConfig -> net::Topology): nodes attach to the network through
// shared up/down links, and fat-tree pods / dragonfly groups add a second
// tier whose bandwidth taper is the bisection knob. The flat topology (the
// default) has no shared links and reproduces the original per-endpoint
// model bit for bit.
//
// The model is *costs only*: stateful link occupancy lives in net::Fabric.
#pragma once

#include <cstddef>
#include <string>

#include "util/time.hpp"

namespace ds::net {

/// Machine structure for the pluggable topology layer (see net::Topology).
/// The flat kind models no shared links — exactly the historical behavior.
struct TopologyConfig {
  enum class Kind {
    Flat,      ///< no shared links; endpoints contend only at their own ports
    TwoLevel,  ///< node-hierarchical: per-node up/down links, one switch tier
    FatTree,   ///< nodes in pods; inter-pod traffic adds pod up/down links
    Dragonfly  ///< nodes in groups; inter-group traffic adds global links
  };
  Kind kind = Kind::Flat;

  /// Nodes per fat-tree pod / dragonfly group. <= 0 picks a near-square
  /// split (ceil(sqrt(nodes))) so both tiers carry comparable fan-out.
  int nodes_per_pod = 0;

  /// Bandwidth taper on node up/down links: byte-time multiplier (>= 1).
  /// Models oversubscribed node injection (many NICs behind one switch port).
  double node_link_taper = 1.0;

  /// Bandwidth taper on pod/global links — the bisection-bandwidth knob.
  /// 1 = full bisection; 4 = a 4:1 tapered upper tier.
  double tier_link_taper = 1.0;

  [[nodiscard]] bool flat() const noexcept { return kind == Kind::Flat; }
  [[nodiscard]] const char* name() const noexcept;

  /// Parse a topology family by name ("flat", "twolevel", "fattree",
  /// "dragonfly"; hyphenated spellings accepted). Throws std::invalid_argument
  /// on unknown names.
  [[nodiscard]] static TopologyConfig named(const std::string& name);
};

struct NetworkConfig {
  /// One-way wire latency between nodes.
  util::SimTime latency = util::nanoseconds(1300);
  /// One-way latency inside a node (shared memory transport).
  util::SimTime latency_intra_node = util::nanoseconds(250);

  /// Inter-node per-byte time in ns/byte (8 GB/s ~ 0.125 ns/B).
  double ns_per_byte = 0.125;
  /// Intra-node per-byte time (shared memory ~ 20 GB/s).
  double ns_per_byte_intra_node = 0.05;

  /// Sender CPU overhead per message (o_s): stack traversal, descriptor setup.
  util::SimTime send_overhead = util::nanoseconds(450);
  /// Receiver CPU overhead per message (o_r): matching, completion.
  util::SimTime recv_overhead = util::nanoseconds(450);
  /// Per-message gap at the sending NIC (g): injection-rate limit.
  util::SimTime injection_gap = util::nanoseconds(100);

  /// Messages up to this size are sent eagerly; larger ones use a rendezvous
  /// handshake (one extra round trip before the payload moves).
  std::size_t eager_threshold = 8 * 1024;

  /// Ranks per compute node for the locality model (0 = every rank remote).
  int ranks_per_node = 32;

  /// CPU time per communicator peer charged to the caller of vector
  /// collectives (alltoallv/allgatherv): marshalling O(P) count/displacement
  /// arrays is real work that grows with scale even when most entries are 0.
  double coll_post_ns_per_peer = 30.0;

  /// Fraction of the payload byte-time also charged to the *receiving*
  /// endpoint's drain port. 1.0 = full serialization at the receiver NIC.
  double receiver_drain_factor = 1.0;

  // ---- topology tiers (ignored by the flat topology) ----------------------

  /// Machine structure: which shared links exist and how they are shaped.
  TopologyConfig topology{};

  /// Per-byte time on a node's shared up/down link into the network. All of
  /// a node's inter-node traffic serializes through these two links, so a
  /// node whose ranks all talk off-node becomes a hotspot at its own switch
  /// port — congestion the flat model cannot express.
  double ns_per_byte_node_link = 0.125;

  /// Per-byte time on upper-tier links (fat-tree pod up/down links into the
  /// core, dragonfly per-group global links). The tier taper multiplies this.
  double ns_per_byte_tier_link = 0.125;

  /// Extra one-way latency per traversed upper-tier link (switch hop beyond
  /// the base inter-node latency): a fat-tree inter-pod path adds two of
  /// these (up through the core and back down), a dragonfly inter-group
  /// minimal path adds one per global-link endpoint.
  util::SimTime latency_tier_hop = util::nanoseconds(300);

  /// A Cray-Aries-class calibration (matches the defaults above).
  [[nodiscard]] static NetworkConfig aries_like() noexcept { return {}; }

  /// An idealized zero-latency infinite-bandwidth network (for unit tests
  /// that want pure semantics without timing).
  [[nodiscard]] static NetworkConfig ideal() noexcept;

  /// An Aries-like machine whose upper tier is oversubscribed 4:1 — the
  /// "bisection bites" calibration the paper's exascale argument targets.
  [[nodiscard]] static NetworkConfig slim_bisection() noexcept;

  [[nodiscard]] bool same_node(int rank_a, int rank_b) const noexcept {
    if (ranks_per_node <= 0) return false;
    return rank_a / ranks_per_node == rank_b / ranks_per_node;
  }

  [[nodiscard]] util::SimTime wire_latency(int src, int dst) const noexcept {
    return same_node(src, dst) ? latency_intra_node : latency;
  }

  [[nodiscard]] double byte_time(int src, int dst) const noexcept {
    return same_node(src, dst) ? ns_per_byte_intra_node : ns_per_byte;
  }

  /// Pure (stateless) end-to-end cost of one uncontended message: the LogGP
  /// sum o_s + g + n*G + L + o_r. Used by tests and the analytic model.
  /// Shared-link serialization is stateful and excluded by design.
  [[nodiscard]] util::SimTime uncontended_cost(int src, int dst,
                                               std::size_t bytes) const noexcept;
};

}  // namespace ds::net
