// Pluggable machine topology: maps (src rank, dst rank) to the sequence of
// *shared* links the message crosses, so net::Fabric can serialize traffic
// through them and congestion emerges where real machines feel it — node
// up-links and the tapered upper tier — not just at endpoint NICs.
//
// Link namespace (ids are dense, 0-based):
//
//   [0, nodes)                node up-links   (node -> first switch tier)
//   [nodes, 2*nodes)          node down-links (first switch tier -> node)
//   [2*nodes, 2*nodes+pods)   tier up-links   (pod/group -> core/global)
//   [.., 2*nodes+2*pods)      tier down-links (core/global -> pod/group)
//
// Routes (deterministic minimal paths; adaptive routing is out of scope):
//
//   Flat       — every path is empty: contention only at endpoint ports.
//   TwoLevel   — inter-node: src node up-link, dst node down-link.
//   FatTree    — adds pod links for inter-pod paths, plus two tier-hop
//                latencies for the core traversal.
//   Dragonfly  — inter-group minimal route: the group-to-group global link is
//                modeled as the source group's up-link plus the destination
//                group's down-link, with one tier-hop latency.
//
// The topology itself is stateless; Fabric owns per-link occupancy.
#pragma once

#include <array>
#include <string>

#include "net/network.hpp"
#include "util/time.hpp"

namespace ds::net {

/// The shared links one message crosses, in traversal order. At most four
/// (node up, tier up, tier down, node down) under all supported families.
struct LinkPath {
  std::array<int, 4> links{};
  int count = 0;
  /// Extra one-way latency from upper-tier switch hops on this route.
  util::SimTime extra_latency = 0;

  void push(int link) { links[static_cast<std::size_t>(count++)] = link; }
  [[nodiscard]] bool empty() const noexcept { return count == 0; }
};

class Topology {
 public:
  Topology(const NetworkConfig& config, int endpoints);

  /// The shared-link route from src to dst. Same-node traffic (and every
  /// path under the flat family) crosses no shared links.
  [[nodiscard]] LinkPath route(int src, int dst) const noexcept;

  [[nodiscard]] const TopologyConfig& config() const noexcept { return topo_; }
  [[nodiscard]] int endpoints() const noexcept { return endpoints_; }
  [[nodiscard]] int node_count() const noexcept { return nodes_; }
  [[nodiscard]] int pod_count() const noexcept { return pods_; }
  /// Total shared links in this machine (0 for flat).
  [[nodiscard]] int link_count() const noexcept { return link_count_; }

  [[nodiscard]] int node_of(int rank) const noexcept {
    return ranks_per_node_ > 0 ? rank / ranks_per_node_ : rank;
  }
  [[nodiscard]] int pod_of(int rank) const noexcept {
    return node_of(rank) / nodes_per_pod_;
  }

  // Link-id accessors (valid only for non-flat topologies).
  [[nodiscard]] int node_up_link(int node) const noexcept { return node; }
  [[nodiscard]] int node_down_link(int node) const noexcept { return nodes_ + node; }
  [[nodiscard]] int tier_up_link(int pod) const noexcept { return 2 * nodes_ + pod; }
  [[nodiscard]] int tier_down_link(int pod) const noexcept {
    return 2 * nodes_ + pods_ + pod;
  }

  /// Per-byte time on a link, with the config's tapers applied.
  [[nodiscard]] double link_ns_per_byte(int link) const noexcept;

  /// Human-readable link name, e.g. "node3:up" or "pod1:down" (diagnostics).
  [[nodiscard]] std::string link_name(int link) const;

 private:
  [[nodiscard]] bool tier_link(int link) const noexcept { return link >= 2 * nodes_; }

  TopologyConfig topo_;
  int endpoints_ = 0;
  int ranks_per_node_ = 0;
  int nodes_ = 0;
  int nodes_per_pod_ = 1;
  int pods_ = 0;
  int link_count_ = 0;
  double node_link_ns_ = 0.0;  // ns/byte incl. taper
  double tier_link_ns_ = 0.0;  // ns/byte incl. taper
  util::SimTime tier_hop_latency_ = 0;
};

}  // namespace ds::net
