#include "net/network.hpp"

#include <stdexcept>

namespace ds::net {

const char* TopologyConfig::name() const noexcept {
  switch (kind) {
    case Kind::Flat: return "flat";
    case Kind::TwoLevel: return "twolevel";
    case Kind::FatTree: return "fattree";
    case Kind::Dragonfly: return "dragonfly";
  }
  return "?";
}

TopologyConfig TopologyConfig::named(const std::string& name) {
  TopologyConfig t;
  if (name == "flat") {
    t.kind = Kind::Flat;
  } else if (name == "twolevel" || name == "two-level") {
    t.kind = Kind::TwoLevel;
  } else if (name == "fattree" || name == "fat-tree") {
    t.kind = Kind::FatTree;
  } else if (name == "dragonfly") {
    t.kind = Kind::Dragonfly;
  } else {
    throw std::invalid_argument(
        "TopologyConfig: unknown topology '" + name +
        "' (expected flat, twolevel, fattree, or dragonfly)");
  }
  return t;
}

NetworkConfig NetworkConfig::ideal() noexcept {
  NetworkConfig c;
  c.latency = 0;
  c.latency_intra_node = 0;
  c.ns_per_byte = 0.0;
  c.ns_per_byte_intra_node = 0.0;
  c.send_overhead = 0;
  c.recv_overhead = 0;
  c.injection_gap = 0;
  c.receiver_drain_factor = 0.0;
  c.coll_post_ns_per_peer = 0.0;
  c.ns_per_byte_node_link = 0.0;
  c.ns_per_byte_tier_link = 0.0;
  c.latency_tier_hop = 0;
  return c;
}

NetworkConfig NetworkConfig::slim_bisection() noexcept {
  NetworkConfig c;
  c.topology.kind = TopologyConfig::Kind::FatTree;
  c.topology.tier_link_taper = 4.0;
  return c;
}

util::SimTime NetworkConfig::uncontended_cost(int src, int dst,
                                              std::size_t bytes) const noexcept {
  const double payload = byte_time(src, dst) * static_cast<double>(bytes);
  return send_overhead + injection_gap + static_cast<util::SimTime>(payload) +
         wire_latency(src, dst) + recv_overhead;
}

}  // namespace ds::net
