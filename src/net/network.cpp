#include "net/network.hpp"

namespace ds::net {

NetworkConfig NetworkConfig::ideal() noexcept {
  NetworkConfig c;
  c.latency = 0;
  c.latency_intra_node = 0;
  c.ns_per_byte = 0.0;
  c.ns_per_byte_intra_node = 0.0;
  c.send_overhead = 0;
  c.recv_overhead = 0;
  c.injection_gap = 0;
  c.receiver_drain_factor = 0.0;
  c.coll_post_ns_per_peer = 0.0;
  return c;
}

util::SimTime NetworkConfig::uncontended_cost(int src, int dst,
                                              std::size_t bytes) const noexcept {
  const double payload = byte_time(src, dst) * static_cast<double>(bytes);
  return send_overhead + injection_gap + static_cast<util::SimTime>(payload) +
         wire_latency(src, dst) + recv_overhead;
}

}  // namespace ds::net
