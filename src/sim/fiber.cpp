#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>

namespace ds::sim {

namespace {
thread_local Fiber* t_current_fiber = nullptr;

[[nodiscard]] std::size_t page_size() {
  static const auto size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

[[nodiscard]] std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t p = page_size();
  return (bytes + p - 1) / p * p;
}
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  const std::size_t stack = round_up_pages(stack_bytes);
  map_bytes_ = stack + page_size();  // one guard page below the stack
  stack_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (stack_ == MAP_FAILED) {
    stack_ = nullptr;
    throw std::runtime_error("Fiber: mmap of stack failed");
  }
  if (::mprotect(stack_, page_size(), PROT_NONE) != 0) {
    ::munmap(stack_, map_bytes_);
    stack_ = nullptr;
    throw std::runtime_error("Fiber: mprotect of guard page failed");
  }

  if (::getcontext(&context_) != 0)
    throw std::runtime_error("Fiber: getcontext failed");
  context_.uc_stack.ss_sp = static_cast<char*>(stack_) + page_size();
  context_.uc_stack.ss_size = stack;
  context_.uc_link = &return_context_;  // falling off the end returns to resumer

  // makecontext only forwards ints; split `this` across two unsigned halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xFFFFFFFFu));
}

Fiber::~Fiber() {
  if (stack_) ::munmap(stack_, map_bytes_);
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self_bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self_bits)->run_body();
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
  finished_ = true;
  // uc_link takes control back to return_context_ when this function returns.
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("Fiber::resume on finished fiber");
  Fiber* previous = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
  if (::swapcontext(&return_context_, &context_) != 0)
    throw std::runtime_error("Fiber: swapcontext into fiber failed");
  t_current_fiber = previous;
  if (finished_ && pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* self = t_current_fiber;
  if (!self) throw std::logic_error("Fiber::yield called outside any fiber");
  if (::swapcontext(&self->context_, &self->return_context_) != 0)
    throw std::runtime_error("Fiber: swapcontext out of fiber failed");
}

bool Fiber::in_fiber() noexcept { return t_current_fiber != nullptr; }

}  // namespace ds::sim
