#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>

#ifdef DS_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace ds::sim {

namespace {
thread_local Fiber* t_current_fiber = nullptr;

[[nodiscard]] std::size_t page_size() {
  static const auto size = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return size;
}

[[nodiscard]] std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t p = page_size();
  return (bytes + p - 1) / p * p;
}

/// ASan-instrumented frames carry redzones and bookkeeping that inflate
/// stack use severalfold; scale fiber stacks so sanitizer CI runs the same
/// programs without tripping the guard page.
[[nodiscard]] std::size_t scaled_stack_bytes(std::size_t bytes) {
#ifdef DS_FIBER_ASAN
  return bytes * 4;
#else
  return bytes;
#endif
}
}  // namespace

#if DS_FIBER_RAW_X86_64

// ---- raw x86-64 switch ------------------------------------------------------
// System V ABI: a cooperative switch only needs the callee-saved registers
// (rbp, rbx, r12-r15), the SSE and x87 control words, and the stack pointer.
// Everything is pushed onto the outgoing stack, the stack pointers swap, and
// `ret` continues the incoming context — no kernel entry, unlike glibc's
// swapcontext (which issues rt_sigprocmask on every switch).
//
// ds_fiber_switch(void** save_sp, void* restore_sp)
asm(R"(
.text
.globl ds_fiber_switch
.hidden ds_fiber_switch
.type ds_fiber_switch, @function
.align 16
ds_fiber_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq $8, %rsp
  stmxcsr (%rsp)
  fnstcw 4(%rsp)
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  ldmxcsr (%rsp)
  fldcw 4(%rsp)
  addq $8, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  retq
.size ds_fiber_switch, .-ds_fiber_switch
)");

// First activation lands here via the `retq` above, with the Fiber* parked
// in r12 by the initial stack image. The shim restores 16-byte call
// alignment and enters C++; the body must never return through the shim.
asm(R"(
.text
.globl ds_fiber_entry_shim
.hidden ds_fiber_entry_shim
.type ds_fiber_entry_shim, @function
.align 16
ds_fiber_entry_shim:
  movq %r12, %rdi
  subq $8, %rsp
  call ds_fiber_entry@PLT
  ud2
.size ds_fiber_entry_shim, .-ds_fiber_entry_shim
)");

extern "C" {
void ds_fiber_switch(void** save_sp, void* restore_sp) noexcept;
void ds_fiber_entry_shim() noexcept;
void ds_fiber_entry(void* fiber) noexcept;
}

void fiber_entry_thunk(Fiber* fiber) {
#ifdef DS_FIBER_ASAN
  // First activation: tell ASan the switch from the host stack completed,
  // learning the host stack bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &fiber->asan_host_bottom_,
                                  &fiber->asan_host_size_);
#endif
  fiber->run_body();
  // Return control to the resumer for good; resuming a finished fiber is an
  // error caught in resume(), so this switch never comes back.
  for (;;) Fiber::yield();
}

extern "C" void ds_fiber_entry(void* fiber) noexcept {
  fiber_entry_thunk(static_cast<Fiber*>(fiber));
}

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  const std::size_t stack = round_up_pages(scaled_stack_bytes(stack_bytes));
  map_bytes_ = stack + page_size();  // one guard page below the stack
  stack_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (stack_ == MAP_FAILED) {
    stack_ = nullptr;
    throw std::runtime_error("Fiber: mmap of stack failed");
  }
  if (::mprotect(stack_, page_size(), PROT_NONE) != 0) {
    ::munmap(stack_, map_bytes_);
    stack_ = nullptr;
    throw std::runtime_error("Fiber: mprotect of guard page failed");
  }

  // Build the initial stack image ds_fiber_switch will restore from: the
  // control-word slot, six callee-saved registers (r12 carries `this` into
  // the entry shim), the shim as the `ret` target, and a null terminator
  // frame above it.
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));

  auto top = reinterpret_cast<std::uintptr_t>(stack_) + page_size() + stack;
  top &= ~static_cast<std::uintptr_t>(15);  // 16-byte aligned stack top
  auto* sp = reinterpret_cast<std::uint64_t*>(top);
  *--sp = 0;  // fake return address: stops unwinders, keeps shim alignment
  *--sp = reinterpret_cast<std::uint64_t>(&ds_fiber_entry_shim);  // ret target
  *--sp = 0;                                    // rbp
  *--sp = 0;                                    // rbx
  *--sp = reinterpret_cast<std::uint64_t>(this);  // r12 -> entry shim arg
  *--sp = 0;                                    // r13
  *--sp = 0;                                    // r14
  *--sp = 0;                                    // r15
  *--sp = static_cast<std::uint64_t>(mxcsr) |
          (static_cast<std::uint64_t>(fcw) << 32);  // control words
  fiber_sp_ = sp;
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("Fiber::resume on finished fiber");
  Fiber* previous = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
#ifdef DS_FIBER_ASAN
  __sanitizer_start_switch_fiber(&asan_host_fake_,
                                 static_cast<char*>(stack_) + page_size(),
                                 map_bytes_ - page_size());
#endif
  ds_fiber_switch(&host_sp_, fiber_sp_);
#ifdef DS_FIBER_ASAN
  __sanitizer_finish_switch_fiber(asan_host_fake_, nullptr, nullptr);
#endif
  t_current_fiber = previous;
  if (finished_ && pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* self = t_current_fiber;
  if (!self) throw std::logic_error("Fiber::yield called outside any fiber");
#ifdef DS_FIBER_ASAN
  // A finished fiber never runs again: passing null releases its fake stack.
  __sanitizer_start_switch_fiber(
      self->finished_ ? nullptr : &self->asan_fiber_fake_,
      self->asan_host_bottom_, self->asan_host_size_);
#endif
  ds_fiber_switch(&self->fiber_sp_, self->host_sp_);
#ifdef DS_FIBER_ASAN
  __sanitizer_finish_switch_fiber(self->asan_fiber_fake_,
                                  &self->asan_host_bottom_,
                                  &self->asan_host_size_);
#endif
}

#else  // !DS_FIBER_RAW_X86_64: portable ucontext implementation

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)) {
  const std::size_t stack = round_up_pages(scaled_stack_bytes(stack_bytes));
  map_bytes_ = stack + page_size();  // one guard page below the stack
  stack_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (stack_ == MAP_FAILED) {
    stack_ = nullptr;
    throw std::runtime_error("Fiber: mmap of stack failed");
  }
  if (::mprotect(stack_, page_size(), PROT_NONE) != 0) {
    ::munmap(stack_, map_bytes_);
    stack_ = nullptr;
    throw std::runtime_error("Fiber: mprotect of guard page failed");
  }

  if (::getcontext(&context_) != 0)
    throw std::runtime_error("Fiber: getcontext failed");
  context_.uc_stack.ss_sp = static_cast<char*>(stack_) + page_size();
  context_.uc_stack.ss_size = stack;
  context_.uc_link = &return_context_;  // falling off the end returns to resumer

  // makecontext only forwards ints; split `this` across two unsigned halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xFFFFFFFFu));
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self_bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self_bits)->run_body();
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("Fiber::resume on finished fiber");
  Fiber* previous = t_current_fiber;
  t_current_fiber = this;
  started_ = true;
  if (::swapcontext(&return_context_, &context_) != 0)
    throw std::runtime_error("Fiber: swapcontext into fiber failed");
  t_current_fiber = previous;
  if (finished_ && pending_exception_) {
    auto ex = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* self = t_current_fiber;
  if (!self) throw std::logic_error("Fiber::yield called outside any fiber");
  if (::swapcontext(&self->context_, &self->return_context_) != 0)
    throw std::runtime_error("Fiber: swapcontext out of fiber failed");
}

#endif  // DS_FIBER_RAW_X86_64

Fiber::~Fiber() {
  if (stack_) ::munmap(stack_, map_bytes_);
}

void Fiber::run_body() {
  try {
    body_();
  } catch (...) {
    pending_exception_ = std::current_exception();
  }
  finished_ = true;
  // ucontext: uc_link takes control back to return_context_ on return.
  // Raw x86-64: fiber_entry_thunk yields back to the resumer.
}

bool Fiber::in_fiber() noexcept { return t_current_fiber != nullptr; }

}  // namespace ds::sim
