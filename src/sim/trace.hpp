// Per-rank execution traces, the simulator's answer to HPCToolkit.
//
// Paper Fig. 2 is a trace view of iPIC3D before/after decoupling: grey
// compute intervals, blue particle-communication intervals, idle gaps. The
// recorder collects labeled [begin, end) intervals per rank; renderers emit
// CSV (for plotting) and an ASCII timeline (one row per rank) that makes the
// pipelining visible in a terminal.
#pragma once

#include <string>
#include <vector>

#include "util/time.hpp"

namespace ds::sim {

struct TraceInterval {
  int rank = 0;
  util::SimTime begin = 0;
  util::SimTime end = 0;
  std::string label;
};

class TraceRecorder {
 public:
  /// Open a labeled interval on `rank` at time `t`. Intervals may nest; the
  /// innermost open interval is the one closed by end().
  void begin(int rank, util::SimTime t, std::string label);
  /// Close the innermost open interval on `rank` at time `t`.
  void end(int rank, util::SimTime t);

  [[nodiscard]] const std::vector<TraceInterval>& intervals() const noexcept {
    return intervals_;
  }
  /// Total recorded time on `rank` across intervals whose label matches.
  [[nodiscard]] util::SimTime total(int rank, const std::string& label) const;

  [[nodiscard]] std::string to_csv() const;

  /// One text row per rank; each column is a time bucket filled with the
  /// first letter of the dominant label ('.' = idle). `width` buckets span
  /// [0, makespan].
  [[nodiscard]] std::string to_ascii(int width = 96) const;

  void clear();

 private:
  struct Open {
    int rank;
    util::SimTime begin;
    std::string label;
  };
  std::vector<TraceInterval> intervals_;
  std::vector<std::vector<Open>> open_;  // indexed by rank
};

}  // namespace ds::sim
