#include "sim/noise.hpp"

#include <cmath>

namespace ds::sim {

NoiseModel::NoiseModel(NoiseConfig config) noexcept : config_(config) {
  if (config_.jitter_cv > 0.0) {
    // Lognormal with mean exactly 1: sigma^2 = ln(1 + cv^2), mu = -sigma^2/2.
    const double sigma_sq = std::log(1.0 + config_.jitter_cv * config_.jitter_cv);
    lognormal_sigma_ = std::sqrt(sigma_sq);
    lognormal_mu_ = -0.5 * sigma_sq;
  }
}

util::SimTime NoiseModel::perturb(util::SimTime nominal, util::Rng& rng,
                                  double degrade) const {
  if (nominal <= 0) return 0;
  if (degrade > 1.0)
    nominal = static_cast<util::SimTime>(static_cast<double>(nominal) * degrade);
  if (!config_.enabled()) return nominal;

  double duration = static_cast<double>(nominal);
  if (config_.jitter_cv > 0.0)
    duration *= rng.lognormal(lognormal_mu_, lognormal_sigma_);

  if (config_.detour_rate_hz > 0.0 && config_.detour_mean > 0) {
    // Poisson arrivals over the (jittered) busy interval, sampled by walking
    // exponential inter-arrival gaps. Bounded by construction: each iteration
    // consumes forward progress through the interval.
    const double interval_s = duration * 1e-9;
    const double mean_gap_s = 1.0 / config_.detour_rate_hz;
    double position_s = rng.exponential(mean_gap_s);
    while (position_s < interval_s) {
      duration += rng.exponential(static_cast<double>(config_.detour_mean));
      position_s += rng.exponential(mean_gap_s);
    }
  }
  return duration <= 0.0 ? 0 : static_cast<util::SimTime>(duration);
}

}  // namespace ds::sim
