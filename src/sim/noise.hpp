// System-noise / process-imbalance model.
//
// The paper's central premise (Sec. I, II-A) is that on large machines OS
// noise and workload skew make equal work take unequal time, and that the
// idle time waiting for delayed peers compounds at scale. We model two
// mechanisms, both deterministic under the per-rank RNG:
//
//  * multiplicative jitter — every compute segment is scaled by a lognormal
//    factor with mean 1 and a configurable coefficient of variation; models
//    frequency/temperature variance and cache interference;
//  * detours — Poisson-arriving preemptions (daemons, kernel ticks) that add
//    an exponentially distributed delay; models the heavy tail seen on real
//    nodes (Petrini et al., "the missing supercomputer performance").
#pragma once

#include "util/rng.hpp"
#include "util/time.hpp"

namespace ds::sim {

struct NoiseConfig {
  /// Coefficient of variation of the multiplicative jitter (0 = no jitter).
  double jitter_cv = 0.0;
  /// Mean detour arrivals per simulated second of compute (0 = no detours).
  double detour_rate_hz = 0.0;
  /// Mean duration of one detour.
  util::SimTime detour_mean = util::microseconds(500);

  [[nodiscard]] bool enabled() const noexcept {
    return jitter_cv > 0.0 || detour_rate_hz > 0.0;
  }

  /// A calibration resembling a busy production Linux node: ~8% run-to-run
  /// spread plus ~30 detours/s of 500us mean (harmonic daemons and ticks).
  [[nodiscard]] static NoiseConfig production_node() noexcept {
    return NoiseConfig{0.08, 30.0, util::microseconds(500)};
  }
};

class NoiseModel {
 public:
  NoiseModel() = default;
  explicit NoiseModel(NoiseConfig config) noexcept;

  /// Perturb a nominal compute duration. Always >= 0; equals nominal when
  /// the model is disabled. Deterministic given the RNG state.
  ///
  /// `degrade` composes fault-injected degradation (>= 1, see
  /// sim::FaultPlan) with the noise model: the nominal duration is scaled
  /// first, then jitter and detours apply to the slowed interval — a
  /// degraded rank still sees proportional OS noise on top of its slowdown.
  [[nodiscard]] util::SimTime perturb(util::SimTime nominal, util::Rng& rng,
                                      double degrade = 1.0) const;

  [[nodiscard]] const NoiseConfig& config() const noexcept { return config_; }

 private:
  NoiseConfig config_{};
  double lognormal_mu_ = 0.0;
  double lognormal_sigma_ = 0.0;
};

}  // namespace ds::sim
