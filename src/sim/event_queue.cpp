#include "sim/event_queue.hpp"

#include <utility>

namespace ds::sim {

std::uint64_t EventQueue::push(util::SimTime t, Callback action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{t, seq, std::move(action)});
  // Hole-based sift-up: lift the new event out once, slide later parents
  // down into the hole, and place the event at its final slot.
  std::size_t i = heap_.size() - 1;
  if (i > 0) {
    Event entry = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(entry, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(entry);
  }
  return seq;
}

Event EventQueue::pop() {
  Event top = std::move(heap_.front());
  if (heap_.size() == 1) {
    // Single event: back() aliases front(); filling the hole would self-move.
    heap_.pop_back();
    return top;
  }
  Event tail = std::move(heap_.back());
  heap_.pop_back();
  // Hole-based sift-down from the root: pull the smaller child up into the
  // hole until the displaced tail event fits, then place it once.
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    const std::size_t child =
        (right < n && before(heap_[right], heap_[left])) ? right : left;
    if (!before(heap_[child], tail)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(tail);
  return top;
}

util::SimTime EventQueue::next_time() const noexcept {
  return heap_.empty() ? util::kTimeInfinity : heap_.front().time;
}

}  // namespace ds::sim
