#include "sim/event_queue.hpp"

#include <utility>

namespace ds::sim {

std::uint64_t EventQueue::push(util::SimTime t, std::function<void()> action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{t, seq, std::move(action)});
  sift_up(heap_.size() - 1);
  return seq;
}

Event EventQueue::pop() {
  Event top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

util::SimTime EventQueue::next_time() const noexcept {
  return heap_.empty() ? util::kTimeInfinity : heap_.front().time;
}

void EventQueue::sift_up(std::size_t i) noexcept {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    std::size_t smallest = i;
    if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace ds::sim
