// Cooperative user-level fibers.
//
// Every simulated MPI rank runs as a fiber, so application code reads like
// ordinary blocking MPI code while the discrete-event engine multiplexes
// thousands of ranks on one OS thread. Stacks are mmap-ed with a PROT_NONE
// guard page below, so a rank that overflows its stack faults immediately
// instead of corrupting a neighbour.
//
// On x86-64 the context switch is a hand-rolled callee-saved-register swap
// (boost::context style): glibc's swapcontext saves and restores the signal
// mask with an rt_sigprocmask syscall per switch, which costs more than the
// entire simulate-one-element hot path. Other architectures keep the
// portable ucontext implementation.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

#if defined(__x86_64__) && (defined(__linux__) || defined(__unix__))
#define DS_FIBER_RAW_X86_64 1
#else
#include <ucontext.h>
#endif

// AddressSanitizer needs to be told about manual stack switches (its shadow
// stack and fake-stack machinery track one stack per thread): every switch
// is bracketed with __sanitizer_start/finish_switch_fiber, and fiber stacks
// are scaled up for the instrumented frames' extra footprint.
#if defined(__SANITIZE_ADDRESS__)
#define DS_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DS_FIBER_ASAN 1
#endif
#endif

namespace ds::sim {

class Fiber {
 public:
  /// 64 KiB is enough for the bundled apps; raise via EngineConfig for deep
  /// call chains. 8,192 ranks at the default cost 512 MiB of address space.
  static constexpr std::size_t kDefaultStackBytes = 64 * 1024;

  explicit Fiber(std::function<void()> body,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the calling context into the fiber; returns when the fiber
  /// yields or finishes. Rethrows any exception that escaped the fiber body.
  void resume();

  /// Must be called from inside a fiber: switch back to whoever resumed it.
  static void yield();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// True when the calling code is executing inside some fiber.
  [[nodiscard]] static bool in_fiber() noexcept;

 private:
  void run_body();

  std::function<void()> body_;
  void* stack_ = nullptr;          // mmap base (guard page + stack)
  std::size_t map_bytes_ = 0;
#if DS_FIBER_RAW_X86_64
  friend void fiber_entry_thunk(Fiber* fiber);
  void* fiber_sp_ = nullptr;  ///< fiber's saved stack pointer while yielded
  void* host_sp_ = nullptr;   ///< resumer's saved stack pointer while running
#ifdef DS_FIBER_ASAN
  void* asan_host_fake_ = nullptr;   ///< host's fake stack while fiber runs
  void* asan_fiber_fake_ = nullptr;  ///< fiber's fake stack while yielded
  const void* asan_host_bottom_ = nullptr;  ///< host stack, learned on entry
  std::size_t asan_host_size_ = 0;
#endif
#else
  static void trampoline(unsigned hi, unsigned lo);
  ucontext_t context_{};
  ucontext_t return_context_{};
#endif
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr pending_exception_;
};

}  // namespace ds::sim
