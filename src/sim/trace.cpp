#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace ds::sim {

void TraceRecorder::begin(int rank, util::SimTime t, std::string label) {
  if (rank < 0) return;
  if (static_cast<std::size_t>(rank) >= open_.size()) open_.resize(rank + 1);
  open_[rank].push_back(Open{rank, t, std::move(label)});
}

void TraceRecorder::end(int rank, util::SimTime t) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= open_.size() ||
      open_[rank].empty())
    return;
  Open o = std::move(open_[rank].back());
  open_[rank].pop_back();
  intervals_.push_back(TraceInterval{o.rank, o.begin, t, std::move(o.label)});
}

util::SimTime TraceRecorder::total(int rank, const std::string& label) const {
  util::SimTime sum = 0;
  for (const auto& iv : intervals_)
    if (iv.rank == rank && iv.label == label) sum += iv.end - iv.begin;
  return sum;
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream out;
  out << "rank,begin_ns,end_ns,label\n";
  for (const auto& iv : intervals_)
    out << iv.rank << ',' << iv.begin << ',' << iv.end << ',' << iv.label << '\n';
  return out.str();
}

std::string TraceRecorder::to_ascii(int width) const {
  if (intervals_.empty() || width <= 0) return {};
  int max_rank = 0;
  util::SimTime makespan = 1;
  for (const auto& iv : intervals_) {
    max_rank = std::max(max_rank, iv.rank);
    makespan = std::max(makespan, iv.end);
  }
  std::vector<std::string> rows(max_rank + 1, std::string(width, '.'));
  // Later-recorded intervals win a bucket; since nested inner intervals are
  // recorded before their enclosing outer interval finishes... record order is
  // end order, so paint outer (ends later) after inner would overwrite the
  // detail. Paint longest-first so fine-grained intervals stay visible.
  std::vector<const TraceInterval*> sorted;
  sorted.reserve(intervals_.size());
  for (const auto& iv : intervals_) sorted.push_back(&iv);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceInterval* a, const TraceInterval* b) {
                     return (a->end - a->begin) > (b->end - b->begin);
                   });
  for (const TraceInterval* iv : sorted) {
    const char mark = iv->label.empty() ? '?' : iv->label.front();
    auto bucket = [&](util::SimTime t) {
      auto b = static_cast<long>(static_cast<double>(t) / static_cast<double>(makespan) * width);
      return std::clamp<long>(b, 0, width - 1);
    };
    const long from = bucket(iv->begin);
    const long to = std::max(from, bucket(iv->end - 1));
    for (long c = from; c <= to; ++c) rows[iv->rank][static_cast<std::size_t>(c)] = mark;
  }
  std::ostringstream out;
  for (int r = 0; r <= max_rank; ++r)
    out << 'P' << r << (r < 10 ? "  |" : " |") << rows[r] << "|\n";
  return out.str();
}

void TraceRecorder::clear() {
  intervals_.clear();
  open_.clear();
}

}  // namespace ds::sim
