// Small-buffer-optimized, move-only callable for simulator events and
// completion continuations.
//
// The engine schedules millions of events per simulated second, almost all
// of them lambdas capturing two or three pointers (an engine/machine pointer
// plus an op handle). std::function heap-allocates those on every schedule
// (libstdc++ stores only pointer-like trivially-copyable callables inline),
// which dominated the simulate-one-element hot path. Callback keeps any
// nothrow-movable callable up to kInlineBytes in place and falls back to the
// heap only for oversized captures.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace ds::sim {

class Callback {
 public:
  /// Inline capture budget: eight pointers' worth, enough for every lambda
  /// the runtime schedules (the largest captures a machine pointer and two
  /// op handles) and for a moved-in std::function shell.
  static constexpr std::size_t kInlineBytes = 64;

  Callback() noexcept {}
  Callback(std::nullptr_t) noexcept {}

  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                 std::is_invocable_r_v<void, std::decay_t<F>&>,
                             int> = 0>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): callable adapter
    emplace(std::forward<F>(f));
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Invoke the callable. Empty callbacks throw (matching std::function)
  /// rather than dereferencing a null vtable.
  void operator()() {
    if (vtable_ == nullptr) throw std::bad_function_call{};
    vtable_->invoke(target());
  }

  void reset() noexcept {
    if (vtable_ == nullptr) return;
    vtable_->destroy(target());
    vtable_ = nullptr;
  }

 private:
  struct VTable {
    void (*invoke)(void* f);
    /// Move-construct the callable into `to` and destroy the source.
    /// Null for heap-stored callables (the pointer moves instead).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* f) noexcept;
    bool heap;
  };

  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  struct InlineVT {
    static void invoke(void* f) { (*static_cast<F*>(f))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) F(std::move(*static_cast<F*>(from)));
      static_cast<F*>(from)->~F();
    }
    static void destroy(void* f) noexcept { static_cast<F*>(f)->~F(); }
    static constexpr VTable kVT{&invoke, &relocate, &destroy, /*heap=*/false};
  };

  template <typename F>
  struct HeapVT {
    static void invoke(void* f) { (*static_cast<F*>(f))(); }
    static void destroy(void* f) noexcept { delete static_cast<F*>(f); }
    static constexpr VTable kVT{&invoke, nullptr, &destroy, /*heap=*/true};
  };

  template <typename Fwd>
  void emplace(Fwd&& f) {
    using F = std::decay_t<Fwd>;
    if constexpr (kFitsInline<F>) {
      ::new (static_cast<void*>(inline_)) F(std::forward<Fwd>(f));
      vtable_ = &InlineVT<F>::kVT;
    } else {
      heap_ = new F(std::forward<Fwd>(f));
      vtable_ = &HeapVT<F>::kVT;
    }
  }

  void move_from(Callback& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ == nullptr) return;
    if (vtable_->heap)
      heap_ = other.heap_;
    else
      vtable_->relocate(other.inline_, inline_);
    other.vtable_ = nullptr;
  }

  [[nodiscard]] void* target() noexcept {
    return vtable_->heap ? heap_ : static_cast<void*>(inline_);
  }

  const VTable* vtable_ = nullptr;
  union {
    alignas(std::max_align_t) std::byte inline_[kInlineBytes];
    void* heap_;
  };
};

}  // namespace ds::sim
