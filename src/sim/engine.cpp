#include "sim/engine.hpp"

#include <sstream>
#include <stdexcept>

namespace ds::sim {

util::SimTime Process::now() const noexcept { return engine_->now(); }

void Process::advance(util::SimTime d) {
  if (d < 0) throw std::logic_error("Process::advance: negative duration");
  if (engine_->current() != this)
    throw std::logic_error("Process::advance called from outside the process");
  Engine& eng = *engine_;
  const int pid = id_;
  eng.schedule(eng.now() + d, [&eng, pid] { eng.wake(pid); });
  // Consume any stray wake token first so we sleep for the full duration:
  // advance() models busy CPU time, not interruptible waiting.
  state_ = State::Suspended;
  Fiber::yield();
}

void Process::compute(util::SimTime nominal, const char* label) {
  const util::SimTime d = engine_->noise().perturb(nominal, rng_, degrade_);
  trace_begin(label, obs::SpanKind::Compute);
  advance(d);
  trace_end();
}

void Process::suspend() {
  if (engine_->current() != this)
    throw std::logic_error("Process::suspend called from outside the process");
  if (wake_pending_) {
    wake_pending_ = false;
    return;
  }
  state_ = State::Suspended;
  Fiber::yield();
}

void Process::trace_begin(const char* label, obs::SpanKind kind) {
  if (auto* t = engine_->trace())
    t->begin(trace_rank_, engine_->now(), label, kind);
}

void Process::trace_end() {
  if (auto* t = engine_->trace()) t->end(trace_rank_, engine_->now());
}

void Process::trace_instant(const char* name) {
  if (auto* t = engine_->trace()) t->instant(trace_rank_, engine_->now(), name);
}

Engine::Engine(EngineConfig config)
    : config_(config), noise_(config.noise) {
  if (config_.record_trace) trace_ = std::make_unique<obs::Recorder>();
}

Engine::~Engine() = default;

int Engine::spawn(std::function<void(Process&)> body) {
  const int pid = static_cast<int>(processes_.size());
  auto process = std::unique_ptr<Process>(new Process(this, pid, config_.seed));
  Process* p = process.get();
  p->fiber_ = std::make_unique<Fiber>(
      [p, body = std::move(body)] { body(*p); }, config_.stack_bytes);
  p->state_ = Process::State::Runnable;
  processes_.push_back(std::move(process));
  ++live_;
  schedule(clock_, [this, p] { resume_process(*p); });
  return pid;
}

void Engine::schedule(util::SimTime t, Callback action) {
  if (t < clock_) throw std::logic_error("Engine::schedule: time in the past");
  queue_.push(t, std::move(action));
}

void Engine::schedule_after(util::SimTime delay, Callback action) {
  schedule(clock_ + delay, std::move(action));
}

void Engine::wake(int pid) {
  Process& p = *processes_.at(static_cast<std::size_t>(pid));
  if (p.state_ == Process::State::Finished) return;
  if (p.state_ == Process::State::Suspended) {
    p.state_ = Process::State::Runnable;
    queue_.push(clock_, [this, pp = &p] { resume_process(*pp); });
  } else {
    // Not yet suspended: leave a token so the upcoming suspend doesn't sleep.
    p.wake_pending_ = true;
  }
}

void Engine::wake_at(int pid, util::SimTime t) {
  if (t < clock_) throw std::logic_error("Engine::wake_at: time in the past");
  Process* p = processes_.at(static_cast<std::size_t>(pid)).get();
  queue_.push(t, [this, p] {
    if (p->state_ == Process::State::Finished) return;
    if (p->state_ == Process::State::Suspended) {
      p->state_ = Process::State::Runnable;
      resume_process(*p);
    } else {
      // Not suspended at fire time: leave the usual token (see wake()).
      p->wake_pending_ = true;
    }
  });
}

void Engine::set_compute_degrade(int pid, double factor) {
  processes_.at(static_cast<std::size_t>(pid))->degrade_ =
      factor < 1.0 ? 1.0 : factor;
}

double Engine::compute_degrade(int pid) const {
  return processes_.at(static_cast<std::size_t>(pid))->degrade_;
}

void Engine::resume_process(Process& p) {
  if (p.state_ == Process::State::Finished) return;
  // A process can be woken twice (token + event). The second resume of an
  // already-running or runnable-but-moved-on process must be harmless.
  if (p.state_ != Process::State::Runnable) return;
  p.state_ = Process::State::Running;
  running_ = &p;
  p.fiber_->resume();  // rethrows process exceptions on this (host) stack
  running_ = nullptr;
  if (p.fiber_->finished()) {
    p.state_ = Process::State::Finished;
    --live_;
  }
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    clock_ = ev.time;
    ++events_executed_;
    ev.action();
  }
  if (live_ > 0) report_deadlock();
}

void Engine::report_deadlock() const {
  std::ostringstream msg;
  msg << "simulation deadlock at t=" << util::to_seconds(clock_) << "s; "
      << live_ << " process(es) still blocked:";
  int listed = 0;
  for (const auto& p : processes_) {
    if (p->state_ == Process::State::Finished) continue;
    msg << "\n  P" << p->id_ << ' '
        << (p->state_note_ != nullptr && *p->state_note_ != '\0'
                ? p->state_note_
                : "(no state note)");
    if (++listed >= 20) {
      msg << "\n  ... (" << live_ - 20 << " more)";
      break;
    }
  }
  throw DeadlockError(msg.str());
}

}  // namespace ds::sim
