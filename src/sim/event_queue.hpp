// Deterministic event queue: a binary min-heap ordered by (time, sequence).
//
// The sequence number makes the ordering a total order — two events at the
// same virtual instant fire in the order they were scheduled, on every
// platform, every run. std::priority_queue is avoided because its top() is
// const and would force copying the callback payloads out.
//
// Hot-path notes: actions are sim::Callback (small-buffer, no heap per
// event) and both sifts are hole-based — the displaced event is held in a
// local while parents/children shift into the hole, one move per level
// instead of the three a std::swap chain costs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "util/time.hpp"

namespace ds::sim {

struct Event {
  util::SimTime time = 0;
  std::uint64_t seq = 0;
  Callback action;
};

class EventQueue {
 public:
  /// Schedule `action` at absolute time `t`. Returns the event sequence id.
  std::uint64_t push(util::SimTime t, Callback action);

  /// Remove and return the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] util::SimTime next_time() const noexcept;

 private:
  [[nodiscard]] static bool before(const Event& a, const Event& b) noexcept {
    return a.time < b.time || (a.time == b.time && a.seq < b.seq);
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ds::sim
