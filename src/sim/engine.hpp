// Discrete-event engine multiplexing simulated ranks (fibers) over a virtual
// clock.
//
// Execution model:
//  * Every simulated process is a fiber; the engine runs on the host stack.
//  * Time only advances between events; while a fiber runs, the clock is
//    frozen at the event's timestamp (standard DES semantics).
//  * All cross-process interaction goes through scheduled events, so a run is
//    a pure function of (program, seed): same inputs, same event order, same
//    virtual times — on any machine.
//
// Blocking primitives for higher layers (the message-passing runtime):
//  * Process::advance(d)    — occupy the CPU for d of virtual time.
//  * Process::compute(d, l) — advance with noise applied and trace label l.
//  * Process::suspend()     — sleep until Engine::wake(pid); a wake arriving
//    before the suspend is not lost (binary token, condition-loop friendly).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/noise.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ds::sim {

class Engine;

struct EngineConfig {
  std::size_t stack_bytes = Fiber::kDefaultStackBytes;
  std::uint64_t seed = 42;
  NoiseConfig noise{};
  bool record_trace = false;
};

/// Raised when the event queue drains while processes are still blocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Handle a simulated process body uses to interact with the engine.
/// Only valid inside the fiber it was issued to.
class Process {
 public:
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] util::SimTime now() const noexcept;
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  /// Occupy this process for exactly `d` of virtual time (no noise).
  void advance(util::SimTime d);

  /// Occupy this process for `nominal` perturbed by the engine's noise model;
  /// records a Compute span labeled `label` when tracing is on.
  void compute(util::SimTime nominal, const char* label = "comp");

  /// Sleep until woken. Returns immediately (consuming the token) if a wake
  /// arrived since the last suspend.
  void suspend();

  /// Trace-section helpers (no-ops when tracing is off). The runtime layers
  /// auto-instrument their spans through these; applications rarely need
  /// them directly (compute() labels cover the usual case).
  void trace_begin(const char* label, obs::SpanKind kind = obs::SpanKind::Other);
  void trace_end();
  /// Record an instant event on this process's trace track (no-op when
  /// tracing is off).
  void trace_instant(const char* name);

  /// Trace track this process records spans on. Defaults to the engine pid;
  /// layers that respawn fibers (Machine::restart_rank) pin it to the world
  /// rank so every incarnation of a rank shares one track.
  void set_trace_rank(int rank) noexcept { trace_rank_ = rank; }
  [[nodiscard]] int trace_rank() const noexcept { return trace_rank_; }

  /// State tag shown in deadlock reports ("blocked in wait()"). Takes a
  /// string literal (or other static-storage string): the hot blocking
  /// primitives set it on every wait, and building a std::string there was
  /// a per-element heap allocation.
  void set_state_note(const char* note) { state_note_ = note; }

 private:
  friend class Engine;
  Process(Engine* engine, int id, std::uint64_t seed)
      : engine_(engine), id_(id), trace_rank_(id),
        rng_(util::Rng::for_stream(seed, static_cast<std::uint64_t>(id))) {}

  enum class State { Created, Runnable, Running, Suspended, Finished };

  Engine* engine_;
  int id_;
  int trace_rank_;
  util::Rng rng_;
  State state_ = State::Created;
  bool wake_pending_ = false;
  double degrade_ = 1.0;  ///< fault-injected compute slowdown (>= 1)
  const char* state_note_ = nullptr;
  std::unique_ptr<Fiber> fiber_;
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create a simulated process; `body` starts at the current virtual time.
  /// Returns the process id (dense, starting at 0).
  int spawn(std::function<void(Process&)> body);

  /// Schedule an action at absolute virtual time `t` (must be >= now()).
  /// Actions are small-buffer Callbacks: the typical pointer-capture lambda
  /// is stored inline, no heap allocation per event.
  void schedule(util::SimTime t, Callback action);
  void schedule_after(util::SimTime delay, Callback action);

  /// Wake a suspended process. Safe to call before the process suspends.
  void wake(int pid);

  /// Wake `pid` at absolute virtual time `t` (must be >= now()), fused into
  /// one event: the scheduled action resumes the process directly instead of
  /// enqueueing a second wake event at `t`. The building block for charging
  /// a receive overhead *at* the wake-up rather than as a separate advance
  /// (which costs its own event and context-switch pair). Same token
  /// semantics as wake() when the process is not suspended at `t`.
  void wake_at(int pid, util::SimTime t);

  /// Run until every process finished. Throws DeadlockError if the event
  /// queue drains first; propagates exceptions thrown by process bodies.
  void run();

  [[nodiscard]] util::SimTime now() const noexcept { return clock_; }
  [[nodiscard]] std::size_t process_count() const noexcept { return processes_.size(); }
  [[nodiscard]] std::size_t live_count() const noexcept { return live_; }
  [[nodiscard]] const NoiseModel& noise() const noexcept { return noise_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Process currently executing, or nullptr when the engine itself runs.
  [[nodiscard]] Process* current() noexcept { return running_; }

  /// Fault-injected compute slowdown for `pid` (>= 1, 1 = nominal): composed
  /// with the noise model by Process::compute. See sim::FaultPlan.
  void set_compute_degrade(int pid, double factor);
  [[nodiscard]] double compute_degrade(int pid) const;

  /// Span/instant recorder (ds::obs), or nullptr when tracing is off
  /// (EngineConfig::record_trace / mpi::MachineConfig::observability).
  [[nodiscard]] obs::Recorder* trace() noexcept { return trace_.get(); }

  /// Events executed so far (proxy for simulation cost; used by benches).
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return events_executed_; }

 private:
  friend class Process;
  void resume_process(Process& p);
  [[noreturn]] void report_deadlock() const;

  EngineConfig config_;
  NoiseModel noise_;
  EventQueue queue_;
  util::SimTime clock_ = 0;
  std::vector<std::unique_ptr<Process>> processes_;
  std::size_t live_ = 0;
  Process* running_ = nullptr;
  std::unique_ptr<obs::Recorder> trace_;
  std::uint64_t events_executed_ = 0;
};

/// RAII span over a blocking runtime section: opens a span on construction
/// and closes it on destruction (exception-safe — a crash unwinding the
/// fiber still closes it). Costs one null check when tracing is off, so it
/// is safe to put on hot blocking paths.
class SpanScope {
 public:
  SpanScope(Process& p, obs::SpanKind kind, const char* label) {
    if (p.engine().trace() == nullptr) return;
    p_ = &p;
    p.trace_begin(label, kind);
  }
  ~SpanScope() {
    if (p_ != nullptr) p_->trace_end();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Process* p_ = nullptr;
};

}  // namespace ds::sim
