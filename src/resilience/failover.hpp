// Consumer-failover primitives (ds::resilience, layer 2).
//
// Recovery for decoupled streams is built from three small, independently
// testable pieces that core/stream composes:
//
//  * ReplayLog    — producer-side bounded retention: every flushed frame of a
//    resilient flow is retained (in its wire form) until the consumer
//    acknowledges epoch durability, then truncated. On failover the retained
//    frames are re-posted verbatim to the adopting consumer. Buffers recycle
//    through a small freelist, so steady-state retention does not allocate.
//  * DedupFilter  — consumer-side exactly-once admission: every resilient
//    frame carries its flow id and starting sequence number; the filter
//    admits each (producer, flow, seq) at most once, so replay overlap can
//    never deliver an element to application code twice.
//  * failover_target — the deterministic, topology-aware adoption rule: the
//    next live consumer on the dead consumer's *node* (cyclically), falling
//    back to the next live consumer anywhere. Every rank evaluates it
//    locally against the machine's failure record and node structure and
//    arrives at the same answer, so no coordination protocol is needed to
//    agree on the new routing — and a same-node adopter keeps the replayed
//    flows on shared memory instead of pushing them across the fabric.
//
// A *flow* is the unit of replay and ordering: the elements one producer
// addressed to one original consumer index. After failover a flow keeps its
// identity (and its sequence space) while being physically delivered to the
// adopting consumer — dedup and termination accounting stay exact across
// repeated failures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace ds::mpi {
class Machine;
}
namespace ds::stream {
class Channel;
}

namespace ds::resilience {

/// One retained frame: the wire bytes of a coalesced frame (headers
/// included) plus the flow positions it covers.
struct RetainedFrame {
  std::uint64_t seq0 = 0;      ///< flow sequence of the first element
  std::uint32_t elements = 0;  ///< elements packed in the frame
  std::uint64_t wire = 0;      ///< simulated wire size of the frame
  std::vector<std::byte> buf;  ///< frame bytes as they were posted
};

/// Producer-side retention of unacknowledged frames for one flow.
class ReplayLog {
 public:
  /// Retain a flushed frame (copies `bytes` of `frame`). Frames must be
  /// retained in increasing seq0 order (the flush order guarantees this).
  void retain(std::uint64_t seq0, std::uint32_t elements, std::uint64_t wire,
              const std::byte* frame, std::size_t bytes);

  /// Durability acknowledgment: every element below `durable_seq` is safe at
  /// the consumer; frames entirely below it are dropped (buffers recycled).
  void truncate(std::uint64_t durable_seq);

  [[nodiscard]] const std::deque<RetainedFrame>& frames() const noexcept {
    return frames_;
  }
  [[nodiscard]] std::uint64_t durable_seq() const noexcept { return durable_; }
  [[nodiscard]] std::uint64_t retained_elements() const noexcept {
    return retained_elements_;
  }
  [[nodiscard]] std::size_t frame_count() const noexcept {
    return frames_.size();
  }

 private:
  std::deque<RetainedFrame> frames_;
  std::vector<std::vector<std::byte>> spare_;  ///< recycled frame buffers
  std::uint64_t durable_ = 0;
  std::uint64_t retained_elements_ = 0;
};

/// Consumer-side exactly-once admission by (producer, flow, seq).
class DedupFilter {
 public:
  /// True when (producer, flow, seq) is new — the element may be delivered
  /// to application code; the flow cursor advances. False for a duplicate.
  bool admit(int producer, int flow, std::uint64_t seq);

  /// Pre-advance a flow cursor without counting duplicates: applied from a
  /// producer's flow-handoff message, which announces the durable point of
  /// an adopted flow so the replay's already-durable prefix (a replayed
  /// frame may straddle the durability boundary under manual acks) is
  /// skipped rather than re-delivered.
  void advance_to(int producer, int flow, std::uint64_t seq);

  /// Next expected sequence for the flow (0 when never seen).
  [[nodiscard]] std::uint64_t next_seq(int producer, int flow) const noexcept;
  [[nodiscard]] std::uint64_t duplicates_dropped() const noexcept {
    return duplicates_;
  }

  /// Drop the cursor for one (producer, flow): the flow was handed back or
  /// rebalanced to another consumer, whose sync message now carries the
  /// cursor. Keeping the entry would leak memory under churn (every adopted
  /// flow would pin a cursor forever) — and the stat below is the proof
  /// retention stays bounded by the flows a consumer currently owns.
  void erase(int producer, int flow) { next_.erase(key(producer, flow)); }

  /// Tracked (producer, flow) cursors — the filter's entire memory
  /// footprint. Benches/tests assert this stays <= owned-flow count plus
  /// epoch/window slack under long churn runs.
  [[nodiscard]] std::size_t dedup_entries() const noexcept {
    return next_.size();
  }

  /// Visit every tracked flow as fn(producer, flow, next_seq) — the source
  /// of truth for "everything consumed so far" when flushing durability
  /// acknowledgments.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [k, next] : next_)
      fn(static_cast<int>(k >> 32), static_cast<int>(k & 0xFFFFFFFFu), next);
  }

  /// The (producer, flow) map key, shared with callers that keep parallel
  /// bookkeeping (e.g. acks already sent per flow).
  [[nodiscard]] static std::uint64_t key(int producer, int flow) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(producer))
            << 32) |
           static_cast<std::uint32_t>(flow);
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> next_;
  std::uint64_t duplicates_ = 0;
};

/// The deterministic adoption rule, topology-aware: the first available
/// consumer after `dead_consumer` (cyclically) that shares its node, else
/// the first available consumer anywhere. "Available" means the slot's rank
/// is live in `machine`'s failure record AND the slot is active in the
/// channel's membership ledger — so the same rule serves crash failover,
/// rank rejoin (the rule re-admits a respawned rank automatically), and
/// elastic retire/add. With no locality (ranks_per_node = 0) — or when all
/// consumers share one node — this is exactly the plain cyclic-next rule.
/// Returns -1 when no consumer of the channel is available (unrecoverable).
[[nodiscard]] int failover_target(const stream::Channel& channel,
                                  int dead_consumer,
                                  const mpi::Machine& machine);

/// Who aggregates producer terms on a resilient channel: the first
/// available (live + active) consumer index (consumer 0 while it
/// survives). -1 when no consumer is available.
[[nodiscard]] int effective_aggregator(const stream::Channel& channel,
                                       const mpi::Machine& machine);

}  // namespace ds::resilience
