// Facade-level resilience options (ds::resilience, layer 3).
//
// decouple::Pipeline::with_resilience(ResilienceOptions) applies these to
// every stream the pipeline declares; per-stream StreamOptions fields
// override them. See README "Resilience" for the fault model and the
// exactly-once contract.
#pragma once

#include <cstdint>

namespace ds::resilience {

struct ResilienceOptions {
  /// Elements per epoch on each flow: producers cut an epoch marker every
  /// `checkpoint_interval` elements and retain unacknowledged frames for
  /// replay. Bounds the replay window (and, with automatic durability, the
  /// retained memory) per flow. Must be > 0 — resilience without epochs
  /// would retain unboundedly.
  std::uint32_t checkpoint_interval = 1024;

  /// When false (default), consumers acknowledge durability automatically at
  /// every epoch boundary: "processed by the operator" counts as durable,
  /// which fits in-memory consumers (reduce stages, aggregators). Set true
  /// for consumers with external effects (file writers): the application
  /// calls Stream::ack_durable / decouple::StreamBase::ack_durable after its
  /// effects are actually safe (e.g. after a file flush), and replay after a
  /// crash covers exactly the elements whose effects died with the consumer.
  bool manual_durability = false;
};

}  // namespace ds::resilience
