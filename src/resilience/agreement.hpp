// Fault-tolerant agreement ledger (the ULFM-shrink-style primitive behind
// Rank::agree).
//
// One Agreement instance is shared by every participant of a single agree()
// call: each live member deposits its contribution, then blocks until the
// freeze condition holds — every member of the group has either deposited or
// is recorded dead in the machine's failure record. The first rank to
// observe the condition freezes the result exactly once: the agreed value
// (OR over all deposited contributions, including those of ranks that died
// after depositing) together with a snapshot of the dead set at freeze time.
// Every reader — including ranks that were still blocked — then returns the
// same frozen triple, which is what makes the primitive usable to settle a
// consistent failure view and shrunken membership among survivors.
//
// Progress: every deposit and every crash strictly shrinks the set of
// members the condition is waiting on, so the agreement terminates under
// any crash pattern short of losing the whole group (in which case there is
// nobody left blocked on it). The wire cost is carried by the failure-aware
// dissemination barrier Rank::agree runs alongside the ledger (log-P
// rounds); the ledger itself models the agreed state, not traffic.
#pragma once

#include <cstdint>
#include <vector>

namespace ds::resilience {

struct Agreement {
  explicit Agreement(int size)
      : deposited(static_cast<std::size_t>(size), 0),
        contribution(static_cast<std::size_t>(size), 0) {}

  std::vector<std::uint8_t> deposited;     ///< by group rank
  std::vector<std::uint64_t> contribution; ///< valid where deposited
  bool frozen = false;
  std::uint64_t value = 0;  ///< OR over deposited contributions at freeze
  std::vector<int> dead;    ///< group ranks excused (dead) at freeze time
  std::vector<int> waiters; ///< fiber pids blocked on the freeze
  /// Live participants that have not yet read the frozen result; the
  /// machine erases the ledger entry when this reaches zero. (A participant
  /// that crashes *after* the freeze leaves the entry behind — bounded by
  /// the number of such crashes, and negligible next to the run itself.)
  int readers_left = 0;
};

}  // namespace ds::resilience
