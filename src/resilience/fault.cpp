#include "resilience/fault.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ds::sim {

namespace {
void require_rank(int rank, const char* who) {
  if (rank < 0) throw std::invalid_argument(std::string(who) + ": negative rank");
}
}  // namespace

FaultPlan& FaultPlan::crash(int rank, util::SimTime at) {
  require_rank(rank, "FaultPlan::crash");
  events.push_back(FaultEvent{FaultEvent::Kind::RankCrash, at, rank, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::crash_during_setup(int rank) {
  // One nanosecond of virtual time: after the program fibers have started
  // (a t=0 crash is rejected by validate), but well inside the first wire
  // round of any setup collective — network latency alone is three orders
  // of magnitude larger.
  return crash(rank, util::nanoseconds(1));
}

FaultPlan& FaultPlan::restart(int rank, util::SimTime at) {
  require_rank(rank, "FaultPlan::restart");
  events.push_back(FaultEvent{FaultEvent::Kind::RankRestart, at, rank, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::degrade_link(int rank, util::SimTime at, double factor,
                                   util::SimTime duration) {
  require_rank(rank, "FaultPlan::degrade_link");
  if (factor < 1.0)
    throw std::invalid_argument(
        "FaultPlan::degrade_link: factor must be >= 1 (a slowdown)");
  events.push_back(
      FaultEvent{FaultEvent::Kind::LinkDegrade, at, rank, factor, duration});
  return *this;
}

FaultPlan& FaultPlan::degrade_path(int src, int dst, util::SimTime at,
                                   double factor, util::SimTime duration) {
  require_rank(src, "FaultPlan::degrade_path");
  require_rank(dst, "FaultPlan::degrade_path");
  if (factor < 1.0)
    throw std::invalid_argument(
        "FaultPlan::degrade_path: factor must be >= 1 (a slowdown)");
  FaultEvent ev{FaultEvent::Kind::LinkDegrade, at, src, factor, duration};
  ev.rank_b = dst;
  events.push_back(ev);
  return *this;
}

void FaultPlan::validate(int world_size) const {
  // Replay the schedule in virtual-time order (stable on ties: insertion
  // order, matching the engine's deterministic tie-break) and track which
  // ranks are down at each point.
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return events[a].at < events[b].at;
  });
  std::vector<std::uint8_t> down(static_cast<std::size_t>(world_size), 0);
  for (const std::size_t i : order) {
    const FaultEvent& ev = events[i];
    if (ev.rank < 0 || ev.rank >= world_size)
      throw std::invalid_argument(
          "FaultPlan: event at t=" + std::to_string(ev.at) + " targets rank " +
          std::to_string(ev.rank) + ", outside world of " +
          std::to_string(world_size));
    if (ev.rank_b >= world_size)
      throw std::invalid_argument(
          "FaultPlan: path-degrade at t=" + std::to_string(ev.at) +
          " endpoint " + std::to_string(ev.rank_b) + " outside world of " +
          std::to_string(world_size));
    auto& d = down[static_cast<std::size_t>(ev.rank)];
    switch (ev.kind) {
      case FaultEvent::Kind::RankCrash:
        if (ev.at == 0)
          throw std::invalid_argument(
              "FaultPlan: crash of rank " + std::to_string(ev.rank) +
              " at exactly t=0 — the rank would be dead before its program "
              "fiber ever runs, which silently tests nothing. Use "
              "crash_during_setup(rank) for the earliest useful crash, or "
              "shrink the world instead.");
        if (d != 0)
          throw std::invalid_argument(
              "FaultPlan: duplicate crash of rank " + std::to_string(ev.rank) +
              " at t=" + std::to_string(ev.at) +
              " (already down; schedule a restart in between)");
        d = 1;
        break;
      case FaultEvent::Kind::RankRestart:
        if (d == 0)
          throw std::invalid_argument(
              "FaultPlan: restart of rank " + std::to_string(ev.rank) +
              " at t=" + std::to_string(ev.at) +
              " which is not down (no earlier crash)");
        d = 0;
        break;
      case FaultEvent::Kind::LinkDegrade:
        break;
    }
  }
}

util::SimTime FaultPlan::first_crash_at(int rank) const noexcept {
  util::SimTime best = -1;
  for (const FaultEvent& ev : events)
    if (ev.kind == FaultEvent::Kind::RankCrash && ev.rank == rank &&
        (best < 0 || ev.at < best))
      best = ev.at;
  return best;
}

}  // namespace ds::sim
