#include "resilience/fault.hpp"

#include <stdexcept>
#include <string>

namespace ds::sim {

namespace {
void require_rank(int rank, const char* who) {
  if (rank < 0) throw std::invalid_argument(std::string(who) + ": negative rank");
}
}  // namespace

FaultPlan& FaultPlan::crash(int rank, util::SimTime at) {
  require_rank(rank, "FaultPlan::crash");
  events.push_back(FaultEvent{FaultEvent::Kind::RankCrash, at, rank, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::restart(int rank, util::SimTime at) {
  require_rank(rank, "FaultPlan::restart");
  events.push_back(FaultEvent{FaultEvent::Kind::RankRestart, at, rank, 1.0, 0});
  return *this;
}

FaultPlan& FaultPlan::degrade_link(int rank, util::SimTime at, double factor,
                                   util::SimTime duration) {
  require_rank(rank, "FaultPlan::degrade_link");
  if (factor < 1.0)
    throw std::invalid_argument(
        "FaultPlan::degrade_link: factor must be >= 1 (a slowdown)");
  events.push_back(
      FaultEvent{FaultEvent::Kind::LinkDegrade, at, rank, factor, duration});
  return *this;
}

FaultPlan& FaultPlan::degrade_path(int src, int dst, util::SimTime at,
                                   double factor, util::SimTime duration) {
  require_rank(src, "FaultPlan::degrade_path");
  require_rank(dst, "FaultPlan::degrade_path");
  if (factor < 1.0)
    throw std::invalid_argument(
        "FaultPlan::degrade_path: factor must be >= 1 (a slowdown)");
  FaultEvent ev{FaultEvent::Kind::LinkDegrade, at, src, factor, duration};
  ev.rank_b = dst;
  events.push_back(ev);
  return *this;
}

util::SimTime FaultPlan::first_crash_at(int rank) const noexcept {
  util::SimTime best = -1;
  for (const FaultEvent& ev : events)
    if (ev.kind == FaultEvent::Kind::RankCrash && ev.rank == rank &&
        (best < 0 || ev.at < best))
      best = ev.at;
  return best;
}

}  // namespace ds::sim
