// Fault injection for the simulated machine (ds::resilience, layer 1).
//
// The exascale-readiness literature ranks resilience as a top unmet
// requirement: at full machine scale the mean time between component
// failures drops below the runtime of a single job, so an application that
// cannot survive a rank loss cannot finish. This module gives the simulator
// a deterministic fault model to measure that against:
//
//  * rank crash   — fail-stop: the rank's fiber unwinds at its next runtime
//    interaction (mpi::RankFailure), its mailbox is drained, its posted
//    receives complete with Status::failed, and messages addressed to it are
//    dropped on arrival. Pooled operation slots are released, never leaked.
//  * rank restart — the machine respawns the program fiber for a previously
//    crashed rank; Rank::incarnation() tells restarted code apart.
//  * link degrade — the endpoint's fabric ports slow by a factor for a
//    window (failing NIC, thermal throttling); the same factor composes
//    with the NoiseModel for the rank's compute perturbation, so degraded
//    intervals still carry jitter and detours on top.
//
// A FaultPlan is a schedule of such events, installed via
// mpi::MachineConfig::faults and executed by the engine at exact virtual
// times — runs remain pure functions of (program, seed, plan).
//
// Collectives are failure-aware: a crash that lands while surviving ranks
// are inside a collective with the victim (including the role exchange in
// Channel::create, communicator splits, and collective IO) completes on
// every survivor with Status::failed instead of deadlocking — a message
// from a dead peer is satisfied by the failure record. Survivors then
// resolve a consistent view with Rank::agree and rebuild over the agreed
// membership (Channel::create retries internally). Crashes may therefore be
// scheduled at any virtual time t > 0, including inside setup and teardown;
// the stream failover protocol (core/stream.hpp) recovers crashes observed
// while producers are active.
#pragma once

#include <vector>

#include "util/time.hpp"

namespace ds::sim {

struct FaultEvent {
  enum class Kind { RankCrash, RankRestart, LinkDegrade };
  Kind kind = Kind::RankCrash;
  util::SimTime at = 0;  ///< absolute virtual time
  int rank = -1;         ///< world rank the event targets
  /// LinkDegrade: cost multiplier (>= 1) applied to the rank's fabric port
  /// occupancy and composed into its compute perturbation.
  double factor = 1.0;
  /// LinkDegrade: window length; 0 degrades until the end of the run.
  util::SimTime duration = 0;
  /// LinkDegrade path form (degrade_path): second endpoint. When >= 0 the
  /// fault addresses the *shared links* on the topology route rank -> rank_b
  /// (Fabric::degrade_path) instead of rank's own ports, and no compute
  /// perturbation is applied — it is a cable, not a core. Under a flat
  /// topology (or a same-node pair) the fabric falls back to degrading both
  /// endpoints. -1 keeps the classic endpoint form.
  int rank_b = -1;
};

/// A deterministic schedule of fault events (builder-style).
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& crash(int rank, util::SimTime at);
  /// Crash `rank` inside the program's setup collectives: the first role
  /// exchange of a Channel::create (or any other setup collective) spans
  /// several wire rounds from t=0, so a crash at one nanosecond of virtual
  /// time lands mid-protocol. Exercises the failure-aware setup path.
  FaultPlan& crash_during_setup(int rank);
  FaultPlan& restart(int rank, util::SimTime at);
  FaultPlan& degrade_link(int rank, util::SimTime at, double factor,
                          util::SimTime duration = 0);
  /// Degrade the shared links on the topology route src -> dst (endpoint
  /// fallback when the route has none). See FaultEvent::rank_b.
  FaultPlan& degrade_path(int src, int dst, util::SimTime at, double factor,
                          util::SimTime duration = 0);

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  /// First crash scheduled for `rank`, or -1 when none.
  [[nodiscard]] util::SimTime first_crash_at(int rank) const noexcept;

  /// Whole-schedule validation, run at install time (Machine::run) when the
  /// world size is known. Replays the schedule in virtual-time order and
  /// throws std::invalid_argument with a descriptive message for plans that
  /// would otherwise be silent no-ops or undefined mid-run behavior:
  ///  * any event addressing a rank outside [0, world_size)
  ///  * a path-degrade whose second endpoint is outside the world
  ///  * a crash at exactly t=0 (the rank would die before its program fiber
  ///    ever runs — crash_during_setup schedules the earliest useful crash)
  ///  * a crash of a rank that is already down at that time
  ///  * a restart of a rank that is not down at that time
  void validate(int world_size) const;
};

}  // namespace ds::sim
