// Shared per-channel membership ledger (ds::resilience).
//
// Elastic membership needs one piece of state that every rank observes
// consistently: which consumer slots of a channel are currently active. The
// machine hosts one ledger per channel context (Machine::membership_ledger),
// playing the same role its failure record plays for crashes — a globally
// visible membership oracle that protocol code polls at its next interaction
// instead of learning about via extra messages. In a real deployment this is
// the membership service / coordination plane; in the simulator it is a
// shared object guarded by the single-threaded engine.
//
// Slots, not ranks: a retired slot's *rank* stays alive (it may serve other
// channels); only its claim on this channel's flows is released. The version
// counter is the membership analogue of Machine::failure_epoch() — streams
// cache it and re-evaluate routing when it moves.
#pragma once

#include <cstdint>
#include <vector>

namespace ds::resilience {

struct MembershipLedger {
  std::vector<std::uint8_t> active;  ///< per consumer slot, 1 = active
  std::uint64_t version = 0;         ///< bumped on every activate/deactivate

  explicit MembershipLedger(int consumer_slots)
      : active(static_cast<std::size_t>(consumer_slots), 1) {}

  [[nodiscard]] bool is_active(int slot) const noexcept {
    return active[static_cast<std::size_t>(slot)] != 0;
  }
  /// Returns true when the flag actually changed (version bumped).
  bool set_active(int slot, bool on) {
    auto& a = active[static_cast<std::size_t>(slot)];
    const std::uint8_t want = on ? 1 : 0;
    if (a == want) return false;
    a = want;
    ++version;
    return true;
  }
};

}  // namespace ds::resilience
