#include "resilience/failover.hpp"

#include <cstring>
#include <utility>

#include "core/channel.hpp"
#include "mpi/machine.hpp"

namespace ds::resilience {

void ReplayLog::retain(std::uint64_t seq0, std::uint32_t elements,
                       std::uint64_t wire, const std::byte* frame,
                       std::size_t bytes) {
  RetainedFrame rf;
  rf.seq0 = seq0;
  rf.elements = elements;
  rf.wire = wire;
  if (!spare_.empty()) {
    rf.buf = std::move(spare_.back());  // capacity recycled from a truncation
    spare_.pop_back();
    rf.buf.clear();
  }
  rf.buf.resize(bytes);
  std::memcpy(rf.buf.data(), frame, bytes);
  retained_elements_ += elements;
  frames_.push_back(std::move(rf));
}

void ReplayLog::truncate(std::uint64_t durable_seq) {
  if (durable_seq <= durable_) return;  // acks may arrive out of order
  durable_ = durable_seq;
  while (!frames_.empty() &&
         frames_.front().seq0 + frames_.front().elements <= durable_) {
    retained_elements_ -= frames_.front().elements;
    spare_.push_back(std::move(frames_.front().buf));
    frames_.pop_front();
  }
}

bool DedupFilter::admit(int producer, int flow, std::uint64_t seq) {
  auto& next = next_[key(producer, flow)];
  if (seq < next) {
    ++duplicates_;
    return false;
  }
  // Sequences within a flow arrive in order (frames preserve per-flow FIFO
  // and replay re-posts in order), so admission advances the cursor by one.
  next = seq + 1;
  return true;
}

void DedupFilter::advance_to(int producer, int flow, std::uint64_t seq) {
  auto& next = next_[key(producer, flow)];
  if (seq > next) next = seq;
}

std::uint64_t DedupFilter::next_seq(int producer, int flow) const noexcept {
  const auto it = next_.find(key(producer, flow));
  return it == next_.end() ? 0 : it->second;
}

namespace {
bool slot_available(const stream::Channel& channel, int c,
                    const mpi::Machine& machine) {
  const int world = channel.comm().world_rank(channel.consumer_rank(c));
  return !machine.rank_failed(world) && channel.consumer_active(c);
}
}  // namespace

int failover_target(const stream::Channel& channel, int dead_consumer,
                    const mpi::Machine& machine) {
  const int consumers = channel.consumer_count();
  const auto& network = machine.config().network;
  const int dead_world =
      channel.comm().world_rank(channel.consumer_rank(dead_consumer));
  // First choice: an available consumer on the vacated slot's own node — the
  // adopted flows then travel over shared memory instead of the fabric's
  // (possibly degraded) shared links.
  for (int step = 1; step < consumers; ++step) {
    const int c = (dead_consumer + step) % consumers;
    const int world = channel.comm().world_rank(channel.consumer_rank(c));
    if (slot_available(channel, c, machine) &&
        network.same_node(dead_world, world))
      return c;
  }
  for (int step = 1; step < consumers; ++step) {
    const int c = (dead_consumer + step) % consumers;
    if (slot_available(channel, c, machine)) return c;
  }
  return -1;
}

int effective_aggregator(const stream::Channel& channel,
                         const mpi::Machine& machine) {
  for (int c = 0; c < channel.consumer_count(); ++c)
    if (slot_available(channel, c, machine)) return c;
  return -1;
}

}  // namespace ds::resilience
