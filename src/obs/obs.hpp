// ds::obs — the unified observability layer (spans, metrics, exporters).
//
// The paper's central evidence is observational: Fig. 2 is a per-rank trace
// view of iPIC3D before/after decoupling. This layer generalizes that view
// to the whole simulator: the runtime auto-instruments virtual-time spans
// (compute, send/recv blocking, collective rounds, stream operate/replay,
// agreement), the resilience path emits structured instant events (crash,
// failover, handoff, rejoin, agreement), and the scattered per-object stats
// (stream frame/credit/replay counters, op-pool stats, per-link fabric
// bytes) are absorbed into one queryable metrics registry. Everything is
// exportable: Chrome trace-event JSON (loads in Perfetto /
// chrome://tracing), CSV, an ASCII timeline, and a metrics JSON schema
// shared by all benches.
//
// Hard contract: observability is OFF by default and costs nothing on the
// hot path when off (a null-pointer check at each hook site; the
// micro_simcore 0-allocs/element gate runs with it disabled). Enabled-mode
// overhead is bounded by micro_simcore's obs_enabled scenario (<= 5% eps).
#pragma once

#include <cstdint>

namespace ds::obs {

/// Span taxonomy: what a rank was doing over a virtual-time interval.
/// Auto-instrumented by the runtime; applications only ever add Compute
/// spans (via Process::compute / Rank::compute labels).
enum class SpanKind : std::uint8_t {
  Compute = 0,       ///< fiber occupied the CPU (Process::compute)
  SendBlocked,       ///< blocked waiting for a send to complete / a credit
  RecvBlocked,       ///< blocked waiting for a receive / a stream arrival
  Collective,        ///< inside a blocking collective (label names it)
  Agreement,         ///< inside Rank::agree
  StreamOperate,     ///< consumer servicing a stream (operate/operate_while)
  StreamReplay,      ///< producer replaying retained frames after failover
  Other,             ///< application/legacy label without a taxonomy slot
};

/// Stable lowercase name for a span kind (Chrome trace "cat", CSV column).
[[nodiscard]] const char* span_kind_name(SpanKind kind) noexcept;

/// Per-machine observability switches (mpi::MachineConfig::observability).
struct ObsConfig {
  /// Record auto-instrumented spans and instant events (obs::Recorder).
  bool trace = false;
  /// Collect the metrics registry (obs::Metrics): runtime objects flush
  /// their counters at lifecycle points and machine collectors snapshot
  /// fabric/pool/engine state on demand.
  bool metrics = false;

  [[nodiscard]] static ObsConfig all() noexcept { return ObsConfig{true, true}; }
  [[nodiscard]] bool any() const noexcept { return trace || metrics; }
};

}  // namespace ds::obs
