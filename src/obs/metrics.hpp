// Metrics registry: the counters/gauges/histograms half of ds::obs.
//
// One queryable, JSON-dumpable home for the stats that used to live as
// scattered per-object accessors (Stream::frames_sent, Machine::pool_stats,
// Fabric::link_bytes, ...). Instruments are named, and each carries a rank
// dimension: a world rank for per-rank series, or kMachine (-1) for
// machine-wide series. Handles returned by counter()/gauge()/histogram()
// are stable for the registry's lifetime (node-based storage), so hot
// objects may cache them.
//
// Two feeding modes:
//  * lifecycle flush — runtime objects (streams) add their totals when a
//    role completes (producer terminate, consumer exhaustion), keeping the
//    per-element hot path untouched;
//  * collectors — callbacks registered by the machine that snapshot
//    pull-style state (fabric link bytes/occupancy, op-pool stats, engine
//    event count) when the registry is collected/dumped.
//
// The JSON schema (shared by every bench that dumps metrics):
//   {"schema":"ds.metrics.v1",
//    "counters":[{"name":..., "rank":..., "value":...}],
//    "gauges":[{"name":..., "rank":..., "value":...}],
//    "histograms":[{"name":..., "rank":..., "count":..., "sum":...,
//                   "min":..., "max":..., "p50":..., "p90":..., "p99":...}]}
// Entries are sorted by (name, rank), so dumps are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ds::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram over nonnegative samples: cheap to feed (a
/// couple of integer ops), bounded memory, and percentile estimates good
/// to within one power of two — the right fidelity for distribution-shaped
/// diagnostics (per-link bytes, span durations).
class Histogram {
 public:
  void add(double v) noexcept;
  /// Drop all samples. Collectors that rebuild a distribution on every
  /// snapshot reset first so repeated collect() calls stay idempotent.
  void reset() noexcept { *this = Histogram{}; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// p in [0,1]: upper edge of the bucket holding the p-th sample (clamped
  /// to the observed min/max).
  [[nodiscard]] double percentile(double p) const noexcept;

 private:
  static constexpr int kBuckets = 64;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Metrics {
 public:
  /// Rank value for machine-wide (not per-rank) series.
  static constexpr int kMachine = -1;

  Counter& counter(const std::string& name, int rank = kMachine);
  Gauge& gauge(const std::string& name, int rank = kMachine);
  Histogram& histogram(const std::string& name, int rank = kMachine);

  /// Lookup without creating; nullptr when the series does not exist.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            int rank = kMachine) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        int rank = kMachine) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                int rank = kMachine) const;

  /// Sum of a counter series across every rank (including kMachine).
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;

  /// Register a snapshot callback (fabric/pool/engine state); collect()
  /// runs them all, and to_json() collects first.
  void add_collector(std::function<void(Metrics&)> fn);
  void collect();

  /// The ds.metrics.v1 JSON document (runs collect() first).
  [[nodiscard]] std::string to_json();

  [[nodiscard]] std::size_t series_count() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  using Key = std::pair<std::string, int>;  // (name, rank), sorted
  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
  std::vector<std::function<void(Metrics&)>> collectors_;
};

}  // namespace ds::obs
