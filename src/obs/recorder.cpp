#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ds::obs {

const char* span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Compute: return "compute";
    case SpanKind::SendBlocked: return "send_blocked";
    case SpanKind::RecvBlocked: return "recv_blocked";
    case SpanKind::Collective: return "collective";
    case SpanKind::Agreement: return "agreement";
    case SpanKind::StreamOperate: return "stream_operate";
    case SpanKind::StreamReplay: return "stream_replay";
    case SpanKind::Other: break;
  }
  return "other";
}

std::uint32_t Recorder::intern(std::string name) {
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::uint32_t Recorder::intern(const char* name) {
  for (const auto& [ptr, id] : ptr_ids_)
    if (ptr == name) return id;
  const std::uint32_t id = intern(std::string(name));
  ptr_ids_.emplace_back(name, id);
  return id;
}

void Recorder::push_begin(int rank, util::SimTime t, std::uint32_t name,
                          SpanKind kind) {
  if (static_cast<std::size_t>(rank) >= open_.size()) open_.resize(rank + 1);
  events_.push_back(RawEvent{RawEvent::Type::Begin, kind, rank, t, name});
  open_[static_cast<std::size_t>(rank)].push_back(Open{t, name, kind});
}

void Recorder::begin(int rank, util::SimTime t, std::string label,
                     SpanKind kind) {
  if (rank < 0) return;
  push_begin(rank, t, intern(std::move(label)), kind);
}

void Recorder::end(int rank, util::SimTime t) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= open_.size() ||
      open_[static_cast<std::size_t>(rank)].empty()) {
    ++dropped_ends_;  // mismatched end: ignored, but visible to diagnostics
    return;
  }
  auto& stack = open_[static_cast<std::size_t>(rank)];
  const Open o = stack.back();
  stack.pop_back();
  events_.push_back(RawEvent{RawEvent::Type::End, o.kind, rank, t, o.name});
  spans_dirty_ = true;
}

void Recorder::instant(int rank, util::SimTime t, std::string name) {
  if (rank < 0) return;
  const std::uint32_t n = intern(std::move(name));
  events_.push_back(
      RawEvent{RawEvent::Type::Instant, SpanKind::Other, rank, t, n});
  instants_.push_back(Instant{rank, t, names_[n]});
}

void Recorder::instant(int rank, util::SimTime t, const char* name) {
  if (rank < 0) return;
  const std::uint32_t n = intern(name);
  events_.push_back(
      RawEvent{RawEvent::Type::Instant, SpanKind::Other, rank, t, n});
  instants_.push_back(Instant{rank, t, names_[n]});
}

const std::vector<Span>& Recorder::materialized() const {
  if (!spans_dirty_) return spans_cache_;
  spans_cache_.clear();
  std::vector<std::vector<Open>> stacks;
  for (const auto& e : events_) {
    switch (e.type) {
      case RawEvent::Type::Begin:
        if (static_cast<std::size_t>(e.rank) >= stacks.size())
          stacks.resize(e.rank + 1);
        stacks[static_cast<std::size_t>(e.rank)].push_back(
            Open{e.t, e.name, e.kind});
        break;
      case RawEvent::Type::End: {
        // Mismatched ends never reach the log, so the stack is non-empty.
        auto& stack = stacks[static_cast<std::size_t>(e.rank)];
        const Open o = stack.back();
        stack.pop_back();
        spans_cache_.push_back(Span{e.rank, o.begin, e.t, names_[o.name],
                                    o.kind, static_cast<int>(stack.size())});
        break;
      }
      case RawEvent::Type::Instant:
        break;
    }
  }
  spans_dirty_ = false;
  return spans_cache_;
}

void Recorder::close_all(int rank, util::SimTime t) {
  if (rank < 0 || static_cast<std::size_t>(rank) >= open_.size()) return;
  while (!open_[static_cast<std::size_t>(rank)].empty()) end(rank, t);
}

std::size_t Recorder::open_depth(int rank) const noexcept {
  if (rank < 0 || static_cast<std::size_t>(rank) >= open_.size()) return 0;
  return open_[static_cast<std::size_t>(rank)].size();
}

util::SimTime Recorder::total(int rank, const std::string& label) const {
  util::SimTime sum = 0;
  for (const auto& s : materialized())
    if (s.rank == rank && s.label == label) sum += s.end - s.begin;
  return sum;
}

util::SimTime Recorder::total(int rank, SpanKind kind) const {
  util::SimTime sum = 0;
  for (const auto& s : materialized())
    if (s.rank == rank && s.kind == kind) sum += s.end - s.begin;
  return sum;
}

std::string Recorder::to_csv() const {
  std::ostringstream out;
  out << "rank,begin_ns,end_ns,label,kind,depth\n";
  for (const auto& s : materialized())
    out << s.rank << ',' << s.begin << ',' << s.end << ',' << s.label << ','
        << span_kind_name(s.kind) << ',' << s.depth << '\n';
  return out.str();
}

std::string Recorder::to_ascii(int width) const {
  const std::vector<Span>& spans = materialized();
  if (spans.empty() || width <= 0) return {};
  int max_rank = 0;
  util::SimTime makespan = 1;
  for (const auto& s : spans) {
    max_rank = std::max(max_rank, s.rank);
    makespan = std::max(makespan, s.end);
  }
  for (const auto& i : instants_) {
    max_rank = std::max(max_rank, i.rank);
    makespan = std::max(makespan, i.at);
  }

  // Deterministic glyph assignment, in label-interning (= first-recorded)
  // order: a label gets its first character that no earlier label took,
  // then falls back to the first free character of a fixed alphabet — so
  // "comp" and "coll" render distinctly and reproducibly.
  static constexpr char kFallback[] =
      "abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ*#@+&%";
  std::vector<char> glyph(names_.size(), '?');
  std::vector<std::uint8_t> labeled(names_.size(), 0);
  for (const auto& s : spans) {
    for (std::size_t n = 0; n < names_.size(); ++n)
      if (names_[n] == s.label) labeled[n] = 1;
  }
  std::string taken = ".|!";  // reserved: idle, border, instant marker
  for (std::size_t n = 0; n < names_.size(); ++n) {
    if (!labeled[n]) continue;
    char g = 0;
    for (const char c : names_[n]) {
      if (taken.find(c) == std::string::npos) {
        g = c;
        break;
      }
    }
    if (g == 0) {
      for (const char c : kFallback) {
        if (c != 0 && taken.find(c) == std::string::npos) {
          g = c;
          break;
        }
      }
    }
    if (g == 0) g = '?';
    glyph[n] = g;
    taken.push_back(g);
  }
  const auto glyph_of = [&](const std::string& label) {
    for (std::size_t n = 0; n < names_.size(); ++n)
      if (names_[n] == label) return glyph[n];
    return '?';
  };

  std::vector<std::string> rows(static_cast<std::size_t>(max_rank) + 1,
                                std::string(static_cast<std::size_t>(width), '.'));
  // Paint longest-first so fine-grained nested spans stay visible on top of
  // their enclosing outer spans.
  std::vector<const Span*> sorted;
  sorted.reserve(spans.size());
  for (const auto& s : spans) sorted.push_back(&s);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Span* a, const Span* b) {
                     return (a->end - a->begin) > (b->end - b->begin);
                   });
  const auto bucket = [&](util::SimTime t) {
    const auto b = static_cast<long>(static_cast<double>(t) /
                                     static_cast<double>(makespan) * width);
    return std::clamp<long>(b, 0, width - 1);
  };
  for (const Span* s : sorted) {
    const char mark = glyph_of(s->label);
    const long from = bucket(s->begin);
    const long to = std::max(from, bucket(s->end - 1));
    for (long c = from; c <= to; ++c)
      rows[static_cast<std::size_t>(s->rank)][static_cast<std::size_t>(c)] = mark;
  }
  // Instant markers paint last so a crash/failover stays visible.
  for (const auto& i : instants_)
    rows[static_cast<std::size_t>(i.rank)][static_cast<std::size_t>(bucket(i.at))] =
        '!';

  std::ostringstream out;
  for (int r = 0; r <= max_rank; ++r)
    out << 'P' << r << (r < 10 ? "  |" : " |")
        << rows[static_cast<std::size_t>(r)] << "|\n";
  out << "legend:";
  for (std::size_t n = 0; n < names_.size(); ++n)
    if (labeled[n]) out << ' ' << glyph[n] << '=' << names_[n];
  if (!instants_.empty()) out << " !=instant";
  out << '\n';
  return out.str();
}

namespace {
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out.push_back(c);
    }
  }
}
void append_ts(std::string& out, util::SimTime ns) {
  // Microseconds with nanosecond resolution, formatted without a float
  // round-trip so virtual times survive exactly.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}
}  // namespace

std::string Recorder::to_chrome_json() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Track naming metadata: one track per rank, pid 0 = the machine.
  int max_rank = -1;
  for (const auto& e : events_) max_rank = std::max(max_rank, e.rank);
  for (int r = 0; r <= max_rank; ++r) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(r) + ",\"args\":{\"name\":\"rank " +
           std::to_string(r) + "\"}}";
  }

  util::SimTime last_t = 0;
  const auto emit = [&](const RawEvent& e) {
    last_t = std::max(last_t, e.t);
    comma();
    switch (e.type) {
      case RawEvent::Type::Begin:
        out += "{\"name\":\"";
        append_escaped(out, names_[e.name]);
        out += "\",\"cat\":\"";
        out += span_kind_name(e.kind);
        out += "\",\"ph\":\"B\",\"ts\":";
        break;
      case RawEvent::Type::End:
        out += "{\"ph\":\"E\",\"ts\":";
        break;
      case RawEvent::Type::Instant:
        out += "{\"name\":\"";
        append_escaped(out, names_[e.name]);
        out += "\",\"cat\":\"resilience\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        break;
    }
    append_ts(out, e.t);
    out += ",\"pid\":0,\"tid\":" + std::to_string(e.rank) + "}";
  };
  // The raw log is chronological (engine time is nondecreasing), so per-
  // track timestamps are monotone and B/E pairs balance by construction.
  for (const auto& e : events_) emit(e);
  // Close anything still open at the latest recorded time, innermost first,
  // so the exported trace always balances even when a program left spans
  // open (e.g. a trace cut mid-run).
  for (std::size_t r = 0; r < open_.size(); ++r) {
    for (auto it = open_[r].rbegin(); it != open_[r].rend(); ++it) {
      emit(RawEvent{RawEvent::Type::End, it->kind, static_cast<int>(r),
                    std::max(last_t, it->begin), it->name});
    }
  }
  out += "]}\n";
  return out;
}

void Recorder::clear() {
  names_.clear();
  ptr_ids_.clear();
  events_.clear();
  instants_.clear();
  open_.clear();
  dropped_ends_ = 0;
  spans_cache_.clear();
  spans_dirty_ = false;
}

}  // namespace ds::obs
